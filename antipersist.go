// Package antipersist is a Go implementation of the history-independent
// external-memory data structures from Bender, Berry, Johnson, Kroeger,
// McCauley, Phillips, Simon, Singh and Zage, "Anti-Persistence on
// Persistent Storage: History-Independent Sparse Tables and
// Dictionaries" (PODS 2016).
//
// A data structure is history independent (HI) if its full memory
// representation — data, gaps, sizes, addresses — reveals nothing about
// the sequence of operations that produced its current state beyond what
// the API already exposes. This package provides three weakly
// history-independent structures for persistent storage:
//
//   - PMA — a history-independent packed-memory array (sparse table):
//     N elements in user order in a Θ(N)-slot array with O(1) gaps,
//     O(log² N) amortized element moves per update whp, range queries
//     in O(1 + k/B) I/Os (Theorem 1).
//
//   - Dictionary — a history-independent cache-oblivious B-tree: the
//     PMA augmented with a van-Emde-Boas-layout tree of balance keys.
//     Searches in O(log_B N) I/Os for every block size B
//     simultaneously; updates in O(log²N/B + log_B N) amortized I/Os
//     whp (Theorem 2).
//
//   - SkipList — a history-independent external-memory skip list with
//     promotion probability 1/B^γ: point operations in O(log_B N) I/Os
//     whp and range queries in O((1/ε)·log_B N + k/B) whp (Theorem 3).
//
// Baselines used by the paper's evaluation are also exported: the
// classic (history-dependent) PMA, the folklore B-skip list that
// Lemma 15 proves deficient, Pugh's in-memory skip list, and a standard
// external-memory B-tree. I/O costs are measured in the
// disk-access-machine model via IOTracker.
//
// All of the paper's structures are deterministic given their seed and
// NOT safe for concurrent use. Store is the concurrent entry point: a
// hash-sharded, lock-striped front-end over Dictionary with batch
// operations, cross-shard merged range queries, and per-shard canonical
// persistence — shard assignment is a pure function of (key, seed), so
// the sharded image set is itself history independent. Use NewStore for
// multi-goroutine workloads and the bare structures for single-threaded
// experiments.
//
// DB (via Open) makes the store durable without betraying it: a
// crash-safe on-disk database with no write-ahead log — a WAL is an
// operation history, which is exactly what must never reach the disk —
// just canonical per-shard checkpoint images committed by atomic
// rename, incrementally rewritten for dirty shards only, recovered and
// verified on Open. Entries may carry a TTL (PutTTL/GetTTL): expiry is
// a pure function of (contents, epoch) — lazily filtered on reads,
// deterministically swept before each checkpoint — so retention-bounded
// data ages out without the sweep's timing ever reaching the image.
//
// For serving a DB over the network, cmd/hidbd is the TCP daemon
// (pipelined binary protocol, server-side write coalescing; see
// docs/PROTOCOL.md) and repro/client is its Go client. The layer
// stack, the invariant each layer owns, and the threat model are
// documented in ARCHITECTURE.md and the README.
package antipersist

import (
	"io"

	"repro/internal/btree"
	"repro/internal/cobt"
	"repro/internal/durable"
	"repro/internal/expiry"
	"repro/internal/hipma"
	"repro/internal/iomodel"
	"repro/internal/pma"
	"repro/internal/shard"
	"repro/internal/skiplist"
)

// Item is a key plus an opaque payload, the element type of PMA and
// Dictionary.
type Item = hipma.Item

// PMA is the weakly history-independent packed-memory array of §3
// (Theorem 1). See repro/internal/hipma for the full method set:
// InsertAt, DeleteAt, Get, Query, SearchKey, InsertKey, DeleteKey,
// UpdateAt, Moves, Occupancy, CheckInvariants, ...
type PMA = hipma.PMA

// PMAConfig holds the PMA's tunable constants (c₁, C_L, small-N̂
// fallback threshold).
type PMAConfig = hipma.Config

// Dictionary is the history-independent cache-oblivious B-tree of §5
// (Theorem 2): a key-value store with Put/Get/Delete/Range/Ascend/
// Min/Max/Select/RankOf.
type Dictionary = cobt.Dictionary

// SkipList is the history-independent external-memory skip list of §6
// (Theorem 3) — or, with SkipListConfig.Folklore, the folklore B-skip
// list of Lemma 15.
type SkipList = skiplist.External

// SkipListConfig selects the skip-list variant: block size B, ε (the
// promotion exponent is γ = (1+ε)/2), and the Folklore switch.
type SkipListConfig = skiplist.Config

// InMemorySkipList is Pugh's classic p = 1/2 skip list, the paper's RAM
// baseline.
type InMemorySkipList = skiplist.InMemory

// ClassicPMA is the standard, NON-history-independent packed-memory
// array with density thresholds — the baseline of Figure 2.
type ClassicPMA = pma.PMA

// ClassicPMAConfig holds the classic PMA's density thresholds.
type ClassicPMAConfig = pma.Config

// BTree is a standard external-memory B-tree, the non-HI yardstick.
type BTree = btree.Tree

// IOTracker counts block transfers in the disk-access-machine model of
// Aggarwal and Vitter: block size B, an LRU cache of M/B frames, and
// reads/writes counters. A nil *IOTracker is accepted everywhere and
// disables accounting.
type IOTracker = iomodel.Tracker

// IOStats is a snapshot of an IOTracker's counters.
type IOStats = iomodel.Stats

// SkipListFront is the skip list's sentinel key; user keys must be
// strictly greater.
const SkipListFront = skiplist.Front

// NewIOTracker returns a DAM-model tracker with block size b (in
// element units) and an LRU cache of memBlocks frames (0 disables
// caching: every block touch is an I/O).
func NewIOTracker(b, memBlocks int) *IOTracker {
	return iomodel.New(b, memBlocks)
}

// NewPMA returns an empty history-independent packed-memory array with
// the paper's default constants (c₁ = 1/2, C_L = 2). The seed drives
// all of the structure's randomness; io may be nil.
func NewPMA(seed uint64, io *IOTracker) *PMA {
	return hipma.New(seed, io)
}

// NewPMAWithConfig returns an empty HI PMA with custom constants.
func NewPMAWithConfig(cfg PMAConfig, seed uint64, io *IOTracker) (*PMA, error) {
	return hipma.NewWithConfig(cfg, seed, io)
}

// DefaultPMAConfig returns the paper's suggested PMA constants.
func DefaultPMAConfig() PMAConfig { return hipma.DefaultConfig() }

// NewDictionary returns an empty history-independent cache-oblivious
// B-tree.
func NewDictionary(seed uint64, io *IOTracker) *Dictionary {
	return cobt.New(seed, io)
}

// NewDictionaryWithConfig returns a dictionary with custom PMA constants.
func NewDictionaryWithConfig(cfg PMAConfig, seed uint64, io *IOTracker) (*Dictionary, error) {
	return cobt.NewWithConfig(cfg, seed, io)
}

// NewSkipList returns an empty external-memory skip list.
func NewSkipList(cfg SkipListConfig, seed uint64, io *IOTracker) (*SkipList, error) {
	return skiplist.NewExternal(cfg, seed, io)
}

// DefaultSkipListConfig returns the HI skip list with B = 64, ε = 1/3.
func DefaultSkipListConfig() SkipListConfig { return skiplist.DefaultConfig() }

// NewInMemorySkipList returns an empty classic skip list. If io is
// non-nil, every node hop charges one block read.
func NewInMemorySkipList(seed uint64, io *IOTracker) *InMemorySkipList {
	return skiplist.NewInMemory(seed, io)
}

// NewClassicPMA returns an empty classic (history-dependent) PMA with
// the standard density thresholds.
func NewClassicPMA(io *IOTracker) *ClassicPMA {
	return pma.New(io)
}

// NewBTree returns an empty external-memory B-tree with block size b.
func NewBTree(b int, seed uint64, io *IOTracker) *BTree {
	return btree.New(b, seed, io)
}

// Store is a concurrent, hash-sharded key-value store over the HI
// Dictionary: per-shard RWMutex striping, batch operations that take
// each shard lock once, k-way-merged Range/Ascend, and aggregated DAM
// accounting. See repro/internal/shard for the locking contract.
type Store = shard.Store

// StoreConfig holds the store's construction parameters: the
// power-of-two shard count and the per-shard PMA constants.
type StoreConfig = shard.Config

// NewStore returns an empty concurrent store with the given power-of-two
// shard count. The seed drives the shard-routing hash and every shard's
// dictionary randomness. Pass no trackers to disable DAM accounting, or
// exactly one tracker per shard; shards with a tracker serialize their
// readers so the accounting stays exact.
func NewStore(shards int, seed uint64, trackers ...*IOTracker) (*Store, error) {
	if len(trackers) == 0 {
		return shard.New(shards, seed, nil)
	}
	return shard.New(shards, seed, trackers)
}

// NewStoreWithConfig returns an empty store with custom per-shard PMA
// constants.
func NewStoreWithConfig(cfg StoreConfig, seed uint64, trackers ...*IOTracker) (*Store, error) {
	if len(trackers) == 0 {
		return shard.NewWithConfig(cfg, seed, nil)
	}
	return shard.NewWithConfig(cfg, seed, trackers)
}

// DB is a durable, crash-safe, history-independent database: the
// concurrent Store plus a checkpointing engine that keeps one canonical
// image file per shard and a checksummed manifest inside a directory.
// There is deliberately no write-ahead log — a WAL is an operation
// history, exactly what history independence forbids on disk — so
// commits go temp-file → fsync → atomic rename → manifest swap, and a
// crash at any point recovers to the last complete checkpoint. See
// repro/internal/durable for the commit sequence and the crash model.
type DB = durable.DB

// DBOptions configures Open: shard count and seed for new databases,
// checkpoint triggers (interval, dirty-op threshold, or explicit
// DB.Checkpoint), secure-wipe behavior, and the filesystem to commit
// through. The zero value is production-ready defaults.
type DBOptions = durable.Options

// Open opens (or creates) the durable database in dir, recovering and
// verifying the last complete checkpoint if one exists. opts may be
// nil for defaults.
func Open(dir string, opts *DBOptions) (*DB, error) {
	return durable.Open(dir, opts)
}

// Clock supplies the TTL epoch (unix seconds) that drives entry expiry:
// an entry written with PutTTL is logically gone the moment the epoch
// passes its expiry, and physically removed by the deterministic sweep
// — whose result depends only on (contents, epoch), never on when it
// ran, so expiry does not break the canonical-bytes guarantee. See
// repro/internal/expiry.
type Clock = expiry.Clock

// SystemClock returns the wall clock: unix seconds.
func SystemClock() Clock { return expiry.System() }

// ManualClock is a settable epoch clock for tests and deterministic
// drills; see NewManualClock.
type ManualClock = expiry.Manual

// NewManualClock returns a manual clock at the given epoch. Inject it
// via DBOptions.Clock to make expiry — and therefore the checkpoint
// bytes of TTL workloads — deterministic.
func NewManualClock(epoch int64) *ManualClock { return expiry.NewManual(epoch) }

// ReadStore deserializes a store image produced by Store.WriteTo. The
// caller's seed supplies fresh randomness for future operations; key
// routing is restored from the image itself.
func ReadStore(r io.Reader, seed uint64, trackers ...*IOTracker) (*Store, error) {
	if len(trackers) == 0 {
		return shard.ReadStore(r, seed, nil)
	}
	return shard.ReadStore(r, seed, trackers)
}

// ReadPMA deserializes a PMA disk image produced by PMA.WriteTo. The
// image is exactly the structure's memory representation (that is the
// point of history independence); seed supplies fresh randomness for
// future operations.
func ReadPMA(r io.Reader, seed uint64, tracker *IOTracker) (*PMA, error) {
	return hipma.ReadImage(r, seed, tracker)
}

// ReadDictionary deserializes a Dictionary disk image produced by
// Dictionary.WriteTo.
func ReadDictionary(r io.Reader, seed uint64, tracker *IOTracker) (*Dictionary, error) {
	return cobt.ReadDictionary(r, seed, tracker)
}

// ReadSkipList deserializes a SkipList disk image produced by
// SkipList.WriteTo.
func ReadSkipList(r io.Reader, seed uint64, tracker *IOTracker) (*SkipList, error) {
	return skiplist.ReadImage(r, seed, tracker)
}
