// io-sweep regenerates the paper's theorem-shape experiments in the
// disk-access-machine model: for each block size B it measures the
// I/O cost of searches, inserts and range queries on the HI
// cache-oblivious B-tree (Theorem 2), the HI external skip list
// (Theorem 3), the folklore B-skip list (Lemma 15) and the classic
// B-tree yardstick, plus the HI PMA's update I/Os (Theorem 1).
//
// Output is a TSV table per experiment; each row also prints the
// theoretical shape term (log_B N, log²N/B + log_B N, ...) so the
// proportionality is visible at a glance.
package main

import (
	"flag"
	"fmt"
	"math"
	"sort"

	antipersist "repro"
	"repro/internal/xrand"
)

func main() {
	n := flag.Int("n", 1<<17, "elements per structure")
	queries := flag.Int("q", 2000, "measurement operations per point")
	cache := flag.Int("cache", 64, "LRU cache frames during measurement")
	seed := flag.Uint64("seed", 1, "random seed")
	flag.Parse()

	bs := []int{16, 32, 64, 128, 256, 512}
	logB := func(b int) float64 { return math.Log2(float64(*n)) / math.Log2(float64(b)) }

	fmt.Printf("# N = %d, %d ops per measurement, cache = %d frames\n", *n, *queries, *cache)

	// ---- Experiment T2/T3: point-search I/Os vs B ----------------------
	fmt.Println("\n# search I/Os per query vs B")
	fmt.Println("B\tlogB_N\tcobt\thi_skip\tfolklore\tbtree")
	for _, b := range bs {
		io := antipersist.NewIOTracker(b, *cache)
		rng := xrand.New(*seed)

		d := antipersist.NewDictionary(*seed, io)
		for i := 0; i < *n; i++ {
			d.Put(int64(i), int64(i))
		}
		cobtCost := measure(io, *queries, func() { d.Get(int64(rng.Intn(*n))) })

		hi, _ := antipersist.NewSkipList(antipersist.SkipListConfig{B: b, Epsilon: 1.0 / 3.0}, *seed, io)
		for i := 1; i <= *n; i++ {
			hi.Insert(int64(i))
		}
		hiCost := measure(io, *queries, func() { hi.Contains(int64(rng.Intn(*n)) + 1) })

		fl, _ := antipersist.NewSkipList(antipersist.SkipListConfig{B: b, Folklore: true}, *seed, io)
		for i := 1; i <= *n; i++ {
			fl.Insert(int64(i))
		}
		flCost := measure(io, *queries, func() { fl.Contains(int64(rng.Intn(*n)) + 1) })

		bt := antipersist.NewBTree(b, *seed, io)
		for i := 0; i < *n; i++ {
			bt.Insert(int64(i))
		}
		btCost := measure(io, *queries, func() { bt.Contains(int64(rng.Intn(*n))) })

		fmt.Printf("%d\t%.2f\t%.2f\t%.2f\t%.2f\t%.2f\n",
			b, logB(b), cobtCost, hiCost, flCost, btCost)
	}

	// ---- Experiment T1b: HI PMA insert I/Os vs B ------------------------
	fmt.Println("\n# HI PMA amortized insert I/Os vs B (Theorem 1: log^2 N / B + logB N)")
	fmt.Println("B\tshape\thipma_insert")
	for _, b := range bs {
		io := antipersist.NewIOTracker(b, *cache)
		rng := xrand.New(*seed)
		p := antipersist.NewPMA(*seed, io)
		for i := 0; i < *n; i++ {
			p.InsertAt(rng.Intn(p.Len()+1), antipersist.Item{Key: int64(i)})
		}
		cost := measure(io, *queries, func() {
			p.InsertAt(rng.Intn(p.Len()+1), antipersist.Item{Key: int64(rng.Intn(1 << 30))})
		})
		l2 := math.Pow(math.Log2(float64(*n)), 2)
		shape := l2/float64(b) + logB(b)
		fmt.Printf("%d\t%.2f\t%.2f\n", b, shape, cost)
	}

	// ---- Experiment T2/T3 range queries: I/Os vs k ----------------------
	fmt.Println("\n# range-query I/Os vs k at B = 64 (shape: logB N + k/B)")
	fmt.Println("k\tshape\tcobt\thi_skip\tbtree")
	{
		const b = 64
		io := antipersist.NewIOTracker(b, *cache)
		d := antipersist.NewDictionary(*seed, io)
		hi, _ := antipersist.NewSkipList(antipersist.SkipListConfig{B: b, Epsilon: 1.0 / 3.0}, *seed, io)
		bt := antipersist.NewBTree(b, *seed, io)
		for i := 0; i < *n; i++ {
			d.Put(int64(i), int64(i))
			hi.Insert(int64(i + 1))
			bt.Insert(int64(i))
		}
		rng := xrand.New(*seed + 9)
		for _, k := range []int{64, 256, 1024, 4096, 16384} {
			if k >= *n {
				break
			}
			reps := *queries / 20
			if reps < 10 {
				reps = 10
			}
			dc := measure(io, reps, func() {
				lo := int64(rng.Intn(*n - k))
				d.Range(lo, lo+int64(k)-1, nil)
			})
			hc := measure(io, reps, func() {
				lo := int64(rng.Intn(*n-k)) + 1
				hi.Range(lo, lo+int64(k)-1, nil)
			})
			bc := measure(io, reps, func() {
				lo := int64(rng.Intn(*n - k))
				bt.Range(lo, lo+int64(k)-1, nil)
			})
			shape := logB(b) + float64(k)/float64(b)
			fmt.Printf("%d\t%.1f\t%.1f\t%.1f\t%.1f\n", k, shape, dc, hc, bc)
		}
	}

	// ---- Experiment L15: search-cost tails ------------------------------
	fmt.Println("\n# Lemma 15: cold-cache search-cost tail over all keys at B = 32")
	fmt.Println("structure\tmean\tp99\tp999\tmax")
	{
		const b = 32
		for _, variant := range []struct {
			name string
			cfg  antipersist.SkipListConfig
		}{
			{"hi_skip", antipersist.SkipListConfig{B: b, Epsilon: 1.0 / 3.0}},
			{"folklore", antipersist.SkipListConfig{B: b, Folklore: true}},
		} {
			io := antipersist.NewIOTracker(b, 16)
			s, _ := antipersist.NewSkipList(variant.cfg, *seed, io)
			for i := 1; i <= *n; i++ {
				s.Insert(int64(i))
			}
			costs := make([]int, 0, *n)
			for k := 1; k <= *n; k += 4 {
				io.Reset()
				s.Contains(int64(k))
				costs = append(costs, int(io.IOs()))
			}
			mean, p99, p999, mx := tailStats(costs)
			fmt.Printf("%s\t%.1f\t%d\t%d\t%d\n", variant.name, mean, p99, p999, mx)
		}
	}
}

// measure runs op `reps` times and returns the mean I/O delta.
func measure(io *antipersist.IOTracker, reps int, op func()) float64 {
	before := io.IOs()
	for i := 0; i < reps; i++ {
		op()
	}
	return float64(io.IOs()-before) / float64(reps)
}

func tailStats(costs []int) (mean float64, p99, p999, max int) {
	sorted := append([]int(nil), costs...)
	sort.Ints(sorted)
	total := 0
	for _, c := range sorted {
		total += c
	}
	q := func(p float64) int { return sorted[int(p*float64(len(sorted)-1))] }
	return float64(total) / float64(len(sorted)), q(0.99), q(0.999), sorted[len(sorted)-1]
}
