// hidb operates on durable history-independent database directories
// (the antipersist.DB format: one canonical image file per shard plus a
// checksummed MANIFEST; no write-ahead log, ever).
//
// Usage:
//
//	hidb init   -dir D [-shards N] [-seed S]      create an empty database
//	hidb put    -dir D -key K -val V              upsert one key
//	hidb get    -dir D -key K                     look up one key
//	hidb del    -dir D -key K                     delete one key
//	hidb len    -dir D                            key count and shard layout
//	hidb load   -dir D -n N [-seed S]             bulk-load N synthetic keys
//	hidb verify -dir D                            prove the directory is canonical
//	hidb bench  -dir D [-ms D] [-writes PCT]      mixed workload with live checkpointing
//
// Every command opens the directory through full recovery (manifest
// checksum, per-shard hashes, structural invariants) and closes it
// through a final checkpoint, so the on-disk state is always a complete
// commit.
package main

import (
	"flag"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	antipersist "repro"
	"repro/internal/xrand"
)

func usage() {
	fmt.Fprintln(os.Stderr, "usage: hidb <init|put|get|del|len|load|verify|bench> -dir DIR [flags]")
	os.Exit(2)
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd, args := os.Args[1], os.Args[2:]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	dir := fs.String("dir", "", "database directory (required)")
	shards := fs.Int("shards", 8, "shard count for a new database (power of two)")
	seed := fs.Uint64("seed", 42, "seed for a new database / synthetic workload")
	key := fs.Int64("key", 0, "key operand")
	val := fs.Int64("val", 0, "value operand")
	n := fs.Int("n", 1<<16, "number of synthetic keys to load")
	ms := fs.Int("ms", 1000, "bench measurement window, milliseconds")
	writes := fs.Int("writes", 20, "bench write percentage")
	fs.Parse(args)
	if *dir == "" {
		usage()
	}

	// Open recovers an existing database and ignores -shards/-seed for
	// it, so init must report which of the two actually happened.
	_, statErr := os.Stat(*dir + "/MANIFEST")
	preexisting := statErr == nil

	opts := &antipersist.DBOptions{Shards: *shards, Seed: *seed}
	switch cmd {
	case "init", "put", "get", "del", "len", "load", "verify":
		// Interactive commands want deterministic on-disk state the
		// moment they exit, so checkpointing stays explicit.
		opts.NoBackground = true
	case "bench":
		// The bench exercises the background checkpointer on purpose.
		opts.CheckpointInterval = 200 * time.Millisecond
	default:
		usage()
	}
	db, err := antipersist.Open(*dir, opts)
	if err != nil {
		fatal(err)
	}

	switch cmd {
	case "init":
		if preexisting {
			fmt.Printf("opened existing %s: %d shards, %d keys (-shards/-seed ignored)\n",
				*dir, db.Store().NumShards(), db.Len())
		} else {
			fmt.Printf("created %s: %d shards, %d keys\n", *dir, db.Store().NumShards(), db.Len())
		}
	case "put":
		inserted := db.Put(*key, *val)
		fmt.Printf("put %d=%d (inserted=%v)\n", *key, *val, inserted)
	case "get":
		v, ok := db.Get(*key)
		if !ok {
			fmt.Printf("%d: not found\n", *key)
		} else {
			fmt.Printf("%d=%d\n", *key, v)
		}
	case "del":
		fmt.Printf("del %d (present=%v)\n", *key, db.Delete(*key))
	case "len":
		s := db.Store()
		fmt.Printf("%d keys in %d shards\n", db.Len(), s.NumShards())
		for i := 0; i < s.NumShards(); i++ {
			fmt.Printf("  shard %2d: %6d keys (version %d)\n", i, s.ShardLen(i), s.ShardVersion(i))
		}
	case "load":
		rng := xrand.New(*seed + 1)
		items := make([]antipersist.Item, *n)
		for i := range items {
			items[i] = antipersist.Item{Key: int64(rng.Intn(4 * *n)), Val: int64(i)}
		}
		t0 := time.Now()
		inserted := db.PutBatch(items)
		loadDur := time.Since(t0)
		t0 = time.Now()
		if err := db.Checkpoint(); err != nil {
			fatal(err)
		}
		fmt.Printf("loaded %d items (%d new) in %v, checkpoint in %v\n",
			*n, inserted, loadDur.Round(time.Millisecond), time.Since(t0).Round(time.Millisecond))
	case "verify":
		if err := db.Checkpoint(); err != nil {
			fatal(err)
		}
		if err := db.VerifyCanonical(); err != nil {
			fatal(err)
		}
		fmt.Printf("canonical: OK (%d keys, %d shards; every image byte is a pure function of contents+seed)\n",
			db.Len(), db.Store().NumShards())
	case "bench":
		bench(db, *ms, *writes, *seed)
	}

	if err := db.Close(); err != nil {
		fatal(err)
	}
}

// bench runs a mixed workload against the open DB while its background
// checkpointer commits underneath, then reports both throughput and
// how many checkpoints landed.
func bench(db *antipersist.DB, ms, writePct int, seed uint64) {
	keyspace := db.Len() * 2
	if keyspace < 1<<12 {
		keyspace = 1 << 12
	}
	var stop atomic.Bool
	var total atomic.Uint64
	var wg sync.WaitGroup
	workers := 4
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := xrand.New(uint64(g)*31 + seed)
			ops := uint64(0)
			for !stop.Load() {
				for i := 0; i < 128; i++ {
					k := int64(rng.Intn(keyspace))
					if int(rng.Intn(100)) < writePct {
						db.Put(k, k)
					} else {
						db.Get(k)
					}
				}
				ops += 128
			}
			total.Add(ops)
		}(g)
	}
	start := time.Now()
	time.Sleep(time.Duration(ms) * time.Millisecond)
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	fmt.Printf("%.0f ops/sec over %d workers, %d background checkpoints in %dms\n",
		float64(total.Load())/elapsed, workers, db.Checkpoints(), ms)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hidb:", err)
	os.Exit(1)
}
