// bench-trajectory measures the four hot layers of the stack — proto
// encode/decode, server dispatch, shard ApplyBatch + scans, and
// checkpoint render — and records each area's result as a run appended
// to BENCH_<area>.json at the repo root (see repro/internal/benchjson
// for the schema). Every run lands next to the runs before it, so the
// files are a machine-readable performance trajectory: a regression is
// a diff between two array elements.
//
// Usage:
//
//	bench-trajectory [-dir .] [-label NAME] [-areas proto,server,shard,checkpoint]
//	                 [-duration 2s] [-short] [-check] [-max-regress 0.2] [-validate]
//
// Default mode runs the benchmarks and appends one run per area file
// (creating absent files). -check runs them in short mode and exits
// nonzero if any benchmark's throughput falls more than -max-regress
// below the latest committed run — the CI regression gate. -validate
// only parses and validates the committed files. All failures,
// including unwritable output files, exit nonzero with a message on
// stderr.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/client"
	"repro/internal/benchjson"
	"repro/internal/durable"
	"repro/internal/proto"
	"repro/internal/server"
	"repro/internal/shard"
)

func main() {
	var (
		dir        = flag.String("dir", ".", "directory holding the BENCH_*.json files")
		label      = flag.String("label", "run", "label for the appended run")
		areasFlag  = flag.String("areas", strings.Join(benchjson.Areas, ","), "comma-separated areas to measure")
		duration   = flag.Duration("duration", 2*time.Second, "measurement window per benchmark")
		short      = flag.Bool("short", false, "smoke-length windows (250ms) unless -duration is set explicitly")
		check      = flag.Bool("check", false, "run short and fail on regression vs the committed snapshots (writes nothing)")
		maxRegress = flag.Float64("max-regress", 0.20, "throughput regression budget for -check")
		validate   = flag.Bool("validate", false, "only parse and validate the committed snapshots")
	)
	flag.Parse()

	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "bench-trajectory: "+format+"\n", args...)
		os.Exit(1)
	}

	areas := strings.Split(*areasFlag, ",")
	for _, a := range areas {
		if benches[a] == nil {
			fail("unknown area %q (have %s)", a, strings.Join(benchjson.Areas, ", "))
		}
	}

	if *validate || *check {
		committed, err := benchjson.LoadAll(*dir)
		if err != nil {
			fail("%v", err)
		}
		for _, a := range areas {
			if committed[a] == nil {
				fail("no committed %s in %s", benchjson.FileName(a), *dir)
			}
		}
		if *validate {
			fmt.Printf("bench-trajectory: %d snapshot(s) in %s valid\n", len(committed), *dir)
			return
		}
		// -check: short windows, compare, never write.
		d := 250 * time.Millisecond
		if isFlagSet("duration") {
			d = *duration
		}
		failed := false
		for _, a := range areas {
			run := benchjson.NewRun("check", true)
			run.Benchmarks = benches[a](d)
			base := committed[a].Latest()
			if err := benchjson.CompareThroughput(base, &run, *maxRegress); err != nil {
				fmt.Fprintf(os.Stderr, "bench-trajectory: %s vs run %q: %v\n", a, base.Label, err)
				failed = true
			} else {
				fmt.Printf("%s: within %.0f%% of run %q (%d benchmarks)\n",
					a, *maxRegress*100, base.Label, len(run.Benchmarks))
			}
		}
		if failed {
			os.Exit(1)
		}
		return
	}

	d := *duration
	if *short && !isFlagSet("duration") {
		d = 250 * time.Millisecond
	}
	for _, a := range areas {
		run := benchjson.NewRun(*label, *short)
		run.Benchmarks = benches[a](d)
		path := filepath.Join(*dir, benchjson.FileName(a))
		snap, err := benchjson.Load(path)
		if os.IsNotExist(err) {
			snap = &benchjson.Snapshot{Schema: benchjson.SchemaVersion, Area: a}
		} else if err != nil {
			fail("%v", err)
		}
		snap.Append(run)
		if err := benchjson.Save(path, snap); err != nil {
			fail("writing %s: %v", path, err)
		}
		fmt.Printf("%s: appended run %q (%d runs total)\n", path, *label, len(snap.Runs))
		for name, m := range run.Benchmarks {
			fmt.Printf("  %-24s %12.0f ops/s  p50 %7.1fus  p99 %7.1fus  %6.2f allocs/op\n",
				name, m.ThroughputOpsPerSec, m.P50us, m.P99us, m.AllocsPerOp)
		}
	}
}

func isFlagSet(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

// benches maps each area to its measurement function.
var benches = map[string]func(d time.Duration) map[string]benchjson.Metrics{
	"proto":      benchProto,
	"server":     benchServer,
	"shard":      benchShard,
	"checkpoint": benchCheckpoint,
}

// ---------------------------------------------------------------- proto

// loopReader replays one byte slice forever: an endless frame stream
// with no syscalls, so the benchmark isolates codec cost.
type loopReader struct {
	data []byte
	off  int
}

func (l *loopReader) Read(p []byte) (int, error) {
	if l.off == len(l.data) {
		l.off = 0
	}
	n := copy(p, l.data[l.off:])
	l.off += n
	return n, nil
}

var sink int

// benchProto measures the wire codec exactly as the server's hot loops
// use it: request encoding into reused scratch, streaming frame reads
// off a connection, and reply framing.
func benchProto(d time.Duration) map[string]benchjson.Metrics {
	out := map[string]benchjson.Metrics{}

	// encode_request: one PUT request frame built into reused buffers,
	// the client writer's per-request work.
	var fbuf, pbuf []byte
	id := uint64(0)
	out["encode_request"] = benchjson.Measure(d, 1, func() {
		id++
		pbuf = proto.AppendKeyVal(pbuf[:0], int64(id), int64(id)*3)
		fbuf = proto.AppendFrame(fbuf[:0], proto.Frame{
			Ver: proto.Version, Op: proto.OpPut, ID: id, Payload: pbuf,
		})
		sink += len(fbuf)
	})

	// stream_read: frames decoded back-to-back from a buffered stream,
	// the server reader loop's per-frame work (one frame per op). Reads
	// through FrameReader, the reusable-buffer path readLoop uses.
	stream := buildFrameStream()
	fr := proto.NewFrameReader(bufio.NewReaderSize(&loopReader{data: stream}, 64<<10), 0)
	out["stream_read"] = benchjson.Measure(d, 1, func() {
		f, err := fr.Next()
		if err != nil {
			panic(err)
		}
		sink += len(f.Payload)
	})

	// put_reply_frame: a PUT reply (bool payload) framed for the writer,
	// the per-write reply cost in the coalescer fan-out: payload built
	// in reused scratch, frame appended to the outbound buffer exactly
	// as sendFrame does.
	var wbuf, pscratch []byte
	out["put_reply_frame"] = benchjson.Measure(d, 1, func() {
		id++
		pscratch = proto.AppendBool(pscratch[:0], true)
		wbuf = proto.AppendFrame(wbuf[:0], proto.Frame{
			Ver: proto.Version, Op: proto.OpPut | proto.FlagReply, ID: id, Payload: pscratch,
		})
		sink += len(wbuf)
	})
	return out
}

// buildFrameStream encodes a mixed request burst: the opcode mix of a
// 90/10 read-heavy pipeline, with a RANGE and a PING for size variety.
func buildFrameStream() []byte {
	var b []byte
	id := uint64(0)
	for i := 0; i < 256; i++ {
		id++
		switch i % 10 {
		case 0:
			b = proto.AppendFrame(b, proto.Frame{Ver: proto.Version, Op: proto.OpPut, ID: id,
				Payload: proto.AppendKeyVal(nil, int64(i), int64(i))})
		case 1:
			b = proto.AppendFrame(b, proto.Frame{Ver: proto.Version, Op: proto.OpRange, ID: id,
				Payload: proto.AppendRangeReq(nil, 0, int64(i)*100, 64)})
		case 2:
			b = proto.AppendFrame(b, proto.Frame{Ver: proto.Version, Op: proto.OpPing, ID: id,
				Payload: []byte("0123456789abcdef")})
		default:
			b = proto.AppendFrame(b, proto.Frame{Ver: proto.Version, Op: proto.OpGet, ID: id,
				Payload: proto.AppendKey(nil, int64(i))})
		}
	}
	return b
}

// --------------------------------------------------------------- server

// benchServer measures end-to-end dispatch: an in-process server over a
// MemFS-backed DB on loopback TCP, driven by the stock client pool with
// pipelined workers. Allocations count both ends — the full cost of one
// served request in this process.
func benchServer(d time.Duration) map[string]benchjson.Metrics {
	out := map[string]benchjson.Metrics{}
	const conns, depth, keys = 4, 16, 100_000

	withServer := func(fn func(cl *client.Client)) {
		db, err := durable.Open("benchdb", &durable.Options{
			Shards: 16, Seed: 42, NoBackground: true, FS: durable.NewMemFS(),
		})
		must(err)
		srv := server.New(db, server.Config{SweepInterval: -1})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		must(err)
		go srv.Serve(ln)
		cl, err := client.Open(ln.Addr().String(), conns, 30*time.Second)
		must(err)
		preload(cl, keys)
		fn(cl)
		cl.Close()
		srv.Close()
		must(db.Close())
	}

	withServer(func(cl *client.Client) {
		out["mixed_90r"] = measureConcurrent(d, conns*depth, func(w int) func() {
			rng := rand.New(rand.NewSource(int64(w)*2654435761 + 1))
			conn, err := cl.Conn()
			must(err)
			return func() {
				if rng.Float64() < 0.9 {
					_, _, err := conn.Get(rng.Int63n(keys))
					must(err)
				} else {
					_, err := conn.Put(rng.Int63n(keys), rng.Int63())
					must(err)
				}
			}
		})
	})

	withServer(func(cl *client.Client) {
		out["put_coalesced"] = measureConcurrent(d, conns*depth, func(w int) func() {
			rng := rand.New(rand.NewSource(int64(w)*2654435761 + 1))
			conn, err := cl.Conn()
			must(err)
			return func() {
				_, err := conn.Put(rng.Int63n(keys), rng.Int63())
				must(err)
			}
		})
	})
	return out
}

func preload(cl *client.Client, keys int) {
	const chunk = 4096
	items := make([]client.Item, 0, chunk)
	for k := 0; k < keys; k += chunk {
		items = items[:0]
		for j := k; j < k+chunk && j < keys; j++ {
			items = append(items, client.Item{Key: int64(j), Val: int64(j)})
		}
		_, err := cl.PutBatch(items)
		must(err)
	}
}

// ---------------------------------------------------------------- shard

// benchShard measures the storage engine's two server-facing paths: the
// coalesced mixed ApplyBatch and the bounded k-way-merged scan.
func benchShard(d time.Duration) map[string]benchjson.Metrics {
	out := map[string]benchjson.Metrics{}
	const keys = 200_000
	st, err := shard.NewWithConfig(shard.DefaultConfig(16), 42, nil)
	must(err)
	items := make([]shard.Item, 0, 4096)
	for k := 0; k < keys; k += 4096 {
		items = items[:0]
		for j := k; j < k+4096 && j < keys; j++ {
			items = append(items, shard.Item{Key: int64(j), Val: int64(j)})
		}
		st.PutBatch(items)
	}

	// apply_batch_1k: one coalescer drain — 1024 mixed ops (80% put,
	// 20% delete), outcome slots reused.
	const batch = 1024
	rng := rand.New(rand.NewSource(99))
	ops := make([]shard.Op, batch)
	changed := make([]bool, batch)
	out["apply_batch_1k"] = benchjson.Measure(d, batch, func() {
		for i := range ops {
			k := rng.Int63n(keys)
			ops[i] = shard.Op{Key: k, Val: k * 7, Delete: i%5 == 4}
		}
		_, err := st.ApplyBatch(ops, changed)
		must(err)
	})

	// range_n_100: the server's RANGE path — a bounded window merged
	// across all shards, output buffer reused.
	var rbuf []shard.Item
	out["range_n_100"] = benchjson.Measure(d, 1, func() {
		lo := rng.Int63n(keys)
		var more bool
		rbuf, more = st.RangeN(lo, lo+10_000, 100, rbuf[:0])
		if more {
			sink++
		}
		rbuf = rbuf[:0]
	})

	// range_1k: a wide copied-window merge (Range), output reused.
	out["range_1k"] = benchjson.Measure(d, 1, func() {
		lo := rng.Int63n(keys - 2000)
		rbuf = st.Range(lo, lo+1000, rbuf[:0])
		sink += len(rbuf)
		rbuf = rbuf[:0]
	})
	return out
}

// ----------------------------------------------------------- checkpoint

// benchCheckpoint measures the persistence layer's render-and-commit
// path over MemFS: dirty a few shards (incremental) or all of them
// (full), then checkpoint. One op = one committed checkpoint.
func benchCheckpoint(d time.Duration) map[string]benchjson.Metrics {
	out := map[string]benchjson.Metrics{}
	const keys = 50_000
	open := func() *durable.DB {
		db, err := durable.Open("cpdb", &durable.Options{
			Shards: 16, Seed: 42, NoBackground: true, FS: durable.NewMemFS(),
		})
		must(err)
		items := make([]shard.Item, 0, keys)
		for j := 0; j < keys; j++ {
			items = append(items, shard.Item{Key: int64(j), Val: int64(j)})
		}
		db.PutBatch(items)
		must(db.Checkpoint())
		return db
	}

	rng := rand.New(rand.NewSource(7))
	db := open()
	st := db.Store()
	out["incremental"] = benchjson.Measure(d, 1, func() {
		// Dirty roughly one shard: a handful of keys routed to wherever
		// the seeded hash puts them, then commit just those images.
		k := rng.Int63n(keys)
		want := st.ShardOf(k)
		db.Put(k, rng.Int63())
		for extra := 0; extra < 8; extra++ {
			k2 := rng.Int63n(keys)
			if st.ShardOf(k2) == want {
				db.Put(k2, rng.Int63())
			}
		}
		must(db.Checkpoint())
	})
	must(db.Close())

	db = open()
	batch := make([]shard.Item, 1024)
	out["full"] = benchjson.Measure(d, 1, func() {
		for i := range batch {
			batch[i] = shard.Item{Key: rng.Int63n(keys), Val: rng.Int63()}
		}
		db.PutBatch(batch)
		must(db.Checkpoint())
	})
	must(db.Close())
	return out
}

// ------------------------------------------------------------- plumbing

// measureConcurrent runs one op function per worker in a closed loop
// for d, sampling every 32nd op's latency per worker, and merges the
// result into one Metrics. Allocations are the process-wide delta over
// the window divided by completed ops.
func measureConcurrent(d time.Duration, workers int, mk func(w int) func()) benchjson.Metrics {
	var stop atomic.Bool
	var wg sync.WaitGroup
	var ops atomic.Uint64
	samples := make([][]time.Duration, workers)

	var ms0, ms1 struct{ mallocs, bytes uint64 }
	ms0.mallocs, ms0.bytes = readMemCounters()
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			op := mk(w)
			for i := 0; !stop.Load(); i++ {
				if i%32 == 0 {
					t0 := time.Now()
					op()
					samples[w] = append(samples[w], time.Since(t0))
				} else {
					op()
				}
				ops.Add(1)
			}
		}(w)
	}
	time.Sleep(d)
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(start)
	ms1.mallocs, ms1.bytes = readMemCounters()

	var all []time.Duration
	for _, s := range samples {
		all = append(all, s...)
	}
	p50, p99, max := benchjson.Quantiles(all)
	n := ops.Load()
	return benchjson.Metrics{
		Ops:                 n,
		ThroughputOpsPerSec: float64(n) / elapsed.Seconds(),
		NsPerOp:             float64(elapsed.Nanoseconds()) / float64(n),
		P50us:               p50,
		P99us:               p99,
		MaxUS:               max,
		AllocsPerOp:         float64(ms1.mallocs-ms0.mallocs) / float64(n),
		BytesPerOp:          float64(ms1.bytes-ms0.bytes) / float64(n),
	}
}

func readMemCounters() (mallocs, bytes uint64) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.Mallocs, ms.TotalAlloc
}

func must(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench-trajectory:", err)
		os.Exit(1)
	}
}

var _ io.Reader = (*loopReader)(nil)
