// illustrate regenerates the paper's two structural figures as live
// ASCII renderings of real instances:
//
//	Figure 1 — the HI PMA's subdivision of elements into ranges, with
//	           each range's candidate set hatched (~k~) and its balance
//	           element framed ([k]), above the physical array;
//	Figure 3 — the external skip list's levels, with arrays delimited
//	           by '|', leaf nodes by '‖', the front sentinel as 'F',
//	           and Invariant 16's leaf gaps as '.'.
//
// Because both structures are randomized, every run (or -seed) shows a
// different — identically distributed — layout for the same contents:
// that is weak history independence made visible.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/hipma"
	"repro/internal/skiplist"
)

func main() {
	seed := flag.Uint64("seed", 1, "random seed (vary it: same state, fresh layout)")
	n := flag.Int("n", 28, "elements to insert")
	width := flag.Int("width", 160, "max row width (0 = unlimited)")
	flag.Parse()

	fmt.Println("=== Figure 1: history-independent PMA ===")
	fmt.Println()
	p := hipma.New(*seed, nil)
	// Use a small MinTreeNhat? Default small-mode threshold is 128, so
	// for a Figure-1-sized example we insert enough to enter tree mode.
	count := *n
	if count < 150 {
		count = 150
	}
	for i := 1; i <= count; i++ {
		p.InsertAt(p.Len(), hipma.Item{Key: int64(i)})
	}
	p.Dump(os.Stdout, *width)

	fmt.Println()
	fmt.Println("=== Figure 3: HI external-memory skip list (B=4) ===")
	fmt.Println()
	s := skiplist.MustExternal(skiplist.Config{B: 4, Epsilon: 1}, *seed, nil)
	for i := 1; i <= *n; i++ {
		s.Insert(int64(i * 3 % 100))
	}
	s.Dump(os.Stdout, *width)

	fmt.Println()
	fmt.Println("(re-run with a different -seed: same logical state, a fresh layout")
	fmt.Println(" drawn from the same distribution — Definition 4 in action)")
}
