// uniformity regenerates the §4.3 history-independence experiment: the
// paper inserted 1..100,000 sequentially into the HI PMA 10,000 times,
// recorded the balance-element position for every range with candidate
// set ≥ 8, χ²-tested each range's positions against uniform, and then
// χ²-tested the resulting p-values against uniform — obtaining p = 0.47
// over n = 148 range cells, i.e. no detectable deviation.
//
// This tool runs the same protocol, scaled by flags. Because N̂ is
// itself random, a given range's candidate-window size varies across
// trials; observations are therefore pooled per (depth, range-index)
// cell into K fixed buckets, with each observation contributing its
// exact per-bucket probability to the expected histogram (offsets in a
// window of size w map to bucket ⌊offset·K/w⌋, which need not be
// equiprobable when K does not divide w — the expectation accounts for
// that exactly).
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	antipersist "repro"
	"repro/internal/stats"
)

type cellKey struct {
	depth, index int
}

type cell struct {
	counts   []int
	expected []float64
}

func main() {
	n := flag.Int("n", 100000, "sequential inserts per trial")
	trials := flag.Int("trials", 400, "number of independent trials")
	minWindow := flag.Int("minwindow", 8, "minimum candidate-window size (paper: 8)")
	buckets := flag.Int("k", 8, "pooling buckets per cell")
	minExpected := flag.Float64("minexpected", 10, "minimum expected count per bucket (paper: 10)")
	seed := flag.Uint64("seed", 1, "base random seed")
	flag.Parse()

	k := *buckets
	cells := make(map[cellKey]*cell)
	for trial := 0; trial < *trials; trial++ {
		p := antipersist.NewPMA(*seed+uint64(trial)*7919, nil)
		for i := 1; i <= *n; i++ {
			p.InsertAt(p.Len(), antipersist.Item{Key: int64(i)})
		}
		for _, o := range p.BalancePositions(*minWindow) {
			ck := cellKey{o.Depth, o.RangeIndex}
			c := cells[ck]
			if c == nil {
				c = &cell{counts: make([]int, k), expected: make([]float64, k)}
				cells[ck] = c
			}
			c.counts[o.Offset*k/o.Window]++
			// Exact bucket probabilities for a uniform offset in [0, w).
			for b := 0; b < k; b++ {
				// #offsets mapping to bucket b: ceil((b+1)w/k) - ceil(bw/k).
				lo := (b*o.Window + k - 1) / k
				hi := ((b+1)*o.Window + k - 1) / k
				c.expected[b] += float64(hi-lo) / float64(o.Window)
			}
		}
	}

	// First-level chi-square per cell, keeping cells where every
	// bucket's expected count is >= minExpected (as the paper does).
	var keys []cellKey
	for ck := range cells {
		keys = append(keys, ck)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.depth != b.depth {
			return a.depth < b.depth
		}
		return a.index < b.index
	})
	var pvals []float64
	for _, ck := range keys {
		c := cells[ck]
		ok := true
		for _, e := range c.expected {
			if e < *minExpected {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		_, p, err := stats.ChiSquare(c.counts, c.expected, 0)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cell", ck, "error:", err)
			continue
		}
		pvals = append(pvals, p)
	}

	if len(pvals) < 10 {
		fmt.Fprintf(os.Stderr, "only %d usable cells; increase -trials or lower -minexpected\n", len(pvals))
		os.Exit(1)
	}

	// Second-level test: under the null (balance elements uniform in
	// their candidate sets), these p-values are themselves uniform.
	stat, p2, err := stats.UniformPValues(pvals, 10)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	_, pks, _ := stats.KolmogorovSmirnov(pvals)

	fmt.Printf("trials=%d inserts=%d min-window=%d buckets=%d\n", *trials, *n, *minWindow, k)
	fmt.Printf("first-level cells tested: n = %d (paper: n = 148)\n", len(pvals))
	fmt.Printf("second-level chi-square over p-values: stat = %.2f, p = %.3f (paper: p = 0.47)\n", stat, p2)
	fmt.Printf("Kolmogorov-Smirnov cross-check:        p = %.3f\n", pks)
	if p2 > 0.01 {
		fmt.Println("verdict: no statistically significant deviation from uniformity —")
		fmt.Println("         the balance elements are uniform in their candidate sets (Invariant 6).")
	} else {
		fmt.Println("verdict: DEVIATION DETECTED — history independence is broken!")
		os.Exit(1)
	}
}
