// hidbd-bench is a closed-loop load generator for hidbd: every worker
// issues one request, waits for its reply, and immediately issues the
// next, so offered load self-regulates to the server's capacity.
// Concurrency is conns × depth: -conns pipelined connections, each
// shared by -depth workers, which is exactly how the protocol's
// request-id pipelining is meant to be used.
//
// Usage:
//
//	hidbd-bench [-addr HOST:PORT] [-conns 8] [-depth 16] [-read-frac 0.9]
//	            [-keys 100000] [-batch 0] [-duration 5s] [-min-ops 1] [-json]
//
// With no -addr, the bench self-hosts: it starts an in-process hidbd
// server over a fresh temporary directory on a loopback port, runs the
// load over real TCP, and tears everything down — one command for a
// smoke run (CI uses -duration 1s -json). Values are fixed 8-byte
// integers end to end; that is the store's data model (the paper's
// structures hold int64 pairs), so there is no -value-size knob to lie
// with. -batch n switches workers from single ops to n-key batch
// requests, measuring the wire-level batching win; ops counts keys, not
// requests.
//
// The process exits nonzero if total completed ops fall below -min-ops,
// so a wedged server fails loudly in CI.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	antipersist "repro"
	"repro/client"
	"repro/internal/server"
)

type result struct {
	Addr       string  `json:"addr"`
	SelfHosted bool    `json:"self_hosted"`
	Conns      int     `json:"conns"`
	Depth      int     `json:"depth"`
	ReadFrac   float64 `json:"read_frac"`
	Keys       int     `json:"key_space"`
	Batch      int     `json:"batch"`
	DurationMS float64 `json:"duration_ms"`
	Ops        uint64  `json:"ops"`
	Reads      uint64  `json:"reads"`
	Writes     uint64  `json:"writes"`
	Errors     uint64  `json:"errors"`
	OpsPerSec  float64 `json:"ops_per_sec"`
	P50us      float64 `json:"p50_us"`
	P99us      float64 `json:"p99_us"`
	MaxUS      float64 `json:"max_us"`
	GoMaxProcs int     `json:"gomaxprocs"`
	GoVersion  string  `json:"go_version"`
}

func main() {
	var (
		addr     = flag.String("addr", "", "server address; empty self-hosts an in-process hidbd")
		conns    = flag.Int("conns", 8, "pipelined connections")
		depth    = flag.Int("depth", 16, "workers (in-flight requests) per connection")
		readFrac = flag.Float64("read-frac", 0.9, "fraction of ops that are reads")
		keys     = flag.Int("keys", 100_000, "key space size")
		batch    = flag.Int("batch", 0, "use n-key batch requests instead of single ops (0: single)")
		duration = flag.Duration("duration", 5*time.Second, "measurement window")
		minOps   = flag.Uint64("min-ops", 1, "exit nonzero below this many completed ops")
		jsonOut  = flag.Bool("json", false, "emit one JSON document instead of text")
	)
	flag.Parse()

	res := result{
		Conns: *conns, Depth: *depth, ReadFrac: *readFrac, Keys: *keys, Batch: *batch,
		GoMaxProcs: runtime.GOMAXPROCS(0), GoVersion: runtime.Version(),
	}

	target := *addr
	var stopServer func()
	if target == "" {
		res.SelfHosted = true
		var err error
		target, stopServer, err = selfHost()
		if err != nil {
			fmt.Fprintf(os.Stderr, "hidbd-bench: self-host: %v\n", err)
			os.Exit(1)
		}
		defer stopServer()
	}
	res.Addr = target

	cl, err := client.Open(target, *conns, 30*time.Second)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hidbd-bench: %v\n", err)
		os.Exit(1)
	}
	defer cl.Close()
	if err := cl.Ping(nil); err != nil {
		fmt.Fprintf(os.Stderr, "hidbd-bench: ping: %v\n", err)
		os.Exit(1)
	}

	var ops, reads, writes, errs atomic.Uint64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	workers := *conns * *depth
	// Each worker samples every 64th op's latency into its own slice;
	// percentiles merge the samples afterward.
	samples := make([][]time.Duration, workers)

	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)*2654435761 + 1))
			conn := cl.Conn() // round-robin: depth workers per conn
			kbuf := make([]int64, 0, *batch)
			ibuf := make([]client.Item, 0, *batch)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				isRead := rng.Float64() < *readFrac
				var t0 time.Time
				if i%64 == 0 {
					t0 = time.Now()
				}
				var err error
				n := 1
				switch {
				case *batch > 1 && isRead:
					kbuf = kbuf[:0]
					for j := 0; j < *batch; j++ {
						kbuf = append(kbuf, rng.Int63n(int64(*keys)))
					}
					_, _, err = conn.GetBatch(kbuf)
					n = *batch
				case *batch > 1:
					ibuf = ibuf[:0]
					for j := 0; j < *batch; j++ {
						ibuf = append(ibuf, client.Item{Key: rng.Int63n(int64(*keys)), Val: rng.Int63()})
					}
					_, err = conn.PutBatch(ibuf)
					n = *batch
				case isRead:
					_, _, err = conn.Get(rng.Int63n(int64(*keys)))
				default:
					_, err = conn.Put(rng.Int63n(int64(*keys)), rng.Int63())
				}
				if err != nil {
					select {
					case <-stop: // a teardown race, not a server error
					default:
						errs.Add(1)
					}
					return
				}
				if i%64 == 0 {
					samples[w] = append(samples[w], time.Since(t0))
				}
				ops.Add(uint64(n))
				if isRead {
					reads.Add(uint64(n))
				} else {
					writes.Add(uint64(n))
				}
			}
		}(w)
	}
	time.Sleep(*duration)
	close(stop)
	wg.Wait()
	elapsed := time.Since(start)

	var all []time.Duration
	for _, s := range samples {
		all = append(all, s...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	pct := func(p float64) float64 {
		if len(all) == 0 {
			return 0
		}
		i := int(p * float64(len(all)-1))
		return float64(all[i].Nanoseconds()) / 1e3
	}

	res.DurationMS = float64(elapsed.Nanoseconds()) / 1e6
	res.Ops = ops.Load()
	res.Reads = reads.Load()
	res.Writes = writes.Load()
	res.Errors = errs.Load()
	res.OpsPerSec = float64(res.Ops) / elapsed.Seconds()
	res.P50us, res.P99us, res.MaxUS = pct(0.50), pct(0.99), pct(1.0)

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(res)
	} else {
		mode := "single ops"
		if *batch > 1 {
			mode = fmt.Sprintf("%d-key batches", *batch)
		}
		fmt.Printf("hidbd-bench: %s, %d conns x %d depth, %.0f%% reads, %s\n",
			res.Addr, res.Conns, res.Depth, res.ReadFrac*100, mode)
		fmt.Printf("  %d ops in %.2fs = %.0f ops/s (%d reads, %d writes, %d errors)\n",
			res.Ops, elapsed.Seconds(), res.OpsPerSec, res.Reads, res.Writes, res.Errors)
		fmt.Printf("  latency p50 %.1fus  p99 %.1fus  max %.1fus (request round trips)\n",
			res.P50us, res.P99us, res.MaxUS)
	}
	if res.Ops < *minOps {
		fmt.Fprintf(os.Stderr, "hidbd-bench: %d ops < minimum %d\n", res.Ops, *minOps)
		os.Exit(1)
	}
}

// selfHost starts an in-process hidbd over a fresh temp directory on a
// loopback port and returns its address plus a teardown.
func selfHost() (addr string, stop func(), err error) {
	dir, err := os.MkdirTemp("", "hidbd-bench-*")
	if err != nil {
		return "", nil, err
	}
	db, err := antipersist.Open(dir, &antipersist.DBOptions{Shards: 16, Seed: 42})
	if err != nil {
		os.RemoveAll(dir)
		return "", nil, err
	}
	srv := server.New(db, server.Config{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		db.Close()
		os.RemoveAll(dir)
		return "", nil, err
	}
	go srv.Serve(ln)
	return ln.Addr().String(), func() {
		srv.Close()
		db.Close()
		os.RemoveAll(dir)
	}, nil
}
