// hidbd-bench is a closed-loop load generator for hidbd: every worker
// issues one request, waits for its reply, and immediately issues the
// next, so offered load self-regulates to the server's capacity.
// Concurrency is conns × depth: -conns pipelined connections, each
// shared by -depth workers, which is exactly how the protocol's
// request-id pipelining is meant to be used.
//
// Usage:
//
//	hidbd-bench [-addr HOST:PORT] [-conns 8] [-depth 16] [-read-frac 0.9]
//	            [-keys 100000] [-batch 0] [-duration 5s] [-min-ops 1] [-json]
//
// With no -addr, the bench self-hosts: it starts an in-process hidbd
// server over a fresh temporary directory on a loopback port, runs the
// load over real TCP, and tears everything down — one command for a
// smoke run (CI uses -duration 1s -json). Values are fixed 8-byte
// integers end to end; that is the store's data model (the paper's
// structures hold int64 pairs), so there is no -value-size knob to lie
// with. -batch n switches workers from single ops to n-key batch
// requests, measuring the wire-level batching win; ops counts keys, not
// requests.
//
// Read-scaling mode: -replicas N (self-host only) stands up N read
// replicas next to the in-process primary, preloads the key space,
// waits for the replicas to converge, and then sends reads to the
// replicas (round-robin) while writes keep hitting the primary — the
// fan-out read tier measured end to end. Against an external cluster,
// -replica-addrs lists replica addresses for the same split.
//
// Session-churn mode: -ttl D makes writes carry an absolute expiry of
// now + D (for the -ttl-frac fraction of them; the rest stay plain),
// and turns reads into GETTTLs that count "expired reads" — lookups
// that found nothing because the session died. With a short -ttl the
// key space continuously expires under the read load, which is the
// retention-bounded workload (sessions, caches, compliance-expired
// records) the expiry subsystem exists for: the server sweeps dead
// entries epoch by epoch while the bench measures read-until-gone
// rates. The JSON output reports expired_reads and expired_read_rate.
//
// Multi-tenant mode: -tenants N fans the same closed-loop workload
// across N tenant namespaces via NSPUT/NSGET — each op picks a tenant
// uniformly, so the server carries N live cells with independent
// derived seeds while the bench measures the routing overhead of
// namespaced addressing. Composes with -ttl (namespaced session
// churn); -batch stays default-keyspace only (there is no namespaced
// batch opcode).
//
// Failover mode: -failover (self-host only, needs -replicas >= 1)
// points the client pool at the whole cluster as a ranked endpoint
// list, then kills the primary — listener and all — halfway through
// the window and promotes replica 0 over the wire with a PROMOTE
// frame. Workers tolerate the outage (errors are counted, not fatal)
// and keep going once the pool fails over to the promoted node, so
// -min-ops enforces that the cluster actually came back. This is the
// HA path measured end to end: kill, promote, redirect, finish.
//
// The process exits nonzero if total completed ops fall below -min-ops,
// so a wedged server fails loudly in CI.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	antipersist "repro"
	"repro/client"
	"repro/internal/replica"
	"repro/internal/server"
)

type result struct {
	Addr       string  `json:"addr"`
	SelfHosted bool    `json:"self_hosted"`
	Replicas   int     `json:"replicas"`
	Conns      int     `json:"conns"`
	Depth      int     `json:"depth"`
	ReadFrac   float64 `json:"read_frac"`
	Keys       int     `json:"key_space"`
	Batch      int     `json:"batch"`
	Tenants    int     `json:"tenants,omitempty"`
	Failover   bool    `json:"failover,omitempty"`
	DurationMS float64 `json:"duration_ms"`
	Ops        uint64  `json:"ops"`
	Reads      uint64  `json:"reads"`
	Writes     uint64  `json:"writes"`
	Errors     uint64  `json:"errors"`
	OpsPerSec  float64 `json:"ops_per_sec"`

	// Session-churn (-ttl) fields.
	TTLSeconds      float64 `json:"ttl_seconds,omitempty"`
	TTLFrac         float64 `json:"ttl_frac,omitempty"`
	ExpiredReads    uint64  `json:"expired_reads"`
	ExpiredReadRate float64 `json:"expired_read_rate"`
	P50us           float64 `json:"p50_us"`
	P99us           float64 `json:"p99_us"`
	MaxUS           float64 `json:"max_us"`
	// AllocsPerOp is the bench process's own heap allocations per
	// completed operation — the CLIENT side's cost, measured the same
	// way the bench-trajectory harness measures the server layers.
	AllocsPerOp float64 `json:"allocs_per_op"`
	GoMaxProcs  int     `json:"gomaxprocs"`
	GoVersion   string  `json:"go_version"`
}

func main() {
	var (
		addr     = flag.String("addr", "", "server address; empty self-hosts an in-process hidbd")
		conns    = flag.Int("conns", 8, "pipelined connections")
		depth    = flag.Int("depth", 16, "workers (in-flight requests) per connection")
		readFrac = flag.Float64("read-frac", 0.9, "fraction of ops that are reads")
		keys     = flag.Int("keys", 100_000, "key space size")
		batch    = flag.Int("batch", 0, "use n-key batch requests instead of single ops (0: single)")
		duration = flag.Duration("duration", 5*time.Second, "measurement window")
		minOps   = flag.Uint64("min-ops", 1, "exit nonzero below this many completed ops")
		jsonOut  = flag.Bool("json", false, "emit one JSON document instead of text")
		outPath  = flag.String("out", "", "write the JSON document to this file (implies -json)")
		replicas = flag.Int("replicas", 0, "self-host this many read replicas and send reads to them")
		repAddrs = flag.String("replica-addrs", "", "comma-separated external replica addresses for reads")
		ttl      = flag.Duration("ttl", 0, "session-churn: writes expire this long after they land (0: no TTL workload)")
		ttlFrac  = flag.Float64("ttl-frac", 1.0, "fraction of writes that carry the -ttl expiry")
		failover = flag.Bool("failover", false, "kill the self-hosted primary mid-run and promote replica 0 (needs -replicas >= 1)")
		tenants  = flag.Int("tenants", 0, "fan the workload across this many tenant namespaces via NSPUT/NSGET (0: default keyspace)")
	)
	flag.Parse()
	if *replicas > 0 && *addr != "" {
		fmt.Fprintln(os.Stderr, "hidbd-bench: -replicas requires self-hosting (omit -addr); use -replica-addrs against an external cluster")
		os.Exit(2)
	}
	if *failover && (*addr != "" || *replicas < 1) {
		fmt.Fprintln(os.Stderr, "hidbd-bench: -failover requires self-hosting with -replicas >= 1")
		os.Exit(2)
	}
	if *ttl > 0 && *batch > 1 {
		fmt.Fprintln(os.Stderr, "hidbd-bench: -ttl measures single-op session churn; drop -batch")
		os.Exit(2)
	}
	if *tenants > 0 && *batch > 1 {
		fmt.Fprintln(os.Stderr, "hidbd-bench: -tenants uses single namespaced ops; drop -batch")
		os.Exit(2)
	}
	ttlSec := int64(ttl.Seconds())
	if *ttl > 0 && ttlSec == 0 {
		ttlSec = 1 // sub-second TTLs round up: epochs are whole seconds
	}

	res := result{
		Conns: *conns, Depth: *depth, ReadFrac: *readFrac, Keys: *keys, Batch: *batch, Tenants: *tenants,
		TTLSeconds: ttl.Seconds(), TTLFrac: *ttlFrac,
		GoMaxProcs: runtime.GOMAXPROCS(0), GoVersion: runtime.Version(),
	}

	target := *addr
	var stopServer, killPrimary func()
	var replicaTargets []string
	if target == "" {
		res.SelfHosted = true
		var err error
		target, replicaTargets, killPrimary, stopServer, err = selfHost(*replicas)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hidbd-bench: self-host: %v\n", err)
			os.Exit(1)
		}
		defer stopServer()
	}
	if *repAddrs != "" {
		for _, a := range strings.Split(*repAddrs, ",") {
			if a = strings.TrimSpace(a); a != "" {
				replicaTargets = append(replicaTargets, a)
			}
		}
	}
	res.Addr = target
	res.Replicas = len(replicaTargets)

	// In failover mode the pool knows the whole cluster as a ranked
	// endpoint list, so it can find the promoted node on its own.
	endpoints := []string{target}
	if *failover {
		endpoints = append(endpoints, replicaTargets...)
	}
	cl, err := client.OpenEndpoints(endpoints, *conns, 30*time.Second)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hidbd-bench: %v\n", err)
		os.Exit(1)
	}
	defer cl.Close()
	if err := cl.Ping(nil); err != nil {
		fmt.Fprintf(os.Stderr, "hidbd-bench: ping: %v\n", err)
		os.Exit(1)
	}

	// The read pool: with replicas, reads go to them round-robin per
	// worker; without, everything hits the primary.
	readPools := []*client.Client{cl}
	if len(replicaTargets) > 0 {
		readPools = readPools[:0]
		for _, a := range replicaTargets {
			rcl, err := client.Open(a, *conns, 30*time.Second)
			if err != nil {
				fmt.Fprintf(os.Stderr, "hidbd-bench: replica %s: %v\n", a, err)
				os.Exit(1)
			}
			defer rcl.Close()
			readPools = append(readPools, rcl)
		}
		// Preload the key space and let every replica converge onto the
		// preloaded checkpoint so the read tier answers real lookups.
		if err := preload(cl, readPools, *keys); err != nil {
			fmt.Fprintf(os.Stderr, "hidbd-bench: preload: %v\n", err)
			os.Exit(1)
		}
	}

	// Tenant names are fixed and shared: every worker draws uniformly
	// from the same set, so all N cells stay live for the whole window.
	var tnames []string
	if *tenants > 0 {
		tnames = make([]string, *tenants)
		for i := range tnames {
			tnames[i] = fmt.Sprintf("tenant-%04d", i)
		}
	}

	var ops, reads, writes, errs, expiredReads atomic.Uint64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	workers := *conns * *depth
	// Each worker samples every 64th op's latency into its own slice;
	// percentiles merge the samples afterward.
	samples := make([][]time.Duration, workers)

	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)*2654435761 + 1))
			var conn, rconn kvOps
			if *failover {
				// Everything goes through the pool so its endpoint
				// failover — not a pinned connection — carries the
				// worker across the primary's death.
				conn, rconn = cl, cl
			} else {
				c, cerr := cl.Conn() // round-robin: depth workers per conn
				if cerr != nil {
					errs.Add(1)
					return
				}
				// Reads go to this worker's replica connection when a read
				// tier exists; without one they stay on the SAME connection
				// as the writes, preserving the classic single-node profile
				// (depth workers per conn, per-conn read-after-write order).
				conn, rconn = c, c
				if len(replicaTargets) > 0 {
					rc, cerr := readPools[w%len(readPools)].Conn()
					if cerr != nil {
						errs.Add(1)
						return
					}
					rconn = rc
				}
			}
			kbuf := make([]int64, 0, *batch)
			ibuf := make([]client.Item, 0, *batch)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				isRead := rng.Float64() < *readFrac
				var t0 time.Time
				if i%64 == 0 {
					t0 = time.Now()
				}
				var err error
				n := 1
				switch {
				case *batch > 1 && isRead:
					kbuf = kbuf[:0]
					for j := 0; j < *batch; j++ {
						kbuf = append(kbuf, rng.Int63n(int64(*keys)))
					}
					_, _, err = rconn.GetBatch(kbuf)
					n = *batch
				case *batch > 1:
					ibuf = ibuf[:0]
					for j := 0; j < *batch; j++ {
						ibuf = append(ibuf, client.Item{Key: rng.Int63n(int64(*keys)), Val: rng.Int63()})
					}
					_, err = conn.PutBatch(ibuf)
					n = *batch
				case *tenants > 0 && isRead && ttlSec > 0:
					var ok bool
					_, _, ok, err = rconn.NSGetTTL(tnames[rng.Intn(len(tnames))], rng.Int63n(int64(*keys)))
					if err == nil && !ok {
						expiredReads.Add(1)
					}
				case *tenants > 0 && isRead:
					_, _, err = rconn.NSGet(tnames[rng.Intn(len(tnames))], rng.Int63n(int64(*keys)))
				case *tenants > 0:
					// Namespaced write; carries the -ttl expiry for the
					// -ttl-frac fraction, like the default-keyspace path.
					exp := int64(0)
					if ttlSec > 0 && rng.Float64() < *ttlFrac {
						exp = time.Now().Unix() + ttlSec
					}
					_, err = conn.NSPutTTL(tnames[rng.Intn(len(tnames))], rng.Int63n(int64(*keys)), rng.Int63(), exp)
				case isRead && ttlSec > 0:
					// Read-until-gone: a miss means the session expired
					// (the key space is continuously rewritten, so misses
					// are deaths, not never-written keys, at steady state).
					var ok bool
					_, _, ok, err = rconn.GetTTL(rng.Int63n(int64(*keys)))
					if err == nil && !ok {
						expiredReads.Add(1)
					}
				case isRead:
					_, _, err = rconn.Get(rng.Int63n(int64(*keys)))
				case ttlSec > 0 && rng.Float64() < *ttlFrac:
					// Write-with-TTL: the session dies ttlSec from now.
					// The client does the relative→absolute arithmetic;
					// the wire carries only the absolute epoch.
					_, err = conn.PutTTL(rng.Int63n(int64(*keys)), rng.Int63(),
						time.Now().Unix()+ttlSec)
				default:
					_, err = conn.Put(rng.Int63n(int64(*keys)), rng.Int63())
				}
				if err != nil {
					select {
					case <-stop: // a teardown race, not a server error
						return
					default:
						errs.Add(1)
					}
					if *failover {
						// The outage is the point: back off briefly and
						// keep offering load so the post-promotion
						// cluster gets measured too.
						time.Sleep(5 * time.Millisecond)
						continue
					}
					return
				}
				if i%64 == 0 {
					samples[w] = append(samples[w], time.Since(t0))
				}
				ops.Add(uint64(n))
				if isRead {
					reads.Add(uint64(n))
				} else {
					writes.Add(uint64(n))
				}
			}
		}(w)
	}
	if *failover {
		// Halfway through: power-cut the primary (listener, conns, and
		// all — the durable state is abandoned, not checkpointed), then
		// promote replica 0 over the wire. The PROMOTE frame is the
		// same opcode an operator's tooling would send.
		time.Sleep(*duration / 2)
		killPrimary()
		pc, perr := client.DialTimeout(replicaTargets[0], 5*time.Second)
		if perr == nil {
			_, perr = pc.Promote()
			pc.Close()
		}
		if perr != nil {
			fmt.Fprintf(os.Stderr, "hidbd-bench: promote %s: %v\n", replicaTargets[0], perr)
			os.Exit(1)
		}
		res.Failover = true
		time.Sleep(*duration - *duration/2)
	} else {
		time.Sleep(*duration)
	}
	close(stop)
	wg.Wait()
	elapsed := time.Since(start)
	runtime.ReadMemStats(&ms1)

	var all []time.Duration
	for _, s := range samples {
		all = append(all, s...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	pct := func(p float64) float64 {
		if len(all) == 0 {
			return 0
		}
		i := int(p * float64(len(all)-1))
		return float64(all[i].Nanoseconds()) / 1e3
	}

	res.DurationMS = float64(elapsed.Nanoseconds()) / 1e6
	res.Ops = ops.Load()
	res.Reads = reads.Load()
	res.Writes = writes.Load()
	res.Errors = errs.Load()
	res.OpsPerSec = float64(res.Ops) / elapsed.Seconds()
	res.P50us, res.P99us, res.MaxUS = pct(0.50), pct(0.99), pct(1.0)
	res.ExpiredReads = expiredReads.Load()
	if res.Reads > 0 {
		res.ExpiredReadRate = float64(res.ExpiredReads) / float64(res.Reads)
	}
	if res.Ops > 0 {
		res.AllocsPerOp = float64(ms1.Mallocs-ms0.Mallocs) / float64(res.Ops)
	}

	if *jsonOut || *outPath != "" {
		// A bench whose results cannot be recorded has failed: CI parses
		// this output, so a short write must be a nonzero exit, never a
		// silently truncated document.
		if err := writeJSON(*outPath, res); err != nil {
			fmt.Fprintf(os.Stderr, "hidbd-bench: writing results: %v\n", err)
			os.Exit(1)
		}
	} else {
		mode := "single ops"
		if *batch > 1 {
			mode = fmt.Sprintf("%d-key batches", *batch)
		}
		if *ttl > 0 {
			mode += fmt.Sprintf(", session churn (ttl %v, %.0f%% of writes)", *ttl, *ttlFrac*100)
		}
		if *tenants > 0 {
			mode += fmt.Sprintf(", fanned across %d tenant namespaces", *tenants)
		}
		if res.Replicas > 0 {
			mode += fmt.Sprintf(", reads fanned out to %d replica(s)", res.Replicas)
		}
		fmt.Printf("hidbd-bench: %s, %d conns x %d depth, %.0f%% reads, %s\n",
			res.Addr, res.Conns, res.Depth, res.ReadFrac*100, mode)
		fmt.Printf("  %d ops in %.2fs = %.0f ops/s (%d reads, %d writes, %d errors)\n",
			res.Ops, elapsed.Seconds(), res.OpsPerSec, res.Reads, res.Writes, res.Errors)
		fmt.Printf("  latency p50 %.1fus  p99 %.1fus  max %.1fus (request round trips)\n",
			res.P50us, res.P99us, res.MaxUS)
		fmt.Printf("  client-side allocs/op %.2f\n", res.AllocsPerOp)
		if *ttl > 0 {
			fmt.Printf("  expired reads %d (%.1f%% of reads): sessions found already gone\n",
				res.ExpiredReads, res.ExpiredReadRate*100)
		}
	}
	if res.Ops < *minOps {
		fmt.Fprintf(os.Stderr, "hidbd-bench: %d ops < minimum %d\n", res.Ops, *minOps)
		os.Exit(1)
	}
}

// writeJSON emits res as one indented JSON document to path, or to
// stdout when path is empty. Every write and close error is returned —
// a result that didn't land on disk (ENOSPC, a bad path, a full pipe)
// must fail the run, not truncate silently.
func writeJSON(path string, res result) error {
	buf, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if path == "" {
		_, err := os.Stdout.Write(buf)
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// kvOps is the slice of the client API the workers use — satisfied by
// both *client.Conn (pinned connection, the classic profile) and
// *client.Client (the pool, whose failover carries workers across a
// primary's death).
type kvOps interface {
	Get(key int64) (int64, bool, error)
	GetTTL(key int64) (val, exp int64, ok bool, err error)
	GetBatch(keys []int64) ([]int64, []bool, error)
	Put(key, val int64) (bool, error)
	PutTTL(key, val, exp int64) (bool, error)
	PutBatch(items []client.Item) (int, error)
	NSGet(ns string, key int64) (int64, bool, error)
	NSGetTTL(ns string, key int64) (val, exp int64, ok bool, err error)
	NSPutTTL(ns string, key, val, exp int64) (bool, error)
}

// selfHost starts an in-process hidbd over a fresh temp directory on a
// loopback port — plus nReplicas read replicas, each with its own
// directory, continuously syncing off the primary — and returns the
// primary address, the replica addresses, a kill switch that
// power-cuts the primary (for -failover), and one teardown.
func selfHost(nReplicas int) (addr string, replicaAddrs []string, killPrimary, stop func(), err error) {
	var stops []func()
	stop = func() {
		for i := len(stops) - 1; i >= 0; i-- {
			stops[i]()
		}
	}
	fail := func(err error) (string, []string, func(), func(), error) {
		stop()
		return "", nil, nil, nil, err
	}

	dir, err := os.MkdirTemp("", "hidbd-bench-*")
	if err != nil {
		return fail(err)
	}
	stops = append(stops, func() { os.RemoveAll(dir) })
	db, err := antipersist.Open(dir, &antipersist.DBOptions{Shards: 16, Seed: 42})
	if err != nil {
		return fail(err)
	}
	var dead atomic.Bool
	stops = append(stops, func() {
		if !dead.Load() {
			db.Close()
		}
	})
	srv := server.New(db, server.Config{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fail(err)
	}
	go srv.Serve(ln)
	stops = append(stops, srv.Close)
	addr = ln.Addr().String()
	killPrimary = func() {
		// Power cut, not shutdown: the listener and every conn drop,
		// and the durable state is abandoned without the clean-close
		// checkpoint — whatever wasn't checkpointed is gone, exactly
		// like a crash.
		if dead.Swap(true) {
			return
		}
		srv.Close()
		db.Abandon()
	}

	for i := 0; i < nReplicas; i++ {
		rdir, err := os.MkdirTemp("", "hidbd-bench-replica-*")
		if err != nil {
			return fail(err)
		}
		stops = append(stops, func() { os.RemoveAll(rdir) })
		rdb, err := antipersist.Open(rdir, &antipersist.DBOptions{
			Shards: 16, Seed: uint64(1000 + i), NoBackground: true, NoSweep: true,
		})
		if err != nil {
			return fail(err)
		}
		stops = append(stops, func() { rdb.Close() })
		rep, err := replica.New(rdb, replica.Config{
			Interval: 50 * time.Millisecond,
			Dial: func() (net.Conn, error) {
				return net.DialTimeout("tcp", addr, 5*time.Second)
			},
		})
		if err != nil {
			return fail(err)
		}
		rep.Start()
		stops = append(stops, rep.Stop)
		rsrv := server.New(rdb, server.Config{
			ReadOnly: true,
			// A PROMOTE frame lifts this node to primary: anti-entropy
			// abdicates first, then the background checkpointer starts.
			OnPromote:         rep.Abdicate,
			PromoteBackground: true,
		})
		rln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return fail(err)
		}
		go rsrv.Serve(rln)
		stops = append(stops, rsrv.Close)
		replicaAddrs = append(replicaAddrs, rln.Addr().String())
	}
	return addr, replicaAddrs, killPrimary, stop, nil
}

// preload writes the whole key space to the primary, checkpoints, and
// waits (bounded) for every read target to hold the full count, so the
// measured window exercises converged replicas.
func preload(primary *client.Client, readPools []*client.Client, keys int) error {
	const chunk = 4096
	items := make([]client.Item, 0, chunk)
	for k := 0; k < keys; k += chunk {
		items = items[:0]
		for j := k; j < k+chunk && j < keys; j++ {
			items = append(items, client.Item{Key: int64(j), Val: int64(j)})
		}
		if _, err := primary.PutBatch(items); err != nil {
			return err
		}
	}
	if _, err := primary.Checkpoint(); err != nil {
		return err
	}
	deadline := time.Now().Add(30 * time.Second)
	for _, rp := range readPools {
		for {
			n, err := rp.Len()
			if err == nil && n >= keys {
				break
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("replica still at %d/%d keys after preload (last error: %v)", n, keys, err)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}
	return nil
}
