// hidict is a small interactive shell over the history-independent
// cache-oblivious B-tree — handy for poking at the structure and
// watching its I/O and rebuild counters live.
//
//	$ go run ./cmd/hidict
//	> put 7 700
//	> get 7
//	700
//	> range 0 100
//	7=700
//	> stats
//	...
//
// Commands: put K V · get K · del K · range LO HI · min · max ·
// rank K · select R · len · stats · check · help · quit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	antipersist "repro"
)

func main() {
	seed := flag.Uint64("seed", 1, "random seed")
	blockSize := flag.Int("b", 64, "DAM block size")
	cache := flag.Int("cache", 256, "LRU cache frames")
	flag.Parse()

	io := antipersist.NewIOTracker(*blockSize, *cache)
	dict := antipersist.NewDictionary(*seed, io)
	fmt.Println("history-independent dictionary shell — type 'help' for commands")

	sc := bufio.NewScanner(os.Stdin)
	for fmt.Print("> "); sc.Scan(); fmt.Print("> ") {
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		cmd, args := fields[0], fields[1:]
		switch cmd {
		case "quit", "exit", "q":
			return
		case "help":
			fmt.Println("put K V · get K · del K · range LO HI · min · max · rank K · select R · len · stats · check · quit")
		case "put":
			k, v, ok := int2(args)
			if !ok {
				fmt.Println("usage: put K V")
				continue
			}
			if dict.Put(k, v) {
				fmt.Println("inserted")
			} else {
				fmt.Println("updated")
			}
		case "get":
			k, ok := int1(args)
			if !ok {
				fmt.Println("usage: get K")
				continue
			}
			if v, found := dict.Get(k); found {
				fmt.Println(v)
			} else {
				fmt.Println("(not found)")
			}
		case "del":
			k, ok := int1(args)
			if !ok {
				fmt.Println("usage: del K")
				continue
			}
			if dict.Delete(k) {
				fmt.Println("deleted — unrecoverably")
			} else {
				fmt.Println("(not found)")
			}
		case "range":
			lo, hi, ok := int2(args)
			if !ok {
				fmt.Println("usage: range LO HI")
				continue
			}
			items := dict.Range(lo, hi, nil)
			for _, it := range items {
				fmt.Printf("%d=%d\n", it.Key, it.Val)
			}
			fmt.Printf("(%d items)\n", len(items))
		case "min":
			if it, ok := dict.Min(); ok {
				fmt.Printf("%d=%d\n", it.Key, it.Val)
			} else {
				fmt.Println("(empty)")
			}
		case "max":
			if it, ok := dict.Max(); ok {
				fmt.Printf("%d=%d\n", it.Key, it.Val)
			} else {
				fmt.Println("(empty)")
			}
		case "rank":
			k, ok := int1(args)
			if !ok {
				fmt.Println("usage: rank K")
				continue
			}
			fmt.Println(dict.RankOf(k))
		case "select":
			r, ok := int1(args)
			if !ok || r < 0 || int(r) >= dict.Len() {
				fmt.Println("usage: select R with 0 <= R < len")
				continue
			}
			it := dict.Select(int(r))
			fmt.Printf("%d=%d\n", it.Key, it.Val)
		case "len":
			fmt.Println(dict.Len())
		case "stats":
			p := dict.PMA()
			fmt.Printf("n=%d  Nhat=%d  slots=%d (%.2fx)  height=%d\n",
				p.Len(), p.Nhat(), p.SlotCount(),
				float64(p.SlotCount())/float64(maxInt(p.Len(), 1)), p.Height())
			fmt.Printf("moves=%d  rebuilds=%d  full-rebuilds=%d\n",
				p.Moves(), p.Rebuilds(), p.FullRebuilds())
			fmt.Printf("I/O: reads=%d writes=%d hits=%d (B=%d)\n",
				io.Reads(), io.Writes(), io.Hits(), io.B())
		case "check":
			if err := dict.CheckInvariants(); err != nil {
				fmt.Println("INVARIANT VIOLATION:", err)
			} else {
				fmt.Println("all invariants hold")
			}
		default:
			fmt.Println("unknown command; try 'help'")
		}
	}
}

func int1(args []string) (int64, bool) {
	if len(args) != 1 {
		return 0, false
	}
	v, err := strconv.ParseInt(args[0], 10, 64)
	return v, err == nil
}

func int2(args []string) (int64, int64, bool) {
	if len(args) != 2 {
		return 0, 0, false
	}
	a, err1 := strconv.ParseInt(args[0], 10, 64)
	b, err2 := strconv.ParseInt(args[1], 10, 64)
	return a, b, err1 == nil && err2 == nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
