// store-bench measures the sharded Store's scaling story end to end:
// throughput of a mixed Get/Put/Delete workload against the shard count
// and the number of worker goroutines, plus the batch-vs-single win.
//
// Default output is TSV, one row per (shards, goroutines) cell:
//
//	shards  goroutines  ops/sec  speedup-vs-1shard
//
// With -json the same results are emitted as a single machine-readable
// JSON document on stdout (ops/sec, ns/op, shards, goroutines, batch
// comparison, host metadata), so successive runs can be archived as
// BENCH_*.json files and compared across commits.
//
// Run with: go run ./cmd/store-bench [-keys N] [-ms D] [-writes PCT] [-json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	antipersist "repro"
	"repro/internal/xrand"
)

// cellResult is one (shards, goroutines) measurement.
type cellResult struct {
	Shards     int     `json:"shards"`
	Goroutines int     `json:"goroutines"`
	OpsPerSec  float64 `json:"ops_per_sec"`
	NsPerOp    float64 `json:"ns_per_op"`
	Speedup    float64 `json:"speedup_vs_1shard"`
}

// batchResult compares point puts against PutBatch, per key.
type batchResult struct {
	SingleNsPerKey float64 `json:"single_ns_per_key"`
	BatchNsPerKey  float64 `json:"batch_ns_per_key"`
	Speedup        float64 `json:"speedup"`
}

// report is the full -json document.
type report struct {
	Keys       int          `json:"keys"`
	WritesPct  int          `json:"writes_pct"`
	WindowMs   int          `json:"window_ms"`
	Seed       uint64       `json:"seed"`
	GoMaxProcs int          `json:"gomaxprocs"`
	Cells      []cellResult `json:"cells"`
	Batch      batchResult  `json:"batch"`
}

func main() {
	keys := flag.Int("keys", 1<<17, "key-space size")
	ms := flag.Int("ms", 300, "measurement window per cell, milliseconds")
	writes := flag.Int("writes", 10, "write percentage of the mixed workload")
	seed := flag.Uint64("seed", 42, "store seed")
	jsonOut := flag.Bool("json", false, "emit one JSON document instead of TSV")
	flag.Parse()

	shardCounts := []int{1, 2, 4, 8, 16}
	workerCounts := []int{1, 2, 4, 8}

	rep := report{
		Keys:       *keys,
		WritesPct:  *writes,
		WindowMs:   *ms,
		Seed:       *seed,
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}

	if !*jsonOut {
		fmt.Printf("# store-bench: %d keys, %d%% writes, %dms/cell, GOMAXPROCS=%d\n",
			*keys, *writes, *ms, rep.GoMaxProcs)
		fmt.Println("shards\tgoroutines\tops/sec\tspeedup-vs-1shard")
	}

	base := map[int]float64{} // goroutines -> ops/sec at shards=1
	for _, nsh := range shardCounts {
		for _, ng := range workerCounts {
			rate := measure(nsh, ng, *keys, *writes, *seed, time.Duration(*ms)*time.Millisecond)
			speedup := 1.0
			if b, ok := base[ng]; ok && b > 0 {
				speedup = rate / b
			} else {
				base[ng] = rate
			}
			cell := cellResult{
				Shards:     nsh,
				Goroutines: ng,
				OpsPerSec:  rate,
				NsPerOp:    1e9 / rate,
				Speedup:    speedup,
			}
			rep.Cells = append(rep.Cells, cell)
			if !*jsonOut {
				fmt.Printf("%d\t%d\t%.0f\t%.2fx\n", nsh, ng, rate, speedup)
			}
		}
	}

	rep.Batch = batchBench(*keys, *seed, !*jsonOut)

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}

// measure runs ng workers for the window and returns total ops/sec.
func measure(nsh, ng, keys, writePct int, seed uint64, window time.Duration) float64 {
	s, err := antipersist.NewStore(nsh, seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	load := make([]antipersist.Item, 0, keys/2)
	for k := 0; k < keys; k += 2 {
		load = append(load, antipersist.Item{Key: int64(k), Val: int64(k)})
	}
	s.PutBatch(load)

	var stop atomic.Bool
	var total atomic.Uint64
	var wg sync.WaitGroup
	for g := 0; g < ng; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := xrand.New(uint64(g)*7919 + seed + 1)
			ops := uint64(0)
			for !stop.Load() {
				for i := 0; i < 256; i++ { // amortize the stop check
					k := int64(rng.Intn(keys))
					if int(rng.Intn(100)) < writePct {
						if rng.Intn(2) == 0 {
							s.Put(k, k)
						} else {
							s.Delete(k)
						}
					} else {
						s.Get(k)
					}
				}
				ops += 256
			}
			total.Add(ops)
		}(g)
	}
	start := time.Now()
	time.Sleep(window)
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	return float64(total.Load()) / elapsed
}

func batchBench(keys int, seed uint64, verbose bool) batchResult {
	const batch = 256
	const rounds = 2000
	s, err := antipersist.NewStore(8, seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	rng := xrand.New(seed + 77)
	items := make([]antipersist.Item, batch)

	t0 := time.Now()
	for r := 0; r < rounds; r++ {
		for j := range items {
			items[j] = antipersist.Item{Key: int64(rng.Intn(keys)), Val: int64(j)}
		}
		for _, it := range items {
			s.Put(it.Key, it.Val)
		}
	}
	single := time.Since(t0)

	t0 = time.Now()
	for r := 0; r < rounds; r++ {
		for j := range items {
			items[j] = antipersist.Item{Key: int64(rng.Intn(keys)), Val: int64(j)}
		}
		s.PutBatch(items)
	}
	batched := time.Since(t0)

	res := batchResult{
		SingleNsPerKey: float64(single.Nanoseconds()) / float64(rounds*batch),
		BatchNsPerKey:  float64(batched.Nanoseconds()) / float64(rounds*batch),
		Speedup:        float64(single) / float64(batched),
	}
	if verbose {
		fmt.Fprintln(os.Stderr, "\n# batch vs single (8 shards, 1 goroutine, batch=256)")
		fmt.Fprintf(os.Stderr, "# put: single %.0f ns/key, batch %.0f ns/key (%.2fx)\n",
			res.SingleNsPerKey, res.BatchNsPerKey, res.Speedup)
	}
	return res
}
