// hidbd is the network server over the durable history-independent
// database: a TCP daemon speaking the length-prefixed binary protocol
// of docs/PROTOCOL.md (GET/PUT/DEL/BATCH/RANGE/LEN/CHECKPOINT/PING)
// with per-connection pipelining and server-side write coalescing.
//
// Usage:
//
//	hidbd -dir D [-addr :4545] [-shards N] [-seed S] [flags]
//
// The directory is opened through full recovery (manifest checksum,
// per-shard hashes, structural invariants). SIGINT/SIGTERM trigger a
// graceful shutdown: stop accepting, drain in-flight requests, commit
// a final checkpoint. A second signal forces an immediate stop — the
// directory stays at the last checkpoint, which is exactly the state a
// crash would leave (that is the durable layer's whole design).
//
// With -replica-of PRIMARY:PORT, the daemon runs as a read replica:
// it serves GET/RANGE/LEN (writes are refused with ErrCodeReadOnly)
// while continuously converging its directory onto the primary's
// committed checkpoints by canonical-state anti-entropy — per-shard
// content hashes compared, only divergent shard images shipped, each
// install atomic. After a sync the replica's directory is
// byte-identical to the primary's checkpoint. Replicas also serve the
// sync opcodes, so replicas can chain off replicas.
//
// A replica can be lifted to primary: a PROMOTE frame (see
// docs/PROTOCOL.md) quiesces anti-entropy, re-arms sweeping and
// background checkpointing, and flips the node writable. With
// -health-interval the replica PINGs the primary on a dedicated
// connection and declares it down after -health-threshold consecutive
// failures; -auto-promote then promotes this node automatically
// (single-replica topologies only — two auto-promoting replicas can
// split-brain). Promotion state is memory and wire only; nothing about
// an election ever reaches the disk.
//
// With -debug-addr, an HTTP listener serves the observability surface
// on an explicit mux (nothing leaks onto http.DefaultServeMux):
// Prometheus-style metrics at /metrics (docs/OBSERVABILITY.md is the
// catalog), expvar counters at /debug/vars — including the server's
// request/coalescing stats under the "hidbd" key and, on a replica,
// sync stats under "replica" — the in-memory trace ring as JSON at
// /debug/traces (see -trace-sample/-trace-buffer), and the runtime
// profiler under /debug/pprof/. With -slow-op-threshold, operations
// slower than the
// threshold are logged to stderr as structured one-liners that carry
// opcode, sizes, shard index, and phase durations — never key or
// value bytes (the forensic-cleanliness contract).
package main

import (
	"context"
	"expvar"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	antipersist "repro"
	"repro/internal/obs"
	"repro/internal/replica"
	"repro/internal/server"
	"repro/internal/trace"
)

// debugMux builds the debug listener's explicit mux: expvar, the
// metric registry's text exposition, the trace store's JSON dump, and
// pprof, all mounted by hand so nothing depends on (or leaks onto)
// http.DefaultServeMux.
func debugMux(reg *obs.Registry, tr *trace.Store) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.Handle("/metrics", reg.Handler())
	mux.Handle("/debug/traces", tr)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func main() {
	var (
		addr       = flag.String("addr", ":4545", "TCP listen address")
		dir        = flag.String("dir", "", "database directory (required)")
		shards     = flag.Int("shards", 8, "shard count for a new database (power of two)")
		seed       = flag.Uint64("seed", 42, "seed for a new database")
		maxConns   = flag.Int("max-conns", 1024, "concurrent connection limit")
		readTO     = flag.Duration("read-timeout", 5*time.Minute, "idle connection deadline")
		writeTO    = flag.Duration("write-timeout", 30*time.Second, "per-flush write deadline")
		cpInterval = flag.Duration("checkpoint-interval", time.Second, "background checkpoint period")
		cpOps      = flag.Int("checkpoint-ops", 4096, "dirty-op count that forces an early checkpoint")
		rangeMax   = flag.Int("range-max", 4096, "items per RANGE reply (clients paginate past it)")
		drainTO    = flag.Duration("drain-timeout", 10*time.Second, "graceful shutdown drain budget")
		debugAddr  = flag.String("debug-addr", "", "optional HTTP address for /metrics, /debug/vars, and /debug/pprof/")
		slowOp     = flag.Duration("slow-op-threshold", 0, "log operations slower than this to stderr (0: off); the log carries sizes and timings, never keys or values")
		replicaOf  = flag.String("replica-of", "", "primary address; serve read-only and replicate from it")
		syncEvery  = flag.Duration("sync-interval", 250*time.Millisecond, "replica anti-entropy poll period")
		sweepEvery = flag.Duration("sweep-interval", time.Second, "TTL expiry sweeper poll period (negative: no sweeper)")
		healthIntv = flag.Duration("health-interval", 0, "replica: PING the primary this often (0: no health checking)")
		healthN    = flag.Int("health-threshold", 3, "replica: consecutive failed probes before the primary is declared down")
		autoProm   = flag.Bool("auto-promote", false, "replica: self-promote to primary when health checking declares the primary down (single-replica topologies only — two auto-promoting replicas can split-brain)")
		nsQuota    = flag.Int("ns-quota", 0, "per-tenant namespace key quota (0: unlimited); NSPUTs that would grow a tenant past it are refused")
		trSample   = flag.Float64("trace-sample", 0.01, "head-sampling probability for request traces (slow and failed requests are kept regardless)")
		trBuffer   = flag.Int("trace-buffer", 4096, "span slots in the in-memory trace ring (volatile; old spans are overwritten)")
	)
	flag.Parse()
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "usage: hidbd -dir DIR [-addr :4545] [flags]")
		os.Exit(2)
	}
	if (*autoProm || *healthIntv > 0) && *replicaOf == "" {
		fmt.Fprintln(os.Stderr, "hidbd: -auto-promote and -health-interval only apply to a replica (-replica-of)")
		os.Exit(2)
	}

	reg := obs.NewRegistry()
	// The trace store always exists — sampling only decides how often
	// ordinary requests land in it (slow ones, errors, and erasure
	// barriers are kept regardless) — so /debug/traces and the
	// hidb_trace_* counters are live on every deployment.
	tr := trace.NewStore(*trBuffer, *trSample, reg)
	db, err := antipersist.Open(*dir, &antipersist.DBOptions{
		Shards:              *shards,
		Seed:                *seed,
		CheckpointInterval:  *cpInterval,
		CheckpointThreshold: *cpOps,
		Metrics:             reg,
		// A replica's durable state advances only by installing the
		// primary's checkpoints; its own checkpointer would have nothing
		// to do and is left off — and it must not sweep on its own
		// schedule either (dead entries leave when the primary's swept
		// checkpoint ships).
		NoBackground: *replicaOf != "",
		NoSweep:      *replicaOf != "",
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "hidbd: %v\n", err)
		os.Exit(1)
	}

	srvCfg := server.Config{
		MaxConns:        *maxConns,
		ReadTimeout:     *readTO,
		WriteTimeout:    *writeTO,
		MaxRangeItems:   *rangeMax,
		ReadOnly:        *replicaOf != "",
		SweepInterval:   *sweepEvery,
		Metrics:         reg,
		SlowOpThreshold: *slowOp,
		NSQuota:         *nsQuota,
		Trace:           tr,
	}
	if *slowOp > 0 {
		srvCfg.SlowOpLog = os.Stderr
	}
	// A replica can be promoted to primary by a PROMOTE frame (or by
	// -auto-promote): anti-entropy abdicates first, then the background
	// checkpointer starts, then writes are accepted. The closure reads
	// rep at promotion time, after both objects exist.
	var rep *replica.Replica
	if *replicaOf != "" {
		srvCfg.OnPromote = func() {
			if rep != nil {
				rep.Abdicate()
			}
		}
		srvCfg.PromoteBackground = true
	}
	srv := server.New(db, srvCfg)

	if *replicaOf != "" {
		repCfg := replica.Config{
			Interval: *syncEvery,
			Metrics:  reg,
			Dial: func() (net.Conn, error) {
				return net.DialTimeout("tcp", *replicaOf, 5*time.Second)
			},
			Server:          srv,
			HealthInterval:  *healthIntv,
			HealthThreshold: *healthN,
			Trace:           tr,
		}
		if *autoProm {
			repCfg.OnPrimaryDown = func() {
				n, perr := rep.Promote()
				if perr != nil {
					fmt.Fprintf(os.Stderr, "hidbd: auto-promote: %v\n", perr)
					return
				}
				fmt.Printf("hidbd: primary %s declared down — promoted to primary (promotion %d)\n", *replicaOf, n)
			}
		}
		rep, err = replica.New(db, repCfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hidbd: %v\n", err)
			os.Exit(1)
		}
		rep.Start()
	}

	if *debugAddr != "" {
		expvar.Publish("hidbd", expvar.Func(func() any { return srv.Stats() }))
		if rep != nil {
			expvar.Publish("replica", expvar.Func(func() any { return rep.Stats() }))
		}
		dsrv := &http.Server{
			Addr:    *debugAddr,
			Handler: debugMux(reg, tr),
			// A client that opens a socket and goes silent must not pin a
			// handler goroutine forever.
			ReadHeaderTimeout: 10 * time.Second,
		}
		go func() {
			if err := dsrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintf(os.Stderr, "hidbd: debug listener: %v\n", err)
			}
		}()
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hidbd: %v\n", err)
		os.Exit(1)
	}
	role := "primary"
	if rep != nil {
		role = fmt.Sprintf("read replica of %s", *replicaOf)
	}
	fmt.Printf("hidbd: serving %s (%d keys, %d shards) on %s as %s\n",
		*dir, db.Len(), db.Store().NumShards(), ln.Addr(), role)

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		fmt.Printf("hidbd: %v — draining (final checkpoint); signal again to force stop\n", sig)
		go func() {
			<-sigc
			fmt.Println("hidbd: forced stop, state stays at last checkpoint")
			srv.Close()
			os.Exit(1)
		}()
		ctx, cancel := context.WithTimeout(context.Background(), *drainTO)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "hidbd: shutdown checkpoint: %v\n", err)
			os.Exit(1)
		}
	case err := <-errc:
		if err != nil && err != server.ErrServerClosed {
			fmt.Fprintf(os.Stderr, "hidbd: serve: %v\n", err)
			os.Exit(1)
		}
	}

	if rep != nil {
		rep.Stop()
	}
	st := srv.Stats()
	if err := db.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "hidbd: close: %v\n", err)
		os.Exit(1)
	}
	if rep != nil {
		rst := rep.Stats()
		fmt.Printf("hidbd: clean shutdown — %d reqs (%d reads), %d syncs (%d installs, %d shard images, %d bytes)\n",
			st.Requests, st.Reads, rst.Rounds, rst.Installs, rst.ShardsFetched, rst.BytesFetched)
	} else {
		fmt.Printf("hidbd: clean shutdown — %d reqs (%d reads, %d writes in %d batches), %d checkpoints\n",
			st.Requests, st.Reads, st.Writes, st.WriteBatches, st.Checkpoints)
	}
}
