// hipma-bench regenerates Figure 2 of the paper: the cumulative number
// of element moves, normalized by n·log²n, against the number of random
// insertions, for both the history-independent PMA and the classic PMA.
//
// The paper plots this to 9·10⁷ insertions; the default here is 10⁶
// (pass -n to change it). The series should be roughly flat (the
// normalized cost is Θ(1)), with the HI PMA a constant factor above the
// classic PMA.
//
// Output is TSV: inserts, hipma_norm, pma_norm, ratio.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"time"

	antipersist "repro"
	"repro/internal/xrand"
)

func main() {
	n := flag.Int("n", 1_000_000, "number of random insertions")
	samples := flag.Int("samples", 40, "number of sample points")
	seed := flag.Uint64("seed", 1, "random seed")
	flag.Parse()

	hi := antipersist.NewPMA(*seed, nil)
	cl := antipersist.NewClassicPMA(nil)
	rngHI := xrand.New(*seed + 1)
	rngCL := xrand.New(*seed + 1) // identical insertion rank sequence

	every := *n / *samples
	if every == 0 {
		every = 1
	}

	fmt.Println("# Figure 2: moves/(n log^2 n) vs insertions (random ranks)")
	fmt.Println("inserts\thipma_norm\tpma_norm\tratio")
	startHI := time.Now()
	var hiTime, clTime time.Duration
	for i := 1; i <= *n; i++ {
		t0 := time.Now()
		hi.InsertAt(rngHI.Intn(hi.Len()+1), antipersist.Item{Key: int64(i)})
		hiTime += time.Since(t0)
		t0 = time.Now()
		cl.InsertAt(rngCL.Intn(cl.Len()+1), int64(i))
		clTime += time.Since(t0)
		if i%every == 0 || i == *n {
			norm := float64(i) * math.Pow(math.Log2(float64(i)+1), 2)
			hn := float64(hi.Moves()) / norm
			cn := float64(cl.Moves()) / norm
			fmt.Printf("%d\t%.6f\t%.6f\t%.2f\n", i, hn, cn, hn/cn)
		}
	}
	fmt.Fprintf(os.Stderr, "\n# wall clock: HI %v, classic %v, runtime overhead factor %.2f (paper: ~7)\n",
		hiTime.Round(time.Millisecond), clTime.Round(time.Millisecond),
		float64(hiTime)/float64(clTime))
	fmt.Fprintf(os.Stderr, "# space: HI %d slots (%.2fx), classic %d slots (%.2fx) — paper: 1.8-5x\n",
		hi.SlotCount(), float64(hi.SlotCount())/float64(hi.Len()),
		cl.Capacity(), float64(cl.Capacity())/float64(cl.Len()))
	fmt.Fprintf(os.Stderr, "# total time %v\n", time.Since(startHI).Round(time.Millisecond))
}
