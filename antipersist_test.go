package antipersist

import "testing"

// The facade is a thin alias layer; these tests pin the public surface
// so an accidental signature change in an internal package is caught
// here, at the API boundary a downstream user sees.

func TestFacadePMA(t *testing.T) {
	p := NewPMA(1, nil)
	p.InsertAt(0, Item{Key: 10, Val: 100})
	p.InsertKey(20, 200)
	if p.Len() != 2 {
		t.Fatalf("len = %d", p.Len())
	}
	if it := p.Get(1); it.Key != 20 || it.Val != 200 {
		t.Fatalf("Get(1) = %+v", it)
	}
	rank, found := p.SearchKey(10)
	if !found || rank != 0 {
		t.Fatalf("SearchKey = (%d, %v)", rank, found)
	}
	p.DeleteAt(0)
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeDictionary(t *testing.T) {
	tr := NewIOTracker(64, 16)
	d := NewDictionary(2, tr)
	d.Put(1, 10)
	d.Put(2, 20)
	if v, ok := d.Get(2); !ok || v != 20 {
		t.Fatalf("Get(2) = (%d, %v)", v, ok)
	}
	items := d.Range(0, 100, nil)
	if len(items) != 2 {
		t.Fatalf("range = %v", items)
	}
	if tr.IOs() == 0 {
		t.Fatal("tracker saw no I/Os")
	}
}

func TestFacadeSkipLists(t *testing.T) {
	s, err := NewSkipList(DefaultSkipListConfig(), 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	s.Insert(5)
	if !s.Contains(5) {
		t.Fatal("skip list lost 5")
	}
	m := NewInMemorySkipList(4, nil)
	m.Insert(6)
	if !m.Contains(6) {
		t.Fatal("in-memory skip list lost 6")
	}
	if _, err := NewSkipList(SkipListConfig{B: 1}, 5, nil); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestFacadeBaselines(t *testing.T) {
	cp := NewClassicPMA(nil)
	cp.InsertKey(7)
	if cp.Len() != 1 {
		t.Fatal("classic PMA insert failed")
	}
	bt := NewBTree(16, 6, nil)
	bt.Insert(9)
	if !bt.Contains(9) {
		t.Fatal("B-tree insert failed")
	}
}

func TestFacadeConfigs(t *testing.T) {
	cfg := DefaultPMAConfig()
	if _, err := NewPMAWithConfig(cfg, 1, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := NewDictionaryWithConfig(cfg, 1, nil); err != nil {
		t.Fatal(err)
	}
	cfg.C1 = -1
	if _, err := NewPMAWithConfig(cfg, 1, nil); err == nil {
		t.Fatal("bad config accepted")
	}
}
