// Benchmark harness: one benchmark per evaluation artifact of the
// paper. The experiment IDs (F2, C1, C2, T1a, T1b, T2, T3, L15, O1)
// match the index in DESIGN.md; EXPERIMENTS.md records paper-vs-measured
// for each. Custom metrics are emitted via b.ReportMetric, so run with
//
//	go test -bench=. -benchmem
//
// and read the labelled columns (moves/op-normalized, ios/op, ...).
package antipersist

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/durable"
	"repro/internal/hialloc"
	"repro/internal/veb"
	"repro/internal/xrand"
)

// ---------------------------------------------------------------------
// F2 — Figure 2: cumulative element moves / (n·log²n) for random
// inserts, HI PMA vs classic PMA. The paper's series are flat with the
// HI PMA a constant factor above; the reported metric is that
// normalized constant.
// ---------------------------------------------------------------------

const figure2N = 200000

func BenchmarkFigure2_HIPMA(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p := NewPMA(uint64(i)+1, nil)
		rng := xrand.New(uint64(i) + 2)
		for j := 0; j < figure2N; j++ {
			p.InsertAt(rng.Intn(p.Len()+1), Item{Key: int64(j)})
		}
		norm := float64(figure2N) * math.Pow(math.Log2(figure2N), 2)
		b.ReportMetric(float64(p.Moves())/norm, "moves/nlog2n")
		b.ReportMetric(float64(p.Moves())/figure2N, "moves/op")
	}
}

func BenchmarkFigure2_ClassicPMA(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p := NewClassicPMA(nil)
		rng := xrand.New(uint64(i) + 2)
		for j := 0; j < figure2N; j++ {
			p.InsertAt(rng.Intn(p.Len()+1), int64(j))
		}
		norm := float64(figure2N) * math.Pow(math.Log2(figure2N), 2)
		b.ReportMetric(float64(p.Moves())/norm, "moves/nlog2n")
		b.ReportMetric(float64(p.Moves())/figure2N, "moves/op")
	}
}

// ---------------------------------------------------------------------
// C1 — §4.3 runtime-overhead claim (paper: ≈7× wall clock for random
// inserts). ns/op of these two benchmarks gives the measured factor.
// ---------------------------------------------------------------------

func BenchmarkOverheadFactor_HIPMA(b *testing.B) {
	p := NewPMA(1, nil)
	rng := xrand.New(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.InsertAt(rng.Intn(p.Len()+1), Item{Key: int64(i)})
	}
}

func BenchmarkOverheadFactor_ClassicPMA(b *testing.B) {
	p := NewClassicPMA(nil)
	rng := xrand.New(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.InsertAt(rng.Intn(p.Len()+1), int64(i))
	}
}

// ---------------------------------------------------------------------
// C2 — §4.3 space-overhead claim (paper: 1.8–5× the number of
// elements). Reported as slots-per-element along a growth run.
// ---------------------------------------------------------------------

func BenchmarkSpaceOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p := NewPMA(uint64(i)+1, nil)
		minR, maxR := math.Inf(1), 0.0
		for j := 0; j < 300000; j++ {
			p.InsertAt(p.Len(), Item{Key: int64(j)})
			if j >= 4096 && j%4096 == 0 {
				r := float64(p.SlotCount()) / float64(p.Len())
				minR = math.Min(minR, r)
				maxR = math.Max(maxR, r)
			}
		}
		b.ReportMetric(minR, "min-slots/elem")
		b.ReportMetric(maxR, "max-slots/elem")
	}
}

// ---------------------------------------------------------------------
// T1a — Theorem 1: amortized O(log²N) moves whp. Sub-benchmarks over N
// report moves/op/log²N; the metric should be roughly constant in N.
// ---------------------------------------------------------------------

func BenchmarkThm1Moves(b *testing.B) {
	for _, n := range []int{16384, 65536, 262144} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p := NewPMA(uint64(i)+3, nil)
				rng := xrand.New(uint64(i) + 4)
				for j := 0; j < n; j++ {
					p.InsertAt(rng.Intn(p.Len()+1), Item{Key: int64(j)})
				}
				l2 := math.Pow(math.Log2(float64(n)), 2)
				b.ReportMetric(float64(p.Moves())/float64(n)/l2, "moves/op/log2n")
			}
		})
	}
}

// ---------------------------------------------------------------------
// T1b — Theorem 1 I/Os: amortized O(log²N/B + log_B N) insert I/Os and
// O(1 + k/B) range-query I/Os, swept over B.
// ---------------------------------------------------------------------

func BenchmarkThm1IO(b *testing.B) {
	const n = 1 << 16
	for _, blk := range []int{16, 64, 256} {
		b.Run(fmt.Sprintf("B=%d", blk), func(b *testing.B) {
			io := NewIOTracker(blk, 64)
			p := NewPMA(5, io)
			rng := xrand.New(6)
			for j := 0; j < n; j++ {
				p.InsertAt(rng.Intn(p.Len()+1), Item{Key: int64(j)})
			}
			io.Reset()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.InsertAt(rng.Intn(p.Len()+1), Item{Key: int64(i)})
			}
			b.StopTimer()
			b.ReportMetric(float64(io.IOs())/float64(b.N), "ios/op")
			shape := math.Pow(math.Log2(n), 2)/float64(blk) +
				math.Log2(n)/math.Log2(float64(blk))
			b.ReportMetric(shape, "theory-shape")
		})
	}
}

func BenchmarkThm1Range(b *testing.B) {
	const n = 1 << 16
	const blk = 64
	io := NewIOTracker(blk, 64)
	p := NewPMA(7, io)
	for j := 0; j < n; j++ {
		p.InsertAt(p.Len(), Item{Key: int64(j)})
	}
	for _, k := range []int{64, 1024, 16384} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			rng := xrand.New(8)
			io.Reset()
			buf := make([]Item, 0, k)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				lo := rng.Intn(n - k)
				buf = p.Query(lo, lo+k-1, buf[:0])
			}
			b.StopTimer()
			b.ReportMetric(float64(io.IOs())/float64(b.N), "ios/op")
			b.ReportMetric(1+float64(k)/blk, "theory-shape")
		})
	}
}

// ---------------------------------------------------------------------
// T2 — Theorem 2: the HI cache-oblivious B-tree's searches cost
// O(log_B N) I/Os and range queries O(log_B N + k/B), vs the classic
// B-tree yardstick.
// ---------------------------------------------------------------------

func BenchmarkThm2Search(b *testing.B) {
	const n = 1 << 16
	for _, blk := range []int{16, 64, 256} {
		b.Run(fmt.Sprintf("cobt/B=%d", blk), func(b *testing.B) {
			io := NewIOTracker(blk, 64)
			d := NewDictionary(9, io)
			for j := 0; j < n; j++ {
				d.Put(int64(j), int64(j))
			}
			rng := xrand.New(10)
			io.Reset()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d.Get(int64(rng.Intn(n)))
			}
			b.StopTimer()
			b.ReportMetric(float64(io.IOs())/float64(b.N), "ios/op")
			b.ReportMetric(math.Log2(n)/math.Log2(float64(blk)), "logB-n")
		})
		b.Run(fmt.Sprintf("btree/B=%d", blk), func(b *testing.B) {
			io := NewIOTracker(blk, 64)
			bt := NewBTree(blk, 11, io)
			for j := 0; j < n; j++ {
				bt.Insert(int64(j))
			}
			rng := xrand.New(12)
			io.Reset()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				bt.Contains(int64(rng.Intn(n)))
			}
			b.StopTimer()
			b.ReportMetric(float64(io.IOs())/float64(b.N), "ios/op")
		})
	}
}

func BenchmarkThm2Range(b *testing.B) {
	const n = 1 << 16
	const blk = 64
	for _, k := range []int{64, 1024, 16384} {
		b.Run(fmt.Sprintf("cobt/k=%d", k), func(b *testing.B) {
			io := NewIOTracker(blk, 64)
			d := NewDictionary(13, io)
			for j := 0; j < n; j++ {
				d.Put(int64(j), int64(j))
			}
			rng := xrand.New(14)
			buf := make([]Item, 0, k)
			io.Reset()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				lo := int64(rng.Intn(n - k))
				buf = d.Range(lo, lo+int64(k)-1, buf[:0])
			}
			b.StopTimer()
			b.ReportMetric(float64(io.IOs())/float64(b.N), "ios/op")
			b.ReportMetric(math.Log2(n)/math.Log2(blk)+float64(k)/blk, "theory-shape")
		})
		b.Run(fmt.Sprintf("btree/k=%d", k), func(b *testing.B) {
			io := NewIOTracker(blk, 64)
			bt := NewBTree(blk, 15, io)
			for j := 0; j < n; j++ {
				bt.Insert(int64(j))
			}
			rng := xrand.New(16)
			buf := make([]int64, 0, k)
			io.Reset()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				lo := int64(rng.Intn(n - k))
				buf = bt.Range(lo, lo+int64(k)-1, buf[:0])
			}
			b.StopTimer()
			b.ReportMetric(float64(io.IOs())/float64(b.N), "ios/op")
		})
	}
}

// ---------------------------------------------------------------------
// T3 — Theorem 3: the HI external skip list. Point searches and inserts
// in O(log_B N) I/Os whp; worst-case insert O(B^ε·log N); range queries
// O((1/ε)·log_B N + k/B).
// ---------------------------------------------------------------------

func BenchmarkThm3Search(b *testing.B) {
	const n = 1 << 16
	for _, blk := range []int{16, 64, 256} {
		b.Run(fmt.Sprintf("B=%d", blk), func(b *testing.B) {
			io := NewIOTracker(blk, 64)
			s, err := NewSkipList(SkipListConfig{B: blk, Epsilon: 1.0 / 3.0}, 17, io)
			if err != nil {
				b.Fatal(err)
			}
			for j := 1; j <= n; j++ {
				s.Insert(int64(j))
			}
			rng := xrand.New(18)
			io.Reset()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Contains(int64(rng.Intn(n)) + 1)
			}
			b.StopTimer()
			b.ReportMetric(float64(io.IOs())/float64(b.N), "ios/op")
			b.ReportMetric(math.Log2(n)/math.Log2(float64(blk)), "logB-n")
		})
	}
}

func BenchmarkThm3Insert(b *testing.B) {
	const n = 1 << 16
	const blk = 64
	io := NewIOTracker(blk, 64)
	s, err := NewSkipList(SkipListConfig{B: blk, Epsilon: 1.0 / 3.0}, 19, io)
	if err != nil {
		b.Fatal(err)
	}
	rng := xrand.New(20)
	for j := 1; j <= n; j++ {
		s.Insert(int64(j) * 4)
	}
	io.Reset()
	var worst uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		before := io.IOs()
		s.Insert(int64(rng.Uint64n(1 << 40)))
		if d := io.IOs() - before; d > worst {
			worst = d
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(io.IOs())/float64(b.N), "ios/op")
	b.ReportMetric(float64(worst), "worst-ios")
	eps := 1.0 / 3.0
	b.ReportMetric(math.Pow(blk, eps)*math.Log2(n), "worst-theory-Beps-logn")
}

func BenchmarkThm3Range(b *testing.B) {
	const n = 1 << 16
	const blk = 64
	io := NewIOTracker(blk, 64)
	s, err := NewSkipList(SkipListConfig{B: blk, Epsilon: 1.0 / 3.0}, 21, io)
	if err != nil {
		b.Fatal(err)
	}
	for j := 1; j <= n; j++ {
		s.Insert(int64(j))
	}
	for _, k := range []int{64, 1024, 16384} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			rng := xrand.New(22)
			buf := make([]int64, 0, k)
			io.Reset()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				lo := int64(rng.Intn(n-k)) + 1
				buf = s.Range(lo, lo+int64(k)-1, buf[:0])
			}
			b.StopTimer()
			b.ReportMetric(float64(io.IOs())/float64(b.N), "ios/op")
			b.ReportMetric(3*math.Log2(n)/math.Log2(blk)+float64(k)/blk, "theory-shape")
		})
	}
}

// ---------------------------------------------------------------------
// L15 — Lemma 15: the folklore B-skip list's search-cost tail reaches
// Ω(log(N/B)) I/Os while the HI skip list's stays near log_B N. The
// metric is the cold-cache worst and 99.9th-percentile search cost over
// a sample of all keys.
// ---------------------------------------------------------------------

func BenchmarkLemma15(b *testing.B) {
	const n = 1 << 15
	const blk = 32
	variants := []struct {
		name string
		cfg  SkipListConfig
	}{
		{"hi", SkipListConfig{B: blk, Epsilon: 1.0 / 3.0}},
		{"folklore", SkipListConfig{B: blk, Folklore: true}},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				io := NewIOTracker(blk, 16)
				s, err := NewSkipList(v.cfg, uint64(i)+23, io)
				if err != nil {
					b.Fatal(err)
				}
				for j := 1; j <= n; j++ {
					s.Insert(int64(j))
				}
				costs := make([]int, 0, n/4)
				for k := 1; k <= n; k += 4 {
					io.Reset()
					s.Contains(int64(k))
					costs = append(costs, int(io.IOs()))
				}
				sort.Ints(costs)
				b.ReportMetric(float64(costs[len(costs)-1]), "worst-ios")
				b.ReportMetric(float64(costs[int(0.999*float64(len(costs)-1))]), "p999-ios")
			}
		})
	}
}

// ---------------------------------------------------------------------
// O1 — Observation 1: an oblivious alternation adversary forces the
// canonical (SHI) dynamic array to resize on a constant fraction of
// operations, while the WHI array resizes O(1/N) of the time.
// ---------------------------------------------------------------------

// The separation is a with-high-probability statement, so the bench
// reports the *distribution* over adversary runs: the fraction of runs
// in which the array thrashes (a resize on at least half the ops, each
// costing Ω(N) element moves) and the mean resize cost per op in moved
// elements. The SHI array thrashes on ≈1/k of the random thresholds —
// and no amount of scaling makes that vanish (Observation 1) — while
// the WHI array never does.
func BenchmarkObservation1(b *testing.B) {
	const k = 64        // adversary's size scale
	const trials = 4096 // independent adversary runs
	const ops = 512
	run := func(b *testing.B, resizes func(l int, seed uint64) int) {
		for i := 0; i < b.N; i++ {
			catastrophic := 0
			totalMoves := 0.0
			rng := xrand.New(uint64(i) + 25)
			for t := 0; t < trials; t++ {
				l := k + rng.Intn(k+1) // random threshold in [k, 2k]
				r := resizes(l, uint64(i*trials+t))
				if r >= ops/2 {
					catastrophic++
				}
				totalMoves += float64(r) * float64(l) // each resize moves Θ(l)
			}
			b.ReportMetric(float64(catastrophic)/trials, "catastrophic-frac")
			b.ReportMetric(totalMoves/float64(trials*ops), "resize-moves/op")
		}
	}
	alternate := func(ins func() (int, bool), del func() (int, bool)) int {
		resizes := 0
		for j := 0; j < ops/2; j++ {
			if _, r := ins(); r {
				resizes++
			}
			if _, r := del(); r {
				resizes++
			}
		}
		return resizes
	}
	b.Run("shi", func(b *testing.B) {
		run(b, func(l int, _ uint64) int {
			s := hialloc.NewSHISizer(l)
			return alternate(s.Insert, s.Delete)
		})
	})
	b.Run("whi", func(b *testing.B) {
		run(b, func(l int, seed uint64) int {
			s := hialloc.NewSizer(l, xrand.New(seed+31))
			return alternate(s.Insert, s.Delete)
		})
	})
}

// ---------------------------------------------------------------------
// Ablations — design choices DESIGN.md calls out.
// ---------------------------------------------------------------------

// AblationC1 sweeps the candidate-set fraction c₁: larger candidate
// sets mean rarer out-of-bounds rebuilds (cheaper updates) at no
// asymptotic space cost — the trade-off §3.3 describes.
func BenchmarkAblationC1(b *testing.B) {
	const n = 100000
	for _, c1 := range []float64{0.1, 0.3, 0.5, 0.7} {
		b.Run(fmt.Sprintf("c1=%.1f", c1), func(b *testing.B) {
			cfg := DefaultPMAConfig()
			cfg.C1 = c1
			for i := 0; i < b.N; i++ {
				p, err := NewPMAWithConfig(cfg, uint64(i)+29, nil)
				if err != nil {
					b.Fatal(err)
				}
				rng := xrand.New(uint64(i) + 30)
				for j := 0; j < n; j++ {
					p.InsertAt(rng.Intn(p.Len()+1), Item{Key: int64(j)})
				}
				b.ReportMetric(float64(p.Moves())/n, "moves/op")
				b.ReportMetric(float64(p.SlotCount())/float64(p.Len()), "slots/elem")
			}
		})
	}
}

// SHISkipList extends O1 to the skip-list level: with Golovin-style
// canonical array sizes (Config.Deterministic), an oblivious adversary
// that alternates inserting and deleting one key changes the containing
// leaf array's canonical size on EVERY operation, forcing a leaf-node
// rewrite each time; the WHI variant's Invariant 16 sizing resizes with
// probability O(1/B^γ) only. The metric is I/Os per adversarial op.
func BenchmarkSHISkipList(b *testing.B) {
	const n = 1 << 14
	const blk = 64
	for _, v := range []struct {
		name string
		cfg  SkipListConfig
	}{
		{"shi-canonical", SkipListConfig{B: blk, Epsilon: 1.0 / 3.0, Deterministic: true}},
		{"whi", SkipListConfig{B: blk, Epsilon: 1.0 / 3.0}},
	} {
		b.Run(v.name, func(b *testing.B) {
			// Cacheless tracker: the adversary's working set is tiny, so
			// any cache would hide the write traffic that Observation 1
			// is about; the DAM cost of interest is the blocks rewritten.
			io := NewIOTracker(blk, 0)
			s, err := NewSkipList(v.cfg, 35, io)
			if err != nil {
				b.Fatal(err)
			}
			for i := 1; i <= n; i++ {
				s.Insert(int64(i) * 2)
			}
			io.Reset()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// Alternate an absent odd key, cycling across the key
				// space so the average covers all leaf nodes.
				probe := int64(2*((i*2654435761)%n) + 1)
				s.Insert(probe)
				s.Delete(probe)
			}
			b.StopTimer()
			b.ReportMetric(float64(io.Writes())/float64(2*b.N), "write-ios/op")
		})
	}
}

// AblationVEB quantifies the van Emde Boas layout's contribution
// (§3.5): the number of distinct blocks on a root-to-leaf path of the
// rank tree under the vEB permutation vs a plain BFS layout, across
// block sizes. vEB gives ~2·log_B N; BFS gives ~log(N/B) — the same
// gap that separates the cache-oblivious B-tree from a binary tree on
// disk.
func BenchmarkAblationVEB(b *testing.B) {
	const levels = 20
	layout := veb.NewLayout(levels)
	for _, blk := range []int{16, 64, 256} {
		b.Run(fmt.Sprintf("B=%d", blk), func(b *testing.B) {
			rng := xrand.New(33)
			var vebBlocks, bfsBlocks float64
			const paths = 2000
			for i := 0; i < b.N; i++ {
				vebBlocks, bfsBlocks = 0, 0
				for p := 0; p < paths; p++ {
					leaf := (1 << (levels - 1)) + rng.Intn(1<<(levels-1))
					seenV := map[int]bool{}
					seenB := map[int]bool{}
					for x := leaf; x >= 1; x /= 2 {
						seenV[layout.Phys(x)/blk] = true
						seenB[x/blk] = true
					}
					vebBlocks += float64(len(seenV))
					bfsBlocks += float64(len(seenB))
				}
			}
			b.ReportMetric(vebBlocks/paths, "veb-blocks/path")
			b.ReportMetric(bfsBlocks/paths, "bfs-blocks/path")
		})
	}
}

// AblationEpsilon sweeps the skip list's ε: the §6 trade-off between
// worst-case insert cost O(B^ε·log N) and medium-range-query cost
// O((1/ε)·log_B N + k/B).
func BenchmarkAblationEpsilon(b *testing.B) {
	const n = 1 << 15
	const blk = 256
	for _, eps := range []float64{0.1, 1.0 / 3.0, 0.6, 0.9} {
		b.Run(fmt.Sprintf("eps=%.2f", eps), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				io := NewIOTracker(blk, 64)
				s, err := NewSkipList(SkipListConfig{B: blk, Epsilon: eps}, uint64(i)+31, io)
				if err != nil {
					b.Fatal(err)
				}
				var worstInsert uint64
				for j := 1; j <= n; j++ {
					before := io.IOs()
					s.Insert(int64(j))
					if d := io.IOs() - before; d > worstInsert {
						worstInsert = d
					}
				}
				// Medium range queries.
				rng := xrand.New(uint64(i) + 32)
				before := io.IOs()
				const reps = 50
				for r := 0; r < reps; r++ {
					lo := int64(rng.Intn(n-2048)) + 1
					s.Range(lo, lo+2047, nil)
				}
				b.ReportMetric(float64(worstInsert), "worst-insert-ios")
				b.ReportMetric(float64(io.IOs()-before)/reps, "range2k-ios")
			}
		})
	}
}

// ---------------------------------------------------------------------
// S1 — sharding: Store throughput vs shard count under GOMAXPROCS
// parallel mixed workloads. The paper's structures are single-threaded;
// the sharded Store is the repo's scaling layer. With GOMAXPROCS >= 4,
// shards=8 should beat shards=1 (one global lock) clearly on a mixed
// 90/10 read/write workload. Run with -cpu 1,4,8 to sweep.
// ---------------------------------------------------------------------

func benchStoreThroughput(b *testing.B, shards, writePct int) {
	const keyspace = 1 << 17
	s, err := NewStore(shards, 42)
	if err != nil {
		b.Fatal(err)
	}
	load := make([]Item, 0, keyspace/2)
	for k := int64(0); k < keyspace; k += 2 {
		load = append(load, Item{Key: k, Val: k})
	}
	s.PutBatch(load)
	var gid atomic.Uint64
	b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "gomaxprocs")
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		rng := xrand.New(gid.Add(1)*7919 + 1)
		for pb.Next() {
			k := int64(rng.Intn(keyspace))
			if int(rng.Intn(100)) < writePct {
				if rng.Intn(2) == 0 {
					s.Put(k, k)
				} else {
					s.Delete(k)
				}
			} else {
				s.Get(k)
			}
		}
	})
}

func BenchmarkStoreThroughput(b *testing.B) {
	for _, shards := range []int{1, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			benchStoreThroughput(b, shards, 10)
		})
	}
}

func BenchmarkStoreThroughputWriteHeavy(b *testing.B) {
	for _, shards := range []int{1, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			benchStoreThroughput(b, shards, 50)
		})
	}
}

// ---------------------------------------------------------------------
// S2 — batching: PutBatch/GetBatch group keys by shard and take each
// shard lock once, vs one lock round trip per key. ns/op is per key in
// both cases, so the batch win is read directly off the ratio.
// ---------------------------------------------------------------------

func BenchmarkStoreBatch(b *testing.B) {
	const keyspace = 1 << 16
	const batch = 256
	for _, mode := range []string{"single", "batch"} {
		b.Run(fmt.Sprintf("put/%s", mode), func(b *testing.B) {
			s, err := NewStore(8, 7)
			if err != nil {
				b.Fatal(err)
			}
			rng := xrand.New(8)
			items := make([]Item, batch)
			b.ResetTimer()
			for i := 0; i < b.N; i += batch {
				for j := range items {
					items[j] = Item{Key: int64(rng.Intn(keyspace)), Val: int64(j)}
				}
				if mode == "batch" {
					s.PutBatch(items)
				} else {
					for _, it := range items {
						s.Put(it.Key, it.Val)
					}
				}
			}
		})
		b.Run(fmt.Sprintf("get/%s", mode), func(b *testing.B) {
			s, err := NewStore(8, 9)
			if err != nil {
				b.Fatal(err)
			}
			for k := int64(0); k < keyspace; k++ {
				s.Put(k, k)
			}
			rng := xrand.New(10)
			keys := make([]int64, batch)
			b.ResetTimer()
			for i := 0; i < b.N; i += batch {
				for j := range keys {
					keys[j] = int64(rng.Intn(keyspace))
				}
				if mode == "batch" {
					s.GetBatch(keys)
				} else {
					for _, k := range keys {
						s.Get(k)
					}
				}
			}
		})
	}
}

// ---------------------------------------------------------------------
// S3 — scan/write interference: Put latency while a goroutine runs
// full-store Range scans in a loop. Range copies each shard's run under
// that shard's own brief lock (instead of holding every shard's lock
// for the whole collection phase), so a writer waits for at most one
// shard copy, never for the rest of the scan. The win lives in the
// TAIL: read the p99/max metrics, which bound how long a Put can stall
// behind a scan — mean ns/op mostly measures scheduler round-trips,
// especially on few cores.
// ---------------------------------------------------------------------

func BenchmarkStoreWriterLatencyDuringScan(b *testing.B) {
	const keyspace = 1 << 16
	for _, shards := range []int{1, 16} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			s, err := NewStore(shards, 11)
			if err != nil {
				b.Fatal(err)
			}
			load := make([]Item, 0, keyspace/2)
			for k := 0; k < keyspace; k += 2 {
				load = append(load, Item{Key: int64(k), Val: int64(k)})
			}
			s.PutBatch(load)

			stop := make(chan struct{})
			done := make(chan struct{})
			go func() {
				defer close(done)
				var buf []Item
				for {
					select {
					case <-stop:
						return
					default:
					}
					buf = s.Range(0, keyspace, buf[:0])
				}
			}()

			rng := xrand.New(3)
			lats := make([]time.Duration, 0, b.N)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				t0 := time.Now()
				s.Put(int64(rng.Intn(keyspace)), int64(i))
				lats = append(lats, time.Since(t0))
			}
			b.StopTimer()
			close(stop)
			<-done
			sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
			b.ReportMetric(float64(lats[len(lats)/2].Nanoseconds()), "p50-ns")
			b.ReportMetric(float64(lats[len(lats)*99/100].Nanoseconds()), "p99-ns")
			b.ReportMetric(float64(lats[len(lats)-1].Nanoseconds()), "max-ns")
		})
	}
}

// ---------------------------------------------------------------------
// S4 — durable layer: cost of an incremental checkpoint commit with a
// single dirty shard out of 64, through the full temp-file → fsync →
// rename → manifest-swap sequence on an in-memory filesystem (isolating
// the engine's own cost from disk hardware).
// ---------------------------------------------------------------------

func BenchmarkStoreCheckpointIncremental(b *testing.B) {
	fs := durable.NewMemFS()
	db, err := Open("bench-db", &DBOptions{
		Shards: 64, Seed: 5, NoBackground: true, FS: fs,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	items := make([]Item, 1<<14)
	for i := range items {
		items[i] = Item{Key: int64(i), Val: int64(i)}
	}
	db.PutBatch(items)
	if err := db.Checkpoint(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db.Put(42, int64(i)) // dirty exactly one shard
		if err := db.Checkpoint(); err != nil {
			b.Fatal(err)
		}
	}
}
