package antipersist_test

import (
	"bytes"
	"fmt"
	"os"

	antipersist "repro"
)

// The basic key-value workflow on the history-independent
// cache-oblivious B-tree.
func ExampleDictionary() {
	dict := antipersist.NewDictionary(42, nil)
	dict.Put(3, 30)
	dict.Put(1, 10)
	dict.Put(2, 20)
	dict.Delete(1) // unrecoverable: the layout cannot witness it

	v, ok := dict.Get(2)
	fmt.Println(v, ok)
	for _, it := range dict.Range(0, 10, nil) {
		fmt.Println(it.Key, it.Val)
	}
	// Output:
	// 20 true
	// 2 20
	// 3 30
}

// Rank-based sequential-file maintenance on the HI packed-memory array.
func ExamplePMA() {
	p := antipersist.NewPMA(7, nil)
	p.InsertAt(0, antipersist.Item{Key: 100})
	p.InsertAt(1, antipersist.Item{Key: 300})
	p.InsertAt(1, antipersist.Item{Key: 200}) // squeeze in the middle

	for _, it := range p.Query(0, p.Len()-1, nil) {
		fmt.Println(it.Key)
	}
	// Output:
	// 100
	// 200
	// 300
}

// Counting I/Os in the disk-access-machine model.
func ExampleIOTracker() {
	io := antipersist.NewIOTracker(64, 0) // B = 64, no cache
	io.Scan(0, 256, false)                // sequential scan of 256 units
	fmt.Println(io.Reads())
	// Output:
	// 4
}

// The external-memory skip list as an ordered set.
func ExampleSkipList() {
	sl, err := antipersist.NewSkipList(antipersist.DefaultSkipListConfig(), 9, nil)
	if err != nil {
		panic(err)
	}
	for _, k := range []int64{5, 1, 9, 5} {
		sl.Insert(k)
	}
	fmt.Println(sl.Len(), sl.Contains(9), sl.Contains(2))
	fmt.Println(sl.Range(1, 6, nil))
	// Output:
	// 3 true false
	// [1 5]
}

// Persisting a dictionary to a disk image and loading it back.
func ExampleReadDictionary() {
	d := antipersist.NewDictionary(3, nil)
	d.Put(7, 700)

	var img bytes.Buffer
	if _, err := d.WriteTo(&img); err != nil {
		panic(err)
	}
	loaded, err := antipersist.ReadDictionary(&img, 99, nil)
	if err != nil {
		panic(err)
	}
	v, ok := loaded.Get(7)
	fmt.Println(v, ok)
	// Output:
	// 700 true
}

// The concurrent sharded Store: batch upserts, merged range queries,
// and a canonical persistence round trip.
func ExampleStore() {
	store, err := antipersist.NewStore(4, 42)
	if err != nil {
		panic(err)
	}
	store.PutBatch([]antipersist.Item{
		{Key: 30, Val: 300}, {Key: 10, Val: 100}, {Key: 20, Val: 200},
	})
	store.Delete(10)

	vals, ok := store.GetBatch([]int64{10, 20, 30})
	for i := range vals {
		fmt.Println(vals[i], ok[i])
	}
	for _, it := range store.Range(0, 100, nil) {
		fmt.Println(it.Key, it.Val)
	}

	var img bytes.Buffer
	if _, err := store.WriteTo(&img); err != nil {
		panic(err)
	}
	reloaded, err := antipersist.ReadStore(&img, 7)
	if err != nil {
		panic(err)
	}
	fmt.Println(reloaded.Len())
	// Output:
	// 0 false
	// 200 true
	// 300 true
	// 20 200
	// 30 300
	// 2
}

// Durable operation: a DB directory survives crashes and process
// restarts, holding nothing but canonical per-shard images and a
// checksummed manifest — no write-ahead log, because a WAL is an
// operation history and history must never reach the disk.
func ExampleOpen() {
	dir, err := os.MkdirTemp("", "antipersist-example-*")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)

	db, err := antipersist.Open(dir+"/db", &antipersist.DBOptions{
		Shards: 4, Seed: 42, NoBackground: true,
	})
	if err != nil {
		panic(err)
	}
	db.Put(1, 100)
	db.Put(2, 200)
	db.Delete(1) // unrecoverable, even forensically, after the next commit
	if err := db.Close(); err != nil {
		panic(err)
	}

	// Reopen: recovery verifies checksums, hashes, and invariants.
	db, err = antipersist.Open(dir+"/db", nil)
	if err != nil {
		panic(err)
	}
	defer db.Close()
	v, ok := db.Get(2)
	_, gone := db.Get(1)
	fmt.Println(db.Len(), v, ok, gone)
	// Output: 1 200 true false
}
