package antipersist_test

// Native Go fuzz targets for the image readers. The readers consume
// untrusted bytes (a DB directory can be tampered with between runs),
// so they must reject corruption with an error — never panic, never
// allocate memory disproportionate to the input. The corpus is seeded
// with valid WriteTo output plus truncations and bit flips of it, so
// the fuzzer starts at the format boundary instead of random noise.

import (
	"bytes"
	"testing"

	antipersist "repro"
)

// seedImages adds img, a truncation, and a bit flip to the corpus.
func seedImages(f *testing.F, img []byte) {
	f.Add(img)
	f.Add(img[:len(img)/2])
	flipped := append([]byte(nil), img...)
	flipped[len(flipped)/3] ^= 0x10
	f.Add(flipped)
}

func FuzzReadPMA(f *testing.F) {
	for _, n := range []int{0, 1, 7, 130} {
		p := antipersist.NewPMA(uint64(n)+1, nil)
		for i := 0; i < n; i++ {
			p.InsertKey(int64(i*3), int64(i))
		}
		var buf bytes.Buffer
		if _, err := p.WriteTo(&buf); err != nil {
			f.Fatal(err)
		}
		seedImages(f, buf.Bytes())
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := antipersist.ReadPMA(bytes.NewReader(data), 42, nil)
		if err != nil {
			return // rejection is the expected outcome for corrupt input
		}
		// Anything accepted must be fully coherent and usable.
		if err := p.CheckInvariants(); err != nil {
			t.Fatalf("accepted image violates invariants: %v", err)
		}
		p.InsertKey(-12345, 1)
		if err := p.CheckInvariants(); err != nil {
			t.Fatalf("accepted image broke on first insert: %v", err)
		}
	})
}

func FuzzReadStore(f *testing.F) {
	for _, shards := range []int{1, 4} {
		s, err := antipersist.NewStore(shards, uint64(shards))
		if err != nil {
			f.Fatal(err)
		}
		for i := int64(0); i < 60; i++ {
			s.Put(i*5, i)
		}
		var buf bytes.Buffer
		if _, err := s.WriteTo(&buf); err != nil {
			f.Fatal(err)
		}
		seedImages(f, buf.Bytes())
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := antipersist.ReadStore(bytes.NewReader(data), 7)
		if err != nil {
			return
		}
		if err := s.CheckInvariants(); err != nil {
			t.Fatalf("accepted image violates invariants: %v", err)
		}
		s.Put(-99999, 1)
		if _, ok := s.Get(-99999); !ok {
			t.Fatal("accepted store lost a fresh insert")
		}
	})
}
