package skiplist

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/iomodel"
	"repro/internal/xrand"
)

func extConfigs() map[string]Config {
	return map[string]Config{
		"hi-b64":    {B: 64, Epsilon: 1.0 / 3.0},
		"hi-b16":    {B: 16, Epsilon: 0.5},
		"hi-b256":   {B: 256, Epsilon: 1.0 / 3.0},
		"folklore":  {B: 64, Folklore: true},
		"folklore4": {B: 4, Folklore: true},
	}
}

func TestExternalBasic(t *testing.T) {
	for name, cfg := range extConfigs() {
		t.Run(name, func(t *testing.T) {
			s := MustExternal(cfg, 1, nil)
			if s.Contains(5) {
				t.Fatal("empty list contains 5")
			}
			if !s.Insert(5) || s.Insert(5) {
				t.Fatal("insert semantics wrong")
			}
			if !s.Contains(5) {
				t.Fatal("5 missing after insert")
			}
			if !s.Delete(5) || s.Delete(5) {
				t.Fatal("delete semantics wrong")
			}
			if s.Len() != 0 {
				t.Fatalf("len = %d", s.Len())
			}
			if err := s.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestExternalSetOracle(t *testing.T) {
	for name, cfg := range extConfigs() {
		t.Run(name, func(t *testing.T) {
			s := MustExternal(cfg, 7, nil)
			oracle := make(map[int64]bool)
			rng := xrand.New(42)
			for op := 0; op < 8000; op++ {
				k := int64(rng.Intn(1500)) + 1
				switch rng.Intn(3) {
				case 0, 1:
					if got := s.Insert(k); got != !oracle[k] {
						t.Fatalf("op %d: Insert(%d) = %v", op, k, got)
					}
					oracle[k] = true
				case 2:
					if got := s.Delete(k); got != oracle[k] {
						t.Fatalf("op %d: Delete(%d) = %v", op, k, got)
					}
					delete(oracle, k)
				}
				if op%2000 == 1999 {
					if err := s.CheckInvariants(); err != nil {
						t.Fatalf("op %d: %v", op, err)
					}
				}
			}
			if s.Len() != len(oracle) {
				t.Fatalf("len %d vs oracle %d", s.Len(), len(oracle))
			}
			var want []int64
			for k := range oracle {
				want = append(want, k)
			}
			sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
			got := s.Keys()
			if len(got) != len(want) {
				t.Fatalf("Keys returned %d, want %d", len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("Keys[%d] = %d, want %d", i, got[i], want[i])
				}
			}
		})
	}
}

func TestExternalRange(t *testing.T) {
	s := MustExternal(DefaultConfig(), 11, nil)
	for i := int64(1); i <= 3000; i++ {
		s.Insert(i * 2)
	}
	got := s.Range(100, 200, nil)
	if len(got) != 51 {
		t.Fatalf("Range(100,200) = %d keys", len(got))
	}
	for i, v := range got {
		if v != int64(100+2*i) {
			t.Fatalf("Range[%d] = %d", i, v)
		}
	}
	if got := s.Range(5, 4, nil); len(got) != 0 {
		t.Fatal("inverted range nonempty")
	}
	if got := s.Range(99999, 100001, nil); len(got) != 0 {
		t.Fatal("out-of-domain range nonempty")
	}
}

func TestExternalSequentialAndReverse(t *testing.T) {
	for _, dir := range []string{"asc", "desc"} {
		s := MustExternal(DefaultConfig(), 13, nil)
		const n = 5000
		for i := 0; i < n; i++ {
			k := int64(i + 1)
			if dir == "desc" {
				k = int64(n - i)
			}
			s.Insert(k)
		}
		if s.Len() != n {
			t.Fatalf("%s: len = %d", dir, s.Len())
		}
		if err := s.CheckInvariants(); err != nil {
			t.Fatalf("%s: %v", dir, err)
		}
		keys := s.Keys()
		for i, k := range keys {
			if k != int64(i+1) {
				t.Fatalf("%s: keys[%d] = %d", dir, i, k)
			}
		}
	}
}

func TestExternalDeleteEverything(t *testing.T) {
	s := MustExternal(Config{B: 16, Epsilon: 0.5}, 17, nil)
	const n = 3000
	rng := xrand.New(23)
	perm := make([]int, n)
	rng.Perm(perm)
	for i := 0; i < n; i++ {
		s.Insert(int64(i + 1))
	}
	for _, k := range perm {
		if !s.Delete(int64(k + 1)) {
			t.Fatalf("Delete(%d) missed", k+1)
		}
	}
	if s.Len() != 0 || s.Height() != 1 {
		t.Fatalf("len=%d height=%d after deleting all", s.Len(), s.Height())
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestInvariant16 verifies the leaf-array gap invariant directly: every
// leaf array's physical size lies in [max(n, B^γ), 2·max(n, B^γ)-1].
// (CheckInvariants enforces it too; this test makes the claim explicit
// on a large instance.)
func TestInvariant16(t *testing.T) {
	cfg := Config{B: 64, Epsilon: 1.0 / 3.0}
	s := MustExternal(cfg, 19, nil)
	for i := int64(1); i <= 20000; i++ {
		s.Insert(i * 7 % 100003)
	}
	floor := int(s.PromotionDenominator())
	var walk func(n *node, level int)
	bad := 0
	walk = func(n *node, level int) {
		if level == 0 {
			m := len(n.elems)
			if m < floor {
				m = floor
			}
			if n.slots < m || n.slots > 2*m-1 {
				bad++
			}
			return
		}
		for _, c := range n.children {
			walk(c, level-1)
		}
	}
	walk(s.root, s.height)
	if bad > 0 {
		t.Fatalf("%d leaf arrays violate Invariant 16", bad)
	}
}

// TestHeightLogarithmic checks Lemma 17: height O(log_{1/p} N) whp.
func TestHeightLogarithmic(t *testing.T) {
	cfg := Config{B: 64, Epsilon: 1.0 / 3.0}
	s := MustExternal(cfg, 29, nil)
	const n = 50000
	for i := int64(1); i <= n; i++ {
		s.Insert(i)
	}
	// log_{B^γ} N = ln N / ln(16) for B=64, γ=2/3: ~3.9. Allow 4x.
	logP := math.Log(float64(n)) / math.Log(float64(s.PromotionDenominator()))
	if float64(s.Height()) > 4*logP+3 {
		t.Fatalf("height %d vs log_1/p N = %.1f", s.Height(), logP)
	}
}

// TestSearchIOBound checks the Theorem 3 shape: searches cost
// O(log_B N) I/Os whp for the HI variant.
func TestSearchIOBound(t *testing.T) {
	const n = 30000
	for _, B := range []int{16, 64} {
		tr := iomodel.New(B, 64)
		cfg := Config{B: B, Epsilon: 1.0 / 3.0}
		s := MustExternal(cfg, 31, tr)
		for i := int64(1); i <= n; i++ {
			s.Insert(i)
		}
		rng := xrand.New(3)
		tr.Reset()
		const queries = 300
		for q := 0; q < queries; q++ {
			s.Contains(int64(rng.Intn(n)) + 1)
		}
		perQ := float64(tr.IOs()) / queries
		bound := 10*math.Log2(n)/math.Log2(float64(B)) + 10
		if perQ > bound {
			t.Errorf("B=%d: %.1f I/Os per search, bound %.1f", B, perQ, bound)
		}
	}
}

func TestExternalConfigValidation(t *testing.T) {
	if _, err := NewExternal(Config{B: 1}, 1, nil); err == nil {
		t.Error("B=1 accepted")
	}
	if _, err := NewExternal(Config{B: 64, Epsilon: 0}, 1, nil); err == nil {
		t.Error("Epsilon=0 accepted")
	}
	if _, err := NewExternal(Config{B: 64, Epsilon: 1.5}, 1, nil); err == nil {
		t.Error("Epsilon=1.5 accepted")
	}
	if _, err := NewExternal(Config{B: 4, Folklore: true}, 1, nil); err != nil {
		t.Errorf("folklore config rejected: %v", err)
	}
}

func TestExternalSentinelPanics(t *testing.T) {
	s := MustExternal(DefaultConfig(), 1, nil)
	for _, f := range []func(){
		func() { s.Insert(Front) },
		func() { s.Delete(Front) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestPropertyExternalOracle(t *testing.T) {
	f := func(seed uint64, folklore bool) bool {
		cfg := Config{B: 8, Epsilon: 0.5, Folklore: folklore}
		s := MustExternal(cfg, seed, nil)
		oracle := make(map[int64]bool)
		rng := xrand.New(seed + 1)
		for op := 0; op < 600; op++ {
			k := int64(rng.Intn(150)) + 1
			if rng.Intn(2) == 0 {
				s.Insert(k)
				oracle[k] = true
			} else {
				s.Delete(k)
				delete(oracle, k)
			}
		}
		if s.Len() != len(oracle) {
			return false
		}
		for k := int64(1); k <= 150; k++ {
			if s.Contains(k) != oracle[k] {
				return false
			}
		}
		return s.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestInMemoryBasic(t *testing.T) {
	s := NewInMemory(1, nil)
	if !s.Insert(10) || s.Insert(10) {
		t.Fatal("insert semantics")
	}
	if !s.Contains(10) || s.Contains(11) {
		t.Fatal("contains wrong")
	}
	if !s.Delete(10) || s.Delete(10) {
		t.Fatal("delete semantics")
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestInMemoryOracle(t *testing.T) {
	s := NewInMemory(3, nil)
	oracle := make(map[int64]bool)
	rng := xrand.New(5)
	for op := 0; op < 20000; op++ {
		k := int64(rng.Intn(3000)) + 1
		if rng.Intn(2) == 0 {
			s.Insert(k)
			oracle[k] = true
		} else {
			s.Delete(k)
			delete(oracle, k)
		}
	}
	if s.Len() != len(oracle) {
		t.Fatalf("len %d vs %d", s.Len(), len(oracle))
	}
	for k := int64(1); k <= 3000; k++ {
		if s.Contains(k) != oracle[k] {
			t.Fatalf("Contains(%d) = %v", k, s.Contains(k))
		}
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestInMemoryRange(t *testing.T) {
	s := NewInMemory(7, nil)
	for i := int64(1); i <= 1000; i++ {
		s.Insert(i * 3)
	}
	got := s.Range(10, 31, nil)
	want := []int64{12, 15, 18, 21, 24, 27, 30}
	if len(got) != len(want) {
		t.Fatalf("Range = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Range[%d] = %d", i, got[i])
		}
	}
}

// TestInMemorySearchCostLogN: the RAM baseline run in external memory
// costs Θ(log N) I/Os per search — the yardstick of Lemma 15.
func TestInMemorySearchCostLogN(t *testing.T) {
	tr := iomodel.New(1, 0)
	s := NewInMemory(9, tr)
	const n = 20000
	for i := int64(1); i <= n; i++ {
		s.Insert(i)
	}
	rng := xrand.New(11)
	tr.Reset()
	const queries = 500
	for q := 0; q < queries; q++ {
		s.Contains(int64(rng.Intn(n)) + 1)
	}
	perQ := float64(tr.IOs()) / queries
	logN := math.Log2(n)
	if perQ < logN/2 || perQ > 8*logN {
		t.Fatalf("in-memory search cost %.1f I/Os, expected Θ(log N) ≈ %.1f", perQ, logN)
	}
}

// TestLemma15Shape compares the search-cost tails: the folklore B-skip
// list must have many keys whose search cost is Ω(log(N/B)) I/Os, while
// the HI skip list's worst search stays near O(log_B N).
func TestLemma15Shape(t *testing.T) {
	const n = 20000
	const B = 32
	costs := func(cfg Config) (mean, worst float64) {
		tr := iomodel.New(B, 16)
		s := MustExternal(cfg, 13, tr)
		for i := int64(1); i <= n; i++ {
			s.Insert(i)
		}
		var total, max uint64
		const stride = 7
		queries := 0
		for k := int64(1); k <= n; k += stride {
			tr.Reset()
			s.Contains(k)
			c := tr.IOs()
			total += c
			if c > max {
				max = c
			}
			queries++
		}
		return float64(total) / float64(queries), float64(max)
	}
	_, hiWorst := costs(Config{B: B, Epsilon: 1.0 / 3.0})
	_, flWorst := costs(Config{B: B, Folklore: true})
	// Theorem 3: the HI variant's worst search is O(log_B N) — allow
	// 3·log_B N + 6.
	logBN := math.Log2(n) / math.Log2(B)
	if hiWorst > 3*logBN+6 {
		t.Errorf("HI worst search %.0f I/Os exceeds O(log_B N) envelope %.1f",
			hiWorst, 3*logBN+6)
	}
	// Lemma 15: the folklore variant has searches costing Ω(log(N/B))
	// I/Os — its longest array alone spans ~B·ln(N/B) elements, i.e.
	// ~log(N/B) blocks. Require at least half that.
	if want := 0.5 * math.Log(float64(n)/float64(B)); flWorst < want {
		t.Errorf("folklore worst search %.0f I/Os below Ω(log(N/B)) floor %.1f",
			flWorst, want)
	}
	// And the folklore tail must not beat the HI tail.
	if flWorst <= hiWorst {
		t.Errorf("folklore worst %.0f <= HI worst %.0f: Lemma 15 shape inverted", flWorst, hiWorst)
	}
}

func BenchmarkExternalInsert(b *testing.B) {
	s := MustExternal(DefaultConfig(), 1, nil)
	rng := xrand.New(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Insert(int64(rng.Uint64n(1 << 40)))
	}
}

func BenchmarkExternalContains(b *testing.B) {
	s := MustExternal(DefaultConfig(), 1, nil)
	for i := int64(1); i <= 100000; i++ {
		s.Insert(i)
	}
	rng := xrand.New(3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Contains(int64(rng.Intn(100000)) + 1)
	}
}

func BenchmarkInMemoryInsert(b *testing.B) {
	s := NewInMemory(1, nil)
	rng := xrand.New(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Insert(int64(rng.Uint64n(1 << 40)))
	}
}
