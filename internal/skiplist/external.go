// Package skiplist implements the paper's §6 external-memory skip lists:
//
//   - External — the history-independent external-memory skip list of
//     Theorem 3, with promotion probability 1/B^γ (γ = (1+ε)/2), sorted
//     arrays between promoted elements, leaf arrays packed into leaf
//     nodes delimited by twice-promoted elements, and Invariant 16 gap
//     maintenance. Point operations cost O(log_B N) I/Os whp; range
//     queries cost O((1/ε)·log_B N + k/B) whp.
//
//   - The folklore B-skip list (promotion probability 1/B, no leaf-node
//     grouping), obtained via Config.Folklore — the structure Lemma 15
//     proves has Ω(√(NB)) elements whose search costs Ω(log(N/B)) I/Os
//     whp, no better than an in-memory skip list run on disk.
//
//   - InMemory — Pugh's classic p = 1/2 skip list (inmemory.go), the
//     RAM baseline, optionally run "in external memory" where every node
//     hop is an I/O.
//
// The skip list is represented as a multiway search tree that is exactly
// the array decomposition of §6.2: an array at level i starts with an
// element promoted to level ≥ i+1 (or the front sentinel) and holds
// everything up to the next such element; each element of a level-i
// array heads the level-(i-1) array of elements strictly between it and
// its successor. A leaf node — contiguous on disk — is precisely the set
// of leaf arrays headed by the elements of one level-1 array.
package skiplist

import (
	"fmt"
	"math"

	"repro/internal/hialloc"
	"repro/internal/iomodel"
	"repro/internal/xrand"
)

// Front is the sentinel key that begins every level. User keys must be
// strictly greater.
const Front = math.MinInt64

const maxLevel = 64

// Config selects the skip-list variant.
type Config struct {
	// B is the block size in element units (B >= 2).
	B int
	// Epsilon is the paper's ε > 0: the promotion probability is
	// 1/B^γ with γ = (1+ε)/2. It trades worst-case insert cost
	// O(B^ε·log N) against medium-range-query cost O((1/ε)·log_B N + k/B).
	// Ignored in Folklore mode. The paper requires
	// 1/2 < γ <= 1 − log log B / log B; Epsilon = 1/3 (γ = 2/3) is a
	// good default.
	Epsilon float64
	// Folklore selects the folklore B-skip list: promotion probability
	// 1/B and no leaf-node grouping (each leaf array is its own disk
	// allocation). This is the Lemma 15 baseline.
	Folklore bool
	// Deterministic selects Golovin-style strong history independence
	// [32, 33]: element levels are a fixed hash of the key (so the
	// topology is uniquely determined by the key set) and array sizes
	// are canonical (exactly max(n, floor) slots, no random gaps).
	// Combine with Folklore for Golovin's B-skip list. Per §2.2 and
	// Observation 1, canonical sizes forfeit the with-high-probability
	// update bounds — BenchmarkObservation1 quantifies the cost.
	Deterministic bool
}

// DefaultConfig returns the HI external skip list with B = 64, ε = 1/3.
func DefaultConfig() Config {
	return Config{B: 64, Epsilon: 1.0 / 3.0}
}

func (c Config) validate() error {
	if c.B < 2 {
		return fmt.Errorf("skiplist: B %d must be >= 2", c.B)
	}
	if !c.Folklore && !(c.Epsilon > 0 && c.Epsilon <= 1) {
		return fmt.Errorf("skiplist: Epsilon %v must be in (0, 1]", c.Epsilon)
	}
	return nil
}

// node is one array of the skip list: a promoted head plus the elements
// up to the next promoted element, at some level. For level >= 1 nodes,
// children[j] is the level-(level-1) array headed by elems[j]. Leaf
// arrays (level 0) have nil children.
type node struct {
	elems    []int64
	children []*node
	next     *node
	sizer    *hialloc.FloorSizer
	slots    int   // physical slots; >= len(elems)
	addr     int64 // disk address of slot 0

	// Level-1 nodes in grouped (non-folklore) mode own a leaf-node
	// blob: their children stored contiguously starting at blobAddr.
	blobAddr  int64
	blobSlots int
	hasBlob   bool
}

// External is the external-memory skip list (HI or folklore variant).
type External struct {
	cfg        Config
	rng        *xrand.Source
	io         *iomodel.Tracker
	alloc      *hialloc.Allocator
	root       *node // front-headed array at level `height`
	height     int   // root level, >= 1
	count      int   // user keys stored (excludes sentinels)
	promoteDen uint64
	leafFloor  int
	grouped    bool
	detLevels  bool // Deterministic: hash-derived levels, canonical sizes
}

// NewExternal returns an empty skip list. io may be nil.
func NewExternal(cfg Config, seed uint64, io *iomodel.Tracker) (*External, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	s := &External{cfg: cfg, rng: xrand.New(seed), io: io}
	s.alloc = hialloc.NewAllocator(cfg.B, s.rng.Split())
	s.detLevels = cfg.Deterministic
	if cfg.Folklore {
		s.promoteDen = uint64(cfg.B)
		s.leafFloor = 1
		s.grouped = false
	} else {
		gamma := (1 + cfg.Epsilon) / 2
		den := uint64(math.Round(math.Pow(float64(cfg.B), gamma)))
		if den < 2 {
			den = 2
		}
		s.promoteDen = den
		s.leafFloor = int(den) // B^γ, Invariant 16's leaf floor
		s.grouped = true
	}
	leaf := s.newNode(0, []int64{Front}, nil)
	s.root = s.newNode(1, []int64{Front}, []*node{leaf})
	s.height = 1
	s.placeNode(s.root)
	if s.grouped {
		s.rebuildBlob(s.root)
	} else {
		s.placeNode(leaf)
	}
	return s, nil
}

// MustExternal is NewExternal that panics on config error (for tests
// and examples with known-good configs).
func MustExternal(cfg Config, seed uint64, io *iomodel.Tracker) *External {
	s, err := NewExternal(cfg, seed, io)
	if err != nil {
		panic(err)
	}
	return s
}

// Len returns the number of keys stored.
func (s *External) Len() int { return s.count }

// Height returns the current root level.
func (s *External) Height() int { return s.height }

// PromotionDenominator returns 1/p as an integer (B^γ, or B in folklore
// mode).
func (s *External) PromotionDenominator() uint64 { return s.promoteDen }

// newNode builds a node with a fresh HI size for its element count.
func (s *External) newNode(level int, elems []int64, children []*node) *node {
	floor := 1
	if level == 0 {
		floor = s.leafFloor
	}
	n := &node{elems: elems, children: children}
	if s.detLevels {
		n.slots = canonicalSlots(len(elems), floor)
		return n
	}
	n.sizer = hialloc.NewFloorSizer(len(elems), floor, s.rng.Split())
	n.slots = n.sizer.Size()
	if n.slots < len(elems) {
		n.slots = len(elems) // defensive; sizer guarantees this
	}
	return n
}

// canonicalSlots is the deterministic-mode size rule: exactly
// max(n, floor) slots — a canonical function of the contents, as strong
// history independence requires (Hartline et al.; §2.2).
func canonicalSlots(n, floor int) int {
	if n < floor {
		return floor
	}
	return n
}

// arrayInsertSize advances a node's size bookkeeping for one insertion
// and reports whether the physical array must be rebuilt at a new size.
func (s *External) arrayInsertSize(n *node, floor int) (resized bool) {
	if s.detLevels {
		ns := canonicalSlots(len(n.elems), floor)
		resized = ns != n.slots
		n.slots = ns
		return resized
	}
	_, resized = n.sizer.Insert()
	n.slots = max(n.sizer.Size(), len(n.elems))
	return resized
}

// arrayDeleteSize is the deletion counterpart of arrayInsertSize.
func (s *External) arrayDeleteSize(n *node, floor int) (resized bool) {
	if s.detLevels {
		ns := canonicalSlots(len(n.elems), floor)
		resized = ns != n.slots
		n.slots = ns
		return resized
	}
	_, resized = n.sizer.Delete()
	n.slots = max(n.sizer.Size(), len(n.elems))
	return resized
}

// arrayResetSize re-draws (or canonically recomputes) a node's size
// after a bulk change (split/merge).
func (s *External) arrayResetSize(n *node, floor int) {
	if s.detLevels {
		n.slots = canonicalSlots(len(n.elems), floor)
		return
	}
	n.sizer.Reset(len(n.elems))
	n.slots = max(n.sizer.Size(), len(n.elems))
}

// placeNode allocates a disk address for a node that owns its own
// storage (all nodes in folklore mode; level >= 1 nodes in grouped
// mode) and charges the write.
func (s *External) placeNode(n *node) {
	n.addr = s.alloc.Alloc(n.slots)
	s.io.Scan(n.addr, n.slots, true)
}

// replaceNode frees and re-places a node after a resize.
func (s *External) replaceNode(n *node) {
	s.alloc.Free(n.addr)
	s.placeNode(n)
}

// rewriteNode charges an in-place rewrite of a node's slots.
func (s *External) rewriteNode(n *node) {
	s.io.Scan(n.addr, n.slots, true)
}

// rebuildBlob lays out the leaf node owned by a level-1 array: all its
// leaf arrays contiguously on disk (§6.2's "a leaf node is stored
// consecutively on disk"). Only used in grouped mode.
func (s *External) rebuildBlob(p1 *node) {
	if !s.grouped {
		return
	}
	total := 0
	for _, c := range p1.children {
		total += c.slots
	}
	if p1.hasBlob {
		s.alloc.Free(p1.blobAddr)
	}
	p1.blobAddr = s.alloc.Alloc(total)
	p1.blobSlots = total
	p1.hasBlob = true
	off := p1.blobAddr
	for _, c := range p1.children {
		c.addr = off
		off += int64(c.slots)
	}
	s.io.Scan(p1.blobAddr, total, true)
}

// freeNodeStorage releases a node's own allocation (not blob-resident
// leaf arrays).
func (s *External) freeNodeStorage(n *node, level int) {
	if level >= 1 || !s.grouped {
		s.alloc.Free(n.addr)
	}
	if n.hasBlob {
		s.alloc.Free(n.blobAddr)
		n.hasBlob = false
	}
}

type pathEntry struct {
	node *node
	idx  int // rightmost index with elems[idx] <= key
}

// searchPath descends from the root, recording at each level the array
// scanned and the predecessor index, charging the scan prefixes.
func (s *External) searchPath(key int64) (path []pathEntry, found bool) {
	path = make([]pathEntry, s.height+1)
	cur := s.root
	for d := s.height; d >= 0; d-- {
		idx := scanArray(cur.elems, key)
		s.io.Scan(cur.addr, idx+1, false)
		path[d] = pathEntry{cur, idx}
		if d > 0 {
			cur = cur.children[idx]
		}
	}
	leaf := path[0]
	return path, leaf.node.elems[leaf.idx] == key
}

// scanArray returns the rightmost index whose element is <= key.
// elems[0] is a head that is always <= key on a search path.
func scanArray(elems []int64, key int64) int {
	idx := 0
	for idx+1 < len(elems) && elems[idx+1] <= key {
		idx++
	}
	return idx
}

// Contains reports whether key is stored, charging the search I/Os.
func (s *External) Contains(key int64) bool {
	_, found := s.searchPath(key)
	return found
}

// drawLevel determines an element's level: the number of consecutive
// promotions with probability 1/promoteDen each. In deterministic mode
// the coins come from a fixed hash of the key, so the level — and hence
// the whole topology — is a canonical function of the key set.
func (s *External) drawLevel(key int64) int {
	if s.detLevels {
		h := xrand.New(uint64(key) * 0x9e3779b97f4a7c15)
		return h.Geometric(1, s.promoteDen, maxLevel)
	}
	return s.rng.Geometric(1, s.promoteDen, maxLevel)
}

// Insert adds key and reports whether it was absent. Keys must be
// strictly greater than the Front sentinel.
func (s *External) Insert(key int64) bool {
	if key == Front {
		panic("skiplist: cannot insert the Front sentinel")
	}
	path, found := s.searchPath(key)
	if found {
		return false
	}
	lvl := s.drawLevel(key)
	if lvl > s.height {
		path = s.growTo(lvl, path)
	}
	if lvl == 0 {
		s.leafInsert(path, key)
	} else {
		s.splitInsert(path, key, lvl)
	}
	s.count++
	return true
}

// growTo raises the root to the given level, extending the search path
// with the new front arrays.
func (s *External) growTo(lvl int, path []pathEntry) []pathEntry {
	for s.height < lvl {
		nr := s.newNode(s.height+1, []int64{Front}, []*node{s.root})
		s.placeNode(nr)
		s.root = nr
		s.height++
		path = append(path, pathEntry{nr, 0})
	}
	return path
}

// leafInsert handles level-0 inserts: splice into the leaf array and
// re-spread; a resize rebuilds the whole leaf node (§6.2).
func (s *External) leafInsert(path []pathEntry, key int64) {
	L := path[0].node
	at := path[0].idx + 1
	L.elems = append(L.elems, 0)
	copy(L.elems[at+1:], L.elems[at:])
	L.elems[at] = key
	resized := s.arrayInsertSize(L, s.leafFloor)
	if s.grouped {
		if resized {
			s.rebuildBlob(path[1].node)
		} else {
			s.rewriteNode(L)
		}
		return
	}
	if resized {
		s.replaceNode(L)
	} else {
		s.rewriteNode(L)
	}
}

// splitInsert handles inserts with level lvl >= 1: key joins the
// level-lvl array on the path and splits every lower path array into a
// kept prefix and a new array headed by key (§6.2's "y starts an array,
// splitting the existing array into two").
func (s *External) splitInsert(path []pathEntry, key int64, lvl int) {
	A := path[lvl].node
	j := path[lvl].idx
	A.elems = append(A.elems, 0)
	copy(A.elems[j+2:], A.elems[j+1:])
	A.elems[j+1] = key

	var prevNew, new1 *node
	for d := lvl - 1; d >= 0; d-- {
		C := path[d].node
		jd := path[d].idx
		elems := append([]int64{key}, C.elems[jd+1:]...)
		var children []*node
		if d > 0 {
			children = append([]*node{nil}, C.children[jd+1:]...)
		}
		nn := s.newNode(d, elems, children)
		nn.next = C.next
		C.elems = C.elems[:jd+1]
		if d > 0 {
			C.children = C.children[:jd+1]
		}
		C.next = nn
		floorC := 1
		if d == 0 {
			floorC = s.leafFloor
		}
		s.arrayResetSize(C, floorC)
		if d == lvl-1 {
			// nn is A's child at position j+1.
			A.children = append(A.children, nil)
			copy(A.children[j+2:], A.children[j+1:])
			A.children[j+1] = nn
		} else {
			prevNew.children[0] = nn
		}
		if d == 1 {
			new1 = nn
		}
		prevNew = nn
		// Storage: upper arrays own allocations; leaf arrays are
		// blob-resident in grouped mode.
		if d >= 1 || !s.grouped {
			s.placeNode(nn)
			s.replaceNode(C)
		}
	}
	// Resize A itself (one element added).
	resized := s.arrayInsertSize(A, 1)
	if resized {
		s.replaceNode(A)
	} else {
		s.rewriteNode(A)
	}
	// Rebuild the affected leaf-node blobs: the level-1 array that was
	// split (or gained a child when lvl == 1), and the new level-1
	// array when lvl >= 2.
	if s.grouped {
		s.rebuildBlob(path[1].node)
		if lvl >= 2 && new1 != nil {
			s.rebuildBlob(new1)
		}
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
