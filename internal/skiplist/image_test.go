package skiplist

import (
	"bytes"
	"testing"

	"repro/internal/xrand"
)

func buildRandomList(t *testing.T, cfg Config, seed uint64, ops int) *External {
	t.Helper()
	s := MustExternal(cfg, seed, nil)
	rng := xrand.New(seed + 1)
	for i := 0; i < ops; i++ {
		k := int64(rng.Intn(2000)) + 1
		if rng.Intn(3) > 0 {
			s.Insert(k)
		} else {
			s.Delete(k)
		}
	}
	return s
}

func TestSkipImageRoundTrip(t *testing.T) {
	for name, cfg := range map[string]Config{
		"hi":       {B: 16, Epsilon: 0.5},
		"folklore": {B: 16, Folklore: true},
	} {
		t.Run(name, func(t *testing.T) {
			for _, ops := range []int{0, 1, 100, 4000} {
				s := buildRandomList(t, cfg, 31, ops)
				var img bytes.Buffer
				wrote, err := s.WriteTo(&img)
				if err != nil {
					t.Fatalf("ops=%d: %v", ops, err)
				}
				if wrote != int64(img.Len()) {
					t.Fatalf("ops=%d: reported %d bytes, wrote %d", ops, wrote, img.Len())
				}
				loaded, err := ReadImage(bytes.NewReader(img.Bytes()), 999, nil)
				if err != nil {
					t.Fatalf("ops=%d: ReadImage: %v", ops, err)
				}
				if loaded.Len() != s.Len() || loaded.Height() != s.Height() {
					t.Fatalf("ops=%d: shape mismatch", ops)
				}
				a, b := s.Keys(), loaded.Keys()
				if len(a) != len(b) {
					t.Fatalf("ops=%d: key counts %d vs %d", ops, len(a), len(b))
				}
				for i := range a {
					if a[i] != b[i] {
						t.Fatalf("ops=%d: key %d differs", ops, i)
					}
				}
				if err := loaded.CheckInvariants(); err != nil {
					t.Fatalf("ops=%d: %v", ops, err)
				}
			}
		})
	}
}

func TestSkipImageCanonical(t *testing.T) {
	s := buildRandomList(t, Config{B: 32, Epsilon: 1.0 / 3.0}, 37, 3000)
	var img1 bytes.Buffer
	if _, err := s.WriteTo(&img1); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadImage(bytes.NewReader(img1.Bytes()), 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	var img2 bytes.Buffer
	if _, err := loaded.WriteTo(&img2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(img1.Bytes(), img2.Bytes()) {
		t.Fatal("image not canonical across load/store")
	}
}

func TestSkipImageLoadedRemainsOperational(t *testing.T) {
	s := buildRandomList(t, Config{B: 16, Epsilon: 0.5}, 41, 2000)
	var img bytes.Buffer
	if _, err := s.WriteTo(&img); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadImage(&img, 7, nil)
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(43)
	for i := 0; i < 3000; i++ {
		k := int64(rng.Intn(5000)) + 1
		if rng.Intn(2) == 0 {
			loaded.Insert(k)
		} else {
			loaded.Delete(k)
		}
	}
	if err := loaded.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSkipImageRejectsCorruption(t *testing.T) {
	s := buildRandomList(t, Config{B: 16, Epsilon: 0.5}, 47, 800)
	var img bytes.Buffer
	if _, err := s.WriteTo(&img); err != nil {
		t.Fatal(err)
	}
	good := img.Bytes()

	if _, err := ReadImage(bytes.NewReader(good[:len(good)/3]), 1, nil); err == nil {
		t.Error("truncated image accepted")
	}
	bad := append([]byte(nil), good...)
	bad[0] ^= 0xFF
	if _, err := ReadImage(bytes.NewReader(bad), 1, nil); err == nil {
		t.Error("bad magic accepted")
	}
	bad = append([]byte(nil), good...)
	bad[len(bad)*2/3] ^= 0x01
	if _, err := ReadImage(bytes.NewReader(bad), 1, nil); err == nil {
		t.Error("payload corruption accepted")
	}
	bad = append([]byte(nil), good...)
	bad[len(bad)-2] ^= 0x01
	if _, err := ReadImage(bytes.NewReader(bad), 1, nil); err == nil {
		t.Error("checksum corruption accepted")
	}
}
