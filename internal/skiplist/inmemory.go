package skiplist

import (
	"fmt"

	"repro/internal/hialloc"
	"repro/internal/iomodel"
	"repro/internal/xrand"
)

// InMemory is Pugh's classic skip list with promotion probability 1/2:
// the paper's RAM baseline. Its pointer structure is weakly history
// independent [31, 53]. When given an I/O tracker, every node hop
// charges one block touch — "an in-memory skip list run in external
// memory" — which is exactly the yardstick Lemma 15 compares the
// folklore B-skip list against: Θ(log N) I/Os per search whp.
type InMemory struct {
	rng    *xrand.Source
	io     *iomodel.Tracker
	alloc  *hialloc.Allocator
	head   *imNode
	height int
	count  int
}

type imNode struct {
	key  int64
	next []*imNode
	addr int64
}

// NewInMemory returns an empty classic skip list. io may be nil; if
// present, each node visit costs one block read (nodes are placed at
// history-independent random addresses).
func NewInMemory(seed uint64, io *iomodel.Tracker) *InMemory {
	s := &InMemory{rng: xrand.New(seed), io: io, height: 1}
	s.alloc = hialloc.NewAllocator(1, s.rng.Split())
	s.head = s.newNode(Front, maxLevel+1)
	return s
}

func (s *InMemory) newNode(key int64, levels int) *imNode {
	n := &imNode{key: key, next: make([]*imNode, levels)}
	n.addr = s.alloc.Alloc(1)
	return n
}

// Len returns the number of keys stored.
func (s *InMemory) Len() int { return s.count }

// Height returns the number of levels in use.
func (s *InMemory) Height() int { return s.height }

func (s *InMemory) visit(n *imNode) {
	s.io.Read(n.addr)
}

// findPredecessors returns, for each level, the last node < key.
func (s *InMemory) findPredecessors(key int64) []*imNode {
	preds := make([]*imNode, s.height)
	cur := s.head
	s.visit(cur)
	for d := s.height - 1; d >= 0; d-- {
		for cur.next[d] != nil && cur.next[d].key < key {
			cur = cur.next[d]
			s.visit(cur)
		}
		preds[d] = cur
	}
	return preds
}

// Contains reports whether key is stored.
func (s *InMemory) Contains(key int64) bool {
	preds := s.findPredecessors(key)
	n := preds[0].next[0]
	if n != nil {
		s.visit(n)
	}
	return n != nil && n.key == key
}

// Insert adds key and reports whether it was absent.
func (s *InMemory) Insert(key int64) bool {
	if key == Front {
		panic("skiplist: cannot insert the Front sentinel")
	}
	preds := s.findPredecessors(key)
	if n := preds[0].next[0]; n != nil && n.key == key {
		return false
	}
	lvl := s.rng.Geometric(1, 2, maxLevel) + 1 // node spans lvl levels
	for s.height < lvl {
		preds = append(preds, s.head)
		s.height++
	}
	n := s.newNode(key, lvl)
	s.visit(n)
	for d := 0; d < lvl; d++ {
		n.next[d] = preds[d].next[d]
		preds[d].next[d] = n
		s.visit(preds[d])
	}
	s.count++
	return true
}

// Delete removes key and reports whether it was present.
func (s *InMemory) Delete(key int64) bool {
	preds := s.findPredecessors(key)
	n := preds[0].next[0]
	if n == nil || n.key != key {
		return false
	}
	for d := 0; d < len(n.next); d++ {
		if preds[d].next[d] == n {
			preds[d].next[d] = n.next[d]
			s.visit(preds[d])
		}
	}
	s.alloc.Free(n.addr)
	for s.height > 1 && s.head.next[s.height-1] == nil {
		s.height--
	}
	s.count--
	return true
}

// Range appends all keys in [lo, hi] to out, in order.
func (s *InMemory) Range(lo, hi int64, out []int64) []int64 {
	if lo > hi {
		return out
	}
	preds := s.findPredecessors(lo)
	for n := preds[0].next[0]; n != nil && n.key <= hi; n = n.next[0] {
		s.visit(n)
		out = append(out, n.key)
	}
	return out
}

// CheckInvariants validates sortedness and level-nesting.
func (s *InMemory) CheckInvariants() error {
	for d := 0; d < s.height; d++ {
		prev := int64(Front)
		seen := 0
		for n := s.head.next[d]; n != nil; n = n.next[d] {
			if n.key <= prev {
				return fmt.Errorf("skiplist: level %d out of order: %d after %d", d, n.key, prev)
			}
			prev = n.key
			seen++
		}
		if d == 0 && seen != s.count {
			return fmt.Errorf("skiplist: level 0 has %d nodes, count %d", seen, s.count)
		}
	}
	// Every node at level d+1 appears at level d.
	for d := 1; d < s.height; d++ {
		lower := map[int64]bool{}
		for n := s.head.next[d-1]; n != nil; n = n.next[d-1] {
			lower[n.key] = true
		}
		for n := s.head.next[d]; n != nil; n = n.next[d] {
			if !lower[n.key] {
				return fmt.Errorf("skiplist: key %d at level %d missing from level %d", n.key, d, d-1)
			}
		}
	}
	return nil
}
