package skiplist

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/xrand"
)

// TestWHIDistribution verifies weak history independence for the
// external skip list (§6.3): two different operation histories reaching
// the same key set must give identically distributed observables. We
// compare the distributions of (a) the list height and (b) the number
// of level-1 arrays across many seeds, via a two-sample chi-square.
func TestWHIDistribution(t *testing.T) {
	const n = 250
	const trials = 2000
	cfg := Config{B: 16, Epsilon: 0.5}

	histA := func(seed uint64) *External {
		s := MustExternal(cfg, seed, nil)
		for i := int64(1); i <= n; i++ {
			s.Insert(i)
		}
		return s
	}
	histB := func(seed uint64) *External {
		s := MustExternal(cfg, seed, nil)
		// Decoys, reverse inserts, churn, redaction.
		for i := int64(1); i <= 60; i++ {
			s.Insert(1000 + i)
		}
		for i := int64(n); i >= 1; i-- {
			s.Insert(i)
		}
		for i := int64(1); i <= 60; i++ {
			s.Delete(1000 + i)
		}
		for i := int64(50); i <= 120; i++ {
			s.Delete(i)
			s.Insert(i)
		}
		return s
	}

	type obs struct{ height, l1 int }
	collect := func(build func(uint64) *External, base uint64) []obs {
		out := make([]obs, trials)
		for i := 0; i < trials; i++ {
			s := build(base + uint64(i)*13)
			if s.Len() != n {
				t.Fatalf("history reached %d keys, want %d", s.Len(), n)
			}
			st := s.Stats()
			out[i] = obs{height: s.Height(), l1: st[1].Arrays}
		}
		return out
	}
	a := collect(histA, 1)
	b := collect(histB, 1_000_003)

	chi2 := func(pick func(obs) int, buckets int, scale int) float64 {
		ca := make([]int, buckets)
		cb := make([]int, buckets)
		clamp := func(v int) int {
			if v >= buckets {
				return buckets - 1
			}
			return v
		}
		for i := 0; i < trials; i++ {
			ca[clamp(pick(a[i])/scale)]++
			cb[clamp(pick(b[i])/scale)]++
		}
		stat := 0.0
		for i := range ca {
			sum := float64(ca[i] + cb[i])
			if sum == 0 {
				continue
			}
			d := float64(ca[i]) - float64(cb[i])
			stat += d * d / sum
		}
		return stat
	}
	// Height takes a handful of values; 8 buckets, ~7 dof, 99.9th ~24.3.
	if s := chi2(func(o obs) int { return o.height }, 8, 1); s > 24.3 {
		t.Errorf("height distributions differ across histories: chi2 = %.1f", s)
	}
	// Level-1 array count, coarse buckets (~15 dof, 99.9th ~37.7).
	if s := chi2(func(o obs) int { return o.l1 }, 16, 4); s > 37.7 {
		t.Errorf("level-1 array-count distributions differ: chi2 = %.1f", s)
	}
}

// TestArrayLengthBound checks the §6.1/§6.4 size facts: every array's
// length is O(B^γ·log N) whp (the longest run of unpromoted elements).
func TestArrayLengthBound(t *testing.T) {
	const n = 40000
	cfg := Config{B: 64, Epsilon: 1.0 / 3.0}
	s := MustExternal(cfg, 3, nil)
	for i := int64(1); i <= n; i++ {
		s.Insert(i)
	}
	den := float64(s.PromotionDenominator()) // B^γ
	bound := 4 * den * math.Log(float64(n))
	for _, st := range s.Stats() {
		if float64(st.MaxLen) > bound {
			t.Errorf("level %d: max array length %d exceeds 4·B^γ·ln N = %.0f",
				st.Level, st.MaxLen, bound)
		}
	}
}

// TestLeafNodeSizeBound checks Lemma 19's ingredient: leaf nodes have
// O(B^{2γ}·log N) slots whp.
func TestLeafNodeSizeBound(t *testing.T) {
	const n = 40000
	cfg := Config{B: 64, Epsilon: 1.0 / 3.0}
	s := MustExternal(cfg, 5, nil)
	for i := int64(1); i <= n; i++ {
		s.Insert(i)
	}
	den := float64(s.PromotionDenominator())
	bound := 6 * den * den * math.Log(float64(n))
	for _, sz := range s.LeafNodeSizes() {
		if float64(sz) > bound {
			t.Errorf("leaf node with %d slots exceeds 6·B^{2γ}·ln N = %.0f", sz, bound)
		}
	}
}

// TestSpaceLinear checks Lemma 22: Θ(N) total slots.
func TestSpaceLinear(t *testing.T) {
	const n = 40000
	for name, cfg := range map[string]Config{
		"hi":       {B: 64, Epsilon: 1.0 / 3.0},
		"folklore": {B: 64, Folklore: true},
	} {
		s := MustExternal(cfg, 7, nil)
		for i := int64(1); i <= n; i++ {
			s.Insert(i)
		}
		ratio := float64(s.TotalSlots()) / float64(n)
		if ratio > 8 {
			t.Errorf("%s: %.1f slots per element — not Θ(N)", name, ratio)
		}
		if ratio < 1 {
			t.Errorf("%s: ratio %.2f < 1, slots unaccounted", name, ratio)
		}
	}
}

// TestLevelOccupancyGeometric: the number of elements at level >= i
// decays geometrically with factor p (the promotion probability), the
// structural heart of Lemma 17.
func TestLevelOccupancyGeometric(t *testing.T) {
	const n = 60000
	cfg := Config{B: 256, Epsilon: 1.0 / 3.0} // den = 256^(2/3) = 40.3 -> 40
	s := MustExternal(cfg, 9, nil)
	for i := int64(1); i <= n; i++ {
		s.Insert(i)
	}
	st := s.Stats()
	den := float64(s.PromotionDenominator())
	// Elements at level >= 1 is Binomial(n, 1/den): mean n/den.
	// st[1].TotalLen counts level-1 array entries = elements of level
	// >= 1 plus the front sentinel.
	got := float64(st[1].TotalLen - 1)
	want := float64(n) / den
	sigma := math.Sqrt(want)
	if math.Abs(got-want) > 6*sigma {
		t.Errorf("level>=1 population %0.f, want %.0f ± %.0f", got, want, 6*sigma)
	}
}

func TestExternalDump(t *testing.T) {
	s := MustExternal(Config{B: 4, Epsilon: 1}, 11, nil)
	for i := int64(1); i <= 30; i++ {
		s.Insert(i)
	}
	var buf bytes.Buffer
	s.Dump(&buf, 0)
	out := buf.String()
	if !strings.Contains(out, "S0") || !strings.Contains(out, "F") {
		t.Fatalf("dump missing leaf level or front sentinel:\n%s", out)
	}
	if !strings.Contains(out, "external skip list: n=30") {
		t.Fatalf("dump header wrong:\n%s", out)
	}
	// Truncation respected (the header line is exempt).
	buf.Reset()
	s.Dump(&buf, 40)
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	for _, line := range lines[1:] {
		if len(line) > 43 { // width + ellipsis slack
			t.Fatalf("line exceeds width: %q", line)
		}
	}
}

// TestRandomizedDumpAndStats fuzzes Dump and Stats against random
// contents (they must not panic and must agree on counts).
func TestRandomizedDumpAndStats(t *testing.T) {
	rng := xrand.New(13)
	for trial := 0; trial < 20; trial++ {
		cfg := Config{B: 8, Epsilon: 0.5, Folklore: trial%2 == 1}
		s := MustExternal(cfg, uint64(trial), nil)
		for op := 0; op < 300; op++ {
			k := int64(rng.Intn(100)) + 1
			if rng.Intn(2) == 0 {
				s.Insert(k)
			} else {
				s.Delete(k)
			}
		}
		var buf bytes.Buffer
		s.Dump(&buf, 200)
		st := s.Stats()
		if st[0].TotalLen-1 != s.Len() {
			t.Fatalf("trial %d: stats leaf population %d vs len %d",
				trial, st[0].TotalLen-1, s.Len())
		}
	}
}
