package skiplist

import (
	"fmt"
	"io"
	"strings"
)

// Dump renders the external skip list in the style of the paper's
// Figure 3: one row per level, arrays separated by '|', the front
// sentinel as 'F', and leaf-node boundaries (grouped mode) marked with
// '‖'. Gaps in leaf arrays appear as '.'. Intended for small lists;
// rows are truncated at width columns (0 means no limit).
func (s *External) Dump(w io.Writer, width int) {
	fmt.Fprintf(w, "external skip list: n=%d height=%d 1/p=%d grouped=%v\n",
		s.count, s.height, s.promoteDen, s.grouped)
	// Collect the arrays at each level via the next chains, which start
	// at the front chain.
	front := make([]*node, s.height+1)
	cur := s.root
	for d := s.height; d >= 0; d-- {
		front[d] = cur
		if d > 0 {
			cur = cur.children[0]
		}
	}
	for d := s.height; d >= 0; d-- {
		var sb strings.Builder
		fmt.Fprintf(&sb, "S%-2d ", d)
		for n := front[d]; n != nil; n = n.next {
			if d == 0 && s.grouped && n.headsLeafNode(s) {
				sb.WriteString("‖ ")
			} else {
				sb.WriteString("| ")
			}
			for i, e := range n.elems {
				if e == Front {
					sb.WriteString("F ")
				} else {
					fmt.Fprintf(&sb, "%d ", e)
				}
				_ = i
			}
			// Show leaf gaps (Invariant 16's extra slots).
			if d == 0 {
				for g := len(n.elems); g < n.slots; g++ {
					sb.WriteString(". ")
				}
			}
		}
		sb.WriteString("|")
		line := sb.String()
		if width > 0 && len(line) > width {
			line = line[:width-3] + "..."
		}
		fmt.Fprintln(w, line)
	}
}

// headsLeafNode reports whether a leaf array begins a leaf node, i.e.
// its head is promoted at least twice (level >= 2). Structurally: the
// head of a leaf node is the head of its parent level-1 array, and that
// level-1 array's head is promoted to level >= 2 exactly when it in
// turn heads its own parent's child — which we detect by comparing
// against the blob owners' first children.
func (n *node) headsLeafNode(s *External) bool {
	// A leaf array heads a leaf node iff it is the first child of a
	// level-1 array (blob owner). Walk the level-1 chain once.
	l1 := s.root
	for lvl := s.height; lvl > 1; lvl-- {
		l1 = l1.children[0]
	}
	for ; l1 != nil; l1 = l1.next {
		if len(l1.children) > 0 && l1.children[0] == n {
			return true
		}
	}
	return false
}
