package skiplist

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"repro/internal/hialloc"
	"repro/internal/iomodel"
	"repro/internal/xrand"
)

// Disk image format for the external skip list. As with the PMA image,
// the serialized state is exactly the structure's memory
// representation: every array's contents, physical size AND disk
// address (addresses are part of the representation per §2), plus the
// leaf-node blob placements. Next-pointers are not stored — they are
// derivable from the tree (an array's successor is the next array in
// in-order) — and neither is any randomness.
//
//	magic    [8]byte "HISL\x00\x00v1"
//	b        int64
//	epsilon  float64 bits
//	folklore uint8
//	determ   uint8
//	count    int64
//	height   int64
//	nodes    pre-order from the root:
//	           nElems   int64
//	           slots    int64
//	           addr     int64
//	           hasBlob  uint8   (level-1, grouped mode)
//	           blobAddr int64   (if hasBlob)
//	           blobSlots int64  (if hasBlob)
//	           elems    [nElems]int64
//	           children (recursively; level > 0 has nElems children)
//	crc32    uint32 (IEEE, over everything above)
var slImageMagic = [8]byte{'H', 'I', 'S', 'L', 0, 0, 'v', '1'}

// WriteTo serializes the skip list's exact memory representation. It
// implements io.WriterTo.
func (s *External) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	cw := &crcCountWriter{w: bw}
	if _, err := cw.Write(slImageMagic[:]); err != nil {
		return cw.n, err
	}
	folk := uint8(0)
	if s.cfg.Folklore {
		folk = 1
	}
	det := uint8(0)
	if s.cfg.Deterministic {
		det = 1
	}
	if err := writeVals(cw,
		uint64(s.cfg.B), math.Float64bits(s.cfg.Epsilon)); err != nil {
		return cw.n, err
	}
	if _, err := cw.Write([]byte{folk, det}); err != nil {
		return cw.n, err
	}
	if err := writeVals(cw, uint64(s.count), uint64(s.height)); err != nil {
		return cw.n, err
	}
	if err := s.writeNode(cw, s.root, s.height); err != nil {
		return cw.n, err
	}
	if err := binary.Write(bw, binary.LittleEndian, cw.crc); err != nil {
		return cw.n, err
	}
	return cw.n + 4, bw.Flush()
}

func (s *External) writeNode(w io.Writer, n *node, level int) error {
	if err := writeVals(w, uint64(len(n.elems)), uint64(n.slots), uint64(n.addr)); err != nil {
		return err
	}
	hasBlob := uint8(0)
	if n.hasBlob {
		hasBlob = 1
	}
	if _, err := w.Write([]byte{hasBlob}); err != nil {
		return err
	}
	if n.hasBlob {
		if err := writeVals(w, uint64(n.blobAddr), uint64(n.blobSlots)); err != nil {
			return err
		}
	}
	for _, e := range n.elems {
		if err := writeVals(w, uint64(e)); err != nil {
			return err
		}
	}
	if level > 0 {
		for _, c := range n.children {
			if err := s.writeNode(w, c, level-1); err != nil {
				return err
			}
		}
	}
	return nil
}

// ReadImage deserializes a skip-list image. The seed supplies fresh
// randomness for future operations; io may be nil. The checksum, the
// allocator reservations and all structural invariants are verified.
func ReadImage(r io.Reader, seed uint64, io2 *iomodel.Tracker) (*External, error) {
	cr := &crcCountReader{r: bufio.NewReader(r)}
	var magic [8]byte
	if _, err := io.ReadFull(cr, magic[:]); err != nil {
		return nil, fmt.Errorf("skiplist: reading magic: %w", err)
	}
	if magic != slImageMagic {
		return nil, fmt.Errorf("skiplist: bad magic %q", magic[:])
	}
	var bRaw, epsRaw uint64
	if err := readVals(cr, &bRaw, &epsRaw); err != nil {
		return nil, err
	}
	var flags [2]byte
	if _, err := io.ReadFull(cr, flags[:]); err != nil {
		return nil, err
	}
	cfg := Config{
		B:             int(int64(bRaw)),
		Epsilon:       math.Float64frombits(epsRaw),
		Folklore:      flags[0] == 1,
		Deterministic: flags[1] == 1,
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	var countRaw, heightRaw uint64
	if err := readVals(cr, &countRaw, &heightRaw); err != nil {
		return nil, err
	}
	count, height := int(int64(countRaw)), int(int64(heightRaw))
	if count < 0 || height < 1 || height > maxLevel {
		return nil, fmt.Errorf("skiplist: implausible count %d / height %d", count, height)
	}

	s := &External{cfg: cfg, rng: xrand.New(seed), io: io2}
	s.alloc = hialloc.NewAllocator(cfg.B, s.rng.Split())
	s.detLevels = cfg.Deterministic
	if cfg.Folklore {
		s.promoteDen = uint64(cfg.B)
		s.leafFloor = 1
		s.grouped = false
	} else {
		gamma := (1 + cfg.Epsilon) / 2
		den := uint64(math.Round(math.Pow(float64(cfg.B), gamma)))
		if den < 2 {
			den = 2
		}
		s.promoteDen = den
		s.leafFloor = int(den)
		s.grouped = true
	}
	s.count = count
	s.height = height

	root, err := s.readNode(cr, height)
	if err != nil {
		return nil, err
	}
	s.root = root
	wantCRC := cr.crc
	var gotCRC uint32
	if err := binary.Read(cr.r, binary.LittleEndian, &gotCRC); err != nil {
		return nil, fmt.Errorf("skiplist: reading checksum: %w", err)
	}
	if gotCRC != wantCRC {
		return nil, fmt.Errorf("skiplist: checksum mismatch: image %08x, computed %08x", gotCRC, wantCRC)
	}
	// Reconstruct the next chains (in-order successors per level).
	var lastAtLevel [maxLevel + 1]*node
	var link func(n *node, level int)
	link = func(n *node, level int) {
		if prev := lastAtLevel[level]; prev != nil {
			prev.next = n
		}
		lastAtLevel[level] = n
		for _, c := range n.children {
			link(c, level-1)
		}
	}
	link(root, height)
	if err := s.CheckInvariants(); err != nil {
		return nil, fmt.Errorf("skiplist: corrupt image: %w", err)
	}
	return s, nil
}

func (s *External) readNode(r io.Reader, level int) (*node, error) {
	var nElemsRaw, slotsRaw, addrRaw uint64
	if err := readVals(r, &nElemsRaw, &slotsRaw, &addrRaw); err != nil {
		return nil, err
	}
	nElems := int(int64(nElemsRaw))
	slots := int(int64(slotsRaw))
	if nElems < 0 || nElems > 1<<30 || slots < nElems {
		return nil, fmt.Errorf("skiplist: implausible array: %d elems, %d slots", nElems, slots)
	}
	var blobFlag [1]byte
	if _, err := io.ReadFull(r, blobFlag[:]); err != nil {
		return nil, err
	}
	n := &node{slots: slots, addr: int64(addrRaw)}
	if blobFlag[0] == 1 {
		var blobAddrRaw, blobSlotsRaw uint64
		if err := readVals(r, &blobAddrRaw, &blobSlotsRaw); err != nil {
			return nil, err
		}
		n.hasBlob = true
		n.blobAddr = int64(blobAddrRaw)
		n.blobSlots = int(int64(blobSlotsRaw))
	}
	n.elems = make([]int64, nElems)
	buf := make([]byte, 8)
	for i := range n.elems {
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, err
		}
		n.elems[i] = int64(binary.LittleEndian.Uint64(buf))
	}
	// Restore the size bookkeeping around the persisted size.
	floor := 1
	if level == 0 {
		floor = s.leafFloor
	}
	if s.detLevels {
		if slots != canonicalSlots(nElems, floor) {
			return nil, fmt.Errorf("skiplist: level %d array: non-canonical size %d for %d elems", level, slots, nElems)
		}
	} else {
		sizer, err := hialloc.RestoreFloorSizer(nElems, slots, floor, s.rng.Split())
		if err != nil {
			return nil, fmt.Errorf("skiplist: level %d array: %w", level, err)
		}
		n.sizer = sizer
	}
	// Re-register the address reservations so future Alloc/Free cycles
	// stay consistent. Blob-resident leaf arrays do not own storage.
	ownsStorage := level >= 1 || !s.grouped
	if ownsStorage {
		if err := s.alloc.Reserve(n.addr, n.slots); err != nil {
			return nil, err
		}
	}
	if n.hasBlob {
		if err := s.alloc.Reserve(n.blobAddr, n.blobSlots); err != nil {
			return nil, err
		}
	}
	if level > 0 {
		n.children = make([]*node, nElems)
		for i := range n.children {
			c, err := s.readNode(r, level-1)
			if err != nil {
				return nil, err
			}
			if len(c.elems) == 0 || c.elems[0] != n.elems[i] {
				return nil, fmt.Errorf("skiplist: child head mismatch at level %d", level)
			}
			n.children[i] = c
		}
	}
	return n, nil
}

func writeVals(w io.Writer, vals ...uint64) error {
	var buf [8]byte
	for _, v := range vals {
		binary.LittleEndian.PutUint64(buf[:], v)
		if _, err := w.Write(buf[:]); err != nil {
			return err
		}
	}
	return nil
}

func readVals(r io.Reader, vals ...*uint64) error {
	var buf [8]byte
	for _, v := range vals {
		if _, err := io.ReadFull(r, buf[:]); err != nil {
			return err
		}
		*v = binary.LittleEndian.Uint64(buf[:])
	}
	return nil
}

type crcCountWriter struct {
	w   io.Writer
	crc uint32
	n   int64
}

func (c *crcCountWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.crc = crc32.Update(c.crc, crc32.IEEETable, p[:n])
	c.n += int64(n)
	return n, err
}

type crcCountReader struct {
	r   io.Reader
	crc uint32
	n   int64
}

func (c *crcCountReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.crc = crc32.Update(c.crc, crc32.IEEETable, p[:n])
	c.n += int64(n)
	return n, err
}
