package skiplist

import (
	"bytes"
	"testing"

	"repro/internal/xrand"
)

// detConfigs returns the Golovin-style strongly-HI variants: hash
// levels + canonical sizes, with B-skip (folklore) and B^γ promotion.
func detConfigs() map[string]Config {
	return map[string]Config{
		"det-bskip": {B: 16, Folklore: true, Deterministic: true},
		"det-hi":    {B: 16, Epsilon: 0.5, Deterministic: true},
	}
}

func TestDeterministicOracle(t *testing.T) {
	for name, cfg := range detConfigs() {
		t.Run(name, func(t *testing.T) {
			s := MustExternal(cfg, 3, nil)
			oracle := make(map[int64]bool)
			rng := xrand.New(7)
			for op := 0; op < 6000; op++ {
				k := int64(rng.Intn(1200)) + 1
				if rng.Intn(3) > 0 {
					s.Insert(k)
					oracle[k] = true
				} else {
					s.Delete(k)
					delete(oracle, k)
				}
				if op%2000 == 1999 {
					if err := s.CheckInvariants(); err != nil {
						t.Fatalf("op %d: %v", op, err)
					}
				}
			}
			for k := int64(1); k <= 1200; k++ {
				if s.Contains(k) != oracle[k] {
					t.Fatalf("Contains(%d) = %v", k, s.Contains(k))
				}
			}
		})
	}
}

// TestUniqueRepresentation is the defining SHI property (Hartline et
// al., §1.4): in deterministic mode, any two operation histories
// reaching the same key set produce *identical* structures — same
// topology, same array sizes — not merely identically distributed ones.
// (Disk addresses still come from the randomized allocator; we compare
// the canonical parts: shape, contents, slots.)
func TestUniqueRepresentation(t *testing.T) {
	cfg := Config{B: 16, Folklore: true, Deterministic: true}

	histA := MustExternal(cfg, 1, nil)
	for i := int64(1); i <= 800; i++ {
		histA.Insert(i)
	}

	histB := MustExternal(cfg, 999, nil) // different seed: must not matter
	for i := int64(800); i >= 1; i-- {
		histB.Insert(i)
	}
	for i := int64(100); i <= 300; i++ {
		histB.Delete(i)
	}
	for i := int64(100); i <= 300; i++ {
		histB.Insert(i)
	}

	var shapeA, shapeB bytes.Buffer
	dumpShape := func(buf *bytes.Buffer, s *External) {
		var walk func(n *node, level int)
		walk = func(n *node, level int) {
			buf.WriteByte(byte(level))
			buf.WriteByte(byte(len(n.elems)))
			buf.WriteByte(byte(n.slots))
			for _, e := range n.elems {
				buf.WriteByte(byte(e))
				buf.WriteByte(byte(e >> 8))
			}
			for _, c := range n.children {
				walk(c, level-1)
			}
		}
		walk(s.root, s.height)
	}
	if histA.Height() != histB.Height() {
		t.Fatalf("heights differ: %d vs %d", histA.Height(), histB.Height())
	}
	dumpShape(&shapeA, histA)
	dumpShape(&shapeB, histB)
	if !bytes.Equal(shapeA.Bytes(), shapeB.Bytes()) {
		t.Fatal("deterministic structures differ across histories: unique representation broken")
	}
}

// TestRandomizedIsNotUnique is the converse sanity check: the WHI
// variant's representation must NOT be canonical (different seeds give
// different layouts for the same set) — otherwise it would be paying
// SHI's costs without us noticing.
func TestRandomizedIsNotUnique(t *testing.T) {
	cfg := Config{B: 16, Epsilon: 0.5}
	heightsDiffer := false
	statsDiffer := false
	base := MustExternal(cfg, 1, nil)
	for i := int64(1); i <= 500; i++ {
		base.Insert(i)
	}
	baseStats := base.Stats()
	for seed := uint64(2); seed < 12; seed++ {
		s := MustExternal(cfg, seed, nil)
		for i := int64(1); i <= 500; i++ {
			s.Insert(i)
		}
		if s.Height() != base.Height() {
			heightsDiffer = true
		}
		st := s.Stats()
		if len(st) != len(baseStats) || st[0].TotalSlot != baseStats[0].TotalSlot {
			statsDiffer = true
		}
	}
	if !heightsDiffer && !statsDiffer {
		t.Fatal("10 different seeds produced identical WHI structures — randomness broken?")
	}
}

func TestDeterministicImageRoundTrip(t *testing.T) {
	cfg := Config{B: 16, Epsilon: 0.5, Deterministic: true}
	s := buildRandomList(t, cfg, 61, 2500)
	var img bytes.Buffer
	if _, err := s.WriteTo(&img); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadImage(bytes.NewReader(img.Bytes()), 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	a, b := s.Keys(), loaded.Keys()
	if len(a) != len(b) {
		t.Fatalf("key counts %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("key %d differs", i)
		}
	}
	// Loaded deterministic list keeps identical levels for re-inserts.
	loaded.Delete(a[len(a)/2])
	loaded.Insert(a[len(a)/2])
	if err := loaded.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
