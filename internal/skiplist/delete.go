package skiplist

import "fmt"

// Delete removes key and reports whether it was present. Deleting an
// element of level lvl merges, at each level below lvl, the array the
// element headed into its predecessor array (§6.2's "merge the leaf
// array that y started with its predecessor"), and rebuilds the
// affected leaf node(s).
func (s *External) Delete(key int64) bool {
	if key == Front {
		panic("skiplist: cannot delete the Front sentinel")
	}
	path, found := s.searchPath(key)
	if !found {
		return false
	}
	// The element's level: the highest array in which it appears.
	lvl := 0
	for d := 1; d <= s.height; d++ {
		if path[d].node.elems[path[d].idx] == key {
			lvl = d
		}
	}
	if lvl == 0 {
		s.leafDelete(path, key)
	} else {
		s.mergeDelete(path, key, lvl)
	}
	s.count--
	s.shrinkRoot()
	return true
}

// leafDelete removes a level-0 element in place.
func (s *External) leafDelete(path []pathEntry, key int64) {
	L := path[0].node
	at := path[0].idx
	L.elems = append(L.elems[:at], L.elems[at+1:]...)
	resized := s.arrayDeleteSize(L, s.leafFloor)
	if s.grouped {
		if resized {
			s.rebuildBlob(path[1].node)
		} else {
			s.rewriteNode(L)
		}
		return
	}
	if resized {
		s.replaceNode(L)
	} else {
		s.rewriteNode(L)
	}
}

// mergeDelete removes an element of level lvl >= 1: it is removed from
// its level-lvl array, and at every level below, the array it headed is
// merged into its predecessor.
func (s *External) mergeDelete(path []pathEntry, key int64, lvl int) {
	A := path[lvl].node
	j := path[lvl].idx
	// The head of A is promoted above lvl, so key (level exactly lvl)
	// cannot be A's head.
	if j == 0 {
		panic("skiplist: internal: deleting the head of its top array")
	}
	pred := A.children[j-1]
	A.elems = append(A.elems[:j], A.elems[j+1:]...)
	A.children = append(A.children[:j], A.children[j+1:]...)
	resizedA := s.arrayDeleteSize(A, 1)
	if resizedA {
		s.replaceNode(A)
	} else {
		s.rewriteNode(A)
	}

	var merged1 *node // the level-1 array that absorbed key's children
	for d := lvl - 1; d >= 0; d-- {
		K := path[d].node // the array headed by key at level d
		var nextPred *node
		if d > 0 {
			nextPred = pred.children[len(pred.children)-1]
		}
		pred.elems = append(pred.elems, K.elems[1:]...)
		if d > 0 {
			pred.children = append(pred.children, K.children[1:]...)
		}
		pred.next = K.next
		floorP := 1
		if d == 0 {
			floorP = s.leafFloor
		}
		s.arrayResetSize(pred, floorP)
		if d >= 1 || !s.grouped {
			s.replaceNode(pred)
		}
		if d == 1 {
			merged1 = pred
		}
		s.freeNodeStorage(K, d)
		pred = nextPred
	}
	if s.grouped {
		if lvl == 1 {
			// A is the level-1 array that lost a child.
			s.rebuildBlob(A)
		} else {
			s.rebuildBlob(merged1)
		}
	}
}

// shrinkRoot drops empty top levels (root holding only the sentinel).
func (s *External) shrinkRoot() {
	for s.height > 1 && len(s.root.elems) == 1 {
		old := s.root
		s.root = old.children[0]
		s.height--
		s.freeNodeStorage(old, s.height+1)
	}
}

// Range appends all stored keys in [lo, hi] to out, in order: one
// search plus a scan of the leaf level (Theorem 3's
// O((1/ε)·log_B N + k/B) I/Os).
func (s *External) Range(lo, hi int64, out []int64) []int64 {
	if lo > hi {
		return out
	}
	path, _ := s.searchPath(lo)
	L := path[0].node
	idx := path[0].idx
	if L.elems[idx] < lo {
		idx++
	}
	for L != nil {
		s.io.Scan(L.addr, L.slots, false)
		for ; idx < len(L.elems); idx++ {
			v := L.elems[idx]
			if v > hi {
				return out
			}
			if v != Front {
				out = append(out, v)
			}
		}
		L = L.next
		idx = 0
	}
	return out
}

// Keys returns every stored key in order (test helper; charges scans).
func (s *External) Keys() []int64 {
	return s.Range(Front+1, int64(^uint64(0)>>1), nil)
}

// LevelStats describes the arrays at one level, for the experiments on
// array-length distributions (Lemmas 17–20).
type LevelStats struct {
	Level     int
	Arrays    int
	MaxLen    int
	TotalLen  int
	MaxSlots  int
	TotalSlot int
}

// Stats returns per-level array statistics, top level first.
func (s *External) Stats() []LevelStats {
	stats := make([]LevelStats, s.height+1)
	var walk func(n *node, level int)
	walk = func(n *node, level int) {
		st := &stats[level]
		st.Level = level
		st.Arrays++
		if len(n.elems) > st.MaxLen {
			st.MaxLen = len(n.elems)
		}
		st.TotalLen += len(n.elems)
		if n.slots > st.MaxSlots {
			st.MaxSlots = n.slots
		}
		st.TotalSlot += n.slots
		for _, c := range n.children {
			walk(c, level-1)
		}
	}
	walk(s.root, s.height)
	return stats
}

// LeafNodeSizes returns the total physical slots of every leaf node
// (grouped mode) — the quantity Lemma 19 bounds by O(B^{2γ}·log N) whp.
// In folklore mode it returns each leaf array's slots.
func (s *External) LeafNodeSizes() []int {
	var sizes []int
	var walk func(n *node, level int)
	walk = func(n *node, level int) {
		if level == 1 {
			if s.grouped {
				sizes = append(sizes, n.blobSlots)
				return
			}
			for _, c := range n.children {
				sizes = append(sizes, c.slots)
			}
			return
		}
		for _, c := range n.children {
			walk(c, level-1)
		}
	}
	if s.height >= 1 {
		walk(s.root, s.height)
	}
	return sizes
}

// TotalSlots returns the summed physical slots over all arrays at all
// levels — the Θ(N) space bound of Lemma 22.
func (s *External) TotalSlots() int {
	total := 0
	var walk func(n *node, level int)
	walk = func(n *node, level int) {
		total += n.slots
		for _, c := range n.children {
			walk(c, level-1)
		}
	}
	walk(s.root, s.height)
	return total
}

// CheckInvariants validates the structural invariants: heads match
// children, next chains are exact in-order successors, keys are sorted
// and unique, counts agree, and every array's physical size respects
// its sizer window (Invariant 16 at the leaves).
func (s *External) CheckInvariants() error {
	if s.root.elems[0] != Front {
		return fmt.Errorf("skiplist: root head is %d, not Front", s.root.elems[0])
	}
	// Walk each level's next chain via the tree and compare.
	var prevAtLevel [maxLevel + 1]*node
	var walk func(n *node, level int) error
	walk = func(n *node, level int) error {
		if len(n.elems) == 0 {
			return fmt.Errorf("skiplist: empty array at level %d", level)
		}
		for i := 1; i < len(n.elems); i++ {
			if n.elems[i] <= n.elems[i-1] {
				return fmt.Errorf("skiplist: level %d array not strictly sorted: %d after %d",
					level, n.elems[i], n.elems[i-1])
			}
		}
		if level > 0 {
			if len(n.children) != len(n.elems) {
				return fmt.Errorf("skiplist: level %d array has %d elems but %d children",
					level, len(n.elems), len(n.children))
			}
			for i, c := range n.children {
				if c.elems[0] != n.elems[i] {
					return fmt.Errorf("skiplist: child %d head %d != parent elem %d",
						i, c.elems[0], n.elems[i])
				}
			}
		}
		floor := 1
		if level == 0 {
			floor = s.leafFloor
		}
		m := len(n.elems)
		if m < floor {
			m = floor
		}
		if n.slots < m || n.slots > 2*m-1 {
			return fmt.Errorf("skiplist: level %d array with %d elems has %d slots outside [%d, %d]",
				level, len(n.elems), n.slots, m, 2*m-1)
		}
		if p := prevAtLevel[level]; p != nil {
			if p.next != n {
				return fmt.Errorf("skiplist: level %d next chain broken before head %d", level, n.elems[0])
			}
			if p.elems[len(p.elems)-1] >= n.elems[0] {
				return fmt.Errorf("skiplist: level %d arrays out of order across boundary", level)
			}
		}
		prevAtLevel[level] = n
		for _, c := range n.children {
			if err := walk(c, level-1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(s.root, s.height); err != nil {
		return err
	}
	for d := 0; d <= s.height; d++ {
		if prevAtLevel[d] == nil {
			return fmt.Errorf("skiplist: no arrays at level %d", d)
		}
		if prevAtLevel[d].next != nil {
			return fmt.Errorf("skiplist: level %d chain does not terminate", d)
		}
	}
	// Count: leaf elements excluding one Front sentinel.
	total := 0
	var countLeaves func(n *node, level int)
	countLeaves = func(n *node, level int) {
		if level == 0 {
			total += len(n.elems)
			return
		}
		for _, c := range n.children {
			countLeaves(c, level-1)
		}
	}
	countLeaves(s.root, s.height)
	if total-1 != s.count {
		return fmt.Errorf("skiplist: leaf elements %d (incl. sentinel) vs count %d", total, s.count)
	}
	return nil
}
