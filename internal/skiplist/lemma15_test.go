package skiplist

import (
	"math"
	"testing"

	"repro/internal/iomodel"
)

// TestLemma15Count measures the quantified half of Lemma 15: in a
// folklore B-skip list there exist Ω(√(NB)) elements whose search cost
// is Ω(log(N/B)) I/Os. We count, over all keys, how many cold-cache
// searches cost at least half the lemma's log(N/B) threshold, and
// require that count to be at least √(NB) — while for the HI variant
// the same count must be dramatically smaller (its whp bound kills the
// tail).
func TestLemma15Count(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	const n = 1 << 15
	const B = 16

	countExpensive := func(cfg Config, thresh float64) int {
		tr := iomodel.New(B, 8)
		s := MustExternal(cfg, 53, tr)
		for i := 1; i <= n; i++ {
			s.Insert(int64(i))
		}
		count := 0
		for k := 1; k <= n; k++ {
			tr.Reset()
			s.Contains(int64(k))
			if float64(tr.IOs()) >= thresh {
				count++
			}
		}
		return count
	}

	// Calibrate "expensive" as strictly beyond anything the HI variant
	// does: its Theorem 3 whp bound pins its worst search near log_B N
	// (measured max 11 I/Os here), so thresh = hiMax + 1 separates the
	// regimes. Lemma 15 then predicts the folklore variant still has
	// Ω(√(NB)) searches above it; we require √(NB)/16 to leave room for
	// the lemma's constants at this scale (measured: 93 ≳ 45).
	maxCost := func(cfg Config) float64 {
		tr := iomodel.New(B, 8)
		s := MustExternal(cfg, 53, tr)
		for i := 1; i <= n; i++ {
			s.Insert(int64(i))
		}
		worst := uint64(0)
		for k := 1; k <= n; k++ {
			tr.Reset()
			s.Contains(int64(k))
			if tr.IOs() > worst {
				worst = tr.IOs()
			}
		}
		return float64(worst)
	}
	hiCfg := Config{B: B, Epsilon: 1.0 / 3.0}
	flCfg := Config{B: B, Folklore: true}
	thresh := maxCost(hiCfg) + 1

	folklore := countExpensive(flCfg, thresh)
	want := math.Sqrt(float64(n)*float64(B)) / 16
	if float64(folklore) < want {
		t.Errorf("folklore: only %d searches cost >= %.0f I/Os; Lemma 15 predicts Ω(sqrt(NB)) ≈ %.0f (with 1/16 slack)",
			folklore, thresh, want)
	}
	if hi := countExpensive(hiCfg, thresh); hi != 0 {
		t.Errorf("HI variant has %d searches above its own measured max — impossible", hi)
	}
}
