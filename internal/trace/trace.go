// Package trace is the stack's request-tracing kit: fixed-size spans
// recorded into a lock-free per-node ring buffer, sampled at a
// configurable rate with tail-based always-keep for slow or failed
// requests, and served as JSON from the -debug-addr mux.
//
// The same two constraints that shape package obs apply here, harder:
//
//   - Hot-path cost. Recording a span is one atomic slot claim and a
//     struct copy — no locks, no allocation. A nil *Store is valid
//     everywhere and every method on it is a no-op, so the disabled
//     path costs one nil check.
//
//   - Forensic cleanliness. A trace is, by definition, a record of an
//     operation — exactly the thing this database erases from its
//     persistent state (ARCHITECTURE.md, "where history independence
//     could be lost", entry 13). Span is therefore a fixed-size struct
//     with no payload-capable field by construction: it can carry
//     timings, sizes, shard indices, opcodes, and error codes — never
//     a key, value, or tenant name — and the store is bounded volatile
//     memory only, never written to disk or the manifest.
package trace

import (
	cryptorand "crypto/rand"
	"encoding/binary"
	"sync/atomic"

	"repro/internal/obs"
)

// Kind tells what a span measures. Kinds are append-only; the table in
// docs/OBSERVABILITY.md mirrors this list.
type Kind uint8

const (
	// KindClient is the client-side root span of one request: send to
	// matched reply, including queue and transport time.
	KindClient Kind = iota + 1
	// KindDial is one client dial attempt (initial or background redial).
	KindDial
	// KindFailover is one client pool failover probe sweep.
	KindFailover
	// KindServer is the server-side root span of one request: frame
	// receipt to reply encode.
	KindServer
	// KindDecode is the server decode phase (frame receipt to dispatch).
	KindDecode
	// KindWait is the coalesce-wait phase (dispatch to batch formation;
	// zero for inline reads).
	KindWait
	// KindApply is the store-apply phase.
	KindApply
	// KindEncode is the reply-encode phase.
	KindEncode
	// KindFlush is the outbound-buffer flush that carried the reply.
	KindFlush
	// KindBatch is one coalescer drain; In holds the batch size.
	KindBatch
	// KindEraseBarrier is the DROPNS drop+checkpoint erasure barrier.
	KindEraseBarrier
	// KindCheckpoint is one durable checkpoint commit; Link holds the
	// first 8 bytes of the committed manifest's SHA-256.
	KindCheckpoint
	// KindSweep is the expired-entry sweep inside a checkpoint.
	KindSweep
	// KindSyncRound is one replica anti-entropy round; Link holds the
	// first 8 bytes of the primary's manifest SHA-256, correlating the
	// round to the primary-side checkpoint span that committed it.
	KindSyncRound
	// KindInstall is the replica's checkpoint install inside a round.
	KindInstall
)

var kindNames = [...]string{
	KindClient:       "client",
	KindDial:         "dial",
	KindFailover:     "failover",
	KindServer:       "server",
	KindDecode:       "decode",
	KindWait:         "coalesce_wait",
	KindApply:        "apply",
	KindEncode:       "encode",
	KindFlush:        "flush",
	KindBatch:        "batch",
	KindEraseBarrier: "erase_barrier",
	KindCheckpoint:   "checkpoint",
	KindSweep:        "sweep",
	KindSyncRound:    "sync_round",
	KindInstall:      "install",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return "unknown"
}

// Span is one timed event in a trace. It is a fixed-size struct with no
// pointer, string, or slice field BY CONSTRUCTION — the type cannot
// carry key, value, or tenant-name bytes, mirroring obs.SlowOp. The
// forensic test greps the store's entire JSON output for needle
// encodings to hold the line.
type Span struct {
	Trace  uint64 // trace id; 0 is never minted
	ID     uint64 // span id, unique within the node
	Parent uint64 // parent span id; 0 for a root span
	Link   uint64 // correlation tag: first 8 bytes of a manifest SHA-256, else 0
	Start  int64  // wall-clock start, unix nanoseconds
	Dur    int64  // duration, nanoseconds
	Kind   Kind
	Op     byte  // protocol opcode, 0 when not an op span
	Err    byte  // protocol error code, 0 on success
	Shard  int32 // shard index, -1 when not applicable / deliberately withheld
	In     int32 // request payload bytes (batch size for KindBatch)
	Out    int32 // reply payload bytes
}

// slot is one ring-buffer cell guarded by a per-slot sequence: even =
// stable, odd = claimed. Writers AND readers take a cell by one CAS
// (even -> odd), touch the span only while holding it, and release by
// storing the advanced even value — so the span memory is never
// accessed concurrently and no reader can observe a torn span. A
// failed claim never blocks: a writer drops the span (counted), a
// reader skips the cell.
type slot struct {
	seq  atomic.Uint64
	span Span
}

// Store is a lock-free bounded ring of recently recorded spans. The
// zero Store is not usable; a nil *Store is valid everywhere and makes
// every method a cheap no-op, so instrumented code records
// unconditionally ("is tracing enabled" is one nil check).
type Store struct {
	slots []slot
	mask  uint64
	next  atomic.Uint64 // next ring position to claim
	ids   atomic.Uint64 // id-mint counter
	seed  uint64        // per-store id-mint offset
	every uint64        // head-sample 1-in-every (0: never)
	tick  atomic.Uint64 // head-sample counter

	recorded *obs.Counter
	dropped  *obs.Counter
	sampled  *obs.Counter
}

// NewStore returns a trace store holding up to size spans (rounded up
// to a power of two, minimum 64) and head-sampling requests at
// sampleRate (0: sample nothing — tail-kept slow and failed requests
// still record; 1: sample everything). Counters register on reg (nil:
// unregistered but live).
func NewStore(size int, sampleRate float64, reg *obs.Registry) *Store {
	n := 64
	for n < size {
		n <<= 1
	}
	var every uint64
	switch {
	case sampleRate <= 0:
		every = 0
	case sampleRate >= 1:
		every = 1
	default:
		every = uint64(1/sampleRate + 0.5)
	}
	var sb [8]byte
	cryptorand.Read(sb[:]) //nolint:errcheck // a zero seed only weakens id uniqueness across nodes
	st := &Store{
		slots: make([]slot, n),
		mask:  uint64(n - 1),
		seed:  binary.BigEndian.Uint64(sb[:]),
		every: every,
		recorded: reg.Counter("hidb_trace_spans_total",
			"Spans recorded into the trace ring buffer."),
		dropped: reg.Counter("hidb_trace_spans_dropped_total",
			"Spans dropped on ring-buffer slot contention."),
		sampled: reg.Counter("hidb_trace_sampled_total",
			"Requests chosen by head sampling."),
	}
	return st
}

// splitmix64 is the id-mint mixer: a bijection on uint64, so distinct
// counter values always mint distinct ids.
func splitmix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// NewID mints a fresh nonzero id, usable as a trace id or span id.
// Returns 0 on a nil store (tracing disabled).
func (st *Store) NewID() uint64 {
	if st == nil {
		return 0
	}
	v := splitmix64(st.seed + st.ids.Add(1))
	if v == 0 {
		v = 1
	}
	return v
}

// Sample reports whether the next request should be head-sampled
// (1-in-every). Tail keeping — slow or failed requests — is the
// caller's decision at completion and does not go through Sample.
func (st *Store) Sample() bool {
	if st == nil || st.every == 0 {
		return false
	}
	if st.every == 1 || st.tick.Add(1)%st.every == 0 {
		st.sampled.Inc()
		return true
	}
	return false
}

// Record stores one span. Lock-free and allocation-free: one ring
// position fetch-add, one CAS to claim the cell, a struct copy, one
// release store. If the cell is mid-claim by another writer or a
// reader, the span is dropped (counted) rather than waiting. No-op on
// a nil store.
func (st *Store) Record(sp Span) {
	if st == nil {
		return
	}
	w := st.next.Add(1) - 1
	s := &st.slots[w&st.mask]
	seq := s.seq.Load()
	if seq&1 != 0 || !s.seq.CompareAndSwap(seq, seq+1) {
		st.dropped.Inc()
		return
	}
	s.span = sp
	s.seq.Store(seq + 2)
	st.recorded.Inc()
}

// Snapshot copies every span currently in the ring, oldest position
// first. Cells mid-write are skipped, never torn: the reader claims
// each cell with the same CAS the writers use, so it only touches span
// memory it owns. A concurrent Record aimed at a claimed cell drops
// (counted) — scraping shoulders aside at most a handful of records.
func (st *Store) Snapshot() []Span {
	if st == nil {
		return nil
	}
	out := make([]Span, 0, len(st.slots))
	for i := range st.slots {
		s := &st.slots[i]
		seq := s.seq.Load()
		if seq == 0 || seq&1 != 0 || !s.seq.CompareAndSwap(seq, seq+1) {
			continue // empty, or claimed by a writer/reader right now
		}
		sp := s.span
		s.seq.Store(seq + 2)
		out = append(out, sp)
	}
	return out
}

// ByTrace returns every stored span of one trace.
func (st *Store) ByTrace(tid uint64) []Span {
	if st == nil || tid == 0 {
		return nil
	}
	all := st.Snapshot()
	out := all[:0]
	for _, sp := range all {
		if sp.Trace == tid {
			out = append(out, sp)
		}
	}
	return out
}
