package trace

import (
	"encoding/json"
	"net/http"
	"sort"
	"strconv"
	"time"
)

// jsonSpan is Span rendered for /debug/traces: ids in hex, the kind as
// its symbolic name, durations in nanoseconds. Every field is a number
// or a fixed-alphabet token — the JSON surface cannot carry key,
// value, or tenant-name bytes any more than Span itself can.
type jsonSpan struct {
	Span   string `json:"span"`
	Parent string `json:"parent,omitempty"`
	Kind   string `json:"kind"`
	Op     byte   `json:"op,omitempty"`
	Err    byte   `json:"err,omitempty"`
	Start  int64  `json:"start_unix_ns"`
	DurNS  int64  `json:"dur_ns"`
	Shard  int32  `json:"shard"`
	In     int32  `json:"in,omitempty"`
	Out    int32  `json:"out,omitempty"`
	Link   string `json:"link,omitempty"`
}

type jsonTrace struct {
	Trace string     `json:"trace"`
	Spans []jsonSpan `json:"spans"`
}

type jsonPage struct {
	Traces   []jsonTrace `json:"traces"`
	Recorded uint64      `json:"spans_recorded"`
	Dropped  uint64      `json:"spans_dropped"`
}

func hexID(v uint64) string { return strconv.FormatUint(v, 16) }

// ServeHTTP serves the ring buffer's contents as JSON, grouped into
// traces (most recent first). Query parameters:
//
//	trace=<hex id>   single-trace lookup
//	min_dur=<dur>    only traces whose root/server span is at least this slow (e.g. 10ms)
//	op=<opcode>      only traces touching this opcode (hex 0xNN or decimal)
//	err=1            only traces containing a failed span
//	limit=<n>        at most n traces (default 100)
func (st *Store) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	page := jsonPage{Traces: []jsonTrace{}}
	if st != nil {
		page.Recorded = st.recorded.Value()
		page.Dropped = st.dropped.Value()
		page.Traces = st.collect(r)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "\t")
	enc.Encode(page) //nolint:errcheck // client gone; nothing to do
}

func (st *Store) collect(r *http.Request) []jsonTrace {
	q := r.URL.Query()
	var (
		wantTrace uint64
		minDur    int64
		wantOp    = -1
		wantErr   = q.Get("err") == "1"
		limit     = 100
	)
	if s := q.Get("trace"); s != "" {
		wantTrace, _ = strconv.ParseUint(s, 16, 64)
	}
	if s := q.Get("min_dur"); s != "" {
		if d, err := time.ParseDuration(s); err == nil {
			minDur = int64(d)
		}
	}
	if s := q.Get("op"); s != "" {
		if v, err := strconv.ParseUint(s, 0, 8); err == nil {
			wantOp = int(v)
		}
	}
	if s := q.Get("limit"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			limit = v
		}
	}

	spans := st.Snapshot()
	byTrace := map[uint64][]Span{}
	for _, sp := range spans {
		if wantTrace != 0 && sp.Trace != wantTrace {
			continue
		}
		byTrace[sp.Trace] = append(byTrace[sp.Trace], sp)
	}
	type scored struct {
		tid    uint64
		newest int64
		spans  []Span
	}
	var traces []scored
	for tid, sps := range byTrace {
		match := wantOp < 0 && !wantErr && minDur == 0
		var newest int64
		for _, sp := range sps {
			if sp.Start > newest {
				newest = sp.Start
			}
			opOK := wantOp < 0 || int(sp.Op) == wantOp
			errOK := !wantErr || sp.Err != 0
			durOK := minDur == 0 || sp.Dur >= minDur
			if opOK && errOK && durOK {
				match = true
			}
		}
		if match {
			traces = append(traces, scored{tid, newest, sps})
		}
	}
	sort.Slice(traces, func(i, j int) bool { return traces[i].newest > traces[j].newest })
	if len(traces) > limit {
		traces = traces[:limit]
	}
	out := make([]jsonTrace, 0, len(traces))
	for _, t := range traces {
		sort.Slice(t.spans, func(i, j int) bool { return t.spans[i].Start < t.spans[j].Start })
		jt := jsonTrace{Trace: hexID(t.tid), Spans: make([]jsonSpan, 0, len(t.spans))}
		for _, sp := range t.spans {
			js := jsonSpan{
				Span:  hexID(sp.ID),
				Kind:  sp.Kind.String(),
				Op:    sp.Op,
				Err:   sp.Err,
				Start: sp.Start,
				DurNS: sp.Dur,
				Shard: sp.Shard,
				In:    sp.In,
				Out:   sp.Out,
			}
			if sp.Parent != 0 {
				js.Parent = hexID(sp.Parent)
			}
			if sp.Link != 0 {
				js.Link = hexID(sp.Link)
			}
			jt.Spans = append(jt.Spans, js)
		}
		out = append(out, jt)
	}
	return out
}
