package trace

import (
	"encoding/json"
	"net/http/httptest"
	"sync"
	"testing"

	"repro/internal/obs"
)

// TestRingContention hammers one store from many writers while readers
// snapshot concurrently, and proves no span is ever torn: every field
// of a written span is derived from one seed value, so any
// half-written cell a reader could observe would be internally
// inconsistent. Run under -race this also proves the claim/release
// protocol never lets two goroutines touch one cell's span memory at
// once.
func TestRingContention(t *testing.T) {
	st := NewStore(256, 1, obs.NewRegistry())
	const writers = 8
	const perWriter = 5000

	stamp := func(v uint64) Span {
		return Span{
			Trace: v, ID: v + 1, Parent: v + 2, Link: v + 3,
			Start: int64(v + 4), Dur: int64(v + 5),
			Kind: KindServer, Op: byte(v), Err: byte(v >> 8),
			Shard: int32(v % 97), In: int32(v % 89), Out: int32(v % 83),
		}
	}
	check := func(sp Span) {
		v := sp.Trace
		want := stamp(v)
		if sp != want {
			t.Errorf("torn span: got %+v, want %+v", sp, want)
		}
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, sp := range st.Snapshot() {
					check(sp)
				}
			}
		}()
	}
	var writeWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		writeWG.Add(1)
		go func(w int) {
			defer writeWG.Done()
			for i := 0; i < perWriter; i++ {
				st.Record(stamp(uint64(w*perWriter + i)))
			}
		}(w)
	}
	writeWG.Wait()
	close(stop)
	wg.Wait()

	for _, sp := range st.Snapshot() {
		check(sp)
	}
	got := st.recorded.Value() + st.dropped.Value()
	if want := uint64(writers * perWriter); got != want {
		t.Errorf("recorded+dropped = %d, want %d (every Record accounted)", got, want)
	}
}

// TestRecordZeroAlloc pins the steady-state hot path: recording a span
// into a live store allocates nothing.
func TestRecordZeroAlloc(t *testing.T) {
	st := NewStore(1024, 0.5, nil)
	sp := Span{Trace: 7, ID: 8, Kind: KindApply, Start: 1, Dur: 2}
	if n := testing.AllocsPerRun(1000, func() {
		st.Record(sp)
		st.Sample()
	}); n != 0 {
		t.Errorf("Record+Sample allocates %v per op, want 0", n)
	}
}

// TestNilStore proves the disabled path: every method on a nil *Store
// is a safe no-op, so instrumented code never branches on "is tracing
// enabled" beyond the nil check inside the method.
func TestNilStore(t *testing.T) {
	var st *Store
	st.Record(Span{Trace: 1})
	if st.Sample() {
		t.Error("nil store sampled")
	}
	if id := st.NewID(); id != 0 {
		t.Errorf("nil store minted id %d", id)
	}
	if sp := st.Snapshot(); sp != nil {
		t.Errorf("nil store snapshot = %v", sp)
	}
	if sp := st.ByTrace(1); sp != nil {
		t.Errorf("nil store ByTrace = %v", sp)
	}
	rec := httptest.NewRecorder()
	st.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces", nil))
	if rec.Code != 200 {
		t.Errorf("nil store handler status %d", rec.Code)
	}
	var page struct {
		Traces []json.RawMessage `json:"traces"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &page); err != nil {
		t.Fatalf("nil store handler emitted invalid JSON: %v", err)
	}
}

// TestSampling checks the 1-in-N head-sample arithmetic and the
// rate<=0 / rate>=1 edges.
func TestSampling(t *testing.T) {
	st := NewStore(64, 0.25, nil)
	hits := 0
	for i := 0; i < 1000; i++ {
		if st.Sample() {
			hits++
		}
	}
	if hits != 250 {
		t.Errorf("rate 0.25: %d/1000 sampled, want 250", hits)
	}
	always := NewStore(64, 1, nil)
	never := NewStore(64, 0, nil)
	for i := 0; i < 10; i++ {
		if !always.Sample() {
			t.Fatal("rate 1 skipped a request")
		}
		if never.Sample() {
			t.Fatal("rate 0 sampled a request")
		}
	}
}

// TestIDsUnique checks the mint is collision-free over a large run and
// never returns 0.
func TestIDsUnique(t *testing.T) {
	st := NewStore(64, 0, nil)
	seen := make(map[uint64]bool, 100000)
	for i := 0; i < 100000; i++ {
		id := st.NewID()
		if id == 0 {
			t.Fatal("minted id 0")
		}
		if seen[id] {
			t.Fatalf("duplicate id %x", id)
		}
		seen[id] = true
	}
}

// TestHandlerFilters exercises /debug/traces: grouping, single-trace
// lookup, min-duration, opcode and error filters, and JSON validity.
func TestHandlerFilters(t *testing.T) {
	st := NewStore(256, 0, nil)
	st.Record(Span{Trace: 0xA, ID: 1, Kind: KindServer, Op: 0x02, Start: 100, Dur: 50, Shard: 3})
	st.Record(Span{Trace: 0xA, ID: 2, Parent: 1, Kind: KindApply, Op: 0x02, Start: 110, Dur: 20, Shard: 3})
	st.Record(Span{Trace: 0xB, ID: 3, Kind: KindServer, Op: 0x01, Start: 200, Dur: 1000000, Err: 7, Shard: -1})

	get := func(url string) []jsonTrace {
		t.Helper()
		rec := httptest.NewRecorder()
		st.ServeHTTP(rec, httptest.NewRequest("GET", url, nil))
		if rec.Code != 200 {
			t.Fatalf("%s: status %d", url, rec.Code)
		}
		var page struct {
			Traces []jsonTrace `json:"traces"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &page); err != nil {
			t.Fatalf("%s: invalid JSON: %v", url, err)
		}
		return page.Traces
	}

	if got := get("/debug/traces"); len(got) != 2 {
		t.Errorf("unfiltered: %d traces, want 2", len(got))
	}
	one := get("/debug/traces?trace=a")
	if len(one) != 1 || one[0].Trace != "a" || len(one[0].Spans) != 2 {
		t.Errorf("trace=a lookup: %+v", one)
	}
	if one[0].Spans[1].Parent != "1" {
		t.Errorf("child span parent = %q, want %q", one[0].Spans[1].Parent, "1")
	}
	if got := get("/debug/traces?err=1"); len(got) != 1 || got[0].Trace != "b" {
		t.Errorf("err=1: %+v", got)
	}
	if got := get("/debug/traces?op=0x01"); len(got) != 1 || got[0].Trace != "b" {
		t.Errorf("op=0x01: %+v", got)
	}
	if got := get("/debug/traces?min_dur=1ms"); len(got) != 1 || got[0].Trace != "b" {
		t.Errorf("min_dur=1ms: %+v", got)
	}
	if got := get("/debug/traces?limit=1"); len(got) != 1 || got[0].Trace != "b" {
		t.Errorf("limit=1 should keep the newest trace: %+v", got)
	}
}

// TestRingWraps proves old spans are overwritten, not leaked: the ring
// never holds more than its capacity.
func TestRingWraps(t *testing.T) {
	st := NewStore(64, 0, nil)
	for i := 0; i < 1000; i++ {
		st.Record(Span{Trace: uint64(i + 1), ID: 1, Kind: KindServer})
	}
	got := st.Snapshot()
	if len(got) > 64 {
		t.Fatalf("ring holds %d spans, capacity 64", len(got))
	}
	for _, sp := range got {
		if sp.Trace <= 1000-64 {
			t.Errorf("stale span %d survived %d records into a 64-slot ring", sp.Trace, 1000)
		}
	}
}
