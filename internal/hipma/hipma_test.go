package hipma

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/iomodel"
	"repro/internal/xrand"
)

func TestMiddleWindow(t *testing.T) {
	cases := []struct{ l, m, wantS0, wantSize int }{
		{0, 5, 0, 0},
		{1, 5, 0, 1},
		{5, 5, 0, 5},
		{6, 5, 0, 5},  // ceil(6/2)-ceil(5/2) = 3-3 = 0
		{10, 4, 3, 4}, // ceil(10/2)-ceil(4/2) = 5-2 = 3
		{11, 4, 4, 4}, // 6-2
		{100, 10, 45, 10},
		{101, 10, 46, 10},
	}
	for _, c := range cases {
		s0, m := middleWindow(c.l, c.m)
		if s0 != c.wantS0 || m != c.wantSize {
			t.Errorf("middleWindow(%d, %d) = (%d, %d), want (%d, %d)",
				c.l, c.m, s0, m, c.wantS0, c.wantSize)
		}
		// Window must fit inside [0, l-1].
		if m > 0 && (s0 < 0 || s0+m > c.l) {
			t.Errorf("middleWindow(%d, %d) window [%d, %d) escapes range",
				c.l, c.m, s0, s0+m)
		}
	}
}

func TestInsertSequentialAndGet(t *testing.T) {
	p := New(1, nil)
	const n = 20000
	for i := 0; i < n; i++ {
		p.InsertAt(i, Item{Key: int64(i)})
		if i%4096 == 0 {
			if err := p.CheckInvariants(); err != nil {
				t.Fatalf("after %d inserts: %v", i, err)
			}
		}
	}
	if p.Len() != n {
		t.Fatalf("len = %d", p.Len())
	}
	for i := 0; i < n; i += 389 {
		if got := p.Get(i).Key; got != int64(i) {
			t.Fatalf("Get(%d) = %d", i, got)
		}
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestInsertFrontAdversarial(t *testing.T) {
	// §1.2's "pouring sand at one end": repeated front inserts are the
	// classic history-revealing pattern; the HI PMA must keep all
	// invariants and stay balanced.
	p := New(2, nil)
	const n = 10000
	for i := 0; i < n; i++ {
		p.InsertAt(0, Item{Key: int64(n - i)})
	}
	for i := 0; i < n; i += 271 {
		if got := p.Get(i).Key; got != int64(i+1) {
			t.Fatalf("Get(%d) = %d, want %d", i, got, i+1)
		}
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteBackAdversarial(t *testing.T) {
	p := New(3, nil)
	const n = 8000
	for i := 0; i < n; i++ {
		p.InsertAt(i, Item{Key: int64(i)})
	}
	for i := n - 1; i >= n/4; i-- {
		p.DeleteAt(i)
		if i%2048 == 0 {
			if err := p.CheckInvariants(); err != nil {
				t.Fatalf("after deleting down to %d: %v", i, err)
			}
		}
	}
	for i := 0; i < n/4; i += 97 {
		if got := p.Get(i).Key; got != int64(i) {
			t.Fatalf("Get(%d) = %d", i, got)
		}
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteAllThenReuse(t *testing.T) {
	p := New(4, nil)
	for round := 0; round < 3; round++ {
		for i := 0; i < 700; i++ {
			p.InsertAt(p.Len(), Item{Key: int64(i)})
		}
		for p.Len() > 0 {
			p.DeleteAt(p.Len() / 2)
		}
		if err := p.CheckInvariants(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
	if p.Len() != 0 {
		t.Fatalf("len = %d", p.Len())
	}
}

func TestOracleRandomOps(t *testing.T) {
	rng := xrand.New(42)
	p := New(99, nil)
	var oracle []int64
	for op := 0; op < 30000; op++ {
		if len(oracle) == 0 || rng.Intn(3) > 0 {
			rank := rng.Intn(len(oracle) + 1)
			key := int64(op)
			p.InsertAt(rank, Item{Key: key})
			oracle = append(oracle, 0)
			copy(oracle[rank+1:], oracle[rank:])
			oracle[rank] = key
		} else {
			rank := rng.Intn(len(oracle))
			p.DeleteAt(rank)
			oracle = append(oracle[:rank], oracle[rank+1:]...)
		}
		if op%5000 == 0 {
			if err := p.CheckInvariants(); err != nil {
				t.Fatalf("op %d: %v", op, err)
			}
		}
	}
	if p.Len() != len(oracle) {
		t.Fatalf("len %d vs oracle %d", p.Len(), len(oracle))
	}
	got := p.Query(0, p.Len()-1, nil)
	for i, v := range got {
		if v.Key != oracle[i] {
			t.Fatalf("rank %d: %d vs oracle %d", i, v, oracle[i])
		}
	}
}

func TestQueryRanges(t *testing.T) {
	p := New(7, nil)
	const n = 5000
	for i := 0; i < n; i++ {
		p.InsertAt(i, Item{Key: int64(3 * i)})
	}
	rng := xrand.New(17)
	for trial := 0; trial < 300; trial++ {
		i := rng.Intn(n)
		j := i + rng.Intn(n-i)
		got := p.Query(i, j, nil)
		if len(got) != j-i+1 {
			t.Fatalf("Query(%d,%d) returned %d elements", i, j, len(got))
		}
		for k, v := range got {
			if v.Key != int64(3*(i+k)) {
				t.Fatalf("Query(%d,%d)[%d] = %d", i, j, k, v)
			}
		}
	}
}

func TestSearchKey(t *testing.T) {
	p := New(11, nil)
	// Insert even keys 0, 2, 4, ..., via the key API.
	const n = 4000
	rng := xrand.New(5)
	perm := make([]int, n)
	rng.Perm(perm)
	for _, k := range perm {
		p.InsertKey(int64(2*k), 0)
	}
	for i := 0; i < n; i += 53 {
		rank, found := p.SearchKey(int64(2 * i))
		if !found || rank != i {
			t.Fatalf("SearchKey(%d) = (%d, %v), want (%d, true)", 2*i, rank, found, i)
		}
		rank, found = p.SearchKey(int64(2*i + 1))
		if found || rank != i+1 {
			t.Fatalf("SearchKey(%d) = (%d, %v), want (%d, false)", 2*i+1, rank, found, i+1)
		}
	}
	// Below the minimum and above the maximum.
	if rank, found := p.SearchKey(-5); found || rank != 0 {
		t.Fatalf("SearchKey(-5) = (%d, %v)", rank, found)
	}
	if rank, found := p.SearchKey(int64(2 * n)); found || rank != n {
		t.Fatalf("SearchKey(max+) = (%d, %v)", rank, found)
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteKey(t *testing.T) {
	p := New(13, nil)
	for i := 0; i < 1000; i++ {
		p.InsertKey(int64(i), 0)
	}
	if !p.DeleteKey(500) {
		t.Fatal("DeleteKey(500) missed")
	}
	if p.DeleteKey(500) {
		t.Fatal("DeleteKey(500) hit twice")
	}
	if _, found := p.SearchKey(500); found {
		t.Fatal("500 still present")
	}
	if p.Len() != 999 {
		t.Fatalf("len = %d", p.Len())
	}
}

func TestSmallModeTransitions(t *testing.T) {
	// Exercise the dynamic-array fallback and its transition into tree
	// mode and back.
	p := New(17, nil)
	for i := 0; i < 600; i++ {
		p.InsertAt(p.Len(), Item{Key: int64(i)})
		if err := p.CheckInvariants(); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	for p.Len() > 3 {
		p.DeleteAt(0)
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	got := p.Query(0, p.Len()-1, nil)
	if len(got) != 3 {
		t.Fatalf("got %d elements", len(got))
	}
}

func TestNhatInvariant(t *testing.T) {
	p := New(19, nil)
	rng := xrand.New(23)
	for op := 0; op < 5000; op++ {
		if p.Len() == 0 || rng.Intn(3) > 0 {
			p.InsertAt(rng.Intn(p.Len()+1), Item{Key: int64(op)})
		} else {
			p.DeleteAt(rng.Intn(p.Len()))
		}
		n := p.Len()
		if n >= 1 && (p.Nhat() < n || p.Nhat() > 2*n-1) {
			t.Fatalf("op %d: Nhat %d outside [%d, %d]", op, p.Nhat(), n, 2*n-1)
		}
	}
}

func TestSpaceOverheadClaim(t *testing.T) {
	// §4.3: "the space overhead ranged from 1.8 to 5 times the number of
	// elements". The theory bound is N_S = 2^h·⌈C_L log N̂⌉ ≤ (2C_L+1)·N̂
	// ≤ 10N with the default C_L = 2 (§3.3), because both the rounding of
	// h and N̂ ∈ [N, 2N) contribute a factor; we enforce that hard bound
	// here and report the empirically observed band in EXPERIMENTS.md.
	p := New(29, nil)
	for i := 0; i < 200000; i++ {
		p.InsertAt(p.Len(), Item{Key: int64(i)})
		if i >= 4096 && i%10000 == 0 {
			ratio := float64(p.SlotCount()) / float64(p.Len())
			if ratio < 1.0 || ratio > 2*p.cfg.CL*2+1 {
				t.Fatalf("n=%d: space ratio %.2f outside theory bound", p.Len(), ratio)
			}
		}
	}
}

func TestMovesScalingLog2(t *testing.T) {
	// Theorem 1: amortized O(log² N) moves whp. Compare amortized moves
	// at two scales against the log² envelope.
	perOp := func(n int, seed uint64) float64 {
		p := New(seed, nil)
		rng := xrand.New(seed + 1)
		for i := 0; i < n; i++ {
			p.InsertAt(rng.Intn(p.Len()+1), Item{Key: int64(i)})
		}
		return float64(p.Moves()) / float64(n)
	}
	small := perOp(4000, 1)
	large := perOp(128000, 2)
	l2 := func(n float64) float64 { x := math.Log2(n); return x * x }
	if large/small > 4*l2(128000)/l2(4000) {
		t.Fatalf("moves scaling too steep: %.1f at 4k vs %.1f at 128k", small, large)
	}
}

// TestBalanceUniformity is the in-suite version of the §4.3 experiment:
// after sequential inserts, balance elements must sit uniformly within
// their candidate windows. We pool the offsets of all ranges with a
// fixed window size across many trials and chi-square them.
func TestBalanceUniformity(t *testing.T) {
	const trials = 300
	const wantWindow = 8
	counts := make([]int, wantWindow)
	total := 0
	for trial := 0; trial < trials; trial++ {
		p := New(uint64(trial)+1000, nil)
		for i := 0; i < 3000; i++ {
			p.InsertAt(p.Len(), Item{Key: int64(i)})
		}
		for _, o := range p.BalancePositions(2) {
			if o.Window == wantWindow {
				counts[o.Offset]++
				total++
			}
		}
	}
	if total < 500 {
		t.Fatalf("too few observations (%d) with window %d — adjust test", total, wantWindow)
	}
	expected := float64(total) / float64(wantWindow)
	chi2 := 0.0
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	// 7 dof, 99.9th percentile ~ 24.3.
	if chi2 > 24.3 {
		t.Fatalf("balance offsets not uniform: chi2 = %.2f, counts = %v", chi2, counts)
	}
}

// TestWHIDistribution verifies Definition 4 statistically: two very
// different operation sequences reaching the same logical state must
// produce the same distribution of memory representations. History A
// inserts 0..n-1 in order; history B inserts n..2n-1 in reverse, then
// deletes them, then inserts 0..n-1 front-first. We compare the
// distributions of (a) N̂ and (b) per-slot occupancy marginals.
func TestWHIDistribution(t *testing.T) {
	const n = 300
	const trials = 4000

	histA := func(seed uint64) *PMA {
		p := New(seed, nil)
		for i := 0; i < n; i++ {
			p.InsertAt(i, Item{Key: int64(i)})
		}
		return p
	}
	histB := func(seed uint64) *PMA {
		p := New(seed, nil)
		for i := 0; i < n; i++ {
			p.InsertAt(0, Item{Key: int64(n + i)})
		}
		for i := 0; i < n; i++ {
			p.DeleteAt(p.Len() - 1)
		}
		for i := n - 1; i >= 0; i-- {
			p.InsertAt(0, Item{Key: int64(i)})
		}
		return p
	}

	nhatA := make(map[int]int)
	nhatB := make(map[int]int)
	for trial := 0; trial < trials; trial++ {
		a := histA(uint64(trial)*2 + 1)
		b := histB(uint64(trial)*2 + 2)
		nhatA[a.Nhat()]++
		nhatB[b.Nhat()]++
	}
	// N̂ must be uniform in {n..2n-1} under BOTH histories. Chi-square
	// each against uniform (coarse binning: 10 buckets).
	for name, counts := range map[string]map[int]int{"A": nhatA, "B": nhatB} {
		buckets := make([]int, 10)
		for v, c := range counts {
			if v < n || v > 2*n-1 {
				t.Fatalf("history %s: Nhat %d outside [n, 2n-1]", name, v)
			}
			buckets[(v-n)*10/n] += c
		}
		expected := float64(trials) / 10
		chi2 := 0.0
		for _, c := range buckets {
			d := float64(c) - expected
			chi2 += d * d / expected
		}
		// 9 dof, 99.9th percentile ~ 27.9.
		if chi2 > 27.9 {
			t.Errorf("history %s: Nhat not uniform, chi2 = %.1f, buckets = %v", name, chi2, buckets)
		}
	}
}

func TestPanicsOnBadRank(t *testing.T) {
	p := New(1, nil)
	p.InsertAt(0, Item{Key: 5})
	for _, f := range []func(){
		func() { p.Get(-1) },
		func() { p.Get(1) },
		func() { p.InsertAt(-1, Item{}) },
		func() { p.InsertAt(2, Item{}) },
		func() { p.DeleteAt(1) },
		func() { p.Query(0, 1, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{C1: 0, CL: 2, MinTreeNhat: 128},
		{C1: 1, CL: 2, MinTreeNhat: 128},
		{C1: 0.5, CL: 1.5, MinTreeNhat: 128},
		{C1: 0.5, CL: 2, MinTreeNhat: 64},
	}
	for i, cfg := range bad {
		if _, err := NewWithConfig(cfg, 1, nil); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestIOAccounting(t *testing.T) {
	tr := iomodel.New(64, 256)
	p := New(31, tr)
	for i := 0; i < 20000; i++ {
		p.InsertAt(p.Len(), Item{Key: int64(i)})
	}
	if tr.IOs() == 0 {
		t.Fatal("no I/Os recorded")
	}
	tr.Reset()
	p.Query(1000, 1063, nil)
	// 64 elements with O(1) gaps at B=64: a handful of blocks plus the
	// descent.
	if tr.IOs() > 60 {
		t.Fatalf("range query of 64 elements cost %d I/Os", tr.IOs())
	}
}

// Property test: arbitrary mixed workloads keep the PMA consistent with
// a reference oracle and all invariants intact.
func TestPropertyMixedWorkloadOracle(t *testing.T) {
	f := func(seed uint64, opsRaw uint16) bool {
		rng := xrand.New(seed)
		ops := int(opsRaw%800) + 100
		p := New(seed+7, nil)
		var oracle []int64
		for i := 0; i < ops; i++ {
			if len(oracle) == 0 || rng.Intn(4) > 0 {
				rank := rng.Intn(len(oracle) + 1)
				key := int64(i)
				p.InsertAt(rank, Item{Key: key})
				oracle = append(oracle, 0)
				copy(oracle[rank+1:], oracle[rank:])
				oracle[rank] = key
			} else {
				rank := rng.Intn(len(oracle))
				p.DeleteAt(rank)
				oracle = append(oracle[:rank], oracle[rank+1:]...)
			}
		}
		if p.Len() != len(oracle) {
			return false
		}
		if p.Len() > 0 {
			got := p.Query(0, p.Len()-1, nil)
			for i, v := range got {
				if v.Key != oracle[i] {
					return false
				}
			}
		}
		return p.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property test: sorted-key workloads keep SearchKey consistent with
// binary search over the oracle.
func TestPropertySearchKeyOracle(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		p := New(seed+13, nil)
		present := make(map[int64]bool)
		for i := 0; i < 400; i++ {
			k := int64(rng.Intn(1000))
			if present[k] {
				p.DeleteKey(k)
				delete(present, k)
			} else {
				p.InsertKey(k, 0)
				present[k] = true
			}
		}
		for k := int64(0); k < 1000; k += 17 {
			_, found := p.SearchKey(k)
			if found != present[k] {
				return false
			}
		}
		return p.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkInsertRandom(b *testing.B) {
	p := New(1, nil)
	rng := xrand.New(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.InsertAt(rng.Intn(p.Len()+1), Item{Key: int64(i)})
	}
}

func BenchmarkInsertSequential(b *testing.B) {
	p := New(1, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.InsertAt(p.Len(), Item{Key: int64(i)})
	}
}

func BenchmarkSearchKey(b *testing.B) {
	p := New(1, nil)
	for i := 0; i < 100000; i++ {
		p.InsertAt(p.Len(), Item{Key: int64(i)})
	}
	rng := xrand.New(3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.SearchKey(int64(rng.Intn(100000)))
	}
}

// TestSpreadIterMatchesSlotOf pins the division-free spread iteration in
// writeLeaf/leafElems to the canonical slotOf formula.
func TestSpreadIterMatchesSlotOf(t *testing.T) {
	p := New(1, nil)
	for _, leafSlots := range []int{4, 7, 16, 33, 34, 61} {
		p.leafSlots = leafSlots
		for n := 1; n <= leafSlots; n++ {
			den := 2 * n
			pos := leafSlots / den
			rem := leafSlots % den
			stepQ := 2 * leafSlots / den
			stepR := 2 * leafSlots % den
			for i := 0; i < n; i++ {
				if want := p.slotOf(i, n); pos != want {
					t.Fatalf("S=%d n=%d t=%d: iter %d, slotOf %d", leafSlots, n, i, pos, want)
				}
				pos += stepQ
				rem += stepR
				if rem >= den {
					pos++
					rem -= den
				}
			}
		}
	}
}

func TestBulkLoad(t *testing.T) {
	items := make([]Item, 50000)
	for i := range items {
		items[i] = Item{Key: int64(i), Val: int64(i * 3)}
	}
	p := BulkLoad(items, 77, nil)
	if p.Len() != len(items) {
		t.Fatalf("len = %d", p.Len())
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(items); i += 997 {
		if got := p.Get(i); got != items[i] {
			t.Fatalf("Get(%d) = %+v", i, got)
		}
	}
	// Nhat invariant after bulk load.
	if p.Nhat() < p.Len() || p.Nhat() > 2*p.Len()-1 {
		t.Fatalf("Nhat %d outside [n, 2n-1]", p.Nhat())
	}
	// Remains operational.
	p.InsertAt(0, Item{Key: -1})
	p.DeleteAt(p.Len() - 1)
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Caller's slice must not alias internal state.
	items[0] = Item{Key: 999999}
	if p.Get(1).Key == 999999 {
		t.Fatal("BulkLoad aliased caller slice")
	}
}

// TestBulkLoadMatchesIncrementalDistribution: a bulk-loaded PMA and an
// incrementally built one with the same contents must have identically
// distributed observables (the WHI property applied to bulk loading).
func TestBulkLoadMatchesIncrementalDistribution(t *testing.T) {
	const n = 300
	const trials = 3000
	nhatBulk := make([]int, 10)
	nhatIncr := make([]int, 10)
	items := make([]Item, n)
	for i := range items {
		items[i] = Item{Key: int64(i)}
	}
	for trial := 0; trial < trials; trial++ {
		b := BulkLoad(items, uint64(trial)*2+1, nil)
		p := New(uint64(trial)*2+2, nil)
		for i := 0; i < n; i++ {
			p.InsertAt(i, items[i])
		}
		nhatBulk[(b.Nhat()-n)*10/n]++
		nhatIncr[(p.Nhat()-n)*10/n]++
	}
	chi2 := 0.0
	for i := range nhatBulk {
		sum := float64(nhatBulk[i] + nhatIncr[i])
		if sum == 0 {
			continue
		}
		d := float64(nhatBulk[i]) - float64(nhatIncr[i])
		chi2 += d * d / sum
	}
	// 9 dof, 99.9th percentile ~ 27.9.
	if chi2 > 27.9 {
		t.Fatalf("bulk vs incremental Nhat distributions differ: chi2 = %.1f", chi2)
	}
}

func TestAscend(t *testing.T) {
	p := New(5, nil)
	const n = 5000
	for i := 0; i < n; i++ {
		p.InsertAt(i, Item{Key: int64(i), Val: int64(i * 2)})
	}
	count := 0
	p.Ascend(func(rank int, it Item) bool {
		if rank != count || it.Key != int64(rank) || it.Val != int64(rank*2) {
			t.Fatalf("Ascend rank %d got (%d, %+v)", count, rank, it)
		}
		count++
		return true
	})
	if count != n {
		t.Fatalf("visited %d", count)
	}
	// Early stop.
	count = 0
	p.Ascend(func(rank int, it Item) bool {
		count++
		return count < 100
	})
	if count != 100 {
		t.Fatalf("early stop visited %d", count)
	}
}
