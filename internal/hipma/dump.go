package hipma

import (
	"fmt"
	"io"
	"strings"
)

// Dump renders the PMA's range decomposition in the style of the
// paper's Figure 1: one row per tree depth showing how the elements
// split into ranges, with each range's candidate window hatched (~) and
// its balance element framed ([k]); the bottom rows show the physical
// array with occupied (#) and empty (.) slots.
//
// Intended for small PMAs (a few hundred elements); rows are truncated
// at width columns (0 means no limit).
func (p *PMA) Dump(w io.Writer, width int) {
	fmt.Fprintf(w, "HI PMA: n=%d Nhat=%d h=%d leafSlots=%d slots=%d\n",
		p.n, p.nhat, p.h, p.leafSlots, len(p.slots))
	for depth := 0; depth < p.h; depth++ {
		var sb strings.Builder
		fmt.Fprintf(&sb, "d=%-2d ", depth)
		first := 1 << uint(depth)
		for bfs := first; bfs < 2*first; bfs++ {
			p.dumpRange(&sb, bfs, depth)
			sb.WriteString("| ")
		}
		line := sb.String()
		if width > 0 && len(line) > width {
			line = line[:width-3] + "..."
		}
		fmt.Fprintln(w, line)
	}
	// Physical array row.
	occ := p.Occupancy()
	var sb strings.Builder
	sb.WriteString("array")
	for i, o := range occ {
		if i%p.leafSlots == 0 {
			sb.WriteByte('|')
		}
		if o {
			sb.WriteByte('#')
		} else {
			sb.WriteByte('.')
		}
	}
	sb.WriteByte('|')
	line := sb.String()
	if width > 0 && len(line) > width {
		line = line[:width-3] + "..."
	}
	fmt.Fprintln(w, line)
}

// dumpRange renders one range's elements, hatching the candidate window
// and framing the balance element.
func (p *PMA) dumpRange(sb *strings.Builder, bfs, depth int) {
	l := int(p.ranks.Get(bfs))
	if l == 0 {
		sb.WriteString("- ")
		return
	}
	rho := int(p.ranks.Get(2 * bfs))
	s0, m := middleWindow(l, p.cand[depth])
	elems := p.collectRange(bfs, depth, nil)
	for i, it := range elems {
		inWindow := i >= s0 && i < s0+m
		switch {
		case i == rho:
			fmt.Fprintf(sb, "[%d] ", it.Key)
		case inWindow:
			fmt.Fprintf(sb, "~%d~ ", it.Key)
		default:
			fmt.Fprintf(sb, "%d ", it.Key)
		}
	}
}
