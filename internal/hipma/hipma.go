// Package hipma implements the paper's primary contribution (§3, Theorem
// 1): a weakly history-independent packed-memory array. The PMA keeps N
// elements in a Θ(N)-slot array in user order with O(1) gaps, supporting
// rank-based inserts, deletes and range queries in O(log² N) amortized
// element moves with high probability — while guaranteeing that the
// entire memory representation (including unused slots) is a function of
// only the logical state and fresh randomness, never of the operation
// history (Definition 4, Lemma 9).
//
// Structure (§3.3): the array is a complete binary tree of ranges of
// height h = ⌈log N̂ − log log N̂⌉, where N̂ is the WHI dynamic-array size
// parameter, uniform in {N..2N−1} (§2.1, [36]). Leaf ranges hold
// ⌈C_L·log N̂⌉ slots. Every non-leaf range R splits its elements around a
// balance element b_R — the first element of R's right half — chosen
// uniformly from R's candidate set M_R, the ⌈c₁·N̂·2^{−d}/log N̂⌉ middle
// elements of R. Balance elements are maintained by reservoir sampling
// with deletes (§3.2); when one changes, the whole range is rebuilt
// (§3.4). Per-range element counts live in a rank tree stored in van
// Emde Boas layout (§3.5), and a parallel, identically-shaped tree of
// balance-element keys supports search by value, which is exactly the
// augmentation that turns this PMA into the history-independent
// cache-oblivious B-tree of §5 (Theorem 2).
package hipma

import (
	"fmt"
	"math"

	"repro/internal/hialloc"
	"repro/internal/iomodel"
	"repro/internal/veb"
	"repro/internal/xrand"
)

// noKey is the balance-key sentinel for ranges whose right half is
// empty; search descends left past it.
const noKey = math.MaxInt64

// Config holds the PMA's tunable constants (§3.3).
type Config struct {
	// C1 is the candidate-set fraction c₁ ∈ (0, 1): larger values mean
	// larger candidate sets, hence fewer rebuilds but more space. The
	// paper requires c₁ < 1 − 6/log N̂; the implementation clamps per-N̂.
	C1 float64
	// CL is the leaf-size constant C_L ≥ 1 + c₁ + 6/log N̂: leaves hold
	// ⌈C_L·log N̂⌉ slots.
	CL float64
	// MinTreeNhat is the N̂ below which the structure degenerates to a
	// single evenly-spread leaf (the WHI dynamic array), per footnote 5:
	// for small N̂ no valid c₁ exists.
	MinTreeNhat int
}

// DefaultConfig returns the paper's suggested constants c₁ = 1/2,
// C_L = 2 (§3.3), with the small-N̂ fallback at 128.
func DefaultConfig() Config {
	return Config{C1: 0.5, CL: 2, MinTreeNhat: 128}
}

func (c Config) validate() error {
	if !(0 < c.C1 && c.C1 < 1) {
		return fmt.Errorf("hipma: C1 %v must be in (0, 1)", c.C1)
	}
	if c.CL < 2 {
		return fmt.Errorf("hipma: CL %v must be >= 2", c.CL)
	}
	if c.MinTreeNhat < 128 {
		return fmt.Errorf("hipma: MinTreeNhat %d must be >= 128", c.MinTreeNhat)
	}
	return nil
}

// Item is the element type stored in the PMA: a key plus an opaque
// payload. The cache-oblivious B-tree (§5) is this same structure used
// as a key-value dictionary; carrying the payload inside the array keeps
// the whole memory representation history independent.
type Item struct {
	Key int64
	Val int64
}

// PMA is a weakly history-independent packed-memory array of Items.
// Keys must be inserted in positions consistent with their sorted order
// for SearchKey to be meaningful; the rank-based API itself supports any
// user-specified order, as in the paper.
type PMA struct {
	cfg Config
	rng *xrand.Source
	io  *iomodel.Tracker

	sizer *hialloc.Sizer // maintains N̂ uniform in {N..2N-1}

	// Geometry, fixed between full rebuilds (all derived from N̂).
	nhat      int
	h         int   // tree height: ranges at depths 0..h; leaves at h
	leafSlots int   // slots per leaf range
	cand      []int // candidate-set size m_d per depth d in [0, h)

	slots []Item    // the array: NS = 2^h * leafSlots slots
	ranks *veb.Tree // per-range element counts, vEB layout
	keys  *veb.Tree // per-range balance-element keys, vEB layout (§5)

	n int // elements stored

	// Cost counters.
	moves        uint64 // element slot-writes (Figure 2's measure)
	rebuilds     uint64 // partial range rebuilds (lottery + out-of-bounds)
	fullRebuilds uint64 // whole-structure rebuilds (N̂ resamples)

	scratch []Item // reusable collection buffer
}

// New returns an empty history-independent PMA with default constants.
// The seed determines all of the structure's randomness; io may be nil.
func New(seed uint64, io *iomodel.Tracker) *PMA {
	p, err := NewWithConfig(DefaultConfig(), seed, io)
	if err != nil {
		panic(err) // defaults always valid
	}
	return p
}

// NewWithConfig returns an empty PMA with the given constants.
func NewWithConfig(cfg Config, seed uint64, io *iomodel.Tracker) (*PMA, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	p := &PMA{cfg: cfg, rng: xrand.New(seed), io: io}
	p.sizer = hialloc.NewSizer(0, p.rng.Split())
	p.install(nil)
	return p, nil
}

// BulkLoad builds a PMA holding items (in the given order) in O(N)
// time — one install with a fresh N̂ and fresh balance elements, which
// is trivially history independent: the result is distributed exactly
// like a PMA that reached the same contents by any operation sequence.
func BulkLoad(items []Item, seed uint64, io *iomodel.Tracker) *PMA {
	p, err := BulkLoadWithConfig(DefaultConfig(), items, seed, io)
	if err != nil {
		panic(err) // defaults always valid
	}
	return p
}

// BulkLoadWithConfig is BulkLoad with custom constants.
func BulkLoadWithConfig(cfg Config, items []Item, seed uint64, io *iomodel.Tracker) (*PMA, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	p := &PMA{cfg: cfg, rng: xrand.New(seed), io: io}
	p.sizer = hialloc.NewSizer(len(items), p.rng.Split())
	// install reads the contents while writing fresh slots, so hand it
	// a private copy (callers may retain and mutate items).
	elems := make([]Item, len(items))
	copy(elems, items)
	p.install(elems)
	return p, nil
}

// Len returns the number of elements stored.
func (p *PMA) Len() int { return p.n }

// Config returns the constants the PMA was built (or loaded) with.
func (p *PMA) Config() Config { return p.cfg }

// Nhat returns the current size parameter N̂ (uniform in {N..2N−1}).
func (p *PMA) Nhat() int { return p.nhat }

// SlotCount returns the physical array size N_S.
func (p *PMA) SlotCount() int { return len(p.slots) }

// Height returns the range-tree height h.
func (p *PMA) Height() int { return p.h }

// Moves returns the cumulative element slot-writes — the cost measure
// the paper plots in Figure 2.
func (p *PMA) Moves() uint64 { return p.moves }

// Rebuilds returns the number of partial range rebuilds performed.
func (p *PMA) Rebuilds() uint64 { return p.rebuilds }

// FullRebuilds returns the number of whole-structure rebuilds.
func (p *PMA) FullRebuilds() uint64 { return p.fullRebuilds }

// geometry computes the derived parameters for a given N̂.
func (p *PMA) geometry(nhat int) (h, leafSlots int, cand []int) {
	if nhat < p.cfg.MinTreeNhat {
		// Dynamic-array fallback (footnote 5): a single evenly-spread
		// leaf of 2·N̂ slots.
		ls := 2 * nhat
		if ls < 4 {
			ls = 4
		}
		return 0, ls, nil
	}
	logN := math.Log2(float64(nhat))
	h = int(math.Ceil(logN - math.Log2(logN)))
	if h < 1 {
		h = 1
	}
	leafSlots = int(math.Ceil(p.cfg.CL * logN))
	// Effective c₁ must satisfy c₁ < 1 − 6/log N̂ (Lemma 8) and
	// C_L ≥ 1 + c₁ + 6/log N̂ (Lemma 7); clamp with a safety factor.
	c1 := p.cfg.C1
	if lim := 0.8 * (1 - 6/logN); c1 > lim {
		c1 = lim
	}
	if lim := 0.9 * (p.cfg.CL - 1 - 6/logN); c1 > lim {
		c1 = lim
	}
	cand = make([]int, h)
	for d := 0; d < h; d++ {
		m := int(math.Ceil(c1 * float64(nhat) / (float64(int64(1)<<uint(d)) * logN)))
		if m < 1 {
			m = 1
		}
		cand[d] = m
	}
	return h, leafSlots, cand
}

// install rebuilds the entire structure around the sizer's current N̂,
// laying out elems (the full logical contents, in order).
func (p *PMA) install(elems []Item) {
	p.nhat = p.sizer.Size()
	p.h, p.leafSlots, p.cand = p.geometry(p.nhat)
	ns := (1 << uint(p.h)) * p.leafSlots
	p.slots = make([]Item, ns)
	layout := veb.NewLayout(p.h + 1)
	p.ranks = veb.NewTree(layout, int64(ns), p.io)
	p.keys = veb.NewTree(layout, int64(ns)+int64(layout.NumNodes()), p.io)
	p.n = len(elems)
	p.rebuildRange(1, 0, elems, -1)
}

// middleWindow returns the 0-based start and effective size of the
// candidate window for a range holding l elements with nominal
// candidate-set size m: the min(m, l) middle elements (§3.3).
func middleWindow(l, m int) (start, size int) {
	if l <= m {
		return 0, l
	}
	return (l+1)/2 - (m+1)/2, m
}

// rebuildRange recursively lays out elems into the subtree rooted at the
// given BFS node (at the given depth), re-sampling every descendant
// balance element uniformly from its candidate set (§3.4, Lemma 10).
// forcedRho >= 0 pins the top split's balance rank (used when a lottery
// winner is already determined); pass -1 to sample.
func (p *PMA) rebuildRange(bfs, depth int, elems []Item, forcedRho int) {
	p.ranks.Set(bfs, int64(len(elems)))
	if depth == p.h {
		p.writeLeaf(bfs, elems)
		return
	}
	l := len(elems)
	var rho int
	if l == 0 {
		p.keys.Set(bfs, noKey)
	} else {
		s0, m := middleWindow(l, p.cand[depth])
		if forcedRho >= 0 {
			rho = forcedRho
		} else {
			rho = s0 + p.rng.Intn(m)
		}
		if rho < l {
			p.keys.Set(bfs, elems[rho].Key)
		} else {
			p.keys.Set(bfs, noKey)
		}
	}
	p.rebuildRange(2*bfs, depth+1, elems[:rho], -1)
	p.rebuildRange(2*bfs+1, depth+1, elems[rho:], -1)
}

// slotOf returns the canonical in-leaf slot of element t among n: the
// midpoint spread ⌊(2t+1)·S/(2n)⌋, which centres elements in equal
// sub-intervals so gaps never pile up at leaf boundaries. Slots are
// strictly increasing in t whenever n <= S (Lemma 7 guarantees that).
func (p *PMA) slotOf(t, n int) int {
	return (2*t + 1) * p.leafSlots / (2 * n)
}

// writeLeaf clears the leaf's slots and spreads elems evenly by the
// canonical midpoint rule. The canonical spread (plus zeroed gaps) is
// what makes the leaf layout a pure function of its contents (Lemma 9).
//
// The spread positions ⌊(2t+1)·S/(2n)⌋ are generated incrementally
// (quotient/remainder stepping) to keep this hot path division-free;
// TestSpreadIterMatchesSlotOf pins the equivalence to slotOf.
func (p *PMA) writeLeaf(leafBFS int, elems []Item) {
	base := p.leafBase(leafBFS)
	if len(elems) > p.leafSlots {
		panic(fmt.Sprintf("hipma: leaf overflow: %d elements, %d slots", len(elems), p.leafSlots))
	}
	for i := base; i < base+p.leafSlots; i++ {
		p.slots[i] = Item{}
	}
	n := len(elems)
	if n > 0 {
		den := 2 * n
		pos := p.leafSlots / den // slotOf(0, n)
		rem := p.leafSlots % den // remainder carried forward
		stepQ := 2 * p.leafSlots / den
		stepR := 2 * p.leafSlots % den
		for _, v := range elems {
			p.slots[base+pos] = v
			pos += stepQ
			rem += stepR
			if rem >= den {
				pos++
				rem -= den
			}
		}
	}
	p.moves += uint64(n)
	p.io.Scan(int64(base), p.leafSlots, true)
}

// leafBase returns the slot index of the first slot of a leaf range.
func (p *PMA) leafBase(leafBFS int) int {
	return (leafBFS - (1 << uint(p.h))) * p.leafSlots
}

// leafElems appends the elements of the given leaf to out, in order,
// using the same division-free spread iteration as writeLeaf.
func (p *PMA) leafElems(leafBFS int, out []Item) []Item {
	n := int(p.ranks.Get(leafBFS))
	base := p.leafBase(leafBFS)
	p.io.Scan(int64(base), p.leafSlots, false)
	if n == 0 {
		return out
	}
	den := 2 * n
	pos := p.leafSlots / den
	rem := p.leafSlots % den
	stepQ := 2 * p.leafSlots / den
	stepR := 2 * p.leafSlots % den
	for t := 0; t < n; t++ {
		out = append(out, p.slots[base+pos])
		pos += stepQ
		rem += stepR
		if rem >= den {
			pos++
			rem -= den
		}
	}
	return out
}

// collectRange appends the elements of the subtree rooted at bfs (at the
// given depth) to out, in order, by scanning its leaf descendants.
func (p *PMA) collectRange(bfs, depth int, out []Item) []Item {
	span := 1 << uint(p.h-depth)
	first := bfs << uint(p.h-depth)
	for leaf := first; leaf < first+span; leaf++ {
		out = p.leafElems(leaf, out)
	}
	return out
}
