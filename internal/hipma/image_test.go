package hipma

import (
	"bytes"
	"testing"

	"repro/internal/xrand"
)

func buildRandomPMA(t *testing.T, seed uint64, ops int) *PMA {
	t.Helper()
	p := New(seed, nil)
	rng := xrand.New(seed + 1)
	for i := 0; i < ops; i++ {
		if p.Len() == 0 || rng.Intn(4) > 0 {
			p.InsertAt(rng.Intn(p.Len()+1), Item{Key: int64(i), Val: int64(i * 2)})
		} else {
			p.DeleteAt(rng.Intn(p.Len()))
		}
	}
	return p
}

func TestImageRoundTrip(t *testing.T) {
	for _, ops := range []int{0, 1, 50, 5000} {
		p := buildRandomPMA(t, 11, ops)
		var buf bytes.Buffer
		wrote, err := p.WriteTo(&buf)
		if err != nil {
			t.Fatalf("ops=%d: WriteTo: %v", ops, err)
		}
		if wrote != int64(buf.Len()) {
			t.Fatalf("ops=%d: WriteTo reported %d bytes, wrote %d", ops, wrote, buf.Len())
		}
		q, err := ReadImage(bytes.NewReader(buf.Bytes()), 999, nil)
		if err != nil {
			t.Fatalf("ops=%d: ReadImage: %v", ops, err)
		}
		if q.Len() != p.Len() || q.Nhat() != p.Nhat() || q.SlotCount() != p.SlotCount() {
			t.Fatalf("ops=%d: shape mismatch after round trip", ops)
		}
		if p.Len() > 0 {
			a := p.Query(0, p.Len()-1, nil)
			b := q.Query(0, q.Len()-1, nil)
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("ops=%d: element %d differs: %+v vs %+v", ops, i, a[i], b[i])
				}
			}
		}
		if err := q.CheckInvariants(); err != nil {
			t.Fatalf("ops=%d: loaded PMA: %v", ops, err)
		}
	}
}

// TestImageIsCanonical: the image is a pure function of the memory
// representation — writing, loading, and writing again yields the
// identical byte stream.
func TestImageIsCanonical(t *testing.T) {
	p := buildRandomPMA(t, 13, 3000)
	var img1 bytes.Buffer
	if _, err := p.WriteTo(&img1); err != nil {
		t.Fatal(err)
	}
	q, err := ReadImage(bytes.NewReader(img1.Bytes()), 12345, nil)
	if err != nil {
		t.Fatal(err)
	}
	var img2 bytes.Buffer
	if _, err := q.WriteTo(&img2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(img1.Bytes(), img2.Bytes()) {
		t.Fatal("image changed across load/store: representation not canonical")
	}
}

// TestLoadedPMARemainsOperational: a loaded PMA supports further
// updates and keeps all invariants.
func TestLoadedPMARemainsOperational(t *testing.T) {
	p := buildRandomPMA(t, 17, 2000)
	var buf bytes.Buffer
	if _, err := p.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	q, err := ReadImage(&buf, 777, nil)
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(21)
	for i := 0; i < 3000; i++ {
		if q.Len() == 0 || rng.Intn(3) > 0 {
			q.InsertAt(rng.Intn(q.Len()+1), Item{Key: int64(i)})
		} else {
			q.DeleteAt(rng.Intn(q.Len()))
		}
	}
	if err := q.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestImageRejectsCorruption(t *testing.T) {
	p := buildRandomPMA(t, 19, 800)
	var buf bytes.Buffer
	if _, err := p.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	// Truncated image.
	if _, err := ReadImage(bytes.NewReader(good[:len(good)/2]), 1, nil); err == nil {
		t.Error("truncated image accepted")
	}
	// Bad magic.
	bad := append([]byte(nil), good...)
	bad[0] ^= 0xFF
	if _, err := ReadImage(bytes.NewReader(bad), 1, nil); err == nil {
		t.Error("bad magic accepted")
	}
	// Flipped payload byte: checksum must catch it.
	bad = append([]byte(nil), good...)
	bad[len(bad)/2] ^= 0x01
	if _, err := ReadImage(bytes.NewReader(bad), 1, nil); err == nil {
		t.Error("corrupted payload accepted")
	}
	// Flipped checksum byte.
	bad = append([]byte(nil), good...)
	bad[len(bad)-1] ^= 0x01
	if _, err := ReadImage(bytes.NewReader(bad), 1, nil); err == nil {
		t.Error("corrupted checksum accepted")
	}
	// Nhat outside [n, 2n-1] (offset 8 magic + 3*8 config = 32; n at 32,
	// nhat at 40).
	bad = append([]byte(nil), good...)
	bad[40] = 0x01
	bad[41] = 0x00
	if _, err := ReadImage(bytes.NewReader(bad), 1, nil); err == nil {
		t.Error("implausible Nhat accepted")
	}
}

func TestImageEmptyPMA(t *testing.T) {
	p := New(23, nil)
	var buf bytes.Buffer
	if _, err := p.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	q, err := ReadImage(&buf, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if q.Len() != 0 {
		t.Fatalf("len = %d", q.Len())
	}
	q.InsertAt(0, Item{Key: 1})
	if q.Len() != 1 {
		t.Fatal("insert after empty load failed")
	}
}
