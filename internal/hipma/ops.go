package hipma

import "fmt"

// InsertAt inserts key as the element of rank `rank` (§3's Insert(i,x)).
// It panics unless 0 <= rank <= Len().
//
// The operation first advances the WHI size parameter N̂; if N̂ was
// resampled, the whole structure is rebuilt (this is what keeps the
// array size history-independent). Otherwise it descends the tree of
// ranges, maintaining every balance element by reservoir sampling with
// deletes (§3.2, §3.4): a range is rebuilt when its balance element
// slides out of its candidate window (an out-of-bounds rebuild) or when
// the element entering the window wins the 1/|M_R| lottery (a lottery
// rebuild). If no rebuild triggers, only the destination leaf is
// rewritten.
func (p *PMA) InsertAt(rank int, it Item) {
	if rank < 0 || rank > p.n {
		panic(fmt.Sprintf("hipma: InsertAt(%d) out of range, n=%d", rank, p.n))
	}
	if _, resized := p.sizer.Insert(); resized {
		p.fullRebuilds++
		elems := p.collectAll()
		elems = append(elems, Item{})
		copy(elems[rank+1:], elems[rank:])
		elems[rank] = it
		p.install(elems)
		return
	}
	p.n++
	bfs, depth, iL := 1, 0, rank
	for depth < p.h {
		l := int(p.ranks.Get(bfs))
		rho := int(p.ranks.Get(2 * bfs)) // balance rank within R = |R1|
		m := p.cand[depth]
		s0b, mb := middleWindow(l, m)
		s0a, ma := middleWindow(l+1, m)

		newRho := rho
		if iL <= rho {
			newRho++
		}
		// Out-of-bounds: the balance element left the candidate window.
		if newRho < s0a || newRho > s0a+ma-1 {
			p.rebuildWithInsert(bfs, depth, iL, it, -1)
			return
		}
		// Lottery: did an element enter the window, and did it win?
		if entrant, ok := insertEntrant(iL, s0b, mb, s0a, ma); ok {
			if p.rng.Intn(ma) == 0 {
				p.rebuildWithInsert(bfs, depth, iL, it, entrant)
				return
			}
		}
		// No rebuild at this range: count it and descend.
		p.ranks.Add(bfs, 1)
		if iL <= rho {
			bfs = 2 * bfs
		} else {
			bfs = 2*bfs + 1
			iL -= rho
		}
		depth++
	}
	p.leafInsert(bfs, iL, it)
}

// DeleteAt removes the element of the given rank (§3's Delete(i)). It
// panics if the rank is out of range.
func (p *PMA) DeleteAt(rank int) {
	if rank < 0 || rank >= p.n {
		panic(fmt.Sprintf("hipma: DeleteAt(%d) out of range, n=%d", rank, p.n))
	}
	if _, resized := p.sizer.Delete(); resized {
		p.fullRebuilds++
		elems := p.collectAll()
		elems = append(elems[:rank], elems[rank+1:]...)
		p.install(elems)
		return
	}
	p.n--
	bfs, depth, iL := 1, 0, rank
	for depth < p.h {
		l := int(p.ranks.Get(bfs))
		rho := int(p.ranks.Get(2 * bfs))
		m := p.cand[depth]
		s0b, mb := middleWindow(l, m)
		s0a, ma := middleWindow(l-1, m)

		// Lottery: deleting the balance element itself forces a uniform
		// re-selection (§3.2's delete case), i.e. a rebuild.
		if iL == rho {
			p.rebuildWithDelete(bfs, depth, iL)
			return
		}
		newRho := rho
		if iL < rho {
			newRho--
		}
		// Out-of-bounds: the balance slid out of the shifted window.
		if ma > 0 && (newRho < s0a || newRho > s0a+ma-1) {
			p.rebuildWithDelete(bfs, depth, iL)
			return
		}
		// Lottery: an element pulled into the window may win.
		if entrant, ok := deleteEntrant(iL, s0b, mb, s0a, ma); ok {
			if p.rng.Intn(ma) == 0 {
				p.rebuildWithDeleteForced(bfs, depth, iL, entrant)
				return
			}
		}
		p.ranks.Add(bfs, -1)
		if iL < rho {
			bfs = 2 * bfs
		} else {
			bfs = 2*bfs + 1
			iL -= rho
		}
		depth++
	}
	p.leafDelete(bfs, iL)
}

// insertEntrant determines whether inserting at local rank iL brings an
// element into the candidate window, and if so returns its rank in the
// post-insert numbering. Windows: old [s0b, s0b+mb-1] over l elements,
// new [s0a, s0a+ma-1] over l+1. At most one element can enter (the
// window has fixed size and shifts by at most one).
func insertEntrant(iL, s0b, mb, s0a, ma int) (entrant int, ok bool) {
	if ma > mb {
		// Window grew (l < m): the window is the whole range, so the
		// inserted element itself joins — the plain reservoir case.
		return iL, true
	}
	if ma == 0 {
		return 0, false
	}
	// The inserted element enters if it lands inside the new window.
	if iL >= s0a && iL <= s0a+ma-1 {
		return iL, true
	}
	// Otherwise an old element may enter at either boundary. identity()
	// maps a post-insert rank to its pre-insert rank (-1 for the new
	// element, handled above).
	identity := func(rp int) int {
		if rp > iL {
			return rp - 1
		}
		return rp
	}
	for _, rp := range []int{s0a, s0a + ma - 1} {
		id := identity(rp)
		if id < s0b || id > s0b+mb-1 {
			return rp, true
		}
	}
	return 0, false
}

// deleteEntrant is the analogue for deletions: deleting local rank iL
// (not the balance) may pull a boundary element into the window. The
// returned rank is in the post-delete numbering.
func deleteEntrant(iL, s0b, mb, s0a, ma int) (entrant int, ok bool) {
	if ma < mb || ma == 0 {
		// Window shrank (l <= m): pure reservoir deletion, no entrant.
		return 0, false
	}
	identity := func(rp int) int {
		if rp >= iL {
			return rp + 1
		}
		return rp
	}
	for _, rp := range []int{s0a, s0a + ma - 1} {
		id := identity(rp)
		if id < s0b || id > s0b+mb-1 {
			return rp, true
		}
	}
	return 0, false
}

// rebuildWithInsert rebuilds the range at bfs/depth with key spliced in
// at local rank iL. forcedRho >= 0 pins the new balance rank (lottery
// winner); -1 samples uniformly from the candidate window (out-of-bounds
// rebuilds and all descendant ranges).
func (p *PMA) rebuildWithInsert(bfs, depth, iL int, it Item, forcedRho int) {
	p.rebuilds++
	elems := p.collectRange(bfs, depth, p.scratch[:0])
	elems = append(elems, Item{})
	copy(elems[iL+1:], elems[iL:])
	elems[iL] = it
	p.rebuildRange(bfs, depth, elems, forcedRho)
	p.scratch = elems[:0]
}

// rebuildWithDelete rebuilds the range at bfs/depth with the element at
// local rank iL removed, re-sampling the balance uniformly.
func (p *PMA) rebuildWithDelete(bfs, depth, iL int) {
	p.rebuildWithDeleteForced(bfs, depth, iL, -1)
}

func (p *PMA) rebuildWithDeleteForced(bfs, depth, iL, forcedRho int) {
	p.rebuilds++
	elems := p.collectRange(bfs, depth, p.scratch[:0])
	elems = append(elems[:iL], elems[iL+1:]...)
	p.rebuildRange(bfs, depth, elems, forcedRho)
	p.scratch = elems[:0]
}

// leafInsert splices key into the leaf at local rank iL and re-spreads.
func (p *PMA) leafInsert(leafBFS, iL int, it Item) {
	elems := p.leafElems(leafBFS, p.scratch[:0])
	elems = append(elems, Item{})
	copy(elems[iL+1:], elems[iL:])
	elems[iL] = it
	p.ranks.Set(leafBFS, int64(len(elems)))
	p.writeLeaf(leafBFS, elems)
	p.scratch = elems[:0]
}

// leafDelete removes the element at local rank iL and re-spreads.
func (p *PMA) leafDelete(leafBFS, iL int) {
	elems := p.leafElems(leafBFS, p.scratch[:0])
	elems = append(elems[:iL], elems[iL+1:]...)
	p.ranks.Set(leafBFS, int64(len(elems)))
	p.writeLeaf(leafBFS, elems)
	p.scratch = elems[:0]
}

// collectAll returns all elements in order (used by full rebuilds).
func (p *PMA) collectAll() []Item {
	out := make([]Item, 0, p.n+1)
	return p.collectRange(1, 0, out)
}
