package hipma

import "fmt"

// Get returns the element of the given rank (0-based). It panics if the
// rank is out of range.
func (p *PMA) Get(rank int) Item {
	if rank < 0 || rank >= p.n {
		panic(fmt.Sprintf("hipma: rank %d out of range [0, %d)", rank, p.n))
	}
	bfs, iL := p.descendToLeaf(rank)
	n := int(p.ranks.Get(bfs))
	base := p.leafBase(bfs)
	idx := base + p.slotOf(iL, n)
	p.io.Read(int64(idx))
	return p.slots[idx]
}

// descendToLeaf returns the leaf BFS index containing the given rank and
// the rank local to that leaf.
func (p *PMA) descendToLeaf(rank int) (leafBFS, local int) {
	bfs, iL := 1, rank
	for depth := 0; depth < p.h; depth++ {
		rho := int(p.ranks.Get(2 * bfs))
		if iL < rho {
			bfs = 2 * bfs
		} else {
			bfs = 2*bfs + 1
			iL -= rho
		}
	}
	return bfs, iL
}

// Query appends the elements with ranks i through j inclusive to out and
// returns it (§3's Query(i,j)). Given the starting leaf, the scan costs
// O(1 + k/B) I/Os because consecutive elements are separated by O(1)
// gaps (Lemma 8). It panics unless 0 <= i <= j < Len().
func (p *PMA) Query(i, j int, out []Item) []Item {
	if i < 0 || j < i || j >= p.n {
		panic(fmt.Sprintf("hipma: Query(%d, %d) out of range, n=%d", i, j, p.n))
	}
	bfs, local := p.descendToLeaf(i)
	remaining := j - i + 1
	for remaining > 0 {
		n := int(p.ranks.Get(bfs))
		base := p.leafBase(bfs)
		p.io.Scan(int64(base), p.leafSlots, false)
		for t := local; t < n && remaining > 0; t++ {
			out = append(out, p.slots[base+p.slotOf(t, n)])
			remaining--
		}
		local = 0
		bfs++
	}
	return out
}

// SearchKey returns the rank of the first element >= key and whether an
// exact match exists, by descending the balance-key tree (§5): this is
// the cache-oblivious B-tree search, O(log_B N) I/Os in vEB layout.
// The structure must have been populated in sorted key order.
func (p *PMA) SearchKey(key int64) (rank int, found bool) {
	bfs, first := 1, 0
	for depth := 0; depth < p.h; depth++ {
		bk := p.keys.Get(bfs)
		rho := int(p.ranks.Get(2 * bfs))
		if key < bk || bk == noKey {
			bfs = 2 * bfs
		} else {
			bfs = 2*bfs + 1
			first += rho
		}
	}
	// Scan the leaf for the first element >= key.
	n := int(p.ranks.Get(bfs))
	base := p.leafBase(bfs)
	p.io.Scan(int64(base), p.leafSlots, false)
	for t := 0; t < n; t++ {
		v := p.slots[base+p.slotOf(t, n)].Key
		if v >= key {
			return first + t, v == key
		}
	}
	// Key is larger than everything in this leaf; its rank is just past
	// the leaf's last element.
	return first + n, false
}

// UpdateAt overwrites the payload of the element at the given rank in
// place. The slot layout is untouched, so history independence is
// unaffected. It panics if the rank is out of range.
func (p *PMA) UpdateAt(rank int, val int64) {
	if rank < 0 || rank >= p.n {
		panic(fmt.Sprintf("hipma: rank %d out of range [0, %d)", rank, p.n))
	}
	bfs, iL := p.descendToLeaf(rank)
	n := int(p.ranks.Get(bfs))
	idx := p.leafBase(bfs) + p.slotOf(iL, n)
	p.io.Write(int64(idx))
	p.slots[idx].Val = val
}

// Find returns the rank at which key should be inserted to keep the
// array sorted (the rank of the first element >= key).
func (p *PMA) Find(key int64) int {
	rank, _ := p.SearchKey(key)
	return rank
}

// InsertKey inserts a key-value pair in sorted key position (duplicate
// keys allowed).
func (p *PMA) InsertKey(key, val int64) {
	p.InsertAt(p.Find(key), Item{Key: key, Val: val})
}

// DeleteKey removes one occurrence of key and reports whether it was
// present.
func (p *PMA) DeleteKey(key int64) bool {
	rank, found := p.SearchKey(key)
	if !found {
		return false
	}
	p.DeleteAt(rank)
	return true
}

// Ascend calls fn on every element in rank order, stopping early if fn
// returns false. It streams leaf by leaf, so it costs O(1 + N/B) I/Os.
func (p *PMA) Ascend(fn func(rank int, it Item) bool) {
	rank := 0
	firstLeaf := 1 << uint(p.h)
	var buf []Item
	for leaf := firstLeaf; leaf < 2*firstLeaf; leaf++ {
		buf = p.leafElems(leaf, buf[:0])
		for _, it := range buf {
			if !fn(rank, it) {
				return
			}
			rank++
		}
	}
}

// Occupancy returns the slot-occupancy bitmap of the physical array —
// the observable an adversary sees (§2's memory representation). Tests
// use it to verify weak history independence statistically.
func (p *PMA) Occupancy() []bool {
	occ := make([]bool, len(p.slots))
	numLeaves := 1 << uint(p.h)
	firstLeaf := numLeaves
	for leaf := firstLeaf; leaf < firstLeaf+numLeaves; leaf++ {
		n := int(p.ranks.Get(leaf))
		base := p.leafBase(leaf)
		for t := 0; t < n; t++ {
			occ[base+p.slotOf(t, n)] = true
		}
	}
	return occ
}

// BalanceObs reports one range's balance-element position for the §4.3
// uniformity experiment: the balance's offset within its candidate
// window, and the window size.
type BalanceObs struct {
	Depth      int
	RangeIndex int // left-to-right index of the range at its depth
	Offset     int // balance position within the window, in [0, Window)
	Window     int // effective candidate-window size
}

// BalancePositions returns the balance observation for every non-leaf
// range whose effective candidate window has size >= minWindow —
// the data the paper feeds its χ² uniformity test (§4.3).
func (p *PMA) BalancePositions(minWindow int) []BalanceObs {
	var obs []BalanceObs
	var walk func(bfs, depth int)
	walk = func(bfs, depth int) {
		if depth >= p.h {
			return
		}
		l := int(p.ranks.Get(bfs))
		if l > 0 {
			rho := int(p.ranks.Get(2 * bfs))
			s0, m := middleWindow(l, p.cand[depth])
			if m >= minWindow {
				obs = append(obs, BalanceObs{
					Depth:      depth,
					RangeIndex: bfs - (1 << uint(depth)),
					Offset:     rho - s0,
					Window:     m,
				})
			}
		}
		walk(2*bfs, depth+1)
		walk(2*bfs+1, depth+1)
	}
	walk(1, 0)
	return obs
}

// CheckInvariants verifies the structure's internal consistency: rank
// tree sums, leaf capacities (Lemma 7), balance elements inside their
// candidate windows (Invariant 6), balance keys matching the first
// element of each right half, and the O(1)-gap bound (Lemma 8, only
// meaningful in tree mode). Tests call it after randomized workloads.
func (p *PMA) CheckInvariants() error {
	// Rank tree consistency: every internal node equals the sum of its
	// children, and the root equals n.
	if got := int(p.ranks.Get(1)); got != p.n {
		return fmt.Errorf("hipma: root count %d != n %d", got, p.n)
	}
	var walk func(bfs, depth, first int) error
	walk = func(bfs, depth, first int) error {
		l := int(p.ranks.Get(bfs))
		if depth == p.h {
			if l > p.leafSlots {
				return fmt.Errorf("hipma: leaf %d holds %d > %d slots (Lemma 7 violated)", bfs, l, p.leafSlots)
			}
			return nil
		}
		left := int(p.ranks.Get(2 * bfs))
		right := int(p.ranks.Get(2*bfs + 1))
		if left+right != l {
			return fmt.Errorf("hipma: node %d count %d != %d + %d", bfs, l, left, right)
		}
		if l > 0 {
			s0, m := middleWindow(l, p.cand[depth])
			if left < s0 || left > s0+m-1 {
				return fmt.Errorf("hipma: node %d balance rank %d outside window [%d, %d] (Invariant 6)",
					bfs, left, s0, s0+m-1)
			}
			// Balance key = first element of the right half.
			if right > 0 {
				wantKey := p.elemAt(2*bfs+1, depth+1, 0).Key
				if got := p.keys.Get(bfs); got != wantKey {
					return fmt.Errorf("hipma: node %d balance key %d != first of right half %d", bfs, got, wantKey)
				}
			}
		} else if p.keys.Get(bfs) != noKey {
			return fmt.Errorf("hipma: empty node %d has non-sentinel key", bfs)
		}
		if err := walk(2*bfs, depth+1, first); err != nil {
			return err
		}
		return walk(2*bfs+1, depth+1, first+left)
	}
	if err := walk(1, 0, 0); err != nil {
		return err
	}
	// Gap bound (Lemma 8). Two checks:
	//  1. Structural: with the midpoint spread, the gap between
	//     consecutive elements is at most S/n_a/2 + S/n_b/2 + max(S/n)
	//     for the leaf counts involved, so maxGap <= 2*S/minLeaf + 2.
	//  2. Asymptotic: once the PMA is large, every leaf holds Ω(log N̂)
	//     elements, making the gap O(1).
	if p.h > 0 && p.n > 0 {
		occ := p.Occupancy()
		maxGap, gap := 0, 0
		seen := false
		for _, o := range occ {
			if o {
				if seen && gap > maxGap {
					maxGap = gap
				}
				gap = 0
				seen = true
			} else if seen {
				gap++
			}
		}
		minLeaf := p.leafSlots
		firstLeaf := 1 << uint(p.h)
		for leaf := firstLeaf; leaf < 2*firstLeaf; leaf++ {
			if c := int(p.ranks.Get(leaf)); c < minLeaf {
				minLeaf = c
			}
		}
		if minLeaf < 1 {
			minLeaf = 1
		}
		if limit := 2*p.leafSlots/minLeaf + 2; maxGap > limit {
			return fmt.Errorf("hipma: gap of %d empty slots exceeds structural bound %d (minLeaf=%d)",
				maxGap, limit, minLeaf)
		}
		if p.n >= 16384 && minLeaf < p.leafSlots/32 {
			return fmt.Errorf("hipma: leaf with only %d of %d slots full at n=%d (Lemma 8)",
				minLeaf, p.leafSlots, p.n)
		}
	}
	return nil
}

// elemAt returns the element at local rank iL of the subtree at
// bfs/depth (used by invariant checking only).
func (p *PMA) elemAt(bfs, depth, iL int) Item {
	for depth < p.h {
		rho := int(p.ranks.Get(2 * bfs))
		if iL < rho {
			bfs = 2 * bfs
		} else {
			bfs = 2*bfs + 1
			iL -= rho
		}
		depth++
	}
	n := int(p.ranks.Get(bfs))
	base := p.leafBase(bfs)
	return p.slots[base+p.slotOf(iL, n)]
}
