package hipma

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"repro/internal/hialloc"
	"repro/internal/iomodel"
	"repro/internal/veb"
	"repro/internal/xrand"
)

// Disk image format. The image is, deliberately, exactly the PMA's
// memory representation — the array (slots and gaps), the rank tree and
// the balance-key tree in their physical van Emde Boas order — because
// history independence is a property of that representation
// (Definition 4): an image of the structure must not carry anything
// the in-memory layout would not. The only extras are the header needed
// to reinterpret the bytes (config, N, N̂) and a checksum.
//
//	magic   [8]byte  "HIPMA\x00v1"
//	c1      float64 bits
//	cl      float64 bits
//	minTree int64
//	n       int64
//	nhat    int64
//	slots   [N_S]{key int64, val int64}
//	ranks   [2^{h+1}-1]int64   (physical vEB order)
//	keys    [2^{h+1}-1]int64   (physical vEB order)
//	crc32   uint32 (IEEE, over everything above)
//
// All integers little-endian. N_S and h are derived from (config, N̂)
// exactly as at run time, so a mismatch is detected structurally.

var imageMagic = [8]byte{'H', 'I', 'P', 'M', 'A', 0, 'v', '1'}

type crcWriter struct {
	w   io.Writer
	crc uint32
	n   int64
}

func (c *crcWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.crc = crc32.Update(c.crc, crc32.IEEETable, p[:n])
	c.n += int64(n)
	return n, err
}

type crcReader struct {
	r   io.Reader
	crc uint32
	n   int64
}

func (c *crcReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.crc = crc32.Update(c.crc, crc32.IEEETable, p[:n])
	c.n += int64(n)
	return n, err
}

// WriteTo serializes the PMA's exact memory representation. It
// implements io.WriterTo.
func (p *PMA) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	cw := &crcWriter{w: bw}

	if _, err := cw.Write(imageMagic[:]); err != nil {
		return cw.n, err
	}
	header := []uint64{
		math.Float64bits(p.cfg.C1),
		math.Float64bits(p.cfg.CL),
		uint64(p.cfg.MinTreeNhat),
		uint64(p.n),
		uint64(p.nhat),
	}
	for _, v := range header {
		if err := binary.Write(cw, binary.LittleEndian, v); err != nil {
			return cw.n, err
		}
	}
	// The array, verbatim: occupied slots and zeroed gaps alike.
	buf := make([]byte, 16)
	for _, it := range p.slots {
		binary.LittleEndian.PutUint64(buf[0:], uint64(it.Key))
		binary.LittleEndian.PutUint64(buf[8:], uint64(it.Val))
		if _, err := cw.Write(buf); err != nil {
			return cw.n, err
		}
	}
	// Both trees in physical (vEB) order: BFS index -> physical slot is
	// the deterministic layout permutation, so dumping physical order
	// preserves the on-disk representation exactly.
	if err := p.writeTreePhysical(cw, p.ranks); err != nil {
		return cw.n, err
	}
	if err := p.writeTreePhysical(cw, p.keys); err != nil {
		return cw.n, err
	}
	crc := cw.crc
	if err := binary.Write(bw, binary.LittleEndian, crc); err != nil {
		return cw.n, err
	}
	return cw.n + 4, bw.Flush()
}

func (p *PMA) writeTreePhysical(w io.Writer, t *veb.Tree) error {
	n := t.Layout().NumNodes()
	// Recover physical order by inverting the BFS->phys permutation.
	phys := make([]int64, n)
	for bfs := 1; bfs <= n; bfs++ {
		phys[t.Layout().Phys(bfs)] = t.Get(bfs)
	}
	buf := make([]byte, 8)
	for _, v := range phys {
		binary.LittleEndian.PutUint64(buf, uint64(v))
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// ReadImage deserializes a PMA image. The seed supplies fresh
// randomness for all future operations — weak history independence is
// preserved because the persisted state's distribution depends only on
// the logical state, and future coins are independent of the past.
// io may be nil. The image's checksum and structural invariants are
// verified before the PMA is returned.
func ReadImage(r io.Reader, seed uint64, io2 *iomodel.Tracker) (*PMA, error) {
	cr := &crcReader{r: bufio.NewReader(r)}

	var magic [8]byte
	if _, err := io.ReadFull(cr, magic[:]); err != nil {
		return nil, fmt.Errorf("hipma: reading magic: %w", err)
	}
	if magic != imageMagic {
		return nil, fmt.Errorf("hipma: bad magic %q", magic[:])
	}
	var raw [5]uint64
	for i := range raw {
		if err := binary.Read(cr, binary.LittleEndian, &raw[i]); err != nil {
			return nil, fmt.Errorf("hipma: reading header: %w", err)
		}
	}
	cfg := Config{
		C1:          math.Float64frombits(raw[0]),
		CL:          math.Float64frombits(raw[1]),
		MinTreeNhat: int(int64(raw[2])),
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	n := int(int64(raw[3]))
	nhat := int(int64(raw[4]))
	if n < 0 {
		return nil, fmt.Errorf("hipma: negative n %d in image", n)
	}
	// A plausibility ceiling keeps the geometry arithmetic below far
	// from overflow on a hostile header; real images are nowhere near.
	if n > 1<<48 {
		return nil, fmt.Errorf("hipma: implausible n %d in image", n)
	}
	switch {
	case n == 0 && nhat != 0, n == 1 && nhat != 1:
		return nil, fmt.Errorf("hipma: Nhat %d invalid for n=%d", nhat, n)
	case n >= 2 && (nhat < n || nhat > 2*n-1):
		return nil, fmt.Errorf("hipma: Nhat %d outside [n, 2n-1] for n=%d", nhat, n)
	}

	p := &PMA{cfg: cfg, rng: xrand.New(seed), io: io2}
	sizer, err := hialloc.RestoreSizer(n, nhat, p.rng.Split())
	if err != nil {
		return nil, err
	}
	p.sizer = sizer
	p.nhat = nhat
	p.h, p.leafSlots, p.cand = p.geometry(nhat)
	ns := (1 << uint(p.h)) * p.leafSlots
	p.n = n

	// The slot array is grown as bytes actually arrive rather than
	// allocated to the header-declared size up front, so a corrupt or
	// truncated image can never cost more memory than its own length
	// (the fuzz targets feed exactly such images).
	const slotChunk = 512
	p.slots = make([]Item, 0, min(ns, slotChunk))
	buf := make([]byte, 16*slotChunk)
	for len(p.slots) < ns {
		c := min(ns-len(p.slots), slotChunk)
		if _, err := io.ReadFull(cr, buf[:16*c]); err != nil {
			return nil, fmt.Errorf("hipma: reading slot %d: %w", len(p.slots), err)
		}
		for j := 0; j < c; j++ {
			p.slots = append(p.slots, Item{
				Key: int64(binary.LittleEndian.Uint64(buf[16*j:])),
				Val: int64(binary.LittleEndian.Uint64(buf[16*j+8:])),
			})
		}
	}
	layout := veb.NewLayout(p.h + 1)
	p.ranks = veb.NewTree(layout, int64(ns), io2)
	p.keys = veb.NewTree(layout, int64(ns)+int64(layout.NumNodes()), io2)
	if err := readTreePhysical(cr, p.ranks); err != nil {
		return nil, err
	}
	if err := readTreePhysical(cr, p.keys); err != nil {
		return nil, err
	}
	wantCRC := cr.crc
	var gotCRC uint32
	if err := binary.Read(cr.r, binary.LittleEndian, &gotCRC); err != nil {
		return nil, fmt.Errorf("hipma: reading checksum: %w", err)
	}
	if gotCRC != wantCRC {
		return nil, fmt.Errorf("hipma: checksum mismatch: image %08x, computed %08x", gotCRC, wantCRC)
	}
	if err := p.CheckInvariants(); err != nil {
		return nil, fmt.Errorf("hipma: corrupt image: %w", err)
	}
	return p, nil
}

func readTreePhysical(r io.Reader, t *veb.Tree) error {
	n := t.Layout().NumNodes()
	phys := make([]int64, n)
	buf := make([]byte, 8)
	for i := range phys {
		if _, err := io.ReadFull(r, buf); err != nil {
			return fmt.Errorf("hipma: reading tree node %d: %w", i, err)
		}
		phys[i] = int64(binary.LittleEndian.Uint64(buf))
	}
	for bfs := 1; bfs <= n; bfs++ {
		t.Set(bfs, phys[t.Layout().Phys(bfs)])
	}
	return nil
}
