package hipma

import (
	"bytes"
	"strings"
	"testing"
)

func TestDumpRendersStructure(t *testing.T) {
	p := New(3, nil)
	for i := 1; i <= 200; i++ {
		p.InsertAt(p.Len(), Item{Key: int64(i)})
	}
	var buf bytes.Buffer
	p.Dump(&buf, 0)
	out := buf.String()
	if !strings.Contains(out, "HI PMA: n=200") {
		t.Fatalf("header missing:\n%s", out)
	}
	// Balance framing and window hatching must appear at some depth.
	if !strings.Contains(out, "[") || !strings.Contains(out, "~") {
		t.Fatalf("no balance/window markers:\n%s", out)
	}
	// The physical array row must show both occupied and empty slots,
	// with one leaf-boundary bar per leaf.
	if !strings.Contains(out, "#") || !strings.Contains(out, ".") {
		t.Fatalf("array row missing occupancy markers:\n%s", out)
	}
	arrayLine := ""
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "array") {
			arrayLine = line
		}
	}
	if got, want := strings.Count(arrayLine, "|"), (1<<uint(p.Height()))+1; got != want {
		t.Fatalf("array row has %d leaf bars, want %d", got, want)
	}
}

func TestDumpTruncation(t *testing.T) {
	p := New(5, nil)
	for i := 1; i <= 300; i++ {
		p.InsertAt(p.Len(), Item{Key: int64(i)})
	}
	var buf bytes.Buffer
	p.Dump(&buf, 60)
	for i, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		if i == 0 {
			continue // header exempt
		}
		if len(line) > 63 {
			t.Fatalf("line %d exceeds width: %q", i, line)
		}
	}
}

func TestDumpSmallMode(t *testing.T) {
	p := New(7, nil)
	for i := 1; i <= 10; i++ {
		p.InsertAt(p.Len(), Item{Key: int64(i)})
	}
	var buf bytes.Buffer
	p.Dump(&buf, 0) // h = 0: no range rows, just header + array
	if !strings.Contains(buf.String(), "h=0") {
		t.Fatalf("small mode dump wrong:\n%s", buf.String())
	}
}
