package proto

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/hipma"
)

// Item re-exports the store element type: a key with an int64 payload.
// Values are fixed 8-byte integers end to end — that is the data model
// of the paper's structures, not a protocol limitation.
type Item = hipma.Item

// Version is the protocol version spoken by this package. Every frame
// carries it; a peer that receives a frame with a version it does not
// speak must reject it with ErrCodeVersion and may close the
// connection.
// Version 2 added the HEALTH/PROMOTE opcodes and stamped every read
// reply with the serving node's checkpoint epoch (bounded staleness).
// Version 3 added the namespace opcodes (NSPUT/NSGET/NSDEL/DROPNS/
// LISTNS), per-namespace SHARDHASH/SYNC addressing, and ErrCodeQuota.
// Version 4 added the optional trace-context extension after the
// request id (a header layout change, hence the bump): extlen(1), then
// — when extlen is TraceExtLen — trace id(8), parent span id(8),
// flags(1). Servers keep speaking version 3 to version-3 clients: a
// reply always carries its request's version.
const Version = 4

// HeaderSize is the fixed frame overhead shared by every version: the
// 4-byte length prefix plus version, opcode, and request id. Version-4
// frames carry at least one more byte (the extension length).
const HeaderSize = 4 + 1 + 1 + 8

// TraceExtLen is the size of a present trace-context extension: trace
// id(8), parent span id(8), flags(1). A version-4 frame's extlen byte
// is either 0 or exactly TraceExtLen.
const TraceExtLen = 8 + 8 + 1

// traceFlagSampled marks a head-sampled request; all other flag bits
// are reserved and must be zero.
const traceFlagSampled byte = 1 << 0

// MaxPayload is the default cap on a frame's payload size. Both sides
// enforce a cap before allocating, so a hostile length prefix cannot
// drive a large allocation. Servers may configure a different cap; this
// is the default and the hard ceiling for the stock client.
const MaxPayload = 1 << 20

// Request opcodes. Replies to an opcode op carry op|FlagReply; error
// replies carry OpError regardless of the request opcode.
const (
	OpGet        byte = 0x01 // payload: key(8) → reply: found(1) val(8) epoch(8)
	OpPut        byte = 0x02 // payload: key(8) val(8) → reply: changed(1)
	OpDel        byte = 0x03 // payload: key(8) → reply: changed(1)
	OpBatch      byte = 0x04 // payload: kind(1) count(4) entries → reply: kind-specific
	OpRange      byte = 0x05 // payload: lo(8) hi(8) max(4) → reply: more(1) epoch(8) count(4) pairs
	OpLen        byte = 0x06 // payload: empty → reply: count(8) epoch(8)
	OpCheckpoint byte = 0x07 // payload: empty → reply: checkpoints(8)
	OpPing       byte = 0x08 // payload: arbitrary → reply: the same bytes

	// Replication opcodes. A replica compares the primary's last
	// committed checkpoint against its own — per-shard canonical content
	// hashes, never an operation log — and ships only divergent shard
	// images. See docs/PROTOCOL.md "Replication".
	OpShardHash byte = 0x09 // payload: empty → reply: hseed(8) count(4) [size(8) hash(32)]…
	OpSync      byte = 0x0A // payload: shard(4) hash(32) offset(8) maxlen(4) → reply: more(1) bytes

	// TTL opcodes. The expiry is an ABSOLUTE epoch in unix seconds
	// (0: never expires), recorded as part of the entry's logical state
	// and echoed back; the server never stores "when the request
	// arrived" — relative TTLs are resolved by the client, so the wire
	// carries only state, never timing. See docs/PROTOCOL.md "Expiry".
	OpPutTTL byte = 0x0B // payload: key(8) val(8) exp(8) → reply: changed(1) exp(8)
	OpGetTTL byte = 0x0C // payload: key(8) → reply: found(1) val(8) exp(8) epoch(8)

	// HA opcodes. HEALTH reports the node's role and checkpoint position
	// (a liveness probe that never queues behind writes); PROMOTE lifts a
	// read replica into a writable primary and returns the node's
	// promotion epoch. Promotion state is wire- and memory-only — it is
	// never persisted, so on-disk state stays a pure function of
	// contents. See docs/PROTOCOL.md "Failover".
	OpHealth  byte = 0x0D // payload: empty → reply: role(1) promotions(8) epoch(8) manifest-hash(32)
	OpPromote byte = 0x0E // payload: empty → reply: promotions(8)

	// Namespace opcodes. Every namespaced payload starts with the tenant
	// name (nslen(2) name); names are 1..MaxNSName bytes, no NUL. DROPNS
	// erases the tenant: the server drops the cell, checkpoints, and
	// sweeps before replying, so a true reply means the tenant's bytes
	// are already gone from the committed directory. LISTNS returns the
	// live tenants in byte-sorted (canonical) order — never creation
	// order. See docs/PROTOCOL.md "Namespaces".
	OpNSPut  byte = 0x0F // payload: nslen(2) ns key(8) val(8) exp(8) → reply: changed(1) exp(8)
	OpNSGet  byte = 0x10 // payload: nslen(2) ns key(8) → reply: found(1) val(8) exp(8) epoch(8)
	OpNSDel  byte = 0x11 // payload: nslen(2) ns key(8) → reply: changed(1)
	OpDropNS byte = 0x12 // payload: nslen(2) ns → reply: existed(1)
	OpListNS byte = 0x13 // payload: empty → reply: quota(8) count(4) [nslen(2) ns keys(8)]…
)

// FlagReply marks a frame as the successful reply to the request opcode
// in its low bits.
const FlagReply byte = 0x80

// OpError is the opcode of an error reply. Its payload is
// code(1) msg(rest); the id names the failed request.
const OpError byte = 0xFF

// Batch kinds, the first payload byte of an OpBatch request.
const (
	BatchPut byte = 0 // entries: key(8) val(8) each → reply: changed(4)
	BatchGet byte = 1 // entries: key(8) each → reply: count(4), found(1) val(8) each
	BatchDel byte = 2 // entries: key(8) each → reply: changed(4)
)

// Error codes carried by OpError replies.
const (
	ErrCodeBadFrame  byte = 1 // malformed frame or payload
	ErrCodeVersion   byte = 2 // unsupported protocol version
	ErrCodeUnknownOp byte = 3 // opcode not in the table
	ErrCodeTooLarge  byte = 4 // frame or batch exceeds the server's limits
	ErrCodeBusy      byte = 5 // connection limit reached; retry later
	ErrCodeShutdown  byte = 6 // server is draining; connection will close
	ErrCodeInternal  byte = 7 // server-side failure (e.g. checkpoint error)
	ErrCodeReadOnly  byte = 8 // server is a read replica; writes go to the primary
	ErrCodeStale     byte = 9 // requested shard image superseded; re-fetch SHARDHASH

	ErrCodeNotReplica byte = 10 // PROMOTE sent to a node that is already writable

	ErrCodeQuota byte = 11 // namespace is at its per-tenant key quota
)

// opNames is the authoritative opcode table; docs/PROTOCOL.md mirrors
// it and TestProtocolDocLockstep keeps the two in sync.
var opNames = map[byte]string{
	OpGet:        "OpGet",
	OpPut:        "OpPut",
	OpDel:        "OpDel",
	OpBatch:      "OpBatch",
	OpRange:      "OpRange",
	OpLen:        "OpLen",
	OpCheckpoint: "OpCheckpoint",
	OpPing:       "OpPing",
	OpShardHash:  "OpShardHash",
	OpSync:       "OpSync",
	OpPutTTL:     "OpPutTTL",
	OpGetTTL:     "OpGetTTL",
	OpHealth:     "OpHealth",
	OpPromote:    "OpPromote",
	OpNSPut:      "OpNSPut",
	OpNSGet:      "OpNSGet",
	OpNSDel:      "OpNSDel",
	OpDropNS:     "OpDropNS",
	OpListNS:     "OpListNS",
	OpError:      "OpError",
}

// errNames is the authoritative error-code table, mirrored by
// docs/PROTOCOL.md under the same lockstep test.
var errNames = map[byte]string{
	ErrCodeBadFrame:   "ErrCodeBadFrame",
	ErrCodeVersion:    "ErrCodeVersion",
	ErrCodeUnknownOp:  "ErrCodeUnknownOp",
	ErrCodeTooLarge:   "ErrCodeTooLarge",
	ErrCodeBusy:       "ErrCodeBusy",
	ErrCodeShutdown:   "ErrCodeShutdown",
	ErrCodeInternal:   "ErrCodeInternal",
	ErrCodeReadOnly:   "ErrCodeReadOnly",
	ErrCodeStale:      "ErrCodeStale",
	ErrCodeNotReplica: "ErrCodeNotReplica",
	ErrCodeQuota:      "ErrCodeQuota",
}

// OpName returns the symbolic name of an opcode ("OpGet"), or a hex
// rendering for opcodes outside the table.
func OpName(op byte) string {
	if n, ok := opNames[op]; ok {
		return n
	}
	return fmt.Sprintf("Op(0x%02x)", op)
}

// ErrCodeName returns the symbolic name of an error code
// ("ErrCodeBusy"), or a hex rendering for codes outside the table.
func ErrCodeName(code byte) string {
	if n, ok := errNames[code]; ok {
		return n
	}
	return fmt.Sprintf("ErrCode(0x%02x)", code)
}

// TraceCtx is the optional version-4 trace-context extension: the
// request's trace id, the sender's span id (the parent of whatever
// span the receiver opens), and the head-sample decision. A zero ID
// means "no context" — frames encode the extension only when ID is
// nonzero, and decoders reject a present extension with a zero id so
// encode∘decode is the identity on bytes. The context carries ids and
// one flag bit only: no payload-capable field, by construction.
type TraceCtx struct {
	ID      uint64 // trace id; 0: no trace context
	Span    uint64 // sender's span id, parent for the receiver's spans
	Sampled bool   // head-sample decision, honored end to end
}

// Frame is one decoded protocol frame.
type Frame struct {
	Ver     byte
	Op      byte
	ID      uint64
	Trace   TraceCtx // version >= 4 only; zero ID means absent
	Payload []byte
}

// ErrFrameTooLarge is returned when a frame's declared length exceeds
// the decoder's payload cap.
var ErrFrameTooLarge = errors.New("proto: frame exceeds payload cap")

// ErrShortFrame is returned by DecodeFrame when b does not yet hold a
// complete frame (more bytes are needed).
var ErrShortFrame = errors.New("proto: incomplete frame")

// AppendFrame appends the encoded frame to dst and returns the extended
// slice. It does not enforce the payload cap; writers construct their
// own payloads and the cap protects readers. Frames with Ver < 4 use
// the version-3 layout: no extension-length byte, and any TraceCtx is
// silently omitted (it cannot be represented on that wire).
func AppendFrame(dst []byte, f Frame) []byte {
	if f.Ver < 4 {
		dst = binary.BigEndian.AppendUint32(dst, uint32(HeaderSize-4+len(f.Payload)))
		dst = append(dst, f.Ver, f.Op)
		dst = binary.BigEndian.AppendUint64(dst, f.ID)
		return append(dst, f.Payload...)
	}
	ext := 0
	if f.Trace.ID != 0 {
		ext = TraceExtLen
	}
	dst = binary.BigEndian.AppendUint32(dst, uint32(HeaderSize-4+1+ext+len(f.Payload)))
	dst = append(dst, f.Ver, f.Op)
	dst = binary.BigEndian.AppendUint64(dst, f.ID)
	dst = append(dst, byte(ext))
	if ext != 0 {
		dst = binary.BigEndian.AppendUint64(dst, f.Trace.ID)
		dst = binary.BigEndian.AppendUint64(dst, f.Trace.Span)
		var flags byte
		if f.Trace.Sampled {
			flags = traceFlagSampled
		}
		dst = append(dst, flags)
	}
	return append(dst, f.Payload...)
}

// decodeTraceExt parses a version-4 frame's extension region from body
// (the bytes after the request id) and returns the trace context and
// the number of bytes it occupied. Rejections are exact so that
// encode∘decode stays the identity: the extension length must be 0 or
// TraceExtLen, a present extension must carry a nonzero trace id, and
// reserved flag bits must be zero.
func decodeTraceExt(body []byte) (TraceCtx, int, error) {
	if len(body) < 1 {
		return TraceCtx{}, 0, fmt.Errorf("proto: version-4 frame missing extension length")
	}
	extlen := int(body[0])
	if extlen == 0 {
		return TraceCtx{}, 1, nil
	}
	if extlen != TraceExtLen {
		return TraceCtx{}, 0, fmt.Errorf("proto: trace extension length %d, want 0 or %d", extlen, TraceExtLen)
	}
	if len(body) < 1+TraceExtLen {
		return TraceCtx{}, 0, fmt.Errorf("proto: frame length too short for trace extension")
	}
	tc := TraceCtx{
		ID:   binary.BigEndian.Uint64(body[1:]),
		Span: binary.BigEndian.Uint64(body[9:]),
	}
	flags := body[17]
	if tc.ID == 0 {
		return TraceCtx{}, 0, fmt.Errorf("proto: trace extension with zero trace id")
	}
	if flags&^traceFlagSampled != 0 {
		return TraceCtx{}, 0, fmt.Errorf("proto: reserved trace flag bits 0x%02x set", flags&^traceFlagSampled)
	}
	tc.Sampled = flags&traceFlagSampled != 0
	return tc, 1 + TraceExtLen, nil
}

// DecodeFrame decodes one frame from the front of b, returning the
// frame and the number of bytes consumed. The returned payload aliases
// b. A frame whose declared payload exceeds maxPayload (<=0 means
// MaxPayload) fails with ErrFrameTooLarge; a prefix of a valid frame
// fails with ErrShortFrame.
func DecodeFrame(b []byte, maxPayload int) (Frame, int, error) {
	if maxPayload <= 0 {
		maxPayload = MaxPayload
	}
	if len(b) < 4 {
		return Frame{}, 0, ErrShortFrame
	}
	n := binary.BigEndian.Uint32(b)
	if n < HeaderSize-4 {
		return Frame{}, 0, fmt.Errorf("proto: frame length %d below header size", n)
	}
	// The length gate admits the version-4 extension overhead; the
	// payload cap is enforced exactly once the version is known.
	if n > uint32(HeaderSize-4+1+TraceExtLen+maxPayload) {
		return Frame{}, 0, fmt.Errorf("%w: %d bytes, cap %d", ErrFrameTooLarge, n, HeaderSize-4+maxPayload)
	}
	if len(b) < 4+int(n) {
		return Frame{}, 0, ErrShortFrame
	}
	f := Frame{
		Ver: b[4],
		Op:  b[5],
		ID:  binary.BigEndian.Uint64(b[6:]),
	}
	body := b[HeaderSize : 4+n]
	if f.Ver >= 4 {
		tc, ext, err := decodeTraceExt(body)
		if err != nil {
			return Frame{}, 0, err
		}
		f.Trace = tc
		body = body[ext:]
	}
	if len(body) > maxPayload {
		return Frame{}, 0, fmt.Errorf("%w: %d payload bytes, cap %d", ErrFrameTooLarge, len(body), maxPayload)
	}
	f.Payload = body
	return f, 4 + int(n), nil
}

// ReadFrame reads exactly one frame from r, allocating at most
// maxPayload bytes for the payload (<=0 means MaxPayload). It never
// over-reads: the length prefix is validated before the body is read.
func ReadFrame(r io.Reader, maxPayload int) (Frame, error) {
	if maxPayload <= 0 {
		maxPayload = MaxPayload
	}
	var hdr [HeaderSize + 1 + TraceExtLen]byte
	if _, err := io.ReadFull(r, hdr[:4]); err != nil {
		return Frame{}, err
	}
	n := binary.BigEndian.Uint32(hdr[:4])
	if n < HeaderSize-4 {
		return Frame{}, fmt.Errorf("proto: frame length %d below header size", n)
	}
	if n > uint32(HeaderSize-4+1+TraceExtLen+maxPayload) {
		return Frame{}, fmt.Errorf("%w: %d bytes, cap %d", ErrFrameTooLarge, n, HeaderSize-4+maxPayload)
	}
	if _, err := io.ReadFull(r, hdr[4:HeaderSize]); err != nil {
		return Frame{}, fmt.Errorf("proto: reading frame header: %w", err)
	}
	f := Frame{
		Ver: hdr[4],
		Op:  hdr[5],
		ID:  binary.BigEndian.Uint64(hdr[6:]),
	}
	body := int(n) - (HeaderSize - 4)
	if f.Ver >= 4 {
		ext, err := readTraceExt(r, hdr[HeaderSize:], body)
		if err != nil {
			return Frame{}, err
		}
		f.Trace, _, err = decodeTraceExt(hdr[HeaderSize : HeaderSize+ext])
		if err != nil {
			return Frame{}, err
		}
		body -= ext
	}
	if body > maxPayload {
		return Frame{}, fmt.Errorf("%w: %d payload bytes, cap %d", ErrFrameTooLarge, body, maxPayload)
	}
	if body > 0 {
		f.Payload = make([]byte, body)
		if _, err := io.ReadFull(r, f.Payload); err != nil {
			return Frame{}, fmt.Errorf("proto: reading frame payload: %w", err)
		}
	}
	return f, nil
}

// readTraceExt reads a version-4 frame's extension region (the extlen
// byte, plus the extension itself when the byte announces one) into
// scratch and returns the number of bytes read. body is the declared
// byte count remaining after the request id.
func readTraceExt(r io.Reader, scratch []byte, body int) (int, error) {
	if body < 1 {
		return 0, fmt.Errorf("proto: version-4 frame missing extension length")
	}
	if _, err := io.ReadFull(r, scratch[:1]); err != nil {
		return 0, fmt.Errorf("proto: reading trace extension length: %w", err)
	}
	extlen := int(scratch[0])
	if extlen == 0 {
		return 1, nil
	}
	if extlen != TraceExtLen {
		return 0, fmt.Errorf("proto: trace extension length %d, want 0 or %d", extlen, TraceExtLen)
	}
	if body < 1+TraceExtLen {
		return 0, fmt.Errorf("proto: frame length too short for trace extension")
	}
	if _, err := io.ReadFull(r, scratch[1:1+TraceExtLen]); err != nil {
		return 0, fmt.Errorf("proto: reading trace extension: %w", err)
	}
	return 1 + TraceExtLen, nil
}

// WriteFrame encodes f and writes it to w in one call.
func WriteFrame(w io.Writer, f Frame) error {
	buf := AppendFrame(make([]byte, 0, HeaderSize+len(f.Payload)), f)
	_, err := w.Write(buf)
	return err
}

// FrameReader decodes a stream of frames into one reusable payload
// buffer, so a long-lived connection's read loop allocates nothing at
// steady state (ReadFrame, by contrast, allocates a fresh payload per
// frame). The buffer grows to the largest payload seen and is retained,
// bounded by the reader's payload cap.
//
// ALIASING CONTRACT: the payload returned by Next aliases the internal
// buffer and is valid only until the next Next call. A caller that
// retains payload bytes past that point (to echo them later, hand them
// to another goroutine, ...) must copy them first. FuzzDecodeFrame and
// TestFrameReaderReuse enforce the decode equivalence and the reuse
// semantics.
type FrameReader struct {
	r          io.Reader
	buf        []byte
	maxPayload int
	// hdr lives in the struct rather than Next's frame so the interface
	// call to io.ReadFull cannot force a per-frame heap allocation. It
	// is sized for the longest fixed region: header plus the version-4
	// extension-length byte and a full trace extension.
	hdr [HeaderSize + 1 + TraceExtLen]byte
}

// NewFrameReader returns a FrameReader over r with the given payload
// cap (<=0 means MaxPayload).
func NewFrameReader(r io.Reader, maxPayload int) *FrameReader {
	if maxPayload <= 0 {
		maxPayload = MaxPayload
	}
	return &FrameReader{r: r, maxPayload: maxPayload}
}

// Next reads and decodes one frame. It never over-reads (the length
// prefix is validated before the body is read) and never allocates
// beyond the payload cap. The returned frame's payload is valid only
// until the next call — see the aliasing contract above.
func (fr *FrameReader) Next() (Frame, error) {
	hdr := fr.hdr[:]
	if _, err := io.ReadFull(fr.r, hdr[:4]); err != nil {
		return Frame{}, err
	}
	n := binary.BigEndian.Uint32(hdr[:4])
	if n < HeaderSize-4 {
		return Frame{}, fmt.Errorf("proto: frame length %d below header size", n)
	}
	if n > uint32(HeaderSize-4+1+TraceExtLen+fr.maxPayload) {
		return Frame{}, fmt.Errorf("%w: %d bytes, cap %d", ErrFrameTooLarge, n, HeaderSize-4+fr.maxPayload)
	}
	if _, err := io.ReadFull(fr.r, hdr[4:HeaderSize]); err != nil {
		return Frame{}, fmt.Errorf("proto: reading frame header: %w", err)
	}
	f := Frame{
		Ver: hdr[4],
		Op:  hdr[5],
		ID:  binary.BigEndian.Uint64(hdr[6:]),
	}
	body := int(n) - (HeaderSize - 4)
	if f.Ver >= 4 {
		ext, err := readTraceExt(fr.r, hdr[HeaderSize:], body)
		if err != nil {
			return Frame{}, err
		}
		f.Trace, _, err = decodeTraceExt(hdr[HeaderSize : HeaderSize+ext])
		if err != nil {
			return Frame{}, err
		}
		body -= ext
	}
	if body > fr.maxPayload {
		return Frame{}, fmt.Errorf("%w: %d payload bytes, cap %d", ErrFrameTooLarge, body, fr.maxPayload)
	}
	if body > 0 {
		if cap(fr.buf) < body {
			fr.buf = make([]byte, body)
		}
		fr.buf = fr.buf[:body]
		if _, err := io.ReadFull(fr.r, fr.buf); err != nil {
			return Frame{}, fmt.Errorf("proto: reading frame payload: %w", err)
		}
		f.Payload = fr.buf
	}
	return f, nil
}
