package proto

// FuzzDecodeFrame mirrors the repo's image-reader fuzz targets
// (FuzzReadPMA, FuzzReadStore): the frame decoder consumes bytes
// straight off a network socket, so hostile input must produce an
// error — never a panic, and never an allocation disproportionate to
// the input. Whatever decodes successfully must re-encode to the exact
// bytes consumed (the codec is bijective on valid frames).

import (
	"bytes"
	"testing"
)

func FuzzDecodeFrame(f *testing.F) {
	// Seed with one valid frame per opcode and payload shape, plus the
	// usual truncation and bit flip of each.
	seeds := []Frame{
		{Ver: Version, Op: OpGet, ID: 1, Payload: AppendKey(nil, 42)},
		{Ver: Version, Op: OpPut, ID: 2, Payload: AppendKeyVal(nil, 1, 2)},
		{Ver: Version, Op: OpDel, ID: 3, Payload: AppendKey(nil, -1)},
		{Ver: Version, Op: OpBatch, ID: 4, Payload: AppendBatchPut(nil, []Item{{Key: 1, Val: 2}, {Key: 3, Val: 4}})},
		{Ver: Version, Op: OpBatch, ID: 5, Payload: AppendBatchKeys(nil, BatchGet, []int64{5, 6, 7})},
		{Ver: Version, Op: OpRange, ID: 6, Payload: AppendRangeReq(nil, -100, 100, 10)},
		{Ver: Version, Op: OpLen, ID: 7},
		{Ver: Version, Op: OpCheckpoint, ID: 8},
		{Ver: Version, Op: OpPing, ID: 9, Payload: []byte("ping")},
		{Ver: Version, Op: OpGet | FlagReply, ID: 1, Payload: AppendFound(nil, true, 42, 7)},
		{Ver: Version, Op: OpLen | FlagReply, ID: 7, Payload: AppendLenReply(nil, 1000, 7)},
		{Ver: Version, Op: OpRange | FlagReply, ID: 6, Payload: AppendRangeReply(nil, []Item{{Key: 1, Val: 2}}, false, 7)},
		{Ver: Version, Op: OpBatch | FlagReply, ID: 5, Payload: AppendBatchGetReply(nil, []int64{1}, []bool{true}, 7)},
		{Ver: Version, Op: OpError, ID: 2, Payload: AppendError(nil, ErrCodeBadFrame, "boom")},
		{Ver: Version, Op: OpShardHash, ID: 10},
		{Ver: Version, Op: OpShardHash | FlagReply, ID: 10,
			Payload: AppendShardHashes(nil, 0xfeed, []ShardHash{{Size: 64, Hash: [32]byte{1, 2}}, {Size: 0}})},
		{Ver: Version, Op: OpSync, ID: 11, Payload: AppendSyncReq(nil, 3, [32]byte{9}, 128, 4096)},
		{Ver: Version, Op: OpSync | FlagReply, ID: 11, Payload: AppendSyncChunk(nil, true, []byte("img"))},
		{Ver: Version, Op: OpPutTTL, ID: 12, Payload: AppendKeyValExp(nil, 7, 70, 1_900_000_000)},
		{Ver: Version, Op: OpPutTTL | FlagReply, ID: 12, Payload: AppendTTLAck(nil, true, 1_900_000_000)},
		{Ver: Version, Op: OpGetTTL, ID: 13, Payload: AppendKey(nil, 7)},
		{Ver: Version, Op: OpGetTTL | FlagReply, ID: 13, Payload: AppendFoundTTL(nil, true, 70, 1_900_000_000, 7)},
		{Ver: Version, Op: OpHealth, ID: 14},
		{Ver: Version, Op: OpHealth | FlagReply, ID: 14,
			Payload: AppendHealth(nil, Health{ReadOnly: true, Promotions: 1, Epoch: 9, Hash: [32]byte{3, 1}})},
		{Ver: Version, Op: OpPromote, ID: 15},
		{Ver: Version, Op: OpPromote | FlagReply, ID: 15, Payload: AppendU64(nil, 1)},
		{Ver: Version, Op: OpError, ID: 15, Payload: AppendError(nil, ErrCodeNotReplica, "already primary")},
		{Ver: Version, Op: OpNSPut, ID: 16, Payload: AppendNSKeyValExp(nil, "acme", 7, 70, 1_900_000_000)},
		{Ver: Version, Op: OpNSPut | FlagReply, ID: 16, Payload: AppendTTLAck(nil, true, 1_900_000_000)},
		{Ver: Version, Op: OpNSGet, ID: 17, Payload: AppendNSKey(nil, "acme", 7)},
		{Ver: Version, Op: OpNSGet | FlagReply, ID: 17, Payload: AppendFoundTTL(nil, true, 70, 0, 7)},
		{Ver: Version, Op: OpNSDel, ID: 18, Payload: AppendNSKey(nil, "acme", 7)},
		{Ver: Version, Op: OpDropNS, ID: 19, Payload: AppendNSName(nil, "acme")},
		{Ver: Version, Op: OpListNS, ID: 20},
		{Ver: Version, Op: OpListNS | FlagReply, ID: 20,
			Payload: AppendNSList(nil, 1000, []NSStat{{Name: "acme", Keys: 3}, {Name: "globex", Keys: 9}})},
		{Ver: Version, Op: OpShardHash, ID: 21, Payload: AppendNSName(nil, "acme")},
		{Ver: Version, Op: OpShardHash | FlagReply, ID: 21,
			Payload: AppendShardHashesNS(nil, 0xfeed, []ShardHash{{Size: 64, Hash: [32]byte{1, 2}}}, []string{"acme", "globex"})},
		{Ver: Version, Op: OpSync, ID: 22, Payload: AppendSyncReqNS(nil, 3, [32]byte{9}, 128, 4096, "acme")},
		{Ver: Version, Op: OpError, ID: 16, Payload: AppendError(nil, ErrCodeQuota, "namespace over quota")},

		// Version-4 trace-context extension: present (sampled and not),
		// echoed on a reply, and on an empty payload.
		{Ver: Version, Op: OpPut, ID: 23, Trace: TraceCtx{ID: 0xdead, Span: 0xbeef, Sampled: true},
			Payload: AppendKeyVal(nil, 1, 2)},
		{Ver: Version, Op: OpPut | FlagReply, ID: 23, Trace: TraceCtx{ID: 0xdead, Span: 0xbeef},
			Payload: AppendBool(nil, true)},
		{Ver: Version, Op: OpCheckpoint, ID: 24, Trace: TraceCtx{ID: 1, Sampled: true}},
		// Version-3 frames keep decoding with the pre-extension layout: a
		// v4 server speaks v3 back to v3 clients.
		{Ver: Version - 1, Op: OpGet, ID: 25, Payload: AppendKey(nil, 42)},
		{Ver: Version - 1, Op: OpGet | FlagReply, ID: 25, Payload: AppendFound(nil, true, 42, 7)},
		{Ver: Version - 1, Op: OpDropNS, ID: 26, Payload: AppendNSName(nil, "acme")},
	}
	for _, fr := range seeds {
		wire := AppendFrame(nil, fr)
		f.Add(wire)
		f.Add(wire[:len(wire)/2])
		flipped := append([]byte(nil), wire...)
		flipped[len(flipped)/3] ^= 0x40
		f.Add(flipped)
	}

	const payloadCap = 1 << 12 // small cap so the fuzzer can exercise ErrFrameTooLarge
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, n, err := DecodeFrame(data, payloadCap)
		if err != nil {
			// Rejection is the expected outcome for hostile bytes; the
			// incomplete-frame signal must be the sentinel so a stream
			// reader knows to wait for more input.
			if n != 0 {
				t.Fatalf("error with %d bytes consumed", n)
			}
			return
		}
		if n < HeaderSize || n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		if len(fr.Payload) > payloadCap {
			t.Fatalf("payload %d exceeds cap %d", len(fr.Payload), payloadCap)
		}
		// Re-encoding must reproduce exactly the consumed bytes.
		if back := AppendFrame(nil, fr); !bytes.Equal(back, data[:n]) {
			t.Fatalf("re-encode mismatch:\n got % x\nwant % x", back, data[:n])
		}
		// The typed payload decoders must be panic-free on whatever the
		// frame carried, whether or not it matches the opcode.
		DecodeKey(fr.Payload)
		DecodeKeyVal(fr.Payload)
		DecodeBool(fr.Payload)
		DecodeU32(fr.Payload)
		DecodeU64(fr.Payload)
		DecodeFound(fr.Payload)
		DecodeBatch(fr.Payload)
		DecodeBatchGetReply(fr.Payload)
		DecodeRangeReq(fr.Payload)
		DecodeRangeReply(fr.Payload)
		DecodeError(fr.Payload)
		if _, entries, err := DecodeShardHashes(fr.Payload); err == nil {
			// The count was validated against the payload length, so a
			// hostile count can never out-allocate its own frame.
			if len(entries)*40+12 != len(fr.Payload) {
				t.Fatalf("shard-hash entries %d disagree with payload %d", len(entries), len(fr.Payload))
			}
		}
		if _, entries, names, err := DecodeShardHashesNS(fr.Payload); err == nil {
			// The bare-form lower bound still holds; names account for the
			// rest of the payload, each at least 3 bytes (count + 2+1 name).
			if len(entries)*40+12 > len(fr.Payload) {
				t.Fatalf("ns shard-hash entries %d disagree with payload %d", len(entries), len(fr.Payload))
			}
			if len(names) > 0 && len(entries)*40+12+4+3*len(names) > len(fr.Payload) {
				t.Fatalf("ns shard-hash names %d disagree with payload %d", len(names), len(fr.Payload))
			}
		}
		DecodeSyncReq(fr.Payload)
		DecodeSyncReqNS(fr.Payload)
		DecodeSyncChunk(fr.Payload)
		DecodeKeyValExp(fr.Payload)
		DecodeTTLAck(fr.Payload)
		DecodeFoundTTL(fr.Payload)
		DecodeLenReply(fr.Payload)
		DecodeHealth(fr.Payload)
		DecodeNSKeyValExp(fr.Payload)
		DecodeNSKey(fr.Payload)
		DecodeNSName(fr.Payload)
		if _, entries, err := DecodeNSList(fr.Payload); err == nil {
			// Each entry costs at least 11 payload bytes (2+1 name + 8
			// count), so the decoded list is bounded by its own frame.
			if 12+11*len(entries) > len(fr.Payload) {
				t.Fatalf("ns-list entries %d disagree with payload %d", len(entries), len(fr.Payload))
			}
		}

		// The streaming reader must agree with the buffer decoder.
		sf, serr := ReadFrame(bytes.NewReader(data), payloadCap)
		if serr != nil {
			t.Fatalf("DecodeFrame ok but ReadFrame failed: %v", serr)
		}
		if sf.Op != fr.Op || sf.ID != fr.ID || sf.Trace != fr.Trace || !bytes.Equal(sf.Payload, fr.Payload) {
			t.Fatalf("stream/buffer disagree: %+v vs %+v", sf, fr)
		}

		// The pooled-buffer reader must agree too — and its buffer reuse
		// must never corrupt a frame that was fully consumed (copied)
		// before the next Next call. Feeding the same frame twice through
		// one reader is exactly the reuse path: the second decode
		// overwrites the first's payload in place.
		rd := NewFrameReader(bytes.NewReader(append(append([]byte(nil), data[:n]...), data[:n]...)), payloadCap)
		pf1, perr := rd.Next()
		if perr != nil {
			t.Fatalf("DecodeFrame ok but FrameReader failed: %v", perr)
		}
		if pf1.Op != fr.Op || pf1.ID != fr.ID || pf1.Trace != fr.Trace || !bytes.Equal(pf1.Payload, fr.Payload) {
			t.Fatalf("pooled/buffer disagree: %+v vs %+v", pf1, fr)
		}
		saved := append([]byte(nil), pf1.Payload...)
		pf2, perr := rd.Next()
		if perr != nil {
			t.Fatalf("second pooled read failed: %v", perr)
		}
		if !bytes.Equal(pf2.Payload, saved) {
			t.Fatalf("pooled re-read disagrees: % x vs % x", pf2.Payload, saved)
		}
		if !bytes.Equal(saved, fr.Payload) {
			t.Fatalf("copied payload corrupted by buffer reuse: % x vs % x", saved, fr.Payload)
		}
	})
}

// TestNSCodecRoundTrip exercises every namespace codec through an
// encode/decode cycle, including boundary-length names.
func TestNSCodecRoundTrip(t *testing.T) {
	long := string(bytes.Repeat([]byte("n"), MaxNSName))
	for _, ns := range []string{"a", "acme-corp", long} {
		if got, key, val, exp, err := DecodeNSKeyValExp(AppendNSKeyValExp(nil, ns, -5, 7, 99)); err != nil ||
			got != ns || key != -5 || val != 7 || exp != 99 {
			t.Fatalf("ns-put round trip for %q: %q %d %d %d %v", ns, got, key, val, exp, err)
		}
		if got, key, err := DecodeNSKey(AppendNSKey(nil, ns, -5)); err != nil || got != ns || key != -5 {
			t.Fatalf("ns-key round trip for %q: %q %d %v", ns, got, key, err)
		}
		if got, err := DecodeNSName(AppendNSName(nil, ns)); err != nil || got != ns {
			t.Fatalf("ns-name round trip for %q: %q %v", ns, got, err)
		}
	}
	in := []NSStat{{Name: "acme", Keys: 3}, {Name: "globex", Keys: 1 << 40}}
	quota, out, err := DecodeNSList(AppendNSList(nil, 17, in))
	if err != nil || quota != 17 || len(out) != 2 || out[0] != in[0] || out[1] != in[1] {
		t.Fatalf("ns-list round trip: %d %v %v", quota, out, err)
	}
	hseed, entries, names, err := DecodeShardHashesNS(
		AppendShardHashesNS(nil, 42, []ShardHash{{Size: 9, Hash: [32]byte{5}}}, []string{"acme", "globex"}))
	if err != nil || hseed != 42 || len(entries) != 1 || len(names) != 2 || names[1] != "globex" {
		t.Fatalf("ns shard-hash round trip: %d %v %v %v", hseed, entries, names, err)
	}
	// The bare form must keep decoding with names == nil.
	_, _, names, err = DecodeShardHashesNS(AppendShardHashes(nil, 42, []ShardHash{{Size: 9}}))
	if err != nil || names != nil {
		t.Fatalf("bare shard-hash decodes names=%v err=%v", names, err)
	}
	sh, hash, off, ml, ns, err := DecodeSyncReqNS(AppendSyncReqNS(nil, 3, [32]byte{7}, 64, 512, "acme"))
	if err != nil || sh != 3 || hash != ([32]byte{7}) || off != 64 || ml != 512 || ns != "acme" {
		t.Fatalf("ns sync-req round trip: %d %v %d %d %q %v", sh, hash, off, ml, ns, err)
	}
	if _, _, _, _, ns, err = DecodeSyncReqNS(AppendSyncReq(nil, 3, [32]byte{7}, 64, 512)); err != nil || ns != "" {
		t.Fatalf("bare sync-req decodes ns=%q err=%v", ns, err)
	}
}

// TestNSCodecCountValidation drives each namespace decoder with hostile
// counts and lengths: every rejection must come back as an error before
// any allocation proportional to the claimed count.
func TestNSCodecCountValidation(t *testing.T) {
	if _, err := DecodeNSName(AppendNSName(nil, "")); err == nil {
		t.Error("zero-length namespace name accepted")
	}
	over := string(bytes.Repeat([]byte("x"), MaxNSName+1))
	if _, err := DecodeNSName(AppendNSName(nil, over)); err == nil {
		t.Error("over-length namespace name accepted")
	}
	if _, err := DecodeNSName(append(AppendNSName(nil, "acme"), 0xff)); err == nil {
		t.Error("trailing bytes after namespace name accepted")
	}
	// A name-length prefix pointing past the payload.
	if _, _, err := DecodeNSKey([]byte{0x00, 0x20, 'a', 'b'}); err == nil {
		t.Error("truncated namespace name accepted")
	}
	// ns-list with a count far beyond the payload.
	hostile := AppendU64(nil, 0)
	hostile = AppendU32(hostile, 1<<31)
	if _, _, err := DecodeNSList(hostile); err == nil {
		t.Error("ns-list with hostile count accepted")
	}
	// ns-list whose count field overruns its actual entries.
	short := AppendNSList(nil, 0, []NSStat{{Name: "acme", Keys: 1}})
	short[11] = 2 // count says two entries, payload holds one
	if _, _, err := DecodeNSList(short); err == nil {
		t.Error("ns-list with short payload accepted")
	}
	// shard-hash namespace table with a hostile count.
	withTable := AppendShardHashes(nil, 1, nil)
	withTable = AppendU32(withTable, 1<<30)
	if _, _, _, err := DecodeShardHashesNS(withTable); err == nil {
		t.Error("shard-hash namespace table with hostile count accepted")
	}
	// sync request with garbage after the name.
	bad := append(AppendSyncReqNS(nil, 0, [32]byte{}, 0, 0, "acme"), 0x01)
	if _, _, _, _, _, err := DecodeSyncReqNS(bad); err == nil {
		t.Error("sync request with trailing bytes accepted")
	}
}
