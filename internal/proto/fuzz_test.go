package proto

// FuzzDecodeFrame mirrors the repo's image-reader fuzz targets
// (FuzzReadPMA, FuzzReadStore): the frame decoder consumes bytes
// straight off a network socket, so hostile input must produce an
// error — never a panic, and never an allocation disproportionate to
// the input. Whatever decodes successfully must re-encode to the exact
// bytes consumed (the codec is bijective on valid frames).

import (
	"bytes"
	"testing"
)

func FuzzDecodeFrame(f *testing.F) {
	// Seed with one valid frame per opcode and payload shape, plus the
	// usual truncation and bit flip of each.
	seeds := []Frame{
		{Ver: Version, Op: OpGet, ID: 1, Payload: AppendKey(nil, 42)},
		{Ver: Version, Op: OpPut, ID: 2, Payload: AppendKeyVal(nil, 1, 2)},
		{Ver: Version, Op: OpDel, ID: 3, Payload: AppendKey(nil, -1)},
		{Ver: Version, Op: OpBatch, ID: 4, Payload: AppendBatchPut(nil, []Item{{Key: 1, Val: 2}, {Key: 3, Val: 4}})},
		{Ver: Version, Op: OpBatch, ID: 5, Payload: AppendBatchKeys(nil, BatchGet, []int64{5, 6, 7})},
		{Ver: Version, Op: OpRange, ID: 6, Payload: AppendRangeReq(nil, -100, 100, 10)},
		{Ver: Version, Op: OpLen, ID: 7},
		{Ver: Version, Op: OpCheckpoint, ID: 8},
		{Ver: Version, Op: OpPing, ID: 9, Payload: []byte("ping")},
		{Ver: Version, Op: OpGet | FlagReply, ID: 1, Payload: AppendFound(nil, true, 42, 7)},
		{Ver: Version, Op: OpLen | FlagReply, ID: 7, Payload: AppendLenReply(nil, 1000, 7)},
		{Ver: Version, Op: OpRange | FlagReply, ID: 6, Payload: AppendRangeReply(nil, []Item{{Key: 1, Val: 2}}, false, 7)},
		{Ver: Version, Op: OpBatch | FlagReply, ID: 5, Payload: AppendBatchGetReply(nil, []int64{1}, []bool{true}, 7)},
		{Ver: Version, Op: OpError, ID: 2, Payload: AppendError(nil, ErrCodeBadFrame, "boom")},
		{Ver: Version, Op: OpShardHash, ID: 10},
		{Ver: Version, Op: OpShardHash | FlagReply, ID: 10,
			Payload: AppendShardHashes(nil, 0xfeed, []ShardHash{{Size: 64, Hash: [32]byte{1, 2}}, {Size: 0}})},
		{Ver: Version, Op: OpSync, ID: 11, Payload: AppendSyncReq(nil, 3, [32]byte{9}, 128, 4096)},
		{Ver: Version, Op: OpSync | FlagReply, ID: 11, Payload: AppendSyncChunk(nil, true, []byte("img"))},
		{Ver: Version, Op: OpPutTTL, ID: 12, Payload: AppendKeyValExp(nil, 7, 70, 1_900_000_000)},
		{Ver: Version, Op: OpPutTTL | FlagReply, ID: 12, Payload: AppendTTLAck(nil, true, 1_900_000_000)},
		{Ver: Version, Op: OpGetTTL, ID: 13, Payload: AppendKey(nil, 7)},
		{Ver: Version, Op: OpGetTTL | FlagReply, ID: 13, Payload: AppendFoundTTL(nil, true, 70, 1_900_000_000, 7)},
		{Ver: Version, Op: OpHealth, ID: 14},
		{Ver: Version, Op: OpHealth | FlagReply, ID: 14,
			Payload: AppendHealth(nil, Health{ReadOnly: true, Promotions: 1, Epoch: 9, Hash: [32]byte{3, 1}})},
		{Ver: Version, Op: OpPromote, ID: 15},
		{Ver: Version, Op: OpPromote | FlagReply, ID: 15, Payload: AppendU64(nil, 1)},
		{Ver: Version, Op: OpError, ID: 15, Payload: AppendError(nil, ErrCodeNotReplica, "already primary")},
	}
	for _, fr := range seeds {
		wire := AppendFrame(nil, fr)
		f.Add(wire)
		f.Add(wire[:len(wire)/2])
		flipped := append([]byte(nil), wire...)
		flipped[len(flipped)/3] ^= 0x40
		f.Add(flipped)
	}

	const payloadCap = 1 << 12 // small cap so the fuzzer can exercise ErrFrameTooLarge
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, n, err := DecodeFrame(data, payloadCap)
		if err != nil {
			// Rejection is the expected outcome for hostile bytes; the
			// incomplete-frame signal must be the sentinel so a stream
			// reader knows to wait for more input.
			if n != 0 {
				t.Fatalf("error with %d bytes consumed", n)
			}
			return
		}
		if n < HeaderSize || n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		if len(fr.Payload) > payloadCap {
			t.Fatalf("payload %d exceeds cap %d", len(fr.Payload), payloadCap)
		}
		// Re-encoding must reproduce exactly the consumed bytes.
		if back := AppendFrame(nil, fr); !bytes.Equal(back, data[:n]) {
			t.Fatalf("re-encode mismatch:\n got % x\nwant % x", back, data[:n])
		}
		// The typed payload decoders must be panic-free on whatever the
		// frame carried, whether or not it matches the opcode.
		DecodeKey(fr.Payload)
		DecodeKeyVal(fr.Payload)
		DecodeBool(fr.Payload)
		DecodeU32(fr.Payload)
		DecodeU64(fr.Payload)
		DecodeFound(fr.Payload)
		DecodeBatch(fr.Payload)
		DecodeBatchGetReply(fr.Payload)
		DecodeRangeReq(fr.Payload)
		DecodeRangeReply(fr.Payload)
		DecodeError(fr.Payload)
		if _, entries, err := DecodeShardHashes(fr.Payload); err == nil {
			// The count was validated against the payload length, so a
			// hostile count can never out-allocate its own frame.
			if len(entries)*40+12 != len(fr.Payload) {
				t.Fatalf("shard-hash entries %d disagree with payload %d", len(entries), len(fr.Payload))
			}
		}
		DecodeSyncReq(fr.Payload)
		DecodeSyncChunk(fr.Payload)
		DecodeKeyValExp(fr.Payload)
		DecodeTTLAck(fr.Payload)
		DecodeFoundTTL(fr.Payload)
		DecodeLenReply(fr.Payload)
		DecodeHealth(fr.Payload)

		// The streaming reader must agree with the buffer decoder.
		sf, serr := ReadFrame(bytes.NewReader(data), payloadCap)
		if serr != nil {
			t.Fatalf("DecodeFrame ok but ReadFrame failed: %v", serr)
		}
		if sf.Op != fr.Op || sf.ID != fr.ID || !bytes.Equal(sf.Payload, fr.Payload) {
			t.Fatalf("stream/buffer disagree: %+v vs %+v", sf, fr)
		}

		// The pooled-buffer reader must agree too — and its buffer reuse
		// must never corrupt a frame that was fully consumed (copied)
		// before the next Next call. Feeding the same frame twice through
		// one reader is exactly the reuse path: the second decode
		// overwrites the first's payload in place.
		rd := NewFrameReader(bytes.NewReader(append(append([]byte(nil), data[:n]...), data[:n]...)), payloadCap)
		pf1, perr := rd.Next()
		if perr != nil {
			t.Fatalf("DecodeFrame ok but FrameReader failed: %v", perr)
		}
		if pf1.Op != fr.Op || pf1.ID != fr.ID || !bytes.Equal(pf1.Payload, fr.Payload) {
			t.Fatalf("pooled/buffer disagree: %+v vs %+v", pf1, fr)
		}
		saved := append([]byte(nil), pf1.Payload...)
		pf2, perr := rd.Next()
		if perr != nil {
			t.Fatalf("second pooled read failed: %v", perr)
		}
		if !bytes.Equal(pf2.Payload, saved) {
			t.Fatalf("pooled re-read disagrees: % x vs % x", pf2.Payload, saved)
		}
		if !bytes.Equal(saved, fr.Payload) {
			t.Fatalf("copied payload corrupted by buffer reuse: % x vs % x", saved, fr.Payload)
		}
	})
}
