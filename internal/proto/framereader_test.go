package proto

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// TestFrameReaderReuse pins down the FrameReader aliasing contract: the
// payload returned by Next lives in a reused buffer, so it is valid
// until the next Next call and no longer — and a copy taken before that
// call survives intact. This is the regression test for the server's
// reader loop, which hands reused payloads to dispatch and relies on
// every retention point (the Ping echo, coalescer submissions) copying
// before the next frame arrives.
func TestFrameReaderReuse(t *testing.T) {
	frames := []Frame{
		{Ver: Version, Op: OpPing, ID: 1, Payload: []byte("aaaaaaaa")},
		{Ver: Version, Op: OpPing, ID: 2, Payload: []byte("bbbbbbbb")},
		{Ver: Version, Op: OpPing, ID: 3, Payload: []byte("cccccccc")},
	}
	var wire []byte
	for _, f := range frames {
		wire = AppendFrame(wire, f)
	}
	fr := NewFrameReader(bytes.NewReader(wire), 0)

	f1, err := fr.Next()
	if err != nil {
		t.Fatal(err)
	}
	alias := f1.Payload // retained WITHOUT copying: invalidated by the next Next
	saved := append([]byte(nil), f1.Payload...)

	f2, err := fr.Next()
	if err != nil {
		t.Fatal(err)
	}
	// Same-size payloads share the one internal buffer, so the aliased
	// slice must now show frame 2's bytes — retaining without a copy is
	// exactly the bug this guards against.
	if &alias[0] != &f2.Payload[0] {
		t.Fatal("second Next did not reuse the payload buffer")
	}
	if !bytes.Equal(alias, []byte("bbbbbbbb")) {
		t.Fatalf("aliased payload = %q, want it overwritten by frame 2", alias)
	}
	// The copy taken in time is untouched.
	if !bytes.Equal(saved, []byte("aaaaaaaa")) {
		t.Fatalf("copied payload corrupted: %q", saved)
	}
	if f3, err := fr.Next(); err != nil || !bytes.Equal(f3.Payload, []byte("cccccccc")) || f3.ID != 3 {
		t.Fatalf("third frame = %+v, %v", f3, err)
	}
	if _, err := fr.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("read past end = %v, want EOF", err)
	}
}

// TestFrameReaderRejects checks the reader's framing validation: an
// oversized length prefix fails with ErrFrameTooLarge, a length below
// the header size fails, and a truncated body fails — all without
// panicking or over-reading.
func TestFrameReaderRejects(t *testing.T) {
	big := AppendFrame(nil, Frame{Ver: Version, Op: OpPing, ID: 1, Payload: make([]byte, 256)})
	if _, err := NewFrameReader(bytes.NewReader(big), 64).Next(); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized frame = %v, want ErrFrameTooLarge", err)
	}

	short := []byte{0, 0, 0, 1} // length 1 < header remainder
	if _, err := NewFrameReader(bytes.NewReader(short), 0).Next(); err == nil {
		t.Fatal("undersized length accepted")
	}

	whole := AppendFrame(nil, Frame{Ver: Version, Op: OpPing, ID: 1, Payload: []byte("payload")})
	if _, err := NewFrameReader(bytes.NewReader(whole[:len(whole)-3]), 0).Next(); err == nil {
		t.Fatal("truncated body accepted")
	}
}
