package proto

// TestProtocolDocLockstep keeps docs/PROTOCOL.md and this package from
// drifting apart: it parses the opcode and error-code tables out of the
// markdown and asserts every (name, value) pair against the package's
// own tables, in both directions.

import (
	"os"
	"regexp"
	"strconv"
	"testing"
)

// docRow matches a markdown table row starting with `Name` | `0xNN` or
// `Name` | `N`.
var docRow = regexp.MustCompile("(?m)^\\| `([A-Za-z]+)` \\| `(0x[0-9a-fA-F]+|[0-9]+)` \\|")

func parseDocTables(t *testing.T) map[string]byte {
	t.Helper()
	data, err := os.ReadFile("../../docs/PROTOCOL.md")
	if err != nil {
		t.Fatalf("the protocol doc must exist next to the protocol package: %v", err)
	}
	out := map[string]byte{}
	for _, m := range docRow.FindAllStringSubmatch(string(data), -1) {
		name, lit := m[1], m[2]
		v, err := strconv.ParseUint(lit, 0, 8)
		if err != nil {
			t.Fatalf("doc row %q: bad value %q: %v", name, lit, err)
		}
		if prev, dup := out[name]; dup && prev != byte(v) {
			t.Fatalf("doc lists %s twice with different values", name)
		}
		out[name] = byte(v)
	}
	if len(out) == 0 {
		t.Fatal("no table rows parsed from docs/PROTOCOL.md — table format changed?")
	}
	return out
}

func TestProtocolDocLockstep(t *testing.T) {
	doc := parseDocTables(t)

	// Every opcode and error code in the implementation must appear in
	// the doc with the same value. (Batch kinds ride along because the
	// doc lists them in prose, not a table — they are asserted here
	// directly against their spec values instead.)
	impl := map[string]byte{}
	for op, name := range opNames {
		impl[name] = op
	}
	for code, name := range errNames {
		impl[name] = code
	}
	for name, v := range impl {
		got, ok := doc[name]
		if !ok {
			t.Errorf("%s (0x%02x) is not documented in docs/PROTOCOL.md", name, v)
			continue
		}
		if got != v {
			t.Errorf("%s: doc says 0x%02x, implementation says 0x%02x", name, got, v)
		}
	}

	// Every documented name must exist in the implementation — the doc
	// cannot promise opcodes the server does not speak.
	for name, v := range doc {
		if impl[name] != v {
			t.Errorf("doc row %s = 0x%02x has no matching implementation constant", name, v)
		}
	}

	// Spec constants the doc states in prose.
	if BatchPut != 0 || BatchGet != 1 || BatchDel != 2 {
		t.Error("batch kind values drifted from docs/PROTOCOL.md prose")
	}
	if FlagReply != 0x80 {
		t.Errorf("FlagReply = 0x%02x, doc says 0x80", FlagReply)
	}
	if Version != 4 {
		t.Errorf("Version = %d, doc says 4", Version)
	}
	if TraceExtLen != 17 {
		t.Errorf("TraceExtLen = %d, doc says 17 (trace id 8 + span id 8 + flags 1)", TraceExtLen)
	}
	if MaxPayload != 1<<20 {
		t.Errorf("MaxPayload = %d, doc says 1 MiB", MaxPayload)
	}
	if MaxBatchGet != (1<<20-12)/9 {
		t.Errorf("MaxBatchGet = %d, doc says floor((1 MiB - 12)/9)", MaxBatchGet)
	}
	if MaxRangeItems != (1<<20-13)/16 {
		t.Errorf("MaxRangeItems = %d, doc says floor((1 MiB - 13)/16)", MaxRangeItems)
	}
	if MaxSyncShards != (1<<20-12)/40 {
		t.Errorf("MaxSyncShards = %d, doc says floor((1 MiB - 12)/40)", MaxSyncShards)
	}
	if MaxSyncChunk != 1<<20-1 {
		t.Errorf("MaxSyncChunk = %d, doc says 1 MiB - 1", MaxSyncChunk)
	}
	if MaxNSName != 128 {
		t.Errorf("MaxNSName = %d, doc says 128", MaxNSName)
	}
	if MaxListNS != (1<<20-12)/11 {
		t.Errorf("MaxListNS = %d, doc says floor((1 MiB - 12)/11)", MaxListNS)
	}
	// The bounds must actually keep the replies under the cap.
	if 12+9*MaxBatchGet > MaxPayload || 13+16*MaxRangeItems > MaxPayload ||
		12+40*MaxSyncShards > MaxPayload || 1+MaxSyncChunk > MaxPayload ||
		12+11*MaxListNS > MaxPayload {
		t.Error("reply-size bounds do not fit MaxPayload")
	}
}
