package proto

// Payload codecs for each opcode. Encoders append to a caller-supplied
// slice so hot paths can reuse buffers; decoders validate every count
// against the actual payload length BEFORE allocating, so hostile
// payloads error instead of over-allocating. Signed keys and values
// travel as big-endian two's-complement u64.

import (
	"encoding/binary"
	"fmt"
)

// AppendKey appends a bare key payload (OpGet/OpDel requests).
func AppendKey(dst []byte, key int64) []byte {
	return binary.BigEndian.AppendUint64(dst, uint64(key))
}

// DecodeKey decodes a bare key payload.
func DecodeKey(p []byte) (int64, error) {
	if len(p) != 8 {
		return 0, fmt.Errorf("proto: key payload is %d bytes, want 8", len(p))
	}
	return int64(binary.BigEndian.Uint64(p)), nil
}

// AppendKeyVal appends a key-value payload (OpPut requests).
func AppendKeyVal(dst []byte, key, val int64) []byte {
	dst = binary.BigEndian.AppendUint64(dst, uint64(key))
	return binary.BigEndian.AppendUint64(dst, uint64(val))
}

// DecodeKeyVal decodes a key-value payload.
func DecodeKeyVal(p []byte) (key, val int64, err error) {
	if len(p) != 16 {
		return 0, 0, fmt.Errorf("proto: key-val payload is %d bytes, want 16", len(p))
	}
	return int64(binary.BigEndian.Uint64(p)), int64(binary.BigEndian.Uint64(p[8:])), nil
}

// AppendBool appends a one-byte boolean payload (OpPut/OpDel replies).
func AppendBool(dst []byte, b bool) []byte {
	if b {
		return append(dst, 1)
	}
	return append(dst, 0)
}

// DecodeBool decodes a one-byte boolean payload.
func DecodeBool(p []byte) (bool, error) {
	if len(p) != 1 || p[0] > 1 {
		return false, fmt.Errorf("proto: bad bool payload % x", p)
	}
	return p[0] == 1, nil
}

// AppendU64 appends an unsigned counter payload (OpLen/OpCheckpoint
// replies).
func AppendU64(dst []byte, v uint64) []byte {
	return binary.BigEndian.AppendUint64(dst, v)
}

// DecodeU64 decodes an unsigned counter payload.
func DecodeU64(p []byte) (uint64, error) {
	if len(p) != 8 {
		return 0, fmt.Errorf("proto: u64 payload is %d bytes, want 8", len(p))
	}
	return binary.BigEndian.Uint64(p), nil
}

// AppendKeyValExp appends an OpPutTTL request: key, value, and the
// absolute expiry epoch in unix seconds (0: never expires).
func AppendKeyValExp(dst []byte, key, val, exp int64) []byte {
	dst = binary.BigEndian.AppendUint64(dst, uint64(key))
	dst = binary.BigEndian.AppendUint64(dst, uint64(val))
	return binary.BigEndian.AppendUint64(dst, uint64(exp))
}

// DecodeKeyValExp decodes an OpPutTTL request. A negative expiry is
// rejected — epochs are unix seconds, and an entry that should be gone
// already is expressed by an expiry in the past, not a negative one.
func DecodeKeyValExp(p []byte) (key, val, exp int64, err error) {
	if len(p) != 24 {
		return 0, 0, 0, fmt.Errorf("proto: key-val-exp payload is %d bytes, want 24", len(p))
	}
	key = int64(binary.BigEndian.Uint64(p))
	val = int64(binary.BigEndian.Uint64(p[8:]))
	exp = int64(binary.BigEndian.Uint64(p[16:]))
	if exp < 0 {
		return 0, 0, 0, fmt.Errorf("proto: negative expiry epoch %d", exp)
	}
	return key, val, exp, nil
}

// AppendTTLAck appends an OpPutTTL reply: the changed flag plus the
// absolute expiry now in force, echoed back.
func AppendTTLAck(dst []byte, changed bool, exp int64) []byte {
	dst = AppendBool(dst, changed)
	return binary.BigEndian.AppendUint64(dst, uint64(exp))
}

// DecodeTTLAck decodes an OpPutTTL reply.
func DecodeTTLAck(p []byte) (changed bool, exp int64, err error) {
	if len(p) != 9 || p[0] > 1 {
		return false, 0, fmt.Errorf("proto: bad put-ttl reply payload (%d bytes)", len(p))
	}
	exp = int64(binary.BigEndian.Uint64(p[1:]))
	if exp < 0 {
		return false, 0, fmt.Errorf("proto: negative expiry epoch %d in reply", exp)
	}
	return p[0] == 1, exp, nil
}

// AppendFoundTTL appends an OpGetTTL reply: found flag, the value, the
// entry's recorded absolute expiry (both zero when absent; expiry zero
// also means "never expires" on a found entry), and the serving node's
// checkpoint epoch.
func AppendFoundTTL(dst []byte, found bool, val, exp int64, epoch uint64) []byte {
	dst = AppendBool(dst, found)
	dst = binary.BigEndian.AppendUint64(dst, uint64(val))
	dst = binary.BigEndian.AppendUint64(dst, uint64(exp))
	return binary.BigEndian.AppendUint64(dst, epoch)
}

// DecodeFoundTTL decodes an OpGetTTL reply.
func DecodeFoundTTL(p []byte) (val, exp int64, epoch uint64, found bool, err error) {
	if len(p) != 25 || p[0] > 1 {
		return 0, 0, 0, false, fmt.Errorf("proto: bad get-ttl reply payload (%d bytes)", len(p))
	}
	val = int64(binary.BigEndian.Uint64(p[1:]))
	exp = int64(binary.BigEndian.Uint64(p[9:]))
	if exp < 0 {
		return 0, 0, 0, false, fmt.Errorf("proto: negative expiry epoch %d in reply", exp)
	}
	return val, exp, binary.BigEndian.Uint64(p[17:]), p[0] == 1, nil
}

// AppendFound appends an OpGet reply: found flag, the value (zero when
// absent), and the serving node's checkpoint epoch — the count of
// checkpoints this node has committed or installed since process start.
// The epoch is the bounded-staleness stamp: on a replica it identifies
// exactly which installed checkpoint served the read. It is node-local,
// in-memory state, never persisted, so it leaks no history to disk.
func AppendFound(dst []byte, found bool, val int64, epoch uint64) []byte {
	dst = AppendBool(dst, found)
	dst = binary.BigEndian.AppendUint64(dst, uint64(val))
	return binary.BigEndian.AppendUint64(dst, epoch)
}

// DecodeFound decodes an OpGet reply.
func DecodeFound(p []byte) (val int64, epoch uint64, found bool, err error) {
	if len(p) != 17 || p[0] > 1 {
		return 0, 0, false, fmt.Errorf("proto: bad get reply payload (%d bytes)", len(p))
	}
	return int64(binary.BigEndian.Uint64(p[1:])), binary.BigEndian.Uint64(p[9:]), p[0] == 1, nil
}

// AppendLenReply appends an OpLen reply: the element count plus the
// serving node's checkpoint epoch.
func AppendLenReply(dst []byte, count, epoch uint64) []byte {
	dst = binary.BigEndian.AppendUint64(dst, count)
	return binary.BigEndian.AppendUint64(dst, epoch)
}

// DecodeLenReply decodes an OpLen reply.
func DecodeLenReply(p []byte) (count, epoch uint64, err error) {
	if len(p) != 16 {
		return 0, 0, fmt.Errorf("proto: len reply is %d bytes, want 16", len(p))
	}
	return binary.BigEndian.Uint64(p), binary.BigEndian.Uint64(p[8:]), nil
}

// Entry ceilings derived from MaxPayload. Request payload sizes bound
// most batch shapes implicitly, but two replies are BIGGER than the
// requests that elicit them, so the smaller reply-side bound is the
// real protocol limit — servers reject requests over it with
// ErrCodeTooLarge rather than emit a reply frame no client could read.
const (
	// MaxBatchGet caps keys in one BatchGet: the reply carries
	// 12 + 9·n bytes (epoch, count, then found+val per key).
	MaxBatchGet = (MaxPayload - 12) / 9
	// MaxRangeItems caps items in one OpRange reply: 13 + 16·n bytes
	// (more flag, epoch, count, then key+val pairs). Servers clamp
	// their configured range cap to it.
	MaxRangeItems = (MaxPayload - 13) / 16
)

// AppendBatchPut appends an OpBatch request payload of kind BatchPut.
func AppendBatchPut(dst []byte, items []Item) []byte {
	dst = append(dst, BatchPut)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(items)))
	for _, it := range items {
		dst = binary.BigEndian.AppendUint64(dst, uint64(it.Key))
		dst = binary.BigEndian.AppendUint64(dst, uint64(it.Val))
	}
	return dst
}

// AppendBatchKeys appends an OpBatch request payload of kind BatchGet
// or BatchDel: a key list.
func AppendBatchKeys(dst []byte, kind byte, keys []int64) []byte {
	dst = append(dst, kind)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(keys)))
	for _, k := range keys {
		dst = binary.BigEndian.AppendUint64(dst, uint64(k))
	}
	return dst
}

// DecodeBatch decodes an OpBatch request payload. Exactly one of items
// (kind BatchPut) and keys (BatchGet/BatchDel) is non-nil for a
// non-empty batch.
func DecodeBatch(p []byte) (kind byte, items []Item, keys []int64, err error) {
	if len(p) < 5 {
		return 0, nil, nil, fmt.Errorf("proto: batch payload is %d bytes, want >= 5", len(p))
	}
	kind = p[0]
	n := binary.BigEndian.Uint32(p[1:])
	body := p[5:]
	switch kind {
	case BatchPut:
		if uint64(len(body)) != uint64(n)*16 {
			return 0, nil, nil, fmt.Errorf("proto: batch-put of %d entries has %d payload bytes", n, len(body))
		}
		items = make([]Item, n)
		for i := range items {
			items[i].Key = int64(binary.BigEndian.Uint64(body[i*16:]))
			items[i].Val = int64(binary.BigEndian.Uint64(body[i*16+8:]))
		}
	case BatchGet, BatchDel:
		if uint64(len(body)) != uint64(n)*8 {
			return 0, nil, nil, fmt.Errorf("proto: batch key list of %d entries has %d payload bytes", n, len(body))
		}
		keys = make([]int64, n)
		for i := range keys {
			keys[i] = int64(binary.BigEndian.Uint64(body[i*8:]))
		}
	default:
		return 0, nil, nil, fmt.Errorf("proto: unknown batch kind %d", kind)
	}
	return kind, items, keys, nil
}

// AppendU32 appends a 32-bit count payload (batch-put/batch-del
// replies: the number of keys whose presence changed).
func AppendU32(dst []byte, v uint32) []byte {
	return binary.BigEndian.AppendUint32(dst, v)
}

// DecodeU32 decodes a 32-bit count payload.
func DecodeU32(p []byte) (uint32, error) {
	if len(p) != 4 {
		return 0, fmt.Errorf("proto: u32 payload is %d bytes, want 4", len(p))
	}
	return binary.BigEndian.Uint32(p), nil
}

// AppendBatchGetReply appends a BatchGet reply: the serving node's
// checkpoint epoch, a count, then a found(1) val(8) pair per requested
// key, in request order.
func AppendBatchGetReply(dst []byte, vals []int64, found []bool, epoch uint64) []byte {
	dst = binary.BigEndian.AppendUint64(dst, epoch)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(vals)))
	for i, v := range vals {
		dst = AppendBool(dst, found[i])
		dst = binary.BigEndian.AppendUint64(dst, uint64(v))
	}
	return dst
}

// DecodeBatchGetReply decodes a BatchGet reply.
func DecodeBatchGetReply(p []byte) (vals []int64, found []bool, epoch uint64, err error) {
	if len(p) < 12 {
		return nil, nil, 0, fmt.Errorf("proto: batch-get reply is %d bytes, want >= 12", len(p))
	}
	epoch = binary.BigEndian.Uint64(p)
	n := binary.BigEndian.Uint32(p[8:])
	body := p[12:]
	if uint64(len(body)) != uint64(n)*9 {
		return nil, nil, 0, fmt.Errorf("proto: batch-get reply of %d entries has %d payload bytes", n, len(body))
	}
	vals = make([]int64, n)
	found = make([]bool, n)
	for i := range vals {
		e := body[i*9 : i*9+9]
		if e[0] > 1 {
			return nil, nil, 0, fmt.Errorf("proto: batch-get reply entry %d has bad found byte", i)
		}
		found[i] = e[0] == 1
		vals[i] = int64(binary.BigEndian.Uint64(e[1:]))
	}
	return vals, found, epoch, nil
}

// AppendRangeReq appends an OpRange request: inclusive bounds plus a
// cap on returned items (0: server default).
func AppendRangeReq(dst []byte, lo, hi int64, max uint32) []byte {
	dst = binary.BigEndian.AppendUint64(dst, uint64(lo))
	dst = binary.BigEndian.AppendUint64(dst, uint64(hi))
	return binary.BigEndian.AppendUint32(dst, max)
}

// DecodeRangeReq decodes an OpRange request.
func DecodeRangeReq(p []byte) (lo, hi int64, max uint32, err error) {
	if len(p) != 20 {
		return 0, 0, 0, fmt.Errorf("proto: range request is %d bytes, want 20", len(p))
	}
	lo = int64(binary.BigEndian.Uint64(p))
	hi = int64(binary.BigEndian.Uint64(p[8:]))
	max = binary.BigEndian.Uint32(p[16:])
	return lo, hi, max, nil
}

// AppendRangeReply appends an OpRange reply: a more flag (the cap
// truncated the scan), the serving node's checkpoint epoch, a count,
// then key(8) val(8) pairs in ascending key order.
func AppendRangeReply(dst []byte, items []Item, more bool, epoch uint64) []byte {
	dst = AppendBool(dst, more)
	dst = binary.BigEndian.AppendUint64(dst, epoch)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(items)))
	for _, it := range items {
		dst = binary.BigEndian.AppendUint64(dst, uint64(it.Key))
		dst = binary.BigEndian.AppendUint64(dst, uint64(it.Val))
	}
	return dst
}

// DecodeRangeReply decodes an OpRange reply.
func DecodeRangeReply(p []byte) (items []Item, epoch uint64, more bool, err error) {
	if len(p) < 13 || p[0] > 1 {
		return nil, 0, false, fmt.Errorf("proto: range reply is %d bytes, want >= 13", len(p))
	}
	more = p[0] == 1
	epoch = binary.BigEndian.Uint64(p[1:])
	n := binary.BigEndian.Uint32(p[9:])
	body := p[13:]
	if uint64(len(body)) != uint64(n)*16 {
		return nil, 0, false, fmt.Errorf("proto: range reply of %d items has %d payload bytes", n, len(body))
	}
	items = make([]Item, n)
	for i := range items {
		items[i].Key = int64(binary.BigEndian.Uint64(body[i*16:]))
		items[i].Val = int64(binary.BigEndian.Uint64(body[i*16+8:]))
	}
	return items, epoch, more, nil
}

// ShardHash describes one shard's committed canonical image: its size
// and SHA-256. A SHARDHASH reply carries one per shard; two nodes with
// equal contents have equal hashes for every shard (the images are
// canonical), so anti-entropy is hash comparison plus image shipping.
type ShardHash struct {
	Size int64
	Hash [32]byte
}

// Replication ceilings derived from MaxPayload.
const (
	// MaxSyncShards caps the shards in one SHARDHASH reply: the reply
	// carries 12 + 40·n bytes (hseed, count, then size+hash per shard).
	// Servers with more shards reject SHARDHASH with ErrCodeTooLarge.
	MaxSyncShards = (MaxPayload - 12) / 40
	// MaxSyncChunk caps the bytes in one SYNC reply: 1 + n bytes (more
	// flag, then image bytes). Servers clamp the request's maxlen to it.
	MaxSyncChunk = MaxPayload - 1
)

// AppendShardHashes appends an OpShardHash reply: the routing seed, a
// shard count, then each shard's committed image size and SHA-256 in
// shard order.
func AppendShardHashes(dst []byte, hseed uint64, entries []ShardHash) []byte {
	dst = binary.BigEndian.AppendUint64(dst, hseed)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(entries)))
	for _, e := range entries {
		dst = binary.BigEndian.AppendUint64(dst, uint64(e.Size))
		dst = append(dst, e.Hash[:]...)
	}
	return dst
}

// DecodeShardHashes decodes an OpShardHash reply. The count is
// validated against the actual payload length and MaxSyncShards before
// allocating.
func DecodeShardHashes(p []byte) (hseed uint64, entries []ShardHash, err error) {
	if len(p) < 12 {
		return 0, nil, fmt.Errorf("proto: shard-hash reply is %d bytes, want >= 12", len(p))
	}
	hseed = binary.BigEndian.Uint64(p)
	n := binary.BigEndian.Uint32(p[8:])
	if n > MaxSyncShards {
		return 0, nil, fmt.Errorf("proto: shard-hash reply claims %d shards, cap %d", n, MaxSyncShards)
	}
	body := p[12:]
	if uint64(len(body)) != uint64(n)*40 {
		return 0, nil, fmt.Errorf("proto: shard-hash reply of %d shards has %d payload bytes", n, len(body))
	}
	entries = make([]ShardHash, n)
	for i := range entries {
		e := body[i*40 : i*40+40]
		size := int64(binary.BigEndian.Uint64(e))
		if size < 0 {
			return 0, nil, fmt.Errorf("proto: shard-hash entry %d has negative size", i)
		}
		entries[i].Size = size
		copy(entries[i].Hash[:], e[8:])
	}
	return hseed, entries, nil
}

// AppendSyncReq appends an OpSync request: the shard index, the
// expected image hash (from a SHARDHASH reply), a byte offset into the
// image, and the maximum bytes wanted back (0: the server's default;
// always clamped to MaxSyncChunk).
func AppendSyncReq(dst []byte, shard uint32, hash [32]byte, offset uint64, maxLen uint32) []byte {
	dst = binary.BigEndian.AppendUint32(dst, shard)
	dst = append(dst, hash[:]...)
	dst = binary.BigEndian.AppendUint64(dst, offset)
	return binary.BigEndian.AppendUint32(dst, maxLen)
}

// DecodeSyncReq decodes an OpSync request.
func DecodeSyncReq(p []byte) (shard uint32, hash [32]byte, offset uint64, maxLen uint32, err error) {
	if len(p) != 48 {
		return 0, hash, 0, 0, fmt.Errorf("proto: sync request is %d bytes, want 48", len(p))
	}
	shard = binary.BigEndian.Uint32(p)
	copy(hash[:], p[4:36])
	offset = binary.BigEndian.Uint64(p[36:])
	maxLen = binary.BigEndian.Uint32(p[44:])
	return shard, hash, offset, maxLen, nil
}

// AppendSyncChunk appends an OpSync reply: a more flag (the image has
// bytes past this chunk) and the chunk itself.
func AppendSyncChunk(dst []byte, more bool, data []byte) []byte {
	dst = AppendBool(dst, more)
	return append(dst, data...)
}

// DecodeSyncChunk decodes an OpSync reply. The returned data aliases p.
func DecodeSyncChunk(p []byte) (data []byte, more bool, err error) {
	if len(p) < 1 || p[0] > 1 {
		return nil, false, fmt.Errorf("proto: sync chunk is %d bytes, want >= 1 with a bool flag", len(p))
	}
	return p[1:], p[0] == 1, nil
}

// Health is an OpHealth reply: the node's role and checkpoint
// position. Promotions counts the times this process has been promoted
// to primary (zero for a node started writable); Epoch is the node's
// checkpoint epoch (checkpoints committed or installed since process
// start); Hash is the SHA-256 of the committed manifest encoding —
// two nodes serving identical checkpoints report identical hashes, so
// a failover coordinator can pick the freshest replica by content, not
// by any persisted election record. All fields are in-memory state.
type Health struct {
	ReadOnly   bool
	Promotions uint64
	Epoch      uint64
	Hash       [32]byte
}

// AppendHealth appends an OpHealth reply.
func AppendHealth(dst []byte, h Health) []byte {
	dst = AppendBool(dst, h.ReadOnly)
	dst = binary.BigEndian.AppendUint64(dst, h.Promotions)
	dst = binary.BigEndian.AppendUint64(dst, h.Epoch)
	return append(dst, h.Hash[:]...)
}

// DecodeHealth decodes an OpHealth reply.
func DecodeHealth(p []byte) (Health, error) {
	var h Health
	if len(p) != 49 || p[0] > 1 {
		return h, fmt.Errorf("proto: health reply is %d bytes, want 49", len(p))
	}
	h.ReadOnly = p[0] == 1
	h.Promotions = binary.BigEndian.Uint64(p[1:])
	h.Epoch = binary.BigEndian.Uint64(p[9:])
	copy(h.Hash[:], p[17:])
	return h, nil
}

// MaxNSName bounds a tenant name's length in bytes on the wire. It
// matches the storage layer's bound, keeps every namespaced request
// inside one frame, and bounds a LISTNS reply's per-tenant overhead.
const MaxNSName = 128

// MaxListNS caps tenants in one LISTNS reply: the reply carries
// 12 + (2+name+8) bytes per tenant, at least 11 each, so this is the
// worst-case (single-byte names) ceiling servers enforce.
const MaxListNS = (MaxPayload - 12) / 11

// appendNSName appends the tenant-name prefix: nslen(2) name.
func appendNSName(dst []byte, ns string) []byte {
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(ns)))
	return append(dst, ns...)
}

// decodeNSName decodes the tenant-name prefix and returns the name and
// the remaining payload. Name length is validated against MaxNSName
// and the payload length before the string is allocated.
func decodeNSName(p []byte) (ns string, rest []byte, err error) {
	if len(p) < 2 {
		return "", nil, fmt.Errorf("proto: namespaced payload is %d bytes, want >= 2", len(p))
	}
	n := int(binary.BigEndian.Uint16(p))
	if n == 0 || n > MaxNSName {
		return "", nil, fmt.Errorf("proto: namespace name length %d, want 1..%d", n, MaxNSName)
	}
	if len(p) < 2+n {
		return "", nil, fmt.Errorf("proto: namespaced payload truncated inside the name")
	}
	return string(p[2 : 2+n]), p[2+n:], nil
}

// AppendNSKeyValExp appends an OpNSPut request: the tenant name, then
// key, value, and absolute expiry epoch (0: never expires).
func AppendNSKeyValExp(dst []byte, ns string, key, val, exp int64) []byte {
	dst = appendNSName(dst, ns)
	return AppendKeyValExp(dst, key, val, exp)
}

// DecodeNSKeyValExp decodes an OpNSPut request.
func DecodeNSKeyValExp(p []byte) (ns string, key, val, exp int64, err error) {
	ns, rest, err := decodeNSName(p)
	if err != nil {
		return "", 0, 0, 0, err
	}
	key, val, exp, err = DecodeKeyValExp(rest)
	return ns, key, val, exp, err
}

// AppendNSKey appends an OpNSGet/OpNSDel request: the tenant name plus
// a key.
func AppendNSKey(dst []byte, ns string, key int64) []byte {
	dst = appendNSName(dst, ns)
	return binary.BigEndian.AppendUint64(dst, uint64(key))
}

// DecodeNSKey decodes an OpNSGet/OpNSDel request.
func DecodeNSKey(p []byte) (ns string, key int64, err error) {
	ns, rest, err := decodeNSName(p)
	if err != nil {
		return "", 0, err
	}
	key, err = DecodeKey(rest)
	return ns, key, err
}

// AppendNSName appends a bare tenant-name payload (OpDropNS requests;
// also OpShardHash requests addressing one tenant's cell).
func AppendNSName(dst []byte, ns string) []byte { return appendNSName(dst, ns) }

// DecodeNSName decodes a bare tenant-name payload.
func DecodeNSName(p []byte) (string, error) {
	ns, rest, err := decodeNSName(p)
	if err != nil {
		return "", err
	}
	if len(rest) != 0 {
		return "", fmt.Errorf("proto: %d trailing bytes after namespace name", len(rest))
	}
	return ns, nil
}

// NSStat is one tenant in a LISTNS reply: its name and live key count.
type NSStat struct {
	Name string
	Keys uint64
}

// AppendNSList appends an OpListNS reply: the server's per-tenant key
// quota (0: unlimited), a count, then each tenant's name and live key
// count. Entries must already be in canonical (byte-sorted) order —
// the server's listing is, by construction.
func AppendNSList(dst []byte, quota uint64, entries []NSStat) []byte {
	dst = binary.BigEndian.AppendUint64(dst, quota)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(entries)))
	for _, e := range entries {
		dst = appendNSName(dst, e.Name)
		dst = binary.BigEndian.AppendUint64(dst, e.Keys)
	}
	return dst
}

// DecodeNSList decodes an OpListNS reply. The count is validated
// against MaxListNS and every name against the remaining payload
// before allocating.
func DecodeNSList(p []byte) (quota uint64, entries []NSStat, err error) {
	if len(p) < 12 {
		return 0, nil, fmt.Errorf("proto: ns-list reply is %d bytes, want >= 12", len(p))
	}
	quota = binary.BigEndian.Uint64(p)
	n := binary.BigEndian.Uint32(p[8:])
	if n > MaxListNS {
		return 0, nil, fmt.Errorf("proto: ns-list reply claims %d namespaces, cap %d", n, MaxListNS)
	}
	rest := p[12:]
	entries = make([]NSStat, 0, n)
	for i := uint32(0); i < n; i++ {
		ns, after, err := decodeNSName(rest)
		if err != nil {
			return 0, nil, fmt.Errorf("proto: ns-list entry %d: %w", i, err)
		}
		if len(after) < 8 {
			return 0, nil, fmt.Errorf("proto: ns-list entry %d truncated before key count", i)
		}
		entries = append(entries, NSStat{Name: ns, Keys: binary.BigEndian.Uint64(after)})
		rest = after[8:]
	}
	if len(rest) != 0 {
		return 0, nil, fmt.Errorf("proto: %d trailing bytes in ns-list reply", len(rest))
	}
	return quota, entries, nil
}

// AppendShardHashesNS appends an OpShardHash reply with the committed
// namespace-name table attached: the standard seed/count/entry section,
// then (when names is non-empty) a name count and each name. The names
// let a replica discover the primary's tenants in one round; a reply
// for a SINGLE tenant's cell (per-namespace SHARDHASH request) uses the
// plain AppendShardHashes form, with the tenant's derived seed in the
// hseed field.
func AppendShardHashesNS(dst []byte, hseed uint64, entries []ShardHash, names []string) []byte {
	dst = AppendShardHashes(dst, hseed, entries)
	if len(names) == 0 {
		return dst
	}
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(names)))
	for _, ns := range names {
		dst = appendNSName(dst, ns)
	}
	return dst
}

// DecodeShardHashesNS decodes an OpShardHash reply, with or without the
// trailing namespace-name table (names is nil for the bare form, so
// pre-namespace payloads decode unchanged).
func DecodeShardHashesNS(p []byte) (hseed uint64, entries []ShardHash, names []string, err error) {
	if len(p) < 12 {
		return 0, nil, nil, fmt.Errorf("proto: shard-hash reply is %d bytes, want >= 12", len(p))
	}
	hseed = binary.BigEndian.Uint64(p)
	n := binary.BigEndian.Uint32(p[8:])
	if n > MaxSyncShards {
		return 0, nil, nil, fmt.Errorf("proto: shard-hash reply claims %d shards, cap %d", n, MaxSyncShards)
	}
	body := p[12:]
	if uint64(len(body)) < uint64(n)*40 {
		return 0, nil, nil, fmt.Errorf("proto: shard-hash reply of %d shards has %d payload bytes", n, len(body))
	}
	entries = make([]ShardHash, n)
	for i := range entries {
		e := body[i*40 : i*40+40]
		size := int64(binary.BigEndian.Uint64(e))
		if size < 0 {
			return 0, nil, nil, fmt.Errorf("proto: shard-hash entry %d has negative size", i)
		}
		entries[i].Size = size
		copy(entries[i].Hash[:], e[8:])
	}
	rest := body[uint64(n)*40:]
	if len(rest) == 0 {
		return hseed, entries, nil, nil
	}
	if len(rest) < 4 {
		return 0, nil, nil, fmt.Errorf("proto: shard-hash namespace table is %d bytes, want >= 4", len(rest))
	}
	cnt := binary.BigEndian.Uint32(rest)
	if cnt > MaxListNS {
		return 0, nil, nil, fmt.Errorf("proto: shard-hash reply claims %d namespaces, cap %d", cnt, MaxListNS)
	}
	rest = rest[4:]
	names = make([]string, 0, cnt)
	for i := uint32(0); i < cnt; i++ {
		ns, after, err := decodeNSName(rest)
		if err != nil {
			return 0, nil, nil, fmt.Errorf("proto: shard-hash namespace %d: %w", i, err)
		}
		names = append(names, ns)
		rest = after
	}
	if len(rest) != 0 {
		return 0, nil, nil, fmt.Errorf("proto: %d trailing bytes in shard-hash reply", len(rest))
	}
	return hseed, entries, names, nil
}

// AppendSyncReqNS appends an OpSync request addressing a namespace's
// cell: the standard 48-byte request plus the tenant name. An empty ns
// produces the bare 48-byte form (the default keyspace).
func AppendSyncReqNS(dst []byte, shard uint32, hash [32]byte, offset uint64, maxLen uint32, ns string) []byte {
	dst = AppendSyncReq(dst, shard, hash, offset, maxLen)
	if ns != "" {
		dst = appendNSName(dst, ns)
	}
	return dst
}

// DecodeSyncReqNS decodes an OpSync request, bare or namespaced (ns is
// "" for the default keyspace).
func DecodeSyncReqNS(p []byte) (shard uint32, hash [32]byte, offset uint64, maxLen uint32, ns string, err error) {
	if len(p) < 48 {
		return 0, hash, 0, 0, "", fmt.Errorf("proto: sync request is %d bytes, want >= 48", len(p))
	}
	shard = binary.BigEndian.Uint32(p)
	copy(hash[:], p[4:36])
	offset = binary.BigEndian.Uint64(p[36:])
	maxLen = binary.BigEndian.Uint32(p[44:])
	if len(p) == 48 {
		return shard, hash, offset, maxLen, "", nil
	}
	ns, rest, err := decodeNSName(p[48:])
	if err != nil {
		return 0, hash, 0, 0, "", err
	}
	if len(rest) != 0 {
		return 0, hash, 0, 0, "", fmt.Errorf("proto: %d trailing bytes in sync request", len(rest))
	}
	return shard, hash, offset, maxLen, ns, nil
}

// AppendError appends an OpError payload: the code plus a human-readable
// message.
func AppendError(dst []byte, code byte, msg string) []byte {
	dst = append(dst, code)
	return append(dst, msg...)
}

// DecodeError decodes an OpError payload.
func DecodeError(p []byte) (code byte, msg string, err error) {
	if len(p) < 1 {
		return 0, "", fmt.Errorf("proto: empty error payload")
	}
	return p[0], string(p[1:]), nil
}

// RemoteError is an OpError reply surfaced as a Go error by the client.
type RemoteError struct {
	Code byte
	Msg  string
}

// Error renders the remote error with its symbolic code name.
func (e *RemoteError) Error() string {
	return fmt.Sprintf("hidbd: %s: %s", ErrCodeName(e.Code), e.Msg)
}
