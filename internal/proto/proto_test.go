package proto

import (
	"bytes"
	"errors"
	"io"
	"math"
	"strings"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	frames := []Frame{
		{Ver: Version, Op: OpPing, ID: 0},
		{Ver: Version, Op: OpGet, ID: 1, Payload: AppendKey(nil, -42)},
		{Ver: Version, Op: OpPut, ID: math.MaxUint64, Payload: AppendKeyVal(nil, 7, -7)},
		{Ver: Version, Op: OpError, ID: 3, Payload: AppendError(nil, ErrCodeBusy, "full")},
	}
	var wire []byte
	for _, f := range frames {
		wire = AppendFrame(wire, f)
	}

	// Streaming reads.
	r := bytes.NewReader(wire)
	for i, want := range frames {
		got, err := ReadFrame(r, 0)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got.Ver != want.Ver || got.Op != want.Op || got.ID != want.ID ||
			!bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("frame %d: got %+v want %+v", i, got, want)
		}
	}
	if _, err := ReadFrame(r, 0); err != io.EOF {
		t.Fatalf("after last frame: %v, want EOF", err)
	}

	// Buffer decodes consume exactly the same boundaries.
	rest := wire
	for i, want := range frames {
		got, n, err := DecodeFrame(rest, 0)
		if err != nil {
			t.Fatalf("decode frame %d: %v", i, err)
		}
		if got.Op != want.Op || got.ID != want.ID || !bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("decode frame %d: got %+v want %+v", i, got, want)
		}
		rest = rest[n:]
	}
	if len(rest) != 0 {
		t.Fatalf("%d trailing bytes", len(rest))
	}
}

func TestFrameHostile(t *testing.T) {
	// A declared length below the header minimum.
	short := []byte{0, 0, 0, 5, 1, 1, 0, 0, 0, 0, 0, 0, 0, 0}
	if _, _, err := DecodeFrame(short, 0); err == nil || errors.Is(err, ErrShortFrame) {
		t.Fatalf("undersized length: %v", err)
	}
	// A declared length over the cap must fail BEFORE the body arrives.
	huge := []byte{0xFF, 0xFF, 0xFF, 0xFF, 1, 1}
	if _, _, err := DecodeFrame(huge, 0); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized length: %v", err)
	}
	if _, err := ReadFrame(bytes.NewReader(huge), 0); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized length (stream): %v", err)
	}
	// An incomplete frame asks for more bytes.
	whole := AppendFrame(nil, Frame{Ver: Version, Op: OpPing, ID: 9, Payload: []byte("abc")})
	for cut := 0; cut < len(whole); cut++ {
		if _, _, err := DecodeFrame(whole[:cut], 0); !errors.Is(err, ErrShortFrame) {
			t.Fatalf("cut %d: %v, want ErrShortFrame", cut, err)
		}
	}
}

func TestPayloadRoundTrips(t *testing.T) {
	if k, err := DecodeKey(AppendKey(nil, -5)); err != nil || k != -5 {
		t.Fatalf("key: %d %v", k, err)
	}
	if k, v, err := DecodeKeyVal(AppendKeyVal(nil, 1, -2)); err != nil || k != 1 || v != -2 {
		t.Fatalf("keyval: %d %d %v", k, v, err)
	}
	if b, err := DecodeBool(AppendBool(nil, true)); err != nil || !b {
		t.Fatalf("bool: %v %v", b, err)
	}
	if v, err := DecodeU64(AppendU64(nil, 99)); err != nil || v != 99 {
		t.Fatalf("u64: %d %v", v, err)
	}
	if v, err := DecodeU32(AppendU32(nil, 7)); err != nil || v != 7 {
		t.Fatalf("u32: %d %v", v, err)
	}
	if v, ep, ok, err := DecodeFound(AppendFound(nil, true, -9, 5)); err != nil || !ok || v != -9 || ep != 5 {
		t.Fatalf("found: %d %d %v %v", v, ep, ok, err)
	}
	if n, ep, err := DecodeLenReply(AppendLenReply(nil, 42, 6)); err != nil || n != 42 || ep != 6 {
		t.Fatalf("len reply: %d %d %v", n, ep, err)
	}
	hl := Health{ReadOnly: true, Promotions: 2, Epoch: 11, Hash: [32]byte{9, 8, 7}}
	if got, err := DecodeHealth(AppendHealth(nil, hl)); err != nil || got != hl {
		t.Fatalf("health: %+v %v", got, err)
	}

	items := []Item{{Key: 1, Val: 10}, {Key: -2, Val: 20}}
	kind, gotItems, gotKeys, err := DecodeBatch(AppendBatchPut(nil, items))
	if err != nil || kind != BatchPut || gotKeys != nil || len(gotItems) != 2 ||
		gotItems[1] != items[1] {
		t.Fatalf("batch put: %d %v %v %v", kind, gotItems, gotKeys, err)
	}
	keys := []int64{3, -4, 5}
	kind, gotItems, gotKeys, err = DecodeBatch(AppendBatchKeys(nil, BatchDel, keys))
	if err != nil || kind != BatchDel || gotItems != nil || len(gotKeys) != 3 || gotKeys[2] != 5 {
		t.Fatalf("batch del: %d %v %v %v", kind, gotItems, gotKeys, err)
	}

	vals, found, bep, err := DecodeBatchGetReply(AppendBatchGetReply(nil, []int64{7, 0}, []bool{true, false}, 8))
	if err != nil || len(vals) != 2 || vals[0] != 7 || !found[0] || found[1] || bep != 8 {
		t.Fatalf("batch get reply: %v %v %d %v", vals, found, bep, err)
	}

	lo, hi, max, err := DecodeRangeReq(AppendRangeReq(nil, -10, 10, 3))
	if err != nil || lo != -10 || hi != 10 || max != 3 {
		t.Fatalf("range req: %d %d %d %v", lo, hi, max, err)
	}
	gotItems, rep, more, err := DecodeRangeReply(AppendRangeReply(nil, items, true, 9))
	if err != nil || !more || len(gotItems) != 2 || gotItems[0] != items[0] || rep != 9 {
		t.Fatalf("range reply: %v %d %v %v", gotItems, rep, more, err)
	}

	code, msg, err := DecodeError(AppendError(nil, ErrCodeShutdown, "bye"))
	if err != nil || code != ErrCodeShutdown || msg != "bye" {
		t.Fatalf("error: %d %q %v", code, msg, err)
	}

	entries := []ShardHash{{Size: 100, Hash: [32]byte{1}}, {Size: 0, Hash: [32]byte{0xAA}}}
	hseed, gotEntries, err := DecodeShardHashes(AppendShardHashes(nil, 0xdead, entries))
	if err != nil || hseed != 0xdead || len(gotEntries) != 2 ||
		gotEntries[0] != entries[0] || gotEntries[1] != entries[1] {
		t.Fatalf("shard hashes: %x %v %v", hseed, gotEntries, err)
	}
	if _, e0, err := DecodeShardHashes(AppendShardHashes(nil, 1, nil)); err != nil || len(e0) != 0 {
		t.Fatalf("empty shard hashes: %v %v", e0, err)
	}

	sh, h, off, maxLen, err := DecodeSyncReq(AppendSyncReq(nil, 9, [32]byte{7, 7}, 1<<40, 512))
	if err != nil || sh != 9 || h != ([32]byte{7, 7}) || off != 1<<40 || maxLen != 512 {
		t.Fatalf("sync req: %d %x %d %d %v", sh, h[:2], off, maxLen, err)
	}
	data, more, err := DecodeSyncChunk(AppendSyncChunk(nil, true, []byte("bytes")))
	if err != nil || !more || string(data) != "bytes" {
		t.Fatalf("sync chunk: %q %v %v", data, more, err)
	}
	if data, more, err = DecodeSyncChunk(AppendSyncChunk(nil, false, nil)); err != nil || more || len(data) != 0 {
		t.Fatalf("empty sync chunk: %q %v %v", data, more, err)
	}

	k, v, exp, err := DecodeKeyValExp(AppendKeyValExp(nil, -7, 70, 1_900_000_000))
	if err != nil || k != -7 || v != 70 || exp != 1_900_000_000 {
		t.Fatalf("key-val-exp: %d %d %d %v", k, v, exp, err)
	}
	if ch, exp, err := DecodeTTLAck(AppendTTLAck(nil, true, 123)); err != nil || !ch || exp != 123 {
		t.Fatalf("ttl ack: %v %d %v", ch, exp, err)
	}
	if v, exp, ep, ok, err := DecodeFoundTTL(AppendFoundTTL(nil, true, -3, 456, 4)); err != nil || !ok || v != -3 || exp != 456 || ep != 4 {
		t.Fatalf("found-ttl: %d %d %d %v %v", v, exp, ep, ok, err)
	}
	if v, exp, ep, ok, err := DecodeFoundTTL(AppendFoundTTL(nil, false, 0, 0, 0)); err != nil || ok || v != 0 || exp != 0 || ep != 0 {
		t.Fatalf("absent found-ttl: %d %d %d %v %v", v, exp, ep, ok, err)
	}
}

func TestHostilePayloads(t *testing.T) {
	// A batch count that promises more entries than the payload holds
	// must be rejected before any allocation sized by the count.
	lie := []byte{BatchPut, 0xFF, 0xFF, 0xFF, 0xFF, 0, 0}
	if _, _, _, err := DecodeBatch(lie); err == nil {
		t.Fatal("batch count lie accepted")
	}
	lie = append([]byte{BatchGet, 0, 0, 0, 2}, make([]byte, 8)...) // count 2, one key
	if _, _, _, err := DecodeBatch(lie); err == nil {
		t.Fatal("truncated batch accepted")
	}
	if _, _, _, err := DecodeBatchGetReply(append(make([]byte, 8), 0xFF, 0xFF, 0xFF, 0xFF)); err == nil {
		t.Fatal("batch-get reply count lie accepted")
	}
	if _, _, _, err := DecodeRangeReply(append(make([]byte, 9), 0xFF, 0xFF, 0xFF, 0xFF)); err == nil {
		t.Fatal("range reply count lie accepted")
	}
	if _, _, _, err := DecodeBatch([]byte{9, 0, 0, 0, 0}); err == nil {
		t.Fatal("unknown batch kind accepted")
	}
	// A shard-hash count that promises more entries than the payload
	// holds, or more than the protocol ceiling, must be rejected before
	// any count-sized allocation.
	lie = append(make([]byte, 8), 0xFF, 0xFF, 0xFF, 0xFF)
	if _, _, err := DecodeShardHashes(lie); err == nil {
		t.Fatal("shard-hash count lie accepted")
	}
	overCap := append(make([]byte, 8), 0x00, 0x01, 0x00, 0x00) // 65536 > MaxSyncShards
	overCap = append(overCap, make([]byte, 65536*40)...)
	if _, _, err := DecodeShardHashes(overCap); err == nil {
		t.Fatal("shard-hash count over MaxSyncShards accepted")
	}
	if _, _, _, _, err := DecodeSyncReq(make([]byte, 47)); err == nil {
		t.Fatal("short sync request accepted")
	}
	if _, _, err := DecodeSyncChunk(nil); err == nil {
		t.Fatal("empty sync chunk accepted")
	}
	if _, _, err := DecodeSyncChunk([]byte{2}); err == nil {
		t.Fatal("bad sync-chunk flag accepted")
	}
	// TTL payloads: wrong sizes and negative epochs are rejected.
	if _, _, _, err := DecodeKeyValExp(make([]byte, 16)); err == nil {
		t.Fatal("short put-ttl request accepted")
	}
	if _, _, _, err := DecodeKeyValExp(AppendKeyValExp(nil, 1, 2, -3)); err == nil {
		t.Fatal("negative expiry accepted")
	}
	if _, _, err := DecodeTTLAck([]byte{2, 0, 0, 0, 0, 0, 0, 0, 0}); err == nil {
		t.Fatal("bad put-ttl reply flag accepted")
	}
	if _, _, err := DecodeTTLAck(AppendTTLAck(nil, true, -1)); err == nil {
		t.Fatal("negative expiry in put-ttl reply accepted")
	}
	if _, _, _, _, err := DecodeFoundTTL(make([]byte, 9)); err == nil {
		t.Fatal("short get-ttl reply accepted")
	}
	if _, _, _, _, err := DecodeFoundTTL(AppendFoundTTL(nil, true, 1, -9, 0)); err == nil {
		t.Fatal("negative expiry in get-ttl reply accepted")
	}
	if _, err := DecodeHealth(make([]byte, 48)); err == nil {
		t.Fatal("short health reply accepted")
	}
	if _, err := DecodeHealth(append([]byte{2}, make([]byte, 48)...)); err == nil {
		t.Fatal("bad health role flag accepted")
	}
}

func TestNames(t *testing.T) {
	if got := OpName(OpCheckpoint); got != "OpCheckpoint" {
		t.Fatalf("OpName: %q", got)
	}
	if got := OpName(0x55); !strings.Contains(got, "0x55") {
		t.Fatalf("OpName unknown: %q", got)
	}
	if got := ErrCodeName(ErrCodeTooLarge); got != "ErrCodeTooLarge" {
		t.Fatalf("ErrCodeName: %q", got)
	}
	e := &RemoteError{Code: ErrCodeBusy, Msg: "connection limit"}
	if !strings.Contains(e.Error(), "ErrCodeBusy") {
		t.Fatalf("RemoteError: %q", e.Error())
	}
}
