// Package proto defines hidbd's wire protocol: a length-prefixed
// binary framing with per-request ids, the opcode and error-code
// tables, and the payload codecs shared by the server
// (repro/internal/server) and the client (repro/client).
//
// Every message — request or reply — is one frame:
//
//	u32 BE  length   byte count of the rest of the frame (10 + payload)
//	u8      version  protocol version, currently 1
//	u8      opcode   request opcode, reply (opcode|FlagReply), or OpError
//	u64 BE  id       request id, echoed verbatim in the reply
//	...     payload  opcode-specific, at most MaxPayload bytes
//
// The id makes connections pipelined: a client may have any number of
// requests in flight on one connection, and replies carry the id of the
// request they answer — they are NOT guaranteed to arrive in request
// order (the server answers reads inline and batches writes through a
// coalescer). Per-connection ordering of effects is still program
// order: see docs/PROTOCOL.md for the exact contract.
//
// The decoders treat every input as hostile (a frame arrives off the
// network): they must reject malformed bytes with an error — never
// panic, never allocate memory disproportionate to the input. Counts
// are validated against the actual payload length before any
// allocation. FuzzDecodeFrame holds them to that contract.
package proto
