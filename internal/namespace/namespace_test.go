package namespace

import (
	"strings"
	"testing"

	"repro/internal/expiry"
	"repro/internal/shard"
)

func TestValidateName(t *testing.T) {
	for _, ok := range []string{"a", "tenant-01", "acme/eu", strings.Repeat("x", MaxName)} {
		if err := ValidateName(ok); err != nil {
			t.Errorf("ValidateName(%q) = %v, want nil", ok, err)
		}
	}
	for _, bad := range []string{"", strings.Repeat("x", MaxName+1), "nul\x00byte"} {
		if err := ValidateName(bad); err == nil {
			t.Errorf("ValidateName(%q) accepted", bad)
		}
	}
}

func TestDeriveSeedDeterministicAndDistinct(t *testing.T) {
	const root = uint64(0xfeedface)
	if DeriveSeed(root, "acme") != DeriveSeed(root, "acme") {
		t.Fatal("derivation is not deterministic")
	}
	seen := map[uint64]string{}
	for _, name := range []string{"acme", "acme2", "acm", "a", "b", "tenant-00", "tenant-01"} {
		s := DeriveSeed(root, name)
		if prev, dup := seen[s]; dup {
			t.Fatalf("tenants %q and %q derive the same seed", prev, name)
		}
		seen[s] = name
	}
	// A different root seed must shift every tenant's seed: layouts are
	// not portable across databases.
	for _, name := range []string{"acme", "tenant-00"} {
		if DeriveSeed(root, name) == DeriveSeed(root+1, name) {
			t.Errorf("tenant %q derives the same seed under different roots", name)
		}
	}
}

func TestNewCellMirrorsConfigAndRoutesUnderDerivedSeed(t *testing.T) {
	cfg := shard.DefaultConfig(4)
	clock := expiry.NewManual(100)
	c, err := NewCell("acme", 42, cfg, clock)
	if err != nil {
		t.Fatal(err)
	}
	if c.Store.NumShards() != 4 {
		t.Errorf("cell has %d shards, want 4", c.Store.NumShards())
	}
	if c.Store.Clock() != clock {
		t.Error("cell store did not adopt the clock")
	}
	// The cell's routing seed must be a pure function of the derived
	// seed: an independently built store under the same derived seed
	// routes identically.
	ref, err := shard.NewWithConfig(cfg, DeriveSeed(42, "acme"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if c.Store.RoutingSeed() != ref.RoutingSeed() {
		t.Error("cell routing seed is not a pure function of the derived seed")
	}
	// And two tenants must not share a routing seed (uncorrelated layouts).
	other, err := NewCell("globex", 42, cfg, clock)
	if err != nil {
		t.Fatal(err)
	}
	if other.Store.RoutingSeed() == c.Store.RoutingSeed() {
		t.Error("two tenants share a routing seed")
	}

	if _, err := NewCell("", 42, cfg, clock); err == nil {
		t.Error("NewCell accepted an empty name")
	}
}

func TestRegistryCanonicalOrderAndDrop(t *testing.T) {
	r := NewRegistry()
	cfg := shard.DefaultConfig(1)
	mk := func(name string) func() (*Cell, error) {
		return func() (*Cell, error) { return NewCell(name, 7, cfg, nil) }
	}
	// Insert in non-sorted order; Snapshot must come back byte-sorted,
	// independent of creation order (LISTNS canonical-order contract).
	for _, name := range []string{"zeta", "alpha", "mid"} {
		if _, err := r.GetOrCreate(name, mk(name)); err != nil {
			t.Fatal(err)
		}
	}
	got := r.Snapshot()
	want := []string{"alpha", "mid", "zeta"}
	if len(got) != len(want) {
		t.Fatalf("snapshot has %d cells, want %d", len(got), len(want))
	}
	for i, c := range got {
		if c.Name != want[i] {
			t.Fatalf("snapshot order %v, want %v", got, want)
		}
	}

	c1, _ := r.GetOrCreate("alpha", mk("alpha"))
	c2 := r.Get("alpha")
	if c1 != c2 {
		t.Error("GetOrCreate did not return the existing cell")
	}
	if !r.Drop("alpha") || r.Drop("alpha") {
		t.Error("Drop existence reporting is wrong")
	}
	if r.Get("alpha") != nil {
		t.Error("dropped cell still resolvable")
	}
	if r.Len() != 2 {
		t.Errorf("Len = %d, want 2", r.Len())
	}

	r.ReplaceAll(nil)
	if r.Len() != 0 {
		t.Error("ReplaceAll(nil) did not empty the registry")
	}
}
