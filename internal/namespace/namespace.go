// Package namespace provides the multi-tenant layer's cell model: each
// tenant gets its own (dictionary, expiry-index) store — a cell —
// routed under a seed derived one-way from the database's persisted
// routing seed and the tenant's name.
//
// The derivation is the tenant-granularity version of the paper's
// anti-persistence argument. Because a cell's canonical images are a
// pure function of (cell contents, derived seed), and the derived seed
// is a pure function of (root seed, tenant name):
//
//   - two databases with the same root seed and the same per-tenant
//     contents commit byte-identical directories, whatever tenant
//     creation/write/drop histories produced them;
//   - a dropped tenant's cell files are exactly a set the next
//     checkpoint no longer references, so the standard sweep wipes
//     them and the directory becomes byte-identical to one where the
//     tenant never existed;
//   - tenants cannot correlate each other's layout: the derivation is
//     HMAC-SHA256, so no tenant can compute (or verify a guess of)
//     another tenant's routing seed from its own.
//
// The derived seed — not the name — addresses the cell's files on
// disk, so tenant names never appear in the directory listing; the
// only place a name is persisted is the manifest, which the drop
// checkpoint atomically replaces.
package namespace

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/expiry"
	"repro/internal/shard"
)

// MaxName bounds tenant-name length in bytes. It keeps names inside
// one wire frame alongside their payload and bounds manifest growth.
const MaxName = 128

// derivationSalt versions the seed derivation: changing the scheme
// means changing the salt, so old and new derivations can never
// silently collide.
const derivationSalt = "hidb/ns/v1"

// ValidateName reports whether name is a legal tenant name: 1 to
// MaxName bytes, no NUL (NUL would let a name embed the file-blob
// separators forensic scans rely on, and no legitimate tenant name
// contains it).
func ValidateName(name string) error {
	if len(name) == 0 {
		return fmt.Errorf("namespace: empty name")
	}
	if len(name) > MaxName {
		return fmt.Errorf("namespace: name is %d bytes, max %d", len(name), MaxName)
	}
	if strings.IndexByte(name, 0) >= 0 {
		return fmt.Errorf("namespace: name contains NUL")
	}
	return nil
}

// DeriveSeed derives the tenant's store-construction seed from the
// database's persisted routing seed and the tenant name, HKDF-style:
// extract a PRK from the root seed under a fixed salt, then expand it
// with the tenant name. The output is uniform in the name and one-way
// in both inputs: the seed reveals neither the root seed nor anything
// about other tenants' seeds.
func DeriveSeed(rootHseed uint64, name string) uint64 {
	var root [8]byte
	binary.BigEndian.PutUint64(root[:], rootHseed)
	ext := hmac.New(sha256.New, []byte(derivationSalt))
	ext.Write(root[:])
	prk := ext.Sum(nil)
	exp := hmac.New(sha256.New, prk)
	exp.Write([]byte(name))
	exp.Write([]byte{0x01})
	okm := exp.Sum(nil)
	return binary.BigEndian.Uint64(okm[:8])
}

// Cell is one tenant's store: the (data dictionary, expiry index) pair
// sharded exactly like the default keyspace, plus the checkpoint
// bookkeeping the durable layer keeps per cell.
type Cell struct {
	// Name is the tenant name. It is wire and manifest state only —
	// never part of a file name or an image byte.
	Name string
	// Seed is the derived construction seed (DeriveSeed of the root
	// routing seed and Name). The cell's persisted routing seed — the
	// one that addresses its files — is the store's RoutingSeed().
	Seed uint64
	// Store holds the tenant's contents.
	Store *shard.Store
	// CPVersions[i] is shard i's version counter at the moment its
	// committed image was snapshotted (nil: never committed). Owned by
	// the durable layer's checkpoint lock.
	CPVersions []uint64
	// Committed records whether THIS cell incarnation's entry has ever
	// landed in a committed manifest. The checkpoint engine may reuse a
	// prior manifest entry for a version-clean shard only when it is
	// set: a freshly (re)created cell shares its name — and therefore
	// its manifest slot — with any dropped predecessor, and its zeroed
	// version floors would otherwise match the predecessor's entry and
	// resurrect dropped data. Owned by the durable layer's checkpoint
	// lock.
	Committed bool
}

// NewCell builds an empty cell for name under the given root routing
// seed, mirroring the default store's shard count and dictionary
// constants so per-tenant images stay structurally canonical.
func NewCell(name string, rootHseed uint64, cfg shard.Config, clock expiry.Clock) (*Cell, error) {
	if err := ValidateName(name); err != nil {
		return nil, err
	}
	seed := DeriveSeed(rootHseed, name)
	st, err := shard.NewWithConfig(cfg, seed, nil)
	if err != nil {
		return nil, fmt.Errorf("namespace: cell %q: %w", name, err)
	}
	st.SetClock(clock)
	return &Cell{Name: name, Seed: seed, Store: st}, nil
}

// Registry is the live set of cells, keyed by tenant name. All methods
// are safe for concurrent use. Listing order is always byte-sorted by
// name — canonical, never creation order, so nothing about the order
// tenants arrived in is observable anywhere a listing flows.
type Registry struct {
	mu    sync.RWMutex
	cells map[string]*Cell
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{cells: map[string]*Cell{}}
}

// Get returns the named cell, or nil.
func (r *Registry) Get(name string) *Cell {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.cells[name]
}

// GetOrCreate returns the named cell, building it with mk under the
// write lock if absent. Exactly one builder runs per missing name.
func (r *Registry) GetOrCreate(name string, mk func() (*Cell, error)) (*Cell, error) {
	r.mu.RLock()
	c := r.cells[name]
	r.mu.RUnlock()
	if c != nil {
		return c, nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c := r.cells[name]; c != nil {
		return c, nil
	}
	c, err := mk()
	if err != nil {
		return nil, err
	}
	r.cells[name] = c
	return c, nil
}

// Put installs (or replaces) a cell — the recovery path.
func (r *Registry) Put(c *Cell) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.cells[c.Name] = c
}

// Drop removes the named cell and reports whether it existed. The
// cell's committed files are reclaimed by the next checkpoint's sweep;
// the registry owns only the in-memory state.
func (r *Registry) Drop(name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, ok := r.cells[name]
	delete(r.cells, name)
	return ok
}

// Take removes and returns the named cell (nil if absent) — the
// drop-with-restore path: a caller that must undo a drop whose erasure
// checkpoint failed hands the same cell back to Put, CPVersions and
// committed-state bookkeeping intact.
func (r *Registry) Take(name string) *Cell {
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.cells[name]
	delete(r.cells, name)
	return c
}

// Len returns the number of live cells.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.cells)
}

// Snapshot returns the cells byte-sorted by name.
func (r *Registry) Snapshot() []*Cell {
	r.mu.RLock()
	out := make([]*Cell, 0, len(r.cells))
	for _, c := range r.cells {
		out = append(out, c)
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ReplaceAll swaps the entire cell set — the checkpoint-install path,
// where a replica adopts the primary's committed tenant set wholesale.
func (r *Registry) ReplaceAll(cells []*Cell) {
	next := make(map[string]*Cell, len(cells))
	for _, c := range cells {
		next[c.Name] = c
	}
	r.mu.Lock()
	r.cells = next
	r.mu.Unlock()
}
