// Package xrand provides a small, fast, deterministic pseudo-random number
// generator used by every randomized structure in this repository.
//
// All of the paper's structures (the HI PMA's balance elements, the WHI
// dynamic-array sizes, skip-list promotions) consume randomness; for the
// experiments to be reproducible, every structure takes an explicit *Source
// seeded by the caller. The generator is splitmix64 feeding xoshiro256**,
// the construction recommended by Blackman & Vigna; it is not
// cryptographically secure, which is fine: the paper's adversary and
// observer are both oblivious (§2.3), so statistical quality is what
// matters.
package xrand

import "math/bits"

// Source is a deterministic pseudo-random source. It is NOT safe for
// concurrent use; each goroutine should own its own Source.
type Source struct {
	s [4]uint64
}

// New returns a Source seeded from seed via splitmix64 so that nearby seeds
// yield uncorrelated streams.
func New(seed uint64) *Source {
	var src Source
	sm := seed
	next := func() uint64 {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := range src.s {
		src.s[i] = next()
	}
	// Avoid the all-zero state, which is a fixed point of xoshiro.
	if src.s[0]|src.s[1]|src.s[2]|src.s[3] == 0 {
		src.s[0] = 0x9e3779b97f4a7c15
	}
	return &src
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Source) Uint64() uint64 {
	s := &r.s
	result := bits.RotateLeft64(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = bits.RotateLeft64(s[3], 45)
	return result
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn called with n <= 0")
	}
	return int(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniform integer in [0, n) using Lemire's
// multiply-shift rejection method. It panics if n == 0.
func (r *Source) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("xrand: Uint64n called with n == 0")
	}
	// Lemire's nearly-divisionless method.
	hi, lo := bits.Mul64(r.Uint64(), n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			hi, lo = bits.Mul64(r.Uint64(), n)
		}
	}
	return hi
}

// IntRange returns a uniform integer in [lo, hi] inclusive. It panics if
// hi < lo.
func (r *Source) IntRange(lo, hi int) int {
	if hi < lo {
		panic("xrand: IntRange with hi < lo")
	}
	return lo + r.Intn(hi-lo+1)
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bernoulli returns true with probability num/den. It panics unless
// 0 <= num <= den and den > 0.
func (r *Source) Bernoulli(num, den uint64) bool {
	if den == 0 || num > den {
		panic("xrand: Bernoulli with invalid probability")
	}
	if num == 0 {
		return false
	}
	return r.Uint64n(den) < num
}

// Geometric returns the number of consecutive successes before the first
// failure when each trial succeeds with probability num/den — i.e. the
// skip-list level of an element promoted with probability num/den. The
// result is capped at max to bound pathological streaks.
func (r *Source) Geometric(num, den uint64, max int) int {
	level := 0
	for level < max && r.Bernoulli(num, den) {
		level++
	}
	return level
}

// Perm fills out with a uniform random permutation of [0, len(out)).
func (r *Source) Perm(out []int) {
	for i := range out {
		out[i] = i
	}
	for i := len(out) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		out[i], out[j] = out[j], out[i]
	}
}

// Split returns a new Source whose stream is independent of r's future
// output, for handing to a sub-structure.
func (r *Source) Split() *Source {
	return New(r.Uint64())
}
