package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical outputs", same)
	}
}

func TestZeroSeedNotStuck(t *testing.T) {
	r := New(0)
	var x uint64
	for i := 0; i < 10; i++ {
		x |= r.Uint64()
	}
	if x == 0 {
		t.Fatal("seed 0 produced all-zero output")
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(7)
	for n := 1; n <= 64; n++ {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntRange(t *testing.T) {
	r := New(9)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.IntRange(5, 9)
		if v < 5 || v > 9 {
			t.Fatalf("IntRange(5,9) = %d", v)
		}
		seen[v] = true
	}
	for v := 5; v <= 9; v++ {
		if !seen[v] {
			t.Errorf("value %d never produced", v)
		}
	}
}

func TestIntnUniformity(t *testing.T) {
	// Coarse chi-square check that Intn(10) is roughly uniform.
	r := New(1234)
	const n, buckets = 100000, 10
	var counts [buckets]int
	for i := 0; i < n; i++ {
		counts[r.Intn(buckets)]++
	}
	expected := float64(n) / buckets
	chi2 := 0.0
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	// 9 degrees of freedom; 99.9th percentile is ~27.9.
	if chi2 > 27.9 {
		t.Fatalf("chi2 = %v, suspiciously non-uniform", chi2)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	sum := 0.0
	for i := 0; i < 100000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
		sum += f
	}
	mean := sum / 100000
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("mean %v far from 0.5", mean)
	}
}

func TestBernoulli(t *testing.T) {
	r := New(5)
	hits := 0
	const n = 200000
	for i := 0; i < n; i++ {
		if r.Bernoulli(1, 4) {
			hits++
		}
	}
	p := float64(hits) / n
	if math.Abs(p-0.25) > 0.01 {
		t.Fatalf("Bernoulli(1/4) frequency %v", p)
	}
	if r.Bernoulli(0, 10) {
		t.Fatal("Bernoulli(0, 10) returned true")
	}
}

func TestGeometricMean(t *testing.T) {
	// With success probability 1/2 the expected level is 1.
	r := New(11)
	sum := 0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Geometric(1, 2, 64)
	}
	mean := float64(sum) / n
	if math.Abs(mean-1.0) > 0.05 {
		t.Fatalf("Geometric(1/2) mean %v, want ~1", mean)
	}
}

func TestGeometricCap(t *testing.T) {
	r := New(13)
	for i := 0; i < 1000; i++ {
		if lv := r.Geometric(9, 10, 5); lv > 5 {
			t.Fatalf("Geometric exceeded cap: %d", lv)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(17)
	if err := quick.Check(func(n uint8) bool {
		m := int(n%64) + 1
		out := make([]int, m)
		r.Perm(out)
		seen := make([]bool, m)
		for _, v := range out {
			if v < 0 || v >= m || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSplitIndependence(t *testing.T) {
	r := New(23)
	a := r.Split()
	b := r.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("split sources produced %d identical outputs", same)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = r.Uint64()
	}
	_ = sink
}

func BenchmarkIntn(b *testing.B) {
	r := New(1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink = r.Intn(1000)
	}
	_ = sink
}
