// Package reservoir implements reservoir sampling with deletes (§3.2 of
// the paper): maintain a uniformly random "leader" of a dynamic set
// under insertions and deletions by an oblivious adversary, with a
// reservoir of size one. Lemma 5 (Vitter [62]) gives the invariant: at
// every time step, each of the n_t elements is the leader with
// probability exactly 1/n_t.
//
// The HI PMA uses this to maintain each range's balance element within
// its candidate set; the candidate set has *fixed* size between rebuilds,
// so the common transition there is the simultaneous leave/enter handled
// by Slide.
package reservoir

import "repro/internal/xrand"

// Leader tracks the uniformly random leader of a set of n elements. The
// leader is identified by an opaque int position that the caller keeps
// consistent with its own set representation. The zero value is an empty
// set; callers must supply the RNG via Init or New.
type Leader struct {
	rng *xrand.Source
	n   int
	pos int // caller-defined identifier of the current leader; -1 if empty
}

// New returns a Leader over an initially empty set.
func New(rng *xrand.Source) *Leader {
	return &Leader{rng: rng, n: 0, pos: -1}
}

// NewOver returns a Leader over a set of n existing elements with
// positions 0..n-1, choosing the initial leader uniformly.
func NewOver(n int, rng *xrand.Source) *Leader {
	l := &Leader{rng: rng, n: n, pos: -1}
	if n > 0 {
		l.pos = rng.Intn(n)
	}
	return l
}

// N returns the number of elements in the set.
func (l *Leader) N() int { return l.n }

// Pos returns the caller-defined position of the current leader, or -1
// if the set is empty.
func (l *Leader) Pos() int { return l.pos }

// Insert records the arrival of a new element identified by pos. Per
// Lemma 5, the newcomer becomes leader with probability 1/n_t where n_t
// counts it. It reports whether the leader changed.
func (l *Leader) Insert(pos int) (changed bool) {
	l.n++
	if l.rng.Intn(l.n) == 0 {
		l.pos = pos
		return true
	}
	return false
}

// Delete records the departure of the element at position pos. If the
// leader departed, a replacement must be chosen by the caller (who knows
// the surviving positions) via Reseat; Delete reports whether that is
// required. wasLeader must reflect the caller's identity check, since
// positions may be reused.
func (l *Leader) Delete(wasLeader bool) (needReseat bool) {
	if l.n == 0 {
		panic("reservoir: Delete on empty set")
	}
	l.n--
	if wasLeader {
		l.pos = -1
		return l.n > 0
	}
	return false
}

// Reseat chooses a fresh leader uniformly among n survivors and records
// the caller-translated position: the caller passes a function mapping a
// uniform index in [0, n) to its own position space.
func (l *Leader) Reseat(translate func(int) int) {
	if l.n == 0 {
		l.pos = -1
		return
	}
	l.pos = translate(l.rng.Intn(l.n))
}

// Slide handles the PMA's fixed-size-window transition: one element
// leaves and one enters simultaneously (the candidate-set window shifted
// by one, or an insert pushed one element out). leavingIsLeader is the
// caller's identity check for the departing element; enterPos identifies
// the arriving element.
//
// Returns (newLeaderPos, changed, needReseat):
//   - If the departing element was the leader, needReseat is true and
//     the caller must call Reseat (uniform choice over the new window).
//   - Otherwise the newcomer becomes leader with probability 1/n,
//     preserving uniformity exactly (see TestSlideUniform).
func (l *Leader) Slide(leavingIsLeader bool, enterPos int) (changed, needReseat bool) {
	if l.n == 0 {
		panic("reservoir: Slide on empty set")
	}
	if leavingIsLeader {
		l.pos = -1
		return true, true
	}
	if l.rng.Intn(l.n) == 0 {
		l.pos = enterPos
		return true, false
	}
	return false, false
}

// SetPos overrides the leader position identifier without changing the
// distribution — used when the caller renumbers its positions (e.g.
// ranks shift after an insert below the leader).
func (l *Leader) SetPos(pos int) { l.pos = pos }
