package reservoir

import (
	"testing"

	"repro/internal/xrand"
)

// chi2Uniform returns the chi-square statistic of counts against a
// uniform distribution over len(counts) buckets.
func chi2Uniform(counts []int, total int) float64 {
	expected := float64(total) / float64(len(counts))
	chi2 := 0.0
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	return chi2
}

// TestLemma5InsertOnly: after inserting m elements one by one, each is
// leader with probability exactly 1/m (checked empirically).
func TestLemma5InsertOnly(t *testing.T) {
	const m, trials = 8, 80000
	counts := make([]int, m)
	for trial := 0; trial < trials; trial++ {
		l := New(xrand.New(uint64(trial) + 1))
		for i := 0; i < m; i++ {
			l.Insert(i)
		}
		counts[l.Pos()]++
	}
	// 7 dof, 99.9th percentile ~ 24.3.
	if chi2 := chi2Uniform(counts, trials); chi2 > 24.3 {
		t.Fatalf("leader not uniform after inserts: chi2 = %v, counts = %v", chi2, counts)
	}
}

// TestLemma5WithDeletes: an adversarial insert/delete schedule still
// leaves the leader uniform over the survivors.
func TestLemma5WithDeletes(t *testing.T) {
	// Schedule: insert 0..9, delete positions 0..4 (front-loaded
	// deletions — maximally history-revealing if leadership leaked).
	const trials = 60000
	counts := make([]int, 5) // survivors are 5..9, remapped to 0..4
	for trial := 0; trial < trials; trial++ {
		rng := xrand.New(uint64(trial) + 7)
		l := New(rng)
		alive := []int{}
		for i := 0; i < 10; i++ {
			l.Insert(i)
			alive = append(alive, i)
		}
		for del := 0; del < 5; del++ {
			// Delete element with position value del.
			idx := -1
			for j, v := range alive {
				if v == del {
					idx = j
					break
				}
			}
			alive = append(alive[:idx], alive[idx+1:]...)
			if l.Delete(l.Pos() == del) {
				l.Reseat(func(i int) int { return alive[i] })
			}
		}
		counts[l.Pos()-5]++
	}
	// 4 dof, 99.9th percentile ~ 18.5.
	if chi2 := chi2Uniform(counts, trials); chi2 > 18.5 {
		t.Fatalf("leader not uniform after deletes: chi2 = %v, counts = %v", chi2, counts)
	}
}

// TestSlideUniform: the fixed-window simultaneous leave/enter transition
// preserves uniformity — the PMA's candidate-set case (§3.4).
func TestSlideUniform(t *testing.T) {
	const m, slides, trials = 6, 9, 60000
	// Window holds values [s, s+m); after k slides the window is [k, k+m).
	counts := make([]int, m)
	for trial := 0; trial < trials; trial++ {
		rng := xrand.New(uint64(trial) + 13)
		l := NewOver(m, rng) // window [0, m), leader pos = value
		lo := 0
		for k := 0; k < slides; k++ {
			leaving := lo
			entering := lo + m
			changed, reseat := l.Slide(l.Pos() == leaving, entering)
			_ = changed
			if reseat {
				base := lo + 1
				l.Reseat(func(i int) int { return base + i })
			}
			lo++
		}
		counts[l.Pos()-lo]++
	}
	// 5 dof, 99.9th percentile ~ 20.5.
	if chi2 := chi2Uniform(counts, trials); chi2 > 20.5 {
		t.Fatalf("leader not uniform after slides: chi2 = %v, counts = %v", chi2, counts)
	}
}

func TestNewOver(t *testing.T) {
	const m, trials = 5, 50000
	counts := make([]int, m)
	for trial := 0; trial < trials; trial++ {
		l := NewOver(m, xrand.New(uint64(trial)*2+1))
		if l.N() != m {
			t.Fatalf("N = %d", l.N())
		}
		counts[l.Pos()]++
	}
	if chi2 := chi2Uniform(counts, trials); chi2 > 18.5 {
		t.Fatalf("initial leader not uniform: chi2 = %v", chi2)
	}
}

func TestEmptySet(t *testing.T) {
	l := New(xrand.New(1))
	if l.Pos() != -1 || l.N() != 0 {
		t.Fatal("empty set should have pos -1, n 0")
	}
	l.Insert(42)
	if l.Pos() != 42 {
		t.Fatal("single element must be leader")
	}
	if need := l.Delete(true); need {
		t.Fatal("deleting the only element should not need reseat")
	}
	if l.N() != 0 {
		t.Fatalf("N = %d after delete", l.N())
	}
}

func TestDeleteEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	New(xrand.New(1)).Delete(false)
}

func TestSlideEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	New(xrand.New(1)).Slide(false, 0)
}

func TestReseatEmpty(t *testing.T) {
	l := New(xrand.New(1))
	l.Reseat(func(i int) int { t.Fatal("translate called on empty"); return 0 })
	if l.Pos() != -1 {
		t.Fatal("reseat on empty should keep pos -1")
	}
}

func TestSetPos(t *testing.T) {
	l := NewOver(3, xrand.New(9))
	l.SetPos(77)
	if l.Pos() != 77 {
		t.Fatal("SetPos did not stick")
	}
}
