package shard

import (
	"math/rand"
	"testing"
)

// TestApplyBatchDifferential checks a mixed put/delete batch against the
// equivalent sequence of point operations on a reference map, including
// the per-op changed flags.
func TestApplyBatchDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		s, err := New(8, uint64(trial), nil)
		if err != nil {
			t.Fatal(err)
		}
		ref := map[int64]int64{}
		// Preload some keys.
		for i := 0; i < 50; i++ {
			k := int64(rng.Intn(100))
			v := rng.Int63n(1000)
			s.Put(k, v)
			ref[k] = v
		}
		ops := make([]Op, 120)
		wantChanged := make([]bool, len(ops))
		wantN := 0
		for i := range ops {
			k := int64(rng.Intn(100))
			if rng.Intn(3) == 0 {
				ops[i] = Op{Key: k, Delete: true}
				if _, ok := ref[k]; ok {
					wantChanged[i] = true
					wantN++
					delete(ref, k)
				}
			} else {
				v := rng.Int63n(1000)
				ops[i] = Op{Key: k, Val: v}
				if _, ok := ref[k]; !ok {
					wantChanged[i] = true
					wantN++
				}
				ref[k] = v
			}
		}
		changed := make([]bool, len(ops))
		n, err := s.ApplyBatch(ops, changed)
		if err != nil {
			t.Fatal(err)
		}
		if n != wantN {
			t.Fatalf("trial %d: %d changed, want %d", trial, n, wantN)
		}
		for i := range changed {
			if changed[i] != wantChanged[i] {
				t.Fatalf("trial %d: op %d (%+v) changed=%v want %v",
					trial, i, ops[i], changed[i], wantChanged[i])
			}
		}
		if s.Len() != len(ref) {
			t.Fatalf("trial %d: len %d, want %d", trial, s.Len(), len(ref))
		}
		for k, v := range ref {
			if got, ok := s.Get(k); !ok || got != v {
				t.Fatalf("trial %d: key %d = %d,%v, want %d", trial, k, got, ok, v)
			}
		}
		if err := s.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestApplyBatchOrder pins same-key ordering: within one batch, a put
// then a delete of the same key must leave the key absent, and the
// reverse must leave it present — exactly like point ops.
func TestApplyBatchOrder(t *testing.T) {
	s, err := New(4, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	changed := make([]bool, 4)
	n, err := s.ApplyBatch([]Op{
		{Key: 1, Val: 10},      // insert: changed
		{Key: 1, Delete: true}, // delete it: changed
		{Key: 2, Delete: true}, // absent: unchanged
		{Key: 2, Val: 20},      // insert: changed
	}, changed)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("n = %d, want 3", n)
	}
	want := []bool{true, true, false, true}
	for i := range want {
		if changed[i] != want[i] {
			t.Fatalf("changed = %v, want %v", changed, want)
		}
	}
	if s.Has(1) || !s.Has(2) {
		t.Fatalf("final state wrong: has(1)=%v has(2)=%v", s.Has(1), s.Has(2))
	}
}

// TestApplyBatchVersions checks that only touched shards bump their
// version counters, and untouched ones stay checkpoint-clean.
func TestApplyBatchVersions(t *testing.T) {
	s, err := New(8, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	before := make([]uint64, s.NumShards())
	for i := range before {
		before[i] = s.ShardVersion(i)
	}
	key := int64(12345)
	if _, err := s.ApplyBatch([]Op{{Key: key, Val: 1}}, nil); err != nil {
		t.Fatal(err)
	}
	touched := s.ShardOf(key)
	for i := range before {
		moved := s.ShardVersion(i) != before[i]
		if moved != (i == touched) {
			t.Fatalf("shard %d: version moved=%v, touched shard is %d", i, moved, touched)
		}
	}
	// A delete that finds nothing must not dirty any shard.
	for i := range before {
		before[i] = s.ShardVersion(i)
	}
	if _, err := s.ApplyBatch([]Op{{Key: 999999, Delete: true}}, nil); err != nil {
		t.Fatal(err)
	}
	for i := range before {
		if s.ShardVersion(i) != before[i] {
			t.Fatalf("no-op delete dirtied shard %d", i)
		}
	}
	if _, err := s.ApplyBatch([]Op{{Key: 1}}, make([]bool, 2)); err == nil {
		t.Fatal("mismatched changed length accepted")
	}
}
