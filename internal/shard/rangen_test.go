package shard

import (
	"math"
	"math/rand"
	"testing"
)

// TestRangeN checks the bounded range against the unbounded one: same
// prefix, correct more flag, and a whole-keyspace scan with a tiny
// limit must not materialize the store.
func TestRangeN(t *testing.T) {
	s, err := New(8, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		s.Put(rng.Int63n(20000), int64(i))
	}
	full := s.Range(0, math.MaxInt64, nil)
	for _, max := range []int{1, 7, 100, len(full), len(full) + 10} {
		got, more := s.RangeN(math.MinInt64, math.MaxInt64, max, nil)
		wantN := max
		if wantN > len(full) {
			wantN = len(full)
		}
		if len(got) != wantN {
			t.Fatalf("max %d: got %d items, want %d", max, len(got), wantN)
		}
		if more != (len(full) > max) {
			t.Fatalf("max %d: more=%v with %d total", max, more, len(full))
		}
		for i := range got {
			if got[i] != full[i] {
				t.Fatalf("max %d: item %d = %+v, want %+v", max, i, got[i], full[i])
			}
		}
	}
	// Bounds and degenerate cases.
	if got, more := s.RangeN(10, 5, 100, nil); len(got) != 0 || more {
		t.Fatal("inverted bounds returned items")
	}
	if got, more := s.RangeN(0, 100, 0, nil); len(got) != 0 || more {
		t.Fatal("zero max returned items")
	}
	// An effectively unlimited max must not overflow the internal
	// max+1 sentinel into "no items".
	if got, more := s.RangeN(math.MinInt64, math.MaxInt64, math.MaxInt, nil); len(got) != len(full) || more {
		t.Fatalf("max=MaxInt: %d items (more=%v), want %d", len(got), more, len(full))
	}
	// A window with exactly max items reports more=false.
	if len(full) >= 3 {
		lo, hi := full[0].Key, full[2].Key
		got, more := s.RangeN(lo, hi, 3, nil)
		if len(got) != 3 || more {
			t.Fatalf("exact window: %d items, more=%v", len(got), more)
		}
	}
}
