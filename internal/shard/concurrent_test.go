package shard

import (
	"sync"
	"testing"

	"repro/internal/xrand"
)

// The headline concurrency suite: randomized differential tests of
// Store against mutex-guarded reference maps under mixed concurrent
// operations. Run with -race; the suite is also wired into CI's race
// pass. The tests are deterministic per goroutine: each worker owns a
// disjoint key interval and checks its own reads against a private
// reference map (no cross-goroutine ordering assumptions), while the
// store's hash routing still scatters every worker's keys across all
// shards, so the lock striping is genuinely contended.

const (
	diffWorkers   = 8
	diffKeysPerG  = 512
	diffKeyStride = 1 << 20 // worker g owns [g*stride, g*stride+keys)
)

// scaled shrinks a work amount under -short so the CI race pass stays
// fast while local full runs keep their depth.
func scaled(n int) int {
	if testing.Short() {
		return n / 8
	}
	return n
}

func TestStoreConcurrentDifferential(t *testing.T) {
	diffOpsPerG := scaled(4000)
	s, err := New(8, 1234, nil)
	if err != nil {
		t.Fatal(err)
	}
	refs := make([]map[int64]int64, diffWorkers)
	var wg sync.WaitGroup
	for g := 0; g < diffWorkers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := xrand.New(uint64(g)*2654435761 + 99)
			ref := map[int64]int64{}
			base := int64(g) * diffKeyStride
			for i := 0; i < diffOpsPerG; i++ {
				k := base + int64(rng.Intn(diffKeysPerG))
				switch rng.Intn(10) {
				case 0, 1, 2, 3: // put
					v := int64(rng.Uint64() >> 1)
					_, existed := ref[k]
					if ins := s.Put(k, v); ins == existed {
						t.Errorf("worker %d: Put(%d) inserted=%v, want %v", g, k, ins, !existed)
						return
					}
					ref[k] = v
				case 4, 5: // delete
					_, existed := ref[k]
					if del := s.Delete(k); del != existed {
						t.Errorf("worker %d: Delete(%d)=%v, want %v", g, k, del, existed)
						return
					}
					delete(ref, k)
				case 6: // batch put
					n := 1 + rng.Intn(32)
					items := make([]Item, n)
					for j := range items {
						items[j] = Item{Key: base + int64(rng.Intn(diffKeysPerG)), Val: int64(j)}
					}
					s.PutBatch(items)
					for _, it := range items {
						ref[it.Key] = it.Val
					}
				case 7: // batch get
					n := 1 + rng.Intn(32)
					keys := make([]int64, n)
					for j := range keys {
						keys[j] = base + int64(rng.Intn(diffKeysPerG))
					}
					vals, ok := s.GetBatch(keys)
					for j, k := range keys {
						rv, rok := ref[k]
						if ok[j] != rok || (rok && vals[j] != rv) {
							t.Errorf("worker %d: GetBatch key %d = (%d,%v), want (%d,%v)",
								g, k, vals[j], ok[j], rv, rok)
							return
						}
					}
				case 8: // get
					v, ok := s.Get(k)
					rv, rok := ref[k]
					if ok != rok || (rok && v != rv) {
						t.Errorf("worker %d: Get(%d) = (%d,%v), want (%d,%v)", g, k, v, ok, rv, rok)
						return
					}
				case 9: // range over own interval: own keys must all be correct
					lo := base + int64(rng.Intn(diffKeysPerG))
					hi := lo + int64(rng.Intn(64))
					got := map[int64]int64{}
					for _, it := range s.Range(lo, hi, nil) {
						got[it.Key] = it.Val
					}
					for rk, rv := range ref {
						if rk >= lo && rk <= hi {
							if gv, okr := got[rk]; !okr || gv != rv {
								t.Errorf("worker %d: Range(%d,%d) missing/wrong key %d", g, lo, hi, rk)
								return
							}
						}
					}
				}
			}
			refs[g] = ref
		}(g)
	}
	// Concurrent full-store readers: every observed snapshot must be
	// sorted, duplicate-free, and routed consistently.
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 2; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				prev := int64(-1)
				first := true
				s.Ascend(func(it Item) bool {
					if !first && it.Key <= prev {
						t.Errorf("Ascend snapshot out of order: %d after %d", it.Key, prev)
						return false
					}
					prev, first = it.Key, false
					return true
				})
				_ = s.Len()
			}
		}()
	}
	wg.Wait()
	close(stop)
	readers.Wait()
	if t.Failed() {
		return
	}

	// Quiescent check: the store equals the union of the worker maps.
	union := map[int64]int64{}
	for _, ref := range refs {
		for k, v := range ref {
			union[k] = v
		}
	}
	if s.Len() != len(union) {
		t.Fatalf("final Len = %d, want %d", s.Len(), len(union))
	}
	seen := 0
	s.Ascend(func(it Item) bool {
		v, ok := union[it.Key]
		if !ok || v != it.Val {
			t.Errorf("store holds (%d,%d) not in reference union", it.Key, it.Val)
			return false
		}
		seen++
		return true
	})
	if seen != len(union) {
		t.Fatalf("Ascend visited %d keys, want %d", seen, len(union))
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestStoreConcurrentOverlapping hammers a tiny shared key space from
// many goroutines. Final values are nondeterministic, but every value
// must be one some goroutine actually wrote for that key, and all
// structural invariants must hold. The race detector checks the rest.
func TestStoreConcurrentOverlapping(t *testing.T) {
	const (
		workers = 8
		keys    = 64
	)
	ops := scaled(3000)
	s, err := New(4, 55, nil)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := xrand.New(uint64(g) + 500)
			for i := 0; i < ops; i++ {
				k := int64(rng.Intn(keys))
				switch rng.Intn(4) {
				case 0, 1:
					// Value encodes (key, writer) so the final check can
					// validate provenance.
					s.Put(k, k*1000+int64(g))
				case 2:
					s.Delete(k)
				case 3:
					if v, ok := s.Get(k); ok {
						if v/1000 != k || v%1000 >= workers {
							t.Errorf("Get(%d) observed impossible value %d", k, v)
							return
						}
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	s.Ascend(func(it Item) bool {
		if it.Key < 0 || it.Key >= keys || it.Val/1000 != it.Key || it.Val%1000 >= workers {
			t.Errorf("final state holds impossible item %+v", it)
			return false
		}
		return true
	})
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestStoreConcurrentSnapshotOps exercises the whole-store operations
// (WriteTo, Stats, Range, Min/Max) while writers mutate: each must see a
// coherent atomic cut and never corrupt anything.
func TestStoreConcurrentSnapshotOps(t *testing.T) {
	s, err := New(8, 77, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k := int64(0); k < 2000; k += 2 {
		s.Put(k, k)
	}
	stop := make(chan struct{})
	var writers sync.WaitGroup
	for g := 0; g < 4; g++ {
		writers.Add(1)
		go func(g int) {
			defer writers.Done()
			rng := xrand.New(uint64(g) + 9000)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				k := int64(rng.Intn(2000))
				if rng.Intn(2) == 0 {
					s.Put(k, k)
				} else {
					s.Delete(k)
				}
			}
		}(g)
	}
	for i := 0; i < scaled(30); i++ {
		var buf discardWriter
		if _, err := s.WriteTo(&buf); err != nil {
			t.Errorf("WriteTo under writers: %v", err)
			break
		}
		out := s.Range(0, 2000, nil)
		for j := 1; j < len(out); j++ {
			if out[j].Key <= out[j-1].Key {
				t.Errorf("Range snapshot out of order at %d", j)
			}
		}
		// Min/Max are separate snapshots under concurrent deletes, so
		// only each call's own consistency is checkable here.
		if mn, ok := s.Min(); ok && (mn.Key < 0 || mn.Key >= 2000) {
			t.Errorf("Min observed impossible key %d", mn.Key)
		}
		if mx, ok := s.Max(); ok && (mx.Key < 0 || mx.Key >= 2000) {
			t.Errorf("Max observed impossible key %d", mx.Key)
		}
	}
	close(stop)
	writers.Wait()
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

type discardWriter struct{}

func (discardWriter) Write(p []byte) (int, error) { return len(p), nil }
