package shard

import (
	"fmt"

	"repro/internal/expiry"
)

// Op is one mutation in a mixed ApplyBatch: an upsert of (Key, Val)
// with optional expiry, a delete of Key when Delete is set, or a
// conditional expiry removal when Expire is set.
type Op struct {
	Key, Val int64
	// Exp is the absolute expiry epoch for an upsert (0: never expires —
	// and any previously recorded expiry is cleared), or the epoch bound
	// for an Expire op.
	Exp int64
	// Delete makes the op an unconditional removal of Key.
	Delete bool
	// Expire marks a sweeper-issued conditional removal: Key is deleted
	// only if its recorded expiry is nonzero and <= Exp. The condition is
	// re-checked under the shard lock, so a concurrent upsert that
	// resurrected the key with a fresh value or expiry is never clobbered
	// by a sweep planned against an older snapshot.
	Expire bool
}

// ApplyBatch applies a mixed sequence of upserts and deletes, grouped
// by shard with each shard's lock taken exactly once, and reports the
// per-operation outcome: changed[i] is true when op i changed LOGICAL
// key presence (a fresh insert — including over an expired entry — or a
// delete that found a live key), or, for Expire ops, when the op
// physically removed a dead entry. The return value is the number of
// true entries. Operations on the same shard apply in batch order (the
// grouping is stable), so a put and a delete of the same key within one
// batch resolve exactly as the equivalent sequence of point operations
// would.
//
// This is the server-side coalescing primitive: writes from many
// network connections are gathered into one ApplyBatch, turning k
// point-op lock acquisitions into at most min(k, shards) while
// preserving every connection's submission order and per-op result.
// Expire ops ride the same path, so a sweep serializes with the
// pipelined writes it races.
//
// changed must be nil (outcomes discarded) or have len(ops).
func (s *Store) ApplyBatch(ops []Op, changed []bool) (n int, err error) {
	if changed != nil && len(changed) != len(ops) {
		return 0, fmt.Errorf("shard: ApplyBatch: %d outcome slots for %d ops", len(changed), len(ops))
	}
	if len(ops) == 0 {
		return 0, nil
	}
	epoch := s.epoch()
	p := s.groupByShard(len(ops), func(i int) int64 { return ops[i].Key })
	for g := range s.cells {
		lo, hi := p.start[g], p.start[g+1]
		if lo == hi {
			continue
		}
		c := &s.cells[g]
		c.mu.Lock()
		shardChanged := false
		for _, i := range p.order[lo:hi] {
			op := &ops[i]
			var ch bool
			switch {
			case op.Expire:
				if e := c.expOf(op.Key); e != 0 && e <= op.Exp {
					c.exps.Delete(op.Key)
					ch = c.dict.Delete(op.Key)
				}
			case op.Delete:
				exp := c.expOf(op.Key)
				if c.dict.Delete(op.Key) {
					c.setExp(op.Key, 0)
					ch = expiry.Live(exp, epoch)
					shardChanged = true
				}
			default:
				prevExp := c.expOf(op.Key)
				physIns := c.dict.Put(op.Key, op.Val)
				ch = physIns || !expiry.Live(prevExp, epoch)
				c.setExp(op.Key, op.Exp)
				shardChanged = true // an upsert may rewrite the value either way
			}
			if ch {
				n++
				shardChanged = true
			}
			if changed != nil {
				changed[i] = ch
			}
		}
		if shardChanged {
			c.version++
		}
		c.mu.Unlock()
	}
	return n, nil
}
