package shard

import "fmt"

// Op is one mutation in a mixed ApplyBatch: an upsert of (Key, Val), or
// a delete of Key when Delete is set.
type Op struct {
	Key, Val int64
	Delete   bool
}

// ApplyBatch applies a mixed sequence of upserts and deletes, grouped
// by shard with each shard's lock taken exactly once, and reports the
// per-operation outcome: changed[i] is true when op i changed key
// presence (a fresh insert, or a delete that found its key). The return
// value is the number of true entries. Operations on the same shard
// apply in batch order (the grouping is stable), so a put and a delete
// of the same key within one batch resolve exactly as the equivalent
// sequence of point operations would.
//
// This is the server-side coalescing primitive: writes from many
// network connections are gathered into one ApplyBatch, turning k
// point-op lock acquisitions into at most min(k, shards) while
// preserving every connection's submission order and per-op result.
//
// changed must be nil (outcomes discarded) or have len(ops).
func (s *Store) ApplyBatch(ops []Op, changed []bool) (n int, err error) {
	if changed != nil && len(changed) != len(ops) {
		return 0, fmt.Errorf("shard: ApplyBatch: %d outcome slots for %d ops", len(changed), len(ops))
	}
	if len(ops) == 0 {
		return 0, nil
	}
	p := s.groupByShard(len(ops), func(i int) int64 { return ops[i].Key })
	for g := range s.cells {
		lo, hi := p.start[g], p.start[g+1]
		if lo == hi {
			continue
		}
		c := &s.cells[g]
		c.mu.Lock()
		shardChanged := false
		for _, i := range p.order[lo:hi] {
			var ch bool
			if ops[i].Delete {
				ch = c.dict.Delete(ops[i].Key)
			} else {
				ch = c.dict.Put(ops[i].Key, ops[i].Val)
				shardChanged = true // an upsert may rewrite the value either way
			}
			if ch {
				n++
				shardChanged = true
			}
			if changed != nil {
				changed[i] = ch
			}
		}
		if shardChanged {
			c.version++
		}
		c.mu.Unlock()
	}
	return n, nil
}
