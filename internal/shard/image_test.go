package shard

import (
	"bytes"
	"testing"

	"repro/internal/iomodel"
	"repro/internal/xrand"
)

// buildFromSchedule applies a random valid schedule of the operation
// multiset {put(k, val(k)) : k in survivors ∪ departed} ∪
// {delete(k) : k in departed} to a fresh store: operation order is
// randomized by scheduleSeed, with each departed key's delete placed at
// a random point after its put. Different scheduleSeeds give different
// interleavings of the same multiset with the same final state.
func buildFromSchedule(t *testing.T, storeSeed, scheduleSeed uint64, shards int,
	survivors, departed []int64) *Store {
	t.Helper()
	s, err := New(shards, storeSeed, nil)
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(scheduleSeed)
	puts := append(append([]int64(nil), survivors...), departed...)
	for i := len(puts) - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		puts[i], puts[j] = puts[j], puts[i]
	}
	departedSet := map[int64]bool{}
	for _, k := range departed {
		departedSet[k] = true
	}
	var pending []int64 // departed keys inserted but not yet deleted
	next := 0
	for next < len(puts) || len(pending) > 0 {
		// Randomly take either the next put or a pending delete.
		if next < len(puts) && (len(pending) == 0 || rng.Intn(2) == 0) {
			k := puts[next]
			next++
			s.Put(k, k*7) // value is a function of the key, not the schedule
			if departedSet[k] {
				pending = append(pending, k)
			}
		} else {
			i := rng.Intn(len(pending))
			k := pending[i]
			pending[i] = pending[len(pending)-1]
			pending = pending[:len(pending)-1]
			s.Delete(k)
		}
	}
	return s
}

// TestStoreHistoryIndependence is the sharded-layer analogue of the
// hipma image tests: two random valid schedules of the same operation
// multiset — including inserts and deletes of keys that have departed —
// must yield byte-identical images for every shard, and for the whole
// container. This is the paper's WHI guarantee lifted through the
// sharding layer: the image set is a function of (contents, seed) only.
func TestStoreHistoryIndependence(t *testing.T) {
	const storeSeed = 4242
	rng := xrand.New(606)
	var survivors, departed []int64
	seen := map[int64]bool{}
	for len(survivors) < 1500 {
		k := int64(rng.Intn(1 << 30))
		if !seen[k] {
			seen[k] = true
			survivors = append(survivors, k)
		}
	}
	for len(departed) < 700 {
		k := int64(rng.Intn(1 << 30))
		if !seen[k] {
			seen[k] = true
			departed = append(departed, k)
		}
	}
	for _, shards := range []int{1, 8} {
		a := buildFromSchedule(t, storeSeed, 111, shards, survivors, departed)
		b := buildFromSchedule(t, storeSeed, 999, shards, survivors, departed)
		if a.Len() != len(survivors) || b.Len() != len(survivors) {
			t.Fatalf("shards=%d: lengths %d/%d, want %d", shards, a.Len(), b.Len(), len(survivors))
		}
		for i := 0; i < shards; i++ {
			var ia, ib bytes.Buffer
			if _, err := a.WriteShard(i, &ia); err != nil {
				t.Fatal(err)
			}
			if _, err := b.WriteShard(i, &ib); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(ia.Bytes(), ib.Bytes()) {
				t.Errorf("shards=%d: shard %d image depends on operation history", shards, i)
			}
		}
		var ca, cb bytes.Buffer
		if _, err := a.WriteTo(&ca); err != nil {
			t.Fatal(err)
		}
		if _, err := b.WriteTo(&cb); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ca.Bytes(), cb.Bytes()) {
			t.Errorf("shards=%d: container image depends on operation history", shards)
		}
	}
}

func buildRandomStore(t *testing.T, seed uint64, shards, ops int) *Store {
	t.Helper()
	s, err := New(shards, seed, nil)
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(seed + 1)
	for i := 0; i < ops; i++ {
		k := int64(rng.Intn(ops))
		if rng.Intn(4) > 0 {
			s.Put(k, int64(i))
		} else {
			s.Delete(k)
		}
	}
	return s
}

func TestStoreImageRoundTrip(t *testing.T) {
	for _, ops := range []int{0, 1, 100, 6000} {
		s := buildRandomStore(t, 13, 8, ops)
		var buf bytes.Buffer
		wrote, err := s.WriteTo(&buf)
		if err != nil {
			t.Fatalf("ops=%d: WriteTo: %v", ops, err)
		}
		if wrote != int64(buf.Len()) {
			t.Fatalf("ops=%d: WriteTo reported %d bytes, wrote %d", ops, wrote, buf.Len())
		}
		q, err := ReadStore(bytes.NewReader(buf.Bytes()), 999, nil)
		if err != nil {
			t.Fatalf("ops=%d: ReadStore: %v", ops, err)
		}
		if q.Len() != s.Len() || q.NumShards() != s.NumShards() {
			t.Fatalf("ops=%d: shape mismatch after round trip", ops)
		}
		var want, got []Item
		s.Ascend(func(it Item) bool { want = append(want, it); return true })
		q.Ascend(func(it Item) bool { got = append(got, it); return true })
		if len(want) != len(got) {
			t.Fatalf("ops=%d: %d items after reload, want %d", ops, len(got), len(want))
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("ops=%d: item %d differs: %+v vs %+v", ops, i, got[i], want[i])
			}
		}
		// Canonical: write → read → write is byte-stable.
		var buf2 bytes.Buffer
		if _, err := q.WriteTo(&buf2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
			t.Fatalf("ops=%d: image changed across load/store", ops)
		}
		// A loaded store stays operational: routing still matches hseed.
		probe := int64(1<<40) + int64(ops)
		q.Put(probe, 1)
		if v, ok := q.Get(probe); !ok || v != 1 {
			t.Fatalf("ops=%d: loaded store lost a fresh key", ops)
		}
		q.Delete(probe)
		if err := q.CheckInvariants(); err != nil {
			t.Fatalf("ops=%d: loaded store: %v", ops, err)
		}
	}
}

func TestStoreImageRejectsCorruption(t *testing.T) {
	s := buildRandomStore(t, 19, 4, 1500)
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	if _, err := ReadStore(bytes.NewReader(good[:len(good)/3]), 1, nil); err == nil {
		t.Error("truncated image accepted")
	}
	bad := append([]byte(nil), good...)
	bad[0] ^= 0xFF
	if _, err := ReadStore(bytes.NewReader(bad), 1, nil); err == nil {
		t.Error("bad magic accepted")
	}
	// Implausible shard count (3 is not a power of two).
	bad = append([]byte(nil), good...)
	bad[8] = 3
	if _, err := ReadStore(bytes.NewReader(bad), 1, nil); err == nil {
		t.Error("non-power-of-two shard count accepted")
	}
	// Flipped byte deep inside a shard payload: the shard's own checksum
	// must catch it.
	bad = append([]byte(nil), good...)
	bad[len(bad)/2] ^= 0x01
	if _, err := ReadStore(bytes.NewReader(bad), 1, nil); err == nil {
		t.Error("corrupted shard payload accepted")
	}
	// Corrupted routing seed: every shard then fails the routing check.
	bad = append([]byte(nil), good...)
	bad[16] ^= 0x01
	if _, err := ReadStore(bytes.NewReader(bad), 1, nil); err == nil {
		t.Error("corrupted routing seed accepted")
	}
}

// TestStoreImageTrackers: a store reloaded with trackers resumes DAM
// accounting on the loaded shards.
func TestStoreImageTrackers(t *testing.T) {
	s := buildRandomStore(t, 23, 2, 2000)
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	trackers := []*iomodel.Tracker{iomodel.New(64, 8), iomodel.New(64, 8)}
	q, err := ReadStore(&buf, 3, trackers)
	if err != nil {
		t.Fatal(err)
	}
	for i := range trackers {
		trackers[i].Reset() // discard the load-time invariant-check traffic
	}
	rng := xrand.New(29)
	for i := 0; i < 2000; i++ {
		q.Get(int64(rng.Intn(2000)))
	}
	if q.Stats().Reads == 0 {
		t.Fatal("no reads recorded on a tracker-reloaded store")
	}
}
