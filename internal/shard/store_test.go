package shard

import (
	"bytes"
	"encoding/binary"
	"sort"
	"testing"

	"repro/internal/cobt"
	"repro/internal/hipma"
	"repro/internal/iomodel"
	"repro/internal/xrand"
)

func TestStoreValidation(t *testing.T) {
	for _, bad := range []int{0, -1, 3, 6, 12} {
		if _, err := New(bad, 1, nil); err == nil {
			t.Errorf("New(%d) accepted a non-power-of-two shard count", bad)
		}
	}
	if _, err := New(4, 1, make([]*iomodel.Tracker, 2)); err == nil {
		t.Error("New accepted a tracker slice of the wrong length")
	}
	for _, good := range []int{1, 2, 8, 64} {
		if _, err := New(good, 1, nil); err != nil {
			t.Errorf("New(%d): %v", good, err)
		}
	}
}

func TestStoreBasicVsMap(t *testing.T) {
	s, err := New(8, 42, nil)
	if err != nil {
		t.Fatal(err)
	}
	ref := map[int64]int64{}
	rng := xrand.New(7)
	for i := 0; i < 20000; i++ {
		k := int64(rng.Intn(4000))
		switch rng.Intn(4) {
		case 0, 1: // put
			v := int64(rng.Intn(1 << 20))
			_, existed := ref[k]
			if ins := s.Put(k, v); ins == existed {
				t.Fatalf("op %d: Put(%d) inserted=%v, want %v", i, k, ins, !existed)
			}
			ref[k] = v
		case 2: // delete
			_, existed := ref[k]
			if del := s.Delete(k); del != existed {
				t.Fatalf("op %d: Delete(%d) = %v, want %v", i, k, del, existed)
			}
			delete(ref, k)
		case 3: // get
			v, ok := s.Get(k)
			rv, rok := ref[k]
			if ok != rok || (ok && v != rv) {
				t.Fatalf("op %d: Get(%d) = (%d, %v), want (%d, %v)", i, k, v, ok, rv, rok)
			}
		}
		if i%4096 == 0 && s.Len() != len(ref) {
			t.Fatalf("op %d: Len = %d, want %d", i, s.Len(), len(ref))
		}
	}
	if s.Len() != len(ref) {
		t.Fatalf("final Len = %d, want %d", s.Len(), len(ref))
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Shard sizes must sum to the total.
	sum := 0
	for i := 0; i < s.NumShards(); i++ {
		sum += s.ShardLen(i)
	}
	if sum != len(ref) {
		t.Fatalf("shard lengths sum to %d, want %d", sum, len(ref))
	}
}

func TestStoreRangeAndAscendMerged(t *testing.T) {
	s, err := New(16, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	ref := map[int64]int64{}
	rng := xrand.New(9)
	for i := 0; i < 5000; i++ {
		k := int64(rng.Intn(100000))
		s.Put(k, k*3)
		ref[k] = k * 3
	}
	keys := make([]int64, 0, len(ref))
	for k := range ref {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })

	// Full Ascend yields every key in sorted order.
	var got []Item
	s.Ascend(func(it Item) bool { got = append(got, it); return true })
	if len(got) != len(keys) {
		t.Fatalf("Ascend yielded %d items, want %d", len(got), len(keys))
	}
	for i, it := range got {
		if it.Key != keys[i] || it.Val != ref[keys[i]] {
			t.Fatalf("Ascend item %d = %+v, want key %d val %d", i, it, keys[i], ref[keys[i]])
		}
	}

	// Early stop.
	count := 0
	s.Ascend(func(Item) bool { count++; return count < 10 })
	if count != 10 {
		t.Fatalf("Ascend early stop after %d items, want 10", count)
	}

	// Random ranges against the sorted reference.
	for trial := 0; trial < 200; trial++ {
		lo := int64(rng.Intn(100000))
		hi := lo + int64(rng.Intn(20000))
		want := make([]Item, 0)
		from := sort.Search(len(keys), func(i int) bool { return keys[i] >= lo })
		for i := from; i < len(keys) && keys[i] <= hi; i++ {
			want = append(want, Item{Key: keys[i], Val: ref[keys[i]]})
		}
		gotR := s.Range(lo, hi, nil)
		if len(gotR) != len(want) {
			t.Fatalf("Range(%d,%d) yielded %d items, want %d", lo, hi, len(gotR), len(want))
		}
		for i := range want {
			if gotR[i] != want[i] {
				t.Fatalf("Range(%d,%d) item %d = %+v, want %+v", lo, hi, i, gotR[i], want[i])
			}
		}
	}
	// Inverted and empty ranges.
	if out := s.Range(10, 5, nil); len(out) != 0 {
		t.Fatalf("inverted range returned %d items", len(out))
	}

	// Min/Max match the reference extremes.
	mn, ok1 := s.Min()
	mx, ok2 := s.Max()
	if !ok1 || !ok2 || mn.Key != keys[0] || mx.Key != keys[len(keys)-1] {
		t.Fatalf("Min/Max = %v/%v, want %d/%d", mn.Key, mx.Key, keys[0], keys[len(keys)-1])
	}
}

func TestStoreEmpty(t *testing.T) {
	s, err := New(4, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 0 {
		t.Fatal("empty store has nonzero Len")
	}
	if _, ok := s.Get(1); ok {
		t.Fatal("Get on empty store found a key")
	}
	if out := s.Range(-1000, 1000, nil); len(out) != 0 {
		t.Fatal("Range on empty store returned items")
	}
	if _, ok := s.Min(); ok {
		t.Fatal("Min on empty store")
	}
	s.Ascend(func(Item) bool { t.Fatal("Ascend on empty store called fn"); return false })
}

// TestSingleShardMatchesDictionary: shards=1 must behave exactly like a
// bare Dictionary — same answers for every operation and a byte-identical
// disk image for the one shard.
func TestSingleShardMatchesDictionary(t *testing.T) {
	const seed = 77
	s, err := New(1, seed, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Shard 0's dictionary seed is derived from the master seed; build
	// the reference with the same derivation so randomness matches too.
	d := cobt.New(shardSeed(seed, 0), nil)

	rng := xrand.New(5)
	for i := 0; i < 8000; i++ {
		k := int64(rng.Intn(2000))
		switch rng.Intn(5) {
		case 0, 1, 2:
			v := int64(i)
			if s.Put(k, v) != d.Put(k, v) {
				t.Fatalf("op %d: Put(%d) disagrees", i, k)
			}
		case 3:
			if s.Delete(k) != d.Delete(k) {
				t.Fatalf("op %d: Delete(%d) disagrees", i, k)
			}
		case 4:
			sv, sok := s.Get(k)
			dv, dok := d.Get(k)
			if sv != dv || sok != dok {
				t.Fatalf("op %d: Get(%d) disagrees: (%d,%v) vs (%d,%v)", i, k, sv, sok, dv, dok)
			}
		}
	}
	if s.Len() != d.Len() {
		t.Fatalf("Len disagrees: %d vs %d", s.Len(), d.Len())
	}
	// Range/Ascend must agree item for item.
	sr := s.Range(0, 2000, nil)
	dr := d.Range(0, 2000, nil)
	if len(sr) != len(dr) {
		t.Fatalf("Range disagrees: %d vs %d items", len(sr), len(dr))
	}
	for i := range sr {
		if sr[i] != dr[i] {
			t.Fatalf("Range item %d disagrees: %+v vs %+v", i, sr[i], dr[i])
		}
	}
	// The persisted image is the canonical (bulk-load) serialization of
	// the same contents: reproducible from the bare Dictionary's items.
	// The shard image is a pair — length-prefixed data image, then the
	// (here empty) expiry index image.
	var si, di bytes.Buffer
	if _, err := s.WriteShard(0, &si); err != nil {
		t.Fatal(err)
	}
	items := d.Range(-1<<62, 1<<62, nil)
	canon, err := hipma.BulkLoadWithConfig(hipma.DefaultConfig(), items, canonSeed(s.hseed, 0), nil)
	if err != nil {
		t.Fatal(err)
	}
	var data bytes.Buffer
	if _, err := canon.WriteTo(&data); err != nil {
		t.Fatal(err)
	}
	var lenHdr [8]byte
	binary.LittleEndian.PutUint64(lenHdr[:], uint64(data.Len()))
	di.Write(lenHdr[:])
	di.Write(data.Bytes())
	canonExp, err := hipma.BulkLoadWithConfig(hipma.DefaultConfig(), nil, canonExpSeed(s.hseed, 0), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := canonExp.WriteTo(&di); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(si.Bytes(), di.Bytes()) {
		t.Fatal("single-shard store image differs from canonical image of the same contents")
	}
}

// TestStoreStatsAggregation: per-shard trackers are summed, and the
// aggregate moves when operations run.
func TestStoreStatsAggregation(t *testing.T) {
	const nsh = 4
	trackers := make([]*iomodel.Tracker, nsh)
	for i := range trackers {
		trackers[i] = iomodel.New(64, 16)
	}
	s, err := New(nsh, 11, trackers)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 5000; i++ {
		s.Put(i, i)
	}
	for i := int64(0); i < 5000; i++ {
		s.Get(i)
	}
	agg := s.Stats()
	if agg.B != 64 {
		t.Fatalf("aggregated B = %d, want 64", agg.B)
	}
	var reads, writes, hits uint64
	for _, tr := range trackers {
		snap := tr.Snapshot()
		reads += snap.Reads
		writes += snap.Writes
		hits += snap.Hits
	}
	if agg.Reads != reads || agg.Writes != writes || agg.Hits != hits {
		t.Fatalf("aggregate %+v does not match tracker sum (%d,%d,%d)", agg, reads, writes, hits)
	}
	if agg.Reads == 0 {
		t.Fatal("no reads recorded despite 5000 tracked lookups")
	}
}

// TestStoreShardOfDeterministic: routing depends only on (key, seed).
func TestStoreShardOfDeterministic(t *testing.T) {
	a, _ := New(8, 99, nil)
	b, _ := New(8, 99, nil)
	c, _ := New(8, 100, nil)
	differs := false
	for k := int64(-500); k < 500; k++ {
		if a.ShardOf(k) != b.ShardOf(k) {
			t.Fatalf("same-seed stores route key %d differently", k)
		}
		if a.ShardOf(k) != c.ShardOf(k) {
			differs = true
		}
	}
	if !differs {
		t.Error("seed has no effect on routing (1000 keys identical)")
	}
}
