// Package shard provides Store, a concurrent, hash-sharded key-value
// front-end over the history-independent cache-oblivious B-tree
// (repro/internal/cobt). The paper's structures are single-threaded by
// design; Store is the standard first scaling step: split the key space
// into 2^k independent shards by a seeded hash, give each shard its own
// Dictionary and sync.RWMutex, and let operations on different shards
// proceed in parallel.
//
// The decomposition preserves history independence shard by shard: the
// shard assignment is a deterministic function of (key, seed) — never of
// the operation order — so each shard's key set, and therefore each
// shard's on-disk image, is a pure function of the store's current
// contents and its randomness. The set of per-shard images leaks nothing
// about the sequence of operations that produced it, just like a single
// Dictionary image.
//
// Concurrency contract:
//
//   - Point ops (Put/Get/Has/Delete) lock exactly one shard.
//   - Batch ops (PutBatch/GetBatch/DeleteBatch, and the mixed
//     put-delete ApplyBatch used by the network server's write
//     coalescer) group keys by shard and take each shard's lock exactly
//     once, in shard order, applying same-shard operations in batch
//     order.
//   - Scan ops never hold more than one shard lock at a time: Range
//     copies each shard's window under that shard's own brief read
//     lock; Ascend streams each shard in fixed-size chunks, re-locking
//     per refill. A long scan never blocks writers on unrelated shards.
//     Range is per-shard consistent, Ascend per-chunk consistent;
//     neither is a cross-shard atomic cut.
//   - Whole-store ops (Len, WriteTo, Stats, CheckInvariants, Min, Max)
//     hold every shard's lock simultaneously — acquired in shard order,
//     so they cannot deadlock against each other or against point ops —
//     and therefore observe an atomic cut across shards.
//   - Shards with a non-nil iomodel.Tracker serialize reads too (the
//     tracker's LRU cache mutates on every touch), so DAM accounting is
//     exact; run with nil trackers for maximum read parallelism.
//
// Entries may carry a TTL (PutTTL/GetTTL): each shard keeps an expiry
// index next to its data dictionary, under the same lock and inside
// the same canonical image. Liveness follows repro/internal/expiry —
// the logical state at epoch E is exactly the entries with exp == 0 or
// exp > E — with reads filtering lazily against the store's injected
// clock and SweepExpired(E) physically removing exactly the entries
// dead at E, so the surviving bytes are a pure function of (contents,
// epoch), never of the sweep schedule. ApplyBatch additionally accepts
// Expire ops: conditional removals that re-check the recorded expiry
// under the shard lock, the primitive a server-side sweeper feeds
// through the write coalescer.
//
// Every shard carries a version counter, bumped under its write lock by
// every operation that may have changed the shard's contents. A
// checkpointer (repro/internal/durable) pairs ShardVersion with
// SnapshotShard to persist only the shards that changed since the last
// checkpoint — incrementality stays history independent because each
// shard's canonical image is a pure function of (contents, seed), never
// of which operations dirtied it.
package shard
