package shard

import (
	"bytes"
	"testing"

	"repro/internal/xrand"
)

func TestBatchEmpty(t *testing.T) {
	s, err := New(8, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n := s.PutBatch(nil); n != 0 {
		t.Fatalf("PutBatch(nil) = %d", n)
	}
	if n := s.PutBatch([]Item{}); n != 0 {
		t.Fatalf("PutBatch(empty) = %d", n)
	}
	vals, ok := s.GetBatch(nil)
	if len(vals) != 0 || len(ok) != 0 {
		t.Fatal("GetBatch(nil) returned non-empty slices")
	}
	if n := s.DeleteBatch(nil); n != 0 {
		t.Fatalf("DeleteBatch(nil) = %d", n)
	}
	if s.Len() != 0 {
		t.Fatal("empty batches changed the store")
	}
}

// TestBatchDuplicateKeys: duplicates within one batch apply in batch
// order — the last put wins, and the key counts once.
func TestBatchDuplicateKeys(t *testing.T) {
	s, err := New(4, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	ins := s.PutBatch([]Item{
		{Key: 7, Val: 1}, {Key: 8, Val: 10}, {Key: 7, Val: 2}, {Key: 7, Val: 3},
	})
	if ins != 2 {
		t.Fatalf("PutBatch inserted %d keys, want 2 (7 and 8)", ins)
	}
	if v, ok := s.Get(7); !ok || v != 3 {
		t.Fatalf("Get(7) = (%d,%v), want last-write value 3", v, ok)
	}
	vals, ok := s.GetBatch([]int64{7, 9, 7, 8})
	want := []int64{3, 0, 3, 10}
	wantOK := []bool{true, false, true, true}
	for i := range vals {
		if vals[i] != want[i] || ok[i] != wantOK[i] {
			t.Fatalf("GetBatch[%d] = (%d,%v), want (%d,%v)", i, vals[i], ok[i], want[i], wantOK[i])
		}
	}
	if n := s.DeleteBatch([]int64{7, 7, 7}); n != 1 {
		t.Fatalf("DeleteBatch with duplicates removed %d, want 1", n)
	}
	if s.Has(7) {
		t.Fatal("key 7 survived DeleteBatch")
	}
}

// TestBatchSpansAllShards: a batch with at least one key per shard lands
// every key on its routed shard in one pass.
func TestBatchSpansAllShards(t *testing.T) {
	const nsh = 8
	s, err := New(nsh, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Probe keys until every shard has at least two.
	perShard := make([]int, nsh)
	var batch []Item
	for k := int64(0); ; k++ {
		sh := s.ShardOf(k)
		if perShard[sh] < 2 {
			perShard[sh]++
			batch = append(batch, Item{Key: k, Val: k * 2})
		}
		done := true
		for _, c := range perShard {
			if c < 2 {
				done = false
				break
			}
		}
		if done {
			break
		}
	}
	if ins := s.PutBatch(batch); ins != len(batch) {
		t.Fatalf("PutBatch inserted %d, want %d", ins, len(batch))
	}
	for i := 0; i < nsh; i++ {
		if s.ShardLen(i) != 2 {
			t.Fatalf("shard %d holds %d keys, want 2", i, s.ShardLen(i))
		}
	}
	keys := make([]int64, len(batch))
	for i, it := range batch {
		keys[i] = it.Key
	}
	vals, ok := s.GetBatch(keys)
	for i := range keys {
		if !ok[i] || vals[i] != keys[i]*2 {
			t.Fatalf("GetBatch[%d] = (%d,%v), want (%d,true)", i, vals[i], ok[i], keys[i]*2)
		}
	}
	if n := s.DeleteBatch(keys); n != len(keys) {
		t.Fatalf("DeleteBatch removed %d, want %d", n, len(keys))
	}
	if s.Len() != 0 {
		t.Fatalf("Len = %d after deleting everything", s.Len())
	}
}

// TestBatchMatchesSingles: a random workload applied via batches and via
// point ops must produce the same answers and byte-identical images.
func TestBatchMatchesSingles(t *testing.T) {
	const seed = 21
	sb, err := New(8, seed, nil)
	if err != nil {
		t.Fatal(err)
	}
	ss, err := New(8, seed, nil)
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(31)
	for round := 0; round < 40; round++ {
		nPut := 1 + rng.Intn(200)
		puts := make([]Item, nPut)
		for i := range puts {
			puts[i] = Item{Key: int64(rng.Intn(3000)), Val: int64(rng.Intn(1 << 16))}
		}
		bi := sb.PutBatch(puts)
		si := 0
		for _, it := range puts {
			if ss.Put(it.Key, it.Val) {
				si++
			}
		}
		if bi != si {
			t.Fatalf("round %d: PutBatch inserted %d, singles %d", round, bi, si)
		}
		nDel := rng.Intn(100)
		dels := make([]int64, nDel)
		for i := range dels {
			dels[i] = int64(rng.Intn(3000))
		}
		bd := sb.DeleteBatch(dels)
		sd := 0
		for _, k := range dels {
			if ss.Delete(k) {
				sd++
			}
		}
		if bd != sd {
			t.Fatalf("round %d: DeleteBatch removed %d, singles %d", round, bd, sd)
		}
	}
	if sb.Len() != ss.Len() {
		t.Fatalf("Len disagrees: batch %d, singles %d", sb.Len(), ss.Len())
	}
	var ib, is bytes.Buffer
	if _, err := sb.WriteTo(&ib); err != nil {
		t.Fatal(err)
	}
	if _, err := ss.WriteTo(&is); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ib.Bytes(), is.Bytes()) {
		t.Fatal("batch-built and singles-built stores have different images")
	}
}
