package shard

// Batch operations: group keys by destination shard, then visit each
// shard exactly once, taking its lock once for the whole group. On a
// store with S shards this turns k point-op lock acquisitions into at
// most min(k, S), and keeps every key's operations in their original
// batch order (the grouping below is a stable counting sort), so
// duplicate keys within a batch apply left to right.

import "repro/internal/expiry"

// plan is a reusable shard-grouping of batch indices: order holds the
// input indices stably sorted by shard; group g occupies
// order[start[g]:start[g+1]].
type plan struct {
	order []int
	start []int
}

// groupByShard stably buckets the n batch slots by shard of key(i).
func (s *Store) groupByShard(n int, key func(i int) int64) plan {
	nsh := len(s.cells)
	shardOf := make([]int, n)
	counts := make([]int, nsh+1)
	for i := 0; i < n; i++ {
		sh := s.ShardOf(key(i))
		shardOf[i] = sh
		counts[sh+1]++
	}
	for g := 0; g < nsh; g++ {
		counts[g+1] += counts[g]
	}
	start := append([]int(nil), counts...)
	order := make([]int, n)
	for i := 0; i < n; i++ { // stable scatter: preserves batch order per shard
		g := shardOf[i]
		order[counts[g]] = i
		counts[g]++
	}
	return plan{order: order, start: start}
}

// PutBatch applies every item as an upsert and returns the number of
// keys that were newly inserted (counting keys whose previous entry had
// already expired as new). Like Put, a batch upsert clears any
// previously recorded expiry. Items are grouped by shard; each shard's
// lock is taken once. Duplicate keys within the batch apply in batch
// order (the last value wins) and count as one insert.
func (s *Store) PutBatch(items []Item) (inserted int) {
	if len(items) == 0 {
		return 0
	}
	epoch := s.epoch()
	p := s.groupByShard(len(items), func(i int) int64 { return items[i].Key })
	for g := range s.cells {
		lo, hi := p.start[g], p.start[g+1]
		if lo == hi {
			continue
		}
		c := &s.cells[g]
		c.mu.Lock()
		for _, i := range p.order[lo:hi] {
			k := items[i].Key
			prevExp := c.expOf(k)
			if c.dict.Put(k, items[i].Val) || !expiry.Live(prevExp, epoch) {
				inserted++
			}
			c.setExp(k, 0)
		}
		c.version++
		c.mu.Unlock()
	}
	return inserted
}

// GetBatch looks up every key and returns values and presence flags
// aligned with keys; entries whose expiry has passed read as absent.
// Each shard's lock is taken once.
func (s *Store) GetBatch(keys []int64) (vals []int64, ok []bool) {
	vals = make([]int64, len(keys))
	ok = make([]bool, len(keys))
	if len(keys) == 0 {
		return vals, ok
	}
	epoch := s.epoch()
	p := s.groupByShard(len(keys), func(i int) int64 { return keys[i] })
	for g := range s.cells {
		lo, hi := p.start[g], p.start[g+1]
		if lo == hi {
			continue
		}
		c := &s.cells[g]
		c.rlock()
		for _, i := range p.order[lo:hi] {
			vals[i], ok[i] = c.dict.Get(keys[i])
			if ok[i] && !c.liveAt(keys[i], epoch) {
				vals[i], ok[i] = 0, false
			}
		}
		c.runlock()
	}
	return vals, ok
}

// DeleteBatch removes every key and returns the number of keys that
// were LOGICALLY present; physically present entries whose expiry has
// passed are removed too, but not counted. Each shard's lock is taken
// once. Duplicate keys within the batch count at most once (the second
// delete finds nothing).
func (s *Store) DeleteBatch(keys []int64) (deleted int) {
	if len(keys) == 0 {
		return 0
	}
	epoch := s.epoch()
	p := s.groupByShard(len(keys), func(i int) int64 { return keys[i] })
	for g := range s.cells {
		lo, hi := p.start[g], p.start[g+1]
		if lo == hi {
			continue
		}
		c := &s.cells[g]
		c.mu.Lock()
		removed := false
		for _, i := range p.order[lo:hi] {
			exp := c.expOf(keys[i])
			if c.dict.Delete(keys[i]) {
				c.setExp(keys[i], 0)
				removed = true
				if expiry.Live(exp, epoch) {
					deleted++
				}
			}
		}
		if removed {
			c.version++
		}
		c.mu.Unlock()
	}
	return deleted
}
