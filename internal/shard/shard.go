package shard

import (
	"fmt"
	"sync"

	"repro/internal/cobt"
	"repro/internal/expiry"
	"repro/internal/hipma"
	"repro/internal/iomodel"
)

// Item re-exports the dictionary element type: a key with a payload.
type Item = hipma.Item

// Config holds the store's construction parameters.
type Config struct {
	// Shards is the number of shards; it must be a power of two >= 1.
	Shards int
	// PMA supplies the per-shard dictionary constants.
	PMA hipma.Config
}

// DefaultConfig returns cfg with the paper's PMA constants and the given
// shard count.
func DefaultConfig(shards int) Config {
	return Config{Shards: shards, PMA: hipma.DefaultConfig()}
}

// cell is one shard: a dictionary plus its lock and optional tracker.
type cell struct {
	mu   sync.RWMutex
	dict *cobt.Dictionary
	// exps maps key -> absolute expiry epoch for exactly the keys that
	// have one; recorded expiries are never zero, and every recorded key
	// is present in dict. It lives under the same lock as dict, so an
	// entry and its expiry always mutate together. Stores that never use
	// TTLs keep it empty and pay one Len() == 0 check per operation.
	exps *cobt.Dictionary
	io   *iomodel.Tracker
	// version counts content mutations, bumped under mu by every
	// operation that may have changed the dictionary. Readers take at
	// least the shared lock.
	version uint64
}

// rlock takes the shard's lock for a read-only dictionary operation.
// With a tracker attached even reads mutate shared state (I/O counters,
// LRU cache), so accounting shards fall back to the exclusive lock.
func (c *cell) rlock() {
	if c.io != nil {
		c.mu.Lock()
	} else {
		c.mu.RLock()
	}
}

func (c *cell) runlock() {
	if c.io != nil {
		c.mu.Unlock()
	} else {
		c.mu.RUnlock()
	}
}

// Store is a concurrent sharded dictionary. It is safe for concurrent
// use by multiple goroutines; see the package comment for the locking
// contract. The zero value is unusable; use New.
type Store struct {
	mask  uint64 // shards-1
	hseed uint64 // routing seed: shard assignment is mix(key, hseed)
	cfg   hipma.Config
	// clock supplies the TTL epoch for lazy read-side filtering. nil
	// pins the store at epoch 0, under which nothing ever expires. Set
	// it with SetClock before the store is shared.
	clock expiry.Clock
	cells []cell
	// mergePool recycles the k-way merge's per-scan state (run structs
	// and per-shard item buffers) across Range/RangeN/Ascend calls.
	// Item is pointer-free, so pooled buffers pin no user data.
	mergePool sync.Pool
}

// New returns an empty store with the given power-of-two shard count.
// The seed drives all of the store's randomness: the shard-routing hash
// and every per-shard dictionary's random choices. trackers must be nil
// (no DAM accounting) or hold exactly one tracker per shard.
func New(shards int, seed uint64, trackers []*iomodel.Tracker) (*Store, error) {
	return NewWithConfig(DefaultConfig(shards), seed, trackers)
}

// NewWithConfig returns an empty store with custom per-shard dictionary
// constants.
func NewWithConfig(cfg Config, seed uint64, trackers []*iomodel.Tracker) (*Store, error) {
	if cfg.Shards < 1 || cfg.Shards&(cfg.Shards-1) != 0 {
		return nil, fmt.Errorf("shard: shard count %d is not a power of two >= 1", cfg.Shards)
	}
	if trackers != nil && len(trackers) != cfg.Shards {
		return nil, fmt.Errorf("shard: %d trackers for %d shards", len(trackers), cfg.Shards)
	}
	s := &Store{
		mask:  uint64(cfg.Shards - 1),
		hseed: mix(seed),
		cfg:   cfg.PMA,
		cells: make([]cell, cfg.Shards),
	}
	for i := range s.cells {
		var t *iomodel.Tracker
		if trackers != nil {
			t = trackers[i]
		}
		d, err := cobt.NewWithConfig(cfg.PMA, shardSeed(seed, i), t)
		if err != nil {
			return nil, err
		}
		// The expiry index never carries a tracker: it is TTL metadata,
		// and charging its probes to the DAM counters would distort the
		// paper's I/O accounting of the data structure itself.
		e, err := cobt.NewWithConfig(cfg.PMA, expShardSeed(seed, i), nil)
		if err != nil {
			return nil, err
		}
		s.cells[i].dict = d
		s.cells[i].exps = e
		s.cells[i].io = t
	}
	return s, nil
}

// mix is the splitmix64 finalizer, a strong 64-bit mixing function.
func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// MixSeed applies the store's seed finalizer. NewWithConfig(cfg, seed)
// produces a store whose RoutingSeed() is MixSeed(seed); callers that
// know only a construction seed (e.g. a derived per-tenant seed) can
// compute the persisted routing identity without building a store.
func MixSeed(seed uint64) uint64 { return mix(seed) }

// shardSeed derives shard i's dictionary seed from the master seed so
// that shards consume independent randomness streams.
func shardSeed(seed uint64, i int) uint64 {
	return mix(seed + 0x9e3779b97f4a7c15*uint64(i+1))
}

// expShardSeed derives shard i's expiry-index seed, a stream independent
// of the data dictionary's.
func expShardSeed(seed uint64, i int) uint64 {
	return mix(shardSeed(seed, i) ^ 0x7ee150deadc0ffee)
}

// ShardOf returns the shard index key routes to: a deterministic
// function of (key, seed) only, never of the operation history, which is
// what keeps the sharded image set history independent.
func (s *Store) ShardOf(key int64) int {
	return int(mix(uint64(key)+s.hseed) & s.mask)
}

// NumShards returns the shard count.
func (s *Store) NumShards() int { return len(s.cells) }

// PMAConfig returns the per-shard dictionary constants the store was
// built with, so satellite stores (per-tenant cells) can mirror them
// and stay structurally canonical alongside the default keyspace.
func (s *Store) PMAConfig() hipma.Config { return s.cfg }

// RoutingSeed returns the store's mixed routing seed. It is part of the
// persistent identity of the store: shard assignment and the canonical
// per-shard image seeds are both derived from it, so a durable layer
// must persist it to keep lookups routing to the shards that hold the
// keys and to keep checkpoint images canonical across reopenings.
func (s *Store) RoutingSeed() uint64 { return s.hseed }

// SetClock attaches the epoch clock that drives TTL expiry (see
// repro/internal/expiry). It must be called before the store is shared
// between goroutines — the field is read without synchronization on
// every operation. A store without a clock sits at epoch 0 forever,
// under which nothing expires. The clock governs only the LAZY read
// filtering; sweeps take their epoch explicitly, so physical removal
// stays a deterministic function of (contents, epoch).
func (s *Store) SetClock(c expiry.Clock) { s.clock = c }

// Clock returns the store's epoch clock (nil: none attached).
func (s *Store) Clock() expiry.Clock { return s.clock }

// epoch reads the current TTL epoch (0 without a clock).
func (s *Store) epoch() int64 { return expiry.Epoch(s.clock) }

// ShardVersion returns shard i's modification counter: it advances on
// every operation that may have changed the shard's contents, and is
// stable otherwise. Compare against the value returned by SnapshotShard
// to decide whether a persisted image of the shard is stale.
func (s *Store) ShardVersion(i int) uint64 {
	c := &s.cells[i]
	c.rlock()
	v := c.version
	c.runlock()
	return v
}

// Put inserts or updates the value for key and reports whether the key
// was newly inserted (counting a key whose previous entry had already
// expired as new). A plain Put clears any previously recorded expiry:
// the entry never expires until a PutTTL says otherwise. It locks one
// shard.
func (s *Store) Put(key, val int64) (inserted bool) {
	return s.PutTTL(key, val, 0)
}

// Get returns the value stored for key and whether it exists. An entry
// whose expiry has passed is reported absent even before a sweep has
// physically removed it. It locks one shard (shared unless the shard
// has a tracker).
func (s *Store) Get(key int64) (val int64, ok bool) {
	epoch := s.epoch()
	c := &s.cells[s.ShardOf(key)]
	c.rlock()
	val, ok = c.dict.Get(key)
	if ok && !c.liveAt(key, epoch) {
		val, ok = 0, false
	}
	c.runlock()
	return val, ok
}

// Has reports whether key is present (and not expired).
func (s *Store) Has(key int64) bool {
	epoch := s.epoch()
	c := &s.cells[s.ShardOf(key)]
	c.rlock()
	ok := c.dict.Has(key) && c.liveAt(key, epoch)
	c.runlock()
	return ok
}

// Delete removes key and reports whether it was LOGICALLY present: a
// physically present entry whose expiry has passed is removed too (the
// bytes must go either way) but reported absent, exactly as Get would
// have reported it. It locks one shard.
func (s *Store) Delete(key int64) bool {
	epoch := s.epoch()
	c := &s.cells[s.ShardOf(key)]
	c.mu.Lock()
	exp := c.expOf(key)
	deleted := c.dict.Delete(key)
	if deleted {
		c.setExp(key, 0)
		c.version++
	}
	c.mu.Unlock()
	return deleted && expiry.Live(exp, epoch)
}

// Len returns the number of live keys across all shards — entries whose
// expiry has passed are excluded even before a sweep physically removes
// them — observed at an atomic cut (all shard locks held). The cost is
// O(shards + TTL'd entries): shards without expiries pay nothing extra.
func (s *Store) Len() int {
	epoch := s.epoch()
	s.lockAllShared()
	n := 0
	for i := range s.cells {
		c := &s.cells[i]
		n += c.dict.Len() - c.deadCount(epoch)
	}
	s.unlockAllShared()
	return n
}

// ShardLen returns the number of PHYSICAL keys in shard i — including
// expired-but-unswept entries — for load-balance diagnostics.
func (s *Store) ShardLen(i int) int {
	c := &s.cells[i]
	c.rlock()
	n := c.dict.Len()
	c.runlock()
	return n
}

// Stats returns the aggregated DAM-model counters across all shard
// trackers (zero if the store was built without trackers). B is taken
// from the first tracker.
func (s *Store) Stats() iomodel.Stats {
	s.lockAllShared()
	var agg iomodel.Stats
	agg.B = 1
	first := true
	for i := range s.cells {
		t := s.cells[i].io
		if t == nil {
			continue
		}
		snap := t.Snapshot()
		if first {
			agg.B = snap.B
			first = false
		}
		agg.Reads += snap.Reads
		agg.Writes += snap.Writes
		agg.Hits += snap.Hits
	}
	s.unlockAllShared()
	return agg
}

// CheckInvariants verifies every shard's dictionary invariants plus the
// sharding invariant (every stored key routes to the shard holding it)
// and the TTL invariants: every recorded expiry is nonzero, routes to
// its shard, and names a key the shard actually holds.
func (s *Store) CheckInvariants() error {
	s.lockAllShared()
	defer s.unlockAllShared()
	for i := range s.cells {
		if err := s.cells[i].dict.CheckInvariants(); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
		if err := s.cells[i].exps.CheckInvariants(); err != nil {
			return fmt.Errorf("shard %d expiry index: %w", i, err)
		}
		var routeErr error
		s.cells[i].dict.Ascend(func(it Item) bool {
			if got := s.ShardOf(it.Key); got != i {
				routeErr = fmt.Errorf("shard: key %d stored in shard %d but routes to %d",
					it.Key, i, got)
				return false
			}
			return true
		})
		if routeErr != nil {
			return routeErr
		}
		s.cells[i].exps.Ascend(func(it Item) bool {
			switch {
			case it.Val == 0:
				routeErr = fmt.Errorf("shard: key %d has a zero expiry recorded in shard %d", it.Key, i)
			case s.ShardOf(it.Key) != i:
				routeErr = fmt.Errorf("shard: expiry for key %d stored in shard %d but routes to %d",
					it.Key, i, s.ShardOf(it.Key))
			case !s.cells[i].dict.Has(it.Key):
				routeErr = fmt.Errorf("shard: shard %d records an expiry for absent key %d", i, it.Key)
			}
			return routeErr == nil
		})
		if routeErr != nil {
			return routeErr
		}
	}
	return nil
}

// lockAllShared acquires every shard's read-path lock in shard order.
// The fixed order makes concurrent whole-store operations deadlock-free.
func (s *Store) lockAllShared() {
	for i := range s.cells {
		s.cells[i].rlock()
	}
}

func (s *Store) unlockAllShared() {
	for i := range s.cells {
		s.cells[i].runlock()
	}
}
