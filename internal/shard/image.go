package shard

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/cobt"
	"repro/internal/hipma"
	"repro/internal/iomodel"
)

// Disk image: a fixed header followed by each shard's canonical image,
// length-prefixed, in shard order.
//
//	magic   [8]byte  "ASHARD02"
//	shards  uint64   power of two >= 1
//	hseed   uint64   routing seed (needed to route lookups after a load)
//	per shard: len uint64, then len bytes of the shard's canonical image
//
// A shard's canonical image is a pair of PMA images (each carrying its
// own checksum, see hipma.WriteTo): the data dictionary, then the TTL
// expiry index (key -> absolute expiry for exactly the keys that have
// one; empty when no TTLs are in play). The data image is length-
// prefixed (u64 little-endian) so each part is read through its own
// bounded reader — the PMA image reader buffers, so back-to-back images
// cannot share one stream.
//
// The persisted shard images are CANONICAL: WriteTo does not dump the
// in-memory incarnation (whose layout depends on the random stream the
// update history happened to consume — history independent only in
// distribution), but instead serializes a fresh bulk-load of the shard's
// sorted contents under a seed derived from (hseed, shard index). The
// byte stream is therefore a pure function of the store's contents and
// its persisted randomness: two stores with the same seed and the same
// (key, value, expiry) set produce byte-identical images for every
// shard, whatever operation sequences built them — including whatever
// schedule of TTL sweeps physically removed their dead entries. That is
// the paper's anti-persistence goal stated at the layer the observer
// actually sees — the disk.
const storeMagic = "ASHARD02"

// maxImageShards bounds the shard count accepted from an untrusted
// image, so a corrupt header cannot drive a huge allocation (the cell
// slice is allocated before any shard data is read).
const maxImageShards = 1 << 16

// canonSeed derives shard i's canonical-image seed from the persisted
// routing seed, so the canonical image survives save/load round trips.
func canonSeed(hseed uint64, i int) uint64 {
	return mix((hseed ^ 0xbadc0ffee0ddf00d) + 0x9e3779b97f4a7c15*uint64(i))
}

// canonExpSeed derives shard i's canonical expiry-index seed, a stream
// independent of the data image's but equally a pure function of the
// persisted routing seed.
func canonExpSeed(hseed uint64, i int) uint64 {
	return mix(canonSeed(hseed, i) ^ 0x7ee150deadc0ffee)
}

// canonicalDictImage writes the canonical image of one dictionary: a
// one-shot bulk load of its current sorted contents under the given
// seed. The caller holds the owning cell's lock.
func canonicalDictImage(d *cobt.Dictionary, cfg hipma.Config, seed uint64, w io.Writer) (int64, error) {
	var items []Item
	if n := d.Len(); n > 0 {
		items = d.PMA().Query(0, n-1, nil)
	}
	canon, err := hipma.BulkLoadWithConfig(cfg, items, seed, nil)
	if err != nil {
		return 0, err
	}
	return canon.WriteTo(w)
}

// canonicalShardImage writes the canonical image of shard c: the data
// dictionary's bulk-loaded image (length-prefixed) followed by the
// expiry index's. The caller holds c's lock.
func canonicalShardImage(c *cell, cfg hipma.Config, hseed uint64, i int, w io.Writer) (int64, error) {
	var data bytes.Buffer
	if _, err := canonicalDictImage(c.dict, cfg, canonSeed(hseed, i), &data); err != nil {
		return 0, err
	}
	var lenHdr [8]byte
	binary.LittleEndian.PutUint64(lenHdr[:], uint64(data.Len()))
	total := int64(0)
	n, err := w.Write(lenHdr[:])
	total += int64(n)
	if err != nil {
		return total, err
	}
	n64, err := data.WriteTo(w)
	total += n64
	if err != nil {
		return total, err
	}
	n64, err = canonicalDictImage(c.exps, cfg, canonExpSeed(hseed, i), w)
	return total + n64, err
}

// maxDictImageLen bounds the data-part length accepted from an
// untrusted shard image; the PMA reader's own incremental allocation
// bounds memory, this just rejects absurd prefixes before wrapping a
// reader around them.
const maxDictImageLen = int64(1) << 48

// readShardImage reads one shard's canonical image pair from r,
// returning the data dictionary and the expiry index.
func readShardImage(r io.Reader, seed uint64, i int, t *iomodel.Tracker) (dict, exps *cobt.Dictionary, err error) {
	var lenHdr [8]byte
	if _, err := io.ReadFull(r, lenHdr[:]); err != nil {
		return nil, nil, fmt.Errorf("reading data image length: %w", err)
	}
	dataLen := int64(binary.LittleEndian.Uint64(lenHdr[:]))
	if dataLen < 0 || dataLen > maxDictImageLen {
		return nil, nil, fmt.Errorf("implausible data image length %d", dataLen)
	}
	dlr := io.LimitReader(r, dataLen)
	dict, err = cobt.ReadDictionary(dlr, shardSeed(seed, i), t)
	if err != nil {
		return nil, nil, err
	}
	// The data image must fill its declared length exactly, or the
	// expiry read below would start misaligned.
	if extra, err := io.Copy(io.Discard, dlr); err != nil {
		return nil, nil, err
	} else if extra > 0 {
		return nil, nil, fmt.Errorf("%d trailing bytes after data image", extra)
	}
	exps, err = cobt.ReadDictionary(r, expShardSeed(seed, i), nil)
	if err != nil {
		return nil, nil, fmt.Errorf("expiry index: %w", err)
	}
	return dict, exps, nil
}

// WriteTo serializes the whole store. It holds every shard's lock, so
// the image is an atomic snapshot. It implements io.WriterTo.
func (s *Store) WriteTo(w io.Writer) (int64, error) {
	s.lockAllShared()
	defer s.unlockAllShared()
	var hdr [24]byte
	copy(hdr[:8], storeMagic)
	binary.LittleEndian.PutUint64(hdr[8:], uint64(len(s.cells)))
	binary.LittleEndian.PutUint64(hdr[16:], s.hseed)
	total := int64(0)
	n, err := w.Write(hdr[:])
	total += int64(n)
	if err != nil {
		return total, err
	}
	for i := range s.cells {
		// The length prefix needs the image size up front, so render the
		// canonical shard image to memory first (it is 1/S of the store).
		var buf bytes.Buffer
		if _, err := canonicalShardImage(&s.cells[i], s.cfg, s.hseed, i, &buf); err != nil {
			return total, err
		}
		var lenHdr [8]byte
		binary.LittleEndian.PutUint64(lenHdr[:], uint64(buf.Len()))
		n, err := w.Write(lenHdr[:])
		total += int64(n)
		if err != nil {
			return total, err
		}
		n64, err := buf.WriteTo(w)
		total += n64
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// WriteShard serializes shard i's canonical image alone (no container
// header): a pure function of the shard's contents and the store seed,
// byte-identical across any two operation histories that reach the same
// contents.
func (s *Store) WriteShard(i int, w io.Writer) (int64, error) {
	if i < 0 || i >= len(s.cells) {
		return 0, fmt.Errorf("shard: WriteShard(%d) out of range, %d shards", i, len(s.cells))
	}
	c := &s.cells[i]
	c.rlock()
	defer c.runlock()
	return canonicalShardImage(c, s.cfg, s.hseed, i, w)
}

// SnapshotShard writes shard i's canonical image to w, like WriteShard,
// and additionally returns the shard's version counter at the moment of
// the snapshot. The version and the image are captured under the same
// lock hold, so a later ShardVersion(i) == version guarantees the image
// still describes the shard's exact contents — the contract an
// incremental checkpointer needs.
func (s *Store) SnapshotShard(i int, w io.Writer) (version uint64, written int64, err error) {
	if i < 0 || i >= len(s.cells) {
		return 0, 0, fmt.Errorf("shard: SnapshotShard(%d) out of range, %d shards", i, len(s.cells))
	}
	c := &s.cells[i]
	c.rlock()
	defer c.runlock()
	version = c.version
	written, err = canonicalShardImage(c, s.cfg, s.hseed, i, w)
	return version, written, err
}

// AssembleStore rebuilds a store from one canonical image per shard (as
// produced by WriteShard or SnapshotShard) plus the persisted routing
// seed. It is the recovery path of the durable layer: the manifest
// carries hseed and the shard files carry the images. len(images) must
// be a power of two >= 1; trackers must be nil or hold one tracker per
// shard. The caller's seed supplies fresh randomness for future
// operations. Shard, routing, and TTL invariants are verified. The
// returned store has no clock; the caller attaches one with SetClock
// before sharing it.
func AssembleStore(hseed uint64, images []io.Reader, seed uint64, trackers []*iomodel.Tracker) (*Store, error) {
	nsh := len(images)
	if nsh < 1 || nsh&(nsh-1) != 0 {
		return nil, fmt.Errorf("shard: %d shard images is not a power of two >= 1", nsh)
	}
	if trackers != nil && len(trackers) != nsh {
		return nil, fmt.Errorf("shard: %d trackers for %d shard images", len(trackers), nsh)
	}
	s := &Store{mask: uint64(nsh - 1), hseed: hseed, cells: make([]cell, nsh)}
	for i, r := range images {
		var t *iomodel.Tracker
		if trackers != nil {
			t = trackers[i]
		}
		d, e, err := readShardImage(r, seed, i, t)
		if err != nil {
			return nil, fmt.Errorf("shard: shard %d: %w", i, err)
		}
		// The pair must fill its image exactly; trailing bytes mean a
		// corrupt or truncated-and-padded file.
		if extra, err := io.Copy(io.Discard, r); err != nil {
			return nil, fmt.Errorf("shard: shard %d: %w", i, err)
		} else if extra > 0 {
			return nil, fmt.Errorf("shard: shard %d: %d trailing bytes after image", i, extra)
		}
		s.cells[i].dict = d
		s.cells[i].exps = e
		s.cells[i].io = t
	}
	s.cfg = s.cells[0].dict.PMA().Config()
	if err := s.CheckInvariants(); err != nil {
		return nil, fmt.Errorf("shard: corrupt shard images: %w", err)
	}
	return s, nil
}

// ReadStore deserializes a store image produced by WriteTo. The routing
// seed is part of the image (lookups must keep routing to the shards
// that hold the keys); the caller's seed supplies only fresh randomness
// for future per-shard operations. trackers must be nil or hold one
// tracker per stored shard. Shard, routing, and TTL invariants are
// verified.
func ReadStore(r io.Reader, seed uint64, trackers []*iomodel.Tracker) (*Store, error) {
	var hdr [24]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("shard: reading header: %w", err)
	}
	if string(hdr[:8]) != storeMagic {
		return nil, fmt.Errorf("shard: bad magic %q", hdr[:8])
	}
	nsh64 := binary.LittleEndian.Uint64(hdr[8:])
	hseed := binary.LittleEndian.Uint64(hdr[16:])
	if nsh64 < 1 || nsh64 > maxImageShards || nsh64&(nsh64-1) != 0 {
		return nil, fmt.Errorf("shard: implausible shard count %d", nsh64)
	}
	nsh := int(nsh64)
	if trackers != nil && len(trackers) != nsh {
		return nil, fmt.Errorf("shard: %d trackers for %d stored shards", len(trackers), nsh)
	}
	s := &Store{mask: nsh64 - 1, hseed: hseed, cells: make([]cell, nsh)}
	for i := 0; i < nsh; i++ {
		var lenHdr [8]byte
		if _, err := io.ReadFull(r, lenHdr[:]); err != nil {
			return nil, fmt.Errorf("shard: reading shard %d length: %w", i, err)
		}
		imgLen := binary.LittleEndian.Uint64(lenHdr[:])
		var t *iomodel.Tracker
		if trackers != nil {
			t = trackers[i]
		}
		lr := io.LimitReader(r, int64(imgLen))
		d, e, err := readShardImage(lr, seed, i, t)
		if err != nil {
			return nil, fmt.Errorf("shard: shard %d: %w", i, err)
		}
		// The shard image must fill its declared length exactly; trailing
		// bytes would misalign every later shard's length header.
		if extra, err := io.Copy(io.Discard, lr); err != nil {
			return nil, fmt.Errorf("shard: shard %d: %w", i, err)
		} else if extra > 0 {
			return nil, fmt.Errorf("shard: shard %d: %d trailing bytes after image", i, extra)
		}
		s.cells[i].dict = d
		s.cells[i].exps = e
		s.cells[i].io = t
	}
	s.cfg = s.cells[0].dict.PMA().Config()
	if err := s.CheckInvariants(); err != nil {
		return nil, fmt.Errorf("shard: corrupt image: %w", err)
	}
	return s, nil
}
