package shard

import "math"

// Cross-shard ordered iteration. The hash routing scatters any key
// interval across all shards, so Range and Ascend query every shard and
// merge the per-shard sorted streams with a k-way binary heap. Keys are
// unique across shards (each key routes to exactly one), so the merge
// needs no tie-breaking. Every variant yields only LIVE items: entries
// whose TTL expiry has passed are filtered under the same lock hold
// that copied them, before the merge ever sees them.
//
// Locking: Range and Ascend do NOT hold all shard locks for the
// duration of the scan, and never hold more than one lock at a time.
// Range copies each shard's [lo,hi] run under that shard's own brief
// read lock, then merges the copies with no locks held. Ascend streams
// each shard in fixed-size chunks, re-taking the shard's lock per
// refill and continuing strictly above the last key seen, so an early-
// exiting caller pays O(shards·chunk), not O(N), and a long scan never
// blocks writers on unrelated shards
// (BenchmarkStoreWriterLatencyDuringScan at the repo root measures the
// writer-latency win). The price is snapshot granularity: Range is
// per-shard consistent, Ascend per-chunk consistent; neither is a
// cross-shard atomic cut. Callers that need one should use WriteTo,
// which still holds every lock.

// runChunk is the Ascend refill size, in items.
const runChunk = 512

// mergeScratch is one scan's reusable state: a run struct and an item
// buffer per shard, plus the heap's pointer slice. Recycled through
// Store.mergePool so a steady scan workload stops allocating once the
// buffers have grown to its working set.
type mergeScratch struct {
	runs []run
	heap []*run
	bufs [][]Item
}

// scratchKeepCap bounds the per-shard item buffers a scratch may keep
// when returned to the pool: a whole-keyspace Range can grow a buffer
// to the shard's size, and pinning that forever would trade the
// allocation win for resident memory.
const scratchKeepCap = 64 << 10

func (s *Store) getScratch() *mergeScratch {
	if v := s.mergePool.Get(); v != nil {
		return v.(*mergeScratch)
	}
	n := len(s.cells)
	return &mergeScratch{
		runs: make([]run, n),
		heap: make([]*run, 0, n),
		bufs: make([][]Item, n),
	}
}

// putScratch reclaims the buffers the runs grew (refill may have
// reallocated them) and returns the scratch to the pool.
func (s *Store) putScratch(ms *mergeScratch) {
	for i := range ms.runs {
		if buf := ms.runs[i].buf; buf != nil && cap(buf) <= scratchKeepCap {
			ms.bufs[i] = buf[:0]
		}
		ms.runs[i] = run{}
	}
	ms.heap = ms.heap[:0]
	s.mergePool.Put(ms)
}

// run is one shard's contribution to a merge: either a fully copied
// window (Range) or a lazily refilled chunk stream (Ascend).
type run struct {
	c       *cell // non-nil: refill lazily from this shard; nil: buf is complete
	epoch   int64 // TTL epoch for refill-side liveness filtering
	buf     []Item
	pos     int
	last    int64 // largest key fetched so far (valid once started)
	started bool
}

func (r *run) head() Item { return r.buf[r.pos] }

// refill fetches the next chunk of keys strictly above r.last under the
// shard's own brief read lock and reports whether a head item exists.
// Anchoring on the last key (rather than a remembered rank) keeps the
// stream strictly increasing and duplicate-free even when the shard
// mutates between refills. Chunks whose items have all expired are
// skipped — the anchor advances past them — so a dead-heavy region
// costs extra refills, never a wrong result.
func (r *run) refill() bool {
	c := r.c
	if c == nil {
		return false
	}
	for {
		var lo int
		c.rlock()
		if !r.started {
			r.started = true
			lo = 0
		} else if r.last == math.MaxInt64 {
			lo = c.dict.Len() // nothing can follow the maximum key
		} else {
			lo = c.dict.RankOf(r.last + 1)
		}
		n := c.dict.Len()
		if lo >= n {
			c.runlock()
			r.c = nil // drained
			return false
		}
		hi := lo + runChunk - 1
		if hi >= n {
			hi = n - 1
		}
		r.buf = c.dict.PMA().Query(lo, hi, r.buf[:0])
		last := r.buf[len(r.buf)-1].Key
		r.buf = c.filterLive(r.buf, r.epoch)
		c.runlock()
		r.last = last
		if len(r.buf) > 0 {
			r.pos = 0
			return true
		}
	}
}

// advance moves to the next item, refilling lazily for shard-backed
// runs. It reports whether a current item exists.
func (r *run) advance() bool {
	r.pos++
	if r.pos < len(r.buf) {
		return true
	}
	return r.refill()
}

// siftDown maintains a min-heap of runs ordered by head key.
func siftDown(h []*run, i int) {
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < len(h) && h[l].head().Key < h[m].head().Key {
			m = l
		}
		if r < len(h) && h[r].head().Key < h[m].head().Key {
			m = r
		}
		if m == i {
			return
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}

// merge drains the runs in ascending key order, calling fn on every
// item until fn returns false. Runs must be non-empty (have a head).
func merge(h []*run, fn func(Item) bool) {
	for i := len(h)/2 - 1; i >= 0; i-- {
		siftDown(h, i)
	}
	for len(h) > 0 {
		if !fn(h[0].head()) {
			return
		}
		if h[0].advance() {
			siftDown(h, 0)
		} else {
			h[0] = h[len(h)-1]
			h = h[:len(h)-1]
			if len(h) > 0 {
				siftDown(h, 0)
			}
		}
	}
}

// Range appends all live items with lo <= key <= hi to out, in
// ascending key order, merged across shards. Each shard's run is copied
// and liveness-filtered under its own brief read lock (O(log_B N +
// k_i/B) I/Os, Theorem 2), so writers on other shards are never
// blocked; the merged result is per-shard consistent, not a cross-shard
// atomic cut.
func (s *Store) Range(lo, hi int64, out []Item) []Item {
	if lo > hi {
		return out
	}
	epoch := s.epoch()
	ms := s.getScratch()
	runs := ms.heap
	for i := range s.cells {
		c := &s.cells[i]
		c.rlock()
		items := c.filterLive(c.dict.Range(lo, hi, ms.bufs[i][:0]), epoch)
		c.runlock()
		ms.runs[i].buf = items
		if len(items) > 0 {
			runs = append(runs, &ms.runs[i])
		}
	}
	merge(runs, func(it Item) bool {
		out = append(out, it)
		return true
	})
	s.putScratch(ms)
	return out
}

// rangeLiveN appends up to max live items of [lo, hi] from c to out.
// Without TTLs in play it is a single dictionary call; with them it
// refetches past expired entries so a dead-heavy prefix cannot starve
// the window of the live items beyond it. The caller holds the cell's
// lock.
func (c *cell) rangeLiveN(lo, hi int64, max int, epoch int64, out []Item) []Item {
	if epoch <= 0 || c.exps.Len() == 0 {
		return c.dict.RangeN(lo, hi, max, out)
	}
	base := len(out)
	cur := lo
	for len(out)-base < max {
		need := max - (len(out) - base)
		batch := c.dict.RangeN(cur, hi, need, nil)
		for _, it := range batch {
			if c.liveAt(it.Key, epoch) {
				out = append(out, it)
			}
		}
		if len(batch) < need {
			break // window exhausted
		}
		last := batch[len(batch)-1].Key
		if last >= hi || last == math.MaxInt64 {
			break
		}
		cur = last + 1
	}
	return out
}

// RangeN appends at most max live items with lo <= key <= hi to out in
// ascending key order and reports whether the window held more. Each
// shard contributes a window bounded at max+1 live items under its own
// brief lock (the merged prefix of length max+1 can draw at most that
// many from any one shard), so memory and work are O(shards·max) plus
// the expired entries stepped over, however large the full window is —
// the form a network server must use, where max is the reply-size cap
// and clients paginate. Like Range, the result is per-shard consistent,
// not a cross-shard cut.
func (s *Store) RangeN(lo, hi int64, max int, out []Item) (_ []Item, more bool) {
	if lo > hi || max <= 0 {
		return out, false
	}
	if max > int(^uint(0)>>1)-1 {
		max = int(^uint(0)>>1) - 1 // keep the max+1 sentinel below from overflowing
	}
	epoch := s.epoch()
	ms := s.getScratch()
	runs := ms.heap
	for i := range s.cells {
		c := &s.cells[i]
		c.rlock()
		items := c.rangeLiveN(lo, hi, max+1, epoch, ms.bufs[i][:0])
		c.runlock()
		ms.runs[i].buf = items
		if len(items) > 0 {
			runs = append(runs, &ms.runs[i])
		}
	}
	n := 0
	merge(runs, func(it Item) bool {
		if n == max {
			more = true
			return false
		}
		out = append(out, it)
		n++
		return true
	})
	s.putScratch(ms)
	return out, more
}

// Ascend calls fn on every live item in ascending key order, merged
// across shards, stopping early if fn returns false. Shards are
// streamed in runChunk-item chunks, each fetched under its shard's own
// brief read lock, so memory stays O(shards·chunk) and an early stop
// costs the same; no locks are held while fn runs, so fn may call back
// into the store. The iteration is per-chunk consistent: items are
// yielded in strictly increasing key order, but concurrent mutations
// may or may not be observed.
func (s *Store) Ascend(fn func(Item) bool) {
	epoch := s.epoch()
	ms := s.getScratch()
	runs := ms.heap
	for i := range s.cells {
		r := &ms.runs[i]
		*r = run{c: &s.cells[i], epoch: epoch, buf: ms.bufs[i][:0]}
		if r.refill() {
			runs = append(runs, r)
		}
	}
	merge(runs, fn)
	s.putScratch(ms)
}

// minLive returns the cell's smallest live item. The caller holds the
// cell's lock.
func (c *cell) minLive(epoch int64) (Item, bool) {
	if epoch <= 0 || c.exps.Len() == 0 {
		return c.dict.Min()
	}
	var out Item
	found := false
	c.dict.Ascend(func(it Item) bool {
		if c.liveAt(it.Key, epoch) {
			out, found = it, true
			return false
		}
		return true
	})
	return out, found
}

// maxLive returns the cell's largest live item. The caller holds the
// cell's lock.
func (c *cell) maxLive(epoch int64) (Item, bool) {
	if epoch <= 0 || c.exps.Len() == 0 {
		return c.dict.Max()
	}
	for r := c.dict.Len() - 1; r >= 0; r-- {
		if it := c.dict.Select(r); c.liveAt(it.Key, epoch) {
			return it, true
		}
	}
	return Item{}, false
}

// Min returns the smallest live item across all shards. ok is false
// when the store is (logically) empty.
func (s *Store) Min() (it Item, ok bool) {
	epoch := s.epoch()
	s.lockAllShared()
	defer s.unlockAllShared()
	for i := range s.cells {
		if m, found := s.cells[i].minLive(epoch); found && (!ok || m.Key < it.Key) {
			it, ok = m, true
		}
	}
	return it, ok
}

// Max returns the largest live item across all shards. ok is false when
// the store is (logically) empty.
func (s *Store) Max() (it Item, ok bool) {
	epoch := s.epoch()
	s.lockAllShared()
	defer s.unlockAllShared()
	for i := range s.cells {
		if m, found := s.cells[i].maxLive(epoch); found && (!ok || m.Key > it.Key) {
			it, ok = m, true
		}
	}
	return it, ok
}
