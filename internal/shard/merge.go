package shard

// Cross-shard ordered iteration. The hash routing scatters any key
// interval across all shards, so Range and Ascend query every shard and
// merge the per-shard sorted streams with a k-way binary heap. Keys are
// unique across shards (each key routes to exactly one), so the merge
// needs no tie-breaking.

// cursor walks one shard's items in rank order, fetching them in chunks
// through the underlying PMA (O(k/B) I/Os per chunk, Theorem 1).
type cursor struct {
	c    *cell
	n    int // shard length at snapshot time
	next int // next rank to fetch into buf
	buf  []Item
	pos  int // index of the current item in buf
}

const cursorChunk = 512

// head returns the cursor's current item; valid only after a successful
// refill/advance.
func (cu *cursor) head() Item { return cu.buf[cu.pos] }

// advance moves to the next item, refilling the chunk buffer as needed.
// It reports whether a current item exists.
func (cu *cursor) advance() bool {
	cu.pos++
	if cu.pos < len(cu.buf) {
		return true
	}
	if cu.next >= cu.n {
		return false
	}
	j := cu.next + cursorChunk - 1
	if j >= cu.n {
		j = cu.n - 1
	}
	cu.buf = cu.c.dict.PMA().Query(cu.next, j, cu.buf[:0])
	cu.next = j + 1
	cu.pos = 0
	return len(cu.buf) > 0
}

// heapify/siftDown maintain a min-heap of cursors ordered by head key.
func siftDown(h []*cursor, i int) {
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < len(h) && h[l].head().Key < h[m].head().Key {
			m = l
		}
		if r < len(h) && h[r].head().Key < h[m].head().Key {
			m = r
		}
		if m == i {
			return
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}

// merge drains the cursors in ascending key order, calling fn on every
// item until fn returns false. Callers must hold the relevant locks.
func merge(cursors []*cursor, fn func(Item) bool) {
	h := cursors[:0]
	for _, cu := range cursors {
		cu.pos = -1 // advance() lands on rank 0
		if cu.advance() {
			h = append(h, cu)
		}
	}
	for i := len(h)/2 - 1; i >= 0; i-- {
		siftDown(h, i)
	}
	for len(h) > 0 {
		if !fn(h[0].head()) {
			return
		}
		if h[0].advance() {
			siftDown(h, 0)
		} else {
			h[0] = h[len(h)-1]
			h = h[:len(h)-1]
			if len(h) > 0 {
				siftDown(h, 0)
			}
		}
	}
}

// newCursors builds one chunked cursor per non-empty shard, each
// starting at rank 0. Callers must hold all shard locks.
func (s *Store) newCursors() []*cursor {
	cursors := make([]*cursor, 0, len(s.cells))
	for i := range s.cells {
		c := &s.cells[i]
		if c.dict.Len() == 0 {
			continue
		}
		cursors = append(cursors, &cursor{c: c, n: c.dict.Len()})
	}
	return cursors
}

// Range appends all items with lo <= key <= hi to out, in ascending key
// order, merged across shards. The per-shard runs are collected with
// every shard's lock held, so the result is an atomic snapshot; the
// merge itself runs on the copied runs after the locks are released.
func (s *Store) Range(lo, hi int64, out []Item) []Item {
	if lo > hi {
		return out
	}
	s.lockAllShared()
	// Collect per-shard sorted runs first (O(log_B N + k_i/B) I/Os each,
	// Theorem 2), then merge the k sorted runs with the heap.
	cursors := make([]*cursor, 0, len(s.cells))
	for i := range s.cells {
		run := s.cells[i].dict.Range(lo, hi, nil)
		if len(run) > 0 {
			// A pre-filled cursor: the run is already in memory, so n
			// and next mark it fully fetched.
			cursors = append(cursors, &cursor{buf: run, n: len(run), next: len(run)})
		}
	}
	s.unlockAllShared()
	merge(cursors, func(it Item) bool {
		out = append(out, it)
		return true
	})
	return out
}

// Ascend calls fn on every item in ascending key order, merged across
// shards, stopping early if fn returns false. All shard locks are held
// until Ascend returns: fn must not call back into the store.
func (s *Store) Ascend(fn func(Item) bool) {
	s.lockAllShared()
	defer s.unlockAllShared()
	merge(s.newCursors(), fn)
}

// Min returns the smallest item across all shards. ok is false when the
// store is empty.
func (s *Store) Min() (it Item, ok bool) {
	s.lockAllShared()
	defer s.unlockAllShared()
	for i := range s.cells {
		if m, found := s.cells[i].dict.Min(); found && (!ok || m.Key < it.Key) {
			it, ok = m, true
		}
	}
	return it, ok
}

// Max returns the largest item across all shards. ok is false when the
// store is empty.
func (s *Store) Max() (it Item, ok bool) {
	s.lockAllShared()
	defer s.unlockAllShared()
	for i := range s.cells {
		if m, found := s.cells[i].dict.Max(); found && (!ok || m.Key > it.Key) {
			it, ok = m, true
		}
	}
	return it, ok
}
