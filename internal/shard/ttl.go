package shard

// TTL support. The model (epoch clock, liveness predicate, sweep
// schedule) is owned by repro/internal/expiry; this file executes it
// under the shard locks:
//
//   - Each cell keeps an expiry index (exps) next to its data
//     dictionary, holding key -> absolute expiry for exactly the keys
//     that have one. Both mutate under the same lock, so an entry and
//     its expiry are always consistent.
//
//   - Reads filter lazily against the store clock's current epoch: a
//     dead entry is invisible the moment it expires, before anything
//     physically removes it.
//
//   - SweepExpired physically removes the entries dead at a given
//     epoch. The epoch is an explicit argument, never the wall clock,
//     so the surviving contents — and the canonical images rendered
//     from them — are a pure function of (contents, epoch). When the
//     sweep ran is unrecoverable from the bytes.

import "repro/internal/expiry"

// liveAt reports whether key is live at epoch. The caller holds the
// cell's lock; key need not be present (absent keys report live, which
// composes with a preceding dict presence check).
func (c *cell) liveAt(key, epoch int64) bool {
	if epoch <= 0 || c.exps.Len() == 0 {
		return true
	}
	e, ok := c.exps.Get(key)
	return !ok || expiry.Live(e, epoch)
}

// expOf returns key's recorded absolute expiry (0: none). The caller
// holds the cell's lock.
func (c *cell) expOf(key int64) int64 {
	if c.exps.Len() == 0 {
		return 0
	}
	e, ok := c.exps.Get(key)
	if !ok {
		return 0
	}
	return e
}

// setExp records (exp != 0) or clears (exp == 0) key's expiry. The
// caller holds the cell's exclusive lock.
func (c *cell) setExp(key, exp int64) {
	if exp != 0 {
		c.exps.Put(key, exp)
	} else if c.exps.Len() > 0 {
		c.exps.Delete(key)
	}
}

// deadCount counts entries already expired at epoch. The caller holds
// the cell's lock.
func (c *cell) deadCount(epoch int64) int {
	if epoch <= 0 || c.exps.Len() == 0 {
		return 0
	}
	dead := 0
	c.exps.Ascend(func(it Item) bool {
		if !expiry.Live(it.Val, epoch) {
			dead++
		}
		return true
	})
	return dead
}

// filterLive drops the items already expired at epoch, in place. The
// caller holds the cell's lock; items must belong to this cell.
func (c *cell) filterLive(items []Item, epoch int64) []Item {
	if epoch <= 0 || c.exps.Len() == 0 {
		return items
	}
	out := items[:0]
	for _, it := range items {
		if c.liveAt(it.Key, epoch) {
			out = append(out, it)
		}
	}
	return out
}

// PutTTL inserts or updates the value for key with an absolute expiry
// epoch (unix seconds; 0: never expires) and reports whether the key
// was newly inserted — counting a key whose previous entry had already
// expired as new, exactly as a reader would have seen it. The recorded
// expiry replaces any previous one. It locks one shard.
func (s *Store) PutTTL(key, val, exp int64) (inserted bool) {
	epoch := s.epoch()
	c := &s.cells[s.ShardOf(key)]
	c.mu.Lock()
	prevExp := c.expOf(key)
	physIns := c.dict.Put(key, val)
	inserted = physIns || !expiry.Live(prevExp, epoch)
	c.setExp(key, exp)
	c.version++
	c.mu.Unlock()
	return inserted
}

// GetTTL returns the value and recorded absolute expiry (0: none) for
// key, and whether the key is live. An entry whose expiry has passed is
// reported absent. It locks one shard.
func (s *Store) GetTTL(key int64) (val, exp int64, ok bool) {
	epoch := s.epoch()
	c := &s.cells[s.ShardOf(key)]
	c.rlock()
	defer c.runlock()
	val, ok = c.dict.Get(key)
	if !ok {
		return 0, 0, false
	}
	exp = c.expOf(key)
	if !expiry.Live(exp, epoch) {
		return 0, 0, false
	}
	return val, exp, true
}

// ExpiredKeys appends every key already dead at epoch to out — the
// worklist a sweeper feeds back through ApplyBatch as Expire ops. Each
// shard's expiry index is scanned under its own brief read lock, so the
// listing does not block writers on other shards; the result is
// per-shard consistent. Cost is O(TTL'd entries), not O(N).
func (s *Store) ExpiredKeys(epoch int64, out []int64) []int64 {
	if epoch <= 0 {
		return out
	}
	for i := range s.cells {
		c := &s.cells[i]
		c.rlock()
		if c.exps.Len() > 0 {
			c.exps.Ascend(func(it Item) bool {
				if !expiry.Live(it.Val, epoch) {
					out = append(out, it.Key)
				}
				return true
			})
		}
		c.runlock()
	}
	return out
}

// SweepExpired physically removes every entry that is already dead at
// epoch and returns how many it removed. The removal set is exactly
// {keys with 0 < exp <= epoch}, so the surviving contents are a pure
// function of (prior contents, epoch) — running the sweep late, twice,
// or shard by shard yields identical bytes, which is what keeps sweep
// TIMING out of the canonical images. Each shard is swept under its own
// exclusive lock; the cut is per-shard, which is harmless because a
// dead entry is invisible to readers whether or not it has been swept.
func (s *Store) SweepExpired(epoch int64) (swept int) {
	if epoch <= 0 {
		return 0
	}
	var dead []int64
	for i := range s.cells {
		c := &s.cells[i]
		c.mu.Lock()
		if c.exps.Len() == 0 {
			c.mu.Unlock()
			continue
		}
		dead = dead[:0]
		c.exps.Ascend(func(it Item) bool {
			if !expiry.Live(it.Val, epoch) {
				dead = append(dead, it.Key)
			}
			return true
		})
		for _, k := range dead {
			c.exps.Delete(k)
			c.dict.Delete(k)
		}
		if len(dead) > 0 {
			c.version++
		}
		c.mu.Unlock()
		swept += len(dead)
	}
	return swept
}
