package shard

import (
	"bytes"
	"testing"

	"repro/internal/expiry"
	"repro/internal/xrand"
)

func newTTLStore(t *testing.T, shards int, seed uint64, clk expiry.Clock) *Store {
	t.Helper()
	s, err := New(shards, seed, nil)
	if err != nil {
		t.Fatal(err)
	}
	s.SetClock(clk)
	return s
}

func TestTTLLazyFiltering(t *testing.T) {
	clk := expiry.NewManual(10)
	s := newTTLStore(t, 4, 7, clk)

	s.PutTTL(1, 100, 20) // expires at epoch 20
	s.PutTTL(2, 200, 0)  // never expires
	s.Put(3, 300)        // never expires
	s.PutTTL(4, 400, 11) // expires at epoch 11

	if v, exp, ok := s.GetTTL(1); !ok || v != 100 || exp != 20 {
		t.Fatalf("GetTTL(1) = (%d,%d,%v), want (100,20,true)", v, exp, ok)
	}
	if n := s.Len(); n != 4 {
		t.Fatalf("Len = %d, want 4", n)
	}

	clk.Set(11) // key 4 dies exactly at its deadline
	if _, ok := s.Get(4); ok {
		t.Fatal("expired key 4 still visible to Get")
	}
	if s.Has(4) {
		t.Fatal("expired key 4 still visible to Has")
	}
	if _, _, ok := s.GetTTL(4); ok {
		t.Fatal("expired key 4 still visible to GetTTL")
	}
	if n := s.Len(); n != 3 {
		t.Fatalf("Len after one expiry = %d, want 3", n)
	}
	// The other entries are untouched.
	if v, ok := s.Get(1); !ok || v != 100 {
		t.Fatalf("Get(1) = (%d,%v) after unrelated expiry", v, ok)
	}

	// Batch reads agree with point reads.
	vals, oks := s.GetBatch([]int64{1, 2, 3, 4})
	want := []bool{true, true, true, false}
	for i, ok := range oks {
		if ok != want[i] {
			t.Fatalf("GetBatch presence[%d] = %v, want %v (vals %v)", i, ok, want[i], vals)
		}
	}

	// Range, Ascend, Min, Max all skip the dead entry.
	if items := s.Range(0, 100, nil); len(items) != 3 {
		t.Fatalf("Range saw %d items, want 3: %v", len(items), items)
	}
	count := 0
	s.Ascend(func(it Item) bool {
		if it.Key == 4 {
			t.Fatal("Ascend yielded the expired key")
		}
		count++
		return true
	})
	if count != 3 {
		t.Fatalf("Ascend yielded %d items, want 3", count)
	}
	if it, ok := s.Min(); !ok || it.Key != 1 {
		t.Fatalf("Min = (%+v,%v), want key 1", it, ok)
	}
	if it, ok := s.Max(); !ok || it.Key != 3 {
		t.Fatalf("Max = (%+v,%v), want key 3", it, ok)
	}

	clk.Set(20) // key 1 dies too
	if n := s.Len(); n != 2 {
		t.Fatalf("Len after second expiry = %d, want 2", n)
	}
	if it, ok := s.Min(); !ok || it.Key != 2 {
		t.Fatalf("Min after expiry = (%+v,%v), want key 2", it, ok)
	}
}

func TestTTLResurrectionAndOverwrite(t *testing.T) {
	clk := expiry.NewManual(100)
	s := newTTLStore(t, 2, 9, clk)

	// A plain Put over a TTL'd entry clears the expiry.
	s.PutTTL(1, 10, 150)
	if ins := s.Put(1, 11); ins {
		t.Fatal("overwriting a live TTL entry reported a fresh insert")
	}
	clk.Set(200)
	if v, exp, ok := s.GetTTL(1); !ok || v != 11 || exp != 0 {
		t.Fatalf("entry still TTL'd after plain Put: (%d,%d,%v)", v, exp, ok)
	}

	// A put over an EXPIRED entry counts as a fresh insert and revives
	// the key.
	s.PutTTL(2, 20, 150) // already dead at epoch 200
	if _, ok := s.Get(2); ok {
		t.Fatal("dead-on-arrival entry visible")
	}
	if ins := s.PutTTL(2, 21, 300); !ins {
		t.Fatal("resurrecting an expired entry did not report a fresh insert")
	}
	if v, exp, ok := s.GetTTL(2); !ok || v != 21 || exp != 300 {
		t.Fatalf("resurrected entry = (%d,%d,%v), want (21,300,true)", v, exp, ok)
	}

	// Deleting an expired entry reports absent but removes the bytes.
	s.PutTTL(3, 30, 150)
	if s.Delete(3) {
		t.Fatal("deleting an expired entry reported it present")
	}
	clk.Set(100)
	if _, ok := s.Get(3); ok {
		t.Fatal("physically deleted entry visible after clock rollback")
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestTTLSweepDeterministic(t *testing.T) {
	clk := expiry.NewManual(50)
	s := newTTLStore(t, 4, 3, clk)
	rng := xrand.New(8)
	for i := int64(0); i < 2000; i++ {
		switch rng.Intn(3) {
		case 0:
			s.Put(i, i*3)
		case 1:
			s.PutTTL(i, i*3, 10+int64(rng.Intn(80))) // some dead, some alive at 50
		case 2:
			s.PutTTL(i, i*3, 1000) // far future
		}
	}
	wantLive := s.Len()
	physical := 0
	for i := 0; i < s.NumShards(); i++ {
		physical += s.ShardLen(i)
	}
	if physical <= wantLive {
		t.Fatalf("test needs dead entries: physical %d, live %d", physical, wantLive)
	}

	swept := s.SweepExpired(50)
	if swept != physical-wantLive {
		t.Fatalf("swept %d, want %d", swept, physical-wantLive)
	}
	if s.Len() != wantLive {
		t.Fatalf("Len changed across sweep: %d, want %d", s.Len(), wantLive)
	}
	// Idempotent at the same epoch.
	if again := s.SweepExpired(50); again != 0 {
		t.Fatalf("second sweep at the same epoch removed %d entries", again)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestTTLImageHistoryIndependence is the tentpole property at the shard
// layer: two stores fed DIFFERENT TTL operation histories — different
// orders, different intermediate expiries, different sweep schedules —
// but holding the same (key, value, expiry) live set at epoch E render
// byte-identical images once each has swept at E.
func TestTTLImageHistoryIndependence(t *testing.T) {
	const seed = 2024
	const epoch = 1000
	type entry struct{ key, val, exp int64 }
	finals := []entry{}
	rng := xrand.New(99)
	for k := int64(0); k < 800; k++ {
		switch rng.Intn(3) {
		case 0:
			finals = append(finals, entry{k, k * 11, 0})
		case 1:
			finals = append(finals, entry{k, k * 11, epoch + 1 + int64(rng.Intn(500))})
		}
		// case 2: key absent from the final state
	}

	clkA := expiry.NewManual(epoch)
	a := newTTLStore(t, 8, seed, clkA)
	// History A: the final state loaded directly, one sweep at the end.
	for _, e := range finals {
		a.PutTTL(e.key, e.val, e.exp)
	}
	a.SweepExpired(epoch)

	clkB := expiry.NewManual(1)
	b := newTTLStore(t, 8, seed, clkB)
	// History B: every key written with short TTLs, expired, swept at
	// scattered epochs, deleted, rewritten — then the final state.
	for _, e := range finals {
		b.PutTTL(e.key, 1, 2) // dies at epoch 2
	}
	clkB.Set(10)
	b.SweepExpired(5) // sweep at a random intermediate epoch
	for _, e := range finals {
		b.PutTTL(e.key, e.val+1, 500)
		if e.key%3 == 0 {
			b.Delete(e.key)
		}
	}
	b.SweepExpired(10)
	clkB.Set(epoch)
	for _, e := range finals {
		b.PutTTL(e.key, e.val, e.exp)
	}
	// Extra keys that expire before E and are swept away.
	for k := int64(10_000); k < 10_200; k++ {
		b.PutTTL(k, k, epoch) // dead exactly at E
	}
	b.SweepExpired(epoch)

	if a.Len() != b.Len() {
		t.Fatalf("live sets differ: %d vs %d", a.Len(), b.Len())
	}
	var ia, ib bytes.Buffer
	if _, err := a.WriteTo(&ia); err != nil {
		t.Fatal(err)
	}
	if _, err := b.WriteTo(&ib); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ia.Bytes(), ib.Bytes()) {
		t.Fatal("images differ across TTL operation histories with the same live set")
	}

	// Round trip: the expiry index survives save/load.
	q, err := ReadStore(bytes.NewReader(ia.Bytes()), 555, nil)
	if err != nil {
		t.Fatal(err)
	}
	q.SetClock(expiry.NewManual(epoch))
	for _, e := range finals {
		wantV, wantExp, wantOK := e.val, e.exp, true
		if gotV, gotExp, gotOK := q.GetTTL(e.key); gotOK != wantOK || gotV != wantV || gotExp != wantExp {
			t.Fatalf("reloaded GetTTL(%d) = (%d,%d,%v), want (%d,%d,%v)",
				e.key, gotV, gotExp, gotOK, wantV, wantExp, wantOK)
		}
	}
}

func TestTTLApplyBatch(t *testing.T) {
	clk := expiry.NewManual(10)
	s := newTTLStore(t, 4, 13, clk)

	changed := make([]bool, 4)
	n, err := s.ApplyBatch([]Op{
		{Key: 1, Val: 10, Exp: 20}, // TTL put
		{Key: 2, Val: 20},          // plain put
		{Key: 3, Val: 30, Exp: 11}, // dies at 11
		{Key: 1, Val: 11, Exp: 0},  // same-batch overwrite clears TTL
	}, changed)
	if err != nil || n != 3 {
		t.Fatalf("ApplyBatch = (%d, %v), want 3 changed", n, err)
	}
	if !changed[0] || !changed[1] || !changed[2] || changed[3] {
		t.Fatalf("changed = %v", changed)
	}
	if v, exp, ok := s.GetTTL(1); !ok || v != 11 || exp != 0 {
		t.Fatalf("key 1 = (%d,%d,%v), want TTL cleared", v, exp, ok)
	}

	clk.Set(11)
	// Expire ops: conditional on the recorded expiry at apply time.
	changed = make([]bool, 3)
	n, err = s.ApplyBatch([]Op{
		{Key: 3, Exp: 11, Expire: true}, // dead: removed
		{Key: 2, Exp: 11, Expire: true}, // no expiry recorded: untouched
		{Key: 9, Exp: 11, Expire: true}, // absent: untouched
	}, changed)
	if err != nil || n != 1 {
		t.Fatalf("expire batch = (%d, %v), want 1", n, err)
	}
	if !changed[0] || changed[1] || changed[2] {
		t.Fatalf("expire changed = %v", changed)
	}
	if s.Has(2) != true || s.ShardLen(s.ShardOf(3)) != countPhysical(s, 3) {
		t.Fatal("expire batch touched the wrong keys")
	}
	// Key 3 is physically gone, not just filtered.
	phys := 0
	for i := 0; i < s.NumShards(); i++ {
		phys += s.ShardLen(i)
	}
	if phys != 2 {
		t.Fatalf("physical count after expire = %d, want 2", phys)
	}

	// An expire op must NOT clobber a resurrected key: the re-check
	// happens under the lock against the CURRENT expiry.
	s.PutTTL(5, 50, 100)
	if n, _ := s.ApplyBatch([]Op{{Key: 5, Exp: 11, Expire: true}}, nil); n != 0 {
		t.Fatal("expire op removed a key whose expiry is in the future")
	}
	if !s.Has(5) {
		t.Fatal("live key 5 lost to a stale expire op")
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// countPhysical reports 1 if key is physically present (ignoring TTL).
func countPhysical(s *Store, key int64) int {
	n := 0
	c := &s.cells[s.ShardOf(key)]
	c.rlock()
	if c.dict.Has(key) {
		n = 1
	}
	c.runlock()
	_ = n
	return s.ShardLen(s.ShardOf(key))
}

func TestTTLRangeNDeadHeavyPrefix(t *testing.T) {
	clk := expiry.NewManual(0)
	s := newTTLStore(t, 1, 21, clk)
	// 600 dead keys below 600 live ones (single shard so the prefix is
	// contiguous), all interleaved in key order to stress the refetch.
	for k := int64(0); k < 1200; k++ {
		if k%2 == 0 {
			s.PutTTL(k, k, 5) // dies at epoch 5
		} else {
			s.Put(k, k)
		}
	}
	clk.Set(5)
	items, more := s.RangeN(0, 1199, 10, nil)
	if len(items) != 10 || !more {
		t.Fatalf("RangeN = %d items, more=%v, want 10, true", len(items), more)
	}
	for i, it := range items {
		if want := int64(2*i + 1); it.Key != want {
			t.Fatalf("RangeN item %d = key %d, want %d", i, it.Key, want)
		}
	}
	// Whole live window, exactly.
	items, more = s.RangeN(0, 1199, 1000, nil)
	if len(items) != 600 || more {
		t.Fatalf("full RangeN = %d items, more=%v, want 600, false", len(items), more)
	}
}
