package foretest

import (
	"testing"

	"repro/internal/durable"
)

func TestNeedleEncodings(t *testing.T) {
	ns := Int64NeedlesText("k", 0x0102030405060708)
	want := map[string][]byte{
		"k(le)":  {8, 7, 6, 5, 4, 3, 2, 1},
		"k(be)":  {1, 2, 3, 4, 5, 6, 7, 8},
		"k(dec)": []byte("72623859790382856"),
	}
	if len(ns) != len(want) {
		t.Fatalf("got %d needles, want %d", len(ns), len(want))
	}
	for _, n := range ns {
		w, ok := want[n.Label]
		if !ok {
			t.Fatalf("unexpected needle %q", n.Label)
		}
		if string(n.Bytes) != string(w) {
			t.Errorf("%s = % x, want % x", n.Label, n.Bytes, w)
		}
	}
}

func TestScanFindsEveryEncoding(t *testing.T) {
	const v = int64(-0x7A11DEAD)
	needles := Int64NeedlesText("v", v)
	for _, n := range needles {
		blob := append(append([]byte("prefix"), n.Bytes...), "suffix"...)
		hits := Scan(blob, needles)
		found := false
		for _, h := range hits {
			if h == n.Label {
				found = true
			}
		}
		if !found {
			t.Errorf("Scan missed planted %s", n.Label)
		}
	}
	if hits := Scan([]byte("nothing to see"), needles); len(hits) != 0 {
		t.Errorf("Scan found %v in clean bytes", hits)
	}
}

func TestScanDirCoversNamesAndContents(t *testing.T) {
	fs := durable.NewMemFS()
	if err := fs.MkdirAll("d"); err != nil {
		t.Fatal(err)
	}
	write := func(name string, data []byte) {
		f, err := fs.Create("d/" + name)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write(data); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}
	write("clean.img", []byte{0, 0, 0})
	write("dirty.img", append([]byte{0xff}, StringNeedle("tenant", "acme-corp").Bytes...))
	write("named-acme-corp.img", []byte{0})

	needles := []Needle{StringNeedle("tenant", "acme-corp")}
	hits := ScanDir(t, fs, "d", needles)
	if len(hits) != 2 {
		t.Fatalf("got hits %v, want one content hit and one name hit", hits)
	}

	// The blob form must catch both too.
	if got := Scan(DirBytes(t, fs, "d"), needles); len(got) != 1 {
		t.Fatalf("DirBytes scan got %v", got)
	}
}
