// Package foretest is the reusable forensic-grep harness behind the
// repo's anti-persistence proofs. A forensic test plants distinctive
// values, drives the system (writes, TTL expirations, checkpoints,
// tenant drops), and then scans every byte an observer could read —
// committed files, debris, telemetry pages, logs — for any encoding of
// what must be gone. The harness owns the encoding catalog (decimal
// ASCII, little-endian, big-endian) and the scanning, so each test
// states only WHAT must be absent and WHERE to look.
//
// The scan is deliberately byte-level and encoding-exhaustive rather
// than format-aware: history independence promises that the observer
// learns nothing however they parse the bytes, so the test must not
// assume a parser either.
package foretest

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"strconv"
	"testing"

	"repro/internal/durable"
)

// Needle is one byte pattern that must (or must not) appear: the raw
// bytes plus a label naming the value and encoding for failure
// messages, e.g. "deadKey(le)".
type Needle struct {
	Label string
	Bytes []byte
}

// Int64Needles returns the binary encodings of v — 8-byte little-endian
// and 8-byte big-endian — labeled label(le) and label(be). These are
// the encodings the storage layers write (images and wire frames are
// fixed-width), so they are the needles for disk forensics.
func Int64Needles(label string, v int64) []Needle {
	var le, be [8]byte
	binary.LittleEndian.PutUint64(le[:], uint64(v))
	binary.BigEndian.PutUint64(be[:], uint64(v))
	return []Needle{
		{Label: label + "(le)", Bytes: le[:]},
		{Label: label + "(be)", Bytes: be[:]},
	}
}

// DecimalNeedle returns v rendered as decimal ASCII, the encoding that
// would leak through text surfaces: logs, metrics pages, expvar JSON.
func DecimalNeedle(label string, v int64) Needle {
	return Needle{Label: label + "(dec)", Bytes: []byte(strconv.FormatInt(v, 10))}
}

// Int64NeedlesText returns all three encodings of v: little-endian,
// big-endian, and decimal ASCII. Use it when the scanned surface mixes
// binary and text (or when in doubt — a needle that cannot occur is
// merely redundant).
func Int64NeedlesText(label string, v int64) []Needle {
	return append(Int64Needles(label, v), DecimalNeedle(label, v))
}

// Uint64Needles is Int64NeedlesText for unsigned values (seeds,
// derived routing seeds): little-endian, big-endian, and decimal.
func Uint64Needles(label string, v uint64) []Needle {
	var le, be [8]byte
	binary.LittleEndian.PutUint64(le[:], v)
	binary.BigEndian.PutUint64(be[:], v)
	return []Needle{
		{Label: label + "(le)", Bytes: le[:]},
		{Label: label + "(be)", Bytes: be[:]},
		{Label: label + "(dec)", Bytes: []byte(strconv.FormatUint(v, 10))},
	}
}

// StringNeedle returns s's raw bytes — tenant names, key prefixes, any
// textual identifier that must not survive.
func StringNeedle(label, s string) Needle {
	return Needle{Label: label, Bytes: []byte(s)}
}

// Scan returns the labels of every needle found in blob, in needle
// order. Needles shorter than one byte never match.
func Scan(blob []byte, needles []Needle) []string {
	var hits []string
	for _, n := range needles {
		if len(n.Bytes) > 0 && bytes.Contains(blob, n.Bytes) {
			hits = append(hits, n.Label)
		}
	}
	return hits
}

// AssertAbsent fails the test for every needle present in blob. The
// surface string names what was scanned ("committed shard images",
// "metrics page") so a failure reads as the forensic finding it is.
func AssertAbsent(t testing.TB, surface string, blob []byte, needles []Needle) {
	t.Helper()
	for _, hit := range Scan(blob, needles) {
		t.Errorf("forensic hit: %s found in %s", hit, surface)
	}
}

// AssertPresent fails the test for every needle absent from blob — the
// sanity half of a forensic test: before the erasure, the distinctive
// bytes must actually be there, or the later absence proves nothing.
func AssertPresent(t testing.TB, surface string, blob []byte, needles []Needle) {
	t.Helper()
	found := map[string]bool{}
	for _, hit := range Scan(blob, needles) {
		found[hit] = true
	}
	for _, n := range needles {
		if len(n.Bytes) > 0 && !found[n.Label] {
			t.Errorf("forensic sanity: %s is not present in %s before erasure — the absence check would be vacuous", n.Label, surface)
		}
	}
}

// DirBytes concatenates every file in dir — names and contents — into
// one scannable blob. File names are included because a content-derived
// name is itself an observable byte surface (that is why shard files
// are content-addressed and namespace files are seed-addressed). The
// fs is the durable layer's filesystem abstraction, so the same scan
// runs against a MemFS crash image or the real disk.
func DirBytes(t testing.TB, fs durable.FS, dir string) []byte {
	t.Helper()
	names, err := fs.List(dir)
	if err != nil {
		t.Fatalf("foretest: listing %s: %v", dir, err)
	}
	var blob bytes.Buffer
	for _, name := range names {
		blob.WriteString(name)
		blob.WriteByte(0)
		f, err := fs.Open(dir + "/" + name)
		if err != nil {
			t.Fatalf("foretest: opening %s/%s: %v", dir, name, err)
		}
		buf := make([]byte, 32*1024)
		for {
			n, rerr := f.Read(buf)
			blob.Write(buf[:n])
			if rerr != nil {
				break
			}
		}
		f.Close()
		blob.WriteByte(0)
	}
	return blob.Bytes()
}

// ScanDir scans every file in dir (names and contents) and returns
// "file: label" strings for each hit.
func ScanDir(t testing.TB, fs durable.FS, dir string, needles []Needle) []string {
	t.Helper()
	names, err := fs.List(dir)
	if err != nil {
		t.Fatalf("foretest: listing %s: %v", dir, err)
	}
	var hits []string
	for _, name := range names {
		for _, hit := range Scan([]byte(name), needles) {
			hits = append(hits, fmt.Sprintf("%s (name): %s", name, hit))
		}
		f, err := fs.Open(dir + "/" + name)
		if err != nil {
			t.Fatalf("foretest: opening %s/%s: %v", dir, name, err)
		}
		var blob bytes.Buffer
		buf := make([]byte, 32*1024)
		for {
			n, rerr := f.Read(buf)
			blob.Write(buf[:n])
			if rerr != nil {
				break
			}
		}
		f.Close()
		for _, hit := range Scan(blob.Bytes(), needles) {
			hits = append(hits, fmt.Sprintf("%s: %s", name, hit))
		}
	}
	return hits
}

// AssertDirClean fails the test for every needle found anywhere in dir
// — any file name or any file byte. This is the post-erasure half of a
// disk forensic test: after drop + sweep + checkpoint, the directory
// must scan clean.
func AssertDirClean(t testing.TB, fs durable.FS, dir string, needles []Needle) {
	t.Helper()
	for _, hit := range ScanDir(t, fs, dir, needles) {
		t.Errorf("forensic hit in %s: %s", dir, hit)
	}
}
