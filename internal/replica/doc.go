// Package replica turns a durable.DB into a read replica of a remote
// primary by canonical-state anti-entropy.
//
// The paper's property makes replication uniquely easy to get provably
// right: every shard's durable image is a pure function of (contents,
// seed), so two nodes with equal contents hold byte-identical images.
// Anti-entropy therefore reduces to comparing per-shard content hashes
// (SHARDHASH) and shipping the canonical images of the shards that
// differ (SYNC) — no oplog, no sequence numbers, no vector clocks. An
// operation log would also be an operation *history*, the exact
// artifact this system exists to keep off the disk; replication ships
// state, never operations, so history independence survives the hop:
// after a sync the replica's DB directory is byte-identical to the
// primary's checkpoint, and an adversary imaging either disk learns
// the same nothing.
//
// A Replica owns one connection to the primary (redialed on error) and
// runs rounds: fetch the primary's checkpoint descriptor, compare with
// its own, fetch only divergent shard images chunk by chunk, verify
// each image's SHA-256 against the advertised hash, and install the
// whole set through durable.DB.InstallCheckpoint — the same atomic
// commit sequence checkpoints use, so a power cut mid-install recovers
// to either the old or the new checkpoint, never a mix. Reads keep
// being served throughout: the store swap is a single atomic pointer
// publication.
//
// The replica only ever installs state the primary has *committed*, so
// a replica can never run ahead of its primary's disk: a primary crash
// rolls back, at worst, to a checkpoint every replica already had or
// can re-converge to. Serving the installed checkpoint (rather than
// the primary's live memory) is what makes the guarantee exact.
package replica
