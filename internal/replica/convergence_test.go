package replica

// The convergence property, end to end over the wire: two primaries
// built by DIFFERENT random operation histories that reach the same
// final contents have byte-identical directories (the repo's standing
// HI permutation guarantee), and a fresh replica syncing from either
// one produces that same byte-identical directory — so WHICH primary a
// replica followed, and WHAT schedule built that primary, are both
// unrecoverable from any disk in the cluster.

import (
	"math/rand"
	"testing"

	"repro/internal/durable"
)

// applyHistory drives ops over the wire to n and returns the client's
// view of the final contents.
func applyHistory(t *testing.T, n *node, rng *rand.Rand, final map[int64]int64) {
	t.Helper()
	c := dialNode(t, n)
	defer c.Close()

	keys := make([]int64, 0, len(final))
	for k := range final {
		keys = append(keys, k)
	}
	// A history: shuffled inserts of the final contents with wrong
	// values, interleaved churn on transient keys, then fix-ups to the
	// final values in another shuffled order, deleting the transients.
	rng.Shuffle(len(keys), func(i, j int) { keys[i], keys[j] = keys[j], keys[i] })
	transients := make([]int64, 0, len(keys)/2)
	for _, k := range keys {
		if _, err := c.Put(k, rng.Int63()); err != nil {
			t.Fatal(err)
		}
		if rng.Intn(2) == 0 {
			tk := 1_000_000 + rng.Int63n(10_000)
			if _, err := c.Put(tk, rng.Int63()); err != nil {
				t.Fatal(err)
			}
			transients = append(transients, tk)
		}
	}
	rng.Shuffle(len(keys), func(i, j int) { keys[i], keys[j] = keys[j], keys[i] })
	for _, k := range keys {
		if _, err := c.Put(k, final[k]); err != nil {
			t.Fatal(err)
		}
	}
	for _, tk := range transients {
		if _, err := c.Delete(tk); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Checkpoint(); err != nil {
		t.Fatal(err)
	}
}

// TestConvergenceAcrossHistories extends the HI permutation tests
// across the wire: same contents via different histories, synced to
// fresh replicas, must yield four byte-identical directories.
func TestConvergenceAcrossHistories(t *testing.T) {
	iters := tortureScale(t, 2, 5)
	for iter := 0; iter < iters; iter++ {
		rng := rand.New(rand.NewSource(int64(500 + iter)))
		final := map[int64]int64{}
		for len(final) < 800 {
			final[rng.Int63n(100_000)] = rng.Int63()
		}

		// Two primaries, SAME seed (canonicality is a function of
		// (contents, seed)), different histories.
		pa := newNode(t, durable.NewMemFS(), 7, 8, false)
		pb := newNode(t, durable.NewMemFS(), 7, 8, false)
		applyHistory(t, pa, rand.New(rand.NewSource(int64(iter*2+1))), final)
		applyHistory(t, pb, rand.New(rand.NewSource(int64(iter*2+2))), final)

		// The standing guarantee, restated at cluster scope: the two
		// primaries already agree byte for byte.
		sameDirs(t, pa.fs, pb.fs)

		// Fresh replicas with unrelated local seeds, one per primary.
		ra := newNode(t, durable.NewMemFS(), 31, 8, true)
		rb := newNode(t, durable.NewMemFS(), 47, 8, true)
		repA, err := New(ra.db, Config{Dial: pa.dialTo()})
		if err != nil {
			t.Fatal(err)
		}
		repB, err := New(rb.db, Config{Dial: pb.dialTo()})
		if err != nil {
			t.Fatal(err)
		}
		if sum, err := repA.SyncOnce(); err != nil || !sum.Installed {
			t.Fatalf("iter %d: replica A: %+v %v", iter, sum, err)
		}
		if sum, err := repB.SyncOnce(); err != nil || !sum.Installed {
			t.Fatalf("iter %d: replica B: %+v %v", iter, sum, err)
		}
		sameDirs(t, pa.fs, pb.fs, ra.fs, rb.fs)

		// The punchline: a replica of A re-pointed at B recognizes B's
		// checkpoint as its own state — zero shards cross the wire.
		repA.Stop()
		repA2, err := New(ra.db, Config{Dial: pb.dialTo()})
		if err != nil {
			t.Fatal(err)
		}
		sum, err := repA2.SyncOnce()
		if err != nil {
			t.Fatal(err)
		}
		if !sum.Converged || sum.ShardsFetched != 0 || sum.BytesFetched != 0 {
			t.Fatalf("iter %d: failover sync shipped data despite equal contents: %+v", iter, sum)
		}

		// And the replicas really serve the contents.
		c := dialNode(t, rb)
		checked := 0
		for k, v := range final {
			gotV, ok, err := c.Get(k)
			if err != nil || !ok || gotV != v {
				t.Fatalf("iter %d: replica get(%d) = %d,%v,%v want %d", iter, k, gotV, ok, err, v)
			}
			if checked++; checked == 100 {
				break
			}
		}
		if n, err := c.Len(); err != nil || n != len(final) {
			t.Fatalf("iter %d: replica len = %d (%v), want %d", iter, n, err, len(final))
		}
		c.Close()

		repA2.Stop()
		repB.Stop()
		for _, n := range []*node{pa, pb, ra, rb} {
			n.close()
		}
	}
}
