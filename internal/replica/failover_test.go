package replica

// The promotion/failover drills: kill the primary mid-checkpoint and
// promote a replica under continuing client load (the headline torture
// demanded by the HA acceptance criteria, run under -race in CI), the
// read-your-writes recipe over epoch-stamped replies, and the
// promotion state machine's white-box edges (promote while a sync
// round is in flight, double-promote refused, demote on rejoin).

import (
	"errors"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/client"
	"repro/internal/durable"
	"repro/internal/expiry"
	"repro/internal/server"
)

// promoNode is a replica node that can be promoted: DB, read-only
// server with OnPromote wired to the Replica's Abdicate, and the
// Replica itself holding the server reference Promote needs.
type promoNode struct {
	fs  *durable.MemFS
	db  *durable.DB
	srv *server.Server
	rep *Replica
}

func newPromoNode(t *testing.T, seed uint64, shards int, clk expiry.Clock, dial func() (net.Conn, error)) *promoNode {
	t.Helper()
	n := &promoNode{fs: durable.NewMemFS()}
	db, err := durable.Open(nodeDir, &durable.Options{
		Shards: shards, Seed: seed, NoBackground: true, FS: n.fs,
		Clock: clk, NoSweep: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	n.db = db
	// SweepInterval < 0 keeps the schedule deterministic: post-promotion
	// expiry runs inside explicit checkpoints (the durable layer's
	// checkpoint sweep), never on a wall-clock ticker.
	n.srv = server.New(db, server.Config{
		ReadTimeout: -1, ReadOnly: true, SweepInterval: -1,
		OnPromote: func() { n.rep.Abdicate() },
	})
	rep, err := New(db, Config{Dial: dial, Server: n.srv})
	if err != nil {
		t.Fatal(err)
	}
	n.rep = rep
	return n
}

func (n *promoNode) dialTo() func() (net.Conn, error) {
	return func() (net.Conn, error) {
		cliEnd, srvEnd := net.Pipe()
		n.srv.ServeConn(srvEnd)
		return cliEnd, nil
	}
}

// TestKillPrimaryMidCheckpointPromote is the kill-the-primary torture:
// seeded mixed load (plain, TTL, batch writes) onto a primary with two
// replicas syncing behind it, a power cut injected mid-checkpoint,
// promotion of replica 0 while client load keeps arriving, and then
// the full accounting — nothing the promoted replica had installed is
// lost, every write acknowledged after promotion is durable, the old
// primary rejoins as a replica of the new one, and all survivors
// quiesce byte-identical.
func TestKillPrimaryMidCheckpointPromote(t *testing.T) {
	rounds := tortureScale(t, 12, 40)
	opsPerRound := tortureScale(t, 50, 150)
	const (
		shards   = 8
		keySpace = 2000
		seed     = 0xBEEF
	)
	rng := rand.New(rand.NewSource(42))
	clk := expiry.NewManual(1)

	pfs := durable.NewMemFS()
	prim := newNodeClock(t, pfs, seed, shards, false, clk)
	pconn := dialNode(t, prim)

	// model: every write acked by the primary. replicated: the state at
	// the last checkpoint replica 0 confirmed installed — the only
	// state failover is allowed to preserve, and therefore the exact
	// state it must preserve.
	model := map[int64]int64{}
	modelExp := map[int64]int64{}
	replicated := map[int64]int64{}
	replicatedExp := map[int64]int64{}

	reps := []*promoNode{
		newPromoNode(t, 101, shards, clk, func() (net.Conn, error) {
			cliEnd, srvEnd := net.Pipe()
			prim.srv.ServeConn(srvEnd)
			return cliEnd, nil
		}),
		newPromoNode(t, 102, shards, clk, func() (net.Conn, error) {
			cliEnd, srvEnd := net.Pipe()
			prim.srv.ServeConn(srvEnd)
			return cliEnd, nil
		}),
	}

	writeLoad := func() {
		for op := 0; op < opsPerRound; op++ {
			k := rng.Int63n(keySpace)
			switch rng.Intn(10) {
			case 0: // delete
				if _, err := pconn.Delete(k); err != nil {
					t.Fatalf("delete: %v", err)
				}
				delete(model, k)
				delete(modelExp, k)
			case 1, 2: // TTL put
				v := rng.Int63()
				exp := clk.Now() + 1 + rng.Int63n(5)
				if _, err := pconn.PutTTL(k, v, exp); err != nil {
					t.Fatalf("put-ttl: %v", err)
				}
				model[k] = v
				modelExp[k] = exp
			case 3: // batch put
				items := make([]client.Item, 1+rng.Intn(4))
				for j := range items {
					items[j] = client.Item{Key: rng.Int63n(keySpace), Val: rng.Int63()}
				}
				if _, err := pconn.PutBatch(items); err != nil {
					t.Fatalf("batch put: %v", err)
				}
				for _, it := range items {
					model[it.Key] = it.Val
					delete(modelExp, it.Key)
				}
			default:
				v := rng.Int63()
				if _, err := pconn.Put(k, v); err != nil {
					t.Fatalf("put: %v", err)
				}
				model[k] = v
				delete(modelExp, k)
			}
		}
	}

	// Phase 1: load, checkpoint, sync. Replica 0 syncs every
	// checkpoint (its installed state is the failover baseline);
	// replica 1 syncs on a coin flip, so it is usually behind.
	for round := 0; round < rounds; round++ {
		if round%3 == 2 {
			clk.Advance(1)
		}
		writeLoad()
		if _, err := pconn.Checkpoint(); err != nil {
			t.Fatalf("round %d: checkpoint: %v", round, err)
		}
		sum, err := reps[0].rep.SyncOnce()
		if err != nil && !IsStale(err) {
			t.Fatalf("round %d: replica 0 sync: %v", round, err)
		}
		if err == nil && (sum.Installed || sum.Converged) {
			replicated = make(map[int64]int64, len(model))
			for k, v := range model {
				replicated[k] = v
			}
			replicatedExp = make(map[int64]int64, len(modelExp))
			for k, v := range modelExp {
				replicatedExp[k] = v
			}
		}
		if rng.Intn(2) == 0 {
			if _, err := reps[1].rep.SyncOnce(); err != nil && !IsStale(err) {
				t.Fatalf("round %d: replica 1 sync: %v", round, err)
			}
		}
	}
	if len(replicated) == 0 {
		t.Fatal("replica 0 never installed a checkpoint; the torture is vacuous")
	}

	// Phase 2: more acked writes that never reach a synced checkpoint,
	// then the power cut lands mid-checkpoint: the commit fails (or
	// commits bytes the replicas never saw), the listener dies, the
	// durable state is abandoned exactly as a crash would leave it.
	writeLoad()
	pfs.FailAfter(1 + rng.Intn(16))
	pconn.Checkpoint() //nolint:errcheck // dies at the injected fault, or commits unseen — both legal
	pconn.Close()
	prim.srv.Close()
	prim.db.Abandon()

	// Phase 3: promotion under continuing client load. The writers hit
	// replica 0 in disjoint per-worker key ranges, tolerate ErrReadOnly
	// (the node has not been promoted yet) and redial dead conns, and
	// record every acknowledged write — each ack is a durability
	// promise the post-promotion cluster must keep.
	const writers = 4
	const span = 1000
	acked := make([]map[int64]int64, writers)
	stopWriters := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wrng := rand.New(rand.NewSource(int64(7000 + w)))
			mine := map[int64]int64{}
			acked[w] = mine
			base := int64(10_000 + w*span)
			var c *client.Conn
			defer func() {
				if c != nil {
					c.Close()
				}
			}()
			for {
				select {
				case <-stopWriters:
					return
				default:
				}
				if c == nil {
					nc, err := reps[0].dialTo()()
					if err != nil {
						continue
					}
					c = client.NewConn(nc)
				}
				k, v := base+wrng.Int63n(span), wrng.Int63()
				_, err := c.Put(k, v)
				switch {
				case err == nil:
					mine[k] = v
				case errors.Is(err, client.ErrReadOnly):
					// Not promoted yet; keep offering load.
				default:
					c.Close()
					c = nil
				}
			}
		}(w)
	}

	// Let the writers bounce off the read-only node, then promote.
	time.Sleep(10 * time.Millisecond)
	n, err := reps[0].rep.Promote()
	if err != nil {
		t.Fatalf("promote: %v", err)
	}
	if n != 1 {
		t.Fatalf("promotion count = %d, want 1", n)
	}
	// Post-promotion load must be accepted; give the writers a window.
	time.Sleep(20 * time.Millisecond)
	close(stopWriters)
	wg.Wait()

	postAcked := map[int64]int64{}
	for _, m := range acked {
		for k, v := range m {
			postAcked[k] = v
		}
	}
	if len(postAcked) == 0 {
		t.Fatal("no write was acknowledged after promotion; the load never landed")
	}

	// Commit everything on the promoted primary over the wire (also
	// proving the write/checkpoint path is fully armed post-promotion).
	nconn := dialNode(t, &node{fs: reps[0].fs, db: reps[0].db, srv: reps[0].srv})
	if _, err := nconn.Checkpoint(); err != nil {
		t.Fatalf("checkpoint on promoted node: %v", err)
	}

	// No synced-checkpoint-committed write lost: everything replica 0
	// had installed is still there, values and expiries intact, expired
	// entries invisible.
	for k, v := range replicated {
		gotV, gotExp, ok, err := nconn.GetTTL(k)
		if err != nil {
			t.Fatal(err)
		}
		exp, hasExp := replicatedExp[k]
		if hasExp && !expiry.Live(exp, clk.Now()) {
			if ok {
				t.Fatalf("expired key %d visible on promoted node as (%d,%d)", k, gotV, gotExp)
			}
			continue
		}
		if !ok || gotV != v || (hasExp && gotExp != exp) || (!hasExp && gotExp != 0) {
			t.Fatalf("promoted node lost synced write: key %d = (%d,%d,%v), want (%d,%d,true)",
				k, gotV, gotExp, ok, v, exp)
		}
	}
	// Every post-promotion ack is durable.
	for k, v := range postAcked {
		if gotV, ok, err := nconn.Get(k); err != nil || !ok || gotV != v {
			t.Fatalf("promoted node lost acked write: key %d = (%d,%v,%v), want %d", k, gotV, ok, err, v)
		}
	}

	// Phase 4: the old primary rejoins as a replica of the promoted
	// node. Its crashed directory recovers to its own last checkpoint —
	// a history the cluster has moved past — and anti-entropy replaces
	// it wholesale with the new primary's state.
	pfs = pfs.Crash()
	rejoined := newNodeClock(t, pfs, seed, shards, true, clk)
	defer rejoined.close()
	rejRep, err := New(rejoined.db, Config{Dial: reps[0].dialTo()})
	if err != nil {
		t.Fatal(err)
	}
	defer rejRep.Stop()
	if sum, err := rejRep.SyncOnce(); err != nil || !(sum.Installed || sum.Converged) {
		t.Fatalf("old primary rejoin sync: %+v %v", sum, err)
	}

	// Replica 1 re-points at the promoted node and converges too.
	reps[1].rep.Stop()
	rep1, err := New(reps[1].db, Config{Dial: reps[0].dialTo()})
	if err != nil {
		t.Fatal(err)
	}
	defer rep1.Stop()
	if sum, err := rep1.SyncOnce(); err != nil || !(sum.Installed || sum.Converged) {
		t.Fatalf("replica 1 re-point sync: %+v %v", sum, err)
	}

	// All survivors byte-identical, all canonical.
	if err := reps[0].db.VerifyCanonical(); err != nil {
		t.Fatalf("promoted node: %v", err)
	}
	sameDirs(t, reps[0].fs, rejoined.fs, reps[1].fs)
	if err := rejoined.db.VerifyCanonical(); err != nil {
		t.Fatalf("rejoined node: %v", err)
	}
	if err := reps[1].db.VerifyCanonical(); err != nil {
		t.Fatalf("replica 1: %v", err)
	}

	// The rejoined old primary is a replica now: writes refused.
	rc := dialNode(t, rejoined)
	if _, err := rc.Put(1, 1); !errors.Is(err, client.ErrReadOnly) {
		t.Fatalf("rejoined old primary accepted a write: %v", err)
	}
	rc.Close()

	// A second promotion of the same node is refused.
	if _, err := reps[0].rep.Promote(); !errors.Is(err, server.ErrNotReplica) {
		t.Fatalf("double promote: %v, want ErrNotReplica", err)
	}

	nconn.Close()
	for _, r := range reps {
		r.rep.Stop()
		r.srv.Close()
		r.db.Close()
	}
}

// TestReadYourWritesBoundedStaleness is the staleness contract on the
// wire: a replica's read replies carry the checkpoint epoch they were
// served from, so a client that writes to the primary, checkpoints,
// and knows the replica's pre-write epoch can wait out exactly one
// sync round and then read its own write — no sleep-and-hope.
func TestReadYourWritesBoundedStaleness(t *testing.T) {
	p := newNode(t, durable.NewMemFS(), 7, 4, false)
	defer p.close()
	pconn := dialNode(t, p)
	defer pconn.Close()
	if _, err := pconn.Put(1, 10); err != nil {
		t.Fatal(err)
	}
	if _, err := pconn.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	r := newNode(t, durable.NewMemFS(), 8, 4, true)
	defer r.close()
	rep, err := New(r.db, Config{Dial: p.dialTo()})
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Stop()
	if sum, err := rep.SyncOnce(); err != nil || !sum.Installed {
		t.Fatalf("first sync: %+v %v", sum, err)
	}

	rc := dialNode(t, r)
	defer rc.Close()
	v, e0, ok, err := rc.GetStamped(1)
	if err != nil || !ok || v != 10 {
		t.Fatalf("replica read: (%d,%d,%v,%v)", v, e0, ok, err)
	}
	if e0 == 0 {
		t.Fatal("replica served a read with epoch 0 after an install")
	}

	// Write on the primary; the replica is now bounded-stale and SAYS
	// so: same epoch stamp, old data.
	if _, err := pconn.Put(2, 20); err != nil {
		t.Fatal(err)
	}
	if _, err := pconn.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if _, eStale, ok, err := rc.GetStamped(2); err != nil || ok || eStale != e0 {
		t.Fatalf("stale read: ok=%v epoch=%d (want miss at epoch %d)", ok, eStale, e0)
	}

	// One sync round later the epoch has advanced past e0 — that is the
	// read-your-writes condition — and the write is visible.
	if sum, err := rep.SyncOnce(); err != nil || !sum.Installed {
		t.Fatalf("second sync: %+v %v", sum, err)
	}
	v2, e1, ok, err := rc.GetStamped(2)
	if err != nil || !ok || v2 != 20 {
		t.Fatalf("post-sync read: (%d,%d,%v,%v)", v2, e1, ok, err)
	}
	if e1 <= e0 {
		t.Fatalf("epoch did not advance: %d -> %d", e0, e1)
	}
	if rc.LastEpoch() != e1 {
		t.Fatalf("LastEpoch = %d, want %d", rc.LastEpoch(), e1)
	}

	// HEALTH reports the same epoch, plus the role and manifest hash;
	// primary and converged replica serve identical content hashes.
	rh, err := rc.Health()
	if err != nil || !rh.ReadOnly || rh.Epoch != e1 {
		t.Fatalf("replica health = %+v %v (want read-only at epoch %d)", rh, err, e1)
	}
	ph, err := pconn.Health()
	if err != nil || ph.ReadOnly {
		t.Fatalf("primary health = %+v %v", ph, err)
	}
	if ph.Hash != rh.Hash {
		t.Fatal("converged nodes report different manifest hashes")
	}
}

// TestPromotionStateMachine drives the white-box edges: Abdicate
// fences an in-flight sync round, promotion flips the server exactly
// once, a second promotion is refused, and Demote returns the node to
// replica duty so it can rejoin under a fresh Replica.
func TestPromotionStateMachine(t *testing.T) {
	db, err := durable.Open(nodeDir, &durable.Options{
		Shards: 4, Seed: 9, NoBackground: true, FS: durable.NewMemFS(), NoSweep: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	// A primary that accepts the connection and then stalls forever:
	// the sync round must hit its timeout, not hang Abdicate.
	var rep *Replica
	srv := server.New(db, server.Config{
		ReadTimeout: -1, ReadOnly: true, SweepInterval: -1,
		OnPromote: func() { rep.Abdicate() },
	})
	defer srv.Close()
	dialed := make(chan struct{})
	var dialedOnce sync.Once
	stallDial := func() (net.Conn, error) {
		cliEnd, srvEnd := net.Pipe()
		go func() {
			buf := make([]byte, 1024)
			for {
				if _, err := srvEnd.Read(buf); err != nil {
					return
				}
			}
		}()
		dialedOnce.Do(func() { close(dialed) })
		return cliEnd, nil
	}
	rep, err = New(db, Config{Dial: stallDial, Timeout: 50 * time.Millisecond, Server: srv})
	if err != nil {
		t.Fatal(err)
	}

	// Promote while a sync round is in flight: Abdicate must wait the
	// round out (its mu acquisition is the barrier), and the round must
	// fail on its own timeout — never ErrPromoted, it entered first.
	roundErr := make(chan error, 1)
	go func() {
		_, err := rep.SyncOnce()
		roundErr <- err
	}()
	<-dialed
	rep.Abdicate()
	if err := <-roundErr; err == nil || errors.Is(err, ErrPromoted) {
		t.Fatalf("in-flight round: %v (want a timeout, not nil or ErrPromoted)", err)
	}
	// After the fence, sync is permanently refused.
	if _, err := rep.SyncOnce(); !errors.Is(err, ErrPromoted) {
		t.Fatalf("post-abdicate sync: %v, want ErrPromoted", err)
	}

	// Promotion lifts the already-abdicated node without re-syncing.
	if n, err := rep.Promote(); err != nil || n != 1 {
		t.Fatalf("promote: %d %v", n, err)
	}
	if ok, err := putOnNode(srv, 1, 11); err != nil || !ok {
		t.Fatalf("write on promoted node: %v %v", ok, err)
	}

	// Double promote is refused, and the refusal is typed.
	if _, err := rep.Promote(); !errors.Is(err, server.ErrNotReplica) {
		t.Fatalf("double promote: %v, want ErrNotReplica", err)
	}

	// Demote: back to replica duty. Writes are refused again, and a
	// FRESH Replica (abdication is per-Replica, deliberately — the old
	// one's fence must never silently lift) converges off a live
	// primary again.
	if err := srv.Demote(); err != nil {
		t.Fatalf("demote: %v", err)
	}
	if err := srv.Demote(); err == nil {
		t.Fatal("double demote accepted")
	}
	if _, err := putOnNode(srv, 2, 22); !errors.Is(err, client.ErrReadOnly) {
		t.Fatalf("demoted node accepted a write: %v", err)
	}

	p := newNode(t, durable.NewMemFS(), 3, 4, false)
	defer p.close()
	p.db.Put(7, 77)
	if err := p.db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	rep2, err := New(db, Config{Dial: p.dialTo()})
	if err != nil {
		t.Fatal(err)
	}
	defer rep2.Stop()
	if sum, err := rep2.SyncOnce(); err != nil || !sum.Installed {
		t.Fatalf("rejoin sync: %+v %v", sum, err)
	}
	if v, ok := db.Get(7); !ok || v != 77 {
		t.Fatalf("rejoined replica missing primary's write: %d %v", v, ok)
	}
}

// TestHealthProberDeclaresPrimaryDown runs the PING prober against a
// primary that dies mid-life and checks the down declaration fires
// exactly once, after the configured threshold, and is visible in
// Stats.
func TestHealthProberDeclaresPrimaryDown(t *testing.T) {
	p := newNode(t, durable.NewMemFS(), 7, 4, false)
	p.db.Put(1, 1)
	if err := p.db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	r := newNode(t, durable.NewMemFS(), 8, 4, true)
	defer r.close()

	var alive atomic.Bool
	alive.Store(true)
	downCh := make(chan struct{})
	var fired atomic.Int32
	rep, err := New(r.db, Config{
		Dial: func() (net.Conn, error) {
			if !alive.Load() {
				return nil, errors.New("primary unreachable")
			}
			return p.dialTo()()
		},
		Interval:        time.Hour, // anti-entropy parked; the prober is under test
		HealthInterval:  time.Millisecond,
		HealthThreshold: 3,
		OnPrimaryDown: func() {
			fired.Add(1)
			close(downCh)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Stop()
	rep.Start()

	// Healthy phase: let several probe ticks pass; no declaration.
	time.Sleep(20 * time.Millisecond)
	if rep.Stats().PrimaryDown {
		t.Fatal("primary declared down while alive")
	}

	// Kill the primary: dials refuse, the live probe conn dies.
	alive.Store(false)
	p.srv.Close()
	p.db.Close()
	select {
	case <-downCh:
	case <-time.After(5 * time.Second):
		t.Fatal("prober never declared the primary down")
	}
	st := rep.Stats()
	if !st.PrimaryDown || st.ProbeFailures < 3 {
		t.Fatalf("stats after declaration: %+v", st)
	}
	// The declaration is once-per-process: give the prober more ticks
	// and check the callback did not refire.
	time.Sleep(20 * time.Millisecond)
	if n := fired.Load(); n != 1 {
		t.Fatalf("OnPrimaryDown fired %d times, want exactly 1", n)
	}
}

// putOnNode performs one wire PUT against a server over a fresh pipe.
func putOnNode(srv *server.Server, k, v int64) (bool, error) {
	cliEnd, srvEnd := net.Pipe()
	srv.ServeConn(srvEnd)
	c := client.NewConn(cliEnd)
	defer c.Close()
	return c.Put(k, v)
}
