package replica

import (
	"bytes"
	"net"
	"testing"

	"repro/client"
	"repro/internal/durable"
	"repro/internal/expiry"
	"repro/internal/server"
)

// node is one cluster member in tests: its own MemFS, DB, and serving
// side. All tests run NoBackground so every commit is explicit and the
// schedule is deterministic.
type node struct {
	fs  *durable.MemFS
	db  *durable.DB
	srv *server.Server
}

const nodeDir = "db"

func newNode(t *testing.T, fs *durable.MemFS, seed uint64, shards int, readOnly bool) *node {
	t.Helper()
	return newNodeClock(t, fs, seed, shards, readOnly, nil)
}

// newNodeClock is newNode with an injected TTL epoch clock (nil: the
// system clock). Read-only nodes open with NoSweep — a replica's dead
// entries leave when the primary's swept checkpoint ships, never on the
// replica's own schedule.
func newNodeClock(t *testing.T, fs *durable.MemFS, seed uint64, shards int, readOnly bool, clk expiry.Clock) *node {
	t.Helper()
	db, err := durable.Open(nodeDir, &durable.Options{
		Shards: shards, Seed: seed, NoBackground: true, FS: fs,
		Clock: clk, NoSweep: readOnly,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(db, server.Config{ReadTimeout: -1, ReadOnly: readOnly})
	return &node{fs: fs, db: db, srv: srv}
}

// dialTo returns a Dial func that opens a fresh net.Pipe served by n.
func (n *node) dialTo() func() (net.Conn, error) {
	return func() (net.Conn, error) {
		cliEnd, srvEnd := net.Pipe()
		n.srv.ServeConn(srvEnd)
		return cliEnd, nil
	}
}

func (n *node) close() {
	n.srv.Close()
	n.db.Close()
}

// dialNode opens a client connection to a node's server over a pipe.
func dialNode(t *testing.T, n *node) *client.Conn {
	t.Helper()
	nc, err := n.dialTo()()
	if err != nil {
		t.Fatal(err)
	}
	return client.NewConn(nc)
}

// dirBytes snapshots every file of a node's DB directory.
func dirBytes(t *testing.T, fs durable.FS) map[string][]byte {
	t.Helper()
	names, err := fs.List(nodeDir)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string][]byte, len(names))
	for _, name := range names {
		f, err := fs.Open(nodeDir + "/" + name)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(f); err != nil {
			t.Fatal(err)
		}
		f.Close()
		out[name] = buf.Bytes()
	}
	return out
}

// sameDirs asserts every node's DB directory is byte-identical to the
// first's: same file names, same bytes.
func sameDirs(t *testing.T, fss ...durable.FS) {
	t.Helper()
	want := dirBytes(t, fss[0])
	for i, fs := range fss[1:] {
		got := dirBytes(t, fs)
		if len(got) != len(want) {
			t.Fatalf("node %d holds %d files, node 0 holds %d", i+1, len(got), len(want))
		}
		for name, wb := range want {
			gb, ok := got[name]
			if !ok {
				t.Fatalf("node %d is missing file %s", i+1, name)
			}
			if !bytes.Equal(gb, wb) {
				t.Fatalf("node %d file %s differs from node 0 (%d vs %d bytes)",
					i+1, name, len(gb), len(wb))
			}
		}
	}
}

// TestSyncOnceConverges syncs a fresh replica onto a populated primary
// and checks directories, contents, and the divergent-only accounting.
func TestSyncOnceConverges(t *testing.T) {
	p := newNode(t, durable.NewMemFS(), 7, 8, false)
	defer p.close()
	for k := int64(0); k < 3000; k++ {
		p.db.Put(k, k*11)
	}
	if err := p.db.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	r := newNode(t, durable.NewMemFS(), 99, 8, true)
	defer r.close()
	rep, err := New(r.db, Config{Dial: p.dialTo()})
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Stop()

	sum, err := rep.SyncOnce()
	if err != nil {
		t.Fatal(err)
	}
	if sum.Converged || !sum.Installed || sum.ShardsFetched != 8 || sum.BytesFetched == 0 {
		t.Fatalf("first round: %+v", sum)
	}
	sameDirs(t, p.fs, r.fs)
	if v, ok := r.db.Get(1234); !ok || v != 1234*11 {
		t.Fatalf("replica Get(1234) = %d %v", v, ok)
	}
	if err := r.db.VerifyCanonical(); err != nil {
		t.Fatal(err)
	}

	// A second round with nothing new is pure hash comparison.
	sum, err = rep.SyncOnce()
	if err != nil {
		t.Fatal(err)
	}
	if !sum.Converged || sum.Installed || sum.ShardsFetched != 0 {
		t.Fatalf("converged round: %+v", sum)
	}

	// A small write dirties a subset of shards; only those cross the
	// wire, the rest are reused from the replica's own disk.
	p.db.Put(5_000_000, 1)
	if err := p.db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	sum, err = rep.SyncOnce()
	if err != nil {
		t.Fatal(err)
	}
	if !sum.Installed || sum.ShardsFetched != 1 {
		t.Fatalf("incremental round fetched %d shards: %+v", sum.ShardsFetched, sum)
	}
	sameDirs(t, p.fs, r.fs)
}

// TestSyncChunking forces multi-chunk image fetches and checks the
// reassembled install still lands byte-identical.
func TestSyncChunking(t *testing.T) {
	p := newNode(t, durable.NewMemFS(), 3, 2, false)
	defer p.close()
	for k := int64(0); k < 5000; k++ {
		p.db.Put(k, -k)
	}
	if err := p.db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	r := newNode(t, durable.NewMemFS(), 4, 2, true)
	defer r.close()
	rep, err := New(r.db, Config{Dial: p.dialTo(), ChunkSize: 777})
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Stop()
	sum, err := rep.SyncOnce()
	if err != nil {
		t.Fatal(err)
	}
	if !sum.Installed {
		t.Fatalf("%+v", sum)
	}
	sameDirs(t, p.fs, r.fs)
	if rep.Stats().BytesFetched == 0 {
		t.Fatal("no bytes accounted")
	}
}

// TestReplicaServesReadsAndRefusesWrites runs a read-only server over
// the replica's DB and checks both halves of the contract.
func TestReplicaServesReadsAndRefusesWrites(t *testing.T) {
	p := newNode(t, durable.NewMemFS(), 7, 4, false)
	defer p.close()
	p.db.Put(42, 4242)
	if err := p.db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	r := newNode(t, durable.NewMemFS(), 8, 4, true)
	defer r.close()
	rep, err := New(r.db, Config{Dial: p.dialTo()})
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Stop()
	if _, err := rep.SyncOnce(); err != nil {
		t.Fatal(err)
	}

	c := dialNode(t, r)
	defer c.Close()
	if v, ok, err := c.Get(42); err != nil || !ok || v != 4242 {
		t.Fatalf("read from replica: %d %v %v", v, ok, err)
	}
	if _, err := c.Put(1, 1); err == nil {
		t.Fatal("replica accepted a write")
	}
	// The replica serves sync to downstreams: chain a second-tier
	// replica off the first and reach the same bytes.
	r2 := newNode(t, durable.NewMemFS(), 9, 4, true)
	defer r2.close()
	rep2, err := New(r2.db, Config{Dial: r.dialTo()})
	if err != nil {
		t.Fatal(err)
	}
	defer rep2.Stop()
	if sum, err := rep2.SyncOnce(); err != nil || !sum.Installed {
		t.Fatalf("chained sync: %+v %v", sum, err)
	}
	sameDirs(t, p.fs, r.fs, r2.fs)
}

// TestReplicaRedialsAfterPrimaryRestart kills the primary's serving
// side mid-life and checks the replica recovers on the next round.
func TestReplicaRedialsAfterPrimaryRestart(t *testing.T) {
	pfs := durable.NewMemFS()
	p := newNode(t, pfs, 7, 4, false)
	p.db.Put(1, 1)
	if err := p.db.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	r := newNode(t, durable.NewMemFS(), 8, 4, true)
	defer r.close()
	// The dial func resolves p at call time so a restart is picked up.
	rep, err := New(r.db, Config{Dial: func() (net.Conn, error) {
		cliEnd, srvEnd := net.Pipe()
		p.srv.ServeConn(srvEnd)
		return cliEnd, nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Stop()
	if _, err := rep.SyncOnce(); err != nil {
		t.Fatal(err)
	}

	// Power-cut the primary: sever its server, abandon the DB, recover
	// the durable view into a new node.
	p.srv.Close()
	p.db.Abandon()
	pfs = pfs.Crash()
	p = newNode(t, pfs, 7, 4, false)
	defer p.close()
	p.db.Put(2, 2)
	if err := p.db.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	// First round after the restart may fail (dead pipe); the replica
	// must redial and converge within a couple of rounds.
	var synced bool
	for i := 0; i < 3 && !synced; i++ {
		sum, err := rep.SyncOnce()
		synced = err == nil && (sum.Installed || sum.Converged)
	}
	if !synced {
		t.Fatal("replica did not recover after primary restart")
	}
	sameDirs(t, p.fs, r.fs)
	if v, ok := r.db.Get(2); !ok || v != 2 {
		t.Fatalf("replica missing post-restart write: %d %v", v, ok)
	}
}
