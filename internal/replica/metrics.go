package replica

import "repro/internal/obs"

// replicaMetrics exposes the anti-entropy loop: the existing atomic
// round/install/fetch counters are bridged read-at-scrape (no double
// counting), and the round-duration histogram, converged-round count,
// and image verify failures record live. Everything is counts and
// durations of the convergence machinery — shard *indices* and byte
// *totals*, never contents. Zero value with a nil registry is live
// but unregistered.
type replicaMetrics struct {
	converged   *obs.Counter   // rounds that matched the primary outright
	verifyFails *obs.Counter   // fetched images rejected by size/hash verification
	roundSecs   *obs.Histogram // SyncOnce wall time, converged rounds included
}

func (m *replicaMetrics) init(reg *obs.Registry, r *Replica) {
	m.converged = reg.Counter("hidb_replica_converged_total", "anti-entropy rounds that found the checkpoints already matching")
	m.verifyFails = reg.Counter("hidb_replica_verify_failures_total", "fetched shard images rejected by size or hash verification")
	m.roundSecs = reg.Histogram("hidb_replica_round_seconds", "anti-entropy round wall time, converged rounds included", obs.UnitSeconds)
	if reg == nil {
		return
	}
	reg.CounterFunc("hidb_replica_rounds_total", "anti-entropy rounds attempted", func() uint64 { return r.rounds.Load() })
	reg.CounterFunc("hidb_replica_installs_total", "checkpoints installed locally", func() uint64 { return r.installs.Load() })
	reg.CounterFunc("hidb_replica_shards_fetched_total", "divergent shard images fetched over the wire", func() uint64 { return r.shardsFetched.Load() })
	reg.CounterFunc("hidb_replica_bytes_fetched_total", "shard image bytes fetched over the wire", func() uint64 { return r.bytesFetched.Load() })
	reg.CounterFunc("hidb_replica_errors_total", "anti-entropy rounds that failed", func() uint64 { return r.errs.Load() })
}
