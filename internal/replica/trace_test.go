package replica

// Cross-node trace correlation: the replica never continues a
// primary-side trace — rounds are self-initiated, so each mints its
// own — but its sync-round span carries the manifest-hash link the
// primary's checkpoint span also carries, so the two nodes' traces
// join by value with no id ever crossing the wire between them.

import (
	"testing"

	"repro/internal/durable"
	"repro/internal/server"
	"repro/internal/trace"
)

func TestTraceSyncRoundCorrelation(t *testing.T) {
	primary := durableOpen(t, durable.NewMemFS(), 42)
	defer primary.Abandon()
	trP := trace.NewStore(1024, 1, nil)
	srv := server.New(primary, server.Config{ReadTimeout: -1, Trace: trP})
	defer srv.Close()
	pnode := &node{db: primary, srv: srv}

	for k := int64(0); k < 16; k++ {
		primary.Put(k, k*3)
	}
	if err := primary.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	var cp trace.Span
	for _, sp := range trP.Snapshot() {
		if sp.Kind == trace.KindCheckpoint && sp.Start >= cp.Start {
			cp = sp
		}
	}
	if cp.ID == 0 || cp.Link == 0 {
		t.Fatalf("primary recorded no link-stamped checkpoint span: %+v", cp)
	}

	rdb := durableOpen(t, durable.NewMemFS(), 42)
	defer rdb.Abandon()
	trR := trace.NewStore(1024, 1, nil)
	rep, err := New(rdb, Config{Dial: pnode.dialTo(), Trace: trR})
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Stop()
	if _, err := rep.SyncOnce(); err != nil {
		t.Fatal(err)
	}

	rsps := trR.Snapshot()
	var round trace.Span
	for _, sp := range rsps {
		if sp.Kind == trace.KindSyncRound {
			round = sp
		}
	}
	if round.ID == 0 {
		t.Fatalf("replica recorded no sync-round span: %+v", rsps)
	}
	if round.Trace == 0 || round.Parent != 0 {
		t.Fatalf("sync round should be its own trace's root: %+v", round)
	}
	if round.Err != 0 {
		t.Fatalf("sync round recorded an error: %+v", round)
	}
	if round.Link != cp.Link {
		t.Fatalf("replica round link %x does not match primary checkpoint link %x", round.Link, cp.Link)
	}
	var inst trace.Span
	for _, sp := range trR.ByTrace(round.Trace) {
		if sp.Kind == trace.KindInstall {
			inst = sp
		}
	}
	if inst.ID == 0 || inst.Parent != round.ID {
		t.Fatalf("install span %+v not parented under sync round %x", inst, round.ID)
	}
}

// durableOpen opens a NoBackground NoSweep DB on fs for trace tests.
func durableOpen(t *testing.T, fs *durable.MemFS, seed uint64) *durable.DB {
	t.Helper()
	db, err := durable.Open(nodeDir, &durable.Options{
		Shards: 4, Seed: seed, NoBackground: true, NoSweep: true, FS: fs,
	})
	if err != nil {
		t.Fatal(err)
	}
	return db
}
