package replica

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/client"
	"repro/internal/durable"
	"repro/internal/obs"
	"repro/internal/proto"
)

// Config tunes a Replica. Dial is required; everything else has
// defaults.
type Config struct {
	// Dial establishes a connection to the primary (or to another
	// replica — replicas serve SHARDHASH/SYNC too, so trees work). The
	// replica redials after any connection error.
	Dial func() (net.Conn, error)
	// Interval is the poll period between anti-entropy rounds in Run
	// (0: 250ms). A converged round is one SHARDHASH round trip.
	Interval time.Duration
	// ChunkSize caps the image bytes requested per SYNC fetch
	// (0: 256 KiB; clamped to proto.MaxSyncChunk).
	ChunkSize int
	// Timeout bounds each request's reply wait (0: 30 seconds;
	// negative: none). Without it a primary that accepts the connection
	// but never answers would wedge the sync round — and therefore
	// Stop — forever.
	Timeout time.Duration
	// Metrics registers the replica's anti-entropy metrics (round
	// counts and duration, divergent shards, bytes fetched, verify
	// failures) on the given registry. Nil is valid.
	Metrics *obs.Registry
}

func (c Config) withDefaults() Config {
	if c.Interval <= 0 {
		c.Interval = 250 * time.Millisecond
	}
	if c.ChunkSize <= 0 {
		c.ChunkSize = 256 << 10
	} else if c.ChunkSize > proto.MaxSyncChunk {
		c.ChunkSize = proto.MaxSyncChunk
	}
	if c.Timeout == 0 {
		c.Timeout = 30 * time.Second
	} else if c.Timeout < 0 {
		c.Timeout = 0
	}
	return c
}

// Summary describes one anti-entropy round.
type Summary struct {
	// Converged: the local checkpoint already matched the primary's —
	// nothing crossed the wire beyond the hash comparison.
	Converged bool
	// Installed: a new checkpoint was committed locally this round.
	Installed bool
	// ShardsFetched counts shard images that crossed the wire (divergent
	// shards only; matching shards are reused from the local disk).
	ShardsFetched int
	// BytesFetched counts image bytes that crossed the wire.
	BytesFetched int64
}

// Stats is a point-in-time snapshot of a Replica's counters.
type Stats struct {
	Rounds        uint64 `json:"rounds"`
	Installs      uint64 `json:"installs"`
	ShardsFetched uint64 `json:"shards_fetched"`
	BytesFetched  uint64 `json:"bytes_fetched"`
	Errors        uint64 `json:"errors"`
}

// Replica keeps a durable.DB converged onto a primary's committed
// checkpoints. Create one with New, drive it manually with SyncOnce
// (deterministic tests) or in the background with Start/Stop. The
// Replica does not serve the network itself — run an
// internal/server.Server with Config.ReadOnly over the same DB for
// that — and it does not own the DB: closing it is the caller's job.
type Replica struct {
	db  *durable.DB
	cfg Config

	mu   sync.Mutex // guards conn and serializes SyncOnce rounds
	conn *client.Conn

	rounds, installs, shardsFetched, bytesFetched, errs atomic.Uint64

	m replicaMetrics

	stopOnce sync.Once
	stop     chan struct{}
	wg       sync.WaitGroup
	started  atomic.Bool
}

// New returns a Replica over db. The db should have been opened with
// NoBackground: a replica's durable state advances by installing the
// primary's checkpoints, not by checkpointing its own.
func New(db *durable.DB, cfg Config) (*Replica, error) {
	if cfg.Dial == nil {
		return nil, errors.New("replica: Config.Dial is required")
	}
	r := &Replica{db: db, cfg: cfg.withDefaults(), stop: make(chan struct{})}
	r.m.init(cfg.Metrics, r)
	return r, nil
}

// Stats returns a snapshot of the replica's counters.
func (r *Replica) Stats() Stats {
	return Stats{
		Rounds:        r.rounds.Load(),
		Installs:      r.installs.Load(),
		ShardsFetched: r.shardsFetched.Load(),
		BytesFetched:  r.bytesFetched.Load(),
		Errors:        r.errs.Load(),
	}
}

// connect returns the live connection, dialing if needed. Caller holds
// r.mu.
func (r *Replica) connect() (*client.Conn, error) {
	if r.conn != nil {
		return r.conn, nil
	}
	nc, err := r.cfg.Dial()
	if err != nil {
		return nil, fmt.Errorf("replica: dialing primary: %w", err)
	}
	r.conn = client.NewConnTimeout(nc, r.cfg.Timeout)
	return r.conn, nil
}

// dropConn discards the connection after an error so the next round
// redials. Caller holds r.mu.
func (r *Replica) dropConn() {
	if r.conn != nil {
		r.conn.Close()
		r.conn = nil
	}
}

// SyncOnce runs one anti-entropy round: compare checkpoint descriptors
// with the primary, fetch the divergent shard images, verify them, and
// install. It is safe to call concurrently with reads on the DB and
// with other SyncOnce calls (rounds serialize). On any error the
// connection is dropped and the next call redials; a RemoteError with
// proto.ErrCodeStale simply means the primary checkpointed mid-round —
// retry and the round converges.
func (r *Replica) SyncOnce() (Summary, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.rounds.Add(1)
	t0 := time.Now()
	sum, err := r.syncLocked()
	r.m.roundSecs.ObserveSince(t0)
	if err != nil {
		r.errs.Add(1)
		r.dropConn()
		return sum, err
	}
	if sum.Converged {
		r.m.converged.Inc()
	}
	return sum, nil
}

func (r *Replica) syncLocked() (Summary, error) {
	var sum Summary
	conn, err := r.connect()
	if err != nil {
		return sum, err
	}
	hseed, remote, err := conn.SyncShardHashes()
	if err != nil {
		return sum, fmt.Errorf("replica: fetching shard hashes: %w", err)
	}

	localSeed, local, lerr := r.db.ShardHashes()
	sameLayout := lerr == nil && localSeed == hseed && len(local) == len(remote)
	if sameLayout {
		same := true
		for i := range remote {
			if local[i].Hash != remote[i].Hash {
				same = false
				break
			}
		}
		if same {
			sum.Converged = true
			return sum, nil
		}
	}

	images := make([][]byte, len(remote))
	for i, e := range remote {
		if sameLayout && local[i].Hash == e.Hash {
			// This shard already matches: reuse the committed local bytes
			// instead of shipping them again. The images are content
			// addressed, so "same hash" IS "same bytes".
			img, err := r.db.ShardImage(i, e.Hash)
			if err == nil && int64(len(img)) == e.Size {
				images[i] = img
				continue
			}
			// Local file unexpectedly unusable — fall through and fetch.
		}
		img, err := r.fetchShard(conn, i, e)
		if err != nil {
			return sum, err
		}
		images[i] = img
		sum.ShardsFetched++
		sum.BytesFetched += int64(len(img))
		r.shardsFetched.Add(1)
		r.bytesFetched.Add(uint64(len(img)))
	}

	if err := r.db.InstallCheckpoint(hseed, images); err != nil {
		return sum, err
	}
	sum.Installed = true
	r.installs.Add(1)
	return sum, nil
}

// fetchShard pulls one shard image chunk by chunk and verifies it
// against the advertised size and hash, so a lying or corrupted peer
// cannot hand us installable garbage.
func (r *Replica) fetchShard(conn *client.Conn, i int, e proto.ShardHash) ([]byte, error) {
	buf := make([]byte, 0, e.Size)
	for {
		data, more, err := conn.SyncShardChunk(i, e.Hash, uint64(len(buf)), r.cfg.ChunkSize)
		if err != nil {
			return nil, fmt.Errorf("replica: fetching shard %d at offset %d: %w", i, len(buf), err)
		}
		buf = append(buf, data...)
		if int64(len(buf)) > e.Size {
			return nil, fmt.Errorf("replica: shard %d grew past its advertised %d bytes", i, e.Size)
		}
		if !more {
			break
		}
		if len(data) == 0 {
			return nil, fmt.Errorf("replica: shard %d fetch stalled at offset %d", i, len(buf))
		}
	}
	if int64(len(buf)) != e.Size {
		r.m.verifyFails.Inc()
		return nil, fmt.Errorf("replica: shard %d image is %d bytes, advertised %d", i, len(buf), e.Size)
	}
	if sha256.Sum256(buf) != e.Hash {
		r.m.verifyFails.Inc()
		return nil, fmt.Errorf("replica: shard %d image does not match its advertised hash", i)
	}
	return buf, nil
}

// Start launches the background anti-entropy loop: a round every
// Interval until Stop. Errors are counted and retried next round.
func (r *Replica) Start() {
	if r.started.Swap(true) {
		return
	}
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		t := time.NewTicker(r.cfg.Interval)
		defer t.Stop()
		for {
			select {
			case <-r.stop:
				return
			case <-t.C:
			}
			r.SyncOnce() //nolint:errcheck // counted in Stats; retried next tick
		}
	}()
}

// Stop halts the background loop (if running) and closes the
// connection to the primary. The DB is left untouched, at its last
// installed checkpoint, still serving reads.
func (r *Replica) Stop() {
	r.stopOnce.Do(func() { close(r.stop) })
	r.wg.Wait()
	r.mu.Lock()
	r.dropConn()
	r.mu.Unlock()
}

// IsStale reports whether err is the primary telling us our image
// request was superseded by a newer checkpoint — the retryable
// mid-round race, not a failure.
func IsStale(err error) bool {
	var re *proto.RemoteError
	return errors.As(err, &re) && re.Code == proto.ErrCodeStale
}
