package replica

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/client"
	"repro/internal/durable"
	"repro/internal/obs"
	"repro/internal/proto"
	"repro/internal/server"
	"repro/internal/trace"
)

// Config tunes a Replica. Dial is required; everything else has
// defaults.
type Config struct {
	// Dial establishes a connection to the primary (or to another
	// replica — replicas serve SHARDHASH/SYNC too, so trees work). The
	// replica redials after any connection error.
	Dial func() (net.Conn, error)
	// Interval is the poll period between anti-entropy rounds in Run
	// (0: 250ms). A converged round is one SHARDHASH round trip.
	Interval time.Duration
	// ChunkSize caps the image bytes requested per SYNC fetch
	// (0: 256 KiB; clamped to proto.MaxSyncChunk).
	ChunkSize int
	// Timeout bounds each request's reply wait (0: 30 seconds;
	// negative: none). Without it a primary that accepts the connection
	// but never answers would wedge the sync round — and therefore
	// Stop — forever.
	Timeout time.Duration
	// Metrics registers the replica's anti-entropy metrics (round
	// counts and duration, divergent shards, bytes fetched, verify
	// failures) on the given registry. Nil is valid.
	Metrics *obs.Registry

	// Server, if set, is the read-only server.Server over the same DB;
	// Promote flips it writable. Required for Promote, unused otherwise.
	Server *server.Server
	// HealthInterval enables the primary health prober: a PING on a
	// dedicated connection every interval (0: prober disabled). The
	// prober shares Dial and Timeout with anti-entropy.
	HealthInterval time.Duration
	// HealthThreshold is the consecutive probe failures after which the
	// primary is declared down (0: 3).
	HealthThreshold int
	// OnPrimaryDown runs once, in its own goroutine, when the prober
	// declares the primary down. Typically wired to Promote — the
	// goroutine matters, because Promote stops the prober and would
	// deadlock if called from inside its loop.
	OnPrimaryDown func()

	// Trace is the span store sync rounds are recorded into (nil:
	// tracing off). A replica's rounds run on their own clock, so each
	// kept round mints its OWN trace id — correlation with the primary
	// is by value instead: the sync-round span's Link carries the first
	// eight bytes of the primary's committed manifest hash, the same
	// stamp the primary's checkpoint span records. Rounds are kept when
	// head-sampled by the store's rate, or always on error.
	Trace *trace.Store
}

func (c Config) withDefaults() Config {
	if c.Interval <= 0 {
		c.Interval = 250 * time.Millisecond
	}
	if c.ChunkSize <= 0 {
		c.ChunkSize = 256 << 10
	} else if c.ChunkSize > proto.MaxSyncChunk {
		c.ChunkSize = proto.MaxSyncChunk
	}
	if c.Timeout == 0 {
		c.Timeout = 30 * time.Second
	} else if c.Timeout < 0 {
		c.Timeout = 0
	}
	if c.HealthThreshold <= 0 {
		c.HealthThreshold = 3
	}
	return c
}

// Summary describes one anti-entropy round.
type Summary struct {
	// Converged: the local checkpoint already matched the primary's —
	// nothing crossed the wire beyond the hash comparison.
	Converged bool
	// Installed: a new checkpoint was committed locally this round.
	Installed bool
	// ShardsFetched counts shard images that crossed the wire (divergent
	// shards only; matching shards are reused from the local disk),
	// tenant cells included.
	ShardsFetched int
	// BytesFetched counts image bytes that crossed the wire.
	BytesFetched int64
	// Namespaces is the tenant count of the installed checkpoint. A
	// tenant the primary dropped simply stops appearing — the install
	// erases its local files the same way the primary's drop did.
	Namespaces int
}

// Stats is a point-in-time snapshot of a Replica's counters.
type Stats struct {
	Rounds        uint64 `json:"rounds"`
	Installs      uint64 `json:"installs"`
	ShardsFetched uint64 `json:"shards_fetched"`
	BytesFetched  uint64 `json:"bytes_fetched"`
	Errors        uint64 `json:"errors"`
	ProbeFailures uint64 `json:"probe_failures"`
	PrimaryDown   bool   `json:"primary_down"`
	Promoted      bool   `json:"promoted"`
}

// Replica keeps a durable.DB converged onto a primary's committed
// checkpoints. Create one with New, drive it manually with SyncOnce
// (deterministic tests) or in the background with Start/Stop. The
// Replica does not serve the network itself — run an
// internal/server.Server with Config.ReadOnly over the same DB for
// that — and it does not own the DB: closing it is the caller's job.
type Replica struct {
	db  *durable.DB
	cfg Config

	mu   sync.Mutex // guards conn and serializes SyncOnce rounds
	conn *client.Conn

	rounds, installs, shardsFetched, bytesFetched, errs atomic.Uint64

	m replicaMetrics

	stopOnce sync.Once
	stop     chan struct{}
	wg       sync.WaitGroup
	started  atomic.Bool

	// Health prober state. pconn is the prober's dedicated connection —
	// deliberately not shared with anti-entropy, so a sync round stuck
	// mid-fetch cannot make the primary look alive (or dead).
	pmu         sync.Mutex
	pconn       *client.Conn
	probeFails  atomic.Uint64
	primaryDown atomic.Bool

	// abdicated flips when this node leaves replica duty (promotion).
	// Checked under mu at round entry, and set before Stop's mu barrier,
	// so once Abdicate returns no install can ever land again.
	abdicated atomic.Bool
	promoteMu sync.Mutex
}

// ErrPromoted is returned by SyncOnce after Abdicate: this node has
// left replica duty and must not install checkpoints from the old
// primary.
var ErrPromoted = errors.New("replica: node was promoted; anti-entropy abdicated")

// New returns a Replica over db. The db should have been opened with
// NoBackground: a replica's durable state advances by installing the
// primary's checkpoints, not by checkpointing its own.
func New(db *durable.DB, cfg Config) (*Replica, error) {
	if cfg.Dial == nil {
		return nil, errors.New("replica: Config.Dial is required")
	}
	r := &Replica{db: db, cfg: cfg.withDefaults(), stop: make(chan struct{})}
	r.m.init(cfg.Metrics, r)
	return r, nil
}

// Stats returns a snapshot of the replica's counters.
func (r *Replica) Stats() Stats {
	return Stats{
		Rounds:        r.rounds.Load(),
		Installs:      r.installs.Load(),
		ShardsFetched: r.shardsFetched.Load(),
		BytesFetched:  r.bytesFetched.Load(),
		Errors:        r.errs.Load(),
		ProbeFailures: r.probeFails.Load(),
		PrimaryDown:   r.primaryDown.Load(),
		Promoted:      r.abdicated.Load(),
	}
}

// connect returns the live connection, dialing if needed. Caller holds
// r.mu.
func (r *Replica) connect() (*client.Conn, error) {
	if r.conn != nil {
		return r.conn, nil
	}
	nc, err := r.cfg.Dial()
	if err != nil {
		return nil, fmt.Errorf("replica: dialing primary: %w", err)
	}
	r.conn = client.NewConnTimeout(nc, r.cfg.Timeout)
	return r.conn, nil
}

// dropConn discards the connection after an error so the next round
// redials. Caller holds r.mu.
func (r *Replica) dropConn() {
	if r.conn != nil {
		r.conn.Close()
		r.conn = nil
	}
}

// SyncOnce runs one anti-entropy round: compare checkpoint descriptors
// with the primary, fetch the divergent shard images, verify them, and
// install. It is safe to call concurrently with reads on the DB and
// with other SyncOnce calls (rounds serialize). On any error the
// connection is dropped and the next call redials; a RemoteError with
// proto.ErrCodeStale simply means the primary checkpointed mid-round —
// retry and the round converges.
func (r *Replica) SyncOnce() (Summary, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.abdicated.Load() {
		return Summary{}, ErrPromoted
	}
	r.rounds.Add(1)
	t0 := time.Now()
	var rt *roundTrace
	if tr := r.cfg.Trace; tr != nil {
		rt = &roundTrace{tr: tr, tid: tr.NewID(), sid: tr.NewID(), sampled: tr.Sample()}
	}
	sum, err := r.syncLocked(rt)
	r.m.roundSecs.ObserveSince(t0)
	if rt != nil && (rt.sampled || err != nil) {
		ec := byte(0)
		if err != nil {
			ec = proto.ErrCodeInternal
			var re *proto.RemoteError
			if errors.As(err, &re) {
				ec = re.Code
			}
		}
		rt.tr.Record(trace.Span{
			Trace: rt.tid, ID: rt.sid,
			Start: t0.UnixNano(), Dur: int64(time.Since(t0)),
			Kind: trace.KindSyncRound, Err: ec, Shard: -1,
			In: int32(sum.ShardsFetched), Out: int32(sum.BytesFetched),
			Link: rt.link,
		})
	}
	if err != nil {
		r.errs.Add(1)
		r.dropConn()
		return sum, err
	}
	if sum.Converged {
		r.m.converged.Inc()
	}
	return sum, nil
}

// roundTrace carries one sync round's span identity through
// syncLocked, which anchors the link (the primary's manifest hash
// prefix, from the round's first Health reply) and records the
// install child span; SyncOnce records the round root afterwards,
// when the outcome (and therefore the keep decision) is known.
type roundTrace struct {
	tr      *trace.Store
	tid     uint64
	sid     uint64
	sampled bool
	link    uint64
}

func (r *Replica) syncLocked(rt *roundTrace) (Summary, error) {
	var sum Summary
	conn, err := r.connect()
	if err != nil {
		return sum, err
	}
	// The cut anchor: the primary's Health carries the SHA-256 of its
	// committed manifest, which names the exact checkpoint — tenant
	// table included, the manifest is canonical. Matching the local
	// stamp means converged without touching a single shard hash.
	h0, err := conn.Health()
	if err != nil {
		return sum, fmt.Errorf("replica: fetching health: %w", err)
	}
	if rt != nil {
		rt.link = binary.BigEndian.Uint64(h0.Hash[:8])
	}
	if _, localHash := r.db.CheckpointStamp(); localHash != ([32]byte{}) && h0.Hash == localHash {
		sum.Converged = true
		return sum, nil
	}

	hseed, remote, names, err := conn.SyncShardHashesNS()
	if err != nil {
		return sum, fmt.Errorf("replica: fetching shard hashes: %w", err)
	}

	localSeed, local, lerr := r.db.ShardHashes()
	sameLayout := lerr == nil && localSeed == hseed && len(local) == len(remote)

	images := make([][]byte, len(remote))
	for i, e := range remote {
		if sameLayout && local[i].Hash == e.Hash {
			// This shard already matches: reuse the committed local bytes
			// instead of shipping them again. The images are content
			// addressed, so "same hash" IS "same bytes".
			img, err := r.db.ShardImage(i, e.Hash)
			if err == nil && int64(len(img)) == e.Size {
				images[i] = img
				continue
			}
			// Local file unexpectedly unusable — fall through and fetch.
		}
		img, err := r.fetchShard(conn, "", i, e)
		if err != nil {
			return sum, err
		}
		images[i] = img
		sum.ShardsFetched++
		sum.BytesFetched += int64(len(img))
		r.shardsFetched.Add(1)
		r.bytesFetched.Add(uint64(len(img)))
	}

	// Tenant cells: the same dance per committed namespace — compare
	// against the locally committed cell (if any), reuse matching
	// images, fetch the divergent ones. Tenants the primary no longer
	// lists are simply absent from nss; the install drops them.
	nss := make([]durable.NSImages, 0, len(names))
	for _, name := range names {
		nsHseed, entries, err := conn.SyncNSShardHashes(name)
		if err != nil {
			return sum, fmt.Errorf("replica: fetching tenant shard hashes: %w", err)
		}
		localNSSeed, localNS, lerr := r.db.NSShardHashes(name)
		nsSame := lerr == nil && localNSSeed == nsHseed && len(localNS) == len(entries)
		imgs := make([][]byte, len(entries))
		for i, e := range entries {
			if nsSame && localNS[i].Hash == e.Hash {
				img, err := r.db.NSShardImage(name, i, e.Hash)
				if err == nil && int64(len(img)) == e.Size {
					imgs[i] = img
					continue
				}
			}
			img, err := r.fetchShard(conn, name, i, e)
			if err != nil {
				return sum, err
			}
			imgs[i] = img
			sum.ShardsFetched++
			sum.BytesFetched += int64(len(img))
			r.shardsFetched.Add(1)
			r.bytesFetched.Add(uint64(len(img)))
		}
		nss = append(nss, durable.NSImages{Name: name, Images: imgs})
	}

	// The cut check: the gather above took several round trips. If the
	// primary checkpointed anywhere in between, the pieces may mix two
	// checkpoints — installing them would fabricate a state the primary
	// never committed. Abandon the round; the next one re-anchors.
	h1, err := conn.Health()
	if err != nil {
		return sum, fmt.Errorf("replica: re-fetching health: %w", err)
	}
	if h1.Hash != h0.Hash {
		return sum, errors.New("replica: primary checkpointed mid-round; retrying")
	}

	ti := time.Now()
	if err := r.db.InstallCheckpointNS(hseed, images, nss); err != nil {
		return sum, err
	}
	sum.Installed = true
	sum.Namespaces = len(nss)
	r.installs.Add(1)
	if rt != nil && rt.sampled {
		rt.tr.Record(trace.Span{
			Trace: rt.tid, ID: rt.tr.NewID(), Parent: rt.sid,
			Start: ti.UnixNano(), Dur: int64(time.Since(ti)),
			Kind: trace.KindInstall, Shard: -1,
			In: int32(sum.ShardsFetched), Out: int32(sum.BytesFetched),
			Link: rt.link,
		})
	}
	return sum, nil
}

// fetchShard pulls one shard image chunk by chunk — from the default
// keyspace when ns is empty, from tenant ns's cell otherwise — and
// verifies it against the advertised size and hash, so a lying or
// corrupted peer cannot hand us installable garbage.
func (r *Replica) fetchShard(conn *client.Conn, ns string, i int, e proto.ShardHash) ([]byte, error) {
	buf := make([]byte, 0, e.Size)
	for {
		var (
			data []byte
			more bool
			err  error
		)
		if ns == "" {
			data, more, err = conn.SyncShardChunk(i, e.Hash, uint64(len(buf)), r.cfg.ChunkSize)
		} else {
			data, more, err = conn.SyncNSShardChunk(ns, i, e.Hash, uint64(len(buf)), r.cfg.ChunkSize)
		}
		if err != nil {
			return nil, fmt.Errorf("replica: fetching shard %d at offset %d: %w", i, len(buf), err)
		}
		buf = append(buf, data...)
		if int64(len(buf)) > e.Size {
			return nil, fmt.Errorf("replica: shard %d grew past its advertised %d bytes", i, e.Size)
		}
		if !more {
			break
		}
		if len(data) == 0 {
			return nil, fmt.Errorf("replica: shard %d fetch stalled at offset %d", i, len(buf))
		}
	}
	if int64(len(buf)) != e.Size {
		r.m.verifyFails.Inc()
		return nil, fmt.Errorf("replica: shard %d image is %d bytes, advertised %d", i, len(buf), e.Size)
	}
	if sha256.Sum256(buf) != e.Hash {
		r.m.verifyFails.Inc()
		return nil, fmt.Errorf("replica: shard %d image does not match its advertised hash", i)
	}
	return buf, nil
}

// Start launches the background anti-entropy loop — a round every
// Interval until Stop — and, when Config.HealthInterval is set, the
// primary health prober. Errors are counted and retried next round.
func (r *Replica) Start() {
	if r.started.Swap(true) {
		return
	}
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		t := time.NewTicker(r.cfg.Interval)
		defer t.Stop()
		for {
			select {
			case <-r.stop:
				return
			case <-t.C:
			}
			r.SyncOnce() //nolint:errcheck // counted in Stats; retried next tick
		}
	}()
	if r.cfg.HealthInterval > 0 {
		r.wg.Add(1)
		go r.probeLoop()
	}
}

// probeLoop PINGs the primary on a dedicated connection every
// HealthInterval. HealthThreshold consecutive failures — dial errors
// and dead connections alike — declare the primary down, exactly once
// per process, and fire OnPrimaryDown in its own goroutine.
func (r *Replica) probeLoop() {
	defer r.wg.Done()
	t := time.NewTicker(r.cfg.HealthInterval)
	defer t.Stop()
	failures := 0
	for {
		select {
		case <-r.stop:
			r.pmu.Lock()
			if r.pconn != nil {
				r.pconn.Close()
				r.pconn = nil
			}
			r.pmu.Unlock()
			return
		case <-t.C:
		}
		if r.probeOnce() {
			failures = 0
			continue
		}
		r.probeFails.Add(1)
		failures++
		if failures >= r.cfg.HealthThreshold && !r.primaryDown.Swap(true) {
			if r.cfg.OnPrimaryDown != nil {
				go r.cfg.OnPrimaryDown()
			}
		}
	}
}

// probeOnce sends one PING, redialing if the prober has no live
// connection, and reports whether the primary answered.
func (r *Replica) probeOnce() bool {
	r.pmu.Lock()
	conn := r.pconn
	r.pmu.Unlock()
	if conn == nil {
		nc, err := r.cfg.Dial()
		if err != nil {
			return false
		}
		conn = client.NewConnTimeout(nc, r.cfg.Timeout)
		r.pmu.Lock()
		r.pconn = conn
		r.pmu.Unlock()
	}
	if err := conn.Ping(nil); err != nil {
		conn.Close()
		r.pmu.Lock()
		if r.pconn == conn {
			r.pconn = nil
		}
		r.pmu.Unlock()
		return false
	}
	return true
}

// Abdicate permanently ends this node's replica duty: anti-entropy and
// the prober stop, and every future SyncOnce fails with ErrPromoted.
// Stop's mu acquisition doubles as the barrier that waits out a round
// already in flight, so when Abdicate returns, no checkpoint install
// from the old primary can ever land again. Idempotent; wired as the
// server's OnPromote so a wire PROMOTE quiesces anti-entropy before
// writes are accepted.
func (r *Replica) Abdicate() {
	r.abdicated.Store(true)
	r.Stop()
}

// Promote lifts this node into primary duty: one final best-effort
// sync round drains whatever the primary managed to commit (skipped
// with the primary typically dead — the round just fails fast), then
// Abdicate fences anti-entropy, then Config.Server flips writable and
// re-enables sweeping. Returns the server's promotion count;
// ErrNotReplica (via the server) if the node is already writable.
func (r *Replica) Promote() (uint64, error) {
	if r.cfg.Server == nil {
		return 0, errors.New("replica: Config.Server is required for Promote")
	}
	r.promoteMu.Lock()
	defer r.promoteMu.Unlock()
	if !r.abdicated.Load() {
		r.SyncOnce() //nolint:errcheck // best effort: the primary is usually dead
		r.Abdicate()
	}
	return r.cfg.Server.Promote()
}

// Stop halts the background loop (if running) and closes the
// connection to the primary. The DB is left untouched, at its last
// installed checkpoint, still serving reads.
func (r *Replica) Stop() {
	r.stopOnce.Do(func() { close(r.stop) })
	r.wg.Wait()
	r.mu.Lock()
	r.dropConn()
	r.mu.Unlock()
}

// IsStale reports whether err is the primary telling us our image
// request was superseded by a newer checkpoint — the retryable
// mid-round race, not a failure.
func IsStale(err error) bool {
	var re *proto.RemoteError
	return errors.As(err, &re) && re.Code == proto.ErrCodeStale
}
