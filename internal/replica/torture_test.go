package replica

// The cluster torture test: one primary and two replicas, all over
// net.Pipe and MemFS, under a deterministic seeded schedule of mixed
// writes, TTL writes and expirations (a shared manual epoch clock ticks
// forward mid-load), tenant-namespace writes with mid-load DROPNS
// erasures, checkpoints, anti-entropy rounds, and power cuts injected
// mid-commit on both the primary and the replicas. After quiesce every
// node's DB directory must be byte-identical to the primary's last
// checkpoint, the replicas must answer reads — default and namespaced
// — from exactly that state with every expired entry invisible, and
// the tenant dropped at the end must be forensically absent from every
// node's disk. Concurrent wire readers run throughout so the race
// detector sees reads overlapping installs, epoch transitions, and
// crashes; they assert nothing (their replies race the schedule) and
// mutate nothing, so the final state stays deterministic.

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"repro/client"
	"repro/internal/durable"
	"repro/internal/expiry"
	"repro/internal/foretest"
	"repro/internal/namespace"
	"repro/internal/shard"
)

func tortureScale(t *testing.T, short, long int) int {
	t.Helper()
	if testing.Short() {
		return short
	}
	return long
}

// TestClusterTorture is the crash/partition drill demanded by the
// acceptance criteria; CI runs it under -race with -short.
func TestClusterTorture(t *testing.T) {
	rounds := tortureScale(t, 40, 160)
	opsPerRound := tortureScale(t, 60, 200)
	const (
		shards   = 8
		keySpace = 4000
		seed     = 0xC0FFEE
	)
	rng := rand.New(rand.NewSource(17))

	// One epoch clock shared by every node in the cluster: expiry is a
	// function of (contents, epoch), and the cluster's nodes must agree
	// on the epoch just as they agree on the seed.
	clk := expiry.NewManual(1)

	// The primary and its write client. Rebuilt on every power cut.
	pfs := durable.NewMemFS()
	prim := newNodeClock(t, pfs, seed, shards, false, clk)
	pconn := dialNode(t, prim)

	// model mirrors every acknowledged write (values and expiries);
	// committed mirrors the state at the last successful checkpoint —
	// the only state a power cut may roll the primary back to, and
	// therefore the only state a replica can ever have installed.
	// Entries whose expiry has passed stay in the maps: liveness is
	// decided at read time, exactly as the store decides it.
	model := map[int64]int64{}
	modelExp := map[int64]int64{} // key -> expiry, only nonzero
	committed := map[int64]int64{}
	committedExp := map[int64]int64{}
	live := func(k int64) bool {
		exp, ok := modelExp[k]
		return !ok || expiry.Live(exp, clk.Now())
	}

	// Tenant state. The victim tenant is repeatedly dropped mid-load
	// and recreated; its keys and values are distinctive constants so
	// the post-quiesce forensic sweep can grep every node's disk for
	// them. victimEver accumulates every (key, value) the victim ever
	// acknowledged, across drops — all of it must be gone at the end.
	const victim = "victim-corp-xq"
	tenants := []string{"acme", "zeta", victim}
	victimKey := func(k int64) int64 { return 0x51C3_D00D_0000_0000 | k }
	nsModel := map[string]map[int64]int64{}
	nsCommitted := map[string]map[int64]int64{}
	victimEver := map[int64]int64{}
	copyNS := func(src map[string]map[int64]int64) map[string]map[int64]int64 {
		out := make(map[string]map[int64]int64, len(src))
		for ns, m := range src {
			cm := make(map[int64]int64, len(m))
			for k, v := range m {
				cm[k] = v
			}
			out[ns] = cm
		}
		return out
	}
	snapshot := func() {
		committed = make(map[int64]int64, len(model))
		for k, v := range model {
			committed[k] = v
		}
		committedExp = make(map[int64]int64, len(modelExp))
		for k, v := range modelExp {
			committedExp[k] = v
		}
		nsCommitted = copyNS(nsModel)
	}
	checkpoint := func() bool {
		_, err := pconn.Checkpoint()
		if err == nil {
			snapshot()
		}
		return err == nil
	}
	if !checkpoint() {
		t.Fatal("initial checkpoint failed")
	}

	// Replicas. curRep lets the concurrent readers follow crashes.
	type slot struct {
		fs  *durable.MemFS
		n   *node
		rep *Replica
	}
	mkSlot := func(localSeed uint64) *slot {
		s := &slot{fs: durable.NewMemFS()}
		s.n = newNodeClock(t, s.fs, localSeed, shards, true, clk)
		rep, err := New(s.n.db, Config{Dial: prim.dialTo()})
		if err != nil {
			t.Fatal(err)
		}
		s.rep = rep
		return s
	}
	slots := []*slot{mkSlot(1), mkSlot(2)}
	var curRep [2]atomic.Pointer[node]
	for i, s := range slots {
		curRep[i].Store(s.n)
	}

	// Concurrent wire readers: GET/RANGE/LEN against whichever node
	// currently occupies the slot. Errors are expected whenever the
	// schedule crashes the node under them.
	stopReaders := make(chan struct{})
	var readerWG sync.WaitGroup
	for i := range curRep {
		readerWG.Add(1)
		go func(i int) {
			defer readerWG.Done()
			rrng := rand.New(rand.NewSource(int64(1000 + i)))
			for {
				select {
				case <-stopReaders:
					return
				default:
				}
				n := curRep[i].Load()
				nc, err := n.dialTo()()
				if err != nil {
					continue
				}
				c := client.NewConn(nc)
				for j := 0; j < 32; j++ {
					k := rrng.Int63n(keySpace)
					if _, _, err := c.Get(k); err != nil {
						break
					}
					if j%4 == 0 {
						// Namespaced reads race installs and drops too; a
						// mid-drop miss is fine, a hang or a torn reply is not.
						if _, _, err := c.NSGet(tenants[rrng.Intn(len(tenants))], k); err != nil {
							break
						}
					}
					if j%8 == 0 {
						if _, _, err := c.Range(k, k+50, 16); err != nil {
							break
						}
					}
					if j%16 == 0 {
						if _, err := c.Len(); err != nil {
							break
						}
					}
				}
				c.Close()
			}
		}(i)
	}

	crashPrimary := func() {
		pconn.Close()
		prim.srv.Close()
		prim.db.Abandon()
		pfs = pfs.Crash()
		prim = newNodeClock(t, pfs, seed, shards, false, clk)
		pconn = dialNode(t, prim)
		// Everything past the last successful checkpoint is gone.
		model = make(map[int64]int64, len(committed))
		for k, v := range committed {
			model[k] = v
		}
		modelExp = make(map[int64]int64, len(committedExp))
		for k, v := range committedExp {
			modelExp[k] = v
		}
		nsModel = copyNS(nsCommitted)
		// Replicas must redial the new incarnation.
		for _, s := range slots {
			s.rep.Stop()
			rep, err := New(s.n.db, Config{Dial: prim.dialTo()})
			if err != nil {
				t.Fatal(err)
			}
			s.rep = rep
		}
	}

	crashReplica := func(i int) {
		s := slots[i]
		s.rep.Stop()
		s.n.srv.Close()
		s.n.db.Abandon()
		s.fs = s.fs.Crash()
		s.n = newNodeClock(t, s.fs, uint64(100+i), shards, true, clk)
		rep, err := New(s.n.db, Config{Dial: prim.dialTo()})
		if err != nil {
			t.Fatal(err)
		}
		s.rep = rep
		curRep[i].Store(s.n)
	}

	for round := 0; round < rounds; round++ {
		// The epoch ticks forward on some rounds, expiring whatever TTL
		// writes have fallen due — on every node at once, since the
		// cluster shares the clock.
		if round%3 == 2 {
			clk.Advance(1)
		}

		// Mixed write load on the primary: point puts/deletes, TTL puts,
		// and small batches, every ack mirrored into the model.
		for op := 0; op < opsPerRound; op++ {
			k := rng.Int63n(keySpace)
			switch rng.Intn(10) {
			case 0, 1: // delete
				if _, err := pconn.Delete(k); err != nil {
					t.Fatalf("round %d: delete: %v", round, err)
				}
				delete(model, k)
				delete(modelExp, k)
			case 2: // batch put
				items := make([]client.Item, 1+rng.Intn(4))
				for j := range items {
					items[j] = client.Item{Key: rng.Int63n(keySpace), Val: rng.Int63()}
				}
				if _, err := pconn.PutBatch(items); err != nil {
					t.Fatalf("round %d: batch put: %v", round, err)
				}
				for _, it := range items {
					model[it.Key] = it.Val
					delete(modelExp, it.Key) // a plain put clears any TTL
				}
			case 3, 4: // TTL put: sessions that die a few epochs out
				v := rng.Int63()
				exp := clk.Now() + 1 + rng.Int63n(4)
				if _, err := pconn.PutTTL(k, v, exp); err != nil {
					t.Fatalf("round %d: put-ttl: %v", round, err)
				}
				model[k] = v
				modelExp[k] = exp
			case 5: // tenant put
				ns := tenants[rng.Intn(len(tenants))]
				v := rng.Int63()
				if ns == victim {
					k = victimKey(k)
					victimEver[k] = v
				}
				if _, err := pconn.NSPut(ns, k, v); err != nil {
					t.Fatalf("round %d: ns put: %v", round, err)
				}
				if nsModel[ns] == nil {
					nsModel[ns] = map[int64]int64{}
				}
				nsModel[ns][k] = v
			case 6: // tenant delete
				ns := tenants[rng.Intn(len(tenants))]
				if ns == victim {
					k = victimKey(k)
				}
				if _, err := pconn.NSDelete(ns, k); err != nil {
					t.Fatalf("round %d: ns delete: %v", round, err)
				}
				delete(nsModel[ns], k)
			default: // put
				v := rng.Int63()
				if _, err := pconn.Put(k, v); err != nil {
					t.Fatalf("round %d: put: %v", round, err)
				}
				model[k] = v
				delete(modelExp, k) // a plain put clears any TTL
			}
		}

		// Every few rounds the victim tenant is erased mid-load. DROPNS
		// is a durability barrier: the ack means a checkpoint omitting
		// the tenant is already committed, so the drop and the snapshot
		// mirror together.
		if round%7 == 5 {
			existed, err := pconn.DropNS(victim)
			if err != nil {
				t.Fatalf("round %d: dropns: %v", round, err)
			}
			if !existed && len(nsModel[victim]) > 0 {
				t.Fatalf("round %d: dropns reported absent with %d live victim keys", round, len(nsModel[victim]))
			}
			delete(nsModel, victim)
			if existed {
				snapshot()
			}
		}

		switch ev := rng.Intn(10); {
		case ev < 4: // checkpoint, then let some replicas sync
			if !checkpoint() {
				t.Fatalf("round %d: clean checkpoint failed", round)
			}
			for i, s := range slots {
				if rng.Intn(2) == 0 {
					if _, err := s.rep.SyncOnce(); err != nil && !IsStale(err) {
						t.Fatalf("round %d: replica %d sync: %v", round, i, err)
					}
				}
			}
		case ev < 6: // power-cut a replica mid-install
			i := rng.Intn(len(slots))
			checkpoint() // make sure there is usually something to ship
			slots[i].fs.FailAfter(1 + rng.Intn(12))
			slots[i].rep.SyncOnce() //nolint:errcheck // the installed fault makes failure legal
			crashReplica(i)
			// Recovery must have landed on a valid checkpoint; converge it.
			if _, err := slots[i].rep.SyncOnce(); err != nil && !IsStale(err) {
				t.Fatalf("round %d: replica %d post-crash sync: %v", round, i, err)
			}
		case ev < 8: // power-cut the primary mid-checkpoint
			pfs.FailAfter(1 + rng.Intn(16))
			pconn.Checkpoint() //nolint:errcheck // may fail at the injected fault; may commit first
			crashPrimary()
		default: // quiet round: replicas sync whatever is committed
			for i, s := range slots {
				if _, err := s.rep.SyncOnce(); err != nil && !IsStale(err) {
					t.Fatalf("round %d: replica %d idle sync: %v", round, i, err)
				}
			}
		}
	}

	// Quiesce: erase the victim for good, final checkpoint, converge
	// both replicas, stop readers.
	if _, err := pconn.DropNS(victim); err != nil {
		t.Fatalf("final dropns: %v", err)
	}
	delete(nsModel, victim)
	if !checkpoint() {
		t.Fatal("final checkpoint failed")
	}
	for i, s := range slots {
		var done bool
		for attempt := 0; attempt < 5 && !done; attempt++ {
			sum, err := s.rep.SyncOnce()
			if err != nil {
				if IsStale(err) {
					continue
				}
				t.Fatalf("replica %d: final sync: %v", i, err)
			}
			done = sum.Converged || sum.Installed
		}
		if !done {
			t.Fatalf("replica %d did not converge", i)
		}
	}
	close(stopReaders)
	readerWG.Wait()

	// THE acceptance criterion: every node's DB directory is
	// byte-identical to the primary's last checkpoint.
	if err := prim.db.VerifyCanonical(); err != nil {
		t.Fatal(err)
	}
	sameDirs(t, pfs, slots[0].fs, slots[1].fs)
	for i, s := range slots {
		if err := s.n.db.VerifyCanonical(); err != nil {
			t.Fatalf("replica %d: %v", i, err)
		}
	}

	// The dropped tenant is forensically absent from every node's disk:
	// its name, its derived and routing seeds (binary, decimal, and the
	// hex form file names use), and every key and value it ever held
	// across all its incarnations.
	if len(victimEver) == 0 {
		t.Fatal("schedule never wrote to the victim tenant; the erasure sweep is vacuous")
	}
	rootHseed := prim.db.Store().RoutingSeed()
	derived := namespace.DeriveSeed(rootHseed, victim)
	needles := []foretest.Needle{
		foretest.StringNeedle("victim tenant name", victim),
		{Label: "victim routing seed(hex)", Bytes: []byte(fmt.Sprintf("%016x", shard.MixSeed(derived)))},
	}
	needles = append(needles, foretest.Uint64Needles("victim derived seed", derived)...)
	for k, v := range victimEver {
		needles = append(needles, foretest.Int64Needles(fmt.Sprintf("victimKey(%#x)", k), k)...)
		needles = append(needles, foretest.Int64Needles(fmt.Sprintf("victimVal(%d)", v), v)...)
	}
	for i, fs := range []durable.FS{pfs, slots[0].fs, slots[1].fs} {
		for _, hit := range foretest.ScanDir(t, fs, nodeDir, needles) {
			t.Errorf("node %d forensic hit: %s", i, hit)
		}
	}

	// The replicas answer reads from exactly the committed state — every
	// expired entry invisible, every live TTL'd entry carrying its
	// expiry — and still refuse writes.
	liveCount := 0
	for k := range model {
		if live(k) {
			liveCount++
		}
	}
	if liveCount == len(model) {
		t.Fatal("schedule produced no expirations; the torture is not exercising TTL")
	}
	for i, s := range slots {
		c := dialNode(t, s.n)
		if n, err := c.Len(); err != nil || n != liveCount {
			t.Fatalf("replica %d: len = %d (%v), want %d live of %d", i, n, err, liveCount, len(model))
		}
		checked, deadChecked := 0, 0
		for k, v := range model {
			gotV, gotExp, ok, err := c.GetTTL(k)
			if err != nil {
				t.Fatal(err)
			}
			if !live(k) {
				if ok {
					t.Fatalf("replica %d: expired key %d still visible as (%d,%d)", i, k, gotV, gotExp)
				}
				if deadChecked++; checked >= 500 && deadChecked >= 100 {
					break
				}
				continue
			}
			if !ok || gotV != v || gotExp != modelExp[k] {
				t.Fatalf("replica %d: get-ttl(%d) = (%d,%d,%v), want (%d,%d,true)",
					i, k, gotV, gotExp, ok, v, modelExp[k])
			}
			if checked++; checked >= 500 && deadChecked >= 100 {
				break // spot check; Len already pinned the cardinality
			}
		}
		// Namespaced reads serve exactly the committed tenant state; the
		// listing matches the model; the dropped tenant reads as
		// never-existed.
		for ns, m := range nsModel {
			spot := 0
			for k, v := range m {
				gotV, ok, err := c.NSGet(ns, k)
				if err != nil {
					t.Fatal(err)
				}
				if !ok || gotV != v {
					t.Fatalf("replica %d: tenant %q get(%d) = (%d,%v), want (%d,true)", i, ns, k, gotV, ok, v)
				}
				if spot++; spot >= 300 {
					break
				}
			}
		}
		_, listed, err := c.ListNS()
		if err != nil {
			t.Fatal(err)
		}
		wantNS := 0
		for _, m := range nsModel {
			if len(m) > 0 {
				wantNS++
			}
		}
		if len(listed) != wantNS {
			t.Fatalf("replica %d lists %d tenants, want %d", i, len(listed), wantNS)
		}
		for _, st := range listed {
			if st.Name == victim {
				t.Fatalf("replica %d still lists the dropped tenant", i)
			}
			if int(st.Keys) != len(nsModel[st.Name]) {
				t.Fatalf("replica %d: tenant %q lists %d keys, want %d", i, st.Name, st.Keys, len(nsModel[st.Name]))
			}
		}
		if _, ok, err := c.NSGet(victim, victimKey(1)); err != nil || ok {
			t.Fatalf("replica %d: dropped tenant still readable (ok=%v err=%v)", i, ok, err)
		}
		if _, err := c.Put(1, 1); err == nil {
			t.Fatalf("replica %d accepted a write after the torture", i)
		}
		if _, err := c.NSPut("acme", 1, 1); err == nil {
			t.Fatalf("replica %d accepted a namespaced write after the torture", i)
		}
		if _, err := c.PutTTL(1, 1, clk.Now()+100); err == nil {
			t.Fatalf("replica %d accepted a TTL write after the torture", i)
		}
		c.Close()
	}

	for _, s := range slots {
		s.rep.Stop()
		s.n.close()
	}
	pconn.Close()
	prim.srv.Close()
	prim.db.Close()
}
