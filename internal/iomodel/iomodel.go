// Package iomodel simulates the disk-access machine (DAM) model of
// Aggarwal and Vitter that the paper uses for all of its I/O bounds
// (§1.1): an internal memory of size M, an arbitrarily large external
// memory, and transfers in blocks of size B < M. The performance measure
// is the number of block transfers (I/Os); computation is free.
//
// This package is the substrate substitute for the paper's physical
// disk: instead of timing a spinning disk we count block transfers
// directly in the model the theorems are stated in. Every external-memory
// structure in this repository routes its memory touches through a
// *Tracker so experiments can report exact I/O counts.
//
// Addresses are in abstract "element units"; the tracker converts an
// element address to a block number by dividing by B. A nil *Tracker is
// valid everywhere and costs (almost) nothing, so pure-RAM benchmarks can
// run the same code paths without accounting overhead.
package iomodel

import "fmt"

// Tracker counts block transfers for a DAM with block size B and an LRU
// cache of M/B block frames. The zero value is unusable; use New.
type Tracker struct {
	b      int // block size, in element units
	frames int // number of cache frames (M/B); 0 means no cache

	reads  uint64 // block reads from disk (cache misses)
	writes uint64 // block writes to disk (write-through on dirty eviction)
	hits   uint64 // cache hits

	// Fully-associative LRU cache over block numbers.
	pos  map[int64]int // block -> index into order
	list lruList
}

// New returns a Tracker for block size b (element units) and a cache of
// memBlocks frames (M/B). memBlocks == 0 disables caching: every access
// to a new block is an I/O (this matches the usual "tall cache free"
// accounting for one-pass structures and makes counts deterministic).
func New(b, memBlocks int) *Tracker {
	if b <= 0 {
		panic(fmt.Sprintf("iomodel: block size %d must be positive", b))
	}
	if memBlocks < 0 {
		panic("iomodel: negative memory size")
	}
	t := &Tracker{b: b, frames: memBlocks}
	if memBlocks > 0 {
		t.pos = make(map[int64]int, memBlocks)
		t.list.init(memBlocks)
	}
	return t
}

// B returns the tracker's block size in element units. A nil tracker
// reports block size 1.
func (t *Tracker) B() int {
	if t == nil {
		return 1
	}
	return t.b
}

// Reads returns the number of block reads (cache misses) so far.
func (t *Tracker) Reads() uint64 {
	if t == nil {
		return 0
	}
	return t.reads
}

// Writes returns the number of dirty-block writebacks so far.
func (t *Tracker) Writes() uint64 {
	if t == nil {
		return 0
	}
	return t.writes
}

// IOs returns reads + writes, the DAM cost measure.
func (t *Tracker) IOs() uint64 {
	if t == nil {
		return 0
	}
	return t.reads + t.writes
}

// Hits returns the number of cache hits, for diagnostics.
func (t *Tracker) Hits() uint64 {
	if t == nil {
		return 0
	}
	return t.hits
}

// Reset zeroes the counters and empties the cache.
func (t *Tracker) Reset() {
	if t == nil {
		return
	}
	t.reads, t.writes, t.hits = 0, 0, 0
	if t.frames > 0 {
		t.pos = make(map[int64]int, t.frames)
		t.list.init(t.frames)
	}
}

// Touch records an access to the element at address addr, reading the
// containing block. dirty marks the block as modified so its eventual
// eviction costs a write.
func (t *Tracker) Touch(addr int64, dirty bool) {
	if t == nil {
		return
	}
	t.access(addr/int64(t.b), dirty)
}

// Read records a read of the element at addr.
func (t *Tracker) Read(addr int64) { t.Touch(addr, false) }

// Write records a write of the element at addr.
func (t *Tracker) Write(addr int64) { t.Touch(addr, true) }

// Scan records a sequential scan of n element units starting at addr,
// reading every covered block. If dirty, the blocks are also written.
func (t *Tracker) Scan(addr int64, n int, dirty bool) {
	if t == nil || n <= 0 {
		return
	}
	first := addr / int64(t.b)
	last := (addr + int64(n) - 1) / int64(t.b)
	for blk := first; blk <= last; blk++ {
		t.access(blk, dirty)
	}
}

func (t *Tracker) access(blk int64, dirty bool) {
	if t.frames == 0 {
		// Cache-less accounting: every block touch is one read (plus a
		// write if dirty). Deterministic and conservative.
		t.reads++
		if dirty {
			t.writes++
		}
		return
	}
	if idx, ok := t.pos[blk]; ok {
		t.hits++
		t.list.moveToFront(idx)
		if dirty {
			t.list.nodes[idx].dirty = true
		}
		return
	}
	t.reads++
	idx, evicted, evictedBlk, evictedDirty := t.list.insertFront(blk, dirty)
	if evicted {
		delete(t.pos, evictedBlk)
		if evictedDirty {
			t.writes++
		}
	}
	t.pos[blk] = idx
}

// Flush writes back all dirty cached blocks, charging one write each,
// and empties the cache. Call at the end of an experiment so write
// counts are comparable across runs.
func (t *Tracker) Flush() {
	if t == nil || t.frames == 0 {
		return
	}
	for i := range t.list.nodes {
		if t.list.nodes[i].used && t.list.nodes[i].dirty {
			t.writes++
		}
	}
	t.pos = make(map[int64]int, t.frames)
	t.list.init(t.frames)
}

// lruList is an intrusive doubly-linked LRU list over a fixed node pool.
type lruList struct {
	nodes []lruNode
	head  int // most recently used; -1 when empty
	tail  int // least recently used; -1 when empty
	used  int
}

type lruNode struct {
	blk        int64
	prev, next int
	dirty      bool
	used       bool
}

func (l *lruList) init(capacity int) {
	l.nodes = make([]lruNode, capacity)
	l.head, l.tail, l.used = -1, -1, 0
}

func (l *lruList) moveToFront(i int) {
	if l.head == i {
		return
	}
	n := &l.nodes[i]
	// Unlink.
	if n.prev >= 0 {
		l.nodes[n.prev].next = n.next
	}
	if n.next >= 0 {
		l.nodes[n.next].prev = n.prev
	}
	if l.tail == i {
		l.tail = n.prev
	}
	// Relink at head.
	n.prev = -1
	n.next = l.head
	if l.head >= 0 {
		l.nodes[l.head].prev = i
	}
	l.head = i
	if l.tail < 0 {
		l.tail = i
	}
}

// insertFront inserts blk at the head, evicting the tail if full.
// It returns the node index used and eviction details.
func (l *lruList) insertFront(blk int64, dirty bool) (idx int, evicted bool, evictedBlk int64, evictedDirty bool) {
	if l.used < len(l.nodes) {
		idx = l.used
		l.used++
	} else {
		// Evict LRU tail, reuse its node.
		idx = l.tail
		n := &l.nodes[idx]
		evicted, evictedBlk, evictedDirty = true, n.blk, n.dirty
		l.tail = n.prev
		if l.tail >= 0 {
			l.nodes[l.tail].next = -1
		} else {
			l.head = -1
		}
	}
	l.nodes[idx] = lruNode{blk: blk, prev: -1, next: l.head, dirty: dirty, used: true}
	if l.head >= 0 {
		l.nodes[l.head].prev = idx
	}
	l.head = idx
	if l.tail < 0 {
		l.tail = idx
	}
	return idx, evicted, evictedBlk, evictedDirty
}

// Stats is a snapshot of a tracker's counters, convenient for printing
// experiment rows.
type Stats struct {
	B      int
	Reads  uint64
	Writes uint64
	Hits   uint64
}

// Snapshot returns the current counters.
func (t *Tracker) Snapshot() Stats {
	if t == nil {
		return Stats{B: 1}
	}
	return Stats{B: t.b, Reads: t.reads, Writes: t.writes, Hits: t.hits}
}

// Delta returns the I/Os performed since the snapshot was taken.
func (s Stats) Delta(t *Tracker) uint64 {
	return t.IOs() - (s.Reads + s.Writes)
}
