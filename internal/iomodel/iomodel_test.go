package iomodel

import (
	"testing"
	"testing/quick"
)

func TestNilTrackerIsSafe(t *testing.T) {
	var tr *Tracker
	tr.Touch(0, true)
	tr.Read(10)
	tr.Write(20)
	tr.Scan(0, 100, true)
	tr.Reset()
	tr.Flush()
	if tr.IOs() != 0 || tr.Reads() != 0 || tr.Writes() != 0 || tr.Hits() != 0 {
		t.Fatal("nil tracker reported nonzero counters")
	}
	if tr.B() != 1 {
		t.Fatalf("nil tracker B() = %d, want 1", tr.B())
	}
}

func TestNewPanicsOnBadArgs(t *testing.T) {
	for _, tc := range []struct{ b, m int }{{0, 1}, {-1, 1}, {8, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d,%d) did not panic", tc.b, tc.m)
				}
			}()
			New(tc.b, tc.m)
		}()
	}
}

func TestCachelessCounting(t *testing.T) {
	tr := New(8, 0)
	tr.Read(0)  // block 0
	tr.Read(7)  // block 0 again, but cacheless: counts again
	tr.Read(8)  // block 1
	tr.Write(9) // block 1: read+write
	if got := tr.Reads(); got != 4 {
		t.Fatalf("reads = %d, want 4", got)
	}
	if got := tr.Writes(); got != 1 {
		t.Fatalf("writes = %d, want 1", got)
	}
}

func TestScanBlockCount(t *testing.T) {
	tr := New(10, 0)
	tr.Scan(0, 100, false) // exactly 10 blocks
	if got := tr.Reads(); got != 10 {
		t.Fatalf("scan of 100 units with B=10: reads = %d, want 10", got)
	}
	tr.Reset()
	tr.Scan(5, 10, false) // crosses a block boundary: blocks 0 and 1
	if got := tr.Reads(); got != 2 {
		t.Fatalf("unaligned scan: reads = %d, want 2", got)
	}
	tr.Reset()
	tr.Scan(0, 0, true)
	tr.Scan(0, -5, true)
	if tr.IOs() != 0 {
		t.Fatal("empty scan cost I/Os")
	}
}

func TestLRUCacheHit(t *testing.T) {
	tr := New(8, 4)
	tr.Read(0)
	tr.Read(1) // same block: hit
	if tr.Reads() != 1 || tr.Hits() != 1 {
		t.Fatalf("reads=%d hits=%d, want 1,1", tr.Reads(), tr.Hits())
	}
}

func TestLRUEviction(t *testing.T) {
	tr := New(1, 2) // 2 frames, block == element
	tr.Read(0)
	tr.Read(1)
	tr.Read(2) // evicts block 0
	tr.Read(0) // miss again
	if got := tr.Reads(); got != 4 {
		t.Fatalf("reads = %d, want 4", got)
	}
	// Recency: after reading 2 then 0, block 1 is LRU.
	tr.Read(2) // hit? 2 was evicted when 0 came back in... check ordering:
	// sequence: [0][0,1][1,2][2,0] -> reading 2 evicted 1? No: after Read(2),
	// cache={1,2}; Read(0) evicts LRU=1, cache={2,0}; Read(2) is a hit.
	if got := tr.Reads(); got != 4 {
		t.Fatalf("expected Read(2) to hit, reads = %d", got)
	}
}

func TestLRURecencyOrder(t *testing.T) {
	tr := New(1, 3)
	tr.Read(0)
	tr.Read(1)
	tr.Read(2)
	tr.Read(0) // refresh 0; LRU is now 1
	tr.Read(3) // evicts 1
	tr.Read(1) // miss
	if got := tr.Reads(); got != 5 {
		t.Fatalf("reads = %d, want 5", got)
	}
	tr.Read(0) // should still be cached (refreshed then 3,1 inserted; cache={3,1,0}? order: after Read(1): evict LRU=2 -> {0,3,1})
	if got := tr.Reads(); got != 5 {
		t.Fatalf("Read(0) should hit, reads = %d", got)
	}
}

func TestDirtyEvictionCostsWrite(t *testing.T) {
	tr := New(1, 1)
	tr.Write(0) // block 0 dirty in cache
	if tr.Writes() != 0 {
		t.Fatal("write counted before eviction")
	}
	tr.Read(1) // evicts dirty block 0
	if tr.Writes() != 1 {
		t.Fatalf("writes = %d, want 1 after dirty eviction", tr.Writes())
	}
	tr.Read(2) // evicts clean block 1
	if tr.Writes() != 1 {
		t.Fatalf("clean eviction should not cost a write, writes = %d", tr.Writes())
	}
}

func TestFlush(t *testing.T) {
	tr := New(1, 4)
	tr.Write(0)
	tr.Write(1)
	tr.Read(2)
	tr.Flush()
	if tr.Writes() != 2 {
		t.Fatalf("flush wrote %d blocks, want 2", tr.Writes())
	}
	// Cache must be empty after flush.
	r := tr.Reads()
	tr.Read(0)
	if tr.Reads() != r+1 {
		t.Fatal("cache not emptied by Flush")
	}
}

func TestResetClearsEverything(t *testing.T) {
	tr := New(4, 2)
	tr.Write(0)
	tr.Read(100)
	tr.Reset()
	if tr.IOs() != 0 || tr.Hits() != 0 {
		t.Fatal("Reset left counters nonzero")
	}
	tr.Read(0)
	if tr.Reads() != 1 {
		t.Fatal("Reset left cache populated")
	}
}

func TestSnapshotDelta(t *testing.T) {
	tr := New(8, 0)
	tr.Read(0)
	s := tr.Snapshot()
	tr.Read(64)
	tr.Read(128)
	if d := s.Delta(tr); d != 2 {
		t.Fatalf("delta = %d, want 2", d)
	}
}

// Property: with an n-frame cache, a working set of <= n blocks touched
// repeatedly costs exactly one read per distinct block.
func TestPropertyWorkingSetFits(t *testing.T) {
	f := func(nBlocks uint8, rounds uint8) bool {
		n := int(nBlocks%16) + 1
		tr := New(1, n)
		for r := 0; r < int(rounds%8)+2; r++ {
			for b := 0; b < n; b++ {
				tr.Read(int64(b))
			}
		}
		return tr.Reads() == uint64(n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: scanning n elements costs between floor(n/B) and
// ceil(n/B) + 1 block reads (cacheless; the +1 covers unaligned starts),
// matching the Theta(1 + n/B) scan bound the paper uses.
func TestPropertyScanCost(t *testing.T) {
	f := func(addr uint16, n uint16, bRaw uint8) bool {
		b := int(bRaw%64) + 1
		length := int(n%4096) + 1
		tr := New(b, 0)
		tr.Scan(int64(addr), length, false)
		lo := uint64(length / b)
		hi := uint64((length+b-1)/b) + 1
		got := tr.Reads()
		return got >= lo && got <= hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkTouchCacheless(b *testing.B) {
	tr := New(64, 0)
	for i := 0; i < b.N; i++ {
		tr.Touch(int64(i), false)
	}
}

func BenchmarkTouchLRU(b *testing.B) {
	tr := New(64, 1024)
	for i := 0; i < b.N; i++ {
		tr.Touch(int64(i%100000), false)
	}
}
