package cobt

import (
	"bytes"
	"math"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/hipma"
	"repro/internal/iomodel"
	"repro/internal/xrand"
)

func TestPutGetDelete(t *testing.T) {
	d := New(1, nil)
	if _, ok := d.Get(5); ok {
		t.Fatal("empty dictionary returned a value")
	}
	if !d.Put(5, 50) {
		t.Fatal("first Put not reported as insert")
	}
	if d.Put(5, 55) {
		t.Fatal("second Put reported as insert")
	}
	v, ok := d.Get(5)
	if !ok || v != 55 {
		t.Fatalf("Get(5) = (%d, %v)", v, ok)
	}
	if !d.Delete(5) || d.Delete(5) {
		t.Fatal("Delete semantics wrong")
	}
	if d.Len() != 0 {
		t.Fatalf("len = %d", d.Len())
	}
}

func TestMapOracle(t *testing.T) {
	d := New(7, nil)
	oracle := make(map[int64]int64)
	rng := xrand.New(3)
	for op := 0; op < 30000; op++ {
		k := int64(rng.Intn(2000))
		switch rng.Intn(3) {
		case 0, 1:
			v := int64(rng.Intn(1 << 30))
			wantIns := oracle[k] == 0 && !hasKey(oracle, k)
			gotIns := d.Put(k, v)
			if gotIns != wantIns {
				t.Fatalf("op %d: Put(%d) inserted=%v, want %v", op, k, gotIns, wantIns)
			}
			oracle[k] = v
		case 2:
			want := hasKey(oracle, k)
			if got := d.Delete(k); got != want {
				t.Fatalf("op %d: Delete(%d) = %v, want %v", op, k, got, want)
			}
			delete(oracle, k)
		}
		if op%6000 == 0 {
			if err := d.CheckInvariants(); err != nil {
				t.Fatalf("op %d: %v", op, err)
			}
		}
	}
	if d.Len() != len(oracle) {
		t.Fatalf("len %d vs oracle %d", d.Len(), len(oracle))
	}
	for k, v := range oracle {
		got, ok := d.Get(k)
		if !ok || got != v {
			t.Fatalf("Get(%d) = (%d, %v), want %d", k, got, ok, v)
		}
	}
}

func hasKey(m map[int64]int64, k int64) bool {
	_, ok := m[k]
	return ok
}

func TestRange(t *testing.T) {
	d := New(11, nil)
	for i := int64(0); i < 1000; i++ {
		d.Put(i*10, i)
	}
	got := d.Range(95, 205, nil)
	// Keys 100, 110, ..., 200.
	if len(got) != 11 {
		t.Fatalf("Range(95,205) returned %d items", len(got))
	}
	for i, it := range got {
		if it.Key != int64(100+10*i) || it.Val != int64(10+i) {
			t.Fatalf("item %d = %+v", i, it)
		}
	}
	// Empty and degenerate ranges.
	if got := d.Range(5, 4, nil); len(got) != 0 {
		t.Fatal("inverted range returned items")
	}
	if got := d.Range(10001, 20000, nil); len(got) != 0 {
		t.Fatal("out-of-domain range returned items")
	}
	if got := d.Range(0, math.MaxInt64, nil); len(got) != 1000 {
		t.Fatalf("full range returned %d", len(got))
	}
}

func TestAscendEarlyStop(t *testing.T) {
	d := New(13, nil)
	for i := int64(0); i < 5000; i++ {
		d.Put(i, i*2)
	}
	count := 0
	var prev int64 = -1
	d.Ascend(func(it Item) bool {
		if it.Key <= prev {
			t.Fatalf("Ascend out of order: %d after %d", it.Key, prev)
		}
		prev = it.Key
		count++
		return count < 3000
	})
	if count != 3000 {
		t.Fatalf("visited %d items", count)
	}
}

func TestMinMaxSelectRank(t *testing.T) {
	d := New(17, nil)
	if _, ok := d.Min(); ok {
		t.Fatal("Min on empty")
	}
	if _, ok := d.Max(); ok {
		t.Fatal("Max on empty")
	}
	keys := []int64{42, -7, 99, 13}
	for _, k := range keys {
		d.Put(k, k*100)
	}
	sorted := append([]int64(nil), keys...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	mn, _ := d.Min()
	mx, _ := d.Max()
	if mn.Key != -7 || mx.Key != 99 {
		t.Fatalf("min %d max %d", mn.Key, mx.Key)
	}
	for i, k := range sorted {
		if got := d.Select(i); got.Key != k {
			t.Fatalf("Select(%d) = %d, want %d", i, got.Key, k)
		}
	}
	if d.RankOf(14) != 3 { // -7, 13, 42 -> keys < 14 are -7, 13
		// RankOf counts keys strictly smaller; -7 and 13 -> 2.
	}
	if got := d.RankOf(14); got != 2 {
		t.Fatalf("RankOf(14) = %d", got)
	}
	if got := d.RankOf(-100); got != 0 {
		t.Fatalf("RankOf(-100) = %d", got)
	}
	if got := d.RankOf(1000); got != 4 {
		t.Fatalf("RankOf(1000) = %d", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Select out of range did not panic")
		}
	}()
	d.Select(4)
}

// TestSearchIOBound verifies the Theorem 2 shape: searches cost
// O(log_B N) I/Os. With the vEB-layout key tree, a search should touch
// no more than ~4·log N/log B + c blocks.
func TestSearchIOBound(t *testing.T) {
	// A small LRU cache (64 frames << data size) de-duplicates repeated
	// touches within one block, which is what "an I/O" means in the DAM.
	const n = 1 << 16
	for _, B := range []int{16, 64, 256} {
		tr := iomodel.New(B, 64)
		d := New(23, tr)
		for i := int64(0); i < n; i++ {
			d.Put(i, i)
		}
		rng := xrand.New(9)
		tr.Reset()
		const queries = 500
		for q := 0; q < queries; q++ {
			d.Get(int64(rng.Intn(n)))
		}
		perQuery := float64(tr.IOs()) / queries
		logB := math.Log2(float64(B))
		bound := 6*math.Log2(n)/logB + 8
		if perQuery > bound {
			t.Errorf("B=%d: %.1f I/Os per search, bound %.1f", B, perQuery, bound)
		}
	}
}

// TestRangeIOBound verifies the scan part: a range of k elements costs
// O(log_B N + k/B) I/Os. The constant absorbs the PMA's space overhead
// (up to ~10 slots per element, §4.3) — each element occupies ~S/count
// slots, so the scan touches at most ~10·k/B + O(leaves) blocks. A small
// LRU cache (a few frames, well under the data size) de-duplicates
// repeated touches of the same block at leaf boundaries and rank-tree
// path prefixes, as any DAM machine with M > a few blocks would.
func TestRangeIOBound(t *testing.T) {
	const n = 1 << 16
	const B = 64
	tr := iomodel.New(B, 64)
	d := New(29, tr)
	for i := int64(0); i < n; i++ {
		d.Put(i, i)
	}
	for _, k := range []int{100, 1000, 10000} {
		tr.Reset()
		got := d.Range(1000, int64(1000+k-1), nil)
		if len(got) != k {
			t.Fatalf("k=%d: returned %d", k, len(got))
		}
		ios := float64(tr.IOs())
		bound := 6*math.Log2(n)/math.Log2(B) + 12*float64(k)/B + 16
		if ios > bound {
			t.Errorf("k=%d: %v I/Os, bound %.1f", k, ios, bound)
		}
	}
}

func TestPropertyDictionaryOracle(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		d := New(seed+31, nil)
		oracle := make(map[int64]int64)
		for op := 0; op < 500; op++ {
			k := int64(rng.Intn(200))
			if rng.Intn(2) == 0 {
				v := int64(op)
				d.Put(k, v)
				oracle[k] = v
			} else {
				d.Delete(k)
				delete(oracle, k)
			}
		}
		if d.Len() != len(oracle) {
			return false
		}
		for k, v := range oracle {
			got, ok := d.Get(k)
			if !ok || got != v {
				return false
			}
		}
		return d.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPut(b *testing.B) {
	d := New(1, nil)
	rng := xrand.New(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Put(int64(rng.Uint64n(1<<40)), int64(i))
	}
}

func BenchmarkGet(b *testing.B) {
	d := New(1, nil)
	for i := int64(0); i < 100000; i++ {
		d.Put(i, i)
	}
	rng := xrand.New(3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Get(int64(rng.Intn(100000)))
	}
}

func TestImageRoundTripDictionary(t *testing.T) {
	d := New(41, nil)
	for i := int64(0); i < 3000; i++ {
		d.Put(i*3, i)
	}
	var img bytes.Buffer
	if _, err := d.WriteTo(&img); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadDictionary(bytes.NewReader(img.Bytes()), 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != d.Len() {
		t.Fatalf("len %d vs %d", loaded.Len(), d.Len())
	}
	for i := int64(0); i < 3000; i += 97 {
		v, ok := loaded.Get(i * 3)
		if !ok || v != i {
			t.Fatalf("Get(%d) = (%d, %v)", i*3, v, ok)
		}
	}
}

// TestReadDictionaryRejectsUnsortedImage: a PMA image with duplicate or
// out-of-order keys is a valid PMA but not a valid dictionary; the
// loader must reject it.
func TestReadDictionaryRejectsUnsortedImage(t *testing.T) {
	p := hipma.New(43, nil)
	// Rank-based inserts producing duplicate keys.
	for i := 0; i < 500; i++ {
		p.InsertAt(p.Len(), Item{Key: 7})
	}
	var img bytes.Buffer
	if _, err := p.WriteTo(&img); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadDictionary(bytes.NewReader(img.Bytes()), 1, nil); err == nil {
		t.Fatal("unsorted image accepted as dictionary")
	}
}
