// Package cobt implements the history-independent cache-oblivious B-tree
// of §5 (Theorem 2): a key-value dictionary built on the augmented HI
// packed-memory array. The augmentation — a static-topology tree of
// balance-element keys in van Emde Boas layout, identical in shape and
// maintenance to the rank tree — lives inside package hipma; this
// package supplies the dictionary API a database index needs:
//
//	Put, Get, Delete, Has      — point operations, O(log_B N) I/O searches
//	Range, Ascend              — range queries, O(log_B N + k/B) I/Os
//	Min, Max, Select, RankOf   — order statistics
//
// Inserts and deletes cost O(log²N/B + log_B N) amortized I/Os with high
// probability; when B = Ω(log N · log log N) — reasonable on today's
// systems, as the paper notes — that is O(log_B N), matching a classic
// B-tree while leaking nothing about the operation history.
package cobt

import (
	"fmt"
	"io"

	"repro/internal/hipma"
	"repro/internal/iomodel"
)

// Item re-exports the PMA element type: a key with an opaque payload.
type Item = hipma.Item

// Dictionary is a history-independent, cache-oblivious B-tree mapping
// int64 keys to int64 values. Keys are unique (Put is an upsert); use
// the underlying PMA directly if duplicate keys are needed.
type Dictionary struct {
	pma *hipma.PMA
}

// New returns an empty dictionary seeded with the given randomness.
// io may be nil to disable DAM-model accounting.
func New(seed uint64, io *iomodel.Tracker) *Dictionary {
	return &Dictionary{pma: hipma.New(seed, io)}
}

// NewWithConfig returns an empty dictionary with custom PMA constants.
func NewWithConfig(cfg hipma.Config, seed uint64, io *iomodel.Tracker) (*Dictionary, error) {
	p, err := hipma.NewWithConfig(cfg, seed, io)
	if err != nil {
		return nil, err
	}
	return &Dictionary{pma: p}, nil
}

// Len returns the number of keys stored.
func (d *Dictionary) Len() int { return d.pma.Len() }

// PMA exposes the underlying packed-memory array for instrumentation
// (move counts, occupancy, invariant checks).
func (d *Dictionary) PMA() *hipma.PMA { return d.pma }

// Put inserts or updates the value for key and reports whether the key
// was newly inserted.
func (d *Dictionary) Put(key, val int64) (inserted bool) {
	rank, found := d.pma.SearchKey(key)
	if found {
		d.pma.UpdateAt(rank, val)
		return false
	}
	d.pma.InsertAt(rank, Item{Key: key, Val: val})
	return true
}

// Get returns the value stored for key and whether it exists.
func (d *Dictionary) Get(key int64) (val int64, ok bool) {
	rank, found := d.pma.SearchKey(key)
	if !found {
		return 0, false
	}
	return d.pma.Get(rank).Val, true
}

// Has reports whether key is present.
func (d *Dictionary) Has(key int64) bool {
	_, found := d.pma.SearchKey(key)
	return found
}

// Delete removes key and reports whether it was present.
func (d *Dictionary) Delete(key int64) bool {
	return d.pma.DeleteKey(key)
}

// Range appends all items with lo <= key <= hi to out, in key order:
// one search plus a scan, O(log_B N + k/B) I/Os (Theorem 2).
func (d *Dictionary) Range(lo, hi int64, out []Item) []Item {
	return d.RangeN(lo, hi, d.pma.Len(), out)
}

// RangeN is Range bounded to at most max items: the scan stops after
// max elements instead of materializing the whole [lo, hi] window, so
// the cost is O(log_B N + max/B) I/Os regardless of how many keys the
// window holds. max <= 0 returns out unchanged.
func (d *Dictionary) RangeN(lo, hi int64, max int, out []Item) []Item {
	if lo > hi || max <= 0 || d.pma.Len() == 0 {
		return out
	}
	start, _ := d.pma.SearchKey(lo)
	if start >= d.pma.Len() {
		return out
	}
	// Find the last rank with key <= hi: the rank of the first element
	// > hi, minus one. SearchKey(hi+1) gives that boundary (careful with
	// int64 overflow at the maximum key).
	var end int
	if hi == int64(^uint64(0)>>1) {
		end = d.pma.Len() - 1
	} else {
		end, _ = d.pma.SearchKey(hi + 1)
		end--
	}
	if end-start+1 > max {
		end = start + max - 1
	}
	if end < start {
		return out
	}
	return d.pma.Query(start, end, out)
}

// Ascend calls fn on every item in key order, stopping early if fn
// returns false.
func (d *Dictionary) Ascend(fn func(Item) bool) {
	n := d.pma.Len()
	const chunk = 1024
	buf := make([]Item, 0, chunk)
	for i := 0; i < n; i += chunk {
		j := i + chunk - 1
		if j >= n {
			j = n - 1
		}
		buf = d.pma.Query(i, j, buf[:0])
		for _, it := range buf {
			if !fn(it) {
				return
			}
		}
	}
}

// Min returns the smallest item. ok is false when empty.
func (d *Dictionary) Min() (it Item, ok bool) {
	if d.pma.Len() == 0 {
		return Item{}, false
	}
	return d.pma.Get(0), true
}

// Max returns the largest item. ok is false when empty.
func (d *Dictionary) Max() (it Item, ok bool) {
	n := d.pma.Len()
	if n == 0 {
		return Item{}, false
	}
	return d.pma.Get(n - 1), true
}

// Select returns the item with the given rank (0-based, in key order).
// It panics if rank is out of range.
func (d *Dictionary) Select(rank int) Item {
	if rank < 0 || rank >= d.pma.Len() {
		panic(fmt.Sprintf("cobt: Select(%d) out of range, n=%d", rank, d.pma.Len()))
	}
	return d.pma.Get(rank)
}

// RankOf returns the number of keys strictly smaller than key.
func (d *Dictionary) RankOf(key int64) int {
	rank, _ := d.pma.SearchKey(key)
	return rank
}

// WriteTo serializes the dictionary's exact memory representation (the
// underlying PMA image); see hipma.WriteTo. It implements io.WriterTo.
func (d *Dictionary) WriteTo(w io.Writer) (int64, error) {
	return d.pma.WriteTo(w)
}

// ReadDictionary deserializes a dictionary image produced by WriteTo.
// The seed supplies fresh randomness for future operations; io may be
// nil. Dictionary-level invariants (unique sorted keys) are verified.
func ReadDictionary(r io.Reader, seed uint64, io2 *iomodel.Tracker) (*Dictionary, error) {
	p, err := hipma.ReadImage(r, seed, io2)
	if err != nil {
		return nil, err
	}
	d := &Dictionary{pma: p}
	if err := d.CheckInvariants(); err != nil {
		return nil, fmt.Errorf("cobt: corrupt image: %w", err)
	}
	return d, nil
}

// CheckInvariants verifies the underlying PMA plus the dictionary-level
// invariant that keys are unique and sorted.
func (d *Dictionary) CheckInvariants() error {
	if err := d.pma.CheckInvariants(); err != nil {
		return err
	}
	n := d.pma.Len()
	if n == 0 {
		return nil
	}
	items := d.pma.Query(0, n-1, nil)
	for i := 1; i < len(items); i++ {
		if items[i].Key <= items[i-1].Key {
			return fmt.Errorf("cobt: keys not strictly increasing at rank %d: %d <= %d",
				i, items[i].Key, items[i-1].Key)
		}
	}
	return nil
}
