// Package pma implements a classic, NON-history-independent
// packed-memory array (sparse table) in the style of Itai, Konheim and
// Rodeh [38] and Bender, Demaine and Farach-Colton [14, 18]: a Θ(N)-slot
// array maintaining N elements in order, with aligned-window density
// thresholds that interpolate between permissive leaf bounds and tight
// root bounds. Updates cost O(log² N) amortized element moves; a range
// query returning k elements scans O(1 + k/B) blocks.
//
// This is the baseline the paper measures its history-independent PMA
// against in §4.3 (Figure 2, the ×7 runtime overhead, and the space
// overhead): range densities here depend strongly on the operation
// history, which is exactly the leak the HI PMA removes.
//
// Layout: the array is divided into segments of Θ(log N) slots; each
// segment keeps its elements left-packed, so the structure is fully
// described by the per-segment counts. Rank navigation uses a Fenwick
// tree over the counts (the "separate indexing structure" of §1.2).
package pma

import (
	"fmt"
	"math"

	"repro/internal/iomodel"
)

// Config controls the density thresholds. The defaults follow the usual
// PMA settings: leaves may swing between 8% and 92% full, while the root
// window is kept between 25% and 70% so that a resize lands comfortably
// inside all thresholds.
type Config struct {
	TauLeaf float64 // max leaf density (0 < RhoLeaf < TauLeaf <= 1)
	TauRoot float64 // max root density
	RhoLeaf float64 // min leaf density
	RhoRoot float64 // min root density
	MinSeg  int     // minimum segment size (power of two)
}

// DefaultConfig returns the standard thresholds.
func DefaultConfig() Config {
	return Config{TauLeaf: 0.92, TauRoot: 0.7, RhoLeaf: 0.08, RhoRoot: 0.25, MinSeg: 8}
}

func (c Config) validate() error {
	if !(0 < c.RhoLeaf && c.RhoLeaf < c.RhoRoot && c.RhoRoot < c.TauRoot && c.TauRoot < c.TauLeaf && c.TauLeaf <= 1) {
		return fmt.Errorf("pma: thresholds must satisfy 0 < RhoLeaf < RhoRoot < TauRoot < TauLeaf <= 1, got %+v", c)
	}
	if c.MinSeg < 4 || c.MinSeg&(c.MinSeg-1) != 0 {
		return fmt.Errorf("pma: MinSeg %d must be a power of two >= 4", c.MinSeg)
	}
	return nil
}

// PMA is a classic packed-memory array of int64 keys in sorted order.
// It is driven by rank (InsertAt/DeleteAt), like the paper's PMA API
// (§3), with key-based convenience wrappers on top.
type PMA struct {
	cfg     Config
	slots   []int64
	segSize int
	numSeg  int // power of two
	counts  []int
	fen     *fenwick
	n       int

	moves      uint64 // element slot-writes (the paper's cost measure)
	rebalances uint64
	resizes    uint64

	io *iomodel.Tracker
}

// New returns an empty PMA with default thresholds. io may be nil.
func New(io *iomodel.Tracker) *PMA {
	p, err := NewWithConfig(DefaultConfig(), io)
	if err != nil {
		panic(err) // defaults are always valid
	}
	return p
}

// NewWithConfig returns an empty PMA with the given thresholds.
func NewWithConfig(cfg Config, io *iomodel.Tracker) (*PMA, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	p := &PMA{cfg: cfg, io: io}
	p.rebuild(nil, 2*cfg.MinSeg)
	return p, nil
}

// Len returns the number of elements stored.
func (p *PMA) Len() int { return p.n }

// Capacity returns the number of physical slots.
func (p *PMA) Capacity() int { return len(p.slots) }

// Moves returns the cumulative number of element slot-writes, the cost
// measure plotted in Figure 2.
func (p *PMA) Moves() uint64 { return p.moves }

// Rebalances returns the number of window redistributions performed.
func (p *PMA) Rebalances() uint64 { return p.rebalances }

// Resizes returns the number of whole-array resizes performed.
func (p *PMA) Resizes() uint64 { return p.resizes }

// segTotalSlots returns the slot count of a window of 2^level segments.
func (p *PMA) windowSlots(level int) int { return p.segSize << uint(level) }

// height returns log2(numSeg), the top window level.
func (p *PMA) height() int {
	h := 0
	for 1<<uint(h) < p.numSeg {
		h++
	}
	return h
}

// tau returns the max density threshold at the given window level.
func (p *PMA) tau(level, h int) float64 {
	if h == 0 {
		return p.cfg.TauRoot
	}
	f := float64(level) / float64(h)
	return p.cfg.TauLeaf - (p.cfg.TauLeaf-p.cfg.TauRoot)*f
}

// rho returns the min density threshold at the given window level.
func (p *PMA) rho(level, h int) float64 {
	if h == 0 {
		return p.cfg.RhoRoot
	}
	f := float64(level) / float64(h)
	return p.cfg.RhoLeaf + (p.cfg.RhoRoot-p.cfg.RhoLeaf)*f
}

// segmentForRank returns the segment containing the 0-based rank and the
// number of elements stored before that segment. rank must be < n.
func (p *PMA) segmentForRank(rank int) (seg, before int) {
	return p.fen.findRank(rank)
}

// Get returns the element of the given rank (0-based). It panics if the
// rank is out of range.
func (p *PMA) Get(rank int) int64 {
	if rank < 0 || rank >= p.n {
		panic(fmt.Sprintf("pma: rank %d out of range [0, %d)", rank, p.n))
	}
	seg, before := p.segmentForRank(rank)
	idx := seg*p.segSize + (rank - before)
	p.io.Read(int64(idx))
	return p.slots[idx]
}

// Query appends the elements with ranks i through j inclusive to out and
// returns it. It panics unless 0 <= i <= j < Len().
func (p *PMA) Query(i, j int, out []int64) []int64 {
	if i < 0 || j < i || j >= p.n {
		panic(fmt.Sprintf("pma: Query(%d, %d) out of range, n=%d", i, j, p.n))
	}
	seg, before := p.segmentForRank(i)
	off := i - before
	rank := i
	for rank <= j {
		take := p.counts[seg] - off
		if take > j-rank+1 {
			take = j - rank + 1
		}
		base := seg*p.segSize + off
		p.io.Scan(int64(base), take, false)
		out = append(out, p.slots[base:base+take]...)
		rank += take
		seg++
		off = 0
	}
	return out
}

// InsertAt inserts key as the element of rank `rank`, shifting later
// elements up by one. It panics unless 0 <= rank <= Len().
func (p *PMA) InsertAt(rank int, key int64) {
	if rank < 0 || rank > p.n {
		panic(fmt.Sprintf("pma: InsertAt(%d) out of range, n=%d", rank, p.n))
	}
	seg, off := p.insertionPoint(rank)
	if p.counts[seg] == p.segSize {
		// Segment physically full: rebalance first, then re-locate.
		p.rebalanceUp(seg)
		seg, off = p.insertionPoint(rank)
	}
	// Shift the left-packed tail right by one.
	base := seg * p.segSize
	cnt := p.counts[seg]
	copy(p.slots[base+off+1:base+cnt+1], p.slots[base+off:base+cnt])
	p.slots[base+off] = key
	p.moves += uint64(cnt - off + 1)
	p.io.Scan(int64(base+off), cnt-off+1, true)
	p.counts[seg]++
	p.fen.add(seg, 1)
	p.n++
	if float64(p.counts[seg]) > p.cfg.TauLeaf*float64(p.segSize) {
		p.rebalanceUp(seg)
	}
}

// insertionPoint maps an insertion rank to (segment, offset-in-segment).
func (p *PMA) insertionPoint(rank int) (seg, off int) {
	if p.n == 0 {
		return 0, 0
	}
	if rank == p.n {
		seg, before := p.segmentForRank(p.n - 1)
		return seg, p.n - 1 - before + 1
	}
	seg, before := p.segmentForRank(rank)
	return seg, rank - before
}

// DeleteAt removes the element of the given rank. It panics if the rank
// is out of range.
func (p *PMA) DeleteAt(rank int) {
	if rank < 0 || rank >= p.n {
		panic(fmt.Sprintf("pma: DeleteAt(%d) out of range, n=%d", rank, p.n))
	}
	seg, before := p.segmentForRank(rank)
	off := rank - before
	base := seg * p.segSize
	cnt := p.counts[seg]
	copy(p.slots[base+off:base+cnt-1], p.slots[base+off+1:base+cnt])
	p.moves += uint64(cnt - off - 1)
	p.io.Scan(int64(base+off), cnt-off, true)
	p.counts[seg]--
	p.fen.add(seg, -1)
	p.n--
	if float64(p.counts[seg]) < p.cfg.RhoLeaf*float64(p.segSize) {
		p.rebalanceDown(seg)
	}
}

// rebalanceUp handles an over-full leaf: find the smallest aligned
// window whose density is within its max threshold and redistribute it;
// if even the root violates, grow the array.
func (p *PMA) rebalanceUp(seg int) {
	h := p.height()
	for level := 1; level <= h; level++ {
		lo := (seg >> uint(level)) << uint(level)
		hi := lo + 1<<uint(level) // exclusive, in segments
		cnt := p.fen.prefix(hi) - p.fen.prefix(lo)
		if float64(cnt) <= p.tau(level, h)*float64(p.windowSlots(level)) {
			p.redistribute(lo, hi)
			return
		}
	}
	p.resize(2 * len(p.slots))
}

// rebalanceDown handles an under-full leaf symmetrically; if even the
// root is under its min threshold, shrink the array.
func (p *PMA) rebalanceDown(seg int) {
	h := p.height()
	for level := 1; level <= h; level++ {
		lo := (seg >> uint(level)) << uint(level)
		hi := lo + 1<<uint(level)
		cnt := p.fen.prefix(hi) - p.fen.prefix(lo)
		if float64(cnt) >= p.rho(level, h)*float64(p.windowSlots(level)) {
			p.redistribute(lo, hi)
			return
		}
	}
	if len(p.slots) > 2*p.cfg.MinSeg {
		p.resize(len(p.slots) / 2)
	}
}

// redistribute re-packs the elements of segments [lo, hi) evenly.
func (p *PMA) redistribute(lo, hi int) {
	p.rebalances++
	var buf []int64
	for s := lo; s < hi; s++ {
		base := s * p.segSize
		buf = append(buf, p.slots[base:base+p.counts[s]]...)
	}
	p.io.Scan(int64(lo*p.segSize), (hi-lo)*p.segSize, true)
	k := hi - lo
	q, r := len(buf)/k, len(buf)%k
	idx := 0
	for s := lo; s < hi; s++ {
		take := q
		if s-lo < r {
			take++
		}
		base := s * p.segSize
		copy(p.slots[base:base+take], buf[idx:idx+take])
		idx += take
		p.fen.add(s, take-p.counts[s])
		p.counts[s] = take
	}
	p.moves += uint64(len(buf))
}

// resize rebuilds the structure with the given capacity.
func (p *PMA) resize(newCap int) {
	p.resizes++
	var buf []int64
	for s := 0; s < p.numSeg; s++ {
		base := s * p.segSize
		buf = append(buf, p.slots[base:base+p.counts[s]]...)
	}
	p.io.Scan(0, len(p.slots), false)
	p.rebuild(buf, newCap)
	p.moves += uint64(len(buf))
	p.io.Scan(0, len(p.slots), true)
}

// rebuild lays out the elements evenly in a fresh array of capacity cap
// (rounded up to a power-of-two number of segments).
func (p *PMA) rebuild(elems []int64, capacity int) {
	segSize := p.cfg.MinSeg
	// Segment size Theta(log capacity), as a power of two.
	target := int(math.Log2(float64(capacity))) + 1
	for segSize < target {
		segSize *= 2
	}
	numSeg := 1
	for numSeg*segSize < capacity || numSeg*segSize < 2*len(elems) {
		numSeg *= 2
	}
	p.segSize = segSize
	p.numSeg = numSeg
	p.slots = make([]int64, numSeg*segSize)
	p.counts = make([]int, numSeg)
	p.fen = newFenwick(numSeg)
	p.n = len(elems)
	if p.n == 0 {
		return
	}
	q, r := p.n/numSeg, p.n%numSeg
	idx := 0
	for s := 0; s < numSeg; s++ {
		take := q
		if s < r {
			take++
		}
		base := s * p.segSize
		copy(p.slots[base:base+take], elems[idx:idx+take])
		idx += take
		p.counts[s] = take
		p.fen.add(s, take)
	}
}

// Find returns the rank of the first element >= key, in [0, Len()],
// using binary search over ranks.
func (p *PMA) Find(key int64) int {
	lo, hi := 0, p.n
	for lo < hi {
		mid := (lo + hi) / 2
		if p.Get(mid) < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// InsertKey inserts key in sorted position (duplicates allowed).
func (p *PMA) InsertKey(key int64) {
	p.InsertAt(p.Find(key), key)
}

// DeleteKey removes one occurrence of key and reports whether it was
// present.
func (p *PMA) DeleteKey(key int64) bool {
	r := p.Find(key)
	if r >= p.n || p.Get(r) != key {
		return false
	}
	p.DeleteAt(r)
	return true
}

// CheckInvariants verifies internal consistency (counts and Fenwick
// agreement); tests call it after randomized workloads. It does NOT
// require sorted contents — the rank-based API maintains an arbitrary
// user-specified order, as in the paper's sequential-file-maintenance
// setting; use CheckSorted when the key-based API is in play.
func (p *PMA) CheckInvariants() error {
	total := 0
	for s := 0; s < p.numSeg; s++ {
		c := p.counts[s]
		if c < 0 || c > p.segSize {
			return fmt.Errorf("pma: segment %d count %d out of [0,%d]", s, c, p.segSize)
		}
		total += c
		if got := p.fen.prefix(s+1) - p.fen.prefix(s); got != c {
			return fmt.Errorf("pma: fenwick disagrees at segment %d: %d vs %d", s, got, c)
		}
	}
	if total != p.n {
		return fmt.Errorf("pma: counts sum to %d, n = %d", total, p.n)
	}
	return nil
}

// CheckSorted verifies CheckInvariants plus non-decreasing key order,
// the precondition of Find/InsertKey/DeleteKey.
func (p *PMA) CheckSorted() error {
	if err := p.CheckInvariants(); err != nil {
		return err
	}
	var prev int64
	first := true
	for s := 0; s < p.numSeg; s++ {
		base := s * p.segSize
		for i := 0; i < p.counts[s]; i++ {
			v := p.slots[base+i]
			if !first && v < prev {
				return fmt.Errorf("pma: order violated at segment %d slot %d: %d < %d", s, i, v, prev)
			}
			prev, first = v, false
		}
	}
	return nil
}
