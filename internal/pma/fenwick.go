package pma

// fenwick is a binary indexed tree over per-segment element counts. It
// is the "separate indexing structure" the paper alludes to for locating
// ranks: prefix sums and rank search in O(log n) RAM operations. It
// lives in RAM, so it is not charged against the DAM I/O budget (the
// paper's PMA I/O bounds cover only the element shifts).
type fenwick struct {
	tree []int // 1-based
}

func newFenwick(n int) *fenwick {
	return &fenwick{tree: make([]int, n+1)}
}

// add adds delta to position i (0-based).
func (f *fenwick) add(i, delta int) {
	for i++; i < len(f.tree); i += i & (-i) {
		f.tree[i] += delta
	}
}

// prefix returns the sum of positions [0, i) (0-based, exclusive).
func (f *fenwick) prefix(i int) int {
	s := 0
	for ; i > 0; i -= i & (-i) {
		s += f.tree[i]
	}
	return s
}

// total returns the sum over all positions.
func (f *fenwick) total() int {
	return f.prefix(len(f.tree) - 1)
}

// findRank returns the smallest position p such that prefix(p+1) > rank,
// i.e. the segment containing the element of the given 0-based rank, and
// the number of elements before segment p. rank must be < total().
func (f *fenwick) findRank(rank int) (p, before int) {
	pos := 0
	rem := rank
	// Highest power of two <= len(tree)-1.
	mask := 1
	for mask*2 < len(f.tree) {
		mask *= 2
	}
	for ; mask > 0; mask /= 2 {
		next := pos + mask
		if next < len(f.tree) && f.tree[next] <= rem {
			pos = next
			rem -= f.tree[next]
		}
	}
	return pos, rank - rem
}
