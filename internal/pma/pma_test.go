package pma

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/iomodel"
	"repro/internal/xrand"
)

func TestFenwick(t *testing.T) {
	f := newFenwick(8)
	vals := []int{3, 0, 5, 2, 0, 0, 7, 1}
	for i, v := range vals {
		f.add(i, v)
	}
	want := 0
	for i := 0; i <= 8; i++ {
		if got := f.prefix(i); got != want {
			t.Fatalf("prefix(%d) = %d, want %d", i, got, want)
		}
		if i < 8 {
			want += vals[i]
		}
	}
	if f.total() != 18 {
		t.Fatalf("total = %d", f.total())
	}
	// findRank over the multiset.
	expect := []struct{ rank, seg, before int }{
		{0, 0, 0}, {2, 0, 0}, {3, 2, 3}, {7, 2, 3}, {8, 3, 8}, {9, 3, 8},
		{10, 6, 10}, {16, 6, 10}, {17, 7, 17},
	}
	for _, e := range expect {
		seg, before := f.findRank(e.rank)
		if seg != e.seg || before != e.before {
			t.Errorf("findRank(%d) = (%d, %d), want (%d, %d)",
				e.rank, seg, before, e.seg, e.before)
		}
	}
}

func TestFenwickAfterUpdates(t *testing.T) {
	f := newFenwick(16)
	for i := 0; i < 16; i++ {
		f.add(i, i)
	}
	f.add(5, -5)
	f.add(0, 10)
	if f.prefix(6) != 10+1+2+3+4 {
		t.Fatalf("prefix(6) = %d", f.prefix(6))
	}
}

func TestInsertSequential(t *testing.T) {
	p := New(nil)
	const n = 5000
	for i := 0; i < n; i++ {
		p.InsertAt(i, int64(i))
	}
	if p.Len() != n {
		t.Fatalf("len = %d", p.Len())
	}
	for i := 0; i < n; i += 97 {
		if got := p.Get(i); got != int64(i) {
			t.Fatalf("Get(%d) = %d", i, got)
		}
	}
	if err := p.CheckSorted(); err != nil {
		t.Fatal(err)
	}
}

func TestInsertFront(t *testing.T) {
	// Repeatedly inserting at the front is the adversarial pattern the
	// paper calls out (§1.2); densities must still be maintained.
	p := New(nil)
	const n = 3000
	for i := 0; i < n; i++ {
		p.InsertAt(0, int64(n-i))
	}
	for i := 0; i < n; i += 53 {
		if got := p.Get(i); got != int64(i+1) {
			t.Fatalf("Get(%d) = %d, want %d", i, got, i+1)
		}
	}
	if err := p.CheckSorted(); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteBack(t *testing.T) {
	p := New(nil)
	const n = 2000
	for i := 0; i < n; i++ {
		p.InsertAt(i, int64(i))
	}
	for i := n - 1; i >= n/4; i-- {
		p.DeleteAt(i)
	}
	if p.Len() != n/4 {
		t.Fatalf("len = %d", p.Len())
	}
	for i := 0; i < n/4; i++ {
		if got := p.Get(i); got != int64(i) {
			t.Fatalf("Get(%d) = %d", i, got)
		}
	}
	if err := p.CheckSorted(); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteAllThenReuse(t *testing.T) {
	p := New(nil)
	for round := 0; round < 3; round++ {
		for i := 0; i < 500; i++ {
			p.InsertAt(p.Len(), int64(i))
		}
		for p.Len() > 0 {
			p.DeleteAt(0)
		}
		if err := p.CheckSorted(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
}

// Model-based test against a reference slice oracle under a random
// rank-based workload.
func TestOracleRandomOps(t *testing.T) {
	rng := xrand.New(42)
	p := New(nil)
	var oracle []int64
	for op := 0; op < 20000; op++ {
		if len(oracle) == 0 || rng.Intn(3) > 0 {
			rank := rng.Intn(len(oracle) + 1)
			// Keep the oracle sorted so PMA order invariants hold: pick a
			// key consistent with the rank.
			var key int64
			switch {
			case len(oracle) == 0:
				key = int64(rng.Intn(1000))
			case rank == 0:
				key = oracle[0] - int64(rng.Intn(3))
			case rank == len(oracle):
				key = oracle[len(oracle)-1] + int64(rng.Intn(3))
			default:
				key = oracle[rank-1] + int64(rng.Intn(int(oracle[rank]-oracle[rank-1])+1))
			}
			p.InsertAt(rank, key)
			oracle = append(oracle, 0)
			copy(oracle[rank+1:], oracle[rank:])
			oracle[rank] = key
		} else {
			rank := rng.Intn(len(oracle))
			p.DeleteAt(rank)
			oracle = append(oracle[:rank], oracle[rank+1:]...)
		}
	}
	if p.Len() != len(oracle) {
		t.Fatalf("len %d vs oracle %d", p.Len(), len(oracle))
	}
	got := p.Query(0, p.Len()-1, nil)
	for i, v := range got {
		if v != oracle[i] {
			t.Fatalf("rank %d: %d vs oracle %d", i, v, oracle[i])
		}
	}
	if err := p.CheckSorted(); err != nil {
		t.Fatal(err)
	}
}

func TestQueryRanges(t *testing.T) {
	p := New(nil)
	const n = 1000
	for i := 0; i < n; i++ {
		p.InsertAt(i, int64(2*i))
	}
	rng := xrand.New(17)
	for trial := 0; trial < 200; trial++ {
		i := rng.Intn(n)
		j := i + rng.Intn(n-i)
		got := p.Query(i, j, nil)
		if len(got) != j-i+1 {
			t.Fatalf("Query(%d,%d) returned %d elements", i, j, len(got))
		}
		for k, v := range got {
			if v != int64(2*(i+k)) {
				t.Fatalf("Query(%d,%d)[%d] = %d", i, j, k, v)
			}
		}
	}
}

func TestKeyAPI(t *testing.T) {
	p := New(nil)
	keys := []int64{42, 7, 99, 7, 13, 1000, -5}
	for _, k := range keys {
		p.InsertKey(k)
	}
	sorted := append([]int64(nil), keys...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	got := p.Query(0, p.Len()-1, nil)
	for i, v := range got {
		if v != sorted[i] {
			t.Fatalf("sorted order wrong at %d: %d vs %d", i, v, sorted[i])
		}
	}
	if !p.DeleteKey(7) {
		t.Fatal("DeleteKey(7) failed")
	}
	if p.DeleteKey(555) {
		t.Fatal("DeleteKey(555) should miss")
	}
	if p.Find(99) != 4 { // -5, 1(no..) sorted: -5,7,13,42,99,1000 after one 7 removed
		t.Fatalf("Find(99) = %d", p.Find(99))
	}
}

func TestMovesGrowthRate(t *testing.T) {
	// Amortized moves per insert should grow no faster than O(log^2 N):
	// compare the ratio at two scales.
	perOp := func(n int) float64 {
		p := New(nil)
		rng := xrand.New(1)
		for i := 0; i < n; i++ {
			p.InsertAt(rng.Intn(p.Len()+1), int64(i))
		}
		return float64(p.Moves()) / float64(n)
	}
	small, large := perOp(2000), perOp(64000)
	l2 := func(n float64) float64 { x := math.Log2(n); return x * x }
	// Allow a 4x envelope over the log^2 prediction.
	if large/small > 4*l2(64000)/l2(2000) {
		t.Fatalf("moves scaling too steep: %.2f at 2k vs %.2f at 64k", small, large)
	}
}

func TestSpaceLinear(t *testing.T) {
	p := New(nil)
	for i := 0; i < 100000; i++ {
		p.InsertAt(p.Len(), int64(i))
	}
	ratio := float64(p.Capacity()) / float64(p.Len())
	if ratio > 8 {
		t.Fatalf("space ratio %.2f too large", ratio)
	}
}

func TestIOAccounting(t *testing.T) {
	tr := iomodel.New(64, 0)
	p := New(tr)
	for i := 0; i < 1000; i++ {
		p.InsertAt(p.Len(), int64(i))
	}
	if tr.IOs() == 0 {
		t.Fatal("no I/Os recorded")
	}
	before := tr.IOs()
	p.Query(100, 163, nil) // 64 elements: O(1 + 64/64 + segment slack) blocks
	delta := tr.IOs() - before
	if delta > 20 {
		t.Fatalf("range query of 64 elements cost %d I/Os", delta)
	}
}

func TestPanicsOnBadRank(t *testing.T) {
	p := New(nil)
	p.InsertAt(0, 1)
	for _, f := range []func(){
		func() { p.Get(-1) },
		func() { p.Get(1) },
		func() { p.InsertAt(-1, 0) },
		func() { p.InsertAt(2, 0) },
		func() { p.DeleteAt(1) },
		func() { p.Query(0, 1, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{TauLeaf: 0.5, TauRoot: 0.7, RhoLeaf: 0.08, RhoRoot: 0.25, MinSeg: 8}, // tau order
		{TauLeaf: 1.2, TauRoot: 0.7, RhoLeaf: 0.08, RhoRoot: 0.25, MinSeg: 8}, // >1
		{TauLeaf: 0.9, TauRoot: 0.7, RhoLeaf: 0.3, RhoRoot: 0.25, MinSeg: 8},  // rho order
		{TauLeaf: 0.9, TauRoot: 0.7, RhoLeaf: 0.08, RhoRoot: 0.25, MinSeg: 6}, // MinSeg not pow2
	}
	for i, cfg := range bad {
		if _, err := NewWithConfig(cfg, nil); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

// Property: any sequence of front/back/random inserts keeps ranks
// consistent with a sorted oracle.
func TestPropertyRankConsistency(t *testing.T) {
	f := func(seed uint64, opsRaw uint16) bool {
		rng := xrand.New(seed)
		ops := int(opsRaw%500) + 50
		p := New(nil)
		var oracle []int64
		for i := 0; i < ops; i++ {
			rank := rng.Intn(len(oracle) + 1)
			key := int64(i) // strictly increasing keys inserted at random ranks
			// For the PMA order invariant we need sorted inserts, so use
			// rank = position of key in sorted order: append max key.
			_ = rank
			p.InsertAt(p.Len(), key)
			oracle = append(oracle, key)
		}
		for i := range oracle {
			if p.Get(i) != oracle[i] {
				return false
			}
		}
		return p.CheckSorted() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkInsertRandom(b *testing.B) {
	p := New(nil)
	rng := xrand.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.InsertAt(rng.Intn(p.Len()+1), int64(i))
	}
}

func BenchmarkInsertSequential(b *testing.B) {
	p := New(nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.InsertAt(p.Len(), int64(i))
	}
}
