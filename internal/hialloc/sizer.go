// Package hialloc provides the history-independence building blocks of
// §2.1 of the paper: weakly history-independent dynamic-array sizing
// (after Hartline et al. [36]), a history-independent block allocator in
// the style of Naor and Teague [47] (simulated), and a canonical-size
// (strongly HI) array baseline used to demonstrate Observation 1's lower
// bound experimentally.
package hialloc

import (
	"fmt"

	"repro/internal/xrand"
)

// Sizer maintains the physical size of a dynamic array holding n
// elements so that, at every point in time, the size is uniformly
// distributed over {n, ..., 2n-1} — invariant (1) of §2.1 — no matter
// what sequence of inserts and deletes produced the current n. Resizes
// happen with probability Θ(1/|A|) per update — invariant (2) — so the
// amortized resize cost is O(1) per update with high probability.
//
// The transition rule is an exact maximal coupling between the uniform
// distributions before and after the update, so uniformity holds exactly
// (not just in the limit):
//
//	insert (n → n+1): if size == n it must be refreshed; draw it
//	uniformly from {2n, 2n+1}. Otherwise keep the size with probability
//	n/(n+1), else draw uniformly from {2n, 2n+1}.
//
//	delete (n → n-1): if size ∈ {2n-2, 2n-1} it must be refreshed; draw
//	n-1 with probability n/(2(n-1)), else uniformly from {n, ..., 2n-3}.
//	Otherwise keep.
//
// A short calculation (see the package tests, which verify the exact
// distribution by dynamic programming) shows both rules map
// Uniform{n..2n-1} to Uniform{n'..2n'-1}.
type Sizer struct {
	rng  *xrand.Source
	n    int // elements currently stored
	size int // physical size; uniform in {n..2n-1} given n >= 2
}

// NewSizer returns a Sizer for an array currently holding n elements,
// with its size drawn uniformly from {n, ..., 2n-1}. n must be >= 0.
func NewSizer(n int, rng *xrand.Source) *Sizer {
	if n < 0 {
		panic("hialloc: negative element count")
	}
	s := &Sizer{rng: rng, n: n}
	s.size = s.fresh(n)
	return s
}

// RestoreSizer reconstructs a Sizer from persisted state: n elements
// with physical size `size`. The size must satisfy the WHI invariant
// (uniform support {n..2n-1}); the caller supplies fresh randomness for
// future transitions, which preserves weak history independence because
// the invariant distribution is memoryless.
func RestoreSizer(n, size int, rng *xrand.Source) (*Sizer, error) {
	if n < 0 {
		return nil, fmt.Errorf("hialloc: negative element count %d", n)
	}
	switch {
	case n == 0 && size != 0, n == 1 && size != 1:
		return nil, fmt.Errorf("hialloc: size %d invalid for n=%d", size, n)
	case n >= 2 && (size < n || size > 2*n-1):
		return nil, fmt.Errorf("hialloc: size %d outside [%d, %d]", size, n, 2*n-1)
	}
	return &Sizer{rng: rng, n: n, size: size}, nil
}

func (s *Sizer) fresh(n int) int {
	if n <= 1 {
		return n
	}
	return s.rng.IntRange(n, 2*n-1)
}

// N returns the current element count.
func (s *Sizer) N() int { return s.n }

// Size returns the current physical size. Size() is uniform in
// {N(), ..., 2N()-1} for N() >= 1 and 0 when empty.
func (s *Sizer) Size() int { return s.size }

// Insert records one insertion and returns the new size and whether the
// array must be physically rebuilt at that size.
func (s *Sizer) Insert() (size int, resized bool) {
	n := s.n
	s.n = n + 1
	switch {
	case n == 0:
		s.size = 1
		return s.size, true
	case n == 1:
		// Target range {2, 3}.
		s.size = 2 + s.rng.Intn(2)
		return s.size, true
	}
	// Source: uniform {n..2n-1}; target: uniform {n+1..2n+1}.
	if s.size == n || !s.bernoulli(n, n+1) {
		s.size = 2*n + s.rng.Intn(2)
		return s.size, true
	}
	return s.size, false
}

// Delete records one deletion and returns the new size and whether the
// array must be physically rebuilt at that size.
func (s *Sizer) Delete() (size int, resized bool) {
	n := s.n
	if n <= 0 {
		panic("hialloc: Delete on empty array")
	}
	s.n = n - 1
	switch {
	case n == 1:
		s.size = 0
		return 0, true
	case n == 2:
		s.size = 1
		return 1, true
	}
	// Source: uniform {n..2n-1}; target: uniform {n-1..2n-3}.
	if s.size >= 2*n-2 {
		// Refresh: P(n-1) = n/(2(n-1)); P(v) = 1/(2(n-1)) for v in {n..2n-3}.
		r := s.rng.Intn(2 * (n - 1))
		if r < n {
			s.size = n - 1
		} else {
			s.size = r // r in {n, ..., 2n-3}
		}
		return s.size, true
	}
	return s.size, false
}

// bernoulli returns true with probability num/den.
func (s *Sizer) bernoulli(num, den int) bool {
	return s.rng.Intn(den) < num
}

// SHISizer is the strongly-history-independent (canonical) counterpart:
// the size is a fixed function of n alone — here the smallest power of
// two that is >= n (and hence < 2n for n >= 1, satisfying the same
// capacity constraint as Sizer). Observation 1 of the paper shows any
// such canonical rule admits an oblivious adversary that forces an Ω(N)
// resize per operation with probability >= 1/k; BenchmarkObservation1
// demonstrates the separation against Sizer.
type SHISizer struct {
	n    int
	size int
}

// NewSHISizer returns a canonical sizer holding n elements.
func NewSHISizer(n int) *SHISizer {
	if n < 0 {
		panic("hialloc: negative element count")
	}
	return &SHISizer{n: n, size: canonicalSize(n)}
}

func canonicalSize(n int) int {
	if n <= 1 {
		return n
	}
	size := 1
	for size < n {
		size <<= 1
	}
	return size
}

// N returns the current element count.
func (s *SHISizer) N() int { return s.n }

// Size returns the canonical physical size for the current n.
func (s *SHISizer) Size() int { return s.size }

// Insert records one insertion; resized reports whether the canonical
// size changed (forcing an O(n) rebuild).
func (s *SHISizer) Insert() (size int, resized bool) {
	s.n++
	ns := canonicalSize(s.n)
	resized = ns != s.size
	s.size = ns
	return ns, resized
}

// Delete records one deletion; resized reports whether the canonical
// size changed (forcing an O(n) rebuild).
func (s *SHISizer) Delete() (size int, resized bool) {
	if s.n == 0 {
		panic("hialloc: Delete on empty array")
	}
	s.n--
	ns := canonicalSize(s.n)
	resized = ns != s.size
	s.size = ns
	return ns, resized
}
