package hialloc

import (
	"fmt"

	"repro/internal/xrand"
)

// FloorSizer is a Sizer with a minimum-size floor, implementing the HI
// external skip list's Invariant 16: for an array holding n elements
// with floor F (the paper's B^γ for leaf arrays),
//
//   - if n <= F, the physical size is uniform in [F, 2F-1];
//   - if n >= F, the physical size is uniform in [n, 2n-1].
//
// Writing m = max(n, F), the invariant is "size uniform in {m..2m-1}",
// and a ±1 change in n either leaves m unchanged (no transition needed:
// the distribution is already correct) or steps m by one, which is
// exactly the Sizer's exact-coupling transition. Resizes therefore occur
// with probability O(1/m) per update, preserving both history
// independence and the amortized cost bound.
type FloorSizer struct {
	rng   *xrand.Source
	floor int
	n     int
	size  int
}

// NewFloorSizer returns a FloorSizer for an array holding n elements
// with the given floor (floor >= 1).
func NewFloorSizer(n, floor int, rng *xrand.Source) *FloorSizer {
	if n < 0 || floor < 1 {
		panic("hialloc: invalid FloorSizer parameters")
	}
	s := &FloorSizer{rng: rng, floor: floor, n: n}
	m := s.m(n)
	s.size = s.freshUniform(m)
	return s
}

// RestoreFloorSizer reconstructs a FloorSizer from persisted state,
// validating the Invariant 16 window. Fresh randomness drives future
// transitions; the invariant distribution is memoryless, so weak
// history independence is preserved.
func RestoreFloorSizer(n, size, floor int, rng *xrand.Source) (*FloorSizer, error) {
	if n < 0 || floor < 1 {
		return nil, fmt.Errorf("hialloc: invalid FloorSizer state n=%d floor=%d", n, floor)
	}
	m := n
	if m < floor {
		m = floor
	}
	if m <= 1 {
		if size != m {
			return nil, fmt.Errorf("hialloc: size %d invalid for m=%d", size, m)
		}
	} else if size < m || size > 2*m-1 {
		return nil, fmt.Errorf("hialloc: size %d outside [%d, %d]", size, m, 2*m-1)
	}
	return &FloorSizer{rng: rng, floor: floor, n: n, size: size}, nil
}

func (s *FloorSizer) m(n int) int {
	if n < s.floor {
		return s.floor
	}
	return n
}

func (s *FloorSizer) freshUniform(m int) int {
	if m <= 1 {
		return m
	}
	return s.rng.IntRange(m, 2*m-1)
}

// N returns the element count.
func (s *FloorSizer) N() int { return s.n }

// Size returns the physical size, uniform in {m..2m-1} for m = max(N, floor).
func (s *FloorSizer) Size() int { return s.size }

// Insert records one insertion; resized reports whether the array must
// be physically rebuilt at the returned size.
func (s *FloorSizer) Insert() (size int, resized bool) {
	mOld := s.m(s.n)
	s.n++
	mNew := s.m(s.n)
	if mNew == mOld {
		return s.size, false
	}
	// mNew == mOld + 1: exact Sizer insert-coupling on m.
	n := mOld
	if n <= 1 {
		s.size = s.freshUniform(mNew)
		return s.size, true
	}
	if s.size == n || s.rng.Intn(n+1) >= n {
		s.size = 2*n + s.rng.Intn(2)
		return s.size, true
	}
	return s.size, false
}

// Delete records one deletion; resized reports whether the array must be
// physically rebuilt at the returned size.
func (s *FloorSizer) Delete() (size int, resized bool) {
	if s.n <= 0 {
		panic("hialloc: FloorSizer.Delete on empty array")
	}
	mOld := s.m(s.n)
	s.n--
	mNew := s.m(s.n)
	if mNew == mOld {
		return s.size, false
	}
	// mNew == mOld - 1: exact Sizer delete-coupling on m.
	n := mOld
	if n <= 2 {
		s.size = s.freshUniform(mNew)
		return s.size, true
	}
	if s.size >= 2*n-2 {
		r := s.rng.Intn(2 * (n - 1))
		if r < n {
			s.size = n - 1
		} else {
			s.size = r
		}
		return s.size, true
	}
	return s.size, false
}

// Reset re-draws the size fresh for a bulk change to n elements (array
// splits and merges): a fresh uniform sample is trivially history
// independent, and bulk changes already cost Ω(array) work.
func (s *FloorSizer) Reset(n int) (size int) {
	if n < 0 {
		panic("hialloc: FloorSizer.Reset with negative n")
	}
	s.n = n
	s.size = s.freshUniform(s.m(n))
	return s.size
}
