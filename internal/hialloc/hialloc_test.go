package hialloc

import (
	"math"
	"testing"

	"repro/internal/xrand"
)

// TestSizerExactUniformity verifies, by exact dynamic programming over
// the size distribution, that the Sizer's transition rule maps the
// uniform distribution on {n..2n-1} to the uniform distribution on
// {n'..2n'-1} for every insert and delete — i.e. invariant (1) of §2.1
// holds exactly, for arbitrary operation sequences.
func TestSizerExactUniformity(t *testing.T) {
	// dist[s] = probability the size is s.
	const maxSize = 4096
	dist := make([]float64, maxSize)
	n := 2
	dist[2], dist[3] = 0.5, 0.5

	applyInsert := func() {
		next := make([]float64, maxSize)
		for s, p := range dist {
			if p == 0 {
				continue
			}
			if s == n {
				next[2*n] += p / 2
				next[2*n+1] += p / 2
				continue
			}
			keep := float64(n) / float64(n+1)
			next[s] += p * keep
			next[2*n] += p * (1 - keep) / 2
			next[2*n+1] += p * (1 - keep) / 2
		}
		dist = next
		n++
	}
	applyDelete := func() {
		next := make([]float64, maxSize)
		for s, p := range dist {
			if p == 0 {
				continue
			}
			if s >= 2*n-2 {
				// Refresh: P(n-1) = n/(2(n-1)); P(v) = 1/(2(n-1)).
				next[n-1] += p * float64(n) / float64(2*(n-1))
				for v := n; v <= 2*n-3; v++ {
					next[v] += p / float64(2*(n-1))
				}
				continue
			}
			next[s] += p
		}
		dist = next
		n--
	}
	checkUniform := func(step int) {
		want := 1.0 / float64(n)
		for s := 0; s < maxSize; s++ {
			var expect float64
			if s >= n && s <= 2*n-1 {
				expect = want
			}
			if math.Abs(dist[s]-expect) > 1e-12 {
				t.Fatalf("step %d, n=%d: P(size=%d) = %v, want %v",
					step, n, s, dist[s], expect)
			}
		}
	}

	// A deliberately history-heavy schedule: grow, shrink, sawtooth.
	rng := xrand.New(99)
	for step := 0; step < 400; step++ {
		if n <= 2 || (n < maxSize/4 && rng.Intn(2) == 0) {
			applyInsert()
		} else {
			applyDelete()
		}
		checkUniform(step)
	}
}

func TestSizerInvariantEmpirical(t *testing.T) {
	// Run the real Sizer through a fixed op schedule many times and
	// chi-square the final size distribution against uniform.
	const trials = 20000
	counts := make(map[int]int)
	var finalN int
	for trial := 0; trial < trials; trial++ {
		rng := xrand.New(uint64(trial) + 1)
		s := NewSizer(0, rng)
		// Front-loaded history: insert 40, delete 15, insert 7.
		for i := 0; i < 40; i++ {
			s.Insert()
		}
		for i := 0; i < 15; i++ {
			s.Delete()
		}
		for i := 0; i < 7; i++ {
			s.Insert()
		}
		finalN = s.N()
		if s.Size() < finalN || s.Size() > 2*finalN-1 {
			t.Fatalf("size %d outside [%d, %d]", s.Size(), finalN, 2*finalN-1)
		}
		counts[s.Size()]++
	}
	expected := float64(trials) / float64(finalN)
	chi2 := 0.0
	for v := finalN; v <= 2*finalN-1; v++ {
		d := float64(counts[v]) - expected
		chi2 += d * d / expected
	}
	// finalN-1 = 31 degrees of freedom; 99.9th percentile ~ 61.1.
	if chi2 > 61.1 {
		t.Fatalf("chi2 = %v over %d buckets: final size not uniform", chi2, finalN)
	}
}

func TestSizerResizeFrequency(t *testing.T) {
	// Resizes must happen with probability Theta(1/n) per op: count
	// resizes during n sequential inserts; expect Theta(log n) total
	// (sum of ~2/k), certainly o(n).
	rng := xrand.New(7)
	s := NewSizer(0, rng)
	const n = 200000
	resizes := 0
	for i := 0; i < n; i++ {
		if _, r := s.Insert(); r {
			resizes++
		}
	}
	// Expected about sum_{k=1..n} 2/k ~ 2 ln n ~ 24. Allow generous slack.
	if resizes > 200 {
		t.Fatalf("%d resizes in %d inserts; expected O(log n)", resizes, n)
	}
	if resizes < 3 {
		t.Fatalf("implausibly few resizes: %d", resizes)
	}
}

func TestSizerSmallN(t *testing.T) {
	rng := xrand.New(3)
	s := NewSizer(0, rng)
	if s.Size() != 0 {
		t.Fatalf("empty size = %d", s.Size())
	}
	sz, r := s.Insert()
	if sz != 1 || !r {
		t.Fatalf("first insert: size=%d resized=%v", sz, r)
	}
	sz, _ = s.Insert()
	if sz != 2 && sz != 3 {
		t.Fatalf("n=2 size = %d, want 2 or 3", sz)
	}
	sz, _ = s.Delete()
	if sz != 1 {
		t.Fatalf("n=1 size = %d, want 1", sz)
	}
	sz, _ = s.Delete()
	if sz != 0 || s.N() != 0 {
		t.Fatalf("n=0 size = %d", sz)
	}
}

func TestSizerDeleteEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Delete on empty did not panic")
		}
	}()
	NewSizer(0, xrand.New(1)).Delete()
}

func TestSHISizerCanonical(t *testing.T) {
	for _, tc := range []struct{ n, want int }{
		{0, 0}, {1, 1}, {2, 2}, {3, 4}, {4, 4}, {5, 8}, {8, 8}, {9, 16},
		{1023, 1024}, {1024, 1024}, {1025, 2048},
	} {
		if got := canonicalSize(tc.n); got != tc.want {
			t.Errorf("canonicalSize(%d) = %d, want %d", tc.n, got, tc.want)
		}
	}
}

func TestSHISizerAdversary(t *testing.T) {
	// Observation 1: alternating inserts/deletes across a canonical
	// boundary forces a resize on every operation.
	s := NewSHISizer(1024) // boundary at 1024 -> 2048
	resizes := 0
	const ops = 1000
	for i := 0; i < ops/2; i++ {
		if _, r := s.Insert(); r {
			resizes++
		}
		if _, r := s.Delete(); r {
			resizes++
		}
	}
	if resizes != ops {
		t.Fatalf("adversary forced %d resizes out of %d ops; want all", resizes, ops)
	}
}

func TestWHISizerResistsAdversary(t *testing.T) {
	// The same alternation cannot reliably hit the WHI sizer's random
	// size: resizes stay rare.
	rng := xrand.New(11)
	s := NewSizer(1024, rng)
	resizes := 0
	const ops = 10000
	for i := 0; i < ops/2; i++ {
		if _, r := s.Insert(); r {
			resizes++
		}
		if _, r := s.Delete(); r {
			resizes++
		}
	}
	// Resize probability is ~2/1024 per op -> ~20 expected.
	if resizes > 100 {
		t.Fatalf("WHI sizer resized %d/%d times under alternation", resizes, ops)
	}
}

func TestAllocatorDistinctAligned(t *testing.T) {
	a := NewAllocator(64, xrand.New(5))
	seen := make(map[int64]bool)
	for i := 0; i < 1000; i++ {
		addr := a.Alloc(100)
		if addr%64 != 0 {
			t.Fatalf("address %d not block-aligned", addr)
		}
		if seen[addr] {
			t.Fatalf("duplicate address %d", addr)
		}
		seen[addr] = true
	}
	if a.Live() != 1000 {
		t.Fatalf("live = %d, want 1000", a.Live())
	}
}

func TestAllocatorFree(t *testing.T) {
	a := NewAllocator(8, xrand.New(6))
	addr := a.Alloc(10)
	a.Free(addr)
	if a.Live() != 0 {
		t.Fatal("allocation not freed")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("double free did not panic")
		}
	}()
	a.Free(addr)
}

func TestAllocatorBadSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Alloc(0) did not panic")
		}
	}()
	NewAllocator(8, xrand.New(1)).Alloc(0)
}

func BenchmarkSizerInsert(b *testing.B) {
	s := NewSizer(0, xrand.New(1))
	for i := 0; i < b.N; i++ {
		s.Insert()
	}
}
