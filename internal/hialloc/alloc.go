package hialloc

import (
	"fmt"

	"repro/internal/xrand"
)

// Allocator simulates the history-independent allocation black box of
// Naor and Teague [47] that the paper consumes (§2.1, §6.3): every live
// allocation's address is distributed independently of the operation
// history. The real construction manages a free list whose choices are
// uniform; we simulate the same interface property by drawing each
// block's address uniformly from a huge sparse address space (collisions
// are retried, so addresses are distinct). Addresses are in element
// units and block-aligned so that iomodel accounting of an allocation
// never shares a block with another allocation.
type Allocator struct {
	rng       *xrand.Source
	blockSize int64
	space     int64           // number of block slots in the address space
	live      map[int64]int64 // base address -> size in element units
}

// NewAllocator returns an allocator whose allocations are aligned to
// blockSize element units. The simulated address space holds 2^40
// blocks, so collisions are vanishingly rare and retried.
func NewAllocator(blockSize int, rng *xrand.Source) *Allocator {
	if blockSize <= 0 {
		panic("hialloc: block size must be positive")
	}
	return &Allocator{
		rng:       rng,
		blockSize: int64(blockSize),
		space:     1 << 40,
		live:      make(map[int64]int64),
	}
}

// Alloc reserves size element units and returns the base address. The
// address is uniform over the free block-aligned slots, which is the
// history-independence property [47] guarantees.
func (a *Allocator) Alloc(size int) int64 {
	if size <= 0 {
		panic("hialloc: Alloc size must be positive")
	}
	for {
		base := int64(a.rng.Uint64n(uint64(a.space))) * a.blockSize
		if _, taken := a.live[base]; taken {
			continue
		}
		a.live[base] = int64(size)
		return base
	}
}

// Reserve registers an existing allocation at base (used when restoring
// a persisted structure whose addresses are part of its memory
// representation). It returns an error on misalignment or collision.
func (a *Allocator) Reserve(base int64, size int) error {
	if size <= 0 {
		return fmt.Errorf("hialloc: Reserve size %d must be positive", size)
	}
	if base < 0 || base%a.blockSize != 0 {
		return fmt.Errorf("hialloc: Reserve address %d not %d-aligned", base, a.blockSize)
	}
	if _, taken := a.live[base]; taken {
		return fmt.Errorf("hialloc: Reserve address %d already live", base)
	}
	a.live[base] = int64(size)
	return nil
}

// Free releases the allocation at base. It panics on a double free or an
// address that was never allocated, which would indicate a bug in the
// calling structure.
func (a *Allocator) Free(base int64) {
	if _, ok := a.live[base]; !ok {
		panic("hialloc: Free of unallocated address")
	}
	delete(a.live, base)
}

// Live returns the number of live allocations, for leak checks in tests.
func (a *Allocator) Live() int { return len(a.live) }
