package hialloc

import (
	"math"
	"testing"

	"repro/internal/xrand"
)

// TestFloorSizerExactUniformity mirrors the Sizer DP test with a floor:
// the size distribution must stay uniform on {m..2m-1}, m = max(n, F).
func TestFloorSizerExactUniformity(t *testing.T) {
	const F = 8
	const maxSize = 1024
	dist := make([]float64, maxSize)
	n := 0
	// Initial: n=0 -> m=F -> uniform [F, 2F-1].
	for v := F; v <= 2*F-1; v++ {
		dist[v] = 1.0 / F
	}

	mOf := func(n int) int {
		if n < F {
			return F
		}
		return n
	}
	applyInsert := func() {
		mOld, mNew := mOf(n), mOf(n+1)
		n++
		if mNew == mOld {
			return
		}
		next := make([]float64, maxSize)
		nn := mOld
		for s, p := range dist {
			if p == 0 {
				continue
			}
			if s == nn {
				next[2*nn] += p / 2
				next[2*nn+1] += p / 2
				continue
			}
			keep := float64(nn) / float64(nn+1)
			next[s] += p * keep
			next[2*nn] += p * (1 - keep) / 2
			next[2*nn+1] += p * (1 - keep) / 2
		}
		dist = next
	}
	applyDelete := func() {
		mOld, mNew := mOf(n-1), 0
		mNew = mOf(n - 1)
		mOld = mOf(n)
		n--
		if mNew == mOld {
			return
		}
		next := make([]float64, maxSize)
		nn := mOld
		for s, p := range dist {
			if p == 0 {
				continue
			}
			if s >= 2*nn-2 {
				next[nn-1] += p * float64(nn) / float64(2*(nn-1))
				for v := nn; v <= 2*nn-3; v++ {
					next[v] += p / float64(2*(nn-1))
				}
				continue
			}
			next[s] += p
		}
		dist = next
	}
	check := func(step int) {
		m := mOf(n)
		want := 1.0 / float64(m)
		for s := 0; s < maxSize; s++ {
			var expect float64
			if s >= m && s <= 2*m-1 {
				expect = want
			}
			if math.Abs(dist[s]-expect) > 1e-12 {
				t.Fatalf("step %d, n=%d (m=%d): P(size=%d) = %v, want %v",
					step, n, m, s, dist[s], expect)
			}
		}
	}
	rng := xrand.New(5)
	for step := 0; step < 300; step++ {
		if n == 0 || (n < 200 && rng.Intn(2) == 0) {
			applyInsert()
		} else {
			applyDelete()
		}
		check(step)
	}
}

func TestFloorSizerInvariantRuntime(t *testing.T) {
	rng := xrand.New(9)
	s := NewFloorSizer(0, 16, rng)
	check := func() {
		m := s.n
		if m < 16 {
			m = 16
		}
		if s.Size() < m || s.Size() > 2*m-1 {
			t.Fatalf("n=%d: size %d outside [%d, %d]", s.n, s.Size(), m, 2*m-1)
		}
	}
	check()
	for i := 0; i < 100; i++ {
		s.Insert()
		check()
	}
	for i := 0; i < 100; i++ {
		s.Delete()
		check()
	}
	if s.N() != 0 {
		t.Fatalf("N = %d", s.N())
	}
}

func TestFloorSizerNoResizeBelowFloor(t *testing.T) {
	// While n stays below the floor, m is constant, so no resizes occur.
	rng := xrand.New(11)
	s := NewFloorSizer(0, 64, rng)
	for i := 0; i < 63; i++ {
		if _, resized := s.Insert(); resized {
			t.Fatalf("resize below floor at n=%d", s.N())
		}
	}
	for i := 0; i < 63; i++ {
		if _, resized := s.Delete(); resized {
			t.Fatalf("resize below floor during delete at n=%d", s.N())
		}
	}
}

func TestFloorSizerReset(t *testing.T) {
	rng := xrand.New(13)
	s := NewFloorSizer(5, 4, rng)
	size := s.Reset(100)
	if size < 100 || size > 199 {
		t.Fatalf("Reset(100) size = %d", size)
	}
	if s.N() != 100 {
		t.Fatalf("N = %d", s.N())
	}
	if got := s.Reset(0); got != 4 && (got < 4 || got > 7) {
		t.Fatalf("Reset(0) size = %d, want in [4,7]", got)
	}
}

func TestFloorSizerPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewFloorSizer(-1, 4, xrand.New(1)) },
		func() { NewFloorSizer(0, 0, xrand.New(1)) },
		func() { NewFloorSizer(0, 4, xrand.New(1)).Delete() },
		func() { NewFloorSizer(0, 4, xrand.New(1)).Reset(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}
