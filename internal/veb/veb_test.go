package veb

import (
	"testing"
	"testing/quick"

	"repro/internal/iomodel"
)

func TestLayoutIsPermutation(t *testing.T) {
	for levels := 1; levels <= 14; levels++ {
		l := NewLayout(levels)
		n := l.NumNodes()
		seen := make([]bool, n)
		for bfs := 1; bfs <= n; bfs++ {
			p := l.Phys(bfs)
			if p < 0 || p >= n {
				t.Fatalf("levels %d: Phys(%d) = %d out of range", levels, bfs, p)
			}
			if seen[p] {
				t.Fatalf("levels %d: slot %d assigned twice", levels, p)
			}
			seen[p] = true
		}
	}
}

func TestRootIsFirst(t *testing.T) {
	for levels := 1; levels <= 12; levels++ {
		if p := NewLayout(levels).Phys(1); p != 0 {
			t.Fatalf("levels %d: root at slot %d, want 0", levels, p)
		}
	}
}

func TestSmallLayoutsExact(t *testing.T) {
	// 2 levels: top = 1 level {root}, bottom = two 1-level subtrees.
	l := NewLayout(2)
	want := map[int]int{1: 0, 2: 1, 3: 2}
	for bfs, slot := range want {
		if got := l.Phys(bfs); got != slot {
			t.Errorf("levels=2: Phys(%d) = %d, want %d", bfs, got, slot)
		}
	}
	// 3 levels: top = 1 level {1}, bottoms = 2-level trees at 2 and 3.
	// Order: 1, then subtree(2) = {2,4,5}, then subtree(3) = {3,6,7}.
	l = NewLayout(3)
	want = map[int]int{1: 0, 2: 1, 4: 2, 5: 3, 3: 4, 6: 5, 7: 6}
	for bfs, slot := range want {
		if got := l.Phys(bfs); got != slot {
			t.Errorf("levels=3: Phys(%d) = %d, want %d", bfs, got, slot)
		}
	}
}

// TestRecursiveContiguity checks the defining vEB property: for a tree
// of L levels, the top ⌊L/2⌋ levels occupy one contiguous slot range,
// and each bottom subtree occupies its own contiguous range.
func TestRecursiveContiguity(t *testing.T) {
	var check func(l *Layout, root int64, levels int) (lo, hi int)
	check = func(l *Layout, root int64, levels int) (int, int) {
		if levels == 1 {
			p := l.Phys(int(root))
			return p, p
		}
		top := levels / 2
		bottom := levels - top
		lo, hi := check(l, root, top)
		if hi-lo+1 != (1<<uint(top))-1 {
			t.Fatalf("top tree at %d not contiguous: [%d, %d]", root, lo, hi)
		}
		first := root << uint(top)
		prevHi := hi
		for i := int64(0); i < 1<<uint(top); i++ {
			blo, bhi := check(l, first+i, bottom)
			if blo != prevHi+1 {
				t.Fatalf("bottom subtree %d at root %d starts at %d, want %d",
					i, root, blo, prevHi+1)
			}
			if bhi-blo+1 != (1<<uint(bottom))-1 {
				t.Fatalf("bottom subtree %d not contiguous", i)
			}
			prevHi = bhi
		}
		return lo, prevHi
	}
	for levels := 1; levels <= 12; levels++ {
		l := NewLayout(levels)
		lo, hi := check(l, 1, levels)
		if lo != 0 || hi != l.NumNodes()-1 {
			t.Fatalf("levels %d: whole tree spans [%d, %d]", levels, lo, hi)
		}
	}
}

// TestRootToLeafIOBound measures the actual number of distinct blocks on
// root-to-leaf paths and checks it is O(log_B N) — about
// 2·log N/log B + O(1) blocks — for several B, demonstrating
// cache-obliviousness. A BFS layout would instead touch ~log N - log B
// blocks.
func TestRootToLeafIOBound(t *testing.T) {
	const levels = 16
	l := NewLayout(levels)
	for _, B := range []int{4, 16, 64, 256} {
		maxBlocks := 0
		for leaf := 1 << (levels - 1); leaf < 1<<levels; leaf += 37 {
			blocks := make(map[int]bool)
			for x := leaf; x >= 1; x /= 2 {
				blocks[l.Phys(x)/B] = true
			}
			if len(blocks) > maxBlocks {
				maxBlocks = len(blocks)
			}
		}
		// Bound: ceil(levels / floor(log2 B)) * 2 + 2 is a generous
		// constant-factor envelope for the vEB guarantee.
		logB := 0
		for 1<<uint(logB+1) <= B {
			logB++
		}
		bound := 2*(levels/logB) + 4
		if maxBlocks > bound {
			t.Errorf("B=%d: path touches %d blocks, bound %d", B, maxBlocks, bound)
		}
	}
}

func TestLayoutPanics(t *testing.T) {
	for _, levels := range []int{0, -1, 32} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewLayout(%d) did not panic", levels)
				}
			}()
			NewLayout(levels)
		}()
	}
}

func TestTreeGetSetAdd(t *testing.T) {
	l := NewLayout(5)
	tr := iomodel.New(4, 0)
	tree := NewTree(l, 1000, tr)
	tree.Set(1, 42)
	tree.Add(1, 8)
	if got := tree.Get(1); got != 50 {
		t.Fatalf("Get(1) = %d, want 50", got)
	}
	if tr.IOs() == 0 {
		t.Fatal("tree accesses did not charge I/Os")
	}
	// All nodes independently addressable.
	for bfs := 1; bfs <= l.NumNodes(); bfs++ {
		tree.Set(bfs, int64(bfs))
	}
	for bfs := 1; bfs <= l.NumNodes(); bfs++ {
		if got := tree.Get(bfs); got != int64(bfs) {
			t.Fatalf("node %d holds %d", bfs, got)
		}
	}
}

func TestTreeLeafHelpers(t *testing.T) {
	l := NewLayout(4) // 15 nodes, leaves 8..15
	tree := NewTree(l, 0, nil)
	for i := 0; i < l.NumLeaves(); i++ {
		bfs := tree.LeafBFS(i)
		if !tree.IsLeaf(bfs) {
			t.Fatalf("LeafBFS(%d) = %d not a leaf", i, bfs)
		}
		if tree.LeafIndex(bfs) != i {
			t.Fatalf("LeafIndex(LeafBFS(%d)) = %d", i, tree.LeafIndex(bfs))
		}
	}
	if tree.IsLeaf(7) {
		t.Fatal("internal node 7 reported as leaf")
	}
}

func TestPropertyPhysicalSlotsDense(t *testing.T) {
	f := func(raw uint8) bool {
		levels := int(raw%12) + 1
		l := NewLayout(levels)
		sum := 0
		for bfs := 1; bfs <= l.NumNodes(); bfs++ {
			sum += l.Phys(bfs)
		}
		n := l.NumNodes()
		return sum == n*(n-1)/2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkLayoutBuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		NewLayout(18)
	}
}

func BenchmarkRootToLeafTraversal(b *testing.B) {
	l := NewLayout(20)
	tree := NewTree(l, 0, nil)
	b.ResetTimer()
	var sink int64
	for i := 0; i < b.N; i++ {
		x := 1
		for !tree.IsLeaf(x) {
			sink += tree.Get(x)
			x = 2*x + (i & 1)
		}
	}
	_ = sink
}
