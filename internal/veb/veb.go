// Package veb implements the static van Emde Boas layout of a complete
// binary tree (§3.5 of the paper, after [14, 51]): a deterministic — and
// hence history-independent — permutation of the tree's nodes such that
// any root-to-leaf path touches O(log_B N) blocks for every block size B
// simultaneously, which is what makes the rank tree and the
// cache-oblivious B-tree's balance-value tree I/O-efficient without
// knowing B.
//
// Nodes are addressed by 1-based BFS (binary-heap) indices: the root is
// 1 and the children of node x are 2x and 2x+1. The layout maps each BFS
// index to a physical slot; the recursion splits a tree of L levels into
// a top tree of ⌊L/2⌋ levels laid out first, followed by each bottom
// subtree of ⌈L/2⌉ levels, left to right, each laid out recursively.
package veb

import (
	"fmt"

	"repro/internal/iomodel"
)

// Layout is the precomputed vEB permutation for a complete binary tree
// with a given number of levels.
type Layout struct {
	levels int
	pos    []int32 // BFS index -> physical slot; entry 0 unused
}

// NewLayout computes the layout for a complete binary tree of the given
// number of levels (levels >= 1; a tree with L levels has 2^L - 1 nodes).
func NewLayout(levels int) *Layout {
	if levels < 1 || levels > 31 {
		panic(fmt.Sprintf("veb: levels %d out of range [1, 31]", levels))
	}
	l := &Layout{
		levels: levels,
		pos:    make([]int32, 1<<uint(levels)),
	}
	var next int32
	l.build(1, levels, &next)
	return l
}

func (l *Layout) build(root int64, levels int, next *int32) {
	if levels == 1 {
		l.pos[root] = *next
		*next++
		return
	}
	top := levels / 2
	bottom := levels - top
	l.build(root, top, next)
	// The bottom subtrees hang off the 2^top descendants of root at
	// depth top, in left-to-right BFS order.
	first := root << uint(top)
	for i := int64(0); i < 1<<uint(top); i++ {
		l.build(first+i, bottom, next)
	}
}

// Levels returns the number of levels in the tree.
func (l *Layout) Levels() int { return l.levels }

// NumNodes returns the number of nodes, 2^levels - 1.
func (l *Layout) NumNodes() int { return (1 << uint(l.levels)) - 1 }

// NumLeaves returns the number of leaves, 2^(levels-1).
func (l *Layout) NumLeaves() int { return 1 << uint(l.levels-1) }

// Phys maps a 1-based BFS index to its physical slot in [0, NumNodes).
func (l *Layout) Phys(bfs int) int {
	return int(l.pos[bfs])
}

// Tree is a complete binary tree of int64 values stored physically in
// vEB order, with optional DAM-model I/O accounting. It backs both the
// PMA's rank tree (per-range element counts, §3.5) and the
// cache-oblivious B-tree's balance-value tree (§5).
type Tree struct {
	layout *Layout
	vals   []int64
	base   int64 // address of slot 0 in tracker units
	io     *iomodel.Tracker
}

// NewTree returns a zeroed tree with the given layout. base is the
// structure's starting address for I/O accounting; io may be nil.
func NewTree(layout *Layout, base int64, io *iomodel.Tracker) *Tree {
	return &Tree{
		layout: layout,
		vals:   make([]int64, layout.NumNodes()),
		base:   base,
		io:     io,
	}
}

// Layout returns the tree's layout.
func (t *Tree) Layout() *Layout { return t.layout }

// Get returns the value at the 1-based BFS index, charging one touch.
func (t *Tree) Get(bfs int) int64 {
	p := t.layout.Phys(bfs)
	t.io.Read(t.base + int64(p))
	return t.vals[p]
}

// Set writes the value at the 1-based BFS index, charging one dirty touch.
func (t *Tree) Set(bfs int, v int64) {
	p := t.layout.Phys(bfs)
	t.io.Write(t.base + int64(p))
	t.vals[p] = v
}

// Add adds delta to the value at the 1-based BFS index.
func (t *Tree) Add(bfs int, delta int64) {
	p := t.layout.Phys(bfs)
	t.io.Write(t.base + int64(p))
	t.vals[p] += delta
}

// IsLeaf reports whether the BFS index is a leaf of the tree.
func (t *Tree) IsLeaf(bfs int) bool {
	return bfs >= t.layout.NumLeaves()
}

// LeafIndex converts a leaf's BFS index to its left-to-right position.
func (t *Tree) LeafIndex(bfs int) int {
	return bfs - t.layout.NumLeaves()
}

// LeafBFS converts a left-to-right leaf position to its BFS index.
func (t *Tree) LeafBFS(i int) int {
	return t.layout.NumLeaves() + i
}
