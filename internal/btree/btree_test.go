package btree

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/iomodel"
	"repro/internal/xrand"
)

func TestBasic(t *testing.T) {
	bt := New(8, 1, nil)
	if bt.Contains(5) {
		t.Fatal("empty tree contains 5")
	}
	if !bt.Insert(5) || bt.Insert(5) {
		t.Fatal("insert semantics")
	}
	if !bt.Contains(5) {
		t.Fatal("5 missing")
	}
	if !bt.Delete(5) || bt.Delete(5) {
		t.Fatal("delete semantics")
	}
	if bt.Len() != 0 {
		t.Fatalf("len = %d", bt.Len())
	}
}

func TestSequentialAndReverse(t *testing.T) {
	for _, b := range []int{4, 8, 64} {
		for _, dir := range []string{"asc", "desc"} {
			bt := New(b, 2, nil)
			const n = 5000
			for i := 0; i < n; i++ {
				k := int64(i)
				if dir == "desc" {
					k = int64(n - i)
				}
				bt.Insert(k)
			}
			if bt.Len() != n {
				t.Fatalf("b=%d %s: len = %d", b, dir, bt.Len())
			}
			if err := bt.CheckInvariants(); err != nil {
				t.Fatalf("b=%d %s: %v", b, dir, err)
			}
		}
	}
}

func TestSetOracle(t *testing.T) {
	bt := New(16, 3, nil)
	oracle := make(map[int64]bool)
	rng := xrand.New(7)
	for op := 0; op < 40000; op++ {
		k := int64(rng.Intn(5000))
		if rng.Intn(2) == 0 {
			if got := bt.Insert(k); got != !oracle[k] {
				t.Fatalf("op %d: Insert(%d) = %v", op, k, got)
			}
			oracle[k] = true
		} else {
			if got := bt.Delete(k); got != oracle[k] {
				t.Fatalf("op %d: Delete(%d) = %v", op, k, got)
			}
			delete(oracle, k)
		}
		if op%8000 == 7999 {
			if err := bt.CheckInvariants(); err != nil {
				t.Fatalf("op %d: %v", op, err)
			}
		}
	}
	if bt.Len() != len(oracle) {
		t.Fatalf("len %d vs %d", bt.Len(), len(oracle))
	}
	for k := int64(0); k < 5000; k++ {
		if bt.Contains(k) != oracle[k] {
			t.Fatalf("Contains(%d) = %v", k, bt.Contains(k))
		}
	}
}

func TestRange(t *testing.T) {
	bt := New(8, 5, nil)
	var want []int64
	rng := xrand.New(9)
	seen := map[int64]bool{}
	for i := 0; i < 2000; i++ {
		k := int64(rng.Intn(10000))
		if !seen[k] {
			seen[k] = true
			want = append(want, k)
			bt.Insert(k)
		}
	}
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	for trial := 0; trial < 100; trial++ {
		lo := int64(rng.Intn(10000))
		hi := lo + int64(rng.Intn(3000))
		got := bt.Range(lo, hi, nil)
		var expect []int64
		for _, k := range want {
			if k >= lo && k <= hi {
				expect = append(expect, k)
			}
		}
		if len(got) != len(expect) {
			t.Fatalf("Range(%d,%d): %d vs %d keys", lo, hi, len(got), len(expect))
		}
		for i := range expect {
			if got[i] != expect[i] {
				t.Fatalf("Range(%d,%d)[%d] = %d, want %d", lo, hi, i, got[i], expect[i])
			}
		}
	}
}

func TestDeleteAll(t *testing.T) {
	bt := New(8, 11, nil)
	const n = 3000
	perm := make([]int, n)
	xrand.New(13).Perm(perm)
	for i := 0; i < n; i++ {
		bt.Insert(int64(i))
	}
	for _, k := range perm {
		if !bt.Delete(int64(k)) {
			t.Fatalf("Delete(%d) missed", k)
		}
	}
	if bt.Len() != 0 {
		t.Fatalf("len = %d", bt.Len())
	}
	if err := bt.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestHeightLogB(t *testing.T) {
	const n = 100000
	for _, b := range []int{16, 64, 256} {
		bt := New(b, 17, nil)
		for i := 0; i < n; i++ {
			bt.Insert(int64(i))
		}
		want := math.Log2(n)/math.Log2(float64(b)/2) + 2
		if float64(bt.Height()) > want {
			t.Errorf("b=%d: height %d > %.1f", b, bt.Height(), want)
		}
	}
}

func TestSearchIOBound(t *testing.T) {
	const n = 1 << 17
	for _, b := range []int{16, 64, 256} {
		tr := iomodel.New(b, 0)
		bt := New(b, 19, tr)
		for i := 0; i < n; i++ {
			bt.Insert(int64(i))
		}
		rng := xrand.New(21)
		tr.Reset()
		const queries = 1000
		for q := 0; q < queries; q++ {
			bt.Contains(int64(rng.Intn(n)))
		}
		perQ := float64(tr.IOs()) / queries
		bound := 2*math.Log2(n)/math.Log2(float64(b)/2) + 3
		if perQ > bound {
			t.Errorf("b=%d: %.2f I/Os per search, bound %.1f", b, perQ, bound)
		}
	}
}

func TestPropertyOracle(t *testing.T) {
	f := func(seed uint64, bRaw uint8) bool {
		b := []int{4, 8, 16, 32}[bRaw%4]
		bt := New(b, seed, nil)
		oracle := make(map[int64]bool)
		rng := xrand.New(seed + 1)
		for op := 0; op < 800; op++ {
			k := int64(rng.Intn(200))
			if rng.Intn(2) == 0 {
				bt.Insert(k)
				oracle[k] = true
			} else {
				bt.Delete(k)
				delete(oracle, k)
			}
		}
		if bt.Len() != len(oracle) {
			return false
		}
		for k := int64(0); k < 200; k++ {
			if bt.Contains(k) != oracle[k] {
				return false
			}
		}
		return bt.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPanicsOnTinyBlock(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(3) did not panic")
		}
	}()
	New(3, 1, nil)
}

func BenchmarkInsert(b *testing.B) {
	bt := New(64, 1, nil)
	rng := xrand.New(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bt.Insert(int64(rng.Uint64n(1 << 40)))
	}
}

func BenchmarkContains(b *testing.B) {
	bt := New(64, 1, nil)
	for i := 0; i < 100000; i++ {
		bt.Insert(int64(i))
	}
	rng := xrand.New(3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bt.Contains(int64(rng.Intn(100000)))
	}
}
