// Package btree implements a standard external-memory B-tree on the DAM
// simulator — the ubiquitous, NON-history-independent dictionary the
// paper positions all of its structures against (§1): searches, inserts
// and deletes in O(log_B N) I/Os, range queries in O(log_B N + k/B).
//
// Every node occupies one disk block (up to B-1 keys per node, so the
// fanout is Θ(B)); touching a node costs one I/O. Nodes are placed by
// the history-independent allocator so that address patterns do not
// accidentally favour any variant in the comparisons, but the tree's
// *shape* is, of course, history dependent — splits and merges remember
// the insertion order, which is exactly the leak the paper's structures
// remove.
package btree

import (
	"fmt"

	"repro/internal/hialloc"
	"repro/internal/iomodel"
	"repro/internal/xrand"
)

// Tree is an external-memory B-tree over int64 keys (set semantics).
type Tree struct {
	b       int // block size in element units
	maxKeys int // maximum keys per node (= b-1, minimum 3)
	minKeys int // minimum keys per non-root node
	io      *iomodel.Tracker
	alloc   *hialloc.Allocator
	root    *bnode
	count   int
}

type bnode struct {
	keys     []int64
	children []*bnode // nil for leaves
	addr     int64
}

// New returns an empty B-tree for block size b. io may be nil.
func New(b int, seed uint64, io *iomodel.Tracker) *Tree {
	if b < 4 {
		panic(fmt.Sprintf("btree: block size %d must be >= 4", b))
	}
	t := &Tree{b: b, maxKeys: b - 1, io: io}
	if t.maxKeys < 3 {
		t.maxKeys = 3
	}
	t.minKeys = t.maxKeys / 2
	t.alloc = hialloc.NewAllocator(b, xrand.New(seed))
	t.root = t.newNode(true)
	return t
}

func (t *Tree) newNode(leaf bool) *bnode {
	n := &bnode{addr: t.alloc.Alloc(t.b)}
	if !leaf {
		n.children = make([]*bnode, 0, t.maxKeys+2)
	}
	return n
}

func (t *Tree) touch(n *bnode, dirty bool) {
	t.io.Touch(n.addr, dirty)
}

// Len returns the number of keys stored.
func (t *Tree) Len() int { return t.count }

// Height returns the tree height (1 for a lone root).
func (t *Tree) Height() int {
	h := 1
	for n := t.root; n.children != nil; n = n.children[0] {
		h++
	}
	return h
}

func (n *bnode) leaf() bool { return n.children == nil }

// search returns the index of the first key >= key in n.
func (n *bnode) search(key int64) int {
	lo, hi := 0, len(n.keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if n.keys[mid] < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Contains reports whether key is stored, charging O(log_B N) I/Os.
func (t *Tree) Contains(key int64) bool {
	n := t.root
	for {
		t.touch(n, false)
		i := n.search(key)
		if i < len(n.keys) && n.keys[i] == key {
			return true
		}
		if n.leaf() {
			return false
		}
		n = n.children[i]
	}
}

// Insert adds key and reports whether it was absent.
func (t *Tree) Insert(key int64) bool {
	if len(t.root.keys) == t.maxKeys {
		old := t.root
		t.root = t.newNode(false)
		t.root.children = append(t.root.children, old)
		t.splitChild(t.root, 0)
	}
	if !t.insertNonFull(t.root, key) {
		return false
	}
	t.count++
	return true
}

// splitChild splits the full child i of parent (preemptive splitting).
func (t *Tree) splitChild(parent *bnode, i int) {
	child := parent.children[i]
	mid := len(child.keys) / 2
	midKey := child.keys[mid]
	right := t.newNode(child.leaf())
	right.keys = append(right.keys, child.keys[mid+1:]...)
	if !child.leaf() {
		right.children = append(right.children, child.children[mid+1:]...)
		child.children = child.children[:mid+1]
	}
	child.keys = child.keys[:mid]
	parent.keys = append(parent.keys, 0)
	copy(parent.keys[i+1:], parent.keys[i:])
	parent.keys[i] = midKey
	parent.children = append(parent.children, nil)
	copy(parent.children[i+2:], parent.children[i+1:])
	parent.children[i+1] = right
	t.touch(parent, true)
	t.touch(child, true)
	t.touch(right, true)
}

func (t *Tree) insertNonFull(n *bnode, key int64) bool {
	for {
		t.touch(n, true)
		i := n.search(key)
		if i < len(n.keys) && n.keys[i] == key {
			return false
		}
		if n.leaf() {
			n.keys = append(n.keys, 0)
			copy(n.keys[i+1:], n.keys[i:])
			n.keys[i] = key
			return true
		}
		if len(n.children[i].keys) == t.maxKeys {
			t.splitChild(n, i)
			if key == n.keys[i] {
				return false
			}
			if key > n.keys[i] {
				i++
			}
		}
		n = n.children[i]
	}
}

// Delete removes key and reports whether it was present.
func (t *Tree) Delete(key int64) bool {
	if !t.delete(t.root, key) {
		return false
	}
	if len(t.root.keys) == 0 && !t.root.leaf() {
		old := t.root
		t.root = t.root.children[0]
		t.alloc.Free(old.addr)
	}
	t.count--
	return true
}

func (t *Tree) delete(n *bnode, key int64) bool {
	t.touch(n, true)
	i := n.search(key)
	if n.leaf() {
		if i >= len(n.keys) || n.keys[i] != key {
			return false
		}
		n.keys = append(n.keys[:i], n.keys[i+1:]...)
		return true
	}
	if i < len(n.keys) && n.keys[i] == key {
		// Replace by predecessor (max of left subtree), then delete it.
		pred := t.maxKey(n.children[i])
		n.keys[i] = pred
		t.ensureChild(n, i)
		// n.keys may have shifted; re-locate pred's subtree.
		j := n.search(pred)
		if j < len(n.keys) && n.keys[j] == pred {
			return t.delete(n.children[j], pred)
		}
		return t.delete(n.children[j], pred)
	}
	t.ensureChild(n, i)
	j := n.search(key)
	return t.delete(n.children[j], key)
}

// maxKey returns the largest key in the subtree.
func (t *Tree) maxKey(n *bnode) int64 {
	for !n.leaf() {
		t.touch(n, false)
		n = n.children[len(n.children)-1]
	}
	t.touch(n, false)
	return n.keys[len(n.keys)-1]
}

// ensureChild guarantees child i has > minKeys keys before descending,
// borrowing from a sibling or merging.
func (t *Tree) ensureChild(n *bnode, i int) {
	if len(n.children) < 2 {
		// Only the root can reach a single child (after a merge of its
		// last two children); that child is the freshly merged node and
		// already has > minKeys keys, so there is nothing to fix here.
		// The empty root is collapsed at the end of Delete.
		return
	}
	if i >= len(n.children) {
		i = len(n.children) - 1
	}
	c := n.children[i]
	if len(c.keys) > t.minKeys {
		return
	}
	// Borrow from left sibling.
	if i > 0 && len(n.children[i-1].keys) > t.minKeys {
		left := n.children[i-1]
		c.keys = append(c.keys, 0)
		copy(c.keys[1:], c.keys)
		c.keys[0] = n.keys[i-1]
		n.keys[i-1] = left.keys[len(left.keys)-1]
		left.keys = left.keys[:len(left.keys)-1]
		if !c.leaf() {
			c.children = append(c.children, nil)
			copy(c.children[1:], c.children)
			c.children[0] = left.children[len(left.children)-1]
			left.children = left.children[:len(left.children)-1]
		}
		t.touch(left, true)
		t.touch(c, true)
		t.touch(n, true)
		return
	}
	// Borrow from right sibling.
	if i < len(n.children)-1 && len(n.children[i+1].keys) > t.minKeys {
		right := n.children[i+1]
		c.keys = append(c.keys, n.keys[i])
		n.keys[i] = right.keys[0]
		right.keys = append(right.keys[:0], right.keys[1:]...)
		if !c.leaf() {
			c.children = append(c.children, right.children[0])
			right.children = append(right.children[:0], right.children[1:]...)
		}
		t.touch(right, true)
		t.touch(c, true)
		t.touch(n, true)
		return
	}
	// Merge with a sibling.
	if i > 0 {
		i--
	}
	left, right := n.children[i], n.children[i+1]
	left.keys = append(left.keys, n.keys[i])
	left.keys = append(left.keys, right.keys...)
	if !left.leaf() {
		left.children = append(left.children, right.children...)
	}
	n.keys = append(n.keys[:i], n.keys[i+1:]...)
	n.children = append(n.children[:i+1], n.children[i+2:]...)
	t.alloc.Free(right.addr)
	t.touch(left, true)
	t.touch(n, true)
}

// Range appends all keys in [lo, hi] to out, in order.
func (t *Tree) Range(lo, hi int64, out []int64) []int64 {
	if lo > hi {
		return out
	}
	return t.rangeNode(t.root, lo, hi, out)
}

func (t *Tree) rangeNode(n *bnode, lo, hi int64, out []int64) []int64 {
	t.touch(n, false)
	i := n.search(lo)
	if n.leaf() {
		for ; i < len(n.keys) && n.keys[i] <= hi; i++ {
			out = append(out, n.keys[i])
		}
		return out
	}
	for ; i <= len(n.keys); i++ {
		out = t.rangeNode(n.children[i], lo, hi, out)
		if i < len(n.keys) {
			if n.keys[i] > hi {
				break
			}
			out = append(out, n.keys[i])
		}
	}
	return out
}

// CheckInvariants verifies B-tree structural invariants: key order,
// fanout bounds, uniform depth, and the count.
func (t *Tree) CheckInvariants() error {
	seen := 0
	var minDepth, maxDepth int
	minDepth = 1 << 30
	var walk func(n *bnode, depth int, lo, hi int64) error
	walk = func(n *bnode, depth int, lo, hi int64) error {
		if n != t.root && (len(n.keys) < t.minKeys || len(n.keys) > t.maxKeys) {
			return fmt.Errorf("btree: node with %d keys outside [%d, %d]",
				len(n.keys), t.minKeys, t.maxKeys)
		}
		for i, k := range n.keys {
			if k < lo || k > hi {
				return fmt.Errorf("btree: key %d outside subtree range [%d, %d]", k, lo, hi)
			}
			if i > 0 && n.keys[i-1] >= k {
				return fmt.Errorf("btree: keys out of order: %d then %d", n.keys[i-1], k)
			}
		}
		seen += len(n.keys)
		if n.leaf() {
			if depth < minDepth {
				minDepth = depth
			}
			if depth > maxDepth {
				maxDepth = depth
			}
			return nil
		}
		if len(n.children) != len(n.keys)+1 {
			return fmt.Errorf("btree: %d keys but %d children", len(n.keys), len(n.children))
		}
		for i, c := range n.children {
			clo, chi := lo, hi
			if i > 0 {
				clo = n.keys[i-1] + 1
			}
			if i < len(n.keys) {
				chi = n.keys[i] - 1
			}
			if err := walk(c, depth+1, clo, chi); err != nil {
				return err
			}
		}
		return nil
	}
	const inf = int64(^uint64(0) >> 1)
	if err := walk(t.root, 1, -inf-0, inf); err != nil {
		return err
	}
	if seen != t.count {
		return fmt.Errorf("btree: %d keys found, count %d", seen, t.count)
	}
	if t.count > 0 && minDepth != maxDepth {
		return fmt.Errorf("btree: leaves at depths %d..%d", minDepth, maxDepth)
	}
	return nil
}
