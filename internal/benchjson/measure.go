package benchjson

import (
	"runtime"
	"sort"
	"time"
)

// sampleEvery is the latency sampling stride: every Nth invocation is
// timed individually, so percentile collection costs two clock reads on
// ~3% of invocations instead of perturbing every one.
const sampleEvery = 32

// Measure runs fn in a closed loop for roughly d and reports Metrics.
// Each fn call performs batchOps logical operations (1 for point
// benchmarks): throughput and alloc rates count operations, while the
// latency percentiles are per invocation. Allocations are the process-
// wide heap delta over the window, which is exact for single-goroutine
// benchmarks and an honest end-to-end figure for concurrent ones.
func Measure(d time.Duration, batchOps int, fn func()) Metrics {
	if batchOps < 1 {
		batchOps = 1
	}
	// Warm up: one invocation outside the window so one-time lazy
	// initialization (pool fills, map growth) is not billed to the rate.
	fn()

	var samples []time.Duration
	var ms0, ms1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms0)
	calls := uint64(0)
	start := time.Now()
	deadline := start.Add(d)
	for {
		if calls%sampleEvery == 0 {
			t0 := time.Now()
			fn()
			samples = append(samples, time.Since(t0))
		} else {
			fn()
		}
		calls++
		// Check the clock once per sample stride on fast benchmarks; a
		// per-call time.Now would dominate sub-microsecond work.
		if calls%sampleEvery == 0 && !time.Now().Before(deadline) {
			break
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&ms1)

	ops := calls * uint64(batchOps)
	p50, p99, max := Quantiles(samples)
	m := Metrics{
		Ops:                 ops,
		ThroughputOpsPerSec: float64(ops) / elapsed.Seconds(),
		NsPerOp:             float64(elapsed.Nanoseconds()) / float64(ops),
		P50us:               p50,
		P99us:               p99,
		MaxUS:               max,
		AllocsPerOp:         float64(ms1.Mallocs-ms0.Mallocs) / float64(ops),
		BytesPerOp:          float64(ms1.TotalAlloc-ms0.TotalAlloc) / float64(ops),
	}
	if batchOps > 1 {
		m.BatchOps = batchOps
	}
	return m
}

// Quantiles reports the p50, p99, and max of a latency sample set in
// microseconds. Empty input reports zeros.
func Quantiles(samples []time.Duration) (p50, p99, max float64) {
	if len(samples) == 0 {
		return 0, 0, 0
	}
	sorted := make([]time.Duration, len(samples))
	copy(sorted, samples)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	at := func(p float64) float64 {
		return float64(sorted[int(p*float64(len(sorted)-1))].Nanoseconds()) / 1e3
	}
	return at(0.50), at(0.99), at(1.0)
}
