// Package benchjson defines the machine-readable performance
// trajectory committed at the repo root as BENCH_<area>.json files.
//
// Each file holds one Snapshot: an ordered list of Runs for one hot
// layer ("proto", "server", "shard", "checkpoint"), appended to by
// cmd/bench-trajectory. A Run is a labelled measurement session — a map
// from benchmark name to Metrics (throughput, p50/p99 latency,
// allocs/op) — so a regression is a diff between two array elements,
// not an archaeology project. The schema is validated on load and in
// CI; CompareThroughput is the regression gate.
//
// The format is deliberately append-only: the pre-optimization baseline
// a PR measured against stays in the file next to the run that beat it,
// so "2x faster" is a recorded pair of numbers, not prose.
package benchjson

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"time"
)

// SchemaVersion is bumped when a field changes meaning; loaders reject
// files from a different schema rather than misread them.
const SchemaVersion = 1

// Areas is the canonical list of measured hot layers, in pipeline
// order: wire codec, request dispatch, storage mutation, persistence.
var Areas = []string{"proto", "server", "shard", "checkpoint"}

// Metrics is one benchmark's measured result within a Run.
type Metrics struct {
	// Ops is the number of operations completed in the window.
	Ops uint64 `json:"ops"`
	// ThroughputOpsPerSec is ops divided by the wall-clock window.
	ThroughputOpsPerSec float64 `json:"throughput_ops_per_sec"`
	// NsPerOp is the inverse view of throughput (wall time, not CPU).
	NsPerOp float64 `json:"ns_per_op"`
	// P50us / P99us / MaxUS are sampled per-invocation latencies in
	// microseconds. For batch-shaped benchmarks an invocation covers the
	// whole batch while throughput counts its items; BatchOps records
	// that factor.
	P50us float64 `json:"p50_us"`
	P99us float64 `json:"p99_us"`
	MaxUS float64 `json:"max_us"`
	// AllocsPerOp and BytesPerOp are heap allocation deltas (process-
	// wide runtime.MemStats) divided by ops.
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	// BatchOps is the number of ops one timed invocation performs (1 for
	// point benchmarks).
	BatchOps int `json:"batch_ops,omitempty"`
}

// Run is one measurement session: every benchmark of one area, measured
// on one machine at one commit, under one label.
type Run struct {
	// Label names the run in the trajectory, e.g. "pr6-baseline" (the
	// pre-optimization measurement) or "pr6-optimized".
	Label string `json:"label"`
	// When is the measurement time, RFC 3339.
	When string `json:"when"`
	// GoVersion and GoMaxProcs qualify the numbers: cross-machine
	// comparisons are indicative, same-machine pairs are the contract.
	GoVersion  string `json:"go_version"`
	GoMaxProcs int    `json:"gomaxprocs"`
	// Short marks a smoke-length run (CI); short runs are valid for the
	// regression gate but should not replace a full baseline.
	Short bool `json:"short,omitempty"`
	// Benchmarks maps benchmark name to its measured metrics.
	Benchmarks map[string]Metrics `json:"benchmarks"`
}

// Snapshot is one BENCH_<area>.json document.
type Snapshot struct {
	Schema int    `json:"schema"`
	Area   string `json:"area"`
	Runs   []Run  `json:"runs"`
}

// FileName returns the repo-root file name for an area's trajectory.
func FileName(area string) string { return "BENCH_" + area + ".json" }

// NewRun returns an empty run stamped with the current environment.
func NewRun(label string, short bool) Run {
	return Run{
		Label:      label,
		When:       time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Short:      short,
		Benchmarks: map[string]Metrics{},
	}
}

// Load reads and validates one snapshot file.
func Load(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("benchjson: %s: %w", path, err)
	}
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("benchjson: %s: %w", path, err)
	}
	return &s, nil
}

// Save validates s and writes it to path (indented, trailing newline)
// via a temp-file rename so a crash cannot leave a torn snapshot.
func Save(path string, s *Snapshot) error {
	if err := s.Validate(); err != nil {
		return fmt.Errorf("benchjson: refusing to save %s: %w", path, err)
	}
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// Validate checks the structural invariants every snapshot must hold.
func (s *Snapshot) Validate() error {
	if s.Schema != SchemaVersion {
		return fmt.Errorf("schema %d, this tool speaks %d", s.Schema, SchemaVersion)
	}
	if s.Area == "" {
		return fmt.Errorf("empty area")
	}
	if len(s.Runs) == 0 {
		return fmt.Errorf("no runs")
	}
	for i, r := range s.Runs {
		if r.Label == "" {
			return fmt.Errorf("run %d: empty label", i)
		}
		if len(r.Benchmarks) == 0 {
			return fmt.Errorf("run %q: no benchmarks", r.Label)
		}
		for name, m := range r.Benchmarks {
			if name == "" {
				return fmt.Errorf("run %q: empty benchmark name", r.Label)
			}
			for _, v := range []struct {
				field string
				val   float64
			}{
				{"throughput_ops_per_sec", m.ThroughputOpsPerSec},
				{"ns_per_op", m.NsPerOp},
				{"p50_us", m.P50us},
				{"p99_us", m.P99us},
				{"max_us", m.MaxUS},
				{"allocs_per_op", m.AllocsPerOp},
				{"bytes_per_op", m.BytesPerOp},
			} {
				if math.IsNaN(v.val) || math.IsInf(v.val, 0) || v.val < 0 {
					return fmt.Errorf("run %q: %s: bad %s %v", r.Label, name, v.field, v.val)
				}
			}
			if m.ThroughputOpsPerSec == 0 || m.Ops == 0 {
				return fmt.Errorf("run %q: %s: zero throughput", r.Label, name)
			}
		}
	}
	return nil
}

// Append adds a run to the trajectory.
func (s *Snapshot) Append(r Run) { s.Runs = append(s.Runs, r) }

// Latest returns the most recent run, or nil for an empty snapshot.
func (s *Snapshot) Latest() *Run {
	if len(s.Runs) == 0 {
		return nil
	}
	return &s.Runs[len(s.Runs)-1]
}

// RunByLabel returns the first run with the given label, or nil.
func (s *Snapshot) RunByLabel(label string) *Run {
	for i := range s.Runs {
		if s.Runs[i].Label == label {
			return &s.Runs[i]
		}
	}
	return nil
}

// CompareThroughput is the regression gate: for every benchmark present
// in both runs, cur's throughput must be at least (1-maxRegress) of
// base's. It returns one error naming every violation, or nil.
func CompareThroughput(base, cur *Run, maxRegress float64) error {
	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	var bad []string
	for _, name := range names {
		b := base.Benchmarks[name]
		c, ok := cur.Benchmarks[name]
		if !ok {
			continue // a removed benchmark is a schema change, not a regression
		}
		floor := b.ThroughputOpsPerSec * (1 - maxRegress)
		if c.ThroughputOpsPerSec < floor {
			bad = append(bad, fmt.Sprintf(
				"%s: %.0f ops/s vs committed %.0f (floor %.0f, -%.1f%%)",
				name, c.ThroughputOpsPerSec, b.ThroughputOpsPerSec, floor,
				100*(1-c.ThroughputOpsPerSec/b.ThroughputOpsPerSec)))
		}
	}
	if len(bad) > 0 {
		return fmt.Errorf("throughput regression past %.0f%%:\n  %s",
			maxRegress*100, joinLines(bad))
	}
	return nil
}

func joinLines(lines []string) string {
	out := ""
	for i, l := range lines {
		if i > 0 {
			out += "\n  "
		}
		out += l
	}
	return out
}

// LoadAll loads every area's snapshot from dir, skipping absent files.
// It errors on a file that exists but fails validation.
func LoadAll(dir string) (map[string]*Snapshot, error) {
	out := map[string]*Snapshot{}
	for _, area := range Areas {
		path := filepath.Join(dir, FileName(area))
		s, err := Load(path)
		if os.IsNotExist(err) {
			continue
		}
		if err != nil {
			return nil, err
		}
		if s.Area != area {
			return nil, fmt.Errorf("benchjson: %s declares area %q", path, s.Area)
		}
		out[area] = s
	}
	return out, nil
}
