package benchjson

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func sampleRun(label string, tput float64) Run {
	r := NewRun(label, false)
	r.Benchmarks["encode"] = Metrics{
		Ops: 1000, ThroughputOpsPerSec: tput, NsPerOp: 1e9 / tput,
		P50us: 1, P99us: 2, MaxUS: 3, AllocsPerOp: 0.5, BytesPerOp: 16,
	}
	return r
}

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, FileName("proto"))
	s := &Snapshot{Schema: SchemaVersion, Area: "proto"}
	s.Append(sampleRun("baseline", 1e6))
	s.Append(sampleRun("optimized", 2e6))
	if err := Save(path, s); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Area != "proto" || len(got.Runs) != 2 {
		t.Fatalf("round trip lost data: %+v", got)
	}
	if got.Latest().Label != "optimized" {
		t.Fatalf("latest = %q", got.Latest().Label)
	}
	if got.RunByLabel("baseline") == nil || got.RunByLabel("missing") != nil {
		t.Fatal("RunByLabel lookup broken")
	}
}

func TestValidateRejections(t *testing.T) {
	base := func() *Snapshot {
		s := &Snapshot{Schema: SchemaVersion, Area: "proto"}
		s.Append(sampleRun("ok", 1e6))
		return s
	}
	cases := []struct {
		name  string
		mut   func(*Snapshot)
		wants string
	}{
		{"wrong schema", func(s *Snapshot) { s.Schema = 99 }, "schema"},
		{"empty area", func(s *Snapshot) { s.Area = "" }, "area"},
		{"no runs", func(s *Snapshot) { s.Runs = nil }, "no runs"},
		{"empty label", func(s *Snapshot) { s.Runs[0].Label = "" }, "label"},
		{"no benchmarks", func(s *Snapshot) { s.Runs[0].Benchmarks = nil }, "no benchmarks"},
		{"nan metric", func(s *Snapshot) {
			m := s.Runs[0].Benchmarks["encode"]
			m.P99us = math.NaN()
			s.Runs[0].Benchmarks["encode"] = m
		}, "p99_us"},
		{"negative metric", func(s *Snapshot) {
			m := s.Runs[0].Benchmarks["encode"]
			m.AllocsPerOp = -1
			s.Runs[0].Benchmarks["encode"] = m
		}, "allocs_per_op"},
		{"zero throughput", func(s *Snapshot) {
			m := s.Runs[0].Benchmarks["encode"]
			m.ThroughputOpsPerSec = 0
			s.Runs[0].Benchmarks["encode"] = m
		}, "zero throughput"},
	}
	for _, tc := range cases {
		s := base()
		tc.mut(s)
		err := s.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.wants) {
			t.Errorf("%s: error = %v, want mention of %q", tc.name, err, tc.wants)
		}
	}
	if err := base().Validate(); err != nil {
		t.Fatalf("valid snapshot rejected: %v", err)
	}
}

func TestSaveRefusesInvalid(t *testing.T) {
	dir := t.TempDir()
	s := &Snapshot{Schema: 99, Area: "proto"}
	if err := Save(filepath.Join(dir, "x.json"), s); err == nil {
		t.Fatal("Save accepted an invalid snapshot")
	}
}

func TestCompareThroughput(t *testing.T) {
	base := sampleRun("base", 1000)
	ok := sampleRun("cur", 900) // -10%: inside a 20% budget
	if err := CompareThroughput(&base, &ok, 0.20); err != nil {
		t.Fatalf("10%% dip flagged: %v", err)
	}
	bad := sampleRun("cur", 700) // -30%: past the budget
	err := CompareThroughput(&base, &bad, 0.20)
	if err == nil || !strings.Contains(err.Error(), "encode") {
		t.Fatalf("30%% regression not flagged: %v", err)
	}
	// A benchmark missing from cur is not a regression (renames are
	// schema changes handled by review, not the gate).
	delete(bad.Benchmarks, "encode")
	if err := CompareThroughput(&base, &bad, 0.20); err != nil {
		t.Fatalf("missing benchmark flagged: %v", err)
	}
}

func TestLoadAll(t *testing.T) {
	dir := t.TempDir()
	s := &Snapshot{Schema: SchemaVersion, Area: "shard"}
	s.Append(sampleRun("r", 1e6))
	if err := Save(filepath.Join(dir, FileName("shard")), s); err != nil {
		t.Fatal(err)
	}
	all, err := LoadAll(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 1 || all["shard"] == nil {
		t.Fatalf("LoadAll = %v", all)
	}
	// A corrupt file must fail the load, not be skipped.
	if err := os.WriteFile(filepath.Join(dir, FileName("proto")), []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadAll(dir); err == nil {
		t.Fatal("corrupt snapshot not rejected")
	}
	// A file whose declared area disagrees with its name must fail too.
	wrong := &Snapshot{Schema: SchemaVersion, Area: "shard"}
	wrong.Append(sampleRun("r", 1e6))
	if err := Save(filepath.Join(dir, FileName("proto")), wrong); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadAll(dir); err == nil {
		t.Fatal("area/name mismatch not rejected")
	}
}

func TestMeasure(t *testing.T) {
	n := 0
	m := Measure(20*time.Millisecond, 1, func() { n++ })
	if m.Ops == 0 || m.ThroughputOpsPerSec <= 0 || m.NsPerOp <= 0 {
		t.Fatalf("empty metrics: %+v", m)
	}
	if uint64(n) != m.Ops+1 { // +1 warm-up call outside the window
		t.Fatalf("ops %d but fn ran %d times", m.Ops, n)
	}
	mb := Measure(10*time.Millisecond, 64, func() {})
	if mb.BatchOps != 64 || mb.Ops%64 != 0 {
		t.Fatalf("batch accounting wrong: %+v", mb)
	}
	if mb.Ops <= m.Ops {
		t.Fatalf("64-op batches should count more ops: %d vs %d", mb.Ops, m.Ops)
	}
}

func TestQuantiles(t *testing.T) {
	var s []time.Duration
	for i := 1; i <= 100; i++ {
		s = append(s, time.Duration(i)*time.Microsecond)
	}
	p50, p99, max := Quantiles(s)
	if p50 < 49 || p50 > 51 || p99 < 98 || p99 > 100 || max != 100 {
		t.Fatalf("quantiles p50=%v p99=%v max=%v", p50, p99, max)
	}
	if a, b, c := Quantiles(nil); a != 0 || b != 0 || c != 0 {
		t.Fatal("empty quantiles not zero")
	}
}
