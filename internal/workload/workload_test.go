package workload

import (
	"testing"
	"testing/quick"
)

func TestRankBounds(t *testing.T) {
	for _, kind := range Kinds() {
		src := NewRankSource(kind, 1)
		n := 0
		for i := 0; i < 5000; i++ {
			r := src.Next(n)
			if r < 0 || r > n {
				t.Fatalf("%v: Next(%d) = %d out of [0, %d]", kind, n, r, n)
			}
			n++
		}
	}
}

func TestKindString(t *testing.T) {
	want := map[Kind]string{
		Uniform: "uniform", Sequential: "sequential", Reverse: "reverse",
		Hammer: "hammer", Clustered: "clustered", Zipf: "zipf",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), s)
		}
	}
	if Kind(99).String() != "workload.Kind(99)" {
		t.Error("unknown kind string wrong")
	}
}

func TestSequentialReverseHammer(t *testing.T) {
	seq := NewRankSource(Sequential, 1)
	rev := NewRankSource(Reverse, 1)
	ham := NewRankSource(Hammer, 1)
	ham.SetHammerFraction(0.5)
	for n := 0; n < 100; n++ {
		if seq.Next(n) != n {
			t.Fatal("sequential not at back")
		}
		if rev.Next(n) != 0 {
			t.Fatal("reverse not at front")
		}
		if got := ham.Next(n); got != n/2 {
			t.Fatalf("hammer(0.5) at n=%d: %d", n, got)
		}
	}
}

func TestHammerFractionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewRankSource(Hammer, 1).SetHammerFraction(1.5)
}

func TestUniformIsSpread(t *testing.T) {
	src := NewRankSource(Uniform, 7)
	const n = 1000
	var counts [4]int
	for i := 0; i < 40000; i++ {
		counts[src.Next(n)*4/(n+1)]++
	}
	for q, c := range counts {
		if c < 8000 || c > 12000 {
			t.Fatalf("quartile %d has %d/40000 inserts", q, c)
		}
	}
}

func TestZipfSkewsFront(t *testing.T) {
	src := NewRankSource(Zipf, 9)
	const n = 1000
	front := 0
	const trials = 20000
	for i := 0; i < trials; i++ {
		if src.Next(n) < n/4 {
			front++
		}
	}
	// With s=2, P(rank < n/4) = (1/4)^(1/2) = 0.5, well above uniform 25%.
	if float64(front)/trials < 0.4 {
		t.Fatalf("zipf front quartile only %.2f", float64(front)/trials)
	}
}

func TestClusteredRuns(t *testing.T) {
	src := NewRankSource(Clustered, 11)
	n := 10000
	consecutive := 0
	prev := -10
	for i := 0; i < 1000; i++ {
		r := src.Next(n)
		if r == prev+1 {
			consecutive++
		}
		prev = r
	}
	if consecutive < 800 {
		t.Fatalf("only %d/1000 consecutive inserts in clustered runs", consecutive)
	}
}

func TestTraceValidity(t *testing.T) {
	f := func(seed uint64, kindRaw uint8) bool {
		kind := Kinds()[int(kindRaw)%len(Kinds())]
		ops := Trace(kind, seed, 500, 3, 1, 1)
		if len(ops) != 500 {
			return false
		}
		n := 0
		for _, op := range ops {
			switch op.Kind {
			case OpInsert:
				if op.Rank < 0 || op.Rank > n {
					return false
				}
				n++
			case OpDelete:
				if n == 0 || op.Rank < 0 || op.Rank >= n {
					return false
				}
				n--
			case OpQuery:
				if n == 0 || op.Rank < 0 || op.Rank >= n || op.Len < 1 || op.Rank+op.Len > n {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestTracePanicsOnBadWeights(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Trace(Uniform, 1, 10, 0, 1, 1)
}

func TestKeySource(t *testing.T) {
	seq := NewKeySource(Sequential, 1)
	a, b := seq.Next(), seq.Next()
	if b != a+1 {
		t.Fatal("sequential keys not increasing")
	}
	rev := NewKeySource(Reverse, 1)
	c, d := rev.Next(), rev.Next()
	if d != c-1 {
		t.Fatal("reverse keys not decreasing")
	}
	uni := NewKeySource(Uniform, 1)
	seen := map[int64]bool{}
	for i := 0; i < 1000; i++ {
		seen[uni.Next()] = true
	}
	if len(seen) < 990 {
		t.Fatalf("uniform keys collide too much: %d distinct", len(seen))
	}
}
