// Package workload provides the insertion/deletion pattern generators
// used across the experiment harness. The paper's evaluation uses
// uniform random inserts (Figure 2) and sequential inserts (§4.3's
// uniformity experiment); the adversarial patterns — front-loaded,
// back-loaded, alternating, clustered and Zipfian — exercise exactly
// the history-dependence hazards §1.2 describes ("if you repeatedly
// insert towards the front of an array ... the front of the array will
// be denser than the back").
package workload

import (
	"fmt"
	"math"

	"repro/internal/xrand"
)

// Kind names an access pattern.
type Kind int

const (
	// Uniform inserts at uniformly random ranks (Figure 2's workload).
	Uniform Kind = iota
	// Sequential inserts always at the back (bulk load, §4.3).
	Sequential
	// Reverse inserts always at the front ("pouring sand at one end").
	Reverse
	// Hammer inserts repeatedly at a fixed relative position.
	Hammer
	// Clustered inserts in runs of consecutive ranks at random spots.
	Clustered
	// Zipf inserts at rank positions drawn from a Zipf-like
	// distribution over the current array, skewed to the front.
	Zipf
)

// String returns the pattern name.
func (k Kind) String() string {
	switch k {
	case Uniform:
		return "uniform"
	case Sequential:
		return "sequential"
	case Reverse:
		return "reverse"
	case Hammer:
		return "hammer"
	case Clustered:
		return "clustered"
	case Zipf:
		return "zipf"
	default:
		return fmt.Sprintf("workload.Kind(%d)", int(k))
	}
}

// Kinds lists every pattern, for sweep loops.
func Kinds() []Kind {
	return []Kind{Uniform, Sequential, Reverse, Hammer, Clustered, Zipf}
}

// RankSource produces a stream of insertion ranks for a growing
// sequence: Next(n) returns a rank in [0, n] given the current size n.
type RankSource struct {
	kind Kind
	rng  *xrand.Source

	hammerFrac float64 // Hammer: relative position in [0, 1]
	runLeft    int     // Clustered: remaining inserts in the current run
	runRank    int     // Clustered: current run position
	zipfS      float64 // Zipf: skew parameter
}

// NewRankSource returns a rank stream of the given kind.
func NewRankSource(kind Kind, seed uint64) *RankSource {
	return &RankSource{
		kind:       kind,
		rng:        xrand.New(seed),
		hammerFrac: 0.25,
		zipfS:      2.0,
	}
}

// SetHammerFraction sets the relative position Hammer inserts at.
func (r *RankSource) SetHammerFraction(f float64) {
	if f < 0 || f > 1 {
		panic("workload: hammer fraction outside [0, 1]")
	}
	r.hammerFrac = f
}

// Next returns the next insertion rank for a structure currently
// holding n elements; the result is always in [0, n].
func (r *RankSource) Next(n int) int {
	switch r.kind {
	case Uniform:
		return r.rng.Intn(n + 1)
	case Sequential:
		return n
	case Reverse:
		return 0
	case Hammer:
		return int(r.hammerFrac * float64(n))
	case Clustered:
		if r.runLeft == 0 {
			r.runLeft = 16 + r.rng.Intn(48)
			r.runRank = r.rng.Intn(n + 1)
		}
		r.runLeft--
		if r.runRank > n {
			r.runRank = n
		}
		rank := r.runRank
		r.runRank++ // consecutive ranks within the run
		return rank
	case Zipf:
		// Inverse-CDF sampling of P(i) ∝ 1/(i+1)^s over [0, n].
		if n == 0 {
			return 0
		}
		u := r.rng.Float64()
		// Approximate inverse: rank = (n+1)^(u^(1/(s-1)))-ish is fussy;
		// use the standard transform rank = floor((n+1) * u^s) which
		// skews mass toward 0 monotonically in s.
		rank := int(float64(n+1) * math.Pow(u, r.zipfS))
		if rank > n {
			rank = n
		}
		return rank
	default:
		panic("workload: unknown kind")
	}
}

// MixedOp is one step of a mixed insert/delete/query trace.
type MixedOp struct {
	Kind OpKind
	Rank int // insertion or deletion rank; query start
	Len  int // query length (Query ops only)
}

// OpKind distinguishes trace steps.
type OpKind int

const (
	OpInsert OpKind = iota
	OpDelete
	OpQuery
)

// Trace generates a reproducible mixed trace of length steps with the
// given insert/delete/query weights (normalized internally); deletions
// and queries are skipped while the structure is empty. The rank stream
// for inserts follows kind; deletes and queries use uniform ranks.
func Trace(kind Kind, seed uint64, steps int, wIns, wDel, wQry int) []MixedOp {
	if wIns <= 0 || wDel < 0 || wQry < 0 {
		panic("workload: invalid weights")
	}
	src := NewRankSource(kind, seed)
	rng := xrand.New(seed + 1)
	total := wIns + wDel + wQry
	ops := make([]MixedOp, 0, steps)
	n := 0
	for len(ops) < steps {
		r := rng.Intn(total)
		switch {
		case r < wIns:
			rank := src.Next(n)
			ops = append(ops, MixedOp{Kind: OpInsert, Rank: rank})
			n++
		case r < wIns+wDel:
			if n == 0 {
				continue
			}
			rank := rng.Intn(n)
			ops = append(ops, MixedOp{Kind: OpDelete, Rank: rank})
			n--
		default:
			if n == 0 {
				continue
			}
			start := rng.Intn(n)
			length := 1 + rng.Intn(n-start)
			if length > 256 {
				length = 256
			}
			ops = append(ops, MixedOp{Kind: OpQuery, Rank: start, Len: length})
		}
	}
	return ops
}

// KeySource produces keys for key-based dictionaries.
type KeySource struct {
	rng  *xrand.Source
	kind Kind
	next int64
}

// NewKeySource returns a key stream: Uniform draws random 40-bit keys,
// Sequential counts up, Reverse counts down from a high start, others
// fall back to Uniform.
func NewKeySource(kind Kind, seed uint64) *KeySource {
	return &KeySource{rng: xrand.New(seed), kind: kind, next: 1 << 40}
}

// Next returns the next key.
func (k *KeySource) Next() int64 {
	switch k.kind {
	case Sequential:
		k.next++
		return k.next
	case Reverse:
		k.next--
		return k.next
	default:
		return int64(k.rng.Uint64n(1 << 40))
	}
}
