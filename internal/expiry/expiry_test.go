package expiry

import (
	"sync"
	"testing"
	"time"
)

func TestLive(t *testing.T) {
	cases := []struct {
		exp, epoch int64
		want       bool
	}{
		{0, 0, true},         // no expiry, no epoch
		{0, 1 << 40, true},   // no expiry, far future
		{1, 0, true},         // expiry ahead of epoch 0
		{100, 99, true},      // strictly before the deadline
		{100, 100, false},    // exactly at the deadline: dead
		{100, 101, false},    // past the deadline
		{-5, 0, false},       // malformed negative expiry: never live
		{5, 1 << 40, false},  // long dead
		{1 << 40, 100, true}, // far-future expiry
		{1 << 40, 1<<40 - 1, true},
	}
	for _, c := range cases {
		if got := Live(c.exp, c.epoch); got != c.want {
			t.Errorf("Live(%d, %d) = %v, want %v", c.exp, c.epoch, got, c.want)
		}
	}
}

func TestEpochNilClock(t *testing.T) {
	if got := Epoch(nil); got != 0 {
		t.Fatalf("Epoch(nil) = %d, want 0", got)
	}
	if got := Epoch(NewManual(77)); got != 77 {
		t.Fatalf("Epoch(manual@77) = %d, want 77", got)
	}
}

func TestSystemClock(t *testing.T) {
	now := time.Now().Unix()
	got := System().Now()
	if got < now || got > now+2 {
		t.Fatalf("System().Now() = %d, wall clock says %d", got, now)
	}
}

func TestManualClock(t *testing.T) {
	m := NewManual(10)
	if m.Now() != 10 {
		t.Fatalf("Now = %d, want 10", m.Now())
	}
	if got := m.Advance(5); got != 15 {
		t.Fatalf("Advance(5) = %d, want 15", got)
	}
	m.Set(100)
	if m.Now() != 100 {
		t.Fatalf("Now after Set = %d, want 100", m.Now())
	}
}

func TestScheduleEpochTriggered(t *testing.T) {
	clk := NewManual(0)
	s := NewSchedule(clk)

	// Epoch 0 is never due, however often it is polled.
	for i := 0; i < 3; i++ {
		if e, due := s.Due(); due {
			t.Fatalf("poll %d: due at epoch %d, want quiet at epoch 0", i, e)
		}
	}

	// The clock moving makes exactly one sweep due, at the new epoch.
	clk.Set(5)
	e, due := s.Due()
	if !due || e != 5 {
		t.Fatalf("Due after advance = (%d, %v), want (5, true)", e, due)
	}
	// Still due until marked done — polling must not consume the owe.
	if _, due := s.Due(); !due {
		t.Fatal("second poll before MarkDone is not due")
	}
	s.MarkDone(5)
	if _, due := s.Due(); due {
		t.Fatal("due again immediately after MarkDone at the same epoch")
	}

	// A later epoch owes again; a stale MarkDone cannot regress it.
	clk.Set(9)
	s.MarkDone(5) // stale
	if e, due := s.Due(); !due || e != 9 {
		t.Fatalf("Due at epoch 9 = (%d, %v), want (9, true)", e, due)
	}
	s.MarkDone(9)
	if _, due := s.Due(); due {
		t.Fatal("due after MarkDone(9)")
	}
}

func TestScheduleConcurrent(t *testing.T) {
	clk := NewManual(1)
	s := NewSchedule(clk)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := int64(1); j < 200; j++ {
				clk.Set(j)
				if e, due := s.Due(); due {
					s.MarkDone(e)
				}
			}
		}()
	}
	wg.Wait()
	clk.Set(1000)
	if e, due := s.Due(); !due || e != 1000 {
		t.Fatalf("after churn, Due = (%d, %v), want (1000, true)", e, due)
	}
}
