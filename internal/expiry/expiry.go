// Package expiry defines the history-independent TTL model shared by
// every layer of the database: the epoch clock, the liveness predicate,
// and the sweep schedule.
//
// The design constraint is the same one the rest of the system lives
// under: nothing on persistent storage may depend on WHEN anything
// happened — only on what the logical contents are. Expiry therefore
// cannot be implemented the usual way (a reaper that deletes entries
// whenever it happens to run, leaving its timing fingerprinted in the
// structure). Instead:
//
//   - Every entry carries an optional absolute expiry epoch (unix
//     seconds; 0 = never expires). The expiry is part of the entry's
//     LOGICAL state — it is echoed back by GetTTL — so two stores with
//     the same (key, value, expiry) set are "equal contents" and must
//     produce byte-identical canonical images.
//
//   - The logical state at epoch E is a pure function: exactly the
//     entries with Live(exp, E). Reads filter lazily against the
//     current epoch, so an entry is invisible from the moment it
//     expires, whether or not anything has physically removed it yet.
//
//   - The sweep physically removes the entries that are already
//     logically dead at epoch E. Because a sweep at epoch E always
//     removes exactly {entries with exp != 0, exp <= E}, the surviving
//     contents — and therefore the canonical images — are a pure
//     function of (prior contents, E). WHEN the sweep ran, how many
//     sweeps ran, or whether expired entries were instead removed one
//     by one, is unrecoverable from the bytes. Sweep timing never
//     reaches the image.
//
// This package owns the model; repro/internal/shard executes the lazy
// filtering and the per-shard sweep under the shard locks, and
// repro/internal/durable sweeps at the current epoch before rendering a
// checkpoint so committed directories always hold the live-set-at-E.
package expiry

import (
	"sync"
	"sync/atomic"
	"time"
)

// Clock supplies the epoch: the current time in unix seconds. Epochs
// must be non-negative and non-decreasing; epoch 0 means "no epoch has
// ever passed", under which nothing expires.
type Clock interface {
	Now() int64
}

// Live reports whether an entry with absolute expiry exp is logically
// present at the given epoch: exp == 0 (no expiry) or exp strictly in
// the future. It is THE liveness predicate — every layer must agree on
// it, or reads and sweeps would disagree about the logical state.
func Live(exp, epoch int64) bool {
	return exp == 0 || exp > epoch
}

// Epoch returns c's current epoch, treating a nil clock as epoch 0
// (nothing expires). Stores without TTL workloads never construct a
// clock and pay nothing.
func Epoch(c Clock) int64 {
	if c == nil {
		return 0
	}
	return c.Now()
}

// System returns the wall clock: unix seconds.
func System() Clock { return systemClock{} }

type systemClock struct{}

func (systemClock) Now() int64 { return time.Now().Unix() }

// Manual is a settable clock for tests and deterministic drills: the
// epoch is exactly what the test last set, so "time passes" only when
// the schedule says so. Safe for concurrent use.
type Manual struct {
	epoch atomic.Int64
}

// NewManual returns a manual clock at the given epoch.
func NewManual(epoch int64) *Manual {
	m := &Manual{}
	m.epoch.Store(epoch)
	return m
}

// Now returns the current manual epoch.
func (m *Manual) Now() int64 { return m.epoch.Load() }

// Set moves the clock to epoch.
func (m *Manual) Set(epoch int64) { m.epoch.Store(epoch) }

// Advance moves the clock forward by d epochs and returns the new
// epoch.
func (m *Manual) Advance(d int64) int64 { return m.epoch.Add(d) }

// Schedule decides when a sweep is owed: once per epoch transition,
// never on a timer's own authority. A sweeper polls Due; a true result
// hands it the epoch to sweep at, and MarkDone records that the epoch
// has been handled so the next poll is quiet until the clock moves
// again. This is what makes sweeping EPOCH-triggered rather than
// schedule-triggered — two servers polling at wildly different rates
// still sweep at exactly the same epochs, so their physical states
// (and their canonical images) stay equal.
type Schedule struct {
	clock Clock

	mu   sync.Mutex
	last int64 // highest epoch already swept (0: none)
}

// NewSchedule returns a sweep schedule over c.
func NewSchedule(c Clock) *Schedule { return &Schedule{clock: c} }

// Due reports whether a sweep is owed and at which epoch: the clock has
// advanced past the last MarkDone (epoch 0 is never due — nothing can
// be expired at it).
func (s *Schedule) Due() (epoch int64, due bool) {
	epoch = Epoch(s.clock)
	if epoch <= 0 {
		return epoch, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return epoch, epoch > s.last
}

// MarkDone records that a sweep at epoch has completed. Older epochs
// never regress the mark.
func (s *Schedule) MarkDone(epoch int64) {
	s.mu.Lock()
	if epoch > s.last {
		s.last = epoch
	}
	s.mu.Unlock()
}
