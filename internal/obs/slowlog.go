package obs

import (
	"io"
	"strconv"
	"sync"
	"time"
)

// SlowOp is one slow operation's record. The struct is the whole
// forensic-cleanliness argument for the slow-op log: there is no field
// that *can* hold key or value bytes — only the opcode name (a fixed
// vocabulary), the client-chosen request id (a sequence number, not
// data), the shard index, payload sizes, the coalesced batch size, and
// phase durations. A log shaped this way cannot become the operation
// history the storage layer erases, no matter what gets logged or how
// long the log is retained. Do not add payload-carrying fields; the
// forensic tests grep emitted logs for key/value bytes and will fail.
type SlowOp struct {
	Op       string // opcode name, e.g. "GET"
	ReqID    uint64 // wire request id
	Shard    int    // routing shard for single-key ops, -1 otherwise
	BytesIn  int    // request payload bytes
	BytesOut int    // reply payload bytes
	Batch    int    // ops in the coalesced write batch (0: not coalesced)

	Total  time.Duration // receipt → reply enqueued
	Decode time.Duration // payload decode
	Wait   time.Duration // coalesce-wait (writes) / in-flight-write barrier (reads)
	Apply  time.Duration // store/db work
	Encode time.Duration // reply build + enqueue

	// Trace is the kept trace id when the op was traced (0 otherwise:
	// the trace= field is omitted). A uint64 by construction — the
	// correlation handle renders as hex and can never carry payload
	// bytes; the forensic test asserts every emitted trace= value is a
	// bare hex id.
	Trace uint64
}

// defaultSlowLogPerSec bounds emitted lines per wall-clock second. A
// pathological workload (every op slow) costs a bounded trickle of
// log I/O; dropped records are counted, never silently lost.
const defaultSlowLogPerSec = 128

// SlowLog writes sampled structured records of operations slower than
// a threshold, one logfmt line per record, rate-limited per second.
// A nil *SlowLog is valid and records nothing.
type SlowLog struct {
	threshold time.Duration
	perSec    int

	logged  *Counter
	dropped *Counter

	mu       sync.Mutex
	w        io.Writer
	winStart int64 // unix second of the current rate window
	winCount int
	buf      []byte // line scratch, reused under mu
}

// NewSlowLog returns a slow-op log writing to w for operations taking
// at least threshold. Counters for emitted and rate-dropped records
// are registered on reg (which may be nil). If w is nil or threshold
// is non-positive, NewSlowLog returns nil — the disabled log.
func NewSlowLog(w io.Writer, threshold time.Duration, reg *Registry) *SlowLog {
	if w == nil || threshold <= 0 {
		return nil
	}
	return &SlowLog{
		threshold: threshold,
		perSec:    defaultSlowLogPerSec,
		logged:    reg.Counter("hidb_slow_ops_total", "slow-op log records emitted"),
		dropped:   reg.Counter("hidb_slow_ops_dropped_total", "slow-op records dropped by the per-second rate limit"),
		w:         w,
	}
}

// Slow reports whether a total duration crosses the log's threshold.
// Callers use it to keep record construction off the fast path.
func (l *SlowLog) Slow(d time.Duration) bool {
	return l != nil && d >= l.threshold
}

// Record emits one slow-op line (subject to the rate limit). Safe for
// concurrent use.
func (l *SlowLog) Record(rec SlowOp) {
	if l == nil {
		return
	}
	now := time.Now().Unix()
	l.mu.Lock()
	if now != l.winStart {
		l.winStart, l.winCount = now, 0
	}
	if l.winCount >= l.perSec {
		l.mu.Unlock()
		l.dropped.Inc()
		return
	}
	l.winCount++
	b := l.buf[:0]
	b = append(b, "slowop ts="...)
	b = strconv.AppendInt(b, now, 10)
	b = append(b, " op="...)
	b = append(b, rec.Op...)
	b = append(b, " id="...)
	b = strconv.AppendUint(b, rec.ReqID, 10)
	b = append(b, " shard="...)
	b = strconv.AppendInt(b, int64(rec.Shard), 10)
	b = append(b, " in="...)
	b = strconv.AppendInt(b, int64(rec.BytesIn), 10)
	b = append(b, " out="...)
	b = strconv.AppendInt(b, int64(rec.BytesOut), 10)
	b = append(b, " batch="...)
	b = strconv.AppendInt(b, int64(rec.Batch), 10)
	if rec.Trace != 0 {
		b = append(b, " trace="...)
		b = strconv.AppendUint(b, rec.Trace, 16)
	}
	b = appendDur(b, " total_us=", rec.Total)
	b = appendDur(b, " decode_us=", rec.Decode)
	b = appendDur(b, " wait_us=", rec.Wait)
	b = appendDur(b, " apply_us=", rec.Apply)
	b = appendDur(b, " encode_us=", rec.Encode)
	b = append(b, '\n')
	l.buf = b
	l.w.Write(b) //nolint:errcheck // logging is best-effort by design
	l.mu.Unlock()
	l.logged.Inc()
}

func appendDur(b []byte, label string, d time.Duration) []byte {
	b = append(b, label...)
	return strconv.AppendInt(b, d.Microseconds(), 10)
}
