package obs_test

// TestObservabilityDocLockstep keeps docs/OBSERVABILITY.md and the
// live metric set from drifting apart: it builds the full stack —
// durable DB, server with a slow-op log, replica, observed client
// pool — on one registry, then asserts that every registered family
// appears in the doc's catalog table with the right kind, and that
// every cataloged metric is actually registered, in both directions.

import (
	"io"
	"net"
	"os"
	"regexp"
	"testing"
	"time"

	"repro/client"
	"repro/internal/durable"
	"repro/internal/obs"
	"repro/internal/replica"
	"repro/internal/server"
	"repro/internal/trace"
)

// catalogRow matches a catalog table row: | `name` | kind | ...
var catalogRow = regexp.MustCompile("(?m)^\\| `(hidb_[a-z0-9_]+)` \\| (counter|gauge|histogram) \\|")

func readDoc() ([]byte, error) { return os.ReadFile("../../docs/OBSERVABILITY.md") }

func parseCatalog(t *testing.T) map[string]string {
	t.Helper()
	data, err := readDoc()
	if err != nil {
		t.Fatalf("the observability doc must exist next to the obs package: %v", err)
	}
	out := map[string]string{}
	for _, m := range catalogRow.FindAllStringSubmatch(string(data), -1) {
		name, kind := m[1], m[2]
		if prev, dup := out[name]; dup && prev != kind {
			t.Fatalf("doc lists %s twice with different kinds", name)
		}
		out[name] = kind
	}
	if len(out) == 0 {
		t.Fatal("no catalog rows parsed from docs/OBSERVABILITY.md — table format changed?")
	}
	return out
}

// fullStackRegistry registers every layer's metrics on one registry,
// exactly as cmd/hidbd wires them.
func fullStackRegistry(t *testing.T) *obs.Registry {
	t.Helper()
	reg := obs.NewRegistry()
	db, err := durable.Open("db", &durable.Options{
		Shards: 4, Seed: 1, NoBackground: true, FS: durable.NewMemFS(), Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(db.Abandon)
	tr := trace.NewStore(64, 1, reg)
	srv := server.New(db, server.Config{
		SweepInterval:   -1,
		Metrics:         reg,
		SlowOpThreshold: time.Millisecond,
		SlowOpLog:       io.Discard,
		Trace:           tr,
	})
	t.Cleanup(func() { srv.Close() })
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	cl, err := client.OpenObserved(ln.Addr().String(), 1, 5*time.Second, reg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	rep, err := replica.New(db, replica.Config{
		Metrics: reg,
		Dial:    func() (net.Conn, error) { return nil, io.ErrClosedPipe },
		Trace:   tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rep.Stop)
	return reg
}

func TestObservabilityDocLockstep(t *testing.T) {
	doc := parseCatalog(t)
	reg := fullStackRegistry(t)

	fams := reg.Families()
	if len(fams) == 0 {
		t.Fatal("full stack registered no metric families")
	}
	live := map[string]string{}
	for _, f := range fams {
		live[f.Name] = f.Kind.String()
		kind, ok := doc[f.Name]
		if !ok {
			t.Errorf("%s (%s) is registered but not cataloged in docs/OBSERVABILITY.md", f.Name, f.Kind)
			continue
		}
		if kind != f.Kind.String() {
			t.Errorf("%s is a %s in code but cataloged as %s", f.Name, f.Kind, kind)
		}
	}
	for name := range doc {
		if _, ok := live[name]; !ok {
			t.Errorf("docs/OBSERVABILITY.md catalogs %s, which no layer registers", name)
		}
	}
}
