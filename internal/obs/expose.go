package obs

import (
	"fmt"
	"io"
	"net/http"
	"strconv"
)

// WriteText renders every registered metric in the Prometheus text
// exposition format (text/plain; version=0.0.4): one HELP/TYPE block
// per family, then one sample line per instance — counters and gauges
// as bare values, histograms as cumulative le-buckets plus _sum and
// _count. Histogram bucket bounds are the power-of-two edges the
// lock-free buckets use, scaled by the histogram's unit (seconds for
// latency histograms); only buckets up to the highest populated one
// are emitted, plus +Inf, so an idle histogram costs one line.
//
// The output is numbers and fixed names only — nothing in the data
// model can carry key or value bytes, which is what keeps a scraped
// (and therefore possibly disk-persisted) metrics page forensically
// clean. See docs/OBSERVABILITY.md.
func (r *Registry) WriteText(w io.Writer) error {
	if r == nil {
		return nil
	}
	entries := r.snapshotEntries()
	var err error
	p := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	helped := map[string]bool{}
	for _, e := range entries {
		if !helped[e.name] {
			helped[e.name] = true
			p("# HELP %s %s\n", e.name, e.help)
			p("# TYPE %s %s\n", e.name, e.kind)
		}
		switch {
		case e.c != nil:
			p("%s%s %d\n", e.name, labelStr(e, ""), e.c.Value())
		case e.cfn != nil:
			p("%s%s %d\n", e.name, labelStr(e, ""), e.cfn())
		case e.g != nil:
			p("%s%s %d\n", e.name, labelStr(e, ""), e.g.Value())
		case e.gfn != nil:
			p("%s%s %s\n", e.name, labelStr(e, ""), formatFloat(e.gfn()))
		case e.h != nil:
			writeHist(p, e)
		}
		if err != nil {
			return err
		}
	}
	return err
}

// writeHist emits one histogram instance: cumulative buckets, sum,
// count, and a _max gauge-style convenience sample (not part of the
// Prometheus histogram type, but the forensic slow-path readers want
// the true max, which quantile interpolation cannot exceed). Buckets
// with an armed exemplar additionally carry an OpenMetrics-style
// `# {trace_id="<hex>"} <value>` suffix (nonstandard in the 0.0.4 text
// format, like _max) linking the bucket to a kept trace in
// /debug/traces — a trace id and a number, never payload bytes.
func writeHist(p func(string, ...any), e *entry) {
	s := e.h.Snapshot()
	scale := unitScale(e.h.unit)
	ex := e.h.ex.Load()
	top := -1
	for i, n := range s.Buckets {
		if n > 0 {
			top = i
		}
	}
	cum := uint64(0)
	for i := 0; i <= top; i++ {
		cum += s.Buckets[i]
		_, hi := bucketBounds(i)
		suffix := ""
		if ex != nil {
			if tid := ex[2*i].Load(); tid != 0 {
				suffix = ` # {trace_id="` + strconv.FormatUint(tid, 16) + `"} ` +
					formatFloat(float64(ex[2*i+1].Load())*scale)
			}
		}
		p("%s_bucket%s %d%s\n", e.name, labelStr(e, `le="`+formatFloat(hi*scale)+`"`), cum, suffix)
	}
	p("%s_bucket%s %d\n", e.name, labelStr(e, `le="+Inf"`), s.Count)
	p("%s_sum%s %s\n", e.name, labelStr(e, ""), formatFloat(float64(s.Sum)*scale))
	p("%s_count%s %d\n", e.name, labelStr(e, ""), s.Count)
	p("%s_max%s %s\n", e.name, labelStr(e, ""), formatFloat(float64(s.Max)*scale))
}

// labelStr renders an instance's label set, merging the entry's own
// label with an extra pair (the histogram le bound).
func labelStr(e *entry, extra string) string {
	own := ""
	if e.labelKey != "" {
		own = e.labelKey + `="` + e.labelVal + `"`
	}
	switch {
	case own == "" && extra == "":
		return ""
	case own == "":
		return "{" + extra + "}"
	case extra == "":
		return "{" + own + "}"
	}
	return "{" + own + "," + extra + "}"
}

func unitScale(u Unit) float64 {
	if u == UnitSeconds {
		return 1e-9 // observations are nanoseconds
	}
	return 1
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Handler returns an http.Handler serving the registry's text
// exposition — mount it at /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WriteText(w) //nolint:errcheck // a broken scraper connection is its problem
	})
}
