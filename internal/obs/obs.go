// Package obs is the stack's observability layer: a dependency-free
// metrics kit — atomic counters and gauges, lock-free fixed-log-bucket
// latency/size histograms, and a named-metric registry with a
// Prometheus-style text exposition handler — plus a sampled slow-op
// structured log (slowlog.go).
//
// Two constraints shape the package:
//
//   - Hot-path cost. Recording into any metric is a handful of atomic
//     adds and allocates nothing, so the server's dispatch loop, the
//     write coalescer, and the client's request path can record every
//     operation without disturbing the 0-alloc budgets the perf
//     trajectory (BENCH_*.json) enforces. Scraping is the slow side:
//     a snapshot walks the buckets with atomic loads.
//
//   - Forensic cleanliness. This database erases operation history
//     from its persistent state (see ARCHITECTURE.md); telemetry that
//     is written to disk or scraped to a monitoring system must not
//     quietly become the history the design erases. Nothing in this
//     package can carry key or value bytes: metrics are named numbers,
//     and the slow-op log's record type has no payload-carrying field
//     by construction. docs/OBSERVABILITY.md states the contract; the
//     forensic tests grep scraped output to enforce it.
//
// Every constructor is nil-registry safe: calling Counter, Gauge, or
// Histogram on a nil *Registry returns a live, unregistered metric, so
// instrumented code records unconditionally and never branches on
// "is observability enabled".
package obs

import (
	"math/bits"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (callers must keep counters monotone: n is unsigned).
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an atomic instantaneous value that can move both ways.
type Gauge struct{ v atomic.Int64 }

// Add moves the gauge by delta (negative to decrease).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Set replaces the gauge's value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Unit tells the exposition handler how to scale a histogram's raw
// int64 observations.
type Unit int

const (
	// UnitNone: dimensionless (batch sizes, item counts).
	UnitNone Unit = iota
	// UnitSeconds: observations are nanoseconds, exposed as seconds.
	UnitSeconds
	// UnitBytes: observations are bytes, exposed as bytes.
	UnitBytes
)

// NumBuckets is the fixed bucket count of every Histogram: bucket i
// holds observations v with 2^i <= v < 2^(i+1) (bucket 0 also takes
// v <= 1), so the range spans 1ns..~18min for latencies and
// 1B..~1TiB for sizes. Fixed log bucketing keeps Observe lock-free
// and allocation-free: the bucket index is one bit-length instruction.
const NumBuckets = 40

// Histogram is a lock-free fixed-log-bucket histogram. Observe is a
// few atomic adds and never allocates; quantiles are derived from a
// Snapshot by whoever scrapes it.
type Histogram struct {
	unit    Unit
	count   atomic.Uint64
	sum     atomic.Uint64
	max     atomic.Uint64
	buckets [NumBuckets]atomic.Uint64
	// ex, when armed by EnableExemplars, holds the last linked trace id
	// and raw observation per bucket (pairs: [2i] id, [2i+1] value).
	// Exemplars are fed by an explicit Exemplar call — never by Observe,
	// which stays exemplar-blind and allocation-free either way.
	ex atomic.Pointer[[2 * NumBuckets]atomic.Uint64]
}

// bucketOf maps an observation to its bucket index.
func bucketOf(v int64) int {
	if v <= 1 {
		return 0
	}
	i := bits.Len64(uint64(v)) - 1 // 2^i <= v
	if i >= NumBuckets {
		return NumBuckets - 1
	}
	return i
}

// Observe records one value. Negative values clamp to zero. It is safe
// for any number of concurrent callers and performs no allocation:
// one bucket add, one sum add, one count add, and a CAS-loop max.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.buckets[bucketOf(v)].Add(1)
	h.sum.Add(uint64(v))
	h.count.Add(1)
	for {
		old := h.max.Load()
		if uint64(v) <= old || h.max.CompareAndSwap(old, uint64(v)) {
			return
		}
	}
}

// ObserveSince records the elapsed nanoseconds since t0 — the common
// call in latency instrumentation.
func (h *Histogram) ObserveSince(t0 time.Time) { h.Observe(int64(time.Since(t0))) }

// EnableExemplars arms per-bucket exemplar storage: once armed,
// Exemplar calls link buckets to trace ids and the text exposition
// appends an OpenMetrics-style exemplar to populated bucket lines.
// Unarmed histograms (the default) carry no storage and render exactly
// as before. Call before the histogram sees concurrent traffic.
func (h *Histogram) EnableExemplars() {
	if h.ex.Load() == nil {
		h.ex.Store(new([2 * NumBuckets]atomic.Uint64))
	}
}

// Exemplar links the bucket covering observation v to trace id tid —
// the last kept trace per bucket wins. The id and value are stored as
// two independent atomics (a torn pair across concurrent calls can mix
// two valid exemplars; both halves are still real observations). No-op
// when exemplars are not armed or tid is zero, so callers can feed
// unconditionally from the kept-trace branch.
func (h *Histogram) Exemplar(v int64, tid uint64) {
	p := h.ex.Load()
	if p == nil || tid == 0 {
		return
	}
	if v < 0 {
		v = 0
	}
	i := 2 * bucketOf(v)
	p[i].Store(tid)
	p[i+1].Store(uint64(v))
}

// Unit returns the histogram's exposition unit.
func (h *Histogram) Unit() Unit { return h.unit }

// HistSnapshot is a point-in-time copy of a histogram's state, read
// with atomic loads (the copy may straddle concurrent Observes; each
// individual field is coherent).
type HistSnapshot struct {
	Count   uint64
	Sum     uint64
	Max     uint64
	Buckets [NumBuckets]uint64
}

// Snapshot copies the histogram's current state.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	s.Max = h.max.Load()
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// Quantile estimates the q-quantile (0 < q <= 1) of the recorded
// distribution in the histogram's raw unit (nanoseconds for
// UnitSeconds histograms), interpolating linearly inside the covering
// bucket. With no observations it returns 0. The estimate's error is
// bounded by the 2x bucket width — exactly the resolution the fixed
// log bucketing trades for a lock-free hot path.
func (s HistSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(s.Count)
	cum := float64(0)
	for i, n := range s.Buckets {
		if n == 0 {
			continue
		}
		next := cum + float64(n)
		if next >= target {
			lo, hi := bucketBounds(i)
			frac := (target - cum) / float64(n)
			v := lo + frac*(hi-lo)
			if m := float64(s.Max); v > m {
				v = m // never report past the observed max
			}
			return v
		}
		cum = next
	}
	return float64(s.Max)
}

// bucketBounds returns bucket i's value range [lo, hi).
func bucketBounds(i int) (lo, hi float64) {
	if i == 0 {
		return 0, 2
	}
	return float64(uint64(1) << uint(i)), float64(uint64(1) << uint(i+1))
}

// Kind is a registered metric's type, as exposed by the handler.
type Kind int

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "unknown"
}

// entry is one registered metric instance: a family name, an optional
// single label pair (the per-opcode / per-phase axis), and exactly one
// live metric or read-function.
type entry struct {
	name     string // family name, e.g. "hidb_server_op_seconds"
	labelKey string // "" for unlabeled metrics
	labelVal string
	help     string
	kind     Kind
	c        *Counter
	g        *Gauge
	h        *Histogram
	cfn      func() uint64  // counter func (reads an external atomic)
	gfn      func() float64 // gauge func
}

// Registry is a named-metric registry. Metrics are registered once and
// live for the registry's lifetime; registering a name (plus label)
// again returns the existing metric, so components that are constructed
// several times in one process (e.g. a bench harness hosting a primary
// and replicas) share instances instead of colliding. A nil *Registry
// is valid everywhere and registers nothing.
type Registry struct {
	mu    sync.Mutex
	order []*entry
	byKey map[string]*entry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byKey: map[string]*entry{}}
}

func key(name, lk, lv string) string { return name + "\x00" + lk + "\x00" + lv }

// lookup returns the existing entry for (name, label) or inserts e.
// Re-registering with a different kind panics: that is a programming
// error the doc-lockstep test would otherwise mask.
func (r *Registry) lookup(e *entry) *entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	k := key(e.name, e.labelKey, e.labelVal)
	if prev, ok := r.byKey[k]; ok {
		if prev.kind != e.kind {
			panic("obs: metric " + e.name + " re-registered with a different kind")
		}
		return prev
	}
	r.byKey[k] = e
	r.order = append(r.order, e)
	return e
}

// Counter registers (or returns the existing) counter name.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return &Counter{}
	}
	e := r.lookup(&entry{name: name, help: help, kind: KindCounter, c: &Counter{}})
	return e.c
}

// Gauge registers (or returns the existing) gauge name.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return &Gauge{}
	}
	e := r.lookup(&entry{name: name, help: help, kind: KindGauge, g: &Gauge{}})
	return e.g
}

// Histogram registers (or returns the existing) histogram name.
func (r *Registry) Histogram(name, help string, unit Unit) *Histogram {
	if r == nil {
		return &Histogram{unit: unit}
	}
	e := r.lookup(&entry{name: name, help: help, kind: KindHistogram, h: &Histogram{unit: unit}})
	return e.h
}

// HistogramL registers a labeled histogram instance in family name —
// the per-opcode / per-phase axis. Instances of one family share the
// family's HELP/TYPE block in the exposition.
func (r *Registry) HistogramL(name, labelKey, labelVal, help string, unit Unit) *Histogram {
	if r == nil {
		return &Histogram{unit: unit}
	}
	e := r.lookup(&entry{name: name, labelKey: labelKey, labelVal: labelVal,
		help: help, kind: KindHistogram, h: &Histogram{unit: unit}})
	return e.h
}

// CounterFunc registers a counter whose value is read from fn at
// scrape time — the bridge for counters that already exist as atomics
// elsewhere (server stats, durable's checkpoint count) without double
// counting on the hot path. No-op on a nil registry; a name already
// registered keeps its first function.
func (r *Registry) CounterFunc(name, help string, fn func() uint64) {
	if r == nil {
		return
	}
	r.lookup(&entry{name: name, help: help, kind: KindCounter, cfn: fn})
}

// GaugeFunc is CounterFunc for instantaneous values.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	if r == nil {
		return
	}
	r.lookup(&entry{name: name, help: help, kind: KindGauge, gfn: fn})
}

// Family describes one registered metric family.
type Family struct {
	Name string
	Kind Kind
	Help string
}

// Families returns every registered family once, in registration
// order (labeled instances of one family collapse to one element).
// This is the authoritative catalog the doc-lockstep test checks
// against docs/OBSERVABILITY.md.
func (r *Registry) Families() []Family {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	seen := map[string]bool{}
	var out []Family
	for _, e := range r.order {
		if seen[e.name] {
			continue
		}
		seen[e.name] = true
		out = append(out, Family{Name: e.name, Kind: e.kind, Help: e.help})
	}
	return out
}

// snapshotEntries copies the entry list so exposition can run without
// holding the lock across value reads (value reads are atomic; func
// metrics may take their own locks).
func (r *Registry) snapshotEntries() []*entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*entry, len(r.order))
	copy(out, r.order)
	return out
}
