package obs

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "a counter")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("g", "a gauge")
	g.Add(3)
	g.Add(-5)
	if got := g.Value(); got != -2 {
		t.Fatalf("gauge = %d, want -2", got)
	}
	g.Set(7)
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
}

func TestRegistryReuseAndKindMismatch(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("dup_total", "h")
	b := r.Counter("dup_total", "h")
	if a != b {
		t.Fatal("re-registering the same counter must return the same instance")
	}
	h1 := r.HistogramL("fam_seconds", "op", "get", "h", UnitSeconds)
	h2 := r.HistogramL("fam_seconds", "op", "put", "h", UnitSeconds)
	if h1 == h2 {
		t.Fatal("distinct labels must get distinct instances")
	}
	if h1 != r.HistogramL("fam_seconds", "op", "get", "h", UnitSeconds) {
		t.Fatal("same label must reuse the instance")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch must panic")
		}
	}()
	r.Gauge("dup_total", "h")
}

func TestNilRegistryIsSafe(t *testing.T) {
	var r *Registry
	r.Counter("x_total", "h").Inc()
	r.Gauge("y", "h").Set(3)
	r.Histogram("z_seconds", "h", UnitSeconds).Observe(100)
	r.HistogramL("w_seconds", "op", "get", "h", UnitSeconds).Observe(1)
	r.CounterFunc("f_total", "h", func() uint64 { return 0 })
	r.GaugeFunc("fg", "h", func() float64 { return 0 })
	if fams := r.Families(); fams != nil {
		t.Fatalf("nil registry has families: %v", fams)
	}
	if err := r.WriteText(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramBuckets(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{-5, 0}, {0, 0}, {1, 0}, {2, 1}, {3, 1}, {4, 2}, {7, 2}, {8, 3},
		{1 << 20, 20}, {math.MaxInt64, NumBuckets - 1},
	}
	for _, c := range cases {
		if got := bucketOf(c.v); got != c.want {
			t.Errorf("bucketOf(%d) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	// 1000 observations uniform over [0, 100µs) in ns.
	for i := int64(0); i < 1000; i++ {
		h.Observe(i * 100_000 / 1000)
	}
	s := h.Snapshot()
	if s.Count != 1000 {
		t.Fatalf("count = %d", s.Count)
	}
	p50 := s.Quantile(0.5)
	// Log bucketing has 2x resolution: p50 of uniform [0,100µs) is
	// ~50µs; accept [25µs, 100µs].
	if p50 < 25_000 || p50 > 100_000 {
		t.Fatalf("p50 = %.0fns, want ~50µs within 2x", p50)
	}
	if max := s.Quantile(1); max > float64(s.Max) {
		t.Fatalf("p100 %.0f exceeds observed max %d", max, s.Max)
	}
	if got := (HistSnapshot{}).Quantile(0.99); got != 0 {
		t.Fatalf("empty quantile = %v, want 0", got)
	}
}

func TestHistogramObserveNoAllocs(t *testing.T) {
	var h Histogram
	allocs := testing.AllocsPerRun(1000, func() { h.Observe(12345) })
	if allocs != 0 {
		t.Fatalf("Observe allocates %.1f/op, want 0", allocs)
	}
	c := &Counter{}
	if a := testing.AllocsPerRun(1000, func() { c.Inc() }); a != 0 {
		t.Fatalf("Counter.Inc allocates %.1f/op, want 0", a)
	}
}

func TestExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "counts a").Add(7)
	r.Gauge("b", "level of b").Set(-3)
	r.CounterFunc("c_total", "external c", func() uint64 { return 99 })
	r.GaugeFunc("d", "external d", func() float64 { return 1.5 })
	h := r.HistogramL("lat_seconds", "op", "get", "latency", UnitSeconds)
	h.Observe(1500) // 1.5µs
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# HELP a_total counts a\n# TYPE a_total counter\na_total 7\n",
		"# TYPE b gauge\nb -3\n",
		"c_total 99\n",
		"d 1.5\n",
		"# TYPE lat_seconds histogram\n",
		`lat_seconds_bucket{op="get",le="+Inf"} 1`,
		`lat_seconds_count{op="get"} 1`,
		`lat_seconds_sum{op="get"} 1.5e-06`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
	// Cumulative buckets: the last emitted finite bucket must equal the
	// count for a single observation.
	if !strings.Contains(out, `lat_seconds_bucket{op="get",le="2.048e-06"} 1`) {
		t.Errorf("expected the 2.048µs bucket to hold the 1.5µs observation:\n%s", out)
	}
}

func TestConcurrentObserveAndScrape(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("x_seconds", "h", UnitSeconds)
	c := r.Counter("x_total", "h")
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				h.Observe(int64(i % 100000))
				c.Inc()
			}
		}(w)
	}
	for i := 0; i < 50; i++ {
		var buf bytes.Buffer
		if err := r.WriteText(&buf); err != nil {
			t.Fatal(err)
		}
		if buf.Len() == 0 {
			t.Fatal("empty scrape")
		}
	}
	close(stop)
	wg.Wait()
	s := h.Snapshot()
	var cum uint64
	for _, n := range s.Buckets {
		cum += n
	}
	if cum != s.Count {
		t.Fatalf("bucket sum %d != count %d after quiesce", cum, s.Count)
	}
}

func TestSlowLog(t *testing.T) {
	var buf bytes.Buffer
	r := NewRegistry()
	l := NewSlowLog(&buf, time.Millisecond, r)
	if l.Slow(time.Microsecond) {
		t.Fatal("sub-threshold duration reported slow")
	}
	if !l.Slow(2 * time.Millisecond) {
		t.Fatal("over-threshold duration not reported slow")
	}
	l.Record(SlowOp{Op: "GET", ReqID: 42, Shard: 3, BytesIn: 9, BytesOut: 17,
		Total: 2 * time.Millisecond, Decode: time.Microsecond, Wait: 10 * time.Microsecond,
		Apply: 1900 * time.Microsecond, Encode: 2 * time.Microsecond})
	line := buf.String()
	for _, want := range []string{"slowop ts=", " op=GET", " id=42", " shard=3",
		" in=9", " out=17", " batch=0", " total_us=2000", " apply_us=1900"} {
		if !strings.Contains(line, want) {
			t.Errorf("slow-op line missing %q: %s", want, line)
		}
	}
	if !strings.HasSuffix(line, "\n") {
		t.Error("line not newline-terminated")
	}

	// Rate limit: a flood in one window emits at most perSec lines and
	// counts the rest as dropped.
	buf.Reset()
	for i := 0; i < defaultSlowLogPerSec*2; i++ {
		l.Record(SlowOp{Op: "PUT", Total: 2 * time.Millisecond})
	}
	lines := strings.Count(buf.String(), "\n")
	if lines > defaultSlowLogPerSec {
		t.Fatalf("%d lines emitted, rate limit is %d", lines, defaultSlowLogPerSec)
	}
	dropped := r.Counter("hidb_slow_ops_dropped_total", "").Value()
	if dropped == 0 {
		t.Fatal("flood dropped nothing")
	}

	// Disabled forms.
	if NewSlowLog(nil, time.Second, r) != nil {
		t.Fatal("nil writer must disable the log")
	}
	if NewSlowLog(&buf, 0, r) != nil {
		t.Fatal("zero threshold must disable the log")
	}
	var nilLog *SlowLog
	nilLog.Record(SlowOp{}) // must not panic
	if nilLog.Slow(time.Hour) {
		t.Fatal("nil log reported slow")
	}
}
