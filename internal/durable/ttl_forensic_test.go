package durable_test

// TestTTLForensicExpiredBytesAbsent, ported onto the internal/foretest
// harness (external package: foretest imports durable). The test
// seizes the disk after sweep + checkpoint and greps every surviving
// file for the expired entries' byte patterns — none may appear, and
// every superseded image file that held them must have been zero-wiped
// before its unlink.

import (
	"fmt"
	"testing"

	"repro/internal/durable"
	"repro/internal/expiry"
	"repro/internal/foretest"
)

func TestTTLForensicExpiredBytesAbsent(t *testing.T) {
	clk := expiry.NewManual(100)
	fs := durable.NewMemFS()
	db, err := durable.Open("db", &durable.Options{
		Shards: 4, Seed: 7, FS: fs, NoBackground: true, Clock: clk,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Distinctive high-entropy keys and values for the doomed entries.
	const nDead = 40
	deadKey := func(i int64) int64 { return 0x5EC4E7_0000_0000 + i*0x01_0101 }
	deadVal := func(i int64) int64 { return -0x7A11_DEAD_0000_0000 + i*0x0107 }
	var keyNeedles, allNeedles []foretest.Needle
	for i := int64(0); i < nDead; i++ {
		keyNeedles = append(keyNeedles, foretest.Int64Needles(fmt.Sprintf("deadKey(%d)", i), deadKey(i))...)
		allNeedles = append(allNeedles, foretest.Int64Needles(fmt.Sprintf("deadKey(%d)", i), deadKey(i))...)
		allNeedles = append(allNeedles, foretest.Int64Needles(fmt.Sprintf("deadVal(%d)", i), deadVal(i))...)
	}
	for i := int64(0); i < nDead; i++ {
		db.PutTTL(deadKey(i), deadVal(i), 200) // all die at epoch 200
	}
	// Live bystanders that must survive everything below.
	for k := int64(0); k < 100; k++ {
		db.Put(k, k*3)
	}
	// Commit the pre-expiry state: the dead entries' bytes ARE on disk
	// now — they are live, that is correct. Only the little-endian
	// needles must be present (that is the image encoding); demanding
	// big-endian here would be vacuous.
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	blob := foretest.DirBytes(t, fs, "db")
	if len(foretest.Scan(blob, keyNeedles)) == 0 {
		t.Fatal("sanity: live TTL'd keys should be present in the committed images")
	}

	// The epoch passes; sweep + checkpoint. (Checkpoint alone would
	// sweep too — exercise the explicit path as well.)
	clk.Set(200)
	if n := db.SweepExpired(200); n != nDead {
		t.Fatalf("swept %d, want %d", n, nDead)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	// Forensics: no expired key or value bytes anywhere in the seized
	// directory — not in shard images, not in the manifest, not in any
	// leftover file or file name.
	foretest.AssertDirClean(t, fs, "db", allNeedles)

	// The superseded images (which held the doomed bytes) were
	// zero-wiped before removal.
	wiped, unwiped := 0, 0
	for _, rm := range fs.Removals() {
		if rm.Wiped {
			wiped++
		} else {
			unwiped++
		}
	}
	if wiped == 0 {
		t.Fatal("no zero-wiped removals recorded; superseded images left readable debris")
	}
	if unwiped > 0 {
		t.Fatalf("%d removals skipped the zero-wipe", unwiped)
	}

	// The live bystanders survive, canonically.
	if err := db.VerifyCanonical(); err != nil {
		t.Fatal(err)
	}
	for k := int64(0); k < 100; k++ {
		if v, ok := db.Get(k); !ok || v != k*3 {
			t.Fatalf("bystander %d = (%d,%v) after sweep", k, v, ok)
		}
	}
	db.Abandon()
}
