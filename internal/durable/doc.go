// Package durable is a crash-safe on-disk database over the sharded
// history-independent store (repro/internal/shard).
//
// A conventional durable engine pairs its data files with a write-ahead
// log, but under history independence a WAL is forbidden: a log of
// operations IS the operation history the paper's structures exist to
// erase (Bender et al., PODS 2016). This engine therefore persists
// nothing but canonical state. A DB directory holds one canonical image
// file per shard — a pure function of (shard contents, seed), already
// byte-identical across operation histories — plus a checksummed
// manifest naming them by content hash. Commits follow the classic
// atomic-publish sequence:
//
//	write shard images to *.tmp → fsync each → rename into place →
//	fsync dir → write MANIFEST.tmp → fsync → rename over MANIFEST →
//	fsync dir → secure-wipe and unlink superseded files
//
// The manifest rename is the single commit point, so a crash at any
// step recovers to the last complete checkpoint with no partial state;
// and because every persisted byte is canonical, the recovered disk
// leaks nothing about the operations (or crashes) that preceded it.
//
// Checkpoints are incremental: each shard carries a version counter
// bumped under its write lock, and the checkpointer rewrites only
// shards whose version moved — then only those whose canonical bytes
// actually changed. Incrementality cannot leak history: skipping an
// unchanged shard reproduces, by definition, the byte-identical file a
// full rewrite would have produced.
//
// TTL expiry composes with all of this without weakening it: every
// checkpoint first sweeps the entries already expired at the current
// epoch (see repro/internal/expiry), so committed directories hold
// exactly the live-set-at-E and an expired entry's bytes cannot
// outlive the checkpoint after its deadline — the superseded images
// that held them are zero-wiped as always. Two databases with
// different TTL operation histories but the same live set at epoch E
// commit byte-identical directories. Read replicas open with NoSweep:
// their dead entries leave when the primary's swept checkpoint ships.
//
// DB is safe for concurrent use and is the storage engine behind the
// network server (repro/internal/server): point and batch operations
// (including the server's mixed-write ApplyBatch) count toward a
// dirty-op threshold that, with a poll interval, drives the background
// checkpointer; Checkpoint is an explicit durability barrier; Close
// commits a final checkpoint while Abandon deliberately does not —
// the kill -9 path whose recovery the crash suite proves.
//
// All filesystem access goes through the FS interface so the
// crash-injection suite (MemFS) can fail or halt the commit sequence
// at every single step and prove recovery.
package durable
