package durable

import (
	"errors"
	"fmt"
	"io"
	"path"
	"sort"
	"strings"
	"sync"
)

// ErrInjected is returned by every MemFS mutating operation once an
// injected fault point has been reached: the simulated machine has
// halted, and nothing mutates the (volatile or durable) state again
// until Crash().
var ErrInjected = errors.New("durable: injected fault")

// MemFS is an in-memory FS with an explicit crash model, the harness
// behind the crash-injection suite. It distinguishes volatile state
// (what the running process sees) from durable state (what survives a
// power cut):
//
//   - Write changes only a file's volatile content.
//   - File.Sync makes that file's current content durable.
//   - Create, Rename and Remove change only the volatile directory;
//     SyncDir makes the current directory entries durable.
//
// Crash() discards everything volatile and returns a new MemFS holding
// only the durable view — durable directory entries, each resolving to
// the content its inode last had at File.Sync time. This is the
// standard pessimistic POSIX model: an unsynced write may vanish, a
// renamed file may reappear under its old name, in any combination, if
// the directory was not fsynced.
//
// FailAfter(n) arms fault injection: the n-th subsequent mutating
// operation (Create, Write, Sync, Rename, Remove, SyncDir) and every
// one after it fail with ErrInjected, simulating a halt mid-sequence.
// Read-side operations keep working so the failure is observable.
type MemFS struct {
	mu      sync.Mutex
	entries map[string]*memInode // volatile directory: path -> inode
	durable map[string]*memInode // durable directory entries
	dirs    map[string]bool

	ops     int // mutating operations performed
	failAt  int // fail the failAt-th mutating op from arming; 0 = disarmed
	failed  bool
	removed []Removal
	counts  map[string]int
}

// Removal records one Remove for test inspection: the file's name and
// whether its content had been overwritten with zeros first (the
// secure-wipe contract).
type Removal struct {
	Name  string
	Wiped bool
}

type memInode struct {
	content []byte // volatile content
	synced  []byte // content as of the last File.Sync (nil: never synced)
}

// NewMemFS returns an empty in-memory filesystem.
func NewMemFS() *MemFS {
	return &MemFS{
		entries: map[string]*memInode{},
		durable: map[string]*memInode{},
		dirs:    map[string]bool{},
		counts:  map[string]int{},
	}
}

// FailAfter arms fault injection: counting from now, the n-th mutating
// operation and all later ones fail with ErrInjected. n <= 0 disarms.
func (m *MemFS) FailAfter(n int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if n <= 0 {
		m.failAt = 0
		return
	}
	m.failAt = m.ops + n
}

// Heal disarms fault injection and clears the sticky failed state, so
// the simulated disk works again. Unlike Crash, nothing is lost: tests
// use it for transient-fault scenarios — an erasure checkpoint fails,
// the caller observes the error, and a retry against the healed disk
// must complete.
func (m *MemFS) Heal() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.failAt = 0
	m.failed = false
}

// Ops returns the number of mutating operations performed so far.
func (m *MemFS) Ops() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ops
}

// OpCounts returns per-kind mutating-operation counts ("create",
// "write", "sync", "rename", "remove", "syncdir").
func (m *MemFS) OpCounts() map[string]int {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]int, len(m.counts))
	for k, v := range m.counts {
		out[k] = v
	}
	return out
}

// Removals returns every Remove performed, in order.
func (m *MemFS) Removals() []Removal {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]Removal(nil), m.removed...)
}

// Crash simulates a power cut: it returns a fresh MemFS holding only
// the durable state. The receiver remains valid but frozen in its
// pre-crash (volatile) view; use the returned FS for recovery.
func (m *MemFS) Crash() *MemFS {
	m.mu.Lock()
	defer m.mu.Unlock()
	next := NewMemFS()
	for d := range m.dirs {
		next.dirs[d] = true
	}
	for name, ino := range m.durable {
		if ino.synced == nil {
			// Entry is durable but its content never reached the disk:
			// the file survives as empty, the worst legal outcome.
			next.entries[name] = &memInode{content: nil, synced: nil}
		} else {
			c := append([]byte(nil), ino.synced...)
			next.entries[name] = &memInode{content: c, synced: append([]byte(nil), c...)}
		}
		next.durable[name] = next.entries[name]
	}
	return next
}

// step charges one mutating operation and reports whether it must fail.
// Caller holds m.mu.
func (m *MemFS) step(kind string) error {
	m.ops++
	m.counts[kind]++
	if m.failed || (m.failAt > 0 && m.ops >= m.failAt) {
		m.failed = true
		return fmt.Errorf("%w (%s, op %d)", ErrInjected, kind, m.ops)
	}
	return nil
}

func (m *MemFS) MkdirAll(dir string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.dirs[path.Clean(dir)] = true
	return nil
}

func (m *MemFS) Create(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.step("create"); err != nil {
		return nil, err
	}
	// A fresh inode: if the old name was durable, the durable directory
	// keeps pointing at the old inode until the next SyncDir.
	ino := &memInode{}
	m.entries[path.Clean(name)] = ino
	return &memFile{fs: m, ino: ino, writable: true}, nil
}

func (m *MemFS) Open(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	ino, ok := m.entries[path.Clean(name)]
	if !ok {
		return nil, fmt.Errorf("durable: open %s: file does not exist", name)
	}
	return &memFile{fs: m, ino: ino}, nil
}

func (m *MemFS) OpenWrite(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	ino, ok := m.entries[path.Clean(name)]
	if !ok {
		return nil, fmt.Errorf("durable: openwrite %s: file does not exist", name)
	}
	return &memFile{fs: m, ino: ino, writable: true}, nil
}

func (m *MemFS) Rename(oldname, newname string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.step("rename"); err != nil {
		return err
	}
	on, nn := path.Clean(oldname), path.Clean(newname)
	ino, ok := m.entries[on]
	if !ok {
		return fmt.Errorf("durable: rename %s: file does not exist", oldname)
	}
	m.entries[nn] = ino
	delete(m.entries, on)
	return nil
}

func (m *MemFS) Remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.step("remove"); err != nil {
		return err
	}
	n := path.Clean(name)
	ino, ok := m.entries[n]
	if !ok {
		return fmt.Errorf("durable: remove %s: file does not exist", name)
	}
	wiped := true
	for _, b := range ino.content {
		if b != 0 {
			wiped = false
			break
		}
	}
	m.removed = append(m.removed, Removal{Name: path.Base(n), Wiped: wiped})
	delete(m.entries, n)
	return nil
}

func (m *MemFS) List(dir string) ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	prefix := path.Clean(dir) + "/"
	var names []string
	for p := range m.entries {
		if strings.HasPrefix(p, prefix) && !strings.Contains(p[len(prefix):], "/") {
			names = append(names, p[len(prefix):])
		}
	}
	sort.Strings(names)
	return names, nil
}

func (m *MemFS) Size(name string) (int64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	ino, ok := m.entries[path.Clean(name)]
	if !ok {
		return 0, fmt.Errorf("durable: size %s: file does not exist", name)
	}
	return int64(len(ino.content)), nil
}

func (m *MemFS) SyncDir(dir string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.step("syncdir"); err != nil {
		return err
	}
	// One flat namespace per MemFS: persist the entries under dir.
	prefix := path.Clean(dir) + "/"
	for p := range m.durable {
		if strings.HasPrefix(p, prefix) {
			delete(m.durable, p)
		}
	}
	for p, ino := range m.entries {
		if strings.HasPrefix(p, prefix) {
			m.durable[p] = ino
		}
	}
	return nil
}

// memFile is a cursor over a memInode.
type memFile struct {
	fs       *MemFS
	ino      *memInode
	pos      int
	writable bool
	closed   bool
}

func (f *memFile) Read(p []byte) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.closed {
		return 0, errors.New("durable: read on closed file")
	}
	if f.pos >= len(f.ino.content) {
		return 0, io.EOF
	}
	n := copy(p, f.ino.content[f.pos:])
	f.pos += n
	return n, nil
}

func (f *memFile) Write(p []byte) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.closed || !f.writable {
		return 0, errors.New("durable: write on closed or read-only file")
	}
	if err := f.fs.step("write"); err != nil {
		return 0, err
	}
	for len(f.ino.content) < f.pos {
		f.ino.content = append(f.ino.content, 0)
	}
	n := copy(f.ino.content[f.pos:], p)
	f.ino.content = append(f.ino.content, p[n:]...)
	f.pos += len(p)
	return len(p), nil
}

func (f *memFile) Sync() error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.closed {
		return errors.New("durable: sync on closed file")
	}
	if err := f.fs.step("sync"); err != nil {
		return err
	}
	f.ino.synced = append([]byte(nil), f.ino.content...)
	return nil
}

func (f *memFile) Close() error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	f.closed = true
	return nil
}
