package durable

// Replication surface: export the committed checkpoint as per-shard
// canonical images, and install a checkpoint shipped from elsewhere.
//
// Because every shard image is a pure function of (contents, seed),
// replication needs no operation log — an oplog would be an operation
// history, the exact artifact this system keeps off the disk. A replica
// compares content hashes, fetches only divergent images, and installs
// them through the same atomic commit sequence checkpoints use. After a
// successful install the replica's directory is byte-identical to the
// primary's checkpoint: same manifest bytes, same content-addressed
// file names, same image bytes.

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"fmt"
	"io"

	"repro/internal/namespace"
	"repro/internal/shard"
)

// ErrStaleShard is returned by ShardImage when the requested hash is no
// longer the committed image for that shard — a newer checkpoint
// superseded it between the caller's hash fetch and the image fetch.
// The caller should re-fetch the hashes and retry.
var ErrStaleShard = errors.New("durable: shard image superseded by a newer checkpoint")

// ShardHash describes one shard's committed canonical image.
type ShardHash struct {
	Size int64
	Hash [32]byte
}

// ShardHashes returns the routing seed and per-shard canonical image
// hashes of the last committed checkpoint. Two databases with equal
// contents and equal seeds return equal hashes for every shard — the
// comparison a replica's anti-entropy round starts with.
func (db *DB) ShardHashes() (hseed uint64, entries []ShardHash, err error) {
	db.cpMu.Lock()
	defer db.cpMu.Unlock()
	if db.man == nil {
		return 0, nil, errors.New("durable: no committed checkpoint")
	}
	entries = make([]ShardHash, len(db.man.shards))
	for i, e := range db.man.shards {
		entries[i] = ShardHash{Size: e.size, Hash: e.hash}
	}
	return db.man.hseed, entries, nil
}

// ShardImage returns the committed canonical image of shard i, which
// must still be the checkpointed one: a hash that is no longer current
// fails with ErrStaleShard (re-fetch ShardHashes and retry). The bytes
// are verified against the manifest hash before they are returned, so a
// corrupted file cannot propagate.
func (db *DB) ShardImage(i int, hash [32]byte) ([]byte, error) {
	db.cpMu.Lock()
	defer db.cpMu.Unlock()
	if db.man == nil {
		return nil, errors.New("durable: no committed checkpoint")
	}
	if i < 0 || i >= len(db.man.shards) {
		return nil, fmt.Errorf("durable: shard %d out of range, %d shards", i, len(db.man.shards))
	}
	if db.man.shards[i].hash != hash {
		return nil, fmt.Errorf("%w: shard %d", ErrStaleShard, i)
	}
	img, err := db.readFile(shardFileName(i, hash))
	if err != nil {
		return nil, fmt.Errorf("durable: shard %d image: %w", i, err)
	}
	if sha256.Sum256(img) != hash {
		return nil, fmt.Errorf("durable: shard %d image corrupt on disk", i)
	}
	return img, nil
}

// InstallCheckpoint replaces the database's entire state — in memory
// and on disk — with the checkpoint described by hseed and one
// canonical image per shard (len(images) must be a power of two >= 1).
// The images are verified (per-image checksums, structural and routing
// invariants) by assembling the new store BEFORE anything touches the
// directory; publication then follows the standard atomic commit
// sequence (content-addressed image files → dir fsync → manifest swap →
// dir fsync), so a crash at any step recovers to either the old or the
// new checkpoint, never a mix. Images whose bytes are already committed
// under the same hash are not rewritten.
//
// This is the read-replica install path. It assumes no concurrent local
// writers: operations applied between the images' capture and the
// install are silently superseded (that is the semantics of replacing
// state). Concurrent readers are safe — they keep the store snapshot
// they loaded until the swap publishes the new one.
//
// The whole store is re-assembled even when only a few shards changed.
// That costs O(total contents) per install, but it is what makes every
// install a CONSISTENT cut: swapping dictionaries into the live store
// shard by shard would let a concurrent cross-shard read (Range, Len)
// observe half of one checkpoint and half of another. Replicas that
// need cheaper installs should shard more finely, not trade away the
// snapshot.
func (db *DB) InstallCheckpoint(hseed uint64, images [][]byte) error {
	return db.InstallCheckpointNS(hseed, images, nil)
}

// NSImages is one tenant's canonical image set, shipped alongside the
// default shards by InstallCheckpointNS.
type NSImages struct {
	Name   string
	Images [][]byte
}

// InstallCheckpointNS is InstallCheckpoint for a multi-tenant
// checkpoint: the default keyspace's images plus one image set per
// committed namespace. Tenants absent from nss are dropped — the
// installed manifest omits them and the sweep wipes their files, so a
// replica tracks the primary's tenant erasures byte for byte. Every
// tenant store is assembled and verified before anything touches the
// directory, and each must sit at the routing seed derived from
// (hseed, name) — an image set filed under the wrong tenant fails
// assembly rather than installing.
func (db *DB) InstallCheckpointNS(hseed uint64, images [][]byte, nss []NSImages) error {
	if db.closed.Load() {
		return ErrClosed
	}
	readers := make([]io.Reader, len(images))
	for i, img := range images {
		readers[i] = bytes.NewReader(img)
	}
	s, err := shard.AssembleStore(hseed, readers, db.opts.Seed, nil)
	if err != nil {
		return fmt.Errorf("durable: installing checkpoint: %w", err)
	}
	s.SetClock(db.opts.Clock)
	nss = sortedNSImages(nss)
	cells := make([]*namespace.Cell, len(nss))
	for k, n := range nss {
		if err := namespace.ValidateName(n.Name); err != nil {
			return fmt.Errorf("durable: installing checkpoint: %w", err)
		}
		if k > 0 && nss[k-1].Name == n.Name {
			return fmt.Errorf("durable: installing checkpoint: duplicate namespace %q", n.Name)
		}
		seed := namespace.DeriveSeed(hseed, n.Name)
		nsReaders := make([]io.Reader, len(n.Images))
		for i, img := range n.Images {
			nsReaders[i] = bytes.NewReader(img)
		}
		st, err := shard.AssembleStore(shard.MixSeed(seed), nsReaders, seed, nil)
		if err != nil {
			return fmt.Errorf("durable: installing namespace %q: %w", n.Name, err)
		}
		st.SetClock(db.opts.Clock)
		cells[k] = &namespace.Cell{Name: n.Name, Seed: seed, Store: st}
	}

	db.cpMu.Lock()
	defer db.cpMu.Unlock()
	newMan := &manifest{hseed: hseed, shards: make([]shardEntry, len(images))}
	for i, img := range images {
		newMan.shards[i] = shardEntry{size: int64(len(img)), hash: sha256.Sum256(img)}
	}
	for _, n := range nss {
		ent := nsEntry{name: n.Name, shards: make([]shardEntry, len(n.Images))}
		for i, img := range n.Images {
			ent.shards[i] = shardEntry{size: int64(len(img)), hash: sha256.Sum256(img)}
		}
		newMan.nss = append(newMan.nss, ent)
	}
	if db.man != nil && manifestsEqual(db.man, newMan) {
		// Already exactly this checkpoint; installing again would change
		// no byte on disk. Leave the live store untouched too.
		return nil
	}

	sameShardCount := db.man != nil && len(db.man.shards) == len(newMan.shards)
	for i, img := range images {
		if sameShardCount && db.man.shards[i].hash == newMan.shards[i].hash {
			continue // committed file already has these exact bytes
		}
		if err := db.writeFileAtomic(shardFileName(i, newMan.shards[i].hash), img); err != nil {
			return fmt.Errorf("durable: publishing shard %d image: %w", i, err)
		}
	}
	for k, n := range nss {
		nsHseed := cells[k].Store.RoutingSeed()
		var prev *nsEntry
		if db.man != nil {
			prev = db.man.nsAt(n.Name)
		}
		for i, img := range n.Images {
			h := newMan.nss[k].shards[i].hash
			if prev != nil && i < len(prev.shards) && prev.shards[i].hash == h {
				continue // committed file already has these exact bytes
			}
			if err := db.writeFileAtomic(nsShardFileName(nsHseed, i, h), img); err != nil {
				return fmt.Errorf("durable: publishing namespace %q shard %d image: %w", n.Name, i, err)
			}
		}
	}
	if err := db.fs.SyncDir(db.dir); err != nil {
		return fmt.Errorf("durable: syncing %s: %w", db.dir, err)
	}
	if err := db.writeFileAtomic(manifestName, newMan.encode()); err != nil {
		return fmt.Errorf("durable: publishing manifest: %w", err)
	}
	if err := db.fs.SyncDir(db.dir); err != nil {
		return fmt.Errorf("durable: syncing %s after manifest swap: %w", db.dir, err)
	}

	// Committed: publish the new state to readers and reset the
	// checkpoint bookkeeping to "clean at exactly this image set".
	db.man = newMan
	db.store.Store(s)
	db.cpVersions = make([]uint64, s.NumShards())
	for i := range db.cpVersions {
		db.cpVersions[i] = s.ShardVersion(i)
	}
	for _, c := range cells {
		c.Committed = true // its entry is in the manifest just published
		c.CPVersions = make([]uint64, c.Store.NumShards())
		for i := range c.CPVersions {
			c.CPVersions[i] = c.Store.ShardVersion(i)
		}
	}
	db.nss.ReplaceAll(cells)
	db.dirtyOps.Store(0)
	db.checkpoints.Add(1)
	db.sweep()
	return nil
}

// manifestsEqual reports whether two manifests describe the same
// checkpoint (equal seeds, sizes, hashes, and namespace tables — and
// therefore equal encoded bytes).
func manifestsEqual(a, b *manifest) bool {
	if a.hseed != b.hseed || len(a.shards) != len(b.shards) || len(a.nss) != len(b.nss) {
		return false
	}
	for i := range a.shards {
		if a.shards[i] != b.shards[i] {
			return false
		}
	}
	for i := range a.nss {
		if a.nss[i].name != b.nss[i].name || len(a.nss[i].shards) != len(b.nss[i].shards) {
			return false
		}
		for j := range a.nss[i].shards {
			if a.nss[i].shards[j] != b.nss[i].shards[j] {
				return false
			}
		}
	}
	return true
}
