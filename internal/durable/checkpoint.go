package durable

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"time"

	"repro/internal/expiry"
	"repro/internal/namespace"
	"repro/internal/trace"
)

// Checkpoint persists the store's current contents: it first sweeps
// every entry already expired at the current epoch (unless
// Options.NoSweep), so the committed images hold exactly the
// live-set-at-E — an expired entry can never outlive the checkpoint
// that follows its deadline, and WHEN earlier sweeps happened to run
// leaves no trace in the bytes. It then renders a canonical image for
// every shard whose version counter moved since the last commit,
// publishes the changed images and a new manifest with the atomic
// commit sequence, and wipes and unlinks whatever the new manifest no
// longer references. A checkpoint that changes nothing is a no-op.
// Checkpoints serialize with each other; readers and writers on clean
// shards are never blocked (each dirty shard is snapshotted under its
// own brief read lock).
func (db *DB) Checkpoint() error {
	return db.CheckpointTraced(0, 0)
}

// CheckpointTraced is Checkpoint carrying the trace identity of the
// request that demanded the barrier: the committed checkpoint's span
// joins trace tid as a child of span psid, so /debug/traces shows the
// fsync cost inside the request that paid it. Zero ids mean untraced
// — the checkpoint span (if a store is wired) mints its own trace.
func (db *DB) CheckpointTraced(tid, psid uint64) error {
	if db.closed.Load() {
		return ErrClosed
	}
	return db.checkpoint(tid, psid)
}

// pendingShard is one shard image staged for publication. For a
// tenant-cell shard, cell is the cell and nsHseed its derived routing
// seed; for a default shard both are zero.
type pendingShard struct {
	idx     int
	data    []byte
	hash    [32]byte
	version uint64
	cell    *namespace.Cell
	nsHseed uint64
}

// checkpoint commits the current contents (see Checkpoint). tid/psid
// carry the requesting trace (0,0: untraced). When a span store is
// wired and the checkpoint commits, it records a checkpoint span —
// minting a fresh trace id for untraced (background) runs — whose
// Link is the committed manifest hash's first eight bytes, the same
// value replicas link their sync rounds to; the sweep that precedes
// rendering records a sweep child when it removed anything.
func (db *DB) checkpoint(tid, psid uint64) error {
	db.cpMu.Lock()
	defer db.cpMu.Unlock()
	cpStart := time.Now()

	tr := db.trc.Load()
	var cpSID uint64
	if tr != nil {
		if tid == 0 {
			tid = tr.NewID()
		}
		cpSID = tr.NewID()
	}

	// Operations that land while the checkpoint runs must keep their
	// claim on the threshold trigger, so only the ops seen up to this
	// point are deducted after the commit (never a blanket reset).
	dirtyAtStart := db.dirtyOps.Load()

	s := db.store.Load()
	cells := db.nss.Snapshot()
	// The live-set-at-E sweep, over the default keyspace and every
	// tenant cell: what gets committed is a pure function of (contents,
	// epoch), never of any earlier sweeper's schedule.
	if !db.noSweep.Load() {
		if epoch := expiry.Epoch(db.opts.Clock); epoch > 0 {
			swept := s.SweepExpired(epoch)
			for _, c := range cells {
				swept += c.Store.SweepExpired(epoch)
			}
			if swept > 0 {
				db.sweptKeys.Add(uint64(swept))
				db.m.sweptPerRun.Observe(int64(swept))
			}
			db.m.sweepSecs.ObserveSince(cpStart)
			if tr != nil && swept > 0 {
				tr.Record(trace.Span{
					Trace: tid, ID: tr.NewID(), Parent: cpSID,
					Start: cpStart.UnixNano(), Dur: int64(time.Since(cpStart)),
					Kind: trace.KindSweep, Shard: -1, In: int32(swept),
				})
			}
		}
	}
	nsh := s.NumShards()
	newMan := &manifest{hseed: s.RoutingSeed(), shards: make([]shardEntry, nsh)}
	var writes []pendingShard
	// Render buffers come from (and return to) renderPool; pendingShard
	// data aliases them, so they go back only at exit, after the images
	// have been published.
	var bufs []*bytes.Buffer
	defer func() {
		for _, b := range bufs {
			db.renderPool.Put(b)
		}
	}()
	for i := 0; i < nsh; i++ {
		if db.man != nil && s.ShardVersion(i) == db.cpVersions[i] {
			newMan.shards[i] = db.man.shards[i] // image still current
			continue
		}
		buf, _ := db.renderPool.Get().(*bytes.Buffer)
		if buf == nil {
			buf = new(bytes.Buffer)
		}
		buf.Reset()
		bufs = append(bufs, buf)
		ver, _, err := s.SnapshotShard(i, buf)
		if err != nil {
			return fmt.Errorf("durable: snapshotting shard %d: %w", i, err)
		}
		h := sha256.Sum256(buf.Bytes())
		newMan.shards[i] = shardEntry{size: int64(buf.Len()), hash: h}
		if db.man != nil && h == db.man.shards[i].hash {
			// Version moved but the canonical bytes did not (e.g. an
			// insert undone by a delete): the committed file is already
			// exact, so just advance the version floor.
			db.cpVersions[i] = ver
			continue
		}
		writes = append(writes, pendingShard{idx: i, data: buf.Bytes(), hash: h, version: ver})
	}

	// Tenant cells, in canonical (byte-sorted) name order. A cell that
	// is physically empty after the sweep is excluded from the manifest
	// entirely: created-then-emptied commits the same bytes as
	// never-existed.
	var manCells []*namespace.Cell
	for _, c := range cells {
		phys := 0
		for i := 0; i < c.Store.NumShards(); i++ {
			phys += c.Store.ShardLen(i)
		}
		if phys == 0 {
			continue
		}
		if c.CPVersions == nil {
			c.CPVersions = make([]uint64, c.Store.NumShards())
		}
		// A previous manifest entry is reusable only by the incarnation
		// that produced it. A cell recreated after a drop (no checkpoint
		// between) has fresh zero version floors that match its untouched
		// shards, while the manifest still carries the DROPPED
		// incarnation's entry under the same name — reusing it would
		// resurrect the dropped tenant's images. Committed is set only
		// when this cell's own entry lands in a manifest, so an
		// uncommitted cell always renders in full.
		var prev *nsEntry
		if c.Committed && db.man != nil {
			prev = db.man.nsAt(c.Name)
		}
		ent := nsEntry{name: c.Name, shards: make([]shardEntry, c.Store.NumShards())}
		for i := range ent.shards {
			if prev != nil && c.Store.ShardVersion(i) == c.CPVersions[i] {
				ent.shards[i] = prev.shards[i]
				continue
			}
			buf, _ := db.renderPool.Get().(*bytes.Buffer)
			if buf == nil {
				buf = new(bytes.Buffer)
			}
			buf.Reset()
			bufs = append(bufs, buf)
			ver, _, err := c.Store.SnapshotShard(i, buf)
			if err != nil {
				return fmt.Errorf("durable: snapshotting namespace %q shard %d: %w", c.Name, i, err)
			}
			h := sha256.Sum256(buf.Bytes())
			ent.shards[i] = shardEntry{size: int64(buf.Len()), hash: h}
			if prev != nil && h == prev.shards[i].hash {
				c.CPVersions[i] = ver
				continue
			}
			writes = append(writes, pendingShard{
				idx: i, data: buf.Bytes(), hash: h, version: ver,
				cell: c, nsHseed: c.Store.RoutingSeed(),
			})
		}
		newMan.nss = append(newMan.nss, ent)
		manCells = append(manCells, c)
	}
	if db.man != nil && len(writes) == 0 && manifestsEqual(db.man, newMan) {
		return nil // nothing changed; the manifest bytes would be identical
	}

	// Commit sequence. Steps 1-2 publish the new shard images under
	// content-addressed names the old manifest does not reference, so
	// they are invisible to recovery until step 3-4 swaps the manifest —
	// the single commit point.
	cpBytes := 0
	for _, p := range writes {
		name := shardFileName(p.idx, p.hash)
		if p.cell != nil {
			name = nsShardFileName(p.nsHseed, p.idx, p.hash)
		}
		if err := db.writeFileAtomic(name, p.data); err != nil {
			return fmt.Errorf("durable: publishing shard %d image: %w", p.idx, err)
		}
		cpBytes += len(p.data)
	}
	if err := db.fs.SyncDir(db.dir); err != nil {
		return fmt.Errorf("durable: syncing %s: %w", db.dir, err)
	}
	manBytes := newMan.encode()
	if err := db.writeFileAtomic(manifestName, manBytes); err != nil {
		return fmt.Errorf("durable: publishing manifest: %w", err)
	}
	cpBytes += len(manBytes)
	if err := db.fs.SyncDir(db.dir); err != nil {
		return fmt.Errorf("durable: syncing %s after manifest swap: %w", db.dir, err)
	}

	// Committed. Everything below is housekeeping.
	db.man = newMan
	for _, p := range writes {
		if p.cell != nil {
			p.cell.CPVersions[p.idx] = p.version
		} else {
			db.cpVersions[p.idx] = p.version
		}
	}
	for _, c := range manCells {
		c.Committed = true
	}
	db.dirtyOps.Add(-dirtyAtStart)
	db.checkpoints.Add(1)
	db.sweep()
	db.m.cpSeconds.ObserveSince(cpStart)
	db.m.cpBytes.Observe(int64(cpBytes))
	db.m.cpShards.Observe(int64(len(writes)))
	if tr != nil {
		// Link carries the committed manifest hash's first eight bytes:
		// the same stamp CheckpointStamp exposes and a replica's
		// sync-round span links to, so cross-node spans correlate by
		// value with no shared id plumbing.
		h := sha256.Sum256(manBytes)
		tr.Record(trace.Span{
			Trace: tid, ID: cpSID, Parent: psid,
			Start: cpStart.UnixNano(), Dur: int64(time.Since(cpStart)),
			Kind: trace.KindCheckpoint, Shard: -1,
			In: int32(len(writes)), Out: int32(cpBytes),
			Link: binary.BigEndian.Uint64(h[:8]),
		})
	}
	return nil
}

// writeFileAtomic publishes data under name via the temp-file dance:
// the bytes are complete and fsynced before the name ever exists.
func (db *DB) writeFileAtomic(name string, data []byte) error {
	tmp := db.path(name + ".tmp")
	f, err := db.fs.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return db.fs.Rename(tmp, db.path(name))
}

// sweep wipes and unlinks every file in the directory that the current
// manifest does not reference: temp files and superseded or orphaned
// shard images. Best-effort — the commit has already happened, and
// anything left behind is picked up by the next sweep or by Open.
// Caller holds cpMu.
func (db *DB) sweep() {
	names, err := db.fs.List(db.dir)
	if err != nil {
		return
	}
	keep := make(map[string]bool, len(db.man.shards)+1)
	keep[manifestName] = true
	for i, e := range db.man.shards {
		keep[shardFileName(i, e.hash)] = true
	}
	for _, ns := range db.man.nss {
		nsHseed := nsRoutingSeed(db.man.hseed, ns.name)
		for i, e := range ns.shards {
			keep[nsShardFileName(nsHseed, i, e.hash)] = true
		}
	}
	for _, n := range names {
		if !keep[n] {
			db.wipeRemove(n)
		}
	}
}

// zeros is the shared wipe block: read-only, so every wipeRemove can
// use it without allocating its own.
var zeros = make([]byte, 32*1024)

// wipeRemove overwrites name with zeros (unless NoWipe), fsyncs the
// overwrite, and unlinks the file. Secure deletion on modern storage is
// inherently best-effort — journaling filesystems and SSD FTLs may keep
// stale blocks — so errors are swallowed: the file's confidentiality
// already rests on the history independence of its contents, and its
// *existence* is removed either way.
func (db *DB) wipeRemove(name string) {
	p := db.path(name)
	if !db.opts.NoWipe {
		if size, err := db.fs.Size(p); err == nil && size > 0 {
			if f, err := db.fs.OpenWrite(p); err == nil {
				for left := size; left > 0; {
					n := int64(len(zeros))
					if n > left {
						n = left
					}
					if _, err := f.Write(zeros[:n]); err != nil {
						break
					}
					left -= n
				}
				f.Sync()
				f.Close()
			}
		}
	}
	db.fs.Remove(p)
}

// background is the checkpointer goroutine: it commits dirty state
// every CheckpointInterval, or sooner when the dirty-op threshold
// kicks. Errors are not fatal — the next tick retries, and Close
// surfaces the final attempt's error.
func (db *DB) background() {
	defer db.wg.Done()
	t := time.NewTicker(db.opts.CheckpointInterval)
	defer t.Stop()
	for {
		select {
		case <-db.stop:
			return
		case <-t.C:
		case <-db.kick:
		}
		db.checkpoint(0, 0) //nolint:errcheck // retried next tick; Close reports
	}
}
