package durable

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"repro/internal/namespace"
	"repro/internal/shard"
)

// The manifest is the database's single commit record. It is
// deliberately free of anything history-shaped: no generation counter,
// no timestamps, no log sequence numbers — every field is a pure
// function of the store's current contents and its persisted seed, so
// the manifest bytes themselves are canonical (two databases with the
// same seed and the same per-tenant key-value sets have byte-identical
// manifests, whatever operation sequences, checkpoint schedules, or
// tenant creation/drop histories produced them).
//
//	magic    [8]byte  "HIDBMF02"
//	shards   uint64   power of two >= 1
//	hseed    uint64   routing seed (mixed), restored verbatim on open
//	per shard: size uint64, sha256 [32]byte of the shard image file
//	nsCount  uint64   committed namespaces
//	per namespace, byte-sorted by name (canonical order — never
//	creation order, so the record encodes nothing about when tenants
//	arrived):
//	    nameLen uint64, name [nameLen]byte
//	    per shard: size uint64, sha256 [32]byte (same shard count)
//	crc32    uint32   IEEE, over everything above
//
// A namespace's routing seed is NOT stored: it is recomputed as
// MixSeed(DeriveSeed(hseed, name)), so the derivation invariant holds
// by construction — a manifest cannot describe a tenant cell filed
// under anything but its derived seed. A namespace whose cell is
// physically empty at checkpoint time is excluded entirely:
// created-then-emptied is byte-identical to never-existed.
//
// Shard image files are content-addressed — shardFileName and
// nsShardFileName derive the name from the image hash (plus, for
// namespaces, the derived routing seed; never the tenant name) — so a
// crash can never leave a half-written file under a name the manifest
// already trusts: the manifest swap is the only commit point.
const manifestMagic = "HIDBMF02"

// manifestMagicV1 is the pre-namespace manifest format, accepted on
// decode as a zero-namespace manifest so existing directories open
// cleanly; the encoder always writes the current format.
const manifestMagicV1 = "HIDBMF01"

// manifestName is the manifest's filename inside a DB directory.
const manifestName = "MANIFEST"

// maxManifestShards bounds the shard count accepted from an untrusted
// manifest so a corrupt header cannot drive a huge allocation.
const maxManifestShards = 1 << 16

// maxManifestNamespaces bounds the namespace count the same way.
const maxManifestNamespaces = 1 << 16

// shardEntry describes one shard's committed image file.
type shardEntry struct {
	size int64
	hash [32]byte
}

// nsEntry describes one committed namespace: its tenant name and one
// image entry per shard. The name appears here and nowhere else on
// disk — dropping the tenant atomically replaces the manifest, so the
// name vanishes with the commit.
type nsEntry struct {
	name   string
	shards []shardEntry
}

// manifest is the decoded commit record. nss is byte-sorted by name.
type manifest struct {
	hseed  uint64
	shards []shardEntry
	nss    []nsEntry
}

// nsAt returns the namespace entry for name, or nil.
func (m *manifest) nsAt(name string) *nsEntry {
	for i := range m.nss {
		if m.nss[i].name == name {
			return &m.nss[i]
		}
	}
	return nil
}

// shardFileName returns the content-addressed name of shard i's image:
// a pure function of (index, image bytes), so the directory listing
// leaks nothing beyond the contents either.
func shardFileName(i int, hash [32]byte) string {
	return fmt.Sprintf("shard-%04d-%016x.img", i, binary.BigEndian.Uint64(hash[:8]))
}

// nsShardFileName returns the name of a namespace shard image. It is
// addressed by the tenant's DERIVED routing seed and the image hash —
// the tenant's name never reaches the directory listing, and the seed
// is one-way, so co-tenants scanning filenames learn nothing.
func nsShardFileName(nsHseed uint64, i int, hash [32]byte) string {
	return fmt.Sprintf("ns-%016x-%04d-%016x.img", nsHseed, i, binary.BigEndian.Uint64(hash[:8]))
}

// nsRoutingSeed recomputes a committed namespace's routing seed from
// the manifest's root seed and the tenant name.
func nsRoutingSeed(rootHseed uint64, name string) uint64 {
	return shard.MixSeed(namespace.DeriveSeed(rootHseed, name))
}

// encode renders the manifest with its trailing checksum.
func (m *manifest) encode() []byte {
	n := 8 + 8 + 8 + len(m.shards)*40 + 8
	for _, e := range m.nss {
		n += 8 + len(e.name) + len(e.shards)*40
	}
	buf := make([]byte, 0, n+4)
	buf = append(buf, manifestMagic...)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(m.shards)))
	buf = binary.LittleEndian.AppendUint64(buf, m.hseed)
	for _, e := range m.shards {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(e.size))
		buf = append(buf, e.hash[:]...)
	}
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(m.nss)))
	for _, e := range m.nss {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(len(e.name)))
		buf = append(buf, e.name...)
		for _, s := range e.shards {
			buf = binary.LittleEndian.AppendUint64(buf, uint64(s.size))
			buf = append(buf, s.hash[:]...)
		}
	}
	return binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
}

// decodeManifest parses and verifies a manifest image.
func decodeManifest(b []byte) (*manifest, error) {
	if len(b) < 8+8+8+4 {
		return nil, fmt.Errorf("durable: manifest too short (%d bytes)", len(b))
	}
	v1 := false
	switch string(b[:8]) {
	case manifestMagic:
	case manifestMagicV1:
		v1 = true
	default:
		return nil, fmt.Errorf("durable: bad manifest magic %q", b[:8])
	}
	body, sum := b[:len(b)-4], binary.LittleEndian.Uint32(b[len(b)-4:])
	if got := crc32.ChecksumIEEE(body); got != sum {
		return nil, fmt.Errorf("durable: manifest checksum mismatch: stored %08x, computed %08x", sum, got)
	}
	nsh64 := binary.LittleEndian.Uint64(b[8:16])
	if nsh64 < 1 || nsh64 > maxManifestShards || nsh64&(nsh64-1) != 0 {
		return nil, fmt.Errorf("durable: implausible shard count %d in manifest", nsh64)
	}
	nsh := int(nsh64)
	m := &manifest{
		hseed:  binary.LittleEndian.Uint64(b[16:24]),
		shards: make([]shardEntry, nsh),
	}
	rest := body[24:]
	take := func(n int, what string) ([]byte, error) {
		if len(rest) < n {
			return nil, fmt.Errorf("durable: manifest truncated reading %s", what)
		}
		out := rest[:n]
		rest = rest[n:]
		return out, nil
	}
	readShards := func(dst []shardEntry, what string) error {
		for i := range dst {
			e, err := take(40, what)
			if err != nil {
				return err
			}
			size := int64(binary.LittleEndian.Uint64(e))
			if size < 0 {
				return fmt.Errorf("durable: negative size in %s entry %d", what, i)
			}
			dst[i].size = size
			copy(dst[i].hash[:], e[8:40])
		}
		return nil
	}
	if err := readShards(m.shards, "shard table"); err != nil {
		return nil, err
	}
	if !v1 {
		cntb, err := take(8, "namespace count")
		if err != nil {
			return nil, err
		}
		cnt := binary.LittleEndian.Uint64(cntb)
		if cnt > maxManifestNamespaces {
			return nil, fmt.Errorf("durable: implausible namespace count %d in manifest", cnt)
		}
		m.nss = make([]nsEntry, cnt)
		for i := range m.nss {
			lb, err := take(8, "namespace name length")
			if err != nil {
				return nil, err
			}
			nl := binary.LittleEndian.Uint64(lb)
			if nl == 0 || nl > namespace.MaxName {
				return nil, fmt.Errorf("durable: implausible namespace name length %d in manifest", nl)
			}
			nb, err := take(int(nl), "namespace name")
			if err != nil {
				return nil, err
			}
			name := string(nb)
			if err := namespace.ValidateName(name); err != nil {
				return nil, fmt.Errorf("durable: manifest namespace %d: %w", i, err)
			}
			if i > 0 && m.nss[i-1].name >= name {
				return nil, fmt.Errorf("durable: manifest namespaces not in canonical order at %q", name)
			}
			m.nss[i].name = name
			m.nss[i].shards = make([]shardEntry, nsh)
			if err := readShards(m.nss[i].shards, "namespace shard table"); err != nil {
				return nil, err
			}
		}
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("durable: %d trailing bytes in manifest", len(rest))
	}
	return m, nil
}
