package durable

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// The manifest is the database's single commit record. It is
// deliberately free of anything history-shaped: no generation counter,
// no timestamps, no log sequence numbers — every field is a pure
// function of the store's current contents and its persisted seed, so
// the manifest bytes themselves are canonical (two databases with the
// same seed and the same key-value set have byte-identical manifests,
// whatever operation sequences or checkpoint schedules produced them).
//
//	magic   [8]byte  "HIDBMF01"
//	shards  uint64   power of two >= 1
//	hseed   uint64   routing seed (mixed), restored verbatim on open
//	per shard: size uint64, sha256 [32]byte of the shard image file
//	crc32   uint32   IEEE, over everything above
//
// Shard image files are content-addressed — shardFileName derives the
// name from the index and the image hash — so a crash can never leave
// a half-written file under a name the manifest already trusts: the
// manifest swap is the only commit point.
const manifestMagic = "HIDBMF01"

// manifestName is the manifest's filename inside a DB directory.
const manifestName = "MANIFEST"

// maxManifestShards bounds the shard count accepted from an untrusted
// manifest so a corrupt header cannot drive a huge allocation.
const maxManifestShards = 1 << 16

// shardEntry describes one shard's committed image file.
type shardEntry struct {
	size int64
	hash [32]byte
}

// manifest is the decoded commit record.
type manifest struct {
	hseed  uint64
	shards []shardEntry
}

// shardFileName returns the content-addressed name of shard i's image:
// a pure function of (index, image bytes), so the directory listing
// leaks nothing beyond the contents either.
func shardFileName(i int, hash [32]byte) string {
	return fmt.Sprintf("shard-%04d-%016x.img", i, binary.BigEndian.Uint64(hash[:8]))
}

// encode renders the manifest with its trailing checksum.
func (m *manifest) encode() []byte {
	buf := make([]byte, 0, 8+8+8+len(m.shards)*40+4)
	buf = append(buf, manifestMagic...)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(m.shards)))
	buf = binary.LittleEndian.AppendUint64(buf, m.hseed)
	for _, e := range m.shards {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(e.size))
		buf = append(buf, e.hash[:]...)
	}
	return binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
}

// decodeManifest parses and verifies a manifest image.
func decodeManifest(b []byte) (*manifest, error) {
	if len(b) < 8+8+8+4 {
		return nil, fmt.Errorf("durable: manifest too short (%d bytes)", len(b))
	}
	if string(b[:8]) != manifestMagic {
		return nil, fmt.Errorf("durable: bad manifest magic %q", b[:8])
	}
	body, sum := b[:len(b)-4], binary.LittleEndian.Uint32(b[len(b)-4:])
	if got := crc32.ChecksumIEEE(body); got != sum {
		return nil, fmt.Errorf("durable: manifest checksum mismatch: stored %08x, computed %08x", sum, got)
	}
	nsh64 := binary.LittleEndian.Uint64(b[8:16])
	if nsh64 < 1 || nsh64 > maxManifestShards || nsh64&(nsh64-1) != 0 {
		return nil, fmt.Errorf("durable: implausible shard count %d in manifest", nsh64)
	}
	nsh := int(nsh64)
	if want := 8 + 8 + 8 + nsh*40 + 4; len(b) != want {
		return nil, fmt.Errorf("durable: manifest is %d bytes, want %d for %d shards", len(b), want, nsh)
	}
	m := &manifest{
		hseed:  binary.LittleEndian.Uint64(b[16:24]),
		shards: make([]shardEntry, nsh),
	}
	off := 24
	for i := range m.shards {
		size := int64(binary.LittleEndian.Uint64(b[off:]))
		if size < 0 {
			return nil, fmt.Errorf("durable: negative size for shard %d in manifest", i)
		}
		m.shards[i].size = size
		copy(m.shards[i].hash[:], b[off+8:off+40])
		off += 40
	}
	return m, nil
}
