package durable

import (
	"errors"
	"fmt"
	"sort"
	"testing"
)

// crashOpsA and crashOpsB are two deterministic mutation phases; the
// crash suite checkpoints between them and injects a fault at every
// step of the second checkpoint's commit sequence.
func crashOpsA(db *DB) {
	items := make([]Item, 0, 400)
	for k := int64(0); k < 800; k += 2 {
		items = append(items, Item{Key: k, Val: k * 10})
	}
	db.PutBatch(items)
}

func crashOpsB(db *DB) {
	for k := int64(0); k < 800; k += 6 {
		db.Delete(k)
	}
	for k := int64(1); k < 400; k += 3 {
		db.Put(k, -k)
	}
}

func refA() map[int64]int64 {
	ref := map[int64]int64{}
	for k := int64(0); k < 800; k += 2 {
		ref[k] = k * 10
	}
	return ref
}

func refB() map[int64]int64 {
	ref := refA()
	for k := int64(0); k < 800; k += 6 {
		delete(ref, k)
	}
	for k := int64(1); k < 400; k += 3 {
		ref[k] = -k
	}
	return ref
}

// freshLoadSnapshot bulk-loads contents into a brand-new DB with the
// given seed and returns its directory bytes: the canonical on-disk
// form of those contents.
func freshLoadSnapshot(t *testing.T, shards int, seed uint64, contents map[int64]int64) map[string][]byte {
	t.Helper()
	fs := NewMemFS()
	db, err := Open("db", memOpts(fs, shards, seed))
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]int64, 0, len(contents))
	for k := range contents {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	items := make([]Item, 0, len(keys))
	for _, k := range keys {
		items = append(items, Item{Key: k, Val: contents[k]})
	}
	db.PutBatch(items)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	return dirSnapshot(t, fs, "db")
}

// TestCrashAtEveryCommitStep is the crash-injection harness the engine
// is specified against: for EVERY filesystem step of a checkpoint's
// commit sequence, fail-and-halt at that step, cut the power, recover,
// and require that
//
//  1. recovery lands on exactly the last complete checkpoint (the old
//     contents if the manifest swap did not commit, the new contents if
//     it did — never a mix, never an error),
//  2. the recovered directory is byte-identical to a fresh bulk load of
//     the same contents (history independence survives crashes), and
//  3. the recovered DB checkpoints cleanly afterwards.
func TestCrashAtEveryCommitStep(t *testing.T) {
	const shards = 8
	const seed = 7

	contentsA, contentsB := refA(), refB()
	wantA := freshLoadSnapshot(t, shards, seed, contentsA)
	wantB := freshLoadSnapshot(t, shards, seed, contentsB)

	// Baseline run: count the steps in the phase-B checkpoint.
	fs := NewMemFS()
	db, err := Open("db", memOpts(fs, shards, seed))
	if err != nil {
		t.Fatal(err)
	}
	crashOpsA(db)
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	crashOpsB(db)
	opsBefore := fs.Ops()
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	totalSteps := fs.Ops() - opsBefore
	if totalSteps < 10 {
		t.Fatalf("implausibly short commit sequence: %d steps", totalSteps)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if got := dirSnapshot(t, fs, "db"); !sameSnapshot(got, wantB) {
		t.Fatal("baseline checkpoint is not canonical vs fresh bulk load")
	}

	for step := 1; step <= totalSteps; step++ {
		t.Run(fmt.Sprintf("step%03d", step), func(t *testing.T) {
			fs := NewMemFS()
			db, err := Open("db", memOpts(fs, shards, seed))
			if err != nil {
				t.Fatal(err)
			}
			crashOpsA(db)
			if err := db.Checkpoint(); err != nil {
				t.Fatal(err)
			}
			crashOpsB(db)
			fs.FailAfter(step)
			cpErr := db.Checkpoint()

			// Power cut, then recovery on the durable remains.
			crashed := fs.Crash()
			db2, err := Open("db", &Options{Seed: 999, NoBackground: true, FS: crashed})
			if err != nil {
				t.Fatalf("recovery failed after fault at step %d: %v", step, err)
			}
			got := dump(t, db2)
			want, wantDir, label := contentsA, wantA, "pre-checkpoint"
			if cpErr == nil {
				// The commit point was passed (faults can only land in
				// the best-effort sweep): the new state must be durable.
				want, wantDir, label = contentsB, wantB, "post-checkpoint"
			}
			if !sameContents(got, want) {
				t.Fatalf("fault at step %d: recovered %d keys, want the %s contents (%d keys)",
					step, len(got), label, len(want))
			}
			if err := db2.Store().CheckInvariants(); err != nil {
				t.Fatalf("fault at step %d: recovered store corrupt: %v", step, err)
			}

			// Recovery must also have restored byte-level canonicality:
			// the directory (after Open's debris sweep) must equal a
			// fresh bulk load of the same contents, and the next
			// checkpoint must be a clean no-op on it.
			if err := db2.Checkpoint(); err != nil {
				t.Fatalf("fault at step %d: post-recovery checkpoint: %v", step, err)
			}
			if err := db2.VerifyCanonical(); err != nil {
				t.Fatalf("fault at step %d: %v", step, err)
			}
			if gotDir := dirSnapshot(t, crashed, "db"); !sameSnapshot(gotDir, wantDir) {
				t.Fatalf("fault at step %d: recovered directory diverges from fresh bulk load of %s contents",
					step, label)
			}
			if err := db2.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestCrashDuringCreate injects faults into the very first commit (the
// initial empty checkpoint Open performs when creating a database):
// recovery must always land on either "no database" (reopen creates a
// fresh empty one) or a complete empty checkpoint — never an error.
func TestCrashDuringCreate(t *testing.T) {
	// Baseline: count the create sequence's steps.
	fs := NewMemFS()
	if _, err := Open("db", memOpts(fs, 4, 3)); err != nil {
		t.Fatal(err)
	}
	total := fs.Ops()

	for step := 1; step <= total; step++ {
		fs := NewMemFS()
		fs.FailAfter(step)
		if _, err := Open("db", memOpts(fs, 4, 3)); err == nil {
			t.Fatalf("step %d: Open succeeded despite an injected fault", step)
		} else if !errors.Is(err, ErrInjected) {
			t.Fatalf("step %d: Open failed with %v, want an injected fault", step, err)
		}
		crashed := fs.Crash()
		db, err := Open("db", memOpts(crashed, 4, 3))
		if err != nil {
			t.Fatalf("step %d: reopen after crashed create failed: %v", step, err)
		}
		if db.Len() != 0 {
			t.Fatalf("step %d: fresh DB has %d keys", step, db.Len())
		}
		db.Put(1, 1)
		if err := db.Close(); err != nil {
			t.Fatalf("step %d: close after recovery: %v", step, err)
		}
	}
}
