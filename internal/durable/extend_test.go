package durable

import (
	"testing"
	"time"

	"repro/internal/shard"
)

// TestDBApplyBatchAndPendingOps drives the server-facing write path:
// mixed batches land atomically per shard, count toward the dirty-op
// window, and a checkpoint drains the window.
func TestDBApplyBatchAndPendingOps(t *testing.T) {
	fs := NewMemFS()
	db, err := Open("db", &Options{Shards: 4, Seed: 11, NoBackground: true, FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	if got := db.PendingOps(); got != 0 {
		t.Fatalf("fresh DB has %d pending ops", got)
	}
	changed := make([]bool, 3)
	n, err := db.ApplyBatch([]shard.Op{
		{Key: 1, Val: 10},
		{Key: 2, Val: 20},
		{Key: 1, Delete: true},
	}, changed)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 || !changed[0] || !changed[1] || !changed[2] {
		t.Fatalf("n=%d changed=%v", n, changed)
	}
	if db.Has(1) || !db.Has(2) {
		t.Fatal("batch order not preserved")
	}
	if got := db.PendingOps(); got != 3 {
		t.Fatalf("PendingOps = %d, want 3", got)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if got := db.PendingOps(); got != 0 {
		t.Fatalf("PendingOps after checkpoint = %d, want 0", got)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestAbandon checks the kill -9 path: Abandon drops uncheckpointed
// operations, keeps the directory at the last commit, and a reopen
// recovers exactly that state.
func TestAbandon(t *testing.T) {
	fs := NewMemFS()
	db, err := Open("db", &Options{Shards: 4, Seed: 5, FS: fs,
		CheckpointInterval: time.Hour, CheckpointThreshold: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	db.Put(1, 100)
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	db.Put(2, 200) // never checkpointed
	db.Abandon()
	db.Abandon() // idempotent
	if err := db.Checkpoint(); err != ErrClosed {
		t.Fatalf("Checkpoint after Abandon: %v, want ErrClosed", err)
	}

	// Power cut: only durable state survives.
	db2, err := Open("db", &Options{Seed: 5, FS: fs.Crash(), NoBackground: true})
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := db2.Get(1); !ok || v != 100 {
		t.Fatalf("checkpointed key lost: %d %v", v, ok)
	}
	if db2.Has(2) {
		t.Fatal("abandoned write survived")
	}
	if err := db2.VerifyCanonical(); err != nil {
		t.Fatal(err)
	}
	if err := db2.Close(); err != nil {
		t.Fatal(err)
	}
}
