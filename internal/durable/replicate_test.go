package durable

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"testing"
)

// openMem opens a DB over a fresh MemFS with deterministic options.
func openMem(t *testing.T, fs *MemFS, dir string, seed uint64) *DB {
	t.Helper()
	db, err := Open(dir, &Options{Shards: 4, Seed: seed, NoBackground: true, FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// dirBytes snapshots every file in dir as name -> content.
func dirBytes(t *testing.T, fs FS, dir string) map[string][]byte {
	t.Helper()
	names, err := fs.List(dir)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string][]byte, len(names))
	for _, n := range names {
		f, err := fs.Open(dir + "/" + n)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(f); err != nil {
			t.Fatal(err)
		}
		f.Close()
		out[n] = buf.Bytes()
	}
	return out
}

// sameDir asserts two directory snapshots are byte-identical.
func sameDir(t *testing.T, a, b map[string][]byte) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("directory file counts differ: %d vs %d", len(a), len(b))
	}
	for n, ab := range a {
		bb, ok := b[n]
		if !ok {
			t.Fatalf("file %s missing from second directory", n)
		}
		if !bytes.Equal(ab, bb) {
			t.Fatalf("file %s differs: %d vs %d bytes", n, len(ab), len(bb))
		}
	}
}

// TestShardImageExport checks that ShardHashes and ShardImage agree
// with the committed files and that stale hashes are refused.
func TestShardImageExport(t *testing.T) {
	fs := NewMemFS()
	db := openMem(t, fs, "p", 7)
	defer db.Close()
	for k := int64(0); k < 500; k++ {
		db.Put(k, k*3)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	hseed, entries, err := db.ShardHashes()
	if err != nil {
		t.Fatal(err)
	}
	if hseed != db.Store().RoutingSeed() {
		t.Fatalf("hseed %x, store says %x", hseed, db.Store().RoutingSeed())
	}
	if len(entries) != 4 {
		t.Fatalf("%d entries, want 4", len(entries))
	}
	for i, e := range entries {
		img, err := db.ShardImage(i, e.Hash)
		if err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
		if int64(len(img)) != e.Size {
			t.Fatalf("shard %d: %d bytes, manifest says %d", i, len(img), e.Size)
		}
		if sha256.Sum256(img) != e.Hash {
			t.Fatalf("shard %d: bytes do not match advertised hash", i)
		}
	}

	// A superseded hash must be refused with the typed error.
	old := entries[0].Hash
	db.Put(1_000_001, 1)
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	_, entries2, err := db.ShardHashes()
	if err != nil {
		t.Fatal(err)
	}
	for i := range entries2 {
		if entries2[i].Hash == old {
			continue // this shard did not change; old hash still valid
		}
		if _, err := db.ShardImage(i, old); !errors.Is(err, ErrStaleShard) {
			t.Fatalf("stale fetch of shard %d: %v", i, err)
		}
	}
}

// TestInstallCheckpoint ships a primary's images into a second DB and
// checks the directories become byte-identical while readers observe
// the new contents.
func TestInstallCheckpoint(t *testing.T) {
	pfs, rfs := NewMemFS(), NewMemFS()
	p := openMem(t, pfs, "db", 7)
	defer p.Close()
	r := openMem(t, rfs, "db", 99) // different seed: it is overwritten by install
	defer r.Close()

	for k := int64(0); k < 1000; k++ {
		p.Put(k, -k)
	}
	if err := p.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	hseed, entries, err := p.ShardHashes()
	if err != nil {
		t.Fatal(err)
	}
	images := make([][]byte, len(entries))
	for i, e := range entries {
		if images[i], err = p.ShardImage(i, e.Hash); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.InstallCheckpoint(hseed, images); err != nil {
		t.Fatal(err)
	}

	sameDir(t, dirBytes(t, pfs, "db"), dirBytes(t, rfs, "db"))
	if n := r.Len(); n != 1000 {
		t.Fatalf("replica holds %d keys, want 1000", n)
	}
	if v, ok := r.Get(123); !ok || v != -123 {
		t.Fatalf("replica Get(123) = %d %v", v, ok)
	}
	if err := r.VerifyCanonical(); err != nil {
		t.Fatal(err)
	}

	// Installing the same checkpoint again is a no-op: zero mutating
	// filesystem operations.
	before := rfs.Ops()
	if err := r.InstallCheckpoint(hseed, images); err != nil {
		t.Fatal(err)
	}
	if after := rfs.Ops(); after != before {
		t.Fatalf("repeat install performed %d filesystem ops", after-before)
	}

	// The replica's directory must survive reopen (it is a valid DB dir).
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	r2 := openMem(t, rfs, "db", 5)
	defer r2.Close()
	if v, ok := r2.Get(999); !ok || v != -999 {
		t.Fatalf("reopened replica Get(999) = %d %v", v, ok)
	}
}

// TestInstallCheckpointCrashSafety injects a fault at every mutating
// filesystem step of an install and checks recovery lands on either the
// old or the new checkpoint — never a mix, never an unopenable dir.
func TestInstallCheckpointCrashSafety(t *testing.T) {
	// Build the primary once; capture its images.
	pfs := NewMemFS()
	p := openMem(t, pfs, "db", 7)
	for k := int64(0); k < 800; k++ {
		p.Put(k, k^0x55)
	}
	if err := p.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	hseed, entries, err := p.ShardHashes()
	if err != nil {
		t.Fatal(err)
	}
	images := make([][]byte, len(entries))
	for i, e := range entries {
		if images[i], err = p.ShardImage(i, e.Hash); err != nil {
			t.Fatal(err)
		}
	}
	primaryDir := dirBytes(t, pfs, "db")
	p.Close()

	for fail := 1; ; fail++ {
		rfs := NewMemFS()
		r := openMem(t, rfs, "db", 3)
		// Old state: a small unrelated keyset, checkpointed.
		r.Put(-5, 5)
		if err := r.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		oldDir := dirBytes(t, rfs, "db")

		rfs.FailAfter(fail)
		installErr := r.InstallCheckpoint(hseed, images)
		r.Abandon()
		crashed := rfs.Crash()

		r2, err := Open("db", &Options{Seed: 11, NoBackground: true, FS: crashed})
		if err != nil {
			t.Fatalf("fail=%d: recovery: %v", fail, err)
		}
		got := dirBytes(t, crashed, "db")
		if v, ok := r2.Get(-5); ok && v == 5 {
			sameDir(t, oldDir, got) // rolled back: byte-exact old checkpoint
		} else if v, ok := r2.Get(0); ok && v == 0^0x55 {
			sameDir(t, primaryDir, got) // committed: byte-exact new checkpoint
		} else {
			t.Fatalf("fail=%d: recovered to neither old nor new state", fail)
		}
		r2.Close()

		if installErr == nil {
			// The fault point fell past the whole install: every earlier
			// step has been covered, so the sweep is complete.
			if fail < 3 {
				t.Fatalf("install succeeded with fault armed at op %d", fail)
			}
			break
		}
	}
}

// TestInstallCheckpointRejectsCorruptImages checks hostile images fail
// before anything touches the directory.
func TestInstallCheckpointRejectsCorruptImages(t *testing.T) {
	fs := NewMemFS()
	db := openMem(t, fs, "db", 1)
	defer db.Close()
	db.Put(1, 1)
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	before := fs.Ops()

	if err := db.InstallCheckpoint(42, [][]byte{{1, 2, 3}}); err == nil {
		t.Fatal("garbage image accepted")
	}
	if err := db.InstallCheckpoint(42, make([][]byte, 3)); err == nil {
		t.Fatal("non-power-of-two shard count accepted")
	}
	if after := fs.Ops(); after != before {
		t.Fatalf("rejected installs performed %d filesystem ops", after-before)
	}
}
