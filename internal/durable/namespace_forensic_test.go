package durable_test

// The tentpole proofs for multi-tenant erasure, stated at the durable
// layer where the bytes live. External package: the foretest harness
// imports durable, so these tests sit outside to keep the import DAG
// acyclic — which also keeps them honest, driving only the exported
// API a real embedder sees.
//
// TestDropNSForensicErasure: after DROPNS + checkpoint, no encoding of
// the dropped tenant — name, derived seed, routing seed, keys, values
// — survives anywhere in the committed directory or its debris.
//
// TestNamespaceHistoryIndependence: two wildly different multi-tenant
// operation histories with the same live per-tenant contents commit
// byte-identical directories; in particular a dropped tenant is
// indistinguishable from one that never existed.

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/durable"
	"repro/internal/expiry"
	"repro/internal/foretest"
	"repro/internal/namespace"
	"repro/internal/shard"
)

// Distinctive high-entropy constants for the doomed tenant's contents:
// patterns that cannot collide with structural integers (lengths,
// offsets, epochs) in any committed file.
const nVictim = 24

func victimKey(i int64) int64 { return 0x7E4A_5EED_0000_0000 + i*0x01_0101 }
func victimVal(i int64) int64 { return -0x6B1D_FACE_0000_0000 + i*0x0107 }

// victimNeedles is the full encoding catalog for tenant ns on a DB
// whose root routing seed is rootHseed: the tenant's name, its derived
// seed and routing seed (binary, decimal, and the hex form used by
// seed-addressed file names), and every planted key and value.
func victimNeedles(ns string, rootHseed uint64) []foretest.Needle {
	derived := namespace.DeriveSeed(rootHseed, ns)
	routing := shard.MixSeed(derived)
	needles := []foretest.Needle{foretest.StringNeedle("tenant name", ns)}
	needles = append(needles, foretest.Uint64Needles("derived seed", derived)...)
	needles = append(needles, foretest.Uint64Needles("routing seed", routing)...)
	needles = append(needles,
		foretest.Needle{Label: "derived seed(hex)", Bytes: []byte(fmt.Sprintf("%016x", derived))},
		foretest.Needle{Label: "routing seed(hex)", Bytes: []byte(fmt.Sprintf("%016x", routing))},
	)
	for i := int64(0); i < nVictim; i++ {
		needles = append(needles, foretest.Int64NeedlesText(fmt.Sprintf("victimKey(%d)", i), victimKey(i))...)
		needles = append(needles, foretest.Int64NeedlesText(fmt.Sprintf("victimVal(%d)", i), victimVal(i))...)
	}
	return needles
}

func TestDropNSForensicErasure(t *testing.T) {
	const victim = "victim-corp-zq"
	clk := expiry.NewManual(100)
	fs := durable.NewMemFS()
	db, err := durable.Open("db", &durable.Options{
		Shards: 4, Seed: 42, FS: fs, NoBackground: true, Clock: clk,
	})
	if err != nil {
		t.Fatal(err)
	}
	rootHseed := db.Store().RoutingSeed()

	// The victim tenant lives a realistic life: plain entries, sessions
	// with TTLs, overwrites, deletes — interleaved with bystander
	// tenants and the default keyspace, with checkpoints committing the
	// intermediate states (each one puts the victim's bytes on disk).
	for i := int64(0); i < nVictim; i++ {
		exp := int64(0)
		if i%3 == 0 {
			exp = 150 // dies mid-history, swept before the drop
		}
		if _, err := db.NSPutTTL(victim, victimKey(i), victimVal(i), exp); err != nil {
			t.Fatal(err)
		}
	}
	for k := int64(0); k < 50; k++ {
		if _, err := db.NSPut("keeper", k, k*7); err != nil {
			t.Fatal(err)
		}
		db.Put(k, k*11)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	// Sanity half: the encodings the store actually writes — the
	// tenant's name (manifest table), the routing seed's hex (the
	// seed-addressed file names), and the planted pairs' little-endian
	// images — must be present now, or the absence check below is
	// vacuous.
	derived := namespace.DeriveSeed(rootHseed, victim)
	routing := shard.MixSeed(derived)
	present := []foretest.Needle{
		foretest.StringNeedle("tenant name", victim),
		{Label: "routing seed(hex)", Bytes: []byte(fmt.Sprintf("%016x", routing))},
	}
	for i := int64(0); i < nVictim; i++ {
		present = append(present,
			foretest.Int64Needles(fmt.Sprintf("victimKey(%d)", i), victimKey(i))[0],
			foretest.Int64Needles(fmt.Sprintf("victimVal(%d)", i), victimVal(i))[0],
		)
	}
	foretest.AssertPresent(t, "committed directory before the drop",
		foretest.DirBytes(t, fs, "db"), present)
	if t.Failed() {
		t.Fatal("presence sanity failed; the erasure check below would be vacuous")
	}

	// More history: overwrites, a few deletes, the TTL'd third expiring
	// and being swept, another checkpoint. The victim's bytes churn
	// through several generations of committed images.
	for i := int64(0); i < nVictim; i += 4 {
		if _, err := db.NSPut(victim, victimKey(i), victimVal(i)); err != nil {
			t.Fatal(err)
		}
	}
	if !db.NSDelete(victim, victimKey(1)) {
		t.Fatal("delete of a live victim key reported absent")
	}
	clk.Set(200)
	db.SweepExpired(200)
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	// The erasure: one drop, one checkpoint.
	if !db.DropNamespace(victim) {
		t.Fatal("drop reported the tenant absent")
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	// Forensic half: seize the directory and grep every file name and
	// every byte for every encoding of everything the tenant ever was.
	foretest.AssertDirClean(t, fs, "db", victimNeedles(victim, rootHseed))

	// Debris: every superseded or dropped file was zero-wiped before
	// its unlink — no removal skipped the wipe.
	wiped, unwiped := 0, 0
	for _, rm := range fs.Removals() {
		if rm.Wiped {
			wiped++
		} else {
			unwiped++
		}
	}
	if wiped == 0 {
		t.Fatal("no zero-wiped removals recorded; the dropped tenant's images left readable debris")
	}
	if unwiped > 0 {
		t.Fatalf("%d removals skipped the zero-wipe", unwiped)
	}

	// The bystanders survive, canonically.
	if err := db.VerifyCanonical(); err != nil {
		t.Fatal(err)
	}
	for k := int64(0); k < 50; k++ {
		if v, ok := db.NSGet("keeper", k); !ok || v != k*7 {
			t.Fatalf("keeper[%d] = (%d,%v) after the drop", k, v, ok)
		}
		if v, ok := db.Get(k); !ok || v != k*11 {
			t.Fatalf("default[%d] = (%d,%v) after the drop", k, v, ok)
		}
	}

	// And the erasure survives recovery: a fresh process opening the
	// seized directory knows nothing of the tenant.
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := durable.Open("db", &durable.Options{
		Seed: 42, FS: fs, NoBackground: true, Clock: expiry.NewManual(200),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Abandon()
	if n := db2.NSLen(victim); n != 0 {
		t.Fatalf("recovered DB still holds %d victim keys", n)
	}
	if db2.NamespaceCount() != 1 {
		t.Fatalf("recovered DB lists %d tenants, want 1 (keeper)", db2.NamespaceCount())
	}
}

func TestNamespaceHistoryIndependence(t *testing.T) {
	const (
		seed = uint64(42)
		E    = int64(5000)
	)
	type entry struct {
		ns            string
		key, val, exp int64
	}
	// The final live state: two tenants plus the default keyspace, a
	// mix of plain and TTL'd entries (all expiring after E).
	var finals []entry
	for k := int64(0); k < 200; k++ {
		switch k % 4 {
		case 0:
			finals = append(finals, entry{"acme", k, k * 13, 0})
		case 1:
			finals = append(finals, entry{"acme", k, k * 13, E + 100 + k})
		case 2:
			finals = append(finals, entry{"zeta", k, -k * 17, 0})
			// k%4 == 3: default keyspace
		default:
			finals = append(finals, entry{"", k, k * 19, 0})
		}
	}
	load := func(t *testing.T, db *durable.DB, es []entry) {
		t.Helper()
		for _, e := range es {
			if e.ns == "" {
				db.PutTTL(e.key, e.val, e.exp)
				continue
			}
			if _, err := db.NSPutTTL(e.ns, e.key, e.val, e.exp); err != nil {
				t.Fatal(err)
			}
		}
	}

	// History A: the final state written directly at epoch E, one
	// checkpoint. No tenant has ever been dropped here.
	fsA := durable.NewMemFS()
	dbA, err := durable.Open("db", &durable.Options{
		Shards: 8, Seed: seed, FS: fsA, NoBackground: true, Clock: expiry.NewManual(E),
	})
	if err != nil {
		t.Fatal(err)
	}
	load(t, dbA, finals)
	if err := dbA.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	// History B: a mess. A transient tenant is created, committed, and
	// dropped; acme is created, filled with garbage, dropped entirely,
	// and recreated; sessions expire and are swept at scattered epochs;
	// checkpoints land between every phase. Then the same live state,
	// checkpointed at the same epoch E.
	const transient = "transient-tenant-xj"
	clkB := expiry.NewManual(10)
	fsB := durable.NewMemFS()
	dbB, err := durable.Open("db", &durable.Options{
		Shards: 8, Seed: seed, FS: fsB, NoBackground: true, Clock: clkB,
	})
	if err != nil {
		t.Fatal(err)
	}
	for k := int64(0); k < 300; k++ {
		if _, err := dbB.NSPutTTL(transient, k, k*31, 20+k%30); err != nil {
			t.Fatal(err)
		}
		if _, err := dbB.NSPut("acme", k, k*37); err != nil {
			t.Fatal(err)
		}
		dbB.Put(k, -k)
	}
	if err := dbB.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	clkB.Set(100)
	dbB.SweepExpired(60)
	if !dbB.DropNamespace(transient) {
		t.Fatal("transient tenant missing before its drop")
	}
	if !dbB.DropNamespace("acme") {
		t.Fatal("acme missing before its drop")
	}
	if err := dbB.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	clkB.Set(E)
	for k := int64(0); k < 300; k++ { // clear the default keyspace
		dbB.Delete(k)
	}
	for k := int64(0); k < 40; k++ { // recreate acme with garbage, overwrite below
		if _, err := dbB.NSPut("acme", k+500, k); err != nil {
			t.Fatal(err)
		}
		if !dbB.NSDelete("acme", k+500) {
			t.Fatal("acme garbage delete missed")
		}
	}
	load(t, dbB, finals)
	// Extra sessions already dead at E: the checkpoint's sweep must
	// erase them from the committed state.
	for k := int64(100_000); k < 100_030; k++ {
		if _, err := dbB.NSPutTTL("zeta", k, k, E); err != nil {
			t.Fatal(err)
		}
	}
	if err := dbB.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	// The acceptance criterion: byte-identical directories — same file
	// names, same file bytes, nothing extra on either side.
	blobA := foretest.DirBytes(t, fsA, "db")
	blobB := foretest.DirBytes(t, fsB, "db")
	if !bytes.Equal(blobA, blobB) {
		t.Fatalf("directories differ across histories (%d vs %d bytes): operation history leaked into committed state",
			len(blobA), len(blobB))
	}

	// The dropped-vs-never-existed corollary, stated directly: history
	// A never heard of the transient tenant, so equality already proves
	// absence — but grep B's directory anyway so a failure names the
	// leak.
	rootHseed := dbB.Store().RoutingSeed()
	derived := namespace.DeriveSeed(rootHseed, transient)
	gone := []foretest.Needle{
		foretest.StringNeedle("transient tenant name", transient),
		{Label: "transient routing seed(hex)", Bytes: []byte(fmt.Sprintf("%016x", shard.MixSeed(derived)))},
	}
	gone = append(gone, foretest.Uint64Needles("transient derived seed", derived)...)
	foretest.AssertDirClean(t, fsB, "db", gone)

	if err := dbA.VerifyCanonical(); err != nil {
		t.Fatal(err)
	}
	if err := dbB.VerifyCanonical(); err != nil {
		t.Fatal(err)
	}
	dbA.Abandon()
	dbB.Abandon()
}
