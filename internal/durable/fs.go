package durable

import (
	"io"
	"os"
	"path/filepath"
	"sort"
)

// FS is the narrow filesystem interface the durable engine commits
// through. Everything the commit sequence does — create, write, fsync,
// atomic rename, directory fsync, unlink — goes through an FS, so tests
// can substitute MemFS and fail or halt the sequence at any single
// step to prove crash safety. Production code uses OS().
type FS interface {
	// MkdirAll creates dir and any missing parents.
	MkdirAll(dir string) error
	// Create opens name for writing, truncating any existing file.
	Create(name string) (File, error)
	// Open opens name read-only.
	Open(name string) (File, error)
	// OpenWrite opens an existing file for in-place writing without
	// truncation (the secure-wipe path overwrites before unlinking).
	OpenWrite(name string) (File, error)
	// Rename atomically replaces newname with oldname.
	Rename(oldname, newname string) error
	// Remove unlinks name.
	Remove(name string) error
	// List returns the names (not paths) of the plain files in dir,
	// sorted.
	List(dir string) ([]string, error)
	// Size returns name's length in bytes.
	Size(name string) (int64, error)
	// SyncDir fsyncs the directory itself, making completed creates,
	// renames and removes of its entries durable.
	SyncDir(dir string) error
}

// File is the open-file surface the engine needs: sequential reads or
// writes plus fsync.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	// Sync flushes the file's content to stable storage.
	Sync() error
}

// osFS is the real filesystem.
type osFS struct{}

// OS returns the real filesystem. It is the default when Options.FS is
// nil.
func OS() FS { return osFS{} }

// Database directories and files are owner-only: the engine exists to
// keep the disk from leaking, so it does not hand the images to every
// local user either.
func (osFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o700) }

func (osFS) Create(name string) (File, error) {
	return os.OpenFile(name, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o600)
}

func (osFS) Open(name string) (File, error) { return os.Open(name) }

func (osFS) OpenWrite(name string) (File, error) {
	return os.OpenFile(name, os.O_WRONLY, 0)
}

func (osFS) Rename(oldname, newname string) error { return os.Rename(oldname, newname) }

func (osFS) Remove(name string) error { return os.Remove(name) }

func (osFS) List(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if e.Type().IsRegular() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

func (osFS) Size(name string) (int64, error) {
	fi, err := os.Stat(name)
	if err != nil {
		return 0, err
	}
	return fi.Size(), nil
}

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(filepath.Clean(dir))
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
