package durable

// TTL at the durable layer: committed directories are a pure function
// of (live contents, epoch) whatever TTL operation history produced
// them, expired entries' bytes are forensically absent after sweep +
// checkpoint, and the expiry index survives recovery.

import (
	"bytes"
	"io"
	"testing"

	"repro/internal/expiry"
)

// ttlDirBytes snapshots every file of the DB directory.
func ttlDirBytes(t *testing.T, fs FS, dir string) map[string][]byte {
	t.Helper()
	names, err := fs.List(dir)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string][]byte, len(names))
	for _, name := range names {
		f, err := fs.Open(dir + "/" + name)
		if err != nil {
			t.Fatal(err)
		}
		data, err := io.ReadAll(f)
		f.Close()
		if err != nil {
			t.Fatal(err)
		}
		out[name] = data
	}
	return out
}

// TestTTLDeterministicDirectories is the acceptance criterion: two DBs
// fed DIFFERENT TTL operation histories — different intermediate
// expiries, sweeps at different epochs, interleaved checkpoints — but
// the same live set at epoch E produce byte-identical directories once
// each commits a checkpoint at E.
func TestTTLDeterministicDirectories(t *testing.T) {
	const (
		seed  = 42
		E     = int64(5000)
		nKeys = 600
	)
	type entry struct{ key, val, exp int64 }
	var finals []entry
	for k := int64(0); k < nKeys; k++ {
		switch k % 3 {
		case 0:
			finals = append(finals, entry{k, k * 13, 0})
		case 1:
			finals = append(finals, entry{k, k * 13, E + 100 + k})
		}
		// k%3 == 2: absent from the final state
	}

	// History A: the final state written directly at epoch E, one
	// checkpoint.
	clkA := expiry.NewManual(E)
	fsA := NewMemFS()
	dbA, err := Open("db", &Options{Shards: 8, Seed: seed, FS: fsA, NoBackground: true, Clock: clkA})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range finals {
		dbA.PutTTL(e.key, e.val, e.exp)
	}
	if err := dbA.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	// History B: a mess. Short-lived sessions that expire and get swept
	// at scattered epochs, checkpoints in between (each commits
	// different intermediate images), deletes, overwrites — and finally
	// the same live set, checkpointed at the same epoch E.
	clkB := expiry.NewManual(10)
	fsB := NewMemFS()
	dbB, err := Open("db", &Options{Shards: 8, Seed: seed, FS: fsB, NoBackground: true, Clock: clkB})
	if err != nil {
		t.Fatal(err)
	}
	for k := int64(0); k < nKeys; k++ {
		dbB.PutTTL(k, k+1, 20+k%30) // all die by epoch 50
	}
	if err := dbB.Checkpoint(); err != nil { // commits the short-lived state
		t.Fatal(err)
	}
	clkB.Set(100)
	dbB.SweepExpired(60) // explicit sweep at yet another epoch
	for k := int64(0); k < nKeys; k += 2 {
		dbB.Put(k, k*999)
	}
	if err := dbB.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	clkB.Set(E)
	for k := int64(0); k < nKeys; k++ { // clear everything, then load finals
		dbB.Delete(k)
	}
	for _, e := range finals {
		dbB.PutTTL(e.key, e.val, e.exp)
	}
	// Some extra entries already dead at E: the checkpoint's
	// live-set-at-E sweep must erase them from the committed state.
	for k := int64(100_000); k < 100_050; k++ {
		dbB.PutTTL(k, k, E)
	}
	if err := dbB.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	da, db_ := ttlDirBytes(t, fsA, "db"), ttlDirBytes(t, fsB, "db")
	if len(da) != len(db_) {
		t.Fatalf("directory listings differ: %d vs %d files", len(da), len(db_))
	}
	for name, want := range da {
		got, ok := db_[name]
		if !ok {
			t.Fatalf("file %s missing from history B's directory", name)
		}
		if !bytes.Equal(want, got) {
			t.Fatalf("file %s differs across TTL histories", name)
		}
	}

	if err := dbA.VerifyCanonical(); err != nil {
		t.Fatal(err)
	}
	if err := dbB.VerifyCanonical(); err != nil {
		t.Fatal(err)
	}
	dbA.Abandon()
	dbB.Abandon()
}

// TestTTLForensicExpiredBytesAbsent lives in ttl_forensic_test.go
// (package durable_test), ported onto the internal/foretest harness.

// TestTTLRecovery: the expiry index is part of the durable state — a
// reopened database still knows every entry's expiry, filters lazily at
// the restored clock's epoch, and sweeps deterministically.
func TestTTLRecovery(t *testing.T) {
	clk := expiry.NewManual(50)
	fs := NewMemFS()
	db, err := Open("db", &Options{Shards: 4, Seed: 3, FS: fs, NoBackground: true, Clock: clk})
	if err != nil {
		t.Fatal(err)
	}
	db.PutTTL(1, 10, 80)
	db.PutTTL(2, 20, 200)
	db.Put(3, 30)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen later: entry 1 has expired in the meantime.
	clk2 := expiry.NewManual(100)
	db2, err := Open("db", &Options{Seed: 3, FS: fs, NoBackground: true, Clock: clk2})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Abandon()
	if _, _, ok := db2.GetTTL(1); ok {
		t.Fatal("entry expired while closed still reads as live after recovery")
	}
	if v, exp, ok := db2.GetTTL(2); !ok || v != 20 || exp != 200 {
		t.Fatalf("recovered TTL entry = (%d,%d,%v), want (20,200,true)", v, exp, ok)
	}
	if v, exp, ok := db2.GetTTL(3); !ok || v != 30 || exp != 0 {
		t.Fatalf("recovered plain entry = (%d,%d,%v)", v, exp, ok)
	}
	if n := db2.Len(); n != 2 {
		t.Fatalf("recovered Len = %d, want 2", n)
	}
	// The recovery-time physical state still holds entry 1 (it expired
	// while closed; nothing has swept); the next checkpoint erases it.
	if err := db2.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if db2.SweptKeys() != 1 {
		t.Fatalf("SweptKeys = %d, want 1", db2.SweptKeys())
	}
	if err := db2.VerifyCanonical(); err != nil {
		t.Fatal(err)
	}
}
