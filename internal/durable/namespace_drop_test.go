package durable_test

// Regression proofs for the two ways a tenant drop could quietly come
// undone:
//
// TestDropNSRecreateBeforeCheckpointNoResurrection: a tenant dropped
// and recreated between checkpoints must not inherit the dropped
// incarnation's committed images — the recreated cell's zeroed version
// floors match its untouched shards, and reusing the old manifest
// entry for them would resurrect dropped data.
//
// TestDropNamespaceSyncRestoresOnCheckpointFailure: a DROPNS whose
// erasure checkpoint fails must leave the tenant fully present — never
// "gone from the live store, durable on disk" — and a retry against a
// healed disk must complete the erasure.
//
// TestDropNamespaceSyncCompletesDeferredDrop: a tenant already dropped
// from the live store but still listed by the committed manifest (a
// deferred or failed earlier drop) is still durably present, so a
// DropNamespaceSync must commit the erasure rather than report the
// tenant unknown.

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"repro/internal/durable"
	"repro/internal/expiry"
	"repro/internal/foretest"
)

func dropKey(i int64) int64 { return 0x5D0B_BEEF_0000_0000 + i*0x0103 }
func dropVal(i int64) int64 { return -0x4ACE_D00D_0000_0000 + i*0x0119 }

// droppedOnlyNeedles is the encoding catalog for the dropped
// incarnation's contents alone — not the tenant's name or seeds, which
// legitimately persist while a recreated incarnation lives on.
func droppedOnlyNeedles(n int64) []foretest.Needle {
	var needles []foretest.Needle
	for i := int64(0); i < n; i++ {
		needles = append(needles, foretest.Int64NeedlesText(fmt.Sprintf("dropKey(%d)", i), dropKey(i))...)
		needles = append(needles, foretest.Int64NeedlesText(fmt.Sprintf("dropVal(%d)", i), dropVal(i))...)
	}
	return needles
}

func TestDropNSRecreateBeforeCheckpointNoResurrection(t *testing.T) {
	const (
		tenant = "phoenix-corp"
		nDrop  = 32
	)
	fs := durable.NewMemFS()
	db, err := durable.Open("db", &durable.Options{
		Shards: 8, Seed: 42, FS: fs, NoBackground: true, Clock: expiry.NewManual(100),
	})
	if err != nil {
		t.Fatal(err)
	}

	// First incarnation: enough keys to touch every shard, committed.
	for i := int64(0); i < nDrop; i++ {
		if _, err := db.NSPut(tenant, dropKey(i), dropVal(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	// Drop with the checkpoint deferred (the DropNamespace contract
	// allows it), then recreate the tenant with a single key before any
	// checkpoint runs. Most of the recreated cell's shards are untouched
	// — version 0 — exactly the state that used to alias the dropped
	// incarnation's manifest entry.
	if !db.DropNamespace(tenant) {
		t.Fatal("drop reported the tenant absent")
	}
	const phoenixKey, phoenixVal = int64(7), int64(7777)
	if _, err := db.NSPut(tenant, phoenixKey, phoenixVal); err != nil {
		t.Fatal(err)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	// The committed directory must be the canonical image of the
	// recreated contents — one key, nothing inherited.
	if err := db.VerifyCanonical(); err != nil {
		t.Fatalf("post-recreate checkpoint is not canonical: %v", err)
	}
	if n := db.NSLen(tenant); n != 1 {
		t.Fatalf("recreated tenant holds %d keys, want 1", n)
	}
	for i := int64(0); i < nDrop; i++ {
		if _, ok := db.NSGet(tenant, dropKey(i)); ok {
			t.Fatalf("dropped key %d resurrected in the live store", i)
		}
	}
	foretest.AssertDirClean(t, fs, "db", droppedOnlyNeedles(nDrop))

	// Recovery sees the same: only the recreated incarnation.
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := durable.Open("db", &durable.Options{
		Seed: 42, FS: fs, NoBackground: true, Clock: expiry.NewManual(100),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Abandon()
	if n := db2.NSLen(tenant); n != 1 {
		t.Fatalf("recovered tenant holds %d keys, want 1", n)
	}
	if v, ok := db2.NSGet(tenant, phoenixKey); !ok || v != phoenixVal {
		t.Fatalf("recovered tenant[%d] = (%d,%v), want (%d,true)", phoenixKey, v, ok, phoenixVal)
	}
	for i := int64(0); i < nDrop; i++ {
		if _, ok := db2.NSGet(tenant, dropKey(i)); ok {
			t.Fatalf("dropped key %d resurrected through recovery", i)
		}
	}

	// History independence, stated as bytes: a database that only ever
	// saw the recreated contents commits the identical directory.
	fsClean := durable.NewMemFS()
	dbClean, err := durable.Open("db", &durable.Options{
		Shards: 8, Seed: 42, FS: fsClean, NoBackground: true, Clock: expiry.NewManual(100),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer dbClean.Abandon()
	if _, err := dbClean.NSPut(tenant, phoenixKey, phoenixVal); err != nil {
		t.Fatal(err)
	}
	if err := dbClean.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	blobDirty := foretest.DirBytes(t, fs, "db")
	blobClean := foretest.DirBytes(t, fsClean, "db")
	if !bytes.Equal(blobDirty, blobClean) {
		t.Fatalf("drop+recreate directory differs from never-dropped (%d vs %d bytes): the dropped incarnation leaked into committed state",
			len(blobDirty), len(blobClean))
	}
}

func TestDropNamespaceSyncRestoresOnCheckpointFailure(t *testing.T) {
	const tenant = "doomed-inc"
	fs := durable.NewMemFS()
	db, err := durable.Open("db", &durable.Options{
		Shards: 4, Seed: 42, FS: fs, NoBackground: true, Clock: expiry.NewManual(100),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Abandon()
	rootHseed := db.Store().RoutingSeed()

	for i := int64(0); i < nVictim; i++ {
		if _, err := db.NSPut(tenant, victimKey(i), victimVal(i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := db.NSPut("keeper", 1, 11); err != nil {
		t.Fatal(err)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	// The disk dies; the erasure checkpoint must fail and the drop must
	// come undone: the tenant stays fully present, live and durable.
	fs.FailAfter(1)
	changed, err := db.DropNamespaceSync(tenant)
	if err == nil {
		t.Fatal("DropNamespaceSync succeeded on a dead disk")
	}
	if changed {
		t.Fatal("DropNamespaceSync reported the drop done despite the failed checkpoint")
	}
	if n := db.NSLen(tenant); n != nVictim {
		t.Fatalf("tenant holds %d keys after the failed drop, want %d (cell not restored)", n, nVictim)
	}
	if v, ok := db.NSGet(tenant, victimKey(0)); !ok || v != victimVal(0) {
		t.Fatalf("tenant read after failed drop = (%d,%v)", v, ok)
	}
	listed := false
	for _, ns := range db.Namespaces() {
		if ns.Name == tenant {
			listed = true
		}
	}
	if !listed {
		t.Fatal("tenant missing from listings after the failed drop")
	}

	// Disk recovers; the retry completes the erasure durably and
	// forensically.
	fs.Heal()
	if changed, err = db.DropNamespaceSync(tenant); err != nil || !changed {
		t.Fatalf("retried DropNamespaceSync = (%v, %v), want (true, nil)", changed, err)
	}
	if n := db.NSLen(tenant); n != 0 {
		t.Fatalf("tenant holds %d keys after the drop", n)
	}
	if _, _, err := db.NSShardHashes(tenant); !errors.Is(err, durable.ErrNoNamespace) {
		t.Fatalf("manifest still lists the tenant after the drop: %v", err)
	}
	if err := db.VerifyCanonical(); err != nil {
		t.Fatal(err)
	}
	if v, ok := db.NSGet("keeper", 1); !ok || v != 11 {
		t.Fatalf("keeper[1] = (%d,%v) after the drop", v, ok)
	}
	foretest.AssertDirClean(t, fs, "db", victimNeedles(tenant, rootHseed))

	// A further retry is a clean no-op: nothing live, nothing committed.
	if changed, err = db.DropNamespaceSync(tenant); err != nil || changed {
		t.Fatalf("drop of an erased tenant = (%v, %v), want (false, nil)", changed, err)
	}
}

func TestDropNamespaceSyncCompletesDeferredDrop(t *testing.T) {
	const tenant = "lingering-llc"
	fs := durable.NewMemFS()
	db, err := durable.Open("db", &durable.Options{
		Shards: 4, Seed: 42, FS: fs, NoBackground: true, Clock: expiry.NewManual(100),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Abandon()
	rootHseed := db.Store().RoutingSeed()

	for i := int64(0); i < nVictim; i++ {
		if _, err := db.NSPut(tenant, victimKey(i), victimVal(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	// Deferred drop: live store forgets the tenant, the committed
	// manifest still lists it. DropNamespaceSync must treat that as
	// "durably present" and commit the erasure, not answer "unknown".
	if !db.DropNamespace(tenant) {
		t.Fatal("drop reported the tenant absent")
	}
	changed, err := db.DropNamespaceSync(tenant)
	if err != nil || !changed {
		t.Fatalf("DropNamespaceSync on a deferred drop = (%v, %v), want (true, nil)", changed, err)
	}
	if _, _, err := db.NSShardHashes(tenant); !errors.Is(err, durable.ErrNoNamespace) {
		t.Fatalf("manifest still lists the tenant: %v", err)
	}
	foretest.AssertDirClean(t, fs, "db", victimNeedles(tenant, rootHseed))

	// Now truly gone on every surface.
	if changed, err = db.DropNamespaceSync(tenant); err != nil || changed {
		t.Fatalf("drop of an erased tenant = (%v, %v), want (false, nil)", changed, err)
	}
}
