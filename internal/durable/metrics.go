package durable

import "repro/internal/obs"

// dbMetrics is the durable layer's histogram set: how long checkpoints
// take and how much they write, how long the pre-checkpoint expiry
// sweep takes and how many entries it removes. All metrics are numbers
// about the commit machinery — never about which keys were committed —
// so scraping them leaks nothing the checkpoint bytes don't already
// expose. The zero value (nil registry) records into live unregistered
// histograms, so checkpoint code never branches on observability.
type dbMetrics struct {
	cpSeconds   *obs.Histogram // full checkpoint wall time, sweep included
	cpBytes     *obs.Histogram // bytes published per checkpoint (images + manifest)
	cpShards    *obs.Histogram // dirty shard images rewritten per checkpoint
	sweepSecs   *obs.Histogram // pre-checkpoint expiry sweep wall time
	sweptPerRun *obs.Histogram // entries removed per sweep that found any
}

func (m *dbMetrics) init(r *obs.Registry) {
	m.cpSeconds = r.Histogram("hidb_checkpoint_seconds", "checkpoint wall time, pre-sweep included", obs.UnitSeconds)
	m.cpBytes = r.Histogram("hidb_checkpoint_bytes", "bytes published per checkpoint: rewritten shard images plus the manifest", obs.UnitBytes)
	m.cpShards = r.Histogram("hidb_checkpoint_shards", "dirty shard images rewritten per checkpoint", obs.UnitNone)
	m.sweepSecs = r.Histogram("hidb_sweep_seconds", "pre-checkpoint expiry sweep wall time", obs.UnitSeconds)
	m.sweptPerRun = r.Histogram("hidb_sweep_removed_keys", "expired entries physically removed per sweep", obs.UnitNone)
}
