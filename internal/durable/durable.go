package durable

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
	"path"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/expiry"
	"repro/internal/hipma"
	"repro/internal/namespace"
	"repro/internal/obs"
	"repro/internal/shard"
	"repro/internal/trace"
)

// Item re-exports the store element type.
type Item = shard.Item

// ErrClosed is returned by operations on a closed DB.
var ErrClosed = errors.New("durable: database is closed")

// Options configures Open. The zero value is usable: 8 shards, seed 0,
// the paper's PMA constants, background checkpointing every second or
// every 4096 dirty operations, secure wipe on, real filesystem.
type Options struct {
	// Shards is the shard count for a NEWLY CREATED database (power of
	// two; 0 means 8). Ignored when opening an existing directory — the
	// shard count is part of the durable state.
	Shards int
	// Seed drives all randomness. For a new database it also fixes the
	// routing seed and therefore the canonical image bytes; for an
	// existing one it supplies only fresh randomness for future
	// operations (the routing seed is restored from the manifest).
	Seed uint64
	// PMA overrides the per-shard dictionary constants for a newly
	// created database (zero value: the paper's defaults). Ignored on
	// recovery — the constants are part of each shard image.
	PMA hipma.Config
	// CheckpointInterval is the background checkpointer's poll period
	// (0: one second). Each tick persists all dirty shards.
	CheckpointInterval time.Duration
	// CheckpointThreshold triggers an early background checkpoint once
	// this many mutating operations have accumulated (0: 4096).
	CheckpointThreshold int
	// NoBackground disables the checkpointer goroutine; persistence
	// then happens only on explicit Checkpoint or Close.
	NoBackground bool
	// NoWipe disables the best-effort zero-overwrite of superseded
	// image files before unlink.
	NoWipe bool
	// Clock supplies the TTL epoch (nil: the system clock, unix
	// seconds). Tests inject an expiry.Manual to make expiry — and
	// therefore the checkpoint bytes of TTL workloads — deterministic.
	Clock expiry.Clock
	// NoSweep disables the pre-checkpoint expiry sweep. Read replicas
	// set it: their directories must track the primary's committed
	// images exactly, so dead entries leave when the primary's swept
	// checkpoint ships, never on the replica's own schedule. (Lazy read
	// filtering still applies either way — a dead entry is invisible
	// from the moment it expires.)
	NoSweep bool
	// FS is the filesystem to commit through (nil: the real one).
	FS FS
	// Metrics registers the durable layer's checkpoint and sweep
	// histograms (duration and bytes) on the given registry. Nil is
	// valid: the metrics still record, they just aren't scraped.
	Metrics *obs.Registry
}

func (o *Options) withDefaults() Options {
	var out Options
	if o != nil {
		out = *o
	}
	if out.Shards == 0 {
		out.Shards = 8
	}
	if out.PMA == (hipma.Config{}) {
		out.PMA = hipma.DefaultConfig()
	}
	// Non-positive trigger values get the defaults too: a negative
	// interval would panic time.NewTicker in the background goroutine,
	// and a negative threshold would wrap to a huge uint64 and silently
	// disable the dirty-op trigger.
	if out.CheckpointInterval <= 0 {
		out.CheckpointInterval = time.Second
	}
	if out.CheckpointThreshold <= 0 {
		out.CheckpointThreshold = 4096
	}
	if out.Clock == nil {
		out.Clock = expiry.System()
	}
	if out.FS == nil {
		out.FS = OS()
	}
	return out
}

// DB is a durable, crash-safe, history-independent key-value database:
// the concurrent sharded Store plus a checkpointing engine that keeps a
// canonical on-disk image of it inside one directory. All methods are
// safe for concurrent use.
type DB struct {
	dir  string
	fs   FS
	opts Options
	// store is the live in-memory state. It is a swappable pointer
	// because a read replica installs a whole new checkpoint at once:
	// InstallCheckpoint assembles a fresh Store from the primary's
	// canonical images and publishes it here while concurrent readers
	// keep using whichever store they loaded — before or after, both are
	// consistent snapshots.
	store atomic.Pointer[shard.Store]
	// nss holds the live per-tenant cells. Cells are created lazily on
	// first namespace write, restored from the manifest on recovery, and
	// replaced wholesale by InstallCheckpointNS. Each cell's CPVersions
	// bookkeeping is guarded by cpMu, like cpVersions below.
	nss *namespace.Registry

	// cpMu serializes checkpoints and guards the committed-state
	// fields below.
	cpMu sync.Mutex
	man  *manifest // last committed manifest (nil: none yet)
	// cpVersions[i] is shard i's version counter at the moment its
	// committed image was snapshotted; ShardVersion(i) == cpVersions[i]
	// means the on-disk image is current.
	cpVersions []uint64
	// renderPool recycles the bytes.Buffers that stage shard images
	// during a checkpoint, so steady-state checkpoints stop paying the
	// image-sized allocation per dirty shard.
	renderPool sync.Pool

	dirtyOps    atomic.Uint64 // mutating ops since the last checkpoint
	checkpoints atomic.Uint64 // committed checkpoints (in-memory stat)
	sweptKeys   atomic.Uint64 // expired entries physically removed since Open
	closed      atomic.Bool
	// trc is the span store checkpoint and sweep spans are recorded
	// into (nil pointer: tracing off). An atomic pointer because
	// SetTrace may race an already-running background checkpointer.
	// Spans carry counts, durations, and the committed manifest hash's
	// first eight bytes — never keys, values, or tenant names — so the
	// trace buffer stays forensically clean by construction.
	trc atomic.Pointer[trace.Store]
	// noSweep is Options.NoSweep made switchable at runtime: a replica
	// opens with sweeping off and Promote turns it back on. It is an
	// in-memory role bit only — nothing about it reaches the disk.
	noSweep atomic.Bool

	m dbMetrics

	kick chan struct{} // threshold trigger for the background loop
	stop chan struct{}
	// bgMu guards bgRunning, the start/stop handshake for the background
	// checkpointer: Open may start it, Promote may start it later on a
	// replica, and Close/Abandon must stop it exactly once.
	bgMu      sync.Mutex
	bgRunning bool
	wg        sync.WaitGroup
}

// Open opens the database directory dir, creating it (and an initial
// empty checkpoint) if no manifest exists, or recovering and verifying
// the last complete checkpoint if one does. Recovery checks the
// manifest checksum, every shard file's size and SHA-256 against the
// manifest, every shard image's own checksum, and the store's
// structural and routing invariants; any leftover temporary or
// superseded files from an interrupted commit are wiped and removed.
func Open(dir string, opts *Options) (*DB, error) {
	o := opts.withDefaults()
	fs := o.FS
	if err := fs.MkdirAll(dir); err != nil {
		return nil, fmt.Errorf("durable: creating %s: %w", dir, err)
	}
	names, err := fs.List(dir)
	if err != nil {
		return nil, fmt.Errorf("durable: listing %s: %w", dir, err)
	}
	hasManifest := false
	for _, n := range names {
		if n == manifestName {
			hasManifest = true
			break
		}
	}

	db := &DB{dir: dir, fs: fs, opts: o, nss: namespace.NewRegistry()}
	db.m.init(o.Metrics)
	if hasManifest {
		if err := db.recover(o.Seed); err != nil {
			return nil, err
		}
	} else {
		// No commit record: any files present are debris from a crash
		// before the first commit. Wipe them and start empty.
		for _, n := range names {
			db.wipeRemove(n)
		}
		cfg := shard.Config{Shards: o.Shards, PMA: o.PMA}
		s, err := shard.NewWithConfig(cfg, o.Seed, nil)
		if err != nil {
			return nil, fmt.Errorf("durable: %w", err)
		}
		s.SetClock(o.Clock)
		db.store.Store(s)
		db.cpVersions = make([]uint64, s.NumShards())
		if err := db.checkpoint(0, 0); err != nil {
			return nil, fmt.Errorf("durable: initial checkpoint: %w", err)
		}
	}

	// kick and stop exist even when the checkpointer is not running, so
	// a later Promote can start it without racing writers that already
	// consult the kick channel.
	db.kick = make(chan struct{}, 1)
	db.stop = make(chan struct{})
	db.noSweep.Store(o.NoSweep)
	if !o.NoBackground {
		db.bgRunning = true
		db.wg.Add(1)
		go db.background()
	}
	return db, nil
}

// recover rebuilds the store from the last committed checkpoint.
func (db *DB) recover(seed uint64) error {
	data, err := db.readFile(manifestName)
	if err != nil {
		return fmt.Errorf("durable: reading manifest: %w", err)
	}
	man, err := decodeManifest(data)
	if err != nil {
		return err
	}
	readers := make([]io.Reader, len(man.shards))
	for i, e := range man.shards {
		img, err := db.readFile(shardFileName(i, e.hash))
		if err != nil {
			return fmt.Errorf("durable: shard %d image: %w", i, err)
		}
		if int64(len(img)) != e.size {
			return fmt.Errorf("durable: shard %d image is %d bytes, manifest says %d",
				i, len(img), e.size)
		}
		if sha256.Sum256(img) != e.hash {
			return fmt.Errorf("durable: shard %d image hash mismatch", i)
		}
		readers[i] = bytes.NewReader(img)
	}
	s, err := shard.AssembleStore(man.hseed, readers, seed, nil)
	if err != nil {
		return fmt.Errorf("durable: %w", err)
	}
	s.SetClock(db.opts.Clock)
	for _, e := range man.nss {
		c, err := db.recoverNS(man.hseed, e)
		if err != nil {
			return err
		}
		db.nss.Put(c)
	}
	db.store.Store(s)
	db.man = man
	db.cpVersions = make([]uint64, s.NumShards())
	for i := range db.cpVersions {
		db.cpVersions[i] = s.ShardVersion(i)
	}
	db.sweep() // clear debris from any interrupted commit
	return nil
}

// recoverNS rebuilds one tenant cell from its committed images,
// verifying each file against the manifest exactly like the default
// shards.
func (db *DB) recoverNS(rootHseed uint64, e nsEntry) (*namespace.Cell, error) {
	nsHseed := nsRoutingSeed(rootHseed, e.name)
	readers := make([]io.Reader, len(e.shards))
	for i, se := range e.shards {
		img, err := db.readFile(nsShardFileName(nsHseed, i, se.hash))
		if err != nil {
			return nil, fmt.Errorf("durable: namespace %q shard %d image: %w", e.name, i, err)
		}
		if int64(len(img)) != se.size {
			return nil, fmt.Errorf("durable: namespace %q shard %d image is %d bytes, manifest says %d",
				e.name, i, len(img), se.size)
		}
		if sha256.Sum256(img) != se.hash {
			return nil, fmt.Errorf("durable: namespace %q shard %d image hash mismatch", e.name, i)
		}
		readers[i] = bytes.NewReader(img)
	}
	seed := namespace.DeriveSeed(rootHseed, e.name)
	st, err := shard.AssembleStore(nsHseed, readers, seed, nil)
	if err != nil {
		return nil, fmt.Errorf("durable: namespace %q: %w", e.name, err)
	}
	st.SetClock(db.opts.Clock)
	// Recovered straight from a manifest entry, so this incarnation is
	// committed by construction.
	c := &namespace.Cell{Name: e.name, Seed: seed, Store: st, Committed: true}
	c.CPVersions = make([]uint64, st.NumShards())
	for i := range c.CPVersions {
		c.CPVersions[i] = st.ShardVersion(i)
	}
	return c, nil
}

func (db *DB) path(name string) string { return path.Join(db.dir, name) }

func (db *DB) readFile(name string) ([]byte, error) {
	f, err := db.fs.Open(db.path(name))
	if err != nil {
		return nil, err
	}
	data, err := io.ReadAll(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return data, err
}

// Store returns the underlying concurrent store. Mutations made
// directly on it are picked up by the next checkpoint via the shard
// version counters, but do not count toward the dirty-op threshold.
func (db *DB) Store() *shard.Store { return db.store.Load() }

// Dir returns the database directory.
func (db *DB) Dir() string { return db.dir }

// Checkpoints returns the number of checkpoints committed since Open.
func (db *DB) Checkpoints() uint64 { return db.checkpoints.Load() }

// noteDirty accumulates mutating operations toward the threshold
// trigger.
func (db *DB) noteDirty(n int) {
	if n <= 0 {
		return
	}
	if db.dirtyOps.Add(uint64(n)) >= uint64(db.opts.CheckpointThreshold) {
		select {
		case db.kick <- struct{}{}:
		default:
		}
	}
}

// Put inserts or updates the value for key and reports whether the key
// was newly inserted. A plain Put clears any previously recorded TTL.
func (db *DB) Put(key, val int64) bool {
	inserted := db.store.Load().Put(key, val)
	db.noteDirty(1)
	return inserted
}

// PutTTL inserts or updates the value for key with an absolute expiry
// epoch (unix seconds; 0: never expires) and reports whether the key
// was newly inserted — counting a key whose previous entry had already
// expired as new.
func (db *DB) PutTTL(key, val, exp int64) bool {
	inserted := db.store.Load().PutTTL(key, val, exp)
	db.noteDirty(1)
	return inserted
}

// GetTTL returns the value and recorded absolute expiry (0: none) for
// key, and whether the key is live at the current epoch.
func (db *DB) GetTTL(key int64) (val, exp int64, ok bool) { return db.store.Load().GetTTL(key) }

// Clock returns the database's TTL epoch clock.
func (db *DB) Clock() expiry.Clock { return db.opts.Clock }

// Epoch returns the database's current TTL epoch.
func (db *DB) Epoch() int64 { return expiry.Epoch(db.opts.Clock) }

// SweepExpired physically removes every entry already expired at epoch
// and returns how many it removed. Checkpoint runs it automatically at
// the current epoch (unless Options.NoSweep), so committed directories
// always hold exactly the live-set-at-E; call it directly only to sweep
// at an explicit epoch.
func (db *DB) SweepExpired(epoch int64) int {
	n := db.store.Load().SweepExpired(epoch)
	if n > 0 {
		db.sweptKeys.Add(uint64(n))
		db.noteDirty(n)
	}
	return n
}

// SweptKeys returns the number of expired entries physically removed
// since Open — by explicit sweeps, checkpoint-time sweeps, and Expire
// ops applied through ApplyBatch.
func (db *DB) SweptKeys() uint64 { return db.sweptKeys.Load() }

// Get returns the value stored for key and whether it exists.
func (db *DB) Get(key int64) (int64, bool) { return db.store.Load().Get(key) }

// Has reports whether key is present.
func (db *DB) Has(key int64) bool { return db.store.Load().Has(key) }

// Delete removes key and reports whether it was present.
func (db *DB) Delete(key int64) bool {
	deleted := db.store.Load().Delete(key)
	db.noteDirty(1)
	return deleted
}

// PutBatch applies every item as an upsert and returns the number of
// keys newly inserted.
func (db *DB) PutBatch(items []Item) int {
	inserted := db.store.Load().PutBatch(items)
	db.noteDirty(len(items))
	return inserted
}

// GetBatch looks up every key; values and presence flags align with
// keys.
func (db *DB) GetBatch(keys []int64) ([]int64, []bool) { return db.store.Load().GetBatch(keys) }

// DeleteBatch removes every key and returns the number that were
// present.
func (db *DB) DeleteBatch(keys []int64) int {
	deleted := db.store.Load().DeleteBatch(keys)
	db.noteDirty(len(keys))
	return deleted
}

// ApplyBatch applies a mixed sequence of upserts and deletes with each
// shard's lock taken exactly once, recording per-op outcomes in changed
// (nil to discard; otherwise len(ops)) and returning the number of ops
// that changed key presence. Same-shard operations apply in batch
// order. This is the write path the network server's coalescer uses:
// many connections' pipelined writes become one batch, one lock take
// per shard, one dirty-op note per operation.
func (db *DB) ApplyBatch(ops []shard.Op, changed []bool) (int, error) {
	hasExpire := false
	for i := range ops {
		if ops[i].Expire {
			hasExpire = true
			break
		}
	}
	if hasExpire && changed == nil {
		changed = make([]bool, len(ops)) // needed below to count removals
	}
	n, err := db.store.Load().ApplyBatch(ops, changed)
	if err == nil && hasExpire {
		swept := uint64(0)
		for i := range ops {
			if ops[i].Expire && changed[i] {
				swept++
			}
		}
		if swept > 0 {
			db.sweptKeys.Add(swept)
		}
	}
	db.noteDirty(len(ops))
	return n, err
}

// Range appends all items with lo <= key <= hi to out in ascending key
// order.
func (db *DB) Range(lo, hi int64, out []Item) []Item { return db.store.Load().Range(lo, hi, out) }

// RangeN appends at most max such items and reports whether the window
// held more; work and memory are bounded by max, not the window size.
func (db *DB) RangeN(lo, hi int64, max int, out []Item) ([]Item, bool) {
	return db.store.Load().RangeN(lo, hi, max, out)
}

// Ascend calls fn on every item in ascending key order until fn
// returns false.
func (db *DB) Ascend(fn func(Item) bool) { db.store.Load().Ascend(fn) }

// Len returns the number of keys.
func (db *DB) Len() int { return db.store.Load().Len() }

// PendingOps returns the number of mutating operations accepted since
// the last committed checkpoint — the write-loss window a power cut
// right now would expose. It is zero immediately after a successful
// Checkpoint with no concurrent writers. Operations applied directly on
// Store() bypass this counter (see Store).
func (db *DB) PendingOps() uint64 { return db.dirtyOps.Load() }

// SetTrace wires a span store into the durable layer: every committed
// checkpoint records a checkpoint span (linked to the manifest hash)
// and every expiry sweep a sweep span. Synchronous barriers triggered
// by a traced request join that request's trace (CheckpointTraced,
// DropNamespaceSyncTraced); background checkpoints mint their own
// trace ids. Safe to call while the background checkpointer runs; a
// nil store is ignored.
func (db *DB) SetTrace(st *trace.Store) {
	if st != nil {
		db.trc.Store(st)
	}
}

// Close stops the background checkpointer, commits a final checkpoint,
// and marks the DB closed. Operations after Close are not persisted.
func (db *DB) Close() error {
	if db.closed.Swap(true) {
		return ErrClosed
	}
	db.stopBackground()
	return db.checkpoint(0, 0)
}

// Abandon stops the background checkpointer and marks the DB closed
// WITHOUT committing a final checkpoint: every operation since the last
// commit is deliberately dropped, exactly as a crash would drop it. The
// on-disk directory is untouched and remains a valid last-checkpoint
// state. This is the kill -9 path — crash drills, torture tests, and
// supervisors that prefer losing the tail to blocking on a slow disk.
func (db *DB) Abandon() {
	if db.closed.Swap(true) {
		return
	}
	db.stopBackground()
}

// stopBackground stops the checkpointer goroutine if one is running.
// Callers have already marked the DB closed, so no new start can race
// in behind the bgMu window.
func (db *DB) stopBackground() {
	db.bgMu.Lock()
	running := db.bgRunning
	db.bgRunning = false
	if running {
		close(db.stop)
	}
	db.bgMu.Unlock()
	if running {
		db.wg.Wait()
	}
}

// Promote flips a read replica's DB into primary duty: checkpoint-time
// expiry sweeping is re-enabled (the node now owns the live-set-at-E
// contract instead of mirroring the old primary's swept images), and,
// if background is set, the background checkpointer is started if it
// is not already running. Promotion writes nothing to disk by itself —
// the directory stays a pure function of contents, and the role change
// becomes visible on disk only through what future checkpoints sweep.
func (db *DB) Promote(background bool) {
	db.noSweep.Store(false)
	if !background {
		return
	}
	db.bgMu.Lock()
	defer db.bgMu.Unlock()
	if db.bgRunning || db.closed.Load() {
		return
	}
	db.bgRunning = true
	db.wg.Add(1)
	go db.background()
}

// Demote returns the DB to replica duty: checkpoint-time sweeping is
// disabled again so the directory can track a new primary's committed
// images exactly. The background checkpointer, if running, is left
// running — InstallCheckpoint keeps the directory correct either way.
func (db *DB) Demote() {
	db.noSweep.Store(true)
}

// CheckpointStamp returns the node's checkpoint epoch — checkpoints
// committed or installed since process start — together with the
// SHA-256 of the committed manifest encoding. Two nodes serving
// identical checkpoints report identical hashes (the manifest is
// canonical), so a failover coordinator can rank replicas by content.
// Both values are in-memory state; neither is ever persisted.
func (db *DB) CheckpointStamp() (epoch uint64, hash [32]byte) {
	db.cpMu.Lock()
	defer db.cpMu.Unlock()
	if db.man != nil {
		hash = sha256.Sum256(db.man.encode())
	}
	return db.checkpoints.Load(), hash
}

// VerifyCanonical re-renders every shard's canonical image in memory
// and compares it byte for byte against the committed on-disk file,
// confirming that the directory is exactly the canonical image of the
// current contents. It fails if uncheckpointed changes are pending.
func (db *DB) VerifyCanonical() error {
	db.cpMu.Lock()
	defer db.cpMu.Unlock()
	if db.man == nil {
		return errors.New("durable: no committed checkpoint")
	}
	for i := range db.man.shards {
		ver := db.store.Load().ShardVersion(i)
		if ver != db.cpVersions[i] {
			return fmt.Errorf("durable: shard %d has uncheckpointed changes (version %d, committed %d)",
				i, ver, db.cpVersions[i])
		}
		var buf bytes.Buffer
		if _, _, err := db.store.Load().SnapshotShard(i, &buf); err != nil {
			return fmt.Errorf("durable: rendering shard %d: %w", i, err)
		}
		e := db.man.shards[i]
		if sha256.Sum256(buf.Bytes()) != e.hash {
			return fmt.Errorf("durable: shard %d canonical image diverges from manifest", i)
		}
		disk, err := db.readFile(shardFileName(i, e.hash))
		if err != nil {
			return fmt.Errorf("durable: shard %d image: %w", i, err)
		}
		if !bytes.Equal(disk, buf.Bytes()) {
			return fmt.Errorf("durable: shard %d on-disk image is not canonical", i)
		}
	}
	// Tenant cells: every committed namespace must have a live cell
	// whose re-rendered images match the committed files, and every
	// live cell with physical contents must be committed.
	for _, e := range db.man.nss {
		c := db.nss.Get(e.name)
		if c == nil {
			return fmt.Errorf("durable: manifest commits namespace %q with no live cell", e.name)
		}
		nsHseed := nsRoutingSeed(db.man.hseed, e.name)
		for i := range e.shards {
			if ver := c.Store.ShardVersion(i); c.CPVersions == nil || ver != c.CPVersions[i] {
				return fmt.Errorf("durable: namespace %q shard %d has uncheckpointed changes", e.name, i)
			}
			var buf bytes.Buffer
			if _, _, err := c.Store.SnapshotShard(i, &buf); err != nil {
				return fmt.Errorf("durable: rendering namespace %q shard %d: %w", e.name, i, err)
			}
			if sha256.Sum256(buf.Bytes()) != e.shards[i].hash {
				return fmt.Errorf("durable: namespace %q shard %d canonical image diverges from manifest", e.name, i)
			}
			disk, err := db.readFile(nsShardFileName(nsHseed, i, e.shards[i].hash))
			if err != nil {
				return fmt.Errorf("durable: namespace %q shard %d image: %w", e.name, i, err)
			}
			if !bytes.Equal(disk, buf.Bytes()) {
				return fmt.Errorf("durable: namespace %q shard %d on-disk image is not canonical", e.name, i)
			}
		}
	}
	for _, c := range db.nss.Snapshot() {
		if db.man.nsAt(c.Name) != nil {
			continue
		}
		phys := 0
		for i := 0; i < c.Store.NumShards(); i++ {
			phys += c.Store.ShardLen(i)
		}
		if phys > 0 {
			return fmt.Errorf("durable: namespace %q has uncheckpointed contents", c.Name)
		}
	}
	return nil
}
