package durable

import (
	"errors"
	"io"
	"testing"
)

// The crash model must be pessimistic: nothing is durable until the
// right fsyncs happened, in the right order.
func TestMemFSCrashSemantics(t *testing.T) {
	// Each case lives in its own directory: SyncDir persists every
	// entry of the directory it is called on, so mixing cases in one
	// directory would let one case's fsync rescue another's file.
	write := func(m *MemFS, dir, name, data string, syncFile, syncDir bool) {
		t.Helper()
		f, err := m.Create(dir + "/" + name)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write([]byte(data)); err != nil {
			t.Fatal(err)
		}
		if syncFile {
			if err := f.Sync(); err != nil {
				t.Fatal(err)
			}
		}
		f.Close()
		if syncDir {
			if err := m.SyncDir(dir); err != nil {
				t.Fatal(err)
			}
		}
	}
	read := func(m *MemFS, dir, name string) (string, bool) {
		t.Helper()
		f, err := m.Open(dir + "/" + name)
		if err != nil {
			return "", false
		}
		b, err := io.ReadAll(f)
		f.Close()
		if err != nil {
			t.Fatal(err)
		}
		return string(b), true
	}

	m := NewMemFS()
	write(m, "d1", "lost", "xx", false, false)       // neither sync: gone
	write(m, "d2", "named", "yy", false, true)       // dir synced, content not: empty
	write(m, "d3", "full", "zz", true, true)         // both: survives intact
	write(m, "d4", "contentonly", "ww", true, false) // content synced, name not: gone

	c := m.Crash()
	if _, ok := read(c, "d1", "lost"); ok {
		t.Error("unsynced file survived the crash")
	}
	if _, ok := read(c, "d4", "contentonly"); ok {
		t.Error("file with unsynced directory entry survived the crash")
	}
	if got, ok := read(c, "d2", "named"); !ok || got != "" {
		t.Errorf("dir-synced/content-unsynced file = %q, %v; want empty file", got, ok)
	}
	if got, ok := read(c, "d3", "full"); !ok || got != "zz" {
		t.Errorf("fully synced file = %q, %v; want \"zz\"", got, ok)
	}

	// Rename durability: until SyncDir, a crash rolls the name back.
	write(m, "d", "a", "v1", true, true)
	if err := m.Rename("d/a", "d/b"); err != nil {
		t.Fatal(err)
	}
	c2 := m.Crash()
	if _, ok := read(c2, "d", "b"); ok {
		t.Error("un-dir-synced rename survived the crash")
	}
	if got, ok := read(c2, "d", "a"); !ok || got != "v1" {
		t.Errorf("old name after crashed rename = %q, %v; want \"v1\"", got, ok)
	}
	if err := m.SyncDir("d"); err != nil {
		t.Fatal(err)
	}
	c3 := m.Crash()
	if got, ok := read(c3, "d", "b"); !ok || got != "v1" {
		t.Errorf("dir-synced rename lost: %q, %v", got, ok)
	}
	if _, ok := read(c3, "d", "a"); ok {
		t.Error("old name survived a dir-synced rename")
	}
}

func TestMemFSFailAfter(t *testing.T) {
	m := NewMemFS()
	f, err := m.Create("d/x")
	if err != nil {
		t.Fatal(err)
	}
	f.Close()
	m.FailAfter(2) // next op succeeds, the one after fails
	if _, err := m.Create("d/y"); err != nil {
		t.Fatalf("op before the fault point failed: %v", err)
	}
	if _, err := m.Create("d/z"); !errors.Is(err, ErrInjected) {
		t.Fatalf("op at the fault point = %v, want ErrInjected", err)
	}
	// Halted: every later mutating op fails too, reads still work.
	if err := m.SyncDir("d"); !errors.Is(err, ErrInjected) {
		t.Fatalf("op after the fault point = %v, want ErrInjected", err)
	}
	if _, err := m.Open("d/x"); err != nil {
		t.Fatalf("read after halt failed: %v", err)
	}
	if _, err := m.List("d"); err != nil {
		t.Fatalf("list after halt failed: %v", err)
	}
}
