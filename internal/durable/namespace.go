package durable

// Namespace surface: per-tenant cells living beside the default
// keyspace, each routed under a seed derived one-way from the
// database's routing seed and the tenant name. Tenant cells checkpoint
// through the same engine as the default shards — canonical images,
// content-and-seed-addressed file names, one manifest commit point —
// so the paper's guarantee lifts from keys to whole tenants: after
// DropNamespace + Checkpoint, the directory is byte-identical to one
// where the tenant never existed.

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"sort"

	"repro/internal/namespace"
	"repro/internal/shard"
)

// ErrNoNamespace is returned when a namespace is absent from the last
// committed checkpoint.
var ErrNoNamespace = errors.New("durable: namespace not committed")

// NamespaceStat is one live namespace in a listing: the tenant name
// and its live key count. Listings are always byte-sorted by name.
type NamespaceStat struct {
	Name string
	Keys int
}

// nsCell returns the named tenant's cell, creating it (mirroring the
// default store's shard count and dictionary constants) when create is
// set. Without create, a missing tenant returns (nil, nil).
func (db *DB) nsCell(name string, create bool) (*namespace.Cell, error) {
	if err := namespace.ValidateName(name); err != nil {
		return nil, err
	}
	if c := db.nss.Get(name); c != nil {
		return c, nil
	}
	if !create {
		return nil, nil
	}
	return db.nss.GetOrCreate(name, func() (*namespace.Cell, error) {
		s := db.store.Load()
		cfg := shard.Config{Shards: s.NumShards(), PMA: s.PMAConfig()}
		return namespace.NewCell(name, s.RoutingSeed(), cfg, db.opts.Clock)
	})
}

// NSPut upserts key in the named tenant's cell, creating the cell on
// first write, and reports whether the key was newly inserted.
func (db *DB) NSPut(ns string, key, val int64) (bool, error) {
	return db.NSPutTTL(ns, key, val, 0)
}

// NSPutTTL is NSPut with an absolute expiry epoch (0: never expires).
func (db *DB) NSPutTTL(ns string, key, val, exp int64) (bool, error) {
	c, err := db.nsCell(ns, true)
	if err != nil {
		return false, err
	}
	inserted := c.Store.PutTTL(key, val, exp)
	db.noteDirty(1)
	return inserted, nil
}

// NSGet returns the value for key in the named tenant's cell. A
// missing tenant reads as empty.
func (db *DB) NSGet(ns string, key int64) (int64, bool) {
	if c := db.nss.Get(ns); c != nil {
		return c.Store.Get(key)
	}
	return 0, false
}

// NSGetTTL returns the value and recorded expiry for key in the named
// tenant's cell.
func (db *DB) NSGetTTL(ns string, key int64) (val, exp int64, ok bool) {
	if c := db.nss.Get(ns); c != nil {
		return c.Store.GetTTL(key)
	}
	return 0, 0, false
}

// NSHas reports whether the named tenant holds key.
func (db *DB) NSHas(ns string, key int64) bool {
	c := db.nss.Get(ns)
	return c != nil && c.Store.Has(key)
}

// NSDelete removes key from the named tenant's cell and reports
// whether it was present.
func (db *DB) NSDelete(ns string, key int64) bool {
	c := db.nss.Get(ns)
	if c == nil {
		return false
	}
	deleted := c.Store.Delete(key)
	db.noteDirty(1)
	return deleted
}

// NSLen returns the named tenant's live key count (0 if absent).
func (db *DB) NSLen(ns string) int {
	if c := db.nss.Get(ns); c != nil {
		return c.Store.Len()
	}
	return 0
}

// DropNamespace removes the named tenant's cell from the live store
// and reports whether it existed. The erasure completes at the next
// checkpoint: the new manifest omits the tenant, the sweep zero-wipes
// and unlinks its image files, and the manifest rewrite retires the
// only byte surface that ever held the name. Callers that need the
// erasure durable now — and drop-undone-on-failure semantics — use
// DropNamespaceSync instead.
func (db *DB) DropNamespace(ns string) bool {
	existed := db.nss.Drop(ns)
	if existed {
		db.noteDirty(1)
	}
	return existed
}

// DropNamespaceSync drops the named tenant AND commits the erasure in
// one call: on a true return the new manifest omits the tenant and its
// image files are wiped and unlinked — the erasure is already durable.
// If the checkpoint fails, the cell is restored to the live store
// before the error returns, so a failed drop is not observable (and a
// retry performs the full drop again). If the tenant is absent from
// the live store but the last committed manifest still lists it — a
// prior DropNamespace whose checkpoint was deferred, or failed — the
// erasure is still pending, so a checkpoint is committed and true
// returned: the tenant was durably there, and now it durably is not.
//
// Callers must serialize this with writers that could recreate the
// tenant (the server's coalescer does): a cell created between the
// drop and a failing checkpoint's restore would be replaced by the
// restored one.
func (db *DB) DropNamespaceSync(ns string) (bool, error) {
	return db.DropNamespaceSyncTraced(ns, 0, 0)
}

// DropNamespaceSyncTraced is DropNamespaceSync carrying the trace
// identity of the DROPNS request that demanded the barrier (see
// CheckpointTraced): the erasure's checkpoint span joins trace tid
// under span psid. Zero ids mean untraced.
func (db *DB) DropNamespaceSyncTraced(ns string, tid, psid uint64) (bool, error) {
	if db.closed.Load() {
		return false, ErrClosed
	}
	c := db.nss.Take(ns)
	if c == nil {
		if !db.nsInManifest(ns) {
			return false, nil
		}
		if err := db.checkpoint(tid, psid); err != nil {
			return false, err
		}
		return true, nil
	}
	db.noteDirty(1)
	if err := db.checkpoint(tid, psid); err != nil {
		db.nss.Put(c)
		return false, err
	}
	return true, nil
}

// nsInManifest reports whether the last committed manifest lists ns.
func (db *DB) nsInManifest(ns string) bool {
	db.cpMu.Lock()
	defer db.cpMu.Unlock()
	return db.man != nil && db.man.nsAt(ns) != nil
}

// Namespaces lists the live tenants — byte-sorted by name, live key
// counts, cells with no live keys omitted (a created-then-emptied
// tenant is indistinguishable from one that never existed, in listings
// as on disk).
func (db *DB) Namespaces() []NamespaceStat {
	cells := db.nss.Snapshot()
	out := make([]NamespaceStat, 0, len(cells))
	for _, c := range cells {
		if n := c.Store.Len(); n > 0 {
			out = append(out, NamespaceStat{Name: c.Name, Keys: n})
		}
	}
	return out
}

// NamespaceCount returns the number of live tenants with at least one
// live key.
func (db *DB) NamespaceCount() int { return len(db.Namespaces()) }

// NSNames returns the COMMITTED tenant names — the ones in the last
// manifest — byte-sorted. This is the replication view: a replica
// mirrors committed state, so it gathers exactly these.
func (db *DB) NSNames() ([]string, error) {
	db.cpMu.Lock()
	defer db.cpMu.Unlock()
	if db.man == nil {
		return nil, fmt.Errorf("durable: no committed checkpoint")
	}
	names := make([]string, len(db.man.nss))
	for i := range db.man.nss {
		names[i] = db.man.nss[i].name
	}
	return names, nil
}

// NSShardHashes returns the named tenant's derived routing seed and
// committed per-shard image hashes. A tenant absent from the last
// manifest returns ErrNoNamespace.
func (db *DB) NSShardHashes(ns string) (nsHseed uint64, entries []ShardHash, err error) {
	db.cpMu.Lock()
	defer db.cpMu.Unlock()
	if db.man == nil {
		return 0, nil, fmt.Errorf("durable: no committed checkpoint")
	}
	e := db.man.nsAt(ns)
	if e == nil {
		return 0, nil, fmt.Errorf("%w: %q", ErrNoNamespace, ns)
	}
	entries = make([]ShardHash, len(e.shards))
	for i, s := range e.shards {
		entries[i] = ShardHash{Size: s.size, Hash: s.hash}
	}
	return nsRoutingSeed(db.man.hseed, ns), entries, nil
}

// NSShardImage returns the committed canonical image of the named
// tenant's shard i, verified against the manifest hash. A hash that is
// no longer current fails with ErrStaleShard.
func (db *DB) NSShardImage(ns string, i int, hash [32]byte) ([]byte, error) {
	db.cpMu.Lock()
	defer db.cpMu.Unlock()
	if db.man == nil {
		return nil, fmt.Errorf("durable: no committed checkpoint")
	}
	e := db.man.nsAt(ns)
	if e == nil {
		return nil, fmt.Errorf("%w: %q", ErrNoNamespace, ns)
	}
	if i < 0 || i >= len(e.shards) {
		return nil, fmt.Errorf("durable: namespace shard %d out of range, %d shards", i, len(e.shards))
	}
	if e.shards[i].hash != hash {
		return nil, fmt.Errorf("%w: namespace %q shard %d", ErrStaleShard, ns, i)
	}
	img, err := db.readFile(nsShardFileName(nsRoutingSeed(db.man.hseed, ns), i, hash))
	if err != nil {
		return nil, fmt.Errorf("durable: namespace %q shard %d image: %w", ns, i, err)
	}
	if sha256.Sum256(img) != hash {
		return nil, fmt.Errorf("durable: namespace %q shard %d image corrupt on disk", ns, i)
	}
	return img, nil
}

// sortedNSImages returns nss byte-sorted by name without mutating the
// caller's slice.
func sortedNSImages(nss []NSImages) []NSImages {
	out := make([]NSImages, len(nss))
	copy(out, nss)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
