package durable

import (
	"bytes"
	"errors"
	"testing"
	"time"
)

// memOpts returns options pinned to an in-memory FS with no background
// goroutine, the baseline for deterministic tests.
func memOpts(fs *MemFS, shards int, seed uint64) *Options {
	return &Options{Shards: shards, Seed: seed, NoBackground: true, FS: fs}
}

func dump(t *testing.T, db *DB) map[int64]int64 {
	t.Helper()
	out := map[int64]int64{}
	db.Ascend(func(it Item) bool {
		out[it.Key] = it.Val
		return true
	})
	return out
}

func sameContents(a, b map[int64]int64) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if bv, ok := b[k]; !ok || bv != v {
			return false
		}
	}
	return true
}

// dirSnapshot reads every file in dir into a name -> bytes map.
func dirSnapshot(t *testing.T, fs FS, dir string) map[string][]byte {
	t.Helper()
	names, err := fs.List(dir)
	if err != nil {
		t.Fatal(err)
	}
	out := map[string][]byte{}
	for _, n := range names {
		f, err := fs.Open(dir + "/" + n)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(f); err != nil {
			t.Fatal(err)
		}
		f.Close()
		out[n] = buf.Bytes()
	}
	return out
}

func sameSnapshot(a, b map[string][]byte) bool {
	if len(a) != len(b) {
		return false
	}
	for n, ab := range a {
		if !bytes.Equal(ab, b[n]) {
			return false
		}
	}
	return true
}

func TestOpenCreateCheckpointReopen(t *testing.T) {
	fs := NewMemFS()
	db, err := Open("db", memOpts(fs, 8, 42))
	if err != nil {
		t.Fatal(err)
	}
	ref := map[int64]int64{}
	for k := int64(0); k < 500; k++ {
		db.Put(k*3, k)
		ref[k*3] = k
	}
	for k := int64(0); k < 500; k += 5 {
		db.Delete(k * 3)
		delete(ref, k*3)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := db.VerifyCanonical(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen with a different seed: contents and routing must survive.
	db2, err := Open("db", &Options{Seed: 99, NoBackground: true, FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if got := dump(t, db2); !sameContents(got, ref) {
		t.Fatalf("reopened contents differ: %d keys, want %d", len(got), len(ref))
	}
	if err := db2.Store().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := db2.VerifyCanonical(); err != nil {
		t.Fatal(err)
	}
}

func TestOSFilesystemRoundTrip(t *testing.T) {
	dir := t.TempDir() + "/db"
	db, err := Open(dir, &Options{Shards: 4, Seed: 7, NoBackground: true})
	if err != nil {
		t.Fatal(err)
	}
	for k := int64(0); k < 200; k++ {
		db.Put(k, k*k)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(dir, &Options{Seed: 8, NoBackground: true})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if db2.Len() != 200 {
		t.Fatalf("reopened Len = %d, want 200", db2.Len())
	}
	if v, ok := db2.Get(137); !ok || v != 137*137 {
		t.Fatalf("Get(137) = %d, %v", v, ok)
	}
	if err := db2.VerifyCanonical(); err != nil {
		t.Fatal(err)
	}
}

// An incremental checkpoint of a store with one dirty shard out of 64
// must rewrite exactly one shard file plus the manifest.
func TestIncrementalCheckpointRewritesOnlyDirtyShards(t *testing.T) {
	fs := NewMemFS()
	db, err := Open("db", memOpts(fs, 64, 11))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	items := make([]Item, 0, 4096)
	for k := int64(0); k < 4096; k++ {
		items = append(items, Item{Key: k, Val: k})
	}
	db.PutBatch(items)
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	before := dirSnapshot(t, fs, "db")
	opsBefore := fs.OpCounts()

	// Dirty exactly one shard.
	target := db.Store().ShardOf(77)
	db.Put(77, -1)
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	opsAfter := fs.OpCounts()
	if creates := opsAfter["create"] - opsBefore["create"]; creates != 2 {
		t.Errorf("checkpoint created %d files, want 2 (1 shard image + manifest)", creates)
	}
	if renames := opsAfter["rename"] - opsBefore["rename"]; renames != 2 {
		t.Errorf("checkpoint renamed %d files, want 2", renames)
	}

	after := dirSnapshot(t, fs, "db")
	changedShards := 0
	for n := range before {
		if _, still := after[n]; !still && n != manifestName {
			changedShards++
		}
	}
	if changedShards != 1 {
		t.Errorf("%d shard files superseded, want exactly 1 (dirty shard %d of 64)", changedShards, target)
	}
	if bytes.Equal(before[manifestName], after[manifestName]) {
		t.Error("manifest did not change across a content change")
	}
}

// Two databases built by different operation histories that reach the
// same contents must have byte-identical directories: same file names,
// same file bytes, same manifest.
func TestCanonicalDirectoryAcrossHistories(t *testing.T) {
	build := func(fs *MemFS, twisted bool) {
		db, err := Open("db", memOpts(fs, 8, 1234))
		if err != nil {
			t.Fatal(err)
		}
		if !twisted {
			for k := int64(0); k < 900; k++ {
				db.Put(k, k+7)
			}
			for k := int64(0); k < 900; k += 3 {
				db.Delete(k)
			}
		} else {
			// Same final contents, wildly different history: reverse
			// order, interleaved garbage keys, several checkpoints
			// in the middle.
			for k := int64(899); k >= 0; k-- {
				db.Put(k, -k)
				db.Put(k+10000, 1)
			}
			if err := db.Checkpoint(); err != nil {
				t.Fatal(err)
			}
			for k := int64(0); k < 900; k++ {
				if k%3 == 0 {
					db.Delete(k)
				} else {
					db.Put(k, k+7)
				}
				db.Delete(k + 10000)
			}
			if err := db.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		}
		if err := db.Close(); err != nil {
			t.Fatal(err)
		}
	}
	fsA, fsB := NewMemFS(), NewMemFS()
	build(fsA, false)
	build(fsB, true)
	a, b := dirSnapshot(t, fsA, "db"), dirSnapshot(t, fsB, "db")
	if !sameSnapshot(a, b) {
		t.Fatalf("directories diverge across histories: %d files vs %d files", len(a), len(b))
	}
}

// A version bump whose canonical bytes come out unchanged (mutation
// undone) must not rewrite anything.
func TestUnchangedContentSkipsRewrite(t *testing.T) {
	fs := NewMemFS()
	db, err := Open("db", memOpts(fs, 4, 5))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for k := int64(0); k < 100; k++ {
		db.Put(k, k)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	before := fs.OpCounts()

	db.Put(3, 999)
	db.Put(3, 3) // back to the committed value
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	after := fs.OpCounts()
	if after["create"] != before["create"] || after["rename"] != before["rename"] {
		t.Errorf("undone mutation caused a rewrite: creates %d->%d renames %d->%d",
			before["create"], after["create"], before["rename"], after["rename"])
	}

	// And a checkpoint with no version movement at all is a no-op too.
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if got := fs.OpCounts(); got["syncdir"] != after["syncdir"] {
		t.Error("clean checkpoint touched the filesystem")
	}
}

func TestBackgroundCheckpointThreshold(t *testing.T) {
	fs := NewMemFS()
	db, err := Open("db", &Options{
		Shards: 4, Seed: 3, FS: fs,
		CheckpointInterval:  time.Hour, // only the threshold can fire
		CheckpointThreshold: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	base := db.Checkpoints()
	for k := int64(0); k < 64; k++ {
		db.Put(k, k)
	}
	deadline := time.Now().Add(10 * time.Second)
	for db.Checkpoints() == base {
		if time.Now().After(deadline) {
			t.Fatal("threshold-triggered background checkpoint never ran")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestBackgroundCheckpointInterval(t *testing.T) {
	fs := NewMemFS()
	db, err := Open("db", &Options{
		Shards: 4, Seed: 3, FS: fs,
		CheckpointInterval:  5 * time.Millisecond,
		CheckpointThreshold: 1 << 30, // only the timer can fire
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	base := db.Checkpoints()
	db.Put(1, 1)
	deadline := time.Now().Add(10 * time.Second)
	for db.Checkpoints() == base {
		if time.Now().After(deadline) {
			t.Fatal("interval-triggered background checkpoint never ran")
		}
		time.Sleep(time.Millisecond)
	}
}

// Superseded image files must be zero-overwritten before unlink.
func TestSupersededFilesAreWiped(t *testing.T) {
	fs := NewMemFS()
	db, err := Open("db", memOpts(fs, 2, 9))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for k := int64(0); k < 200; k++ {
		db.Put(k, k)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for k := int64(0); k < 200; k++ {
		db.Put(k, -k)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	wipedImages := 0
	for _, r := range fs.Removals() {
		if r.Name != manifestName && len(r.Name) > 4 && r.Name[len(r.Name)-4:] == ".img" {
			if !r.Wiped {
				t.Errorf("superseded image %s unlinked without wipe", r.Name)
			}
			wipedImages++
		}
	}
	if wipedImages == 0 {
		t.Fatal("no superseded image was removed; expected wiped removals")
	}
}

func TestOpenRejectsCorruption(t *testing.T) {
	newDB := func() *MemFS {
		fs := NewMemFS()
		db, err := Open("db", memOpts(fs, 4, 2))
		if err != nil {
			t.Fatal(err)
		}
		for k := int64(0); k < 300; k++ {
			db.Put(k, k)
		}
		if err := db.Close(); err != nil {
			t.Fatal(err)
		}
		return fs
	}
	corrupt := func(fs *MemFS, pick func(string) bool, mutate func([]byte) []byte) {
		t.Helper()
		names, err := fs.List("db")
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range names {
			if !pick(n) {
				continue
			}
			f, _ := fs.Open("db/" + n)
			var buf bytes.Buffer
			buf.ReadFrom(f)
			f.Close()
			w, err := fs.Create("db/" + n)
			if err != nil {
				t.Fatal(err)
			}
			w.Write(mutate(buf.Bytes()))
			w.Close()
			return
		}
		t.Fatal("no file matched")
	}
	flip := func(b []byte) []byte { b[len(b)/2] ^= 0x40; return b }
	trunc := func(b []byte) []byte { return b[:len(b)/3] }

	fs := newDB()
	corrupt(fs, func(n string) bool { return n == manifestName }, flip)
	if _, err := Open("db", &Options{FS: fs, NoBackground: true}); err == nil {
		t.Error("Open accepted a corrupt manifest")
	}

	fs = newDB()
	corrupt(fs, func(n string) bool { return n != manifestName }, flip)
	if _, err := Open("db", &Options{FS: fs, NoBackground: true}); err == nil {
		t.Error("Open accepted a corrupt shard image")
	}

	fs = newDB()
	corrupt(fs, func(n string) bool { return n != manifestName }, trunc)
	if _, err := Open("db", &Options{FS: fs, NoBackground: true}); err == nil {
		t.Error("Open accepted a truncated shard image")
	}
}

func TestOpenSweepsDebris(t *testing.T) {
	fs := NewMemFS()
	db, err := Open("db", memOpts(fs, 2, 1))
	if err != nil {
		t.Fatal(err)
	}
	db.Put(1, 1)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	for _, junk := range []string{"db/stray.img.tmp", "db/shard-0001-0000000000000000.img"} {
		f, err := fs.Create(junk)
		if err != nil {
			t.Fatal(err)
		}
		f.Write([]byte("junk"))
		f.Close()
	}
	db2, err := Open("db", &Options{FS: fs, NoBackground: true})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	names, err := fs.List("db")
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range names {
		if n == "stray.img.tmp" || n == "shard-0001-0000000000000000.img" {
			t.Errorf("debris %s survived Open", n)
		}
	}
	if err := db2.VerifyCanonical(); err != nil {
		t.Fatal(err)
	}
}

func TestClosedErrors(t *testing.T) {
	fs := NewMemFS()
	db, err := Open("db", memOpts(fs, 2, 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); !errors.Is(err, ErrClosed) {
		t.Errorf("second Close = %v, want ErrClosed", err)
	}
	if err := db.Checkpoint(); !errors.Is(err, ErrClosed) {
		t.Errorf("Checkpoint after Close = %v, want ErrClosed", err)
	}
}
