package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/client"
	"repro/internal/durable"
	"repro/internal/expiry"
	"repro/internal/foretest"
	"repro/internal/namespace"
	"repro/internal/obs"
	"repro/internal/trace"
)

// TestScrapeUnderLoad hammers the server with a mixed workload while
// concurrent readers scrape the registry's text exposition the whole
// time — the race detector gets every Observe/WriteText interleaving,
// and the scraped output must stay well-formed and monotone.
func TestScrapeUnderLoad(t *testing.T) {
	reg := obs.NewRegistry()
	db := newTestDB(t, 4)
	defer db.Abandon()
	srv, addr := startTCP(t, db, Config{SweepInterval: -1, Metrics: reg})
	defer srv.Close()

	cl, err := client.OpenObserved(addr, 2, 5*time.Second, reg)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				k := int64(w*1_000_000 + i%512)
				switch i % 4 {
				case 0:
					cl.Put(k, k*2)
				case 1:
					cl.Get(k)
				case 2:
					cl.PutBatch([]client.Item{{Key: k, Val: 1}, {Key: k + 1, Val: 2}})
				case 3:
					cl.Delete(k)
				}
			}
		}(w)
	}
	// Scrape concurrently with the load, like a monitoring system would.
	var lastOps uint64
	for i := 0; i < 40; i++ {
		var buf bytes.Buffer
		if err := reg.WriteText(&buf); err != nil {
			t.Fatal(err)
		}
		out := buf.String()
		for _, fam := range []string{
			"hidb_server_op_seconds", "hidb_server_phase_seconds",
			"hidb_server_requests_total", "hidb_client_request_seconds",
		} {
			if !strings.Contains(out, fam) {
				t.Fatalf("scrape %d missing family %s", i, fam)
			}
		}
		// Requests counted so far must be monotone across scrapes.
		ops := srv.st.requests.Load()
		if ops < lastOps {
			t.Fatalf("requests went backwards: %d then %d", lastOps, ops)
		}
		lastOps = ops
		time.Sleep(time.Millisecond) // interleave with the workload
	}
	close(stop)
	wg.Wait()

	// After quiesce, the per-op histograms' totals must equal the
	// dispatched request count exactly — nothing double counted or lost.
	var histTotal uint64
	for op := range opLabels {
		if h := srv.sm.ops[op]; h != nil {
			histTotal += h.Snapshot().Count
		}
	}
	reqs := srv.st.requests.Load()
	if reqs == 0 {
		t.Fatal("workload issued no requests")
	}
	if histTotal != reqs {
		t.Fatalf("op histograms hold %d observations, server dispatched %d", histTotal, reqs)
	}
}

// TestTelemetryForensicallyClean runs deletes, TTL expiries, and
// namespaced tenant traffic with distinctive keys, values, and a
// distinctive tenant name, with the slow-op threshold set so low that
// every operation is logged and tracing sampling everything, then
// seizes the slow-op log, a full /metrics scrape (exemplar suffixes
// included), the expvar stats JSON, and the complete /debug/traces
// dump, and greps them all — via the internal/foretest needle catalog:
// little-endian, big-endian, and decimal ASCII, plus the tenant's name
// and derived seed. Telemetry retained by an adversary must reveal
// only that operations happened, never which keys or which tenants
// they touched.
func TestTelemetryForensicallyClean(t *testing.T) {
	clk := expiry.NewManual(100)
	reg := obs.NewRegistry()
	var slowLog lockedBuffer
	db, err := durable.Open("db", &durable.Options{
		Shards: 4, Seed: 7, NoBackground: true, FS: durable.NewMemFS(), Clock: clk, Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Abandon()
	tr := trace.NewStore(1024, 1, reg) // sample everything: maximal trace exposure
	srv, addr := startTCP(t, db, Config{
		SweepInterval:   -1,
		Metrics:         reg,
		SlowOpThreshold: time.Nanosecond, // everything is "slow": maximal log exposure
		SlowOpLog:       &slowLog,
		Trace:           tr,
	})
	defer srv.Close()

	cl, err := client.OpenObserved(addr, 1, 5*time.Second, reg)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	cl.SetTrace(tr)

	const nDead = 24
	const tenant = "tenant-secret-xk"
	deadKey := func(i int64) int64 { return 0x5EC4E7_0000_0000 + i*0x01_0101 }
	deadVal := func(i int64) int64 { return -0x7A11_DEAD_0000_0000 + i*0x0107 }
	var needles []foretest.Needle
	for i := int64(0); i < nDead; i++ {
		needles = append(needles, foretest.Int64NeedlesText(fmt.Sprintf("deadKey(%d)", i), deadKey(i))...)
		needles = append(needles, foretest.Int64NeedlesText(fmt.Sprintf("deadVal(%d)", i), deadVal(i))...)
	}
	needles = append(needles, foretest.StringNeedle("tenant name", tenant))
	needles = append(needles, foretest.Uint64Needles("tenant derived seed",
		namespace.DeriveSeed(db.Store().RoutingSeed(), tenant))...)
	for i := int64(0); i < nDead; i++ {
		if i%2 == 0 {
			if _, err := cl.PutTTL(deadKey(i), deadVal(i), 200); err != nil {
				t.Fatal(err)
			}
		} else {
			if _, err := cl.Put(deadKey(i), deadVal(i)); err != nil {
				t.Fatal(err)
			}
		}
		cl.Get(deadKey(i)) // reads go through the inline slow-op path too
	}
	// Half die by deletion, half by expiry.
	for i := int64(1); i < nDead; i += 2 {
		if _, err := cl.Delete(deadKey(i)); err != nil {
			t.Fatal(err)
		}
	}
	// A tenant lives a full life across every namespaced opcode — put,
	// get, delete, list, drop — all under the maximal-exposure slow-op
	// log. Nothing tenant-identifying may reach any telemetry surface.
	for i := int64(0); i < 8; i++ {
		if _, err := cl.NSPut(tenant, deadKey(i), deadVal(i)); err != nil {
			t.Fatal(err)
		}
		cl.NSGet(tenant, deadKey(i))
	}
	if _, err := cl.NSDelete(tenant, deadKey(0)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := cl.ListNS(); err != nil {
		t.Fatal(err)
	}
	if existed, err := cl.DropNS(tenant); err != nil || !existed {
		t.Fatalf("drop: %v %v", existed, err)
	}
	clk.Set(300)
	if _, err := cl.Checkpoint(); err != nil { // sweeps the expired half
		t.Fatal(err)
	}

	var metrics bytes.Buffer
	if err := reg.WriteText(&metrics); err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	tr.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces?limit=100000", nil))
	seized := map[string][]byte{
		"slow-op log":  slowLog.Bytes(),
		"metrics page": metrics.Bytes(),
		"expvar stats": statsJSON(t, srv),
		"trace dump":   rec.Body.Bytes(),
	}
	if len(seized["slow-op log"]) == 0 {
		t.Fatal("sanity: the slow-op log captured nothing")
	}
	if !bytes.Contains(seized["slow-op log"], []byte("slowop ts=")) {
		t.Fatalf("slow-op log is not logfmt: %.200s", seized["slow-op log"])
	}
	// The traced surfaces must actually be exposed before being declared
	// clean: spans in the dump, exemplars on the latency buckets, and
	// trace= correlation ids in the slow-op log — each carrying only
	// bare-hex trace ids, never anything an id could smuggle.
	var page struct {
		Traces []json.RawMessage `json:"traces"`
	}
	if err := json.Unmarshal(seized["trace dump"], &page); err != nil {
		t.Fatalf("trace dump is not JSON: %v", err)
	}
	if len(page.Traces) == 0 {
		t.Fatal("sanity: the trace dump captured no traces")
	}
	if !bytes.Contains(seized["metrics page"], []byte(`# {trace_id="`)) {
		t.Fatal("sanity: no exemplar reached the metrics page")
	}
	traceField := regexp.MustCompile(`trace=(\S+)`)
	bareHex := regexp.MustCompile(`^[0-9a-f]{1,16}$`)
	fields := traceField.FindAllSubmatch(seized["slow-op log"], -1)
	if len(fields) == 0 {
		t.Fatal("sanity: no slow-op record carried a trace= field")
	}
	for _, m := range fields {
		if !bareHex.Match(m[1]) {
			t.Fatalf("slow-op trace= value %q is not a bare hex id", m[1])
		}
	}
	for where, data := range seized {
		foretest.AssertAbsent(t, where, data, needles)
	}
}

// statsJSON renders the server's Stats as expvar would publish it —
// the third telemetry surface an adversary could seize.
func statsJSON(t *testing.T, srv *Server) []byte {
	t.Helper()
	data, err := json.Marshal(srv.Stats())
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// lockedBuffer is a goroutine-safe bytes.Buffer for capturing the
// slow-op log from the server's concurrent recorders.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) Bytes() []byte {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]byte(nil), b.buf.Bytes()...)
}

// TestStatsKeysPhysicalVsLogical pins the satellite fix: the old single
// "keys" stat summed physical shard lengths, silently counting expired
// entries the sweeper had not reached. The two counts must now be
// reported distinctly and disagree by exactly the sweep backlog.
func TestStatsKeysPhysicalVsLogical(t *testing.T) {
	clk := expiry.NewManual(100)
	db, err := durable.Open("db", &durable.Options{
		Shards: 4, Seed: 3, NoBackground: true, NoSweep: true, FS: durable.NewMemFS(), Clock: clk,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Abandon()
	srv := New(db, Config{SweepInterval: -1})
	defer srv.Close()

	for k := int64(0); k < 10; k++ {
		db.Put(k, k)
	}
	for k := int64(100); k < 105; k++ {
		db.PutTTL(k, k, 150) // will expire at 150
	}
	st := srv.Stats()
	if st.KeysPhysical != 15 || st.KeysLogical != 15 {
		t.Fatalf("before expiry: physical=%d logical=%d, want 15/15", st.KeysPhysical, st.KeysLogical)
	}
	clk.Set(200) // the 5 TTL entries are now dead but unswept
	st = srv.Stats()
	if st.KeysPhysical != 15 {
		t.Fatalf("physical=%d, want 15 (expired entries still physically present)", st.KeysPhysical)
	}
	if st.KeysLogical != 10 {
		t.Fatalf("logical=%d, want 10 (expired entries invisible)", st.KeysLogical)
	}
	if n := db.SweepExpired(200); n != 5 {
		t.Fatalf("swept %d, want 5", n)
	}
	st = srv.Stats()
	if st.KeysPhysical != 10 || st.KeysLogical != 10 {
		t.Fatalf("after sweep: physical=%d logical=%d, want 10/10", st.KeysPhysical, st.KeysLogical)
	}
}
