package server

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/durable"
	"repro/internal/expiry"
	"repro/internal/obs"
	"repro/internal/proto"
	"repro/internal/trace"
)

// ErrServerClosed is returned by Serve and ListenAndServe after
// Shutdown or Close.
var ErrServerClosed = errors.New("server: closed")

// Config tunes a Server. The zero value is production-ready defaults.
type Config struct {
	// MaxConns bounds concurrently served connections (0: 1024). A
	// connection over the limit receives an ErrCodeBusy error frame and
	// is closed.
	MaxConns int
	// ReadTimeout is the idle deadline: a connection that sends no
	// frame for this long is closed (0: 5 minutes; negative: none).
	ReadTimeout time.Duration
	// WriteTimeout bounds each reply flush (0: 30 seconds; negative:
	// none). A peer that stops reading is disconnected rather than
	// allowed to pin server memory.
	WriteTimeout time.Duration
	// MaxPayload caps accepted frame payloads (0: proto.MaxPayload).
	MaxPayload int
	// MaxRangeItems caps the items in one RANGE reply (0: 4096; always
	// clamped to proto.MaxRangeItems so the reply fits a frame). Longer
	// scans paginate: the reply's more flag tells the client to reissue
	// from its last key + 1.
	MaxRangeItems int
	// WriteQueue is the coalescer's queue depth in operations
	// (0: 4096); submitters block when it is full.
	WriteQueue int
	// MaxWriteBatch caps one coalesced ApplyBatch (0: 4096).
	MaxWriteBatch int
	// ReadOnly makes this a read replica: PUT, DEL, mutating BATCH
	// kinds, and CHECKPOINT are answered with ErrCodeReadOnly (the
	// connection stays open — reads continue). SHARDHASH/SYNC still
	// serve the node's own last installed checkpoint, so replicas can
	// chain off replicas. Promote lifts the restriction at runtime.
	ReadOnly bool
	// OnPromote, if set, runs inside Promote BEFORE writes are accepted.
	// A replica wires its anti-entropy shutdown here: the callback must
	// not return until no further checkpoint install can land, or a
	// stale install could clobber post-promotion writes.
	OnPromote func()
	// PromoteBackground makes Promote start the DB's background
	// checkpointer (replicas open their DB with NoBackground — installs,
	// not local checkpoints, keep the directory current — so a promoted
	// primary needs the checkpointer brought up).
	PromoteBackground bool
	// MaxSyncChunk caps the image bytes in one SYNC reply (0: 256 KiB;
	// always clamped to proto.MaxSyncChunk so the reply fits a frame).
	MaxSyncChunk int
	// SweepInterval is the expiry sweeper's poll period (0: 1 second;
	// negative: no sweeper). The interval only bounds how soon after an
	// epoch transition the sweeper NOTICES it — sweeps themselves are
	// epoch-triggered (at most one per epoch, of exactly the entries
	// already dead at it), so poll frequency never reaches the disk
	// state. Read-only replicas never run a sweeper: their dead entries
	// leave when the primary's swept checkpoint ships.
	SweepInterval time.Duration
	// Metrics registers the server's metric set — per-opcode latency
	// histograms, phase timings (decode → coalesce-wait → apply →
	// encode → flush), and counter mirrors — on the given registry,
	// scraped via its /metrics handler. nil: the same recording happens
	// into unregistered instances (the hot path never branches on
	// observability) and is exposed nowhere.
	Metrics *obs.Registry
	// SlowOpThreshold enables the sampled slow-op structured log:
	// operations whose total latency reaches the threshold are recorded
	// to SlowOpLog, rate-limited per second (0: disabled). The record
	// format is forensically clean by construction — opcode, sizes,
	// shard index, durations, request id; never key or value bytes. See
	// internal/obs.SlowOp and docs/OBSERVABILITY.md.
	SlowOpThreshold time.Duration
	// SlowOpLog receives slow-op records (nil: disabled).
	SlowOpLog io.Writer
	// NSQuota caps each tenant namespace's live key count (0: unlimited).
	// An NSPUT that would grow a tenant past the quota — upserts of
	// existing keys always pass — is refused with ErrCodeQuota. The check
	// is exact: it runs on the coalescer goroutine, serialized with every
	// other namespaced write.
	NSQuota int
	// Trace is the span store request traces are recorded into (nil:
	// tracing off, and every trace branch below reduces to one nil
	// check). A request is KEPT — its span tree recorded — when the
	// client head-sampled it (trace-context sampled flag), when the
	// server head-samples it (the store's rate; only requests arriving
	// with no trace context, so a tracing client's sampling decision is
	// never second-guessed), when it crosses the slow-op threshold, or
	// when it ends in a protocol error; everything else records
	// nothing. Kept server spans carry the client's trace id so
	// /debug/traces stitches the cross-node tree. See internal/trace
	// and docs/OBSERVABILITY.md.
	Trace *trace.Store
}

func (c Config) withDefaults() Config {
	// Sizes get their defaults for any non-positive value (a negative
	// size would panic make(chan)); only the timeouts use negative to
	// mean "none".
	if c.MaxConns <= 0 {
		c.MaxConns = 1024
	}
	if c.ReadTimeout == 0 {
		c.ReadTimeout = 5 * time.Minute
	}
	if c.WriteTimeout == 0 {
		c.WriteTimeout = 30 * time.Second
	}
	if c.MaxPayload <= 0 || c.MaxPayload > proto.MaxPayload {
		c.MaxPayload = proto.MaxPayload
	}
	if c.MaxRangeItems <= 0 || c.MaxRangeItems > proto.MaxRangeItems {
		// The protocol bound keeps every RANGE reply under the frame
		// payload cap; a larger configured value could emit frames no
		// client can read.
		if c.MaxRangeItems > proto.MaxRangeItems {
			c.MaxRangeItems = proto.MaxRangeItems
		} else {
			c.MaxRangeItems = 4096
		}
	}
	if c.WriteQueue <= 0 {
		c.WriteQueue = 4096
	}
	if c.MaxWriteBatch <= 0 {
		c.MaxWriteBatch = 4096
	}
	if c.MaxSyncChunk <= 0 {
		c.MaxSyncChunk = 256 << 10
	} else if c.MaxSyncChunk > proto.MaxSyncChunk {
		c.MaxSyncChunk = proto.MaxSyncChunk
	}
	if c.SweepInterval == 0 {
		c.SweepInterval = time.Second
	}
	return c
}

// Server serves the hidbd wire protocol over a durable.DB. Create one
// with New, start it with Serve or ListenAndServe (or hand it raw
// connections via ServeConn), and stop it with Shutdown (graceful,
// final checkpoint) or Close (severed connections, no checkpoint). The
// Server does not own the DB: closing the DB is the caller's job, after
// the server has stopped.
type Server struct {
	db   *durable.DB
	cfg  Config
	st   stats
	sm   *serverMetrics
	slow *obs.SlowLog
	bat  *batcher
	tr   *trace.Store // nil: tracing off

	mu        sync.Mutex
	listeners map[net.Listener]struct{}
	conns     map[*conn]struct{}
	sem       chan struct{}

	closing atomic.Bool    // draining: reject new work (set under mu)
	batOnce sync.Once      // starts the coalescer (and sweeper) on first use
	wg      sync.WaitGroup // live connection handlers (Add under mu)

	// readOnly is Config.ReadOnly made switchable at runtime; Promote
	// clears it, Demote sets it. promoteMu serializes role changes so
	// the refuse-on-already-writable check and the flip are atomic.
	readOnly   atomic.Bool
	promotions atomic.Uint64
	promoteMu  sync.Mutex

	start time.Time // for the uptime stat

	// Expiry sweeper: an epoch-triggered loop that feeds conditional
	// expire-deletes through the write coalescer. sweepDone is non-nil
	// exactly when the goroutine was started (under batOnce).
	sweep     *expiry.Schedule
	sweepStop chan struct{}
	sweepOnce sync.Once
	sweepDone chan struct{}

	// One-entry cache of the last shard image served to a SYNC fetch,
	// so a replica pulling an image chunk by chunk costs one disk read,
	// not one per chunk. Content-addressed (and namespace-qualified:
	// syncNS is "" for the default keyspace), so it can never serve the
	// wrong bytes — at worst it misses.
	syncMu    sync.Mutex
	syncNS    string
	syncIdx   int
	syncHash  [32]byte
	syncImage []byte
}

// New returns an unstarted server over db.
func New(db *durable.DB, cfg Config) *Server {
	c := cfg.withDefaults()
	s := &Server{
		db:        db,
		cfg:       c,
		listeners: map[net.Listener]struct{}{},
		conns:     map[*conn]struct{}{},
		sem:       make(chan struct{}, c.MaxConns),
		start:     time.Now(),
		sweep:     expiry.NewSchedule(db.Clock()),
		sweepStop: make(chan struct{}),
	}
	s.readOnly.Store(c.ReadOnly)
	s.tr = c.Trace
	s.sm = newServerMetrics(c.Metrics)
	s.slow = obs.NewSlowLog(c.SlowOpLog, c.SlowOpThreshold, c.Metrics)
	if c.Metrics != nil {
		registerServerFuncs(c.Metrics, s)
	}
	s.bat = newBatcher(db, &s.st, s.sm, s.slow, c.WriteQueue, c.MaxWriteBatch, c.NSQuota)
	s.bat.tr = c.Trace
	if c.Trace != nil {
		// Synchronous barriers (CHECKPOINT, DROPNS) thread their trace
		// into the durable layer so checkpoint/sweep spans join the
		// requesting trace; background checkpoints mint their own.
		db.SetTrace(c.Trace)
	}
	return s
}

// startBatcher launches the coalescer — and the expiry sweeper that
// submits through it — exactly once. The sweeper runs on replicas too
// (so a later Promote needs no new goroutine, which would race
// shutdown) but sweepOnceNow is a no-op while the node is read-only.
func (s *Server) startBatcher() {
	s.batOnce.Do(func() {
		go s.bat.run()
		if s.cfg.SweepInterval > 0 {
			s.sweepDone = make(chan struct{})
			go s.sweepLoop()
		}
	})
}

// sweepLoop polls the sweep schedule. The ticker only bounds reaction
// latency; what gets removed is a pure function of (contents, epoch).
func (s *Server) sweepLoop() {
	defer close(s.sweepDone)
	t := time.NewTicker(s.cfg.SweepInterval)
	defer t.Stop()
	for {
		select {
		case <-s.sweepStop:
			return
		case <-t.C:
		}
		s.sweepOnceNow()
	}
}

// sweepOnceNow runs one epoch-triggered sweep if one is due: list the
// keys already dead at the current epoch and push conditional
// expire-deletes through the write coalescer, so the physical removals
// serialize with the pipelined client writes they race — an expire op
// re-checks the entry's recorded expiry under the shard lock, so a key
// a client resurrects mid-sweep survives.
func (s *Server) sweepOnceNow() {
	if s.readOnly.Load() {
		// A replica's dead entries leave when the primary's swept
		// checkpoint ships. The role check comes BEFORE Due() so epochs
		// that pass while read-only stay pending: the first sweep after
		// a promotion covers everything dead at that moment.
		return
	}
	epoch, due := s.sweep.Due()
	if !due {
		return
	}
	keys := s.db.Store().ExpiredKeys(epoch, nil)
	for _, k := range keys {
		s.bat.submit(writeReq{key: k, exp: epoch, expire: true})
	}
	s.sweep.MarkDone(epoch)
	if len(keys) > 0 {
		s.st.sweeps.Add(1)
	}
}

// stopSweeper stops the sweep loop and waits for it to exit. It must
// run before the batcher closes — the loop submits into the batcher's
// queue.
func (s *Server) stopSweeper() {
	s.sweepOnce.Do(func() { close(s.sweepStop) })
	if s.sweepDone != nil {
		<-s.sweepDone
	}
}

// ErrNotReplica is returned by Promote on a node that is already
// writable — a double promotion, or a PROMOTE aimed at the primary.
var ErrNotReplica = errors.New("server: node is already writable")

// Promote lifts a read replica into a writable primary and returns the
// node's promotion count. The sequence is load-bearing: first
// Config.OnPromote quiesces anti-entropy (no checkpoint install may
// land after this returns), then the DB re-enables sweeping (and the
// background checkpointer if Config.PromoteBackground), and only then
// is ReadOnly lifted — so no accepted write can ever be clobbered by a
// stale install. The sweeper, already polling, begins sweeping on its
// next tick. Promotion state lives in memory and on the wire only;
// nothing about the role change is persisted.
func (s *Server) Promote() (uint64, error) {
	s.promoteMu.Lock()
	defer s.promoteMu.Unlock()
	if !s.readOnly.Load() {
		return s.promotions.Load(), ErrNotReplica
	}
	if s.cfg.OnPromote != nil {
		s.cfg.OnPromote()
	}
	s.db.Promote(s.cfg.PromoteBackground)
	s.readOnly.Store(false)
	return s.promotions.Add(1), nil
}

// Demote returns a writable node to read-replica duty (the rejoin
// path: an old primary that crashed and recovered demotes itself
// before syncing off the new primary). Writes in the coalescer queue
// at the flip still apply — demotion is a role change, not a barrier;
// callers quiesce their own clients first.
func (s *Server) Demote() error {
	s.promoteMu.Lock()
	defer s.promoteMu.Unlock()
	if s.readOnly.Load() {
		return errors.New("server: node is already read-only")
	}
	s.db.Demote()
	s.readOnly.Store(true)
	return nil
}

// ListenAndServe listens on addr ("host:port") and serves until
// Shutdown or Close.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Serve accepts connections on ln until Shutdown or Close, then returns
// ErrServerClosed. Multiple Serve calls on different listeners may run
// concurrently.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closing.Load() {
		s.mu.Unlock()
		ln.Close()
		return ErrServerClosed
	}
	s.listeners[ln] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.listeners, ln)
		s.mu.Unlock()
	}()
	s.startBatcher()
	for {
		nc, err := ln.Accept()
		if err != nil {
			if s.closing.Load() {
				return ErrServerClosed
			}
			return err
		}
		select {
		case s.sem <- struct{}{}:
		default:
			s.st.connsRejected.Add(1)
			s.refuse(nc, proto.ErrCodeBusy, "connection limit reached")
			continue
		}
		if !s.admit(nc) {
			<-s.sem
			continue
		}
		go func() {
			defer func() { <-s.sem }()
			s.handle(nc)
		}()
	}
}

// admit reserves a handler slot in the connection WaitGroup, or refuses
// the connection if the server is draining. The check and the Add
// happen under mu — the same lock stop() holds while setting closing —
// so an Add can never race a Shutdown that already started Wait
// (sync.WaitGroup forbids Add concurrent with a Wait at zero).
func (s *Server) admit(nc net.Conn) bool {
	s.mu.Lock()
	if s.closing.Load() {
		s.mu.Unlock()
		s.refuse(nc, proto.ErrCodeShutdown, "server is shutting down")
		return false
	}
	s.wg.Add(1)
	s.mu.Unlock()
	return true
}

// ServeConn serves a single pre-established connection (net.Pipe in
// tests, a socketpair, an accepted TLS conn, ...) to completion. It
// counts against MaxConns only in the sense of sharing the batcher and
// stats; the semaphore governs Serve's accepts.
func (s *Server) ServeConn(nc net.Conn) {
	if !s.admit(nc) {
		return
	}
	s.startBatcher()
	go s.handle(nc)
}

// refuse sends one error frame (best effort, bounded) and closes.
func (s *Server) refuse(nc net.Conn, code byte, msg string) {
	go func() {
		nc.SetWriteDeadline(time.Now().Add(time.Second))
		proto.WriteFrame(nc, errorFrame(0, code, msg))
		nc.Close()
	}()
}

// Shutdown gracefully stops the server: it closes the listeners, wakes
// idle readers, lets in-flight requests finish and their replies flush,
// stops the write coalescer, and commits a final checkpoint. If ctx
// expires first, remaining connections are severed (their unapplied
// requests are dropped; the checkpoint still runs). Shutdown returns
// the checkpoint's error.
func (s *Server) Shutdown(ctx context.Context) error {
	s.stop(false)
	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-ctx.Done():
		s.severConns()
		<-done
	}
	s.stopSweeper()
	s.bat.close()
	return s.db.Checkpoint()
}

// Close force-stops the server: listeners closed, connections severed,
// no final checkpoint — the on-disk state stays at the last commit,
// exactly as if the process had been killed. It never blocks on peers.
func (s *Server) Close() {
	s.stop(true)
	s.wg.Wait()
	s.stopSweeper()
	s.bat.close()
}

// stop closes listeners and either wakes (graceful) or severs (force)
// the live connections. Idempotent via stopOnce for the listener part;
// conn poking is safe to repeat.
func (s *Server) stop(force bool) {
	// closing is set under mu so it cannot interleave with admit():
	// after this critical section, no new handler can join the
	// WaitGroup that Shutdown/Close is about to Wait on.
	s.mu.Lock()
	s.closing.Store(true)
	for ln := range s.listeners {
		ln.Close()
	}
	s.mu.Unlock()
	// Ensure the coalescer goroutine exists: bat.close() waits for it
	// to exit, even if the server never served a connection.
	s.startBatcher()
	if force {
		s.severConns()
	} else {
		s.mu.Lock()
		for c := range s.conns {
			// Expire the blocked read; the reader drains its buffered
			// frames and exits cleanly, flushing pending replies.
			c.nc.SetReadDeadline(time.Now())
		}
		s.mu.Unlock()
	}
}

func (s *Server) severConns() {
	s.mu.Lock()
	conns := make([]*conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	for _, c := range conns {
		c.close()
	}
}

// maxReplyQueue bounds the per-connection outbound queue in frames. A
// healthy peer's queue is bounded by its pipeline depth; a peer that
// pipelines past this without reading replies is disconnected rather
// than allowed to grow server memory.
const maxReplyQueue = 1 << 14

// conn is one served connection.
type conn struct {
	srv *Server
	nc  net.Conn

	// Outbound replies, pre-encoded. sendFrame never blocks — it
	// appends the encoded frame to out under qmu and signals qsig — so
	// the server-wide write coalescer can never be stalled by one slow
	// connection (it just disconnects a peer whose queue passes
	// maxReplyQueue frames). The writer swaps out for its spare buffer
	// and writes the whole burst with one syscall; the two buffers
	// alternate, so a steady pipeline allocates nothing. qdone marks
	// end-of-stream: the reader finished (flush what remains) or the
	// conn died (discard).
	qmu   sync.Mutex
	out   []byte // encoded frames awaiting the writer
	nq    int    // frames currently in out
	qdone bool
	qsig  chan struct{} // capacity 1: wake the writer

	// done closes when the connection is dead.
	done      chan struct{}
	closeOnce sync.Once
	// pending counts writes handed to the coalescer and not yet
	// replied. Only the reader goroutine Adds, so Wait in the reader is
	// race-free; reads and barriers Wait to preserve program order.
	pending sync.WaitGroup

	// Reader-goroutine scratch, reused across requests. Reply payloads
	// are built in pscratch and copied into out by sendFrame before the
	// call returns, so reuse is safe; rangeBuf holds RANGE windows the
	// same way. Only the reader goroutine touches either.
	pscratch []byte
	rangeBuf []proto.Item

	// Per-request wire state, written by readLoop before dispatch and
	// read only on the reader goroutine: the frame's protocol version
	// (replies echo it, which is what keeps v3 clients working against
	// a v4 server) and its trace context. Coalesced writes carry copies
	// in their writeReq instead — the batcher goroutine must never read
	// these fields. reqOp/reqT0 let sendError record an error span for
	// a traced request without threading more parameters through every
	// decode-failure path.
	reqVer byte
	reqT   proto.TraceCtx
	reqOp  byte
	reqT0  time.Time

	// A span identity preminted before an inline apply, for ops that
	// must hand their trace to a lower layer mid-flight (CHECKPOINT
	// threads it into durable so the checkpoint span can parent here).
	// noteInline consumes it: nonzero preSID means "this request is
	// kept, under exactly these ids". Reader-goroutine only.
	preTID uint64
	preSID uint64

	// The trace identity awaiting the next flush, set by whichever
	// goroutine keeps a span tree (reader or batcher) and consumed by
	// the writer after its Write returns, all under qmu. A flush
	// carries many replies; attribution goes to the last kept request
	// — approximate by design, like the flush phase histogram itself.
	flushTID uint64
	flushSID uint64
}

func (c *conn) close() {
	c.closeOnce.Do(func() {
		close(c.done)
		c.nc.Close()
		c.markDone()
	})
}

// markDone ends the outbound stream and wakes the writer.
func (c *conn) markDone() {
	c.qmu.Lock()
	c.qdone = true
	c.qmu.Unlock()
	select {
	case c.qsig <- struct{}{}:
	default:
	}
}

// sendFrame encodes a reply straight into the outbound buffer without
// ever blocking the caller. The payload is copied before sendFrame
// returns, so callers may reuse their payload scratch immediately.
// Replies after end-of-stream are dropped; a peer whose queue is full
// (it stopped reading) is disconnected.
//
// ver and tc are the request's protocol version and trace context,
// passed explicitly because sendFrame runs on both the reader
// goroutine (inline ops) and the coalescer goroutine (batched writes)
// — per-conn "current request" fields would race. The reply is
// encoded in the request's version (a v3 frame simply has nowhere to
// put tc, and AppendFrame omits it) and echoes the trace context so
// the client can confirm the server saw its ids.
func (c *conn) sendFrame(op byte, id uint64, payload []byte, ver byte, tc proto.TraceCtx) {
	c.qmu.Lock()
	if c.qdone {
		c.qmu.Unlock()
		return
	}
	if c.nq >= maxReplyQueue {
		c.qmu.Unlock()
		c.close()
		return
	}
	c.out = proto.AppendFrame(c.out, proto.Frame{Ver: ver, Op: op, ID: id, Payload: payload, Trace: tc})
	c.nq++
	c.qmu.Unlock()
	select {
	case c.qsig <- struct{}{}:
	default:
	}
}

// noteFlushTrace arms the writer's flush-span attribution for the
// next flush on this connection. Called by whichever goroutine just
// kept a span tree; last writer wins.
func (c *conn) noteFlushTrace(tid, sid uint64) {
	c.qmu.Lock()
	c.flushTID, c.flushSID = tid, sid
	c.qmu.Unlock()
}

func errorFrame(id uint64, code byte, msg string) proto.Frame {
	return proto.Frame{
		Ver:     proto.Version,
		Op:      proto.OpError,
		ID:      id,
		Payload: proto.AppendError(nil, code, msg),
	}
}

// handle runs one connection to completion: a writer goroutine plus the
// read-dispatch loop on this goroutine. Must be preceded by wg.Add(1).
func (s *Server) handle(nc net.Conn) {
	defer s.wg.Done()
	c := &conn{
		srv:    s,
		nc:     nc,
		qsig:   make(chan struct{}, 1),
		done:   make(chan struct{}),
		reqVer: proto.Version, // until a frame says otherwise
	}
	s.mu.Lock()
	s.conns[c] = struct{}{}
	s.mu.Unlock()
	if s.closing.Load() {
		// Shutdown may have poked the registered conns just before this
		// one registered; make sure it cannot sit in a blocked read.
		nc.SetReadDeadline(time.Now())
	}
	s.st.connsAccepted.Add(1)
	s.st.connsActive.Add(1)

	var writerDone sync.WaitGroup
	writerDone.Add(1)
	go func() {
		defer writerDone.Done()
		c.writeLoop()
	}()

	c.readLoop()

	// The reader is done submitting. Wait for the coalescer to answer
	// every in-flight write, end the reply stream so the writer flushes
	// and exits, then tear the connection down.
	c.pending.Wait()
	c.markDone()
	writerDone.Wait()
	c.close()

	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
	s.st.connsActive.Add(-1)
}

// writeLoop serializes replies: swap the whole pending byte buffer for
// a spare, write it with one syscall, repeat — so a burst of pipelined
// replies costs one Write and zero per-frame work (frames were encoded
// by sendFrame as they were queued). The two buffers alternate forever,
// so a steady pipeline stops allocating once both have grown to the
// burst size. After a write error the connection is closed and later
// replies are discarded; senders never block either way.
func (c *conn) writeLoop() {
	var spare []byte
	failed := false
	wt := c.srv.cfg.WriteTimeout
	for {
		c.qmu.Lock()
		batch := c.out
		c.out = spare[:0]
		c.nq = 0
		done := c.qdone
		c.qmu.Unlock()
		spare = batch

		if len(batch) > 0 && !failed {
			if wt > 0 {
				c.nc.SetWriteDeadline(time.Now().Add(wt))
			}
			c.srv.st.bytesOut.Add(uint64(len(batch)))
			t0 := time.Now()
			if _, err := c.nc.Write(batch); err != nil {
				failed = true
				c.close()
			}
			c.srv.sm.phaseFlush.ObserveSince(t0)
			c.srv.sm.flushBytes.Observe(int64(len(batch)))
			if tr := c.srv.tr; tr != nil {
				c.qmu.Lock()
				tid, sid := c.flushTID, c.flushSID
				c.flushTID, c.flushSID = 0, 0
				c.qmu.Unlock()
				if tid != 0 {
					tr.Record(trace.Span{
						Trace: tid, ID: tr.NewID(), Parent: sid,
						Start: t0.UnixNano(), Dur: int64(time.Since(t0)),
						Kind: trace.KindFlush, Shard: -1, Out: int32(len(batch)),
					})
				}
			}
		}
		if done {
			c.qmu.Lock()
			empty := len(c.out) == 0
			c.qmu.Unlock()
			if empty {
				return
			}
			continue // drain what raced in with markDone
		}
		if len(batch) == 0 {
			<-c.qsig // sleep until there is work or end-of-stream
		}
	}
}

// readLoop decodes and dispatches frames until the peer goes away, the
// stream turns hostile, or shutdown expires the read deadline.
func (c *conn) readLoop() {
	s := c.srv
	// FrameReader reuses one payload buffer across frames; dispatch
	// honors its aliasing contract by fully consuming (decoding or
	// copying) each payload before returning.
	fr := proto.NewFrameReader(bufio.NewReaderSize(c.nc, 64<<10), s.cfg.MaxPayload)
	for {
		if s.closing.Load() {
			// Draining: stop accepting new frames. Without this check a
			// busy pipeliner would overwrite Shutdown's deadline poke
			// below and keep the server "draining" until the force
			// timeout. In-flight writes still get their replies flushed
			// by the teardown in handle.
			return
		}
		if s.cfg.ReadTimeout > 0 {
			c.nc.SetReadDeadline(time.Now().Add(s.cfg.ReadTimeout))
		}
		f, err := fr.Next()
		if err != nil {
			// Framing violations get a parting error frame; EOF and
			// deadline expiry are normal ends. Either way the stream
			// cannot be resynchronized, so the connection ends. The
			// stale per-request trace context is cleared first so the
			// parting error is not misattributed to the previous
			// request's trace.
			c.reqT = proto.TraceCtx{}
			if !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) &&
				!isTimeout(err) && !errors.Is(err, net.ErrClosed) {
				code := byte(proto.ErrCodeBadFrame)
				if errors.Is(err, proto.ErrFrameTooLarge) {
					code = proto.ErrCodeTooLarge
				}
				c.sendError(0, code, err.Error())
			}
			return
		}
		t0 := time.Now() // receipt: phase timing starts here
		wire := proto.HeaderSize + len(f.Payload)
		if f.Ver >= 4 {
			wire++ // extlen byte
			if f.Trace.ID != 0 {
				wire += proto.TraceExtLen
			}
		}
		s.st.bytesIn.Add(uint64(wire))
		s.st.requests.Add(1)
		c.reqVer, c.reqT, c.reqOp, c.reqT0 = f.Ver, f.Trace, f.Op, t0
		if f.Ver != proto.Version && f.Ver != proto.Version-1 {
			// v3 frames (no trace extension) stay welcome; their replies
			// are encoded as v3 by sendFrame. An unknown version gets
			// its refusal in the server's own version — there is
			// nothing better to speak.
			c.reqVer = proto.Version
			c.sendError(f.ID, proto.ErrCodeVersion,
				fmt.Sprintf("protocol version %d, server speaks %d (and %d)", f.Ver, proto.Version, proto.Version-1))
			return
		}
		if !c.dispatch(f, t0) {
			return
		}
		if cap(c.pscratch) > 64<<10 {
			// A jumbo batch or range reply grew the scratch; don't pin
			// it for the connection's lifetime.
			c.pscratch = nil
		}
	}
}

func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

func (c *conn) sendError(id uint64, code byte, msg string) {
	c.srv.st.errors.Add(1)
	// Errors are cold; building the payload fresh keeps pscratch free
	// for whatever reply construction the caller was in the middle of.
	c.sendFrame(proto.OpError, id, proto.AppendError(nil, code, msg), c.reqVer, c.reqT)
	// Tail-keep on error: a request that arrived with a trace context
	// and failed keeps a server span carrying the error code, whatever
	// the sampling decision was. Only the reader goroutine calls
	// sendError, so reqOp/reqT0/reqT are safe to read. Framing errors
	// (no parsed request) cleared reqT and record nothing.
	if tr := c.srv.tr; tr != nil && c.reqT.ID != 0 {
		tr.Record(trace.Span{
			Trace: c.reqT.ID, ID: tr.NewID(), Parent: c.reqT.Span,
			Start: c.reqT0.UnixNano(), Dur: int64(time.Since(c.reqT0)),
			Kind: trace.KindServer, Op: c.reqOp, Err: code, Shard: -1,
		})
	}
}

func (c *conn) reply(id uint64, op byte, payload []byte) {
	c.sendFrame(op|proto.FlagReply, id, payload, c.reqVer, c.reqT)
}

// dispatch executes one request. It returns false when the connection
// must close (protocol violation so severe the stream is untrustworthy
// — currently nothing below qualifies; malformed payloads get an error
// reply and the stream continues, since framing is still intact).
//
// t0 is the frame's receipt time. Each inline-served case captures the
// phase boundaries (decode done / barrier-wait done / apply done) and
// hands them to noteInline; coalesced writes record their decode phase
// here and carry t0 into the batcher, which owns their wait/apply/
// encode phases and total latency. Error paths are not timed — the
// errors counter covers them.
func (c *conn) dispatch(f proto.Frame, t0 time.Time) bool {
	s := c.srv
	if s.readOnly.Load() && mutates(f) {
		s.st.readOnlyRejected.Add(1)
		c.sendError(f.ID, proto.ErrCodeReadOnly,
			fmt.Sprintf("%s: this node is a read replica; send writes to the primary", proto.OpName(f.Op)))
		return true
	}
	switch f.Op {
	case proto.OpPut:
		key, val, err := proto.DecodeKeyVal(f.Payload)
		if err != nil {
			c.sendError(f.ID, proto.ErrCodeBadFrame, err.Error())
			return true
		}
		s.st.writes.Add(1)
		td := time.Now()
		s.sm.phaseDecode.Observe(int64(td.Sub(t0)))
		c.pending.Add(1)
		s.bat.submit(writeReq{key: key, val: val, id: f.ID, c: c, t0: t0, td: td, ver: f.Ver, tc: f.Trace, in: len(f.Payload)})

	case proto.OpPutTTL:
		key, val, exp, err := proto.DecodeKeyValExp(f.Payload)
		if err != nil {
			c.sendError(f.ID, proto.ErrCodeBadFrame, err.Error())
			return true
		}
		s.st.writes.Add(1)
		td := time.Now()
		s.sm.phaseDecode.Observe(int64(td.Sub(t0)))
		c.pending.Add(1)
		s.bat.submit(writeReq{key: key, val: val, exp: exp, ttl: true, id: f.ID, c: c, t0: t0, td: td, ver: f.Ver, tc: f.Trace, in: len(f.Payload)})

	case proto.OpDel:
		key, err := proto.DecodeKey(f.Payload)
		if err != nil {
			c.sendError(f.ID, proto.ErrCodeBadFrame, err.Error())
			return true
		}
		s.st.writes.Add(1)
		td := time.Now()
		s.sm.phaseDecode.Observe(int64(td.Sub(t0)))
		c.pending.Add(1)
		s.bat.submit(writeReq{key: key, del: true, id: f.ID, c: c, t0: t0, td: td, ver: f.Ver, tc: f.Trace, in: len(f.Payload)})

	case proto.OpGet:
		key, err := proto.DecodeKey(f.Payload)
		if err != nil {
			c.sendError(f.ID, proto.ErrCodeBadFrame, err.Error())
			return true
		}
		s.st.reads.Add(1)
		td := time.Now()
		c.pending.Wait() // program order: reads see this conn's writes
		tw := time.Now()
		val, ok := s.db.Get(key)
		ta := time.Now()
		c.pscratch = proto.AppendFound(c.pscratch[:0], ok, val, s.db.Checkpoints())
		c.reply(f.ID, proto.OpGet, c.pscratch)
		c.noteInline(proto.OpGet, f.ID, len(f.Payload), len(c.pscratch), key, true, t0, td, tw, ta)

	case proto.OpGetTTL:
		key, err := proto.DecodeKey(f.Payload)
		if err != nil {
			c.sendError(f.ID, proto.ErrCodeBadFrame, err.Error())
			return true
		}
		s.st.reads.Add(1)
		td := time.Now()
		c.pending.Wait()
		tw := time.Now()
		val, exp, ok := s.db.GetTTL(key)
		ta := time.Now()
		c.pscratch = proto.AppendFoundTTL(c.pscratch[:0], ok, val, exp, s.db.Checkpoints())
		c.reply(f.ID, proto.OpGetTTL, c.pscratch)
		c.noteInline(proto.OpGetTTL, f.ID, len(f.Payload), len(c.pscratch), key, true, t0, td, tw, ta)

	case proto.OpBatch:
		kind, items, keys, err := proto.DecodeBatch(f.Payload)
		if err != nil {
			c.sendError(f.ID, proto.ErrCodeBadFrame, err.Error())
			return true
		}
		td := time.Now()
		c.pending.Wait()
		tw := time.Now()
		switch kind {
		case proto.BatchPut:
			s.st.writes.Add(uint64(len(items)))
			n := s.db.PutBatch(items)
			ta := time.Now()
			c.pscratch = proto.AppendU32(c.pscratch[:0], uint32(n))
			c.reply(f.ID, proto.OpBatch, c.pscratch)
			c.noteInline(proto.OpBatch, f.ID, len(f.Payload), len(c.pscratch), 0, false, t0, td, tw, ta)
		case proto.BatchGet:
			if len(keys) > proto.MaxBatchGet {
				// The reply (9 bytes per key) would exceed the frame
				// payload cap even though the request fit under it.
				c.sendError(f.ID, proto.ErrCodeTooLarge,
					fmt.Sprintf("batch-get of %d keys exceeds the %d-key reply cap", len(keys), proto.MaxBatchGet))
				return true
			}
			s.st.reads.Add(uint64(len(keys)))
			vals, ok := s.db.GetBatch(keys)
			ta := time.Now()
			c.pscratch = proto.AppendBatchGetReply(c.pscratch[:0], vals, ok, s.db.Checkpoints())
			c.reply(f.ID, proto.OpBatch, c.pscratch)
			c.noteInline(proto.OpBatch, f.ID, len(f.Payload), len(c.pscratch), 0, false, t0, td, tw, ta)
		case proto.BatchDel:
			s.st.writes.Add(uint64(len(keys)))
			n := s.db.DeleteBatch(keys)
			ta := time.Now()
			c.pscratch = proto.AppendU32(c.pscratch[:0], uint32(n))
			c.reply(f.ID, proto.OpBatch, c.pscratch)
			c.noteInline(proto.OpBatch, f.ID, len(f.Payload), len(c.pscratch), 0, false, t0, td, tw, ta)
		}

	case proto.OpRange:
		lo, hi, max, err := proto.DecodeRangeReq(f.Payload)
		if err != nil {
			c.sendError(f.ID, proto.ErrCodeBadFrame, err.Error())
			return true
		}
		s.st.reads.Add(1)
		td := time.Now()
		c.pending.Wait()
		tw := time.Now()
		limit := s.cfg.MaxRangeItems
		if max > 0 && int(max) < limit {
			limit = int(max)
		}
		// RangeN bounds work and memory by the limit, not the window
		// size, so a whole-keyspace RANGE costs O(shards·limit).
		items, more := s.db.RangeN(lo, hi, limit, c.rangeBuf[:0])
		ta := time.Now()
		c.rangeBuf = items
		c.pscratch = proto.AppendRangeReply(c.pscratch[:0], items, more, s.db.Checkpoints())
		c.reply(f.ID, proto.OpRange, c.pscratch)
		c.noteInline(proto.OpRange, f.ID, len(f.Payload), len(c.pscratch), 0, false, t0, td, tw, ta)

	case proto.OpLen:
		s.st.reads.Add(1)
		td := time.Now()
		c.pending.Wait()
		tw := time.Now()
		n := uint64(s.db.Len())
		ta := time.Now()
		c.pscratch = proto.AppendLenReply(c.pscratch[:0], n, s.db.Checkpoints())
		c.reply(f.ID, proto.OpLen, c.pscratch)
		c.noteInline(proto.OpLen, f.ID, len(f.Payload), len(c.pscratch), 0, false, t0, td, tw, ta)

	case proto.OpCheckpoint:
		// A durability barrier: everything this connection has been
		// acknowledged for is on disk when the reply arrives. When
		// tracing, the span identity is minted up front (the barrier is
		// inherently slow — always kept) so the durable layer's
		// checkpoint/sweep spans can parent under this request's server
		// span; noteInline consumes the premint instead of re-deciding.
		var ptid, psid uint64
		if s.tr != nil {
			ptid = f.Trace.ID
			if ptid == 0 {
				ptid = s.tr.NewID()
			}
			psid = s.tr.NewID()
			c.preTID, c.preSID = ptid, psid
		}
		td := time.Now()
		c.pending.Wait()
		tw := time.Now()
		if err := s.db.CheckpointTraced(ptid, psid); err != nil {
			c.preTID, c.preSID = 0, 0
			c.sendError(f.ID, proto.ErrCodeInternal, err.Error())
			return true
		}
		ta := time.Now() // apply phase = the checkpoint commit itself
		c.pscratch = proto.AppendU64(c.pscratch[:0], s.db.Checkpoints())
		c.reply(f.ID, proto.OpCheckpoint, c.pscratch)
		c.noteInline(proto.OpCheckpoint, f.ID, len(f.Payload), len(c.pscratch), 0, false, t0, td, tw, ta)

	case proto.OpPing:
		// f.Payload may alias the FrameReader's reused buffer; sendFrame
		// copies it into the outbound queue before returning, so the
		// echo is captured before the next frame overwrites it.
		tn := time.Now()
		c.reply(f.ID, proto.OpPing, f.Payload)
		c.noteInline(proto.OpPing, f.ID, len(f.Payload), len(f.Payload), 0, false, t0, tn, tn, tn)

	case proto.OpHealth:
		// A liveness probe with a staleness report. Deliberately NO
		// pending.Wait: a health check must answer even when the write
		// path is backed up — failover decisions hinge on it.
		if len(f.Payload) != 0 {
			c.sendError(f.ID, proto.ErrCodeBadFrame, "health request carries a payload")
			return true
		}
		epoch, hash := s.db.CheckpointStamp()
		tn := time.Now()
		c.pscratch = proto.AppendHealth(c.pscratch[:0], proto.Health{
			ReadOnly:   s.readOnly.Load(),
			Promotions: s.promotions.Load(),
			Epoch:      epoch,
			Hash:       hash,
		})
		c.reply(f.ID, proto.OpHealth, c.pscratch)
		c.noteInline(proto.OpHealth, f.ID, len(f.Payload), len(c.pscratch), 0, false, t0, tn, tn, tn)

	case proto.OpPromote:
		if len(f.Payload) != 0 {
			c.sendError(f.ID, proto.ErrCodeBadFrame, "promote request carries a payload")
			return true
		}
		td := time.Now()
		n, err := s.Promote()
		if err != nil {
			c.sendError(f.ID, proto.ErrCodeNotReplica, err.Error())
			return true
		}
		ta := time.Now()
		c.pscratch = proto.AppendU64(c.pscratch[:0], n)
		c.reply(f.ID, proto.OpPromote, c.pscratch)
		c.noteInline(proto.OpPromote, f.ID, len(f.Payload), len(c.pscratch), 0, false, t0, td, td, ta)

	case proto.OpNSPut:
		ns, key, val, exp, err := proto.DecodeNSKeyValExp(f.Payload)
		if err != nil {
			c.sendError(f.ID, proto.ErrCodeBadFrame, err.Error())
			return true
		}
		s.st.writes.Add(1)
		s.st.nsOps.Add(1)
		td := time.Now()
		s.sm.phaseDecode.Observe(int64(td.Sub(t0)))
		c.pending.Add(1)
		s.bat.submit(writeReq{ns: ns, key: key, val: val, exp: exp, id: f.ID, c: c, t0: t0, td: td, ver: f.Ver, tc: f.Trace, in: len(f.Payload)})

	case proto.OpNSGet:
		ns, key, err := proto.DecodeNSKey(f.Payload)
		if err != nil {
			c.sendError(f.ID, proto.ErrCodeBadFrame, err.Error())
			return true
		}
		s.st.reads.Add(1)
		s.st.nsOps.Add(1)
		td := time.Now()
		c.pending.Wait() // program order: reads see this conn's writes
		tw := time.Now()
		val, exp, ok := s.db.NSGetTTL(ns, key)
		ta := time.Now()
		c.pscratch = proto.AppendFoundTTL(c.pscratch[:0], ok, val, exp, s.db.Checkpoints())
		c.reply(f.ID, proto.OpNSGet, c.pscratch)
		c.noteInline(proto.OpNSGet, f.ID, len(f.Payload), len(c.pscratch), 0, false, t0, td, tw, ta)

	case proto.OpNSDel:
		ns, key, err := proto.DecodeNSKey(f.Payload)
		if err != nil {
			c.sendError(f.ID, proto.ErrCodeBadFrame, err.Error())
			return true
		}
		s.st.writes.Add(1)
		s.st.nsOps.Add(1)
		td := time.Now()
		s.sm.phaseDecode.Observe(int64(td.Sub(t0)))
		c.pending.Add(1)
		s.bat.submit(writeReq{ns: ns, key: key, del: true, id: f.ID, c: c, t0: t0, td: td, ver: f.Ver, tc: f.Trace, in: len(f.Payload)})

	case proto.OpDropNS:
		ns, err := proto.DecodeNSName(f.Payload)
		if err != nil {
			c.sendError(f.ID, proto.ErrCodeBadFrame, err.Error())
			return true
		}
		s.st.writes.Add(1)
		s.st.nsOps.Add(1)
		td := time.Now()
		s.sm.phaseDecode.Observe(int64(td.Sub(t0)))
		c.pending.Add(1)
		s.bat.submit(writeReq{ns: ns, drop: true, id: f.ID, c: c, t0: t0, td: td, ver: f.Ver, tc: f.Trace, in: len(f.Payload)})

	case proto.OpListNS:
		if len(f.Payload) != 0 {
			c.sendError(f.ID, proto.ErrCodeBadFrame, "list-namespaces request carries a payload")
			return true
		}
		s.st.reads.Add(1)
		s.st.nsOps.Add(1)
		td := time.Now()
		c.pending.Wait()
		tw := time.Now()
		nss := s.db.Namespaces()
		ta := time.Now()
		if len(nss) > proto.MaxListNS {
			c.sendError(f.ID, proto.ErrCodeTooLarge,
				fmt.Sprintf("%d namespaces exceed the %d-entry reply cap", len(nss), proto.MaxListNS))
			return true
		}
		out := make([]proto.NSStat, len(nss))
		for i, e := range nss {
			out[i] = proto.NSStat{Name: e.Name, Keys: uint64(e.Keys)}
		}
		payload := proto.AppendNSList(nil, uint64(s.cfg.NSQuota), out)
		if len(payload) > proto.MaxPayload {
			c.sendError(f.ID, proto.ErrCodeTooLarge, "namespace listing exceeds the frame payload cap")
			return true
		}
		c.reply(f.ID, proto.OpListNS, payload)
		c.noteInline(proto.OpListNS, f.ID, len(f.Payload), len(payload), 0, false, t0, td, tw, ta)

	case proto.OpShardHash:
		// Replication: advertise the last committed checkpoint's
		// canonical per-shard hashes. A barrier over this connection's
		// writes makes SHARDHASH-after-CHECKPOINT see that checkpoint.
		// An empty request addresses the default keyspace (the reply
		// appends the committed namespace-name table); a request carrying
		// nslen(2) ns addresses that tenant's cell.
		s.st.syncHashes.Add(1)
		if len(f.Payload) != 0 {
			ns, err := proto.DecodeNSName(f.Payload)
			if err != nil {
				c.sendError(f.ID, proto.ErrCodeBadFrame, err.Error())
				return true
			}
			td := time.Now()
			c.pending.Wait()
			tw := time.Now()
			nsHseed, entries, err := s.db.NSShardHashes(ns)
			if err != nil {
				code := byte(proto.ErrCodeInternal)
				if errors.Is(err, durable.ErrNoNamespace) {
					code = proto.ErrCodeBadFrame
				}
				c.sendError(f.ID, code, err.Error())
				return true
			}
			ta := time.Now()
			if len(entries) > proto.MaxSyncShards {
				c.sendError(f.ID, proto.ErrCodeTooLarge,
					fmt.Sprintf("%d shards exceed the %d-shard reply cap", len(entries), proto.MaxSyncShards))
				return true
			}
			out := make([]proto.ShardHash, len(entries))
			for i, e := range entries {
				out[i] = proto.ShardHash{Size: e.Size, Hash: e.Hash}
			}
			payload := proto.AppendShardHashes(nil, nsHseed, out)
			c.reply(f.ID, proto.OpShardHash, payload)
			c.noteInline(proto.OpShardHash, f.ID, len(f.Payload), len(payload), 0, false, t0, td, tw, ta)
			return true
		}
		td := time.Now()
		c.pending.Wait()
		tw := time.Now()
		hseed, entries, err := s.db.ShardHashes()
		if err != nil {
			c.sendError(f.ID, proto.ErrCodeInternal, err.Error())
			return true
		}
		names, err := s.db.NSNames()
		if err != nil {
			c.sendError(f.ID, proto.ErrCodeInternal, err.Error())
			return true
		}
		ta := time.Now()
		if len(entries) > proto.MaxSyncShards {
			c.sendError(f.ID, proto.ErrCodeTooLarge,
				fmt.Sprintf("%d shards exceed the %d-shard reply cap", len(entries), proto.MaxSyncShards))
			return true
		}
		out := make([]proto.ShardHash, len(entries))
		for i, e := range entries {
			out[i] = proto.ShardHash{Size: e.Size, Hash: e.Hash}
		}
		payload := proto.AppendShardHashesNS(nil, hseed, out, names)
		if len(payload) > proto.MaxPayload {
			c.sendError(f.ID, proto.ErrCodeTooLarge, "shard-hash reply exceeds the frame payload cap")
			return true
		}
		c.reply(f.ID, proto.OpShardHash, payload)
		c.noteInline(proto.OpShardHash, f.ID, len(f.Payload), len(payload), 0, false, t0, td, tw, ta)

	case proto.OpSync:
		shardIdx, hash, off, maxLen, ns, err := proto.DecodeSyncReqNS(f.Payload)
		if err != nil {
			c.sendError(f.ID, proto.ErrCodeBadFrame, err.Error())
			return true
		}
		s.st.syncChunks.Add(1)
		td := time.Now()
		img, err := s.shardImage(ns, int(shardIdx), hash)
		switch {
		case errors.Is(err, durable.ErrStaleShard):
			c.sendError(f.ID, proto.ErrCodeStale, err.Error())
			return true
		case errors.Is(err, durable.ErrNoNamespace):
			c.sendError(f.ID, proto.ErrCodeBadFrame, err.Error())
			return true
		case err != nil:
			c.sendError(f.ID, proto.ErrCodeInternal, err.Error())
			return true
		}
		if off > uint64(len(img)) {
			c.sendError(f.ID, proto.ErrCodeBadFrame,
				fmt.Sprintf("offset %d past the %d-byte image", off, len(img)))
			return true
		}
		limit := s.cfg.MaxSyncChunk
		if maxLen > 0 && int(maxLen) < limit {
			limit = int(maxLen)
		}
		end := int(off) + limit
		if end > len(img) {
			end = len(img)
		}
		chunk := img[off:end]
		more := end < len(img)
		if !more {
			// The fetcher just took the image's last chunk; release the
			// cache rather than pin a whole shard image between syncs.
			s.syncMu.Lock()
			if s.syncNS == ns && s.syncIdx == int(shardIdx) && s.syncHash == hash {
				s.syncImage = nil
			}
			s.syncMu.Unlock()
		}
		s.st.syncBytesOut.Add(uint64(len(chunk)))
		ta := time.Now()
		payload := proto.AppendSyncChunk(nil, more, chunk)
		c.reply(f.ID, proto.OpSync, payload)
		c.noteInline(proto.OpSync, f.ID, len(f.Payload), len(payload), 0, false, t0, td, td, ta)

	default:
		c.sendError(f.ID, proto.ErrCodeUnknownOp, proto.OpName(f.Op))
	}
	return true
}

// shardImage returns the committed image for (ns, idx, hash) through
// the one-entry sync cache; ns "" addresses the default keyspace.
func (s *Server) shardImage(ns string, idx int, hash [32]byte) ([]byte, error) {
	s.syncMu.Lock()
	if s.syncImage != nil && s.syncNS == ns && s.syncIdx == idx && s.syncHash == hash {
		img := s.syncImage
		s.syncMu.Unlock()
		return img, nil
	}
	s.syncMu.Unlock()
	var img []byte
	var err error
	if ns == "" {
		img, err = s.db.ShardImage(idx, hash)
	} else {
		img, err = s.db.NSShardImage(ns, idx, hash)
	}
	if err != nil {
		return nil, err
	}
	s.syncMu.Lock()
	s.syncNS, s.syncIdx, s.syncHash, s.syncImage = ns, idx, hash, img
	s.syncMu.Unlock()
	return img, nil
}

// mutates reports whether a request would change the database: the ops
// a read replica must refuse. Malformed mutating payloads are also
// refused (rejection is decided before decoding), which is fine — the
// error the client gets is the one that tells it where writes go.
func mutates(f proto.Frame) bool {
	switch f.Op {
	case proto.OpPut, proto.OpPutTTL, proto.OpDel, proto.OpCheckpoint,
		proto.OpNSPut, proto.OpNSDel, proto.OpDropNS:
		return true
	case proto.OpBatch:
		return len(f.Payload) < 1 || f.Payload[0] != proto.BatchGet
	}
	return false
}
