package server

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"net"
	"testing"

	"repro/client"
	"repro/internal/proto"
)

// TestSyncOpcodes drives SHARDHASH and SYNC over the wire: the
// advertised hashes must match the committed images, chunked fetches
// must reassemble to the exact bytes, and superseded hashes must be
// answered with ErrCodeStale.
func TestSyncOpcodes(t *testing.T) {
	db := newTestDB(t, 4)
	defer db.Close()
	for k := int64(0); k < 2000; k++ {
		db.Put(k, k*7)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// A tiny chunk cap forces multi-chunk fetches.
	srv, addr := startTCP(t, db, Config{MaxSyncChunk: 512})
	defer srv.Close()
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	hseed, entries, err := c.SyncShardHashes()
	if err != nil {
		t.Fatal(err)
	}
	if hseed != db.Store().RoutingSeed() {
		t.Fatalf("hseed over the wire %x, store says %x", hseed, db.Store().RoutingSeed())
	}
	wantSeed, wantEntries, err := db.ShardHashes()
	if err != nil {
		t.Fatal(err)
	}
	if hseed != wantSeed || len(entries) != len(wantEntries) {
		t.Fatalf("wire descriptor (%x, %d shards) != durable (%x, %d shards)",
			hseed, len(entries), wantSeed, len(wantEntries))
	}

	var prevHash [32]byte
	for i, e := range entries {
		if e.Size != wantEntries[i].Size || e.Hash != wantEntries[i].Hash {
			t.Fatalf("shard %d descriptor drifted across the wire", i)
		}
		var img []byte
		chunks := 0
		for {
			data, more, err := c.SyncShardChunk(i, e.Hash, uint64(len(img)), 0)
			if err != nil {
				t.Fatalf("shard %d chunk at %d: %v", i, len(img), err)
			}
			img = append(img, data...)
			chunks++
			if !more {
				break
			}
		}
		if int64(len(img)) != e.Size {
			t.Fatalf("shard %d reassembled to %d bytes, want %d", i, len(img), e.Size)
		}
		if sha256.Sum256(img) != e.Hash {
			t.Fatalf("shard %d reassembled bytes do not hash to the advertised value", i)
		}
		if e.Size > 512 && chunks < 2 {
			t.Fatalf("shard %d (%d bytes) arrived in %d chunk(s) despite the 512-byte cap", i, e.Size, chunks)
		}
		want, err := db.ShardImage(i, e.Hash)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(img, want) {
			t.Fatalf("shard %d wire bytes differ from committed image", i)
		}
		prevHash = e.Hash
	}

	// Move the checkpoint and ask for a superseded image.
	for k := int64(0); k < 200; k++ {
		db.Put(1_000_000+k, k)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	_, fresh, err := c.SyncShardHashes()
	if err != nil {
		t.Fatal(err)
	}
	for i := range fresh {
		if fresh[i].Hash == prevHash {
			continue
		}
		_, _, err := c.SyncShardChunk(i, prevHash, 0, 0)
		var re *proto.RemoteError
		if !errors.As(err, &re) || re.Code != proto.ErrCodeStale {
			t.Fatalf("superseded fetch of shard %d: %v, want ErrCodeStale", i, err)
		}
		break
	}

	st := srv.Stats()
	if st.Role != "primary" || st.SyncHashes < 2 || st.SyncChunks == 0 || st.SyncBytesOut == 0 {
		t.Fatalf("sync stats: %+v", st)
	}
}

// TestSyncHostileRequests checks that malformed sync requests get error
// replies without closing the stream.
func TestSyncHostileRequests(t *testing.T) {
	db := newTestDB(t, 4)
	defer db.Close()
	db.Put(1, 1)
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	srv := New(db, Config{ReadTimeout: -1})
	cliEnd, srvEnd := net.Pipe()
	srv.ServeConn(srvEnd)
	defer srv.Close()
	c := client.NewConn(cliEnd)
	defer c.Close()

	_, entries, err := c.SyncShardHashes()
	if err != nil {
		t.Fatal(err)
	}
	// Offset past the end of the image.
	_, _, err = c.SyncShardChunk(0, entries[0].Hash, uint64(entries[0].Size)+1, 0)
	var re *proto.RemoteError
	if !errors.As(err, &re) || re.Code != proto.ErrCodeBadFrame {
		t.Fatalf("offset past image: %v", err)
	}
	// Shard index out of range.
	if _, _, err = c.SyncShardChunk(99, entries[0].Hash, 0, 0); err == nil {
		t.Fatal("out-of-range shard accepted")
	}
	// The stream survived both refusals.
	if err := c.Ping([]byte("still alive")); err != nil {
		t.Fatal(err)
	}
}

// TestStatsRole checks the replica role surfaces in Stats.
func TestStatsRole(t *testing.T) {
	db := newTestDB(t, 4)
	defer db.Close()
	srv := New(db, Config{ReadOnly: true})
	defer srv.Close()
	if st := srv.Stats(); st.Role != "replica" {
		t.Fatalf("role = %q, want replica", st.Role)
	}
}
