package server

import (
	"time"

	"repro/internal/durable"
	"repro/internal/obs"
	"repro/internal/proto"
	"repro/internal/trace"
)

// opLabels maps each request opcode to its metric label — the fixed
// vocabulary the per-opcode latency histograms and the slow-op log
// use. Only names from this table ever reach telemetry output.
var opLabels = map[byte]string{
	proto.OpGet:        "get",
	proto.OpPut:        "put",
	proto.OpDel:        "del",
	proto.OpBatch:      "batch",
	proto.OpRange:      "range",
	proto.OpLen:        "len",
	proto.OpCheckpoint: "checkpoint",
	proto.OpPing:       "ping",
	proto.OpShardHash:  "shard_hash",
	proto.OpSync:       "sync",
	proto.OpPutTTL:     "put_ttl",
	proto.OpGetTTL:     "get_ttl",
	proto.OpHealth:     "health",
	proto.OpPromote:    "promote",
	proto.OpNSPut:      "ns_put",
	proto.OpNSGet:      "ns_get",
	proto.OpNSDel:      "ns_del",
	proto.OpDropNS:     "drop_ns",
	proto.OpListNS:     "list_ns",
}

// serverMetrics is the server's hot-path metric set: one latency
// histogram per opcode, one histogram per request phase, and size
// histograms for flush bursts and coalesced batches. Every field is
// non-nil even without a registry (obs is nil-registry safe), so
// recording sites never branch. Recording is a few atomic adds —
// the instrumented paths keep their 0-alloc budgets.
type serverMetrics struct {
	// ops is indexed directly by opcode byte; unknown opcodes map to
	// nil and are simply not timed.
	ops [256]*obs.Histogram

	phaseDecode *obs.Histogram // payload decode
	phaseWait   *obs.Histogram // coalesce-wait (writes) / in-flight-write barrier (reads)
	phaseApply  *obs.Histogram // store/db work
	phaseEncode *obs.Histogram // reply build + enqueue
	phaseFlush  *obs.Histogram // one outbound burst's syscall
	flushBytes  *obs.Histogram // bytes per outbound burst
	batchOps    *obs.Histogram // ops per coalesced write batch
}

func newServerMetrics(r *obs.Registry) *serverMetrics {
	m := &serverMetrics{}
	const opHelp = "request latency by opcode, receipt to reply enqueued"
	for op, label := range opLabels {
		m.ops[op] = r.HistogramL("hidb_server_op_seconds", "op", label, opHelp, obs.UnitSeconds)
		// Exemplars link each latency bucket to the last kept trace
		// that landed in it. Arming is unconditional — an exemplar slab
		// is only ever fed from kept traces, and Observe itself never
		// touches it, so the no-tracing hot path is unchanged.
		m.ops[op].EnableExemplars()
	}
	const phaseHelp = "time per request phase: decode, coalesce_wait, apply, encode, flush"
	m.phaseDecode = r.HistogramL("hidb_server_phase_seconds", "phase", "decode", phaseHelp, obs.UnitSeconds)
	m.phaseWait = r.HistogramL("hidb_server_phase_seconds", "phase", "coalesce_wait", phaseHelp, obs.UnitSeconds)
	m.phaseApply = r.HistogramL("hidb_server_phase_seconds", "phase", "apply", phaseHelp, obs.UnitSeconds)
	m.phaseEncode = r.HistogramL("hidb_server_phase_seconds", "phase", "encode", phaseHelp, obs.UnitSeconds)
	m.phaseFlush = r.HistogramL("hidb_server_phase_seconds", "phase", "flush", phaseHelp, obs.UnitSeconds)
	m.flushBytes = r.Histogram("hidb_server_flush_bytes", "bytes written per outbound reply burst", obs.UnitBytes)
	m.batchOps = r.Histogram("hidb_server_write_batch_ops", "operations per coalesced write batch", obs.UnitNone)
	return m
}

// registerServerFuncs exposes the server's existing atomic counters
// (and the durable layer's totals) on the registry as read-at-scrape
// functions — no double counting anywhere on the hot path.
func registerServerFuncs(r *obs.Registry, s *Server) {
	st, db := &s.st, s.db
	r.CounterFunc("hidb_server_requests_total", "frames dispatched", func() uint64 { return st.requests.Load() })
	r.CounterFunc("hidb_server_errors_total", "error frames sent", func() uint64 { return st.errors.Load() })
	r.CounterFunc("hidb_server_bytes_in_total", "request bytes received", func() uint64 { return st.bytesIn.Load() })
	r.CounterFunc("hidb_server_bytes_out_total", "reply bytes written", func() uint64 { return st.bytesOut.Load() })
	r.CounterFunc("hidb_server_conns_accepted_total", "connections accepted", func() uint64 { return st.connsAccepted.Load() })
	r.CounterFunc("hidb_server_conns_rejected_total", "connections refused at the MaxConns limit", func() uint64 { return st.connsRejected.Load() })
	r.GaugeFunc("hidb_server_conns_active", "connections currently served", func() float64 { return float64(st.connsActive.Load()) })
	r.CounterFunc("hidb_server_write_batches_total", "coalescer drains applied", func() uint64 { return st.wBatches.Load() })
	r.CounterFunc("hidb_server_write_batched_ops_total", "write ops through the coalescer", func() uint64 { return st.wBatchedOps.Load() })
	r.CounterFunc("hidb_server_read_only_rejected_total", "writes refused because this node is a replica", func() uint64 { return st.readOnlyRejected.Load() })
	r.CounterFunc("hidb_server_promotions_total", "replica-to-primary promotions of this process", func() uint64 { return s.promotions.Load() })
	r.CounterFunc("hidb_server_sweeps_total", "epoch sweeps that submitted expire ops", func() uint64 { return st.sweeps.Load() })
	r.CounterFunc("hidb_server_swept_keys_total", "expired entries physically removed", func() uint64 { return db.SweptKeys() })
	r.CounterFunc("hidb_server_checkpoints_total", "checkpoints committed", func() uint64 { return db.Checkpoints() })
	r.GaugeFunc("hidb_server_pending_ops", "mutations not yet covered by a checkpoint", func() float64 { return float64(db.PendingOps()) })
	r.GaugeFunc("hidb_server_keys_physical", "keys physically present, including expired-but-unswept entries (per-shard sums, no atomic cut)",
		func() float64 { return float64(physicalLen(db)) })
	r.GaugeFunc("hidb_server_keys_logical", "live keys — expired entries excluded — at an atomic cut",
		func() float64 { return float64(db.Store().Len()) })
	// Namespace telemetry is aggregate-only by contract: counts and
	// totals, never a tenant-name label — a scraped metrics page must
	// not double as a tenant roster (see docs/OBSERVABILITY.md).
	r.GaugeFunc("hidb_server_namespaces", "live tenant namespaces with at least one live key",
		func() float64 { return float64(db.NamespaceCount()) })
	r.CounterFunc("hidb_server_ns_ops_total", "namespaced requests dispatched, all tenants", func() uint64 { return st.nsOps.Load() })
	r.CounterFunc("hidb_server_ns_quota_rejected_total", "namespaced puts refused at the per-tenant quota", func() uint64 { return st.nsQuotaRejected.Load() })
	r.CounterFunc("hidb_server_ns_drops_total", "tenant erasures requested via DROPNS", func() uint64 { return st.nsDrops.Load() })
}

// physicalLen sums the shards' physical entry counts one brief lock at
// a time: cheap to scrape, and deliberately DISTINCT from the logical
// length — under TTL load the physical count includes entries that are
// already dead but not yet swept, so the two disagreeing is signal
// (sweep backlog), not a bug. See docs/OBSERVABILITY.md.
func physicalLen(db *durable.DB) int {
	store := db.Store()
	n := 0
	for i := 0; i < store.NumShards(); i++ {
		n += store.ShardLen(i)
	}
	return n
}

// noteInline records one inline-dispatched (non-coalesced) request's
// phases and total latency, and feeds the slow-op log when the total
// crosses its threshold. Timestamps: t0 receipt, td decode done, tw
// barrier wait done, ta apply done; encode runs from ta to now. For
// key-addressed ops hasKey routes the slow-op record's shard index;
// the key itself never reaches telemetry.
//
// When tracing is on and the request is kept — head-sampled by the
// client, slow, or carrying preminted ids (CHECKPOINT) — noteInline
// records the server span plus its four phase children, arms the
// connection's flush attribution, and feeds the opcode histogram's
// exemplar slot; the slow-op record then carries the trace id. Runs
// on the reader goroutine only (reqT/preTID/preSID are safe to read).
func (c *conn) noteInline(op byte, id uint64, inBytes, outBytes int, key int64, hasKey bool, t0, td, tw, ta time.Time) {
	sm := c.srv.sm
	te := time.Now()
	sm.phaseDecode.Observe(int64(td.Sub(t0)))
	sm.phaseWait.Observe(int64(tw.Sub(td)))
	sm.phaseApply.Observe(int64(ta.Sub(tw)))
	sm.phaseEncode.Observe(int64(te.Sub(ta)))
	total := te.Sub(t0)
	if h := sm.ops[op]; h != nil {
		h.Observe(int64(total))
	}
	slow := c.srv.slow.Slow(total)
	var tid uint64
	if tr := c.srv.tr; tr != nil {
		sid := c.preSID
		// An untraced request (no wire context) is the server's own to
		// head-sample; a traced one defers to the client's decision.
		keep := sid != 0 || c.reqT.Sampled || slow ||
			(c.reqT.ID == 0 && tr.Sample())
		if keep {
			if sid != 0 {
				tid = c.preTID
				c.preTID, c.preSID = 0, 0
			} else {
				tid = c.reqT.ID
				if tid == 0 {
					tid = tr.NewID() // server-minted: slow but untraced upstream
				}
				sid = tr.NewID()
			}
			shard := int32(-1)
			if hasKey {
				shard = int32(c.srv.db.Store().ShardOf(key))
			}
			t0n := t0.UnixNano()
			tr.Record(trace.Span{
				Trace: tid, ID: sid, Parent: c.reqT.Span,
				Start: t0n, Dur: int64(total),
				Kind: trace.KindServer, Op: op, Shard: shard,
				In: int32(inBytes), Out: int32(outBytes),
			})
			tr.Record(trace.Span{Trace: tid, ID: tr.NewID(), Parent: sid,
				Start: t0n, Dur: int64(td.Sub(t0)), Kind: trace.KindDecode, Shard: shard})
			tr.Record(trace.Span{Trace: tid, ID: tr.NewID(), Parent: sid,
				Start: td.UnixNano(), Dur: int64(tw.Sub(td)), Kind: trace.KindWait, Shard: shard})
			tr.Record(trace.Span{Trace: tid, ID: tr.NewID(), Parent: sid,
				Start: tw.UnixNano(), Dur: int64(ta.Sub(tw)), Kind: trace.KindApply, Shard: shard})
			tr.Record(trace.Span{Trace: tid, ID: tr.NewID(), Parent: sid,
				Start: ta.UnixNano(), Dur: int64(te.Sub(ta)), Kind: trace.KindEncode, Shard: shard})
			c.noteFlushTrace(tid, sid)
			if h := sm.ops[op]; h != nil {
				h.Exemplar(int64(total), tid)
			}
		}
	}
	if sl := c.srv.slow; slow {
		shard := -1
		if hasKey {
			shard = c.srv.db.Store().ShardOf(key)
		}
		sl.Record(obs.SlowOp{
			Op: opLabels[op], ReqID: id, Shard: shard,
			BytesIn: inBytes, BytesOut: outBytes,
			Total: total, Decode: td.Sub(t0), Wait: tw.Sub(td),
			Apply: ta.Sub(tw), Encode: te.Sub(ta),
			Trace: tid,
		})
	}
}
