package server

// Torture tests: many connections, deep pipelines, mixed operations,
// differential models, and a mid-load power cut. These are the tests
// the CI race job runs with -short; without -short they run longer.

import (
	"context"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/client"
	"repro/internal/durable"
)

func tortureScale(t *testing.T, short, long int) int {
	if testing.Short() {
		return short
	}
	_ = t
	return long
}

// TestTortureMixedPipelined runs mixed put/get/delete traffic from many
// workers multiplexed over several pipelined connections, checks every
// reply against a per-worker reference model (key spaces are disjoint,
// so the models are exact), then gracefully shuts down, reopens the
// directory, and verifies the recovered database equals the union of
// the models — over the wire, through a restarted server.
func TestTortureMixedPipelined(t *testing.T) {
	const conns = 4
	workersPerConn := tortureScale(t, 4, 8)
	opsPerWorker := tortureScale(t, 300, 2000)

	fs := durable.NewMemFS()
	db, err := durable.Open("db", &durable.Options{
		Shards: 8, Seed: 99, FS: fs,
		CheckpointInterval: 5 * time.Millisecond, CheckpointThreshold: 512,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, addr := startTCP(t, db, Config{})

	type worker struct {
		conn  *client.Conn
		base  int64
		model map[int64]int64
	}
	var ws []*worker
	for ci := 0; ci < conns; ci++ {
		c, err := client.Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		for wi := 0; wi < workersPerConn; wi++ {
			ws = append(ws, &worker{
				conn:  c,
				base:  int64(len(ws)) * 10_000,
				model: map[int64]int64{},
			})
		}
	}

	var wg sync.WaitGroup
	errCh := make(chan error, len(ws))
	for i, w := range ws {
		wg.Add(1)
		go func(seed int64, w *worker) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for op := 0; op < opsPerWorker; op++ {
				k := w.base + rng.Int63n(100)
				switch rng.Intn(10) {
				case 0, 1: // delete
					want := false
					if _, ok := w.model[k]; ok {
						want = true
						delete(w.model, k)
					}
					got, err := w.conn.Delete(k)
					if err != nil {
						errCh <- err
						return
					}
					if got != want {
						t.Errorf("worker %d: delete(%d) = %v, want %v", seed, k, got, want)
						return
					}
				case 2, 3: // read-your-writes get
					wantV, wantOK := w.model[k]
					gotV, gotOK, err := w.conn.Get(k)
					if err != nil {
						errCh <- err
						return
					}
					if gotOK != wantOK || (wantOK && gotV != wantV) {
						t.Errorf("worker %d: get(%d) = %d,%v, want %d,%v",
							seed, k, gotV, gotOK, wantV, wantOK)
						return
					}
				case 4: // small batch put
					items := []client.Item{
						{Key: k, Val: rng.Int63()},
						{Key: w.base + rng.Int63n(100), Val: rng.Int63()},
					}
					if _, err := w.conn.PutBatch(items); err != nil {
						errCh <- err
						return
					}
					for _, it := range items {
						w.model[it.Key] = it.Val
					}
				default: // put
					v := rng.Int63()
					_, ok := w.model[k]
					ins, err := w.conn.Put(k, v)
					if err != nil {
						errCh <- err
						return
					}
					if ins == ok {
						t.Errorf("worker %d: put(%d) inserted=%v, model has=%v", seed, k, ins, ok)
						return
					}
					w.model[k] = v
				}
			}
		}(int64(i), w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if t.Failed() {
		t.FailNow()
	}

	// Graceful shutdown: final checkpoint, canonical directory.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if err := db.VerifyCanonical(); err != nil {
		t.Fatal(err)
	}
	db.Abandon() // already checkpointed by Shutdown

	// Restart the stack on the same (un-crashed) filesystem and verify
	// every model over the wire.
	db2, err := durable.Open("db", &durable.Options{Seed: 99, FS: fs, NoBackground: true})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	srv2, addr2 := startTCP(t, db2, Config{})
	defer srv2.Close()
	c, err := client.Dial(addr2)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	total := 0
	for i, w := range ws {
		total += len(w.model)
		for k, v := range w.model {
			gotV, ok, err := c.Get(k)
			if err != nil {
				t.Fatal(err)
			}
			if !ok || gotV != v {
				t.Fatalf("worker %d: recovered get(%d) = %d,%v, want %d", i, k, gotV, ok, v)
			}
		}
	}
	if n, err := c.Len(); err != nil || n != total {
		t.Fatalf("recovered len = %d (%v), want %d", n, err, total)
	}
}

// TestTortureCrashMidLoad is the kill -9 drill: pipelined writers with
// explicit checkpoint barriers record durability floors, then the power
// goes out mid-load with the background checkpointer racing the
// writers. Recovery must land on a canonical state that contains every
// operation acknowledged before its worker's last successful checkpoint
// — nothing past the last checkpoint is promised, nothing before it may
// be lost — and the restarted server must answer from that state.
func TestTortureCrashMidLoad(t *testing.T) {
	nWorkers := tortureScale(t, 6, 12)
	phase1Ops := tortureScale(t, 200, 1500)
	const keysPerWorker = 50

	fs := durable.NewMemFS()
	db, err := durable.Open("db", &durable.Options{
		Shards: 8, Seed: 123, FS: fs,
		CheckpointInterval: 2 * time.Millisecond, CheckpointThreshold: 256,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, addr := startTCP(t, db, Config{})

	type worker struct {
		conn  *client.Conn
		base  int64
		last  map[int64]int64 // latest value acked per key
		floor map[int64]int64 // values guaranteed durable (checkpoint barrier)
	}
	ws := make([]*worker, nWorkers)
	for i := range ws {
		c, err := client.Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		ws[i] = &worker{
			conn:  c,
			base:  int64(i) * 1000,
			last:  map[int64]int64{},
			floor: map[int64]int64{},
		}
	}

	// Phase 1: monotone writes with periodic checkpoint barriers. Every
	// value in floor was acknowledged before a Checkpoint() returned on
	// the same connection, so it is durable whatever happens next.
	var wg sync.WaitGroup
	for i, w := range ws {
		wg.Add(1)
		go func(seed int64, w *worker) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			seq := int64(0)
			for op := 0; op < phase1Ops; op++ {
				k := w.base + rng.Int63n(keysPerWorker)
				seq++
				if _, err := w.conn.Put(k, seq); err != nil {
					t.Errorf("phase1 worker %d: %v", seed, err)
					return
				}
				w.last[k] = seq
				if op%64 == 63 {
					if _, err := w.conn.Checkpoint(); err != nil {
						t.Errorf("phase1 worker %d checkpoint: %v", seed, err)
						return
					}
					for kk, vv := range w.last {
						w.floor[kk] = vv
					}
				}
			}
		}(int64(i), w)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	// Phase 2: keep writing (no more floor updates) while the
	// background checkpointer races — then cut the power mid-load.
	stop := make(chan struct{})
	for i, w := range ws {
		wg.Add(1)
		go func(seed int64, w *worker) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed * 7))
			seq := int64(phase1Ops + 1)
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := w.base + rng.Int63n(keysPerWorker)
				seq++
				if _, err := w.conn.Put(k, seq); err != nil {
					return // the power cut severed us; expected
				}
			}
		}(int64(i), w)
	}
	time.Sleep(30 * time.Millisecond)

	// The power cut: freeze the durable view FIRST (this is the moment
	// the machine dies), then tear down the doomed process state.
	crashed := fs.Crash()
	close(stop)
	srv.Close()
	db.Abandon()
	wg.Wait()

	// Recovery: Open verifies checksums, hashes, and invariants; the
	// directory must be exactly the canonical image of what it holds.
	db2, err := durable.Open("db", &durable.Options{Seed: 123, FS: crashed, NoBackground: true})
	if err != nil {
		t.Fatalf("recovery after power cut: %v", err)
	}
	if err := db2.VerifyCanonical(); err != nil {
		t.Fatal(err)
	}

	// Serve the recovered state and check the floors over the wire.
	srv2, addr2 := startTCP(t, db2, Config{})
	c, err := client.Dial(addr2)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i, w := range ws {
		for k, vf := range w.floor {
			v, ok, err := c.Get(k)
			if err != nil {
				t.Fatal(err)
			}
			if !ok || v < vf {
				t.Fatalf("worker %d: key %d = %d,%v after crash, floor %d — checkpointed write lost",
					i, k, v, ok, vf)
			}
		}
		// Monotone values: whatever survived must be something some
		// phase actually wrote, never a torn or stale-beyond-last value.
		items, _, err := c.Range(w.base, w.base+keysPerWorker-1, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, it := range items {
			if it.Val < 1 || it.Val > w.last[it.Key]+1_000_000 {
				t.Fatalf("worker %d: key %d has impossible value %d", i, it.Key, it.Val)
			}
		}
	}

	// The recovered server keeps working: write through it, barrier,
	// and confirm the new write is now below the floor line too.
	if _, err := c.Put(ws[0].base, 1<<40); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if v, ok, err := c.Get(ws[0].base); err != nil || !ok || v != 1<<40 {
		t.Fatalf("post-recovery write: %d %v %v", v, ok, err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv2.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if err := db2.Close(); err != nil {
		t.Fatal(err)
	}
}
