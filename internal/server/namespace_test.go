package server

// Wire-level tests for the namespace opcodes: tenant round-trips,
// keyspace disjointness, canonical LISTNS order, exact quota
// enforcement on the coalescer, the DROPNS durability barrier, and
// per-tenant replication addressing.

import (
	"crypto/sha256"
	"errors"
	"testing"
	"time"

	"repro/client"
	"repro/internal/durable"
	"repro/internal/proto"
)

func dialNS(t *testing.T, addr string) *client.Conn {
	t.Helper()
	c, err := client.DialTimeout(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestNamespaceWireRoundTrip(t *testing.T) {
	db := newTestDB(t, 4)
	defer db.Abandon()
	srv, addr := startTCP(t, db, Config{SweepInterval: -1})
	defer srv.Close()
	c := dialNS(t, addr)

	// Tenants are created on first write and fully disjoint: the same
	// key holds different values per tenant and in the default keyspace.
	if ins, err := c.Put(7, 700); err != nil || !ins {
		t.Fatalf("default put: %v %v", ins, err)
	}
	if ins, err := c.NSPut("acme", 7, 701); err != nil || !ins {
		t.Fatalf("ns put: %v %v", ins, err)
	}
	if ins, err := c.NSPut("zeta", 7, 702); err != nil || !ins {
		t.Fatalf("ns put: %v %v", ins, err)
	}
	for _, tc := range []struct {
		ns   string
		want int64
	}{{"acme", 701}, {"zeta", 702}} {
		if v, ok, err := c.NSGet(tc.ns, 7); err != nil || !ok || v != tc.want {
			t.Fatalf("NSGet(%q, 7) = %d %v %v, want %d", tc.ns, v, ok, err, tc.want)
		}
	}
	if v, ok, err := c.Get(7); err != nil || !ok || v != 700 {
		t.Fatalf("default Get(7) = %d %v %v, want 700", v, ok, err)
	}

	// An absent tenant reads exactly like an absent key.
	if _, ok, err := c.NSGet("ghost", 7); err != nil || ok {
		t.Fatalf("absent tenant read: ok=%v err=%v", ok, err)
	}

	// TTL round-trip: the expiry is echoed and visible via NSGetTTL.
	// (Absolute epoch, so it must be in the future under the real clock.)
	future := time.Now().Unix() + 3600
	if _, err := c.NSPutTTL("acme", 8, 800, future); err != nil {
		t.Fatalf("ns put-ttl: %v", err)
	}
	if _, exp, ok, err := c.NSGetTTL("acme", 8); err != nil || !ok || exp != future {
		t.Fatalf("ns get-ttl: exp=%d ok=%v err=%v, want exp=%d", exp, ok, err, future)
	}

	// Delete reports presence; the tenant's other keys survive.
	if del, err := c.NSDelete("acme", 8); err != nil || !del {
		t.Fatalf("ns delete: %v %v", del, err)
	}
	if del, err := c.NSDelete("acme", 8); err != nil || del {
		t.Fatalf("ns re-delete: %v %v", del, err)
	}
	if _, ok, _ := c.NSGet("acme", 7); !ok {
		t.Fatal("tenant lost an unrelated key to a delete")
	}
}

func TestNamespaceWireListCanonicalOrder(t *testing.T) {
	db := newTestDB(t, 4)
	defer db.Abandon()
	srv, addr := startTCP(t, db, Config{SweepInterval: -1})
	defer srv.Close()
	c := dialNS(t, addr)

	// Create in anti-sorted order; the listing must come back sorted —
	// creation order must not be observable.
	for i, ns := range []string{"zeta", "mid", "alpha"} {
		if _, err := c.NSPut(ns, int64(i), int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	// A created-then-emptied tenant must not be listed.
	if _, err := c.NSPut("ghost", 1, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := c.NSDelete("ghost", 1); err != nil {
		t.Fatal(err)
	}
	quota, tenants, err := c.ListNS()
	if err != nil {
		t.Fatal(err)
	}
	if quota != 0 {
		t.Fatalf("quota = %d, want 0 (unlimited)", quota)
	}
	want := []string{"alpha", "mid", "zeta"}
	if len(tenants) != len(want) {
		t.Fatalf("listed %d tenants, want %d: %+v", len(tenants), len(want), tenants)
	}
	for i, w := range want {
		if tenants[i].Name != w || tenants[i].Keys != 1 {
			t.Fatalf("tenants[%d] = %+v, want {%s 1}", i, tenants[i], w)
		}
	}
}

func TestNamespaceWireQuota(t *testing.T) {
	db := newTestDB(t, 4)
	defer db.Abandon()
	srv, addr := startTCP(t, db, Config{SweepInterval: -1, NSQuota: 3})
	defer srv.Close()
	c := dialNS(t, addr)

	for k := int64(0); k < 3; k++ {
		if ins, err := c.NSPut("acme", k, k); err != nil || !ins {
			t.Fatalf("put %d under quota: %v %v", k, ins, err)
		}
	}
	// A fourth new key is refused, typed.
	if _, err := c.NSPut("acme", 3, 3); !errors.Is(err, client.ErrQuota) {
		t.Fatalf("over-quota insert: %v, want ErrQuota", err)
	}
	// Upserts of existing keys always pass; other tenants are unaffected.
	if ins, err := c.NSPut("acme", 0, 999); err != nil || ins {
		t.Fatalf("at-quota upsert: %v %v", ins, err)
	}
	if _, err := c.NSPut("other", 1, 1); err != nil {
		t.Fatalf("unrelated tenant hit acme's quota: %v", err)
	}
	// Deleting a key frees a slot.
	if _, err := c.NSDelete("acme", 1); err != nil {
		t.Fatal(err)
	}
	if ins, err := c.NSPut("acme", 3, 3); err != nil || !ins {
		t.Fatalf("insert after freeing a slot: %v %v", ins, err)
	}
	// The refusal is visible in the aggregate stats, and the connection
	// survived it.
	if st := srv.Stats(); st.NSQuotaRejected != 1 {
		t.Fatalf("NSQuotaRejected = %d, want 1", st.NSQuotaRejected)
	}
	if err := c.Ping(nil); err != nil {
		t.Fatalf("connection dead after quota refusal: %v", err)
	}
	quota, _, err := c.ListNS()
	if err != nil || quota != 3 {
		t.Fatalf("advertised quota = %d %v, want 3", quota, err)
	}
}

func TestNamespaceWireDropBarrier(t *testing.T) {
	db := newTestDB(t, 4)
	defer db.Abandon()
	srv, addr := startTCP(t, db, Config{SweepInterval: -1})
	defer srv.Close()
	c := dialNS(t, addr)

	if _, err := c.NSPut("doomed", 1, 11); err != nil {
		t.Fatal(err)
	}
	if _, err := c.NSPut("keeper", 2, 22); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	names, err := db.NSNames()
	if err != nil || len(names) != 2 {
		t.Fatalf("committed names = %v %v, want [doomed keeper]", names, err)
	}

	// DROPNS is a durability barrier: by the time the reply arrives, the
	// committed manifest must already omit the tenant — no second
	// checkpoint needed.
	existed, err := c.DropNS("doomed")
	if err != nil || !existed {
		t.Fatalf("drop: %v %v", existed, err)
	}
	names, err = db.NSNames()
	if err != nil || len(names) != 1 || names[0] != "keeper" {
		t.Fatalf("committed names after drop = %v %v, want [keeper]", names, err)
	}
	if _, ok, _ := c.NSGet("doomed", 1); ok {
		t.Fatal("dropped tenant still readable")
	}
	if v, ok, _ := c.NSGet("keeper", 2); !ok || v != 22 {
		t.Fatal("surviving tenant damaged by the drop")
	}
	// Dropping an absent tenant reports false and commits nothing.
	cps := db.Checkpoints()
	if existed, err := c.DropNS("doomed"); err != nil || existed {
		t.Fatalf("re-drop: %v %v", existed, err)
	}
	if db.Checkpoints() != cps {
		t.Fatal("dropping an absent tenant committed a checkpoint")
	}
	if st := srv.Stats(); st.NSDrops != 2 {
		t.Fatalf("NSDrops = %d, want 2", st.NSDrops)
	}
}

func TestNamespaceWireDropCheckpointFailureRetry(t *testing.T) {
	fs := durable.NewMemFS()
	db, err := durable.Open("db", &durable.Options{
		Shards: 4, Seed: 42, NoBackground: true, FS: fs,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Abandon()
	srv, addr := startTCP(t, db, Config{SweepInterval: -1})
	defer srv.Close()
	c := dialNS(t, addr)

	if _, err := c.NSPut("doomed", 1, 11); err != nil {
		t.Fatal(err)
	}
	if _, err := c.NSPut("keeper", 2, 22); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	// The disk dies under the erasure checkpoint. The client must get an
	// error — not a positive drop — and the tenant must remain fully
	// present: readable, listed, and still committed. A reply that said
	// "gone" here would leave the tenant durable on disk behind the
	// client's back.
	fs.FailAfter(1)
	if existed, err := c.DropNS("doomed"); err == nil {
		t.Fatalf("DROPNS on a dead disk replied (%v, nil), want an error", existed)
	}
	if v, ok, err := c.NSGet("doomed", 1); err != nil || !ok || v != 11 {
		t.Fatalf("tenant read after failed drop = (%d,%v,%v), want (11,true,nil)", v, ok, err)
	}
	if _, tenants, err := c.ListNS(); err != nil || len(tenants) != 2 {
		t.Fatalf("listing after failed drop = %v %v, want [doomed keeper]", tenants, err)
	}
	if names, err := db.NSNames(); err != nil || len(names) != 2 {
		t.Fatalf("committed names after failed drop = %v %v, want [doomed keeper]", names, err)
	}

	// The disk recovers; the retried DROPNS completes the erasure and
	// the barrier holds: by reply time the manifest omits the tenant.
	fs.Heal()
	if existed, err := c.DropNS("doomed"); err != nil || !existed {
		t.Fatalf("retried drop = (%v, %v), want (true, nil)", existed, err)
	}
	if names, err := db.NSNames(); err != nil || len(names) != 1 || names[0] != "keeper" {
		t.Fatalf("committed names after retried drop = %v %v, want [keeper]", names, err)
	}
	if _, ok, _ := c.NSGet("doomed", 1); ok {
		t.Fatal("dropped tenant still readable after the retry")
	}
	if v, ok, _ := c.NSGet("keeper", 2); !ok || v != 22 {
		t.Fatal("surviving tenant damaged by the retried drop")
	}
	if err := db.VerifyCanonical(); err != nil {
		t.Fatal(err)
	}
}

func TestNamespaceWireReplicationAddressing(t *testing.T) {
	db := newTestDB(t, 4)
	defer db.Abandon()
	srv, addr := startTCP(t, db, Config{SweepInterval: -1})
	defer srv.Close()
	c := dialNS(t, addr)

	for k := int64(0); k < 32; k++ {
		if _, err := c.NSPut("acme", k, k*3); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	// The default SHARDHASH reply carries the committed tenant table.
	_, _, names, err := c.SyncShardHashesNS()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "acme" {
		t.Fatalf("name table = %v, want [acme]", names)
	}
	// The per-tenant form advertises the derived seed and per-shard
	// hashes; SYNC with the tenant name fetches images that verify.
	nsHseed, entries, err := c.SyncNSShardHashes("acme")
	if err != nil {
		t.Fatal(err)
	}
	if nsHseed == 42 || nsHseed == 0 {
		t.Fatalf("tenant advertises a non-derived seed %d", nsHseed)
	}
	for i, e := range entries {
		var img []byte
		for off := uint64(0); ; {
			chunk, more, err := c.SyncNSShardChunk("acme", i, e.Hash, off, 0)
			if err != nil {
				t.Fatalf("sync shard %d: %v", i, err)
			}
			img = append(img, chunk...)
			off += uint64(len(chunk))
			if !more {
				break
			}
		}
		if int64(len(img)) != e.Size || sha256.Sum256(img) != e.Hash {
			t.Fatalf("shard %d image does not match its advertised descriptor", i)
		}
	}
	// A tenant absent from the committed checkpoint is a typed refusal.
	var rerr *proto.RemoteError
	if _, _, err := c.SyncNSShardHashes("ghost"); !errors.As(err, &rerr) {
		t.Fatalf("absent tenant hashes: %v, want RemoteError", err)
	}
	_ = durable.ErrNoNamespace // the server maps this to ErrCodeBadFrame on the wire
}

func TestNamespaceWireReadOnlyRefusal(t *testing.T) {
	db := newTestDB(t, 4)
	defer db.Abandon()
	srv, addr := startTCP(t, db, Config{SweepInterval: -1, ReadOnly: true})
	defer srv.Close()
	c := dialNS(t, addr)

	if _, err := c.NSPut("acme", 1, 1); !errors.Is(err, client.ErrReadOnly) {
		t.Fatalf("ns put on replica: %v, want ErrReadOnly", err)
	}
	if _, err := c.NSDelete("acme", 1); !errors.Is(err, client.ErrReadOnly) {
		t.Fatalf("ns del on replica: %v, want ErrReadOnly", err)
	}
	if _, err := c.DropNS("acme"); !errors.Is(err, client.ErrReadOnly) {
		t.Fatalf("drop on replica: %v, want ErrReadOnly", err)
	}
	// Reads stay open.
	if _, ok, err := c.NSGet("acme", 1); err != nil || ok {
		t.Fatalf("ns read on replica: ok=%v err=%v", ok, err)
	}
	if _, _, err := c.ListNS(); err != nil {
		t.Fatalf("list on replica: %v", err)
	}
}
