package server

// TTL through the wire: PUTTTL/GETTTL round trips, lazy filtering at
// the protocol surface, the epoch-triggered sweeper composing with
// pipelined writes through the coalescer, and the expiry stats.

import (
	"errors"
	"net"
	"testing"
	"time"

	"repro/client"
	"repro/internal/durable"
	"repro/internal/expiry"
	"repro/internal/proto"
)

func openTTLDB(t *testing.T, clk expiry.Clock) *durable.DB {
	t.Helper()
	db, err := durable.Open("db", &durable.Options{
		Shards: 4, Seed: 11, FS: durable.NewMemFS(), NoBackground: true, Clock: clk,
	})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestTTLOverTheWire(t *testing.T) {
	clk := expiry.NewManual(100)
	db := openTTLDB(t, clk)
	defer db.Close()
	srv, addr := startTCP(t, db, Config{SweepInterval: -1}) // no sweeper: test pure laziness
	defer srv.Close()
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if ins, err := c.PutTTL(1, 10, 150); err != nil || !ins {
		t.Fatalf("put-ttl: %v %v", ins, err)
	}
	if ins, err := c.PutTTL(2, 20, 0); err != nil || !ins {
		t.Fatalf("put-ttl no expiry: %v %v", ins, err)
	}
	if v, exp, ok, err := c.GetTTL(1); err != nil || !ok || v != 10 || exp != 150 {
		t.Fatalf("get-ttl: %d %d %v %v", v, exp, ok, err)
	}
	if v, exp, ok, err := c.GetTTL(2); err != nil || !ok || v != 20 || exp != 0 {
		t.Fatalf("get-ttl exp0: %d %d %v %v", v, exp, ok, err)
	}
	// Plain GET sees TTL'd entries while live.
	if v, ok, err := c.Get(1); err != nil || !ok || v != 10 {
		t.Fatalf("get of ttl entry: %d %v %v", v, ok, err)
	}

	clk.Set(150) // key 1 dies
	if _, _, ok, err := c.GetTTL(1); err != nil || ok {
		t.Fatalf("expired entry visible over the wire: %v %v", ok, err)
	}
	if _, ok, err := c.Get(1); err != nil || ok {
		t.Fatalf("expired entry visible to GET: %v %v", ok, err)
	}
	if n, err := c.Len(); err != nil || n != 1 {
		t.Fatalf("len = %d (%v), want 1", n, err)
	}
	if items, _, err := c.Range(0, 100, 0); err != nil || len(items) != 1 || items[0].Key != 2 {
		t.Fatalf("range over expired = %v (%v)", items, err)
	}
	// Writing over the expired key is a fresh insert; a plain PUT clears
	// the expiry.
	if ins, err := c.PutTTL(1, 11, 400); err != nil || !ins {
		t.Fatalf("resurrect: %v %v", ins, err)
	}
	if ins, err := c.Put(1, 12); err != nil || ins {
		t.Fatalf("overwrite: %v %v", ins, err)
	}
	if v, exp, ok, err := c.GetTTL(1); err != nil || !ok || v != 12 || exp != 0 {
		t.Fatalf("after plain put: %d %d %v %v", v, exp, ok, err)
	}

	// A malformed expiry is refused without killing the connection.
	raw := proto.AppendKeyVal(nil, 1, 2) // 16 bytes, not 24
	if _, err := rawCall(t, addr, proto.OpPutTTL, raw); err == nil {
		t.Fatal("short put-ttl accepted")
	}
	if err := c.Ping(nil); err != nil {
		t.Fatalf("connection unusable after bad frame test: %v", err)
	}
}

// rawCall sends one frame and returns an error if the reply is OpError.
func rawCall(t *testing.T, addr string, op byte, payload []byte) (proto.Frame, error) {
	t.Helper()
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	if err := proto.WriteFrame(nc, proto.Frame{Ver: proto.Version, Op: op, ID: 7, Payload: payload}); err != nil {
		t.Fatal(err)
	}
	f, err := proto.ReadFrame(nc, 0)
	if err != nil {
		t.Fatal(err)
	}
	if f.Op == proto.OpError {
		code, msg, _ := proto.DecodeError(f.Payload)
		return f, &proto.RemoteError{Code: code, Msg: msg}
	}
	return f, nil
}

func TestTTLSweeperEpochTriggered(t *testing.T) {
	clk := expiry.NewManual(10)
	db := openTTLDB(t, clk)
	defer db.Close()
	srv, addr := startTCP(t, db, Config{SweepInterval: 2 * time.Millisecond})
	defer srv.Close()
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const n = 200
	for k := int64(0); k < n; k++ {
		exp := int64(20) // dies at epoch 20
		if k%2 == 1 {
			exp = 1000 // far future
		}
		if _, err := c.PutTTL(k, k*3, exp); err != nil {
			t.Fatal(err)
		}
	}
	// Nothing is due at epoch 10 however often the sweeper polls.
	time.Sleep(20 * time.Millisecond)
	if phys := physicalKeys(db); phys != n {
		t.Fatalf("sweeper removed entries before their epoch: %d physical, want %d", phys, n)
	}

	clk.Set(20)
	deadline := time.Now().Add(5 * time.Second)
	for physicalKeys(db) != n/2 {
		if time.Now().After(deadline) {
			t.Fatalf("sweeper did not remove the dead half: %d physical", physicalKeys(db))
		}
		time.Sleep(2 * time.Millisecond)
	}
	// The survivors are exactly the far-future half.
	for k := int64(0); k < n; k++ {
		v, exp, ok, err := c.GetTTL(k)
		if err != nil {
			t.Fatal(err)
		}
		if want := k%2 == 1; ok != want || (ok && (v != k*3 || exp != 1000)) {
			t.Fatalf("key %d after sweep: (%d,%d,%v), want live=%v", k, v, exp, ok, want)
		}
	}
	// A resurrected key must survive sweeps planned before its rebirth.
	if _, err := c.PutTTL(0, 5, 2000); err != nil {
		t.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond)
	if v, exp, ok, err := c.GetTTL(0); err != nil || !ok || v != 5 || exp != 2000 {
		t.Fatalf("resurrected key: (%d,%d,%v,%v)", v, exp, ok, err)
	}

	st := srv.Stats()
	if st.Epoch != 20 {
		t.Fatalf("stats epoch = %d, want 20", st.Epoch)
	}
	if st.SweptKeys != n/2 {
		t.Fatalf("stats swept_keys = %d, want %d", st.SweptKeys, n/2)
	}
	if st.Sweeps == 0 {
		t.Fatal("stats sweeps = 0 after a sweep removed entries")
	}
	if st.UptimeSeconds <= 0 {
		t.Fatalf("stats uptime_seconds = %v", st.UptimeSeconds)
	}
}

// physicalKeys counts entries actually present in the store, expired or
// not.
func physicalKeys(db *durable.DB) int {
	n := 0
	s := db.Store()
	for i := 0; i < s.NumShards(); i++ {
		n += s.ShardLen(i)
	}
	return n
}

func TestTTLReadOnlyReplicaRefusesPutTTL(t *testing.T) {
	clk := expiry.NewManual(10)
	db := openTTLDB(t, clk)
	defer db.Close()
	srv, addr := startTCP(t, db, Config{ReadOnly: true})
	defer srv.Close()
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.PutTTL(1, 2, 100); !errorsIsReadOnly(err) {
		t.Fatalf("replica accepted PUTTTL: %v", err)
	}
	// GETTTL keeps working.
	if _, _, ok, err := c.GetTTL(1); err != nil || ok {
		t.Fatalf("replica get-ttl: %v %v", ok, err)
	}
	// The sweeper goroutine runs even on a replica (so a promotion can
	// arm it without restarting the server), but while the node is
	// read-only it must stay inert: sweeping a replica would fork its
	// state from the primary's checkpoints. Exercise a tick directly —
	// it must not consume the due epochs or submit expire ops.
	srv.sweepOnceNow()
	if got := srv.st.sweeps.Load(); got != 0 {
		t.Fatalf("read-only sweeper submitted %d sweeps", got)
	}
}

func errorsIsReadOnly(err error) bool {
	return err != nil && errors.Is(err, client.ErrReadOnly)
}
